package sunfloor3d

import (
	"sunfloor3d/internal/memo"
)

// Fingerprint returns the canonical, versioned content hash of a synthesis
// request — the design plus the result-affecting options — as a lowercase
// hex string. Two requests receive the same fingerprint exactly when the
// engine is guaranteed to produce byte-identical serialised Results for
// them, which is what makes results safely cacheable and shareable: the
// fingerprint is the key of the design-point cache used by sunfloor-server
// and by the CLI's -cache-dir mode.
//
// Execution knobs that are proven not to change the serialised Result —
// WithParallelism, WithProgress, WithPartitionCache, WithScheduler,
// WithFairShareWeight — do not influence the fingerprint, so a cache filled
// by a heavily parallel server run answers a serial CLI run and vice versa.
// The options are validated the same way NewEngine validates them.
func Fingerprint(d *Design, opts ...Option) (string, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	if err := cfg.opt.Validate(); err != nil {
		return "", err
	}
	return memo.Key(d, cfg.opt), nil
}
