package sunfloor3d_test

// Tests of the workload-generation surface of the public API: byte
// determinism of GenerateBenchmark, spec-string parsing, and LoadBenchmark
// round-tripping through the text spec formats.

import (
	"bytes"
	"strings"
	"testing"

	"sunfloor3d"
)

// designBytes serialises a design through WriteDesign; byte equality is the
// public determinism contract of GenerateBenchmark.
func designBytes(t *testing.T, d *sunfloor3d.Design) []byte {
	t.Helper()
	var core, comm bytes.Buffer
	if err := sunfloor3d.WriteDesign(&core, &comm, d); err != nil {
		t.Fatal(err)
	}
	return append(core.Bytes(), comm.Bytes()...)
}

func TestGenerateBenchmarkDeterministic(t *testing.T) {
	for _, shape := range sunfloor3d.WorkloadShapes() {
		spec := sunfloor3d.GenSpec{Shape: shape, Cores: 18, Layers: 2, Seed: 9}
		a, err := sunfloor3d.GenerateBenchmark(spec)
		if err != nil {
			t.Fatalf("%v: %v", shape, err)
		}
		b, err := sunfloor3d.GenerateBenchmark(spec)
		if err != nil {
			t.Fatalf("%v: %v", shape, err)
		}
		if !bytes.Equal(designBytes(t, a.Graph3D), designBytes(t, b.Graph3D)) {
			t.Errorf("%v: two GenerateBenchmark runs differ byte-wise (3-D)", shape)
		}
		if !bytes.Equal(designBytes(t, a.Graph2D), designBytes(t, b.Graph2D)) {
			t.Errorf("%v: two GenerateBenchmark runs differ byte-wise (2-D)", shape)
		}
		if a.Name == "" || a.Name != b.Name {
			t.Errorf("%v: unstable benchmark name %q vs %q", shape, a.Name, b.Name)
		}
		if a.Layers != 2 {
			t.Errorf("%v: Layers = %d, want 2", shape, a.Layers)
		}
	}
}

func TestParseGenSpec(t *testing.T) {
	spec, err := sunfloor3d.ParseGenSpec("shape=hotspot,cores=40,layers=3,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Shape != sunfloor3d.ShapeHotspot || spec.Cores != 40 || spec.Layers != 3 || spec.Seed != 7 {
		t.Errorf("parsed spec = %+v", spec)
	}
	if _, err := sunfloor3d.GenerateBenchmark(spec); err != nil {
		t.Errorf("parsed spec does not generate: %v", err)
	}
	full, err := sunfloor3d.ParseGenSpec(
		"shape=multiapp, cores=24, apps=3, memfrac=0.3, bandwidth=800, spread=0.4, slack=2.5, unconstrained=0.1, hubs=2")
	if err != nil {
		t.Fatal(err)
	}
	if full.Apps != 3 || full.MemoryFraction != 0.3 || full.MeanBandwidthMBps != 800 ||
		full.BandwidthSpread != 0.4 || full.LatencySlack != 2.5 ||
		full.UnconstrainedFraction != 0.1 || full.Hubs != 2 {
		t.Errorf("parsed full spec = %+v", full)
	}
	for _, bad := range []string{
		"shape",                   // not key=value
		"shape=mesh",              // unknown shape
		"cores=abc",               // bad int
		"teapot=1",                // unknown key
		"cores=3",                 // fails Spec.Validate
		"shape=hotspot,slack=0.2", // fails Spec.Validate
	} {
		if _, err := sunfloor3d.ParseGenSpec(bad); err == nil {
			t.Errorf("ParseGenSpec(%q) should fail", bad)
		}
	}
}

func TestLoadBenchmark(t *testing.T) {
	gen, err := sunfloor3d.GenerateBenchmark(sunfloor3d.GenSpec{
		Shape: sunfloor3d.ShapeLayered, Cores: 12, Layers: 3, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	var core, comm bytes.Buffer
	if err := sunfloor3d.WriteDesign(&core, &comm, gen.Graph3D); err != nil {
		t.Fatal(err)
	}
	loaded, err := sunfloor3d.LoadBenchmark("roundtrip", &core, &comm)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Name != "roundtrip" {
		t.Errorf("Name = %q", loaded.Name)
	}
	if loaded.Layers != 3 {
		t.Errorf("Layers = %d, want 3", loaded.Layers)
	}
	if !bytes.Equal(designBytes(t, gen.Graph3D), designBytes(t, loaded.Graph3D)) {
		t.Error("loaded benchmark differs from the generated design")
	}
	if got := loaded.Graph2D.NumLayers(); got != 1 {
		t.Errorf("flattened 2-D graph spans %d layers", got)
	}

	if _, err := sunfloor3d.LoadBenchmark("broken",
		strings.NewReader("core a 1 1 0 0 0\n"),
		strings.NewReader("flow a ghost 100 0 request\n")); err == nil {
		t.Error("LoadBenchmark with an unknown flow endpoint should fail")
	}
}
