package sunfloor3d_test

// Facade-level tests of the fault-aware options: WithSparing and
// WithFaultModel attach a survivability report to every valid point, the
// report survives JSON round trips and shows up in Report(), and invalid
// configurations are rejected at engine construction.

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"sunfloor3d"
)

func TestSynthesizeWithFaultModel(t *testing.T) {
	d := apiDesign(t)
	proc, err := sunfloor3d.ProcessByName("wafer-level-A")
	if err != nil {
		t.Fatal(err)
	}
	fc := sunfloor3d.DefaultFaultModelConfig()
	fc.Plans = 4
	res, err := sunfloor3d.Synthesize(context.Background(), d,
		sunfloor3d.WithSparing(proc, 0.99),
		sunfloor3d.WithFaultModel(fc))
	if err != nil {
		t.Fatal(err)
	}
	best := res.Best()
	if best == nil {
		t.Fatal("no valid design point")
	}
	rep := best.Survivability
	if rep == nil {
		t.Fatal("best point carries no survivability report")
	}
	if rep.Survived+rep.Dead != rep.Plans {
		t.Errorf("survived %d + dead %d != plans %d", rep.Survived, rep.Dead, rep.Plans)
	}
	for pi := range res.Points {
		p := &res.Points[pi]
		if p.Valid && p.Survivability == nil {
			t.Errorf("valid point %d carries no survivability report", pi)
		}
	}

	// The report is part of the serialised Result and round-trips.
	raw, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(raw, []byte(`"survivability"`)) {
		t.Error("survivability missing from the result JSON")
	}
	var restored sunfloor3d.Result
	if err := json.Unmarshal(raw, &restored); err != nil {
		t.Fatal(err)
	}
	again, err := json.Marshal(&restored)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, again) {
		t.Error("fault-aware result JSON does not round-trip byte-identically")
	}

	// The human-readable report names the fault outcome.
	text := best.Report()
	for _, want := range []string{"fault_plans", "fault_survived_fraction"} {
		if !strings.Contains(text, want) {
			t.Errorf("Report() lacks %q:\n%s", want, text)
		}
	}
}

func TestFaultOptionValidation(t *testing.T) {
	proc, err := sunfloor3d.ProcessByName("wafer-level-B")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		opt  sunfloor3d.Option
	}{
		{"target yield 0", sunfloor3d.WithSparing(proc, 0)},
		{"target yield 1", sunfloor3d.WithSparing(proc, 1)},
		{"zero-valued process", sunfloor3d.WithSparing(sunfloor3d.Process{}, 0.99)},
		{"empty fault model", sunfloor3d.WithFaultModel(sunfloor3d.FaultModelConfig{})},
		{"negative fault cycle", sunfloor3d.WithFaultModel(sunfloor3d.FaultModelConfig{
			Plans: 4, FaultsPerPlan: 1, FaultCycle: -1,
		})},
	}
	for _, tc := range cases {
		if _, err := sunfloor3d.NewEngine(tc.opt); err == nil {
			t.Errorf("%s: engine accepted an invalid configuration", tc.name)
		}
	}

	if _, err := sunfloor3d.ProcessByName("no-such-process"); err == nil {
		t.Error("unknown process name accepted")
	}
}
