package sunfloor3d_test

// This file exposes every table and figure of the paper's evaluation section
// as a Go benchmark, so that
//
//	go test -bench=. -benchmem
//
// regenerates the full experimental campaign. Each benchmark reports, besides
// the usual ns/op, the headline quantity of its experiment (power savings,
// area savings, latencies, ...) via b.ReportMetric, making the paper-vs-
// measured comparison visible directly in the benchmark output. The quick
// configuration is used so a full run stays in the minutes range; run
// cmd/sunfloor-bench without -quick for the complete sweeps.

import (
	"encoding/json"
	"math"
	"os"
	"testing"

	"sunfloor3d"
	"sunfloor3d/internal/bench"
	"sunfloor3d/internal/experiments"
	"sunfloor3d/internal/graph"
	"sunfloor3d/internal/mesh"
	"sunfloor3d/internal/noclib"
	"sunfloor3d/internal/partition"
	"sunfloor3d/internal/place"
	"sunfloor3d/internal/sim"
	"sunfloor3d/internal/synth"
	"sunfloor3d/internal/topology"
)

func quickCfg() experiments.Config {
	c := experiments.DefaultConfig()
	c.Quick = true
	return c
}

// BenchmarkFig01YieldVsTSV regenerates the yield-vs-TSV-count curves of Fig. 1.
func BenchmarkFig01YieldVsTSV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series := experiments.Fig01Yield()
		if len(series) == 0 {
			b.Fatal("no yield series")
		}
	}
	// Report the knee of the first process: the largest TSV count with >= 90%
	// yield.
	p := noclib.StandardProcesses()[0]
	b.ReportMetric(float64(p.MaxTSVsForYield(0.9)), "tsvs_at_90pct_yield")
}

// BenchmarkFig10Power2D regenerates the 2-D power-vs-switch-count sweep of
// Fig. 10 on D_26_media.
func BenchmarkFig10Power2D(b *testing.B) {
	var sweep experiments.PowerSweep
	var err error
	for i := 0; i < b.N; i++ {
		sweep, err = experiments.Fig10Power2D(quickCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(bestTotal(sweep), "best_2D_power_mW")
}

// BenchmarkFig11Power3D regenerates the 3-D power-vs-switch-count sweep of
// Fig. 11 on D_26_media.
func BenchmarkFig11Power3D(b *testing.B) {
	var sweep experiments.PowerSweep
	var err error
	for i := 0; i < b.N; i++ {
		sweep, err = experiments.Fig11Power3D(quickCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(bestTotal(sweep), "best_3D_power_mW")
}

func bestTotal(s experiments.PowerSweep) float64 {
	best := 0.0
	for _, p := range s.Points {
		if best == 0 || p.TotalMW < best {
			best = p.TotalMW
		}
	}
	return best
}

// BenchmarkFig12WireLengths regenerates the wire-length distributions of
// Fig. 12 and reports the 2-D/3-D total wire length ratio.
func BenchmarkFig12WireLengths(b *testing.B) {
	var d experiments.WireLengthDistribution
	var err error
	for i := 0; i < b.N; i++ {
		d, err = experiments.Fig12WireLengths(quickCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	if d.Total3DMM > 0 {
		b.ReportMetric(d.Total2DMM/d.Total3DMM, "wirelength_2D_over_3D")
	}
}

// BenchmarkFig13to16CaseStudy regenerates the D_26_media topology case study
// (best Phase-1 and Phase-2 topologies and the input placement).
func BenchmarkFig13to16CaseStudy(b *testing.B) {
	var cs experiments.TopologyCaseStudy
	var err error
	for i := 0; i < b.N; i++ {
		cs, err = experiments.Fig13to16CaseStudy(quickCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(cs.Phase1Power, "phase1_power_mW")
	b.ReportMetric(cs.Phase2Power, "phase2_power_mW")
}

// BenchmarkFig17Phase1VsPhase2 regenerates the Phase-1 vs Phase-2 comparison
// of Fig. 17 and reports the average Phase2/Phase1 power ratio.
func BenchmarkFig17Phase1VsPhase2(b *testing.B) {
	var rows []experiments.PhaseComparison
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Fig17Phase1VsPhase2(quickCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(rows) > 0 {
		var sum float64
		for _, r := range rows {
			sum += r.Ratio
		}
		b.ReportMetric(sum/float64(len(rows)), "avg_phase2_over_phase1")
	}
}

// BenchmarkTable1 regenerates the 2-D vs. 3-D comparison of Table I and
// reports the average power and latency reductions.
func BenchmarkTable1(b *testing.B) {
	var rows []experiments.Table1Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Table1(quickCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(rows) > 0 {
		var sp, sl float64
		for _, r := range rows {
			sp += r.PowerReduction()
			sl += r.LatencyReduction()
		}
		b.ReportMetric(sp/float64(len(rows))*100, "avg_power_reduction_pct")
		b.ReportMetric(sl/float64(len(rows))*100, "avg_latency_reduction_pct")
	}
}

// BenchmarkFig18FloorplanArea regenerates the area-vs-switch-count comparison
// of Fig. 18 between the custom insertion routine and the constrained
// standard floorplanner.
func BenchmarkFig18FloorplanArea(b *testing.B) {
	var pts []experiments.AreaPoint
	var err error
	for i := 0; i < b.N; i++ {
		pts, err = experiments.Fig18FloorplanArea(quickCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(pts) > 0 {
		var ratio float64
		for _, p := range pts {
			ratio += p.StandardAreaMM2 / p.CustomAreaMM2
		}
		b.ReportMetric(ratio/float64(len(pts)), "standard_over_custom_area")
	}
}

// BenchmarkFig19Fig20FloorplanComparison regenerates the per-benchmark area
// and power comparison of Figs. 19 and 20 and reports the average savings of
// the custom routine.
func BenchmarkFig19Fig20FloorplanComparison(b *testing.B) {
	var rows []experiments.FloorplanComparison
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Fig19Fig20FloorplanComparison(quickCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(rows) > 0 {
		var sa, sp float64
		for _, r := range rows {
			sa += r.AreaSaving()
			sp += r.PowerSaving()
		}
		b.ReportMetric(sa/float64(len(rows))*100, "avg_area_saving_pct")
		b.ReportMetric(sp/float64(len(rows))*100, "avg_power_saving_pct")
	}
}

// BenchmarkFig21MaxILLPower and BenchmarkFig22MaxILLLatency regenerate the
// max_ill sweeps of Figs. 21 and 22 on D_36_4.
func BenchmarkFig21MaxILLPower(b *testing.B) {
	pts := runILLSweep(b)
	if tight, loose, ok := tightLoose(pts); ok {
		b.ReportMetric(tight.PowerMW/loose.PowerMW, "tight_over_loose_power")
	}
}

func BenchmarkFig22MaxILLLatency(b *testing.B) {
	pts := runILLSweep(b)
	if tight, loose, ok := tightLoose(pts); ok {
		b.ReportMetric(tight.AvgLatencyCycles/loose.AvgLatencyCycles, "tight_over_loose_latency")
	}
}

func runILLSweep(b *testing.B) []experiments.ILLSweepPoint {
	b.Helper()
	var pts []experiments.ILLSweepPoint
	var err error
	for i := 0; i < b.N; i++ {
		pts, err = experiments.Fig21Fig22MaxILLSweep(quickCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	return pts
}

// tightLoose returns the tightest and loosest feasible points of the sweep.
func tightLoose(pts []experiments.ILLSweepPoint) (tight, loose experiments.ILLSweepPoint, ok bool) {
	found := false
	for _, p := range pts {
		if !p.Feasible {
			continue
		}
		if !found {
			tight, loose = p, p
			found = true
			continue
		}
		if p.MaxILL < tight.MaxILL {
			tight = p
		}
		if p.MaxILL > loose.MaxILL {
			loose = p
		}
	}
	return tight, loose, found
}

// BenchmarkFig23MeshComparison regenerates the custom-vs-mesh comparison of
// Fig. 23 and reports the average power saving.
func BenchmarkFig23MeshComparison(b *testing.B) {
	var rows []experiments.MeshComparison
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Fig23MeshComparison(quickCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(rows) > 0 {
		var sp float64
		for _, r := range rows {
			sp += r.PowerSaving()
		}
		b.ReportMetric(sp/float64(len(rows))*100, "avg_power_saving_pct")
	}
}

// BenchmarkSweepHotPath measures the multi-frequency synthesis sweep before
// and after the hot-path overhaul of PR 2: the baseline recomputes every
// partition per frequency and rebuilds the router's full O(S^2) cost graph
// per flow and retry, the optimized run uses the sweep-wide partition cache
// and the incremental cost graph. Besides the usual ns/op it reports the
// geometric-mean speedup across the benchmark suite and records the
// per-design numbers to BENCH_PR2.json (the CI smoke step runs it with
// -benchtime=1x).
func BenchmarkSweepHotPath(b *testing.B) {
	suite := []string{"D_26_media", "D_36_4", "D_36_8"}
	var results []sunfloor3d.SweepBenchmark
	for i := 0; i < b.N; i++ {
		results = results[:0]
		for _, name := range suite {
			r, err := sunfloor3d.RunSweepBenchmark(name, 1)
			if err != nil {
				b.Fatal(err)
			}
			results = append(results, r)
		}
	}
	logSpeedup := 0.0
	for _, r := range results {
		logSpeedup += math.Log(r.Speedup)
	}
	speedup := math.Exp(logSpeedup / float64(len(results)))
	b.ReportMetric(speedup, "speedup")
	out := struct {
		Description string                      `json:"description"`
		Speedup     float64                     `json:"geomean_speedup"`
		Sweeps      []sunfloor3d.SweepBenchmark `json:"sweeps"`
	}{
		Description: "Multi-frequency synthesis sweep: baseline (per-frequency partitioning, " +
			"full per-flow cost-graph rebuilds) vs optimized (sweep-wide partition cache, " +
			"incremental cost graph). Regenerate with: go test -bench=Sweep -benchtime=1x",
		Speedup: speedup,
		Sweeps:  results,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_PR2.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// --- Simulator benchmarks (PR 4) -----------------------------------------
//
// BenchmarkSimSweep is the before/after record of the execution-core rewrite:
// it times sweep-mode simulation (one run per valid design point, the
// WithSimulation workload) for every profile on a small (D_26_media) and a
// large (D_36_4) paper benchmark, plus the zero-load oracle, against the
// retained reference engine, and writes the results to BENCH_PR4.json. Every
// timed pair is preceded by a byte-level Stats comparison between the two
// engines, so the benchmark fails — it does not just report a number — if
// the optimized core ever drifts from reference mode. The CI smoke step runs
// it with -benchtime=1x.
func BenchmarkSimSweep(b *testing.B) {
	type combo struct {
		name    string
		profile sunfloor3d.SimProfile
	}
	combos := []combo{
		{"D_26_media", sunfloor3d.SimUniform},
		{"D_36_4", sunfloor3d.SimUniform},
		{"D_26_media", sunfloor3d.SimBursty},
		{"D_36_4", sunfloor3d.SimBursty},
		{"D_26_media", sunfloor3d.SimHotspot},
		{"D_36_4", sunfloor3d.SimHotspot},
	}
	zeroLoad := []string{"D_26_media", "D_36_4"}

	var sims []sunfloor3d.SimBenchmark
	var oracles []sunfloor3d.ZeroLoadBenchmark
	for i := 0; i < b.N; i++ {
		sims = sims[:0]
		oracles = oracles[:0]
		for _, c := range combos {
			r, err := sunfloor3d.RunSimBenchmark(c.name, c.profile, 1)
			if err != nil {
				b.Fatal(err)
			}
			sims = append(sims, r)
		}
		for _, name := range zeroLoad {
			r, err := sunfloor3d.RunZeroLoadBenchmark(name, 1)
			if err != nil {
				b.Fatal(err)
			}
			oracles = append(oracles, r)
		}
	}

	// The headline number is the geometric-mean speedup over the uniform
	// sweep-simulation benchmarks (the acceptance metric of the rewrite);
	// the other profiles and the oracle are recorded alongside.
	logSum, n := 0.0, 0
	for _, r := range sims {
		if r.Profile == "uniform" {
			logSum += math.Log(r.Speedup)
			n++
		}
	}
	speedup := math.Exp(logSum / float64(n))
	b.ReportMetric(speedup, "speedup")

	out := struct {
		Description string                         `json:"description"`
		Speedup     float64                        `json:"geomean_speedup"`
		Sims        []sunfloor3d.SimBenchmark      `json:"sweep_simulation"`
		ZeroLoad    []sunfloor3d.ZeroLoadBenchmark `json:"zero_load_oracle"`
	}{
		Description: "Sweep-mode flit-level simulation: baseline (reference engine: per-packet " +
			"allocation, slice queues, map routing lookups, dense cycle scans, full stats) vs " +
			"optimized (arena packets, ring-buffer VCs, dense routing with per-hop output " +
			"caching, active-set scheduling, summary stats). geomean_speedup covers the " +
			"uniform-profile sweeps; engines are verified byte-identical before timing. " +
			"Regenerate with: go test -bench=SimSweep -benchtime=1x",
		Speedup:  speedup,
		Sims:     sims,
		ZeroLoad: oracles,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_PR4.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkExplorer measures the N-dimensional design-space explorer of PR 8
// against brute-force enumeration of the same space: a 3-axis sweep
// (frequency x link width x switch count) on three paper benchmarks, pruned
// via duplicate-cell elimination and analytic branch-and-bound floors. Each
// timed pair is preceded by a byte-level comparison of the Pareto fronts and
// best points, so the benchmark fails — it does not just report a number —
// if pruning ever changes the outcome. Besides ns/op it reports the
// geometric-mean throughput speedup and the mean pruning rate, and records
// the per-design numbers to BENCH_PR8.json (the CI smoke step runs it with
// -benchtime=1x).
func BenchmarkExplorer(b *testing.B) {
	suite := []string{"D_26_media", "D_36_4", "D_36_8"}
	var results []sunfloor3d.ExplorerBenchmark
	for i := 0; i < b.N; i++ {
		results = results[:0]
		for _, name := range suite {
			r, err := sunfloor3d.RunExplorerBenchmark(name, 1, sunfloor3d.Space{})
			if err != nil {
				b.Fatal(err)
			}
			results = append(results, r)
		}
	}
	logSpeedup, rate := 0.0, 0.0
	for _, r := range results {
		logSpeedup += math.Log(r.Speedup)
		rate += r.PruningRate
	}
	speedup := math.Exp(logSpeedup / float64(len(results)))
	b.ReportMetric(speedup, "speedup")
	b.ReportMetric(rate/float64(len(results)), "pruning_rate")
	out := struct {
		Description  string                         `json:"description"`
		Speedup      float64                        `json:"geomean_speedup"`
		Explorations []sunfloor3d.ExplorerBenchmark `json:"explorations"`
	}{
		Description: "N-dimensional design-space exploration: brute force (every (frequency, " +
			"link width, switch count) point evaluated) vs pruned (duplicate (vcs, link width) " +
			"cells eliminated, switch counts cut by analytic power/latency floors). Pareto " +
			"fronts and best points are verified byte-identical before reporting. " +
			"Regenerate with: go test -bench=Explorer -benchtime=1x",
		Speedup:      speedup,
		Explorations: results,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_PR8.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// bestTopologyFor synthesizes the named benchmark with default options and
// returns the best point's topology (benchmark setup, excluded from timing).
func bestTopologyFor(b *testing.B, name string) *topology.Topology {
	b.Helper()
	bm := bench.ByNameMust(name, 1)
	res, err := synth.Synthesize(bm.Graph3D, synth.DefaultOptions())
	if err != nil || res.Best == nil {
		b.Fatalf("synthesize %s: %v", name, err)
	}
	return res.Best.Topology
}

// benchmarkSimProfile measures one production-engine simulation of the best
// topology under the given profile, reporting delivered-flit throughput and
// allocations (the steady-state loop must not allocate).
func benchmarkSimProfile(b *testing.B, name string, profile sim.Profile) {
	top := bestTopologyFor(b, name)
	cfg := sim.DefaultConfig()
	cfg.Profile = profile
	cfg.StatsLevel = sim.StatsSummary
	b.ReportAllocs()
	b.ResetTimer()
	var flits int64
	for i := 0; i < b.N; i++ {
		st, err := sim.Run(top, cfg)
		if err != nil {
			b.Fatal(err)
		}
		flits += st.FlitsDelivered
	}
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(flits)/s, "flits/sec")
	}
}

func BenchmarkSimUniformSmall(b *testing.B) { benchmarkSimProfile(b, "D_26_media", sim.Uniform) }
func BenchmarkSimUniformLarge(b *testing.B) { benchmarkSimProfile(b, "D_36_4", sim.Uniform) }
func BenchmarkSimBurstySmall(b *testing.B)  { benchmarkSimProfile(b, "D_26_media", sim.Bursty) }
func BenchmarkSimBurstyLarge(b *testing.B)  { benchmarkSimProfile(b, "D_36_4", sim.Bursty) }
func BenchmarkSimHotspotSmall(b *testing.B) { benchmarkSimProfile(b, "D_26_media", sim.Hotspot) }
func BenchmarkSimHotspotLarge(b *testing.B) { benchmarkSimProfile(b, "D_36_4", sim.Hotspot) }

// BenchmarkSimZeroLoad measures the zero-load oracle on the best D_26_media
// topology (one reused network, one single-packet run per flow).
func BenchmarkSimZeroLoad(b *testing.B) {
	top := bestTopologyFor(b, "D_26_media")
	cfg := sim.DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.ZeroLoadLatencies(top, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSynthesizeD26Media3D measures the raw synthesis engine on the
// 26-core multimedia benchmark (the runtime discussion of Section VIII-E).
func BenchmarkSynthesizeD26Media3D(b *testing.B) {
	bm := bench.D26Media(1)
	opt := synth.DefaultOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := synth.Synthesize(bm.Graph3D, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSynthesizeD36_4 measures synthesis on the 36-core distributed
// benchmark.
func BenchmarkSynthesizeD36_4(b *testing.B) {
	bm := bench.D36(4, 1)
	opt := synth.DefaultOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := synth.Synthesize(bm.Graph3D, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMeshMappingD36_4 measures the optimized-mesh baseline construction.
func BenchmarkMeshMappingD36_4(b *testing.B) {
	bm := bench.D36(4, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mesh.Build(bm.Graph3D, mesh.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benchmarks for the design choices called out in DESIGN.md ---

// BenchmarkAblationLPvsCentroidPlacement quantifies how much the
// switch-position LP of Section VII buys over the bandwidth-weighted centroid
// estimate used during exploration.
func BenchmarkAblationLPvsCentroidPlacement(b *testing.B) {
	bm := bench.D26Media(1)
	var lpPower, centroidPower float64
	for i := 0; i < b.N; i++ {
		optLP := synth.DefaultOptions()
		optLP.LPOnBest = true
		resLP, err := synth.Synthesize(bm.Graph3D, optLP)
		if err != nil || resLP.Best == nil {
			b.Fatal(err)
		}
		lpPower = resLP.Best.Metrics.Power.TotalMW()

		optC := synth.DefaultOptions()
		optC.LPOnBest = false
		resC, err := synth.Synthesize(bm.Graph3D, optC)
		if err != nil || resC.Best == nil {
			b.Fatal(err)
		}
		centroidPower = resC.Best.Metrics.Power.TotalMW()
	}
	b.ReportMetric(lpPower, "lp_power_mW")
	b.ReportMetric(centroidPower, "centroid_power_mW")
}

// BenchmarkAblationPhaseAutoVsPhase2 quantifies the value of the two-phase
// strategy: PhaseAuto (Phase 1 with SPG fallback) against forcing the
// layer-by-layer method everywhere.
func BenchmarkAblationPhaseAutoVsPhase2(b *testing.B) {
	bm := bench.D36(4, 1)
	var auto, p2 float64
	for i := 0; i < b.N; i++ {
		oa := synth.DefaultOptions()
		ra, err := synth.Synthesize(bm.Graph3D, oa)
		if err != nil || ra.Best == nil {
			b.Fatal(err)
		}
		auto = ra.Best.Metrics.Power.TotalMW()

		o2 := synth.DefaultOptions()
		o2.Phase = synth.Phase2Only
		r2, err := synth.Synthesize(bm.Graph3D, o2)
		if err != nil || r2.Best == nil {
			b.Fatal(err)
		}
		p2 = r2.Best.Metrics.Power.TotalMW()
	}
	b.ReportMetric(auto, "phase_auto_power_mW")
	b.ReportMetric(p2, "phase2_only_power_mW")
}

// BenchmarkAblationTightMaxILL quantifies the cost of designing under a tight
// TSV budget versus an unconstrained one on the distributed benchmark.
func BenchmarkAblationTightMaxILL(b *testing.B) {
	bm := bench.D36(4, 1)
	var tight, loose float64
	for i := 0; i < b.N; i++ {
		ot := synth.DefaultOptions()
		ot.MaxILL = 10
		rt, err := synth.Synthesize(bm.Graph3D, ot)
		if err != nil || rt.Best == nil {
			b.Fatal(err)
		}
		tight = rt.Best.Metrics.Power.TotalMW()

		ol := synth.DefaultOptions()
		ol.MaxILL = 0 // unconstrained
		rl, err := synth.Synthesize(bm.Graph3D, ol)
		if err != nil || rl.Best == nil {
			b.Fatal(err)
		}
		loose = rl.Best.Metrics.Power.TotalMW()
	}
	b.ReportMetric(tight, "maxill10_power_mW")
	b.ReportMetric(loose, "unconstrained_power_mW")
}

// BenchmarkNoCEvaluation measures the cost of evaluating one topology (the
// innermost operation of the sweep).
func BenchmarkNoCEvaluation(b *testing.B) {
	bm := bench.D26Media(1)
	res, err := synth.Synthesize(bm.Graph3D, synth.DefaultOptions())
	if err != nil || res.Best == nil {
		b.Fatal(err)
	}
	top := res.Best.Topology
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := top.Evaluate()
		if m.Power.TotalMW() <= 0 {
			b.Fatal("bad evaluation")
		}
	}
}

// BenchmarkMinCutPartitioning measures the balanced k-way partitioner on the
// largest benchmark's communication graph.
func BenchmarkMinCutPartitioning(b *testing.B) {
	bm := bench.D65Pipe(1)
	pg := partition.BuildPG(bm.Graph3D, 1.0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		assign := graph.PartitionK(pg, 8)
		if len(assign) != bm.Graph3D.NumCores() {
			b.Fatal("bad partition")
		}
	}
}

// BenchmarkSwitchPositionLP measures one switch-placement LP solve.
func BenchmarkSwitchPositionLP(b *testing.B) {
	bm := bench.D26Media(1)
	res, err := synth.Synthesize(bm.Graph3D, synth.DefaultOptions())
	if err != nil || res.Best == nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		top := res.Best.Topology.Clone()
		if err := place.OptimizeSwitchPositions(top); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFidelityLadder measures the PR 10 fidelity ladder on the paper
// suite: a WithSpace+WithSimulation baseline that simulates every valid
// point of the frequency sweep against a triaged run where the analytic
// M/D/1 contention estimate cuts the Pareto band and only band members are
// simulated. RunFidelityLadderBenchmark gates every pair on byte-identical
// Pareto fronts and best points before timing is reported, so a triage bug
// fails the benchmark rather than skewing a number. Besides ns/op it
// reports the geometric-mean speedup and the mean front recall, and records
// the per-design numbers to BENCH_PR10.json (the CI smoke step runs it with
// -benchtime=1x).
func BenchmarkFidelityLadder(b *testing.B) {
	suite := []string{"D_26_media", "D_35_bot", "D_36_4"}
	var results []sunfloor3d.FidelityLadderBenchmark
	for i := 0; i < b.N; i++ {
		results = results[:0]
		for _, name := range suite {
			r, err := sunfloor3d.RunFidelityLadderBenchmark(name, 1, 0)
			if err != nil {
				b.Fatal(err)
			}
			results = append(results, r)
		}
	}
	logSpeedup, recall := 0.0, 0.0
	for _, r := range results {
		logSpeedup += math.Log(r.Speedup)
		recall += r.Recall
	}
	speedup := math.Exp(logSpeedup / float64(len(results)))
	b.ReportMetric(speedup, "speedup")
	b.ReportMetric(recall/float64(len(results)), "recall")
	out := struct {
		Description string                               `json:"description"`
		Speedup     float64                              `json:"geomean_speedup"`
		Recall      float64                              `json:"mean_recall"`
		Ladders     []sunfloor3d.FidelityLadderBenchmark `json:"ladders"`
	}{
		Description: "Fidelity ladder: WithSpace+WithSimulation with full flit-level simulation of " +
			"every valid design point vs estimate-triaged simulation of the Pareto band only " +
			"(analytic M/D/1 contention estimate over committed routes, band 0.05, converged " +
			"48k-cycle simulations, 64-bit links). Pareto fronts and best points are verified " +
			"byte-identical before reporting; the reference front for recall uses a 10% " +
			"epsilon-indicator margin against single-seed simulator noise. " +
			"Regenerate with: go test -bench=FidelityLadder -benchtime=1x",
		Speedup: speedup,
		Recall:  recall / float64(len(results)),
		Ladders: results,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_PR10.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}
