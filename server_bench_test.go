package sunfloor3d_test

// BenchmarkServerThroughput is the performance record of the PR 6 service
// subsystem: it measures, for the golden-corpus workload specs, the cold
// (synthesizing) and warm (content-addressed cache hit) latency of a
// sunfloor-server request, verifies the two answers are byte-identical, and
// then drives concurrent clients against the warm server to measure request
// throughput and cache hit rate. The numbers land in BENCH_PR6.json; the CI
// smoke step runs it with -benchtime=1x. The acceptance bar of the PR —
// warm-cache latency at least 100x below cold — is asserted, not just
// recorded.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"sunfloor3d/internal/server"
)

// goldenServerSpecs are the request bodies benchmarked and smoked in CI:
// the golden-corpus generator specs with representative option sets.
var goldenServerSpecs = []struct {
	Name string
	Body string
}{
	{
		Name: "hotspot24",
		Body: `{"gen":"shape=hotspot,cores=24,layers=3,seed=11,hubs=2","options":{"require_latency_met":true}}`,
	},
	{
		Name: "multiapp27",
		Body: `{"gen":"shape=multiapp,cores=27,layers=2,seed=23,apps=3","options":{"frequencies_mhz":[400,800]}}`,
	},
}

// ServerLatencyRecord is one spec's cold/warm measurement.
type ServerLatencyRecord struct {
	Spec       string  `json:"spec"`
	ColdMS     float64 `json:"cold_ms"`
	WarmMS     float64 `json:"warm_ms"`
	Speedup    float64 `json:"warm_speedup"`
	ResultSize int     `json:"result_bytes"`
}

// ServerThroughputRecord is the concurrent warm-cache phase.
type ServerThroughputRecord struct {
	Clients        int     `json:"clients"`
	Requests       int     `json:"requests"`
	ElapsedMS      float64 `json:"elapsed_ms"`
	RequestsPerSec float64 `json:"requests_per_sec"`
	CacheHitRate   float64 `json:"cache_hit_rate"`
}

func BenchmarkServerThroughput(b *testing.B) {
	var latencies []ServerLatencyRecord
	var throughput ServerThroughputRecord
	for i := 0; i < b.N; i++ {
		latencies, throughput = runServerThroughput(b)
	}

	minSpeedup := latencies[0].Speedup
	for _, r := range latencies {
		if r.Speedup < minSpeedup {
			minSpeedup = r.Speedup
		}
	}
	b.ReportMetric(minSpeedup, "min_warm_speedup")
	b.ReportMetric(throughput.RequestsPerSec, "warm_req/sec")
	b.ReportMetric(throughput.CacheHitRate, "hit_rate")
	if minSpeedup < 100 {
		b.Errorf("warm-cache speedup %.1fx below the 100x acceptance bar", minSpeedup)
	}

	out := struct {
		Description string                 `json:"description"`
		MinSpeedup  float64                `json:"min_warm_speedup"`
		Latencies   []ServerLatencyRecord  `json:"latencies"`
		Throughput  ServerThroughputRecord `json:"concurrent_warm_throughput"`
	}{
		Description: "sunfloor-server request latency on the golden-corpus specs: cold " +
			"(synthesizing) vs warm (content-addressed cache hit, byte-identical body), " +
			"plus concurrent warm-cache throughput. " +
			"Regenerate with: go test -bench=ServerThroughput -benchtime=1x",
		MinSpeedup: minSpeedup,
		Latencies:  latencies,
		Throughput: throughput,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_PR6.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

func runServerThroughput(b *testing.B) ([]ServerLatencyRecord, ServerThroughputRecord) {
	b.Helper()
	s, err := server.New(server.Config{CacheDir: b.TempDir(), Workers: 8})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	post := func(body string) ([]byte, time.Duration) {
		start := time.Now()
		resp, err := http.Post(ts.URL+"/v1/synthesize?wait=1", "application/json", strings.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		defer resp.Body.Close()
		res, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d: %s", resp.StatusCode, res)
		}
		return res, time.Since(start)
	}

	// Phase 1: cold and warm latency per golden spec, with byte-identity.
	const warmSamples = 32
	var latencies []ServerLatencyRecord
	for _, spec := range goldenServerSpecs {
		cold, coldDur := post(spec.Body)
		var warmTotal time.Duration
		for i := 0; i < warmSamples; i++ {
			warm, warmDur := post(spec.Body)
			if !bytes.Equal(cold, warm) {
				b.Fatalf("%s: warm body differs from cold body", spec.Name)
			}
			warmTotal += warmDur
		}
		warmMS := warmTotal.Seconds() * 1e3 / warmSamples
		coldMS := coldDur.Seconds() * 1e3
		latencies = append(latencies, ServerLatencyRecord{
			Spec:       spec.Name,
			ColdMS:     coldMS,
			WarmMS:     warmMS,
			Speedup:    coldMS / warmMS,
			ResultSize: len(cold),
		})
	}

	// Phase 2: concurrent clients hammering the warm cache.
	const (
		clients   = 8
		perClient = 32
	)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				spec := goldenServerSpecs[(c+i)%len(goldenServerSpecs)]
				resp, err := http.Post(ts.URL+"/v1/synthesize?wait=1", "application/json", strings.NewReader(spec.Body))
				if err != nil {
					b.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					b.Errorf("concurrent client %d: status %d", c, resp.StatusCode)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	st := s.Cache().Stats()
	hits := st.MemHits + st.DiskHits + st.Shared
	hitRate := float64(hits) / float64(hits+st.Misses)
	throughput := ServerThroughputRecord{
		Clients:        clients,
		Requests:       clients * perClient,
		ElapsedMS:      elapsed.Seconds() * 1e3,
		RequestsPerSec: float64(clients*perClient) / elapsed.Seconds(),
		CacheHitRate:   hitRate,
	}

	return latencies, throughput
}
