package sunfloor3d_test

// Tests of the N-dimensional design-space explorer: exactness of pruning
// against brute force, serial/parallel equivalence, checkpoint resume,
// shard merging, and option validation.

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"sunfloor3d"
)

func exploreSpace3() sunfloor3d.Space {
	return sunfloor3d.Space{Axes: []sunfloor3d.Axis{
		{Name: sunfloor3d.AxisFreqMHz, Values: []float64{400, 600}},
		{Name: sunfloor3d.AxisLinkWidthBits, Values: []float64{16, 32, 64}},
		{Name: sunfloor3d.AxisSwitchCount, Values: []float64{1, 2, 3, 4, 6, 8}},
	}}
}

func stable(t *testing.T, r *sunfloor3d.Result) []byte {
	t.Helper()
	b, err := r.MarshalStable()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// points wraps a point slice in a Result so it can be serialised with
// MarshalStable for byte comparison.
func points(t *testing.T, pts []sunfloor3d.DesignPoint) []byte {
	t.Helper()
	return stable(t, &sunfloor3d.Result{Points: pts, BestIndex: -1})
}

// TestExplorerExactAgainstBruteForce is the core acceptance check: the
// pruned explorer's Pareto front and best point are byte-identical to the
// brute-force (NoPrune) enumeration of the same 3-axis space, while at
// least one point was actually pruned.
func TestExplorerExactAgainstBruteForce(t *testing.T) {
	d := apiDesign(t)
	ctx := context.Background()
	sp := exploreSpace3()

	pruned, err := sunfloor3d.Synthesize(ctx, d,
		sunfloor3d.WithSpace(sp), sunfloor3d.WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	brute := sp
	brute.NoPrune = true
	exhaustive, err := sunfloor3d.Synthesize(ctx, d,
		sunfloor3d.WithSpace(brute), sunfloor3d.WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}

	if len(pruned.Points) != len(exhaustive.Points) {
		t.Fatalf("point counts differ: pruned %d, brute %d", len(pruned.Points), len(exhaustive.Points))
	}
	nPruned := 0
	for _, p := range pruned.Points {
		if p.Pruned {
			nPruned++
		}
	}
	if nPruned == 0 {
		t.Fatal("no point was pruned on a 3-axis space with duplicate cells")
	}

	if pf, bf := points(t, pruned.ParetoFront()), points(t, exhaustive.ParetoFront()); !bytes.Equal(pf, bf) {
		t.Errorf("Pareto fronts differ:\npruned: %s\nbrute:  %s", pf, bf)
	}
	pb, bb := pruned.Best(), exhaustive.Best()
	if (pb == nil) != (bb == nil) {
		t.Fatalf("best presence differs: pruned %v, brute %v", pb != nil, bb != nil)
	}
	if pb != nil {
		pjb := points(t, []sunfloor3d.DesignPoint{*pb})
		bjb := points(t, []sunfloor3d.DesignPoint{*bb})
		if !bytes.Equal(pjb, bjb) {
			t.Errorf("best points differ:\npruned: %s\nbrute:  %s", pjb, bjb)
		}
	}
}

// TestExplorerSerialParallelIdentical extends the engine's core determinism
// contract to explorer runs.
func TestExplorerSerialParallelIdentical(t *testing.T) {
	d := apiDesign(t)
	ctx := context.Background()
	sp := exploreSpace3()
	serial, err := sunfloor3d.Synthesize(ctx, d, sunfloor3d.WithSpace(sp))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := sunfloor3d.Synthesize(ctx, d,
		sunfloor3d.WithSpace(sp), sunfloor3d.WithParallelism(-1))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stable(t, serial), stable(t, parallel)) {
		t.Error("serial and parallel explorer runs differ")
	}
}

// TestExplorerProgressReportsPruning checks that every point — evaluated or
// pruned — reaches the progress stream, with pruning decisions visible.
func TestExplorerProgressReportsPruning(t *testing.T) {
	d := apiDesign(t)
	var events, prunedEvents int
	_, err := sunfloor3d.Synthesize(context.Background(), d,
		sunfloor3d.WithSpace(exploreSpace3()),
		sunfloor3d.WithProgress(func(ev sunfloor3d.Event) {
			events++
			if ev.Point.Pruned {
				prunedEvents++
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * 3 * 6 // freq x link width x switch counts
	if events < want {
		t.Errorf("progress events = %d, want at least %d", events, want)
	}
	if prunedEvents == 0 {
		t.Error("no pruned point reached the progress stream")
	}
}

// TestExplorerCheckpointResume interrupts an exploration mid-run and resumes
// it from the checkpoint, asserting the resumed result is byte-identical to
// an uninterrupted run.
func TestExplorerCheckpointResume(t *testing.T) {
	d := apiDesign(t)
	ctx := context.Background()
	sp := exploreSpace3()
	ckpt := filepath.Join(t.TempDir(), "explore.ckpt")

	baseline, err := sunfloor3d.Synthesize(ctx, d, sunfloor3d.WithSpace(sp))
	if err != nil {
		t.Fatal(err)
	}

	// Interrupt after the first few points.
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	n := 0
	_, err = sunfloor3d.Synthesize(cctx, d,
		sunfloor3d.WithSpace(sp),
		sunfloor3d.WithCheckpoint(ckpt),
		sunfloor3d.WithProgress(func(sunfloor3d.Event) {
			n++
			if n == 4 {
				cancel()
			}
		}))
	if err == nil {
		t.Log("run finished before the cancellation took effect; resume still exercises restore")
	}

	if _, err := os.Stat(ckpt); err != nil {
		t.Skipf("no checkpoint written before cancellation: %v", err)
	}

	resumed, err := sunfloor3d.Synthesize(ctx, d,
		sunfloor3d.WithSpace(sp), sunfloor3d.WithCheckpoint(ckpt))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stable(t, baseline), stable(t, resumed)) {
		t.Error("resumed run differs from uninterrupted run")
	}

	// A third run restores every cell from the checkpoint.
	restored, err := sunfloor3d.Synthesize(ctx, d,
		sunfloor3d.WithSpace(sp), sunfloor3d.WithCheckpoint(ckpt))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stable(t, baseline), stable(t, restored)) {
		t.Error("fully restored run differs from uninterrupted run")
	}
}

// TestExplorerShardMerge runs a space in n shards with per-shard
// checkpoints, concatenates the checkpoint files, and asserts the merged
// restore equals the unsharded run byte for byte.
func TestExplorerShardMerge(t *testing.T) {
	d := apiDesign(t)
	ctx := context.Background()
	sp := exploreSpace3()
	dir := t.TempDir()

	unsharded, err := sunfloor3d.Synthesize(ctx, d, sunfloor3d.WithSpace(sp))
	if err != nil {
		t.Fatal(err)
	}

	const shards = 3
	var merged []byte
	for i := 0; i < shards; i++ {
		ckpt := filepath.Join(dir, fmt.Sprintf("shard%d.ckpt", i))
		if _, err := sunfloor3d.Synthesize(ctx, d,
			sunfloor3d.WithSpace(sp),
			sunfloor3d.WithShard(i, shards),
			sunfloor3d.WithCheckpoint(ckpt)); err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		data, err := os.ReadFile(ckpt)
		if err != nil {
			t.Fatalf("shard %d checkpoint: %v", i, err)
		}
		merged = append(merged, data...)
	}
	mergedPath := filepath.Join(dir, "merged.ckpt")
	if err := os.WriteFile(mergedPath, merged, 0o644); err != nil {
		t.Fatal(err)
	}
	mergedRes, err := sunfloor3d.Synthesize(ctx, d,
		sunfloor3d.WithSpace(sp), sunfloor3d.WithCheckpoint(mergedPath))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stable(t, unsharded), stable(t, mergedRes)) {
		t.Error("merged sharded result differs from unsharded run")
	}
}

// TestExplorerOptionValidation covers the cross-option constraints.
func TestExplorerOptionValidation(t *testing.T) {
	cases := []struct {
		name string
		opts []sunfloor3d.Option
	}{
		{"unknown axis", []sunfloor3d.Option{sunfloor3d.WithSpace(sunfloor3d.Space{
			Axes: []sunfloor3d.Axis{{Name: "voltage", Values: []float64{1}}}})}},
		{"empty axis", []sunfloor3d.Option{sunfloor3d.WithSpace(sunfloor3d.Space{
			Axes: []sunfloor3d.Axis{{Name: sunfloor3d.AxisFreqMHz}}})}},
		{"no axes", []sunfloor3d.Option{sunfloor3d.WithSpace(sunfloor3d.Space{})}},
		{"duplicate axis", []sunfloor3d.Option{sunfloor3d.WithSpace(sunfloor3d.Space{
			Axes: []sunfloor3d.Axis{
				{Name: sunfloor3d.AxisFreqMHz, Values: []float64{400}},
				{Name: sunfloor3d.AxisFreqMHz, Values: []float64{600}}}})}},
		{"duplicate value", []sunfloor3d.Option{sunfloor3d.WithSpace(sunfloor3d.Space{
			Axes: []sunfloor3d.Axis{{Name: sunfloor3d.AxisFreqMHz, Values: []float64{400, 400}}}})}},
		{"fractional switch count", []sunfloor3d.Option{sunfloor3d.WithSpace(sunfloor3d.Space{
			Axes: []sunfloor3d.Axis{{Name: sunfloor3d.AxisSwitchCount, Values: []float64{1.5}}}})}},
		{"vcs without sim", []sunfloor3d.Option{sunfloor3d.WithSpace(sunfloor3d.Space{
			Axes: []sunfloor3d.Axis{{Name: sunfloor3d.AxisVCs, Values: []float64{2}}}})}},
		{"switch count with phase2", []sunfloor3d.Option{
			sunfloor3d.WithPhase(sunfloor3d.Phase2Only),
			sunfloor3d.WithSpace(sunfloor3d.Space{
				Axes: []sunfloor3d.Axis{{Name: sunfloor3d.AxisSwitchCount, Values: []float64{2}}}})}},
		{"fractional layer count", []sunfloor3d.Option{sunfloor3d.WithSpace(sunfloor3d.Space{
			Axes: []sunfloor3d.Axis{{Name: sunfloor3d.AxisLayerCount, Values: []float64{1.5}}}})}},
		{"fractional tsv budget", []sunfloor3d.Option{sunfloor3d.WithSpace(sunfloor3d.Space{
			Axes: []sunfloor3d.Axis{{Name: sunfloor3d.AxisTSVBudget, Values: []float64{7.5}}}})}},
		{"sim band without simulation", []sunfloor3d.Option{
			sunfloor3d.WithContention(), sunfloor3d.WithSimBand(0.2)}},
		{"sim band without contention", []sunfloor3d.Option{
			sunfloor3d.WithSimulation(sunfloor3d.DefaultSimConfig()), sunfloor3d.WithSimBand(0.2)}},
		{"negative sim band", []sunfloor3d.Option{
			sunfloor3d.WithContention(),
			sunfloor3d.WithSimulation(sunfloor3d.DefaultSimConfig()),
			sunfloor3d.WithSimBand(-0.1)}},
		{"NaN sim band", []sunfloor3d.Option{
			sunfloor3d.WithContention(),
			sunfloor3d.WithSimulation(sunfloor3d.DefaultSimConfig()),
			sunfloor3d.WithSimBand(math.NaN())}},
		{"checkpoint without space", []sunfloor3d.Option{sunfloor3d.WithCheckpoint("x.ckpt")}},
		{"shard without space", []sunfloor3d.Option{sunfloor3d.WithShard(0, 2)}},
		{"shard index out of range", []sunfloor3d.Option{
			sunfloor3d.WithSpace(exploreSpace3()), sunfloor3d.WithShard(2, 2)}},
	}
	for _, tc := range cases {
		if _, err := sunfloor3d.NewEngine(tc.opts...); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
	if _, err := sunfloor3d.NewEngine(sunfloor3d.WithSpace(exploreSpace3()), sunfloor3d.WithShard(1, 2)); err != nil {
		t.Errorf("valid shard config rejected: %v", err)
	}
}

// TestExplorerCheckpointFingerprintMismatch asserts a checkpoint written by
// a different request cannot be resumed.
func TestExplorerCheckpointFingerprintMismatch(t *testing.T) {
	d := apiDesign(t)
	ctx := context.Background()
	ckpt := filepath.Join(t.TempDir(), "explore.ckpt")
	sp := exploreSpace3()
	if _, err := sunfloor3d.Synthesize(ctx, d, sunfloor3d.WithSpace(sp), sunfloor3d.WithCheckpoint(ckpt)); err != nil {
		t.Fatal(err)
	}
	other := sp
	other.NoPrune = true
	if _, err := sunfloor3d.Synthesize(ctx, d, sunfloor3d.WithSpace(other), sunfloor3d.WithCheckpoint(ckpt)); err == nil {
		t.Error("checkpoint of a different request resumed without error")
	}
}

// TestExplorerCheckpointTornMiddleLine: a torn record in the MIDDLE of a
// checkpoint — the shape `cat` produces when an interrupted shard file (torn
// trailing line, no newline) is concatenated before an intact one — must be
// skipped, its cells recomputed, and the resumed result must stay
// byte-identical to the uninterrupted run.
func TestExplorerCheckpointTornMiddleLine(t *testing.T) {
	d := apiDesign(t)
	ctx := context.Background()
	ckpt := filepath.Join(t.TempDir(), "explore.ckpt")
	sp := exploreSpace3()
	// Evaluate every cell so the checkpoint holds one line per cell; with
	// pruning on, dominated cells are stubbed without a checkpoint record
	// and the file can be too short to tear in the middle.
	sp.NoPrune = true

	live, err := sunfloor3d.Synthesize(ctx, d, sunfloor3d.WithSpace(sp), sunfloor3d.WithCheckpoint(ckpt))
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSuffix(data, []byte("\n")), []byte("\n"))
	if len(lines) < 4 {
		t.Fatalf("fixture checkpoint has only %d lines, need at least 4 to tear the middle", len(lines))
	}
	// Tear a middle record in half and splice the next line onto it without
	// a separating newline, exactly as a concatenated torn shard would.
	mid := len(lines) / 2
	torn := append([]byte(nil), lines[mid][:len(lines[mid])/2]...)
	torn = append(torn, lines[mid+1]...)
	var rebuilt [][]byte
	rebuilt = append(rebuilt, lines[:mid]...)
	rebuilt = append(rebuilt, torn)
	rebuilt = append(rebuilt, lines[mid+2:]...)
	if err := os.WriteFile(ckpt, append(bytes.Join(rebuilt, []byte("\n")), '\n'), 0o644); err != nil {
		t.Fatal(err)
	}

	resumed, err := sunfloor3d.Synthesize(ctx, d, sunfloor3d.WithSpace(sp), sunfloor3d.WithCheckpoint(ckpt))
	if err != nil {
		t.Fatalf("resume over torn middle line: %v", err)
	}
	if !bytes.Equal(stable(t, live), stable(t, resumed)) {
		t.Error("result resumed over a torn middle line differs from the uninterrupted run")
	}
}

// TestExplorerCheckpointSimBandFingerprint: toggling the fidelity ladder
// changes the request fingerprint, so a checkpoint written with WithSimBand
// cannot resume a run without it — and vice versa. Without this, a triaged
// checkpoint (some points never simulated) would silently seed a full-sim
// resume.
func TestExplorerCheckpointSimBandFingerprint(t *testing.T) {
	d := apiDesign(t)
	ctx := context.Background()
	sp := sunfloor3d.Space{Axes: []sunfloor3d.Axis{
		{Name: sunfloor3d.AxisFreqMHz, Values: []float64{400, 600}},
	}}
	cfg := sunfloor3d.DefaultSimConfig()
	cfg.Cycles = 500
	cfg.DrainCycles = 500
	base := []sunfloor3d.Option{
		sunfloor3d.WithSpace(sp),
		sunfloor3d.WithSimulation(cfg),
		sunfloor3d.WithContention(),
	}
	withBand := append(append([]sunfloor3d.Option(nil), base...), sunfloor3d.WithSimBand(0.25))

	// Checkpoint written without the band, resumed with it: rejected.
	ckpt := filepath.Join(t.TempDir(), "full.ckpt")
	if _, err := sunfloor3d.Synthesize(ctx, d, append(base, sunfloor3d.WithCheckpoint(ckpt))...); err != nil {
		t.Fatal(err)
	}
	if _, err := sunfloor3d.Synthesize(ctx, d, append(withBand, sunfloor3d.WithCheckpoint(ckpt))...); err == nil {
		t.Error("full-sim checkpoint resumed under WithSimBand without error")
	}

	// Checkpoint written with the band, resumed without it: rejected.
	ckpt2 := filepath.Join(t.TempDir(), "band.ckpt")
	if _, err := sunfloor3d.Synthesize(ctx, d, append(withBand, sunfloor3d.WithCheckpoint(ckpt2))...); err != nil {
		t.Fatal(err)
	}
	if _, err := sunfloor3d.Synthesize(ctx, d, append(base, sunfloor3d.WithCheckpoint(ckpt2))...); err == nil {
		t.Error("triaged checkpoint resumed without WithSimBand without error")
	}
}
