package sunfloor3d_test

// Golden-corpus regression tests: the canonical JSON serialisation of the
// synthesis result for a set of fixed benchmark specs is committed under
// testdata/golden/. Any change to partitioning, routing, placement,
// evaluation or the result schema that alters synthesis output shows up as a
// byte-level diff against the corpus. After an intentional change, regenerate
// the corpus with:
//
//	go test -run TestGoldenCorpus -update .
//
// and review the diff like any other code change.

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"sunfloor3d"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/golden")

// goldenCase is one fixed benchmark spec of the corpus. All inputs are fully
// deterministic: generated benchmarks use a fixed seed, and synthesis is
// deterministic regardless of parallelism or caching.
type goldenCase struct {
	name   string
	design func(t *testing.T) *sunfloor3d.Design
	opts   []sunfloor3d.Option
}

func goldenCases() []goldenCase {
	fromBench := func(name string, flat bool) func(t *testing.T) *sunfloor3d.Design {
		return func(t *testing.T) *sunfloor3d.Design {
			t.Helper()
			b, err := sunfloor3d.BenchmarkByName(name, 1)
			if err != nil {
				t.Fatal(err)
			}
			if flat {
				return b.Graph2D
			}
			return b.Graph3D
		}
	}
	fromGen := func(spec sunfloor3d.GenSpec) func(t *testing.T) *sunfloor3d.Design {
		return func(t *testing.T) *sunfloor3d.Design {
			t.Helper()
			b, err := sunfloor3d.GenerateBenchmark(spec)
			if err != nil {
				t.Fatal(err)
			}
			return b.Graph3D
		}
	}
	return []goldenCase{
		{
			// The paper's multimedia SoC with the default single-frequency
			// sweep and constraints.
			name:   "d26_media_defaults",
			design: fromBench("D_26_media", false),
		},
		{
			// The flattened 2-D reference of the same design: exercises the
			// single-layer degenerate path (no theta sweep, no Phase 2).
			name:   "d26_media_2d",
			design: fromBench("D_26_media", true),
		},
		{
			// A distributed benchmark across a two-frequency sweep: exercises
			// the partition cache and multi-frequency ordering.
			name:   "d36_4_two_freqs",
			design: fromBench("D_36_4", false),
			opts: []sunfloor3d.Option{
				sunfloor3d.WithFrequenciesMHz(400, 600),
			},
		},
		{
			// The hand-written API test design with a tight inter-layer link
			// budget: exercises constraint rejections and Phase fallback.
			name:   "api_design_tight_ill",
			design: apiDesign,
			opts: []sunfloor3d.Option{
				sunfloor3d.WithFrequenciesMHz(400, 600, 800),
				sunfloor3d.WithMaxILL(6),
			},
		},
		{
			// A generated hub-and-spoke workload: the corpus pins a non-paper
			// design family (and the workload generator's bytes) the same way
			// it pins the paper benchmarks. The generator is deterministic, so
			// the spec is as stable an input as a committed fixture file.
			name:   "gen_hotspot_c24",
			design: fromGen(sunfloor3d.GenSpec{Shape: sunfloor3d.ShapeHotspot, Cores: 24, Layers: 3, Seed: 11, Hubs: 2}),
			opts: []sunfloor3d.Option{
				sunfloor3d.WithRequireLatencyMet(true),
			},
		},
		{
			// A generated multi-application mix across two frequencies:
			// cluster-local traffic plus cross-app bridges under the latency
			// validation and the partition cache.
			name:   "gen_multiapp_c27",
			design: fromGen(sunfloor3d.GenSpec{Shape: sunfloor3d.ShapeMultiApp, Cores: 27, Layers: 2, Seed: 23, Apps: 3}),
			opts: []sunfloor3d.Option{
				sunfloor3d.WithFrequenciesMHz(400, 800),
				sunfloor3d.WithRequireLatencyMet(true),
			},
		},
	}
}

func TestGoldenCorpus(t *testing.T) {
	for _, tc := range goldenCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			res, err := sunfloor3d.Synthesize(context.Background(), tc.design(t), tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := res.WriteJSON(&buf); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", "golden", tc.name+".json")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d bytes)", path, buf.Len())
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run 'go test -run TestGoldenCorpus -update .'): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Fatalf("synthesis output drifted from %s.\n"+
					"If the change is intentional, regenerate with 'go test -run TestGoldenCorpus -update .' and review the diff.\n"+
					"got %d bytes, want %d bytes%s",
					path, buf.Len(), len(want), firstDiff(buf.Bytes(), want))
			}
		})
	}
}

// firstDiff renders the first divergence between two byte slices for the
// failure message.
func firstDiff(got, want []byte) string {
	n := len(got)
	if len(want) < n {
		n = len(want)
	}
	for i := 0; i < n; i++ {
		if got[i] != want[i] {
			lo := i - 60
			if lo < 0 {
				lo = 0
			}
			hiG, hiW := i+60, i+60
			if hiG > len(got) {
				hiG = len(got)
			}
			if hiW > len(want) {
				hiW = len(want)
			}
			return "\nfirst diff at byte " + itoa(i) +
				":\n got: ..." + string(got[lo:hiG]) + "...\nwant: ..." + string(want[lo:hiW]) + "..."
		}
	}
	return "\none output is a prefix of the other"
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}
