package sunfloor3d

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"sunfloor3d/internal/route"
	"sunfloor3d/internal/synth"
	"sunfloor3d/internal/topology"
)

// PowerBreakdown splits the NoC power into its components, in milliwatts.
type PowerBreakdown struct {
	SwitchMW     float64 `json:"switch_mw"`
	SwitchLinkMW float64 `json:"switch_link_mw"`
	CoreLinkMW   float64 `json:"core_link_mw"`
	NIMW         float64 `json:"ni_mw"`
}

// TotalMW returns the total NoC power.
func (p PowerBreakdown) TotalMW() float64 {
	return p.SwitchMW + p.SwitchLinkMW + p.CoreLinkMW + p.NIMW
}

// LinkMW returns the total link power (switch-to-switch plus core-to-switch).
func (p PowerBreakdown) LinkMW() float64 { return p.SwitchLinkMW + p.CoreLinkMW }

// Metrics summarises a fully evaluated topology.
type Metrics struct {
	// Power is the NoC power breakdown.
	Power PowerBreakdown `json:"power"`
	// AvgLatencyCycles is the average zero-load latency over all flows.
	AvgLatencyCycles float64 `json:"avg_latency_cycles"`
	// MaxLatencyCycles is the worst zero-load latency over all flows.
	MaxLatencyCycles float64 `json:"max_latency_cycles"`
	// TotalWireLengthMM is the total planar length of all physical links.
	TotalWireLengthMM float64 `json:"total_wire_length_mm"`
	// NoCAreaMM2 is the silicon area of switches, NIs and TSV macros.
	NoCAreaMM2 float64 `json:"noc_area_mm2"`
	// MaxILL is the maximum number of links crossing any adjacent layer pair.
	MaxILL int `json:"max_ill"`
	// TSVMacros is the number of TSV macros needed.
	TSVMacros int `json:"tsv_macros"`
	// NumSwitches is the number of switches in the topology.
	NumSwitches int `json:"num_switches"`
	// LatencyViolations counts flows whose zero-load latency exceeds their
	// latency constraint.
	LatencyViolations int `json:"latency_violations"`
	// SpareTSVMacros is the number of spare TSVs provisioned by WithSparing
	// (0 when sparing is disabled).
	SpareTSVMacros int `json:"spare_tsv_macros,omitempty"`
	// WireLengthsMM lists the planar length of every physical link.
	WireLengthsMM []float64 `json:"wire_lengths_mm,omitempty"`
}

func metricsFromInternal(m topology.Metrics) Metrics {
	return Metrics{
		Power: PowerBreakdown{
			SwitchMW:     m.Power.SwitchMW,
			SwitchLinkMW: m.Power.SwitchLinkMW,
			CoreLinkMW:   m.Power.CoreLinkMW,
			NIMW:         m.Power.NIMW,
		},
		AvgLatencyCycles:  m.AvgLatencyCycles,
		MaxLatencyCycles:  m.MaxLatencyCycles,
		TotalWireLengthMM: m.TotalWireLengthMM,
		NoCAreaMM2:        m.NoCAreaMM2,
		MaxILL:            m.MaxILL,
		TSVMacros:         m.TSVMacros,
		NumSwitches:       m.NumSwitches,
		LatencyViolations: m.LatencyViolations,
		SpareTSVMacros:    m.SpareTSVMacros,
		WireLengthsMM:     append([]float64(nil), m.WireLengthsMM...),
	}
}

// RouteStats reports what the path-computation step did for one design
// point. Routing is deterministic given the topology, so the stats are
// identical between serial, parallel, cached and uncached runs.
type RouteStats struct {
	// Routed is the number of flows that received a valid path.
	Routed int `json:"routed"`
	// FailedFlows is the number of flows that could not be routed.
	FailedFlows int `json:"failed_flows,omitempty"`
	// IndirectSwitches is the number of switches the router inserted purely
	// to connect other switches.
	IndirectSwitches int `json:"indirect_switches,omitempty"`
	// DeadlockRetries counts path recomputations forced by channel
	// dependency cycles.
	DeadlockRetries int `json:"deadlock_retries,omitempty"`
}

// DesignPoint is one explored topology with its evaluation. The scalar
// fields and Metrics survive JSON round trips; the synthesized topology
// itself is only available on points produced by a live run (Topology
// returns nil after unmarshalling).
type DesignPoint struct {
	// FreqMHz is the NoC operating frequency of this point.
	FreqMHz float64 `json:"freq_mhz"`
	// SwitchCount is the number of switches requested by the sweep.
	SwitchCount int `json:"switch_count"`
	// Phase is 1 or 2 depending on which connectivity method produced it.
	Phase int `json:"phase"`
	// Theta is the SPG scaling factor used (0 when the plain PG sufficed).
	Theta float64 `json:"theta,omitempty"`
	// Valid reports whether the point meets all constraints.
	Valid bool `json:"valid"`
	// Pruned reports that the design-space explorer proved the point cannot
	// beat an already-explored point and skipped building it; FailReason
	// names the pruning decision. Pruning is exact: a pruned run's Pareto
	// front and best point are byte-identical to the brute-force run's.
	Pruned bool `json:"pruned,omitempty"`
	// FailReason explains why an invalid point was rejected (or why a
	// pruned or shard-skipped stub was not built).
	FailReason string `json:"fail_reason,omitempty"`
	// Metrics is the evaluation of the point's topology.
	Metrics Metrics `json:"metrics"`
	// Route reports what the router did for this point.
	Route RouteStats `json:"route_stats"`
	// Survivability is the fault-replay report of the point (nil unless the
	// run used WithFaultModel and the point is valid). Unlike Sim it is part
	// of the serialised Result: the replay is deterministic and the request
	// fingerprint covers the fault and sparing configuration.
	Survivability *Survivability `json:"survivability,omitempty"`
	// Contention is the analytic M/D/1 contention estimate of the point (nil
	// unless the run used WithContention and the point is valid). Like
	// Survivability it is part of the serialised Result: the estimate is
	// byte-deterministic and the request fingerprint covers the option.
	Contention *ContentionEstimate `json:"contention,omitempty"`
	// SimTriage is the fidelity-ladder decision for the point when the run
	// used WithSimBand: "sim" for points inside the estimated Pareto band
	// (fully simulated), "skip" for points outside it (analytic estimate
	// only). Empty without WithSimBand.
	SimTriage string `json:"sim_triage,omitempty"`
	// Elapsed is the wall-clock time spent building, routing and evaluating
	// this point. It is excluded from JSON so that serialised results stay
	// byte-identical across runs, parallelism levels and cache settings.
	Elapsed time.Duration `json:"-"`
	// Sim is the flit-level traffic simulation of this point (nil unless the
	// run used WithSimulation and the point is valid). Like Elapsed it is
	// excluded from JSON so that serialised results stay byte-identical with
	// and without simulation.
	Sim *SimStats `json:"-"`
	// SimElapsed is the wall-clock time spent simulating this point (zero
	// when simulation was not requested or the point was invalid); it is the
	// number behind the CLI's per-point sim timing under -progress. Excluded
	// from JSON like Elapsed.
	SimElapsed time.Duration `json:"-"`

	topo *topology.Topology
}

func pointFromInternal(dp synth.DesignPoint) DesignPoint {
	return DesignPoint{
		FreqMHz:     dp.FreqMHz,
		SwitchCount: dp.SwitchCount,
		Phase:       dp.Phase,
		Theta:       dp.Theta,
		Valid:       dp.Valid,
		Pruned:      dp.Pruned,
		FailReason:  dp.FailReason,
		Metrics:     metricsFromInternal(dp.Metrics),
		Route: RouteStats{
			Routed:           dp.Route.Routed,
			FailedFlows:      len(dp.Route.Failed),
			IndirectSwitches: dp.Route.IndirectSwitches,
			DeadlockRetries:  dp.Route.DeadlockRetries,
		},
		Survivability: dp.Survivability,
		Contention:    dp.Contention,
		SimTriage:     dp.SimTriage,
		Elapsed:       dp.Elapsed,
		Sim:           dp.Sim,
		SimElapsed:    dp.SimElapsed,
		topo:          dp.Topology,
	}
}

// internalFromPoint is the inverse of pointFromInternal over the serialised
// fields: it rebuilds the internal design point a checkpointed public point
// came from, such that re-serialising it reproduces the original bytes.
// Execution-only fields (Elapsed, Sim, the live Topology) are gone, exactly
// like on any point that crossed a JSON boundary; Route.Failed is
// reconstructed by length only, which is all the serialisation carries.
func internalFromPoint(p DesignPoint) synth.DesignPoint {
	dp := synth.DesignPoint{
		FreqMHz:     p.FreqMHz,
		SwitchCount: p.SwitchCount,
		Phase:       p.Phase,
		Theta:       p.Theta,
		Valid:       p.Valid,
		Pruned:      p.Pruned,
		FailReason:  p.FailReason,
		Metrics: topology.Metrics{
			Power: topology.PowerBreakdown{
				SwitchMW:     p.Metrics.Power.SwitchMW,
				SwitchLinkMW: p.Metrics.Power.SwitchLinkMW,
				CoreLinkMW:   p.Metrics.Power.CoreLinkMW,
				NIMW:         p.Metrics.Power.NIMW,
			},
			AvgLatencyCycles:  p.Metrics.AvgLatencyCycles,
			MaxLatencyCycles:  p.Metrics.MaxLatencyCycles,
			TotalWireLengthMM: p.Metrics.TotalWireLengthMM,
			NoCAreaMM2:        p.Metrics.NoCAreaMM2,
			MaxILL:            p.Metrics.MaxILL,
			TSVMacros:         p.Metrics.TSVMacros,
			NumSwitches:       p.Metrics.NumSwitches,
			LatencyViolations: p.Metrics.LatencyViolations,
			SpareTSVMacros:    p.Metrics.SpareTSVMacros,
			WireLengthsMM:     append([]float64(nil), p.Metrics.WireLengthsMM...),
		},
		Route: route.Result{
			Routed:           p.Route.Routed,
			IndirectSwitches: p.Route.IndirectSwitches,
			DeadlockRetries:  p.Route.DeadlockRetries,
		},
		Survivability: p.Survivability,
		Contention:    p.Contention,
		SimTriage:     p.SimTriage,
	}
	if p.Route.FailedFlows > 0 {
		dp.Route.Failed = make([]int, p.Route.FailedFlows)
	}
	return dp
}

// Topology returns the synthesized NoC of this point, or nil when the point
// has none (some rejected points, or points restored from JSON).
func (p *DesignPoint) Topology() *Topology {
	if p.topo == nil {
		return nil
	}
	return &Topology{t: p.topo}
}

// Cost returns the scalar objective of the point under the given weights.
func (p DesignPoint) Cost(powerWeight, latencyWeight float64) float64 {
	return powerWeight*p.Metrics.Power.TotalMW() + latencyWeight*p.Metrics.AvgLatencyCycles
}

// Report renders the point's metrics as "key value" lines, one metric per
// line (the format of the CLI's report.txt).
func (p *DesignPoint) Report() string {
	var b strings.Builder
	m := p.Metrics
	fmt.Fprintf(&b, "frequency_mhz %g\n", p.FreqMHz)
	fmt.Fprintf(&b, "switches %d\n", m.NumSwitches)
	fmt.Fprintf(&b, "total_power_mw %.3f\n", m.Power.TotalMW())
	fmt.Fprintf(&b, "switch_power_mw %.3f\n", m.Power.SwitchMW)
	fmt.Fprintf(&b, "switch_link_power_mw %.3f\n", m.Power.SwitchLinkMW)
	fmt.Fprintf(&b, "core_link_power_mw %.3f\n", m.Power.CoreLinkMW)
	fmt.Fprintf(&b, "ni_power_mw %.3f\n", m.Power.NIMW)
	fmt.Fprintf(&b, "avg_latency_cycles %.3f\n", m.AvgLatencyCycles)
	fmt.Fprintf(&b, "max_latency_cycles %.3f\n", m.MaxLatencyCycles)
	fmt.Fprintf(&b, "max_inter_layer_links %d\n", m.MaxILL)
	fmt.Fprintf(&b, "tsv_macros %d\n", m.TSVMacros)
	if m.SpareTSVMacros > 0 {
		fmt.Fprintf(&b, "spare_tsv_macros %d\n", m.SpareTSVMacros)
	}
	fmt.Fprintf(&b, "noc_area_mm2 %.4f\n", m.NoCAreaMM2)
	if e := p.Contention; e != nil {
		fmt.Fprintf(&b, "contention_avg_latency_cycles %.3f\n", e.AvgLatencyCycles)
		fmt.Fprintf(&b, "contention_max_latency_cycles %.3f\n", e.MaxLatencyCycles)
		fmt.Fprintf(&b, "contention_max_utilization %.4f\n", e.MaxUtilization)
		if e.SaturatedLinks > 0 {
			fmt.Fprintf(&b, "contention_saturated_links %d\n", e.SaturatedLinks)
		}
	}
	if p.SimTriage != "" {
		fmt.Fprintf(&b, "sim_triage %s\n", p.SimTriage)
	}
	if s := p.Survivability; s != nil {
		fmt.Fprintf(&b, "fault_plans %d\n", s.Plans)
		fmt.Fprintf(&b, "fault_survived_fraction %.4f\n", s.SurvivedFraction())
		fmt.Fprintf(&b, "fault_absorbed %d\n", s.Absorbed)
		fmt.Fprintf(&b, "fault_repaired %d\n", s.Repaired)
		fmt.Fprintf(&b, "fault_dead %d\n", s.Dead)
		fmt.Fprintf(&b, "fault_worst_latency_inflation %.4f\n", s.WorstLatencyInflation)
		if s.SpareTSVs > 0 || s.SpareWires > 0 {
			fmt.Fprintf(&b, "spare_utilization %.4f\n", s.SpareUtilization)
		}
	}
	return b.String()
}

// Event reports the completion of one design-point evaluation during a run.
type Event struct {
	// Done is the number of design points evaluated so far.
	Done int `json:"done"`
	// Total is the number of design points scheduled so far. It can grow
	// while the run is in progress: the theta rescaling loop and the Phase-2
	// fallback schedule additional points only when the initial sweep leaves
	// switch counts unmet.
	Total int `json:"total"`
	// Point is the design point that just finished (valid or not).
	Point DesignPoint `json:"point"`
}

// CacheStats reports the partition-cache activity of one synthesis run: how
// many PG/SPG/LPG constructions and min-cut partitions were answered from the
// sweep-wide cache versus computed. With the cache disabled every lookup is a
// miss.
type CacheStats struct {
	// Hits is the number of lookups answered from the cache.
	Hits int
	// Misses is the number of lookups that computed their entry.
	Misses int
}

// Result is the outcome of a synthesis run.
type Result struct {
	// Points holds every explored design point (valid and invalid), ordered
	// by frequency then switch count. The ordering is deterministic and
	// independent of the parallelism used.
	Points []DesignPoint `json:"points"`
	// BestIndex is the index into Points of the valid point with the lowest
	// objective, or -1 when no valid point exists.
	BestIndex int `json:"best_index"`
	// Cache reports the partition-cache activity of the run. It is excluded
	// from JSON so that cache-enabled and cache-disabled runs serialise to
	// byte-identical results.
	Cache CacheStats `json:"-"`
}

func resultFromInternal(r *synth.Result) *Result {
	out := &Result{Points: make([]DesignPoint, len(r.Points)), BestIndex: -1}
	for i := range r.Points {
		// Best aliases an element of Points, so any LP refinement of the
		// winning point is already reflected in the slice element.
		out.Points[i] = pointFromInternal(r.Points[i])
		if r.Best == &r.Points[i] {
			out.BestIndex = i
		}
	}
	out.Cache = CacheStats{Hits: r.Cache.Hits, Misses: r.Cache.Misses}
	return out
}

// Best returns the best valid design point, or nil when no valid point
// exists.
func (r *Result) Best() *DesignPoint {
	if r.BestIndex < 0 || r.BestIndex >= len(r.Points) {
		return nil
	}
	return &r.Points[r.BestIndex]
}

// ValidPoints returns only the valid design points.
func (r *Result) ValidPoints() []DesignPoint {
	var out []DesignPoint
	for _, p := range r.Points {
		if p.Valid {
			out = append(out, p)
		}
	}
	return out
}

// ParetoFront returns the valid points that are not dominated in
// (power, latency) by any other valid point, sorted by power.
func (r *Result) ParetoFront() []DesignPoint {
	valid := r.ValidPoints()
	power := make([]float64, len(valid))
	latency := make([]float64, len(valid))
	for i, p := range valid {
		power[i] = p.Metrics.Power.TotalMW()
		latency[i] = p.Metrics.AvgLatencyCycles
	}
	idx := synth.ParetoIndices(power, latency)
	front := make([]DesignPoint, len(idx))
	for i, j := range idx {
		front[i] = valid[j]
	}
	return front
}

// Text renders a human-readable summary of the run: point counts, the best
// point, and the power/latency trade-off curve.
func (r *Result) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "explored %d design points, %d valid\n", len(r.Points), len(r.ValidPoints()))
	best := r.Best()
	if best == nil {
		b.WriteString("no valid topology meets the constraints\n")
		return b.String()
	}
	fmt.Fprintf(&b, "best point: %d switches at %.0f MHz, %.2f mW, %.2f cycles avg latency, %d inter-layer links\n",
		best.Metrics.NumSwitches, best.FreqMHz, best.Metrics.Power.TotalMW(),
		best.Metrics.AvgLatencyCycles, best.Metrics.MaxILL)
	front := r.ParetoFront()
	if len(front) > 1 {
		b.WriteString("power/latency trade-off:\n")
		for _, p := range front {
			fmt.Fprintf(&b, "  %3d switches @ %4.0f MHz: %8.2f mW  %6.2f cycles\n",
				p.Metrics.NumSwitches, p.FreqMHz, p.Metrics.Power.TotalMW(), p.Metrics.AvgLatencyCycles)
		}
	}
	return b.String()
}

// WriteJSON writes the result as indented JSON. The serialisation is
// canonical: for equal inputs the engine produces byte-identical output
// regardless of parallelism, caching, progress callbacks or the scheduler
// used, which is what makes results content-addressable (see Fingerprint).
func (r *Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// MarshalStable returns exactly the bytes WriteJSON would write: the
// canonical serialisation stored by the design-point cache and served by
// sunfloor-server.
func (r *Result) MarshalStable() ([]byte, error) {
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// ReadResult parses a serialised Result (the WriteJSON format, as stored in
// the design-point cache or returned by a sunfloor-server result fetch).
// Restored points carry their scalar fields and Metrics but no live
// Topology, exactly like any other Result that crossed a JSON boundary.
func ReadResult(r io.Reader) (*Result, error) {
	dec := json.NewDecoder(r)
	var res Result
	if err := dec.Decode(&res); err != nil {
		return nil, fmt.Errorf("sunfloor3d: parsing serialised result: %w", err)
	}
	return &res, nil
}
