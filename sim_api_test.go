package sunfloor3d_test

// Tests of the simulation surface of the public API: WithSimulation attaching
// SimStats to valid points, JSON stability with simulation enabled, and the
// Topology-level Simulate / ZeroLoadLatencies entry points.

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"testing"

	"sunfloor3d"
)

// TestWithSimulationAttachesStats checks that every valid design point of a
// simulated run carries deterministic SimStats and that invalid points carry
// none.
func TestWithSimulationAttachesStats(t *testing.T) {
	d := apiDesign(t)
	cfg := sunfloor3d.DefaultSimConfig()
	cfg.Cycles = 1000
	cfg.DrainCycles = 1000
	res, err := sunfloor3d.Synthesize(context.Background(), d,
		sunfloor3d.WithMaxILL(10),
		sunfloor3d.WithSimulation(cfg),
	)
	if err != nil {
		t.Fatal(err)
	}
	simulated := 0
	for _, p := range res.Points {
		if p.Valid {
			if p.Sim == nil {
				t.Fatalf("valid point (%d switches) has no SimStats", p.SwitchCount)
			}
			if p.Sim.Deadlock || p.Sim.Livelock {
				t.Fatalf("point (%d switches) deadlocked: %+v", p.SwitchCount, p.Sim)
			}
			if p.Sim.PacketsInjected == 0 {
				t.Fatalf("point (%d switches) injected nothing", p.SwitchCount)
			}
			simulated++
		} else if p.Sim != nil {
			t.Fatalf("invalid point (%d switches) carries SimStats", p.SwitchCount)
		}
	}
	if simulated == 0 {
		t.Fatal("no point was simulated")
	}
}

// TestSimulationKeepsJSONStable checks the serialisation contract: results
// with and without simulation marshal to byte-identical JSON, like Elapsed
// and Cache already do.
func TestSimulationKeepsJSONStable(t *testing.T) {
	d := apiDesign(t)
	ctx := context.Background()
	plain, err := sunfloor3d.Synthesize(ctx, d, sunfloor3d.WithMaxILL(10))
	if err != nil {
		t.Fatal(err)
	}
	cfg := sunfloor3d.DefaultSimConfig()
	cfg.Cycles = 500
	cfg.DrainCycles = 500
	simmed, err := sunfloor3d.Synthesize(ctx, d,
		sunfloor3d.WithMaxILL(10), sunfloor3d.WithSimulation(cfg))
	if err != nil {
		t.Fatal(err)
	}
	a, err := json.Marshal(plain)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(simmed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("simulation changed the serialised result:\nplain: %s\nsim:   %s", a, b)
	}
}

// TestSimulationDeterministicAcrossParallelism checks that the attached
// SimStats are identical between serial and parallel sweeps.
func TestSimulationDeterministicAcrossParallelism(t *testing.T) {
	d := apiDesign(t)
	ctx := context.Background()
	cfg := sunfloor3d.DefaultSimConfig()
	cfg.Cycles = 800
	cfg.DrainCycles = 800
	run := func(jobs int) *sunfloor3d.Result {
		t.Helper()
		res, err := sunfloor3d.Synthesize(ctx, d,
			sunfloor3d.WithMaxILL(10),
			sunfloor3d.WithParallelism(jobs),
			sunfloor3d.WithSimulation(cfg),
		)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial, parallel := run(1), run(8)
	if len(serial.Points) != len(parallel.Points) {
		t.Fatalf("point counts differ: %d vs %d", len(serial.Points), len(parallel.Points))
	}
	for i := range serial.Points {
		sj, err := json.Marshal(serial.Points[i].Sim)
		if err != nil {
			t.Fatal(err)
		}
		pj, err := json.Marshal(parallel.Points[i].Sim)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(sj, pj) {
			t.Fatalf("point %d SimStats differ between serial and parallel:\n%s\n%s", i, sj, pj)
		}
	}
}

// TestTopologySimulateAndZeroLoad exercises the Topology-level simulation
// entry points and the public half of the sim-vs-analytic equivalence: the
// average zero-load latency over all flows equals Metrics.AvgLatencyCycles.
func TestTopologySimulateAndZeroLoad(t *testing.T) {
	d := apiDesign(t)
	res, err := sunfloor3d.Synthesize(context.Background(), d, sunfloor3d.WithMaxILL(10))
	if err != nil {
		t.Fatal(err)
	}
	best := res.Best()
	if best == nil {
		t.Fatal("no valid point")
	}
	top := best.Topology()

	lats, err := top.ZeroLoadLatencies()
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for f, l := range lats {
		if l < 1 {
			t.Errorf("flow %d zero-load latency %v below one switch cycle", f, l)
		}
		sum += l
	}
	if avg := sum / float64(len(lats)); math.Abs(avg-best.Metrics.AvgLatencyCycles) > 1e-9 {
		t.Fatalf("zero-load avg %v != analytic avg %v", avg, best.Metrics.AvgLatencyCycles)
	}

	cfg := sunfloor3d.DefaultSimConfig()
	cfg.Profile = sunfloor3d.SimHotspot
	cfg.Cycles = 600
	cfg.DrainCycles = 600
	st, err := top.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Profile != "hotspot" || !st.Healthy() {
		t.Fatalf("unexpected simulation outcome: %+v", st)
	}
	if _, err := top.Simulate(sunfloor3d.SimConfig{}); err == nil {
		t.Fatal("zero SimConfig should be rejected")
	}
	if _, err := sunfloor3d.NewEngine(sunfloor3d.WithSimulation(sunfloor3d.SimConfig{})); err == nil {
		t.Fatal("engine must reject an invalid simulation config")
	}
}
