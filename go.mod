module sunfloor3d

go 1.22
