// Package noclib models the power, delay and area of the NoC building blocks
// used by the synthesis flow: switches, network interfaces, planar links and
// TSV-based vertical links, plus the yield model of Fig. 1 that motivates the
// inter-layer link constraint.
//
// The paper uses the xpipesLite component library characterised from 65 nm
// post-layout implementations. That library is proprietary, so this package
// substitutes analytic models calibrated to the magnitudes the paper reports:
// a switch costs a few mW at 1 GHz and a few thousand gates; the maximum
// unrepeated planar link is 1.5 mm in M2/M3; TSVs (4 um diameter, 8 um pitch)
// have roughly one order of magnitude lower R and C than a moderate planar
// link and a delay of 16-18.5 ps; larger crossbars lower the maximum switch
// operating frequency. Only the relative ordering of design points matters
// to the synthesis algorithm, and that ordering is preserved.
package noclib

import (
	"fmt"
	"math"
)

// Library bundles all technology parameters consumed by the synthesis flow.
// The zero value is not usable; construct one with DefaultLibrary (65 nm low
// power, matching the paper's experimental setup) and override fields as
// needed.
type Library struct {
	// TechnologyNM is the feature size in nanometres (informational).
	TechnologyNM int

	// LinkWidthBits is the data width of every NoC link in bits.
	LinkWidthBits int

	// SwitchBasePowerMW is the power of a minimal 2x2 switch at ReferenceFreqMHz
	// with zero load, in milliwatts.
	SwitchBasePowerMW float64
	// SwitchPortPowerMW is the additional power per input or output port at the
	// reference frequency, in milliwatts.
	SwitchPortPowerMW float64
	// SwitchTrafficPowerMWPerGBps is the load-dependent switch power in
	// milliwatts per GB/s of traffic crossing the switch.
	SwitchTrafficPowerMWPerGBps float64

	// SwitchBaseAreaMM2 and SwitchPortAreaMM2 give switch area as
	// base + ports^2 * portArea (crossbar area grows quadratically).
	SwitchBaseAreaMM2 float64
	SwitchPortAreaMM2 float64

	// NIPowerMW is the power of one network interface at the reference
	// frequency; NIAreaMM2 is its area.
	NIPowerMW float64
	NIAreaMM2 float64

	// ReferenceFreqMHz is the frequency at which the power numbers above are
	// characterised. Dynamic power scales linearly with frequency.
	ReferenceFreqMHz float64

	// WirePowerMWPerMMPerGBps is the planar link power per millimetre of wire
	// per GB/s of carried bandwidth.
	WirePowerMWPerMMPerGBps float64
	// WireLeakagePowerMWPerMM is the bandwidth-independent wire power
	// (repeaters and leakage) per millimetre.
	WireLeakagePowerMWPerMM float64
	// WireDelayPSPerMM is the (repeated) planar wire delay per millimetre.
	WireDelayPSPerMM float64
	// MaxUnrepeatedLinkMM is the longest planar segment that can be traversed
	// in one cycle without pipelining at the reference frequency.
	MaxUnrepeatedLinkMM float64

	// TSVDelayPS is the delay of a vertical hop through one layer.
	TSVDelayPS float64
	// TSVPowerMWPerGBps is the vertical link power per GB/s (about an order
	// of magnitude below a 1 mm planar wire, per the TSV models of Loi et al.).
	TSVPowerMWPerGBps float64
	// TSVPitchUM is the TSV pitch in micrometres; with LinkWidthBits wires a
	// TSV macro occupies (pitch * bits)^0.5-ish square area, see TSVMacroArea.
	TSVPitchUM float64
	// VerticalPitchMM is the physical distance between adjacent layers (die
	// thickness plus bond), used to convert layer crossings to wire length.
	VerticalPitchMM float64

	// MaxSwitchFreqMHz maps the number of switch ports to the maximum
	// operating frequency: f_max(ports) = SwitchFreqK / ports, clamped to
	// SwitchFreqCapMHz. Larger crossbars and arbiters have longer critical
	// paths, as described in Section V-B of the paper.
	SwitchFreqK      float64
	SwitchFreqCapMHz float64
}

// DefaultLibrary returns the 65 nm low-power library used by all experiments.
func DefaultLibrary() Library {
	return Library{
		TechnologyNM:  65,
		LinkWidthBits: 32,

		SwitchBasePowerMW:           0.8,
		SwitchPortPowerMW:           0.35,
		SwitchTrafficPowerMWPerGBps: 0.9,

		SwitchBaseAreaMM2: 0.012,
		SwitchPortAreaMM2: 0.0009,

		NIPowerMW: 0.45,
		NIAreaMM2: 0.02,

		ReferenceFreqMHz: 1000,

		WirePowerMWPerMMPerGBps: 0.30,
		WireLeakagePowerMWPerMM: 0.05,
		WireDelayPSPerMM:        180,
		MaxUnrepeatedLinkMM:     1.5,

		TSVDelayPS:        18.5,
		TSVPowerMWPerGBps: 0.03,
		TSVPitchUM:        8,
		VerticalPitchMM:   0.05,

		SwitchFreqK:      4800, // a 12-port switch tops out at 400 MHz, a 6-port one at 800 MHz
		SwitchFreqCapMHz: 1000,
	}
}

// Validate checks that all library parameters are physically meaningful.
func (l Library) Validate() error {
	checks := []struct {
		ok  bool
		msg string
	}{
		{l.LinkWidthBits > 0, "LinkWidthBits must be positive"},
		{l.SwitchBasePowerMW > 0, "SwitchBasePowerMW must be positive"},
		{l.SwitchPortPowerMW > 0, "SwitchPortPowerMW must be positive"},
		{l.SwitchTrafficPowerMWPerGBps >= 0, "SwitchTrafficPowerMWPerGBps must be non-negative"},
		{l.SwitchBaseAreaMM2 > 0, "SwitchBaseAreaMM2 must be positive"},
		{l.SwitchPortAreaMM2 > 0, "SwitchPortAreaMM2 must be positive"},
		{l.NIPowerMW > 0, "NIPowerMW must be positive"},
		{l.NIAreaMM2 > 0, "NIAreaMM2 must be positive"},
		{l.ReferenceFreqMHz > 0, "ReferenceFreqMHz must be positive"},
		{l.WirePowerMWPerMMPerGBps > 0, "WirePowerMWPerMMPerGBps must be positive"},
		{l.WireLeakagePowerMWPerMM >= 0, "WireLeakagePowerMWPerMM must be non-negative"},
		{l.WireDelayPSPerMM > 0, "WireDelayPSPerMM must be positive"},
		{l.MaxUnrepeatedLinkMM > 0, "MaxUnrepeatedLinkMM must be positive"},
		{l.TSVDelayPS > 0, "TSVDelayPS must be positive"},
		{l.TSVPowerMWPerGBps >= 0, "TSVPowerMWPerGBps must be non-negative"},
		{l.TSVPitchUM > 0, "TSVPitchUM must be positive"},
		{l.VerticalPitchMM > 0, "VerticalPitchMM must be positive"},
		{l.SwitchFreqK > 0, "SwitchFreqK must be positive"},
		{l.SwitchFreqCapMHz > 0, "SwitchFreqCapMHz must be positive"},
	}
	for _, c := range checks {
		if !c.ok {
			return fmt.Errorf("noclib: %s", c.msg)
		}
	}
	return nil
}

// freqScale returns the dynamic-power scaling factor for the given operating
// frequency relative to the reference frequency.
func (l Library) freqScale(freqMHz float64) float64 {
	return freqMHz / l.ReferenceFreqMHz
}

// SwitchPowerMW returns the power consumption of a switch with the given
// number of input and output ports, operating at freqMHz, forwarding
// trafficMBps megabytes per second of aggregate traffic.
func (l Library) SwitchPowerMW(inPorts, outPorts int, freqMHz, trafficMBps float64) float64 {
	if inPorts < 1 {
		inPorts = 1
	}
	if outPorts < 1 {
		outPorts = 1
	}
	static := l.SwitchBasePowerMW + float64(inPorts+outPorts)*l.SwitchPortPowerMW
	dynamic := l.SwitchTrafficPowerMWPerGBps * trafficMBps / 1000.0
	return static*l.freqScale(freqMHz) + dynamic
}

// SwitchPortMarginalMW returns the static power of adding one port to a
// switch dimension (input or output) currently holding `current` ports, at
// freqMHz. It equals SwitchPowerMW(current+1, other, f, 0) −
// SwitchPowerMW(current, other, f, 0) — zero when current is 0, because
// SwitchPowerMW clamps empty dimensions to one port — but is computed in
// closed form so the result is bit-identical regardless of the other
// dimension's port count. The router's incremental cost invalidation relies
// on that exact independence: a subtraction of two SwitchPowerMW
// evaluations drifts by ULPs as the other dimension grows, which is enough
// to flip shortest-path ties.
func (l Library) SwitchPortMarginalMW(current int, freqMHz float64) float64 {
	if current < 1 {
		return 0
	}
	return l.SwitchPortPowerMW * l.freqScale(freqMHz)
}

// SwitchAreaMM2 returns the silicon area of a switch with the given port
// counts. Crossbar area grows with the product of input and output ports.
func (l Library) SwitchAreaMM2(inPorts, outPorts int) float64 {
	if inPorts < 1 {
		inPorts = 1
	}
	if outPorts < 1 {
		outPorts = 1
	}
	return l.SwitchBaseAreaMM2 + float64(inPorts*outPorts)*l.SwitchPortAreaMM2
}

// NIPowerMWAt returns the power of one network interface at freqMHz.
func (l Library) NIPowerMWAt(freqMHz float64) float64 {
	return l.NIPowerMW * l.freqScale(freqMHz)
}

// MaxSwitchSize returns the maximum number of ports (max of in and out) a
// switch may have while still closing timing at freqMHz. This is the
// max_sw_size input of Algorithm 2. The result is at least 2.
func (l Library) MaxSwitchSize(freqMHz float64) int {
	if freqMHz <= 0 {
		return 2
	}
	f := math.Min(freqMHz, l.SwitchFreqCapMHz)
	size := int(math.Floor(l.SwitchFreqK / f))
	if size < 2 {
		size = 2
	}
	return size
}

// MaxSwitchFreqMHz returns the maximum operating frequency supported by a
// switch with the given number of ports.
func (l Library) MaxSwitchFreqMHz(ports int) float64 {
	if ports < 2 {
		ports = 2
	}
	return math.Min(l.SwitchFreqK/float64(ports), l.SwitchFreqCapMHz)
}

// WirePowerMW returns the power of a planar wire segment of the given length
// carrying bandwidthMBps.
func (l Library) WirePowerMW(lengthMM, bandwidthMBps float64) float64 {
	if lengthMM < 0 {
		lengthMM = 0
	}
	return lengthMM * (l.WirePowerMWPerMMPerGBps*bandwidthMBps/1000.0 + l.WireLeakagePowerMWPerMM)
}

// WireDelayPS returns the delay of a planar wire of the given length.
func (l Library) WireDelayPS(lengthMM float64) float64 {
	if lengthMM < 0 {
		lengthMM = 0
	}
	return lengthMM * l.WireDelayPSPerMM
}

// VerticalLinkPowerMW returns the power of a vertical (TSV) link crossing the
// given number of layers and carrying bandwidthMBps.
func (l Library) VerticalLinkPowerMW(layers int, bandwidthMBps float64) float64 {
	if layers < 0 {
		layers = -layers
	}
	return float64(layers) * l.TSVPowerMWPerGBps * bandwidthMBps / 1000.0
}

// VerticalLinkDelayPS returns the delay of a vertical link crossing the given
// number of layers.
func (l Library) VerticalLinkDelayPS(layers int) float64 {
	if layers < 0 {
		layers = -layers
	}
	return float64(layers) * l.TSVDelayPS
}

// TSVMacroAreaMM2 returns the silicon area reserved by one TSV macro for a
// link of LinkWidthBits wires (plus control), at the library's TSV pitch.
func (l Library) TSVMacroAreaMM2() float64 {
	// One TSV per signal wire plus ~10% control/redundancy overhead, each
	// occupying pitch^2 of silicon.
	wires := float64(l.LinkWidthBits) * 1.1
	pitchMM := l.TSVPitchUM / 1000.0
	return wires * pitchMM * pitchMM
}

// LinkPipelineStages returns the number of pipeline stages required for a
// planar link of the given length to sustain full throughput at freqMHz. A
// link shorter than the per-cycle reach needs no extra stage (returns 0).
func (l Library) LinkPipelineStages(lengthMM, freqMHz float64) int {
	if lengthMM <= 0 || freqMHz <= 0 {
		return 0
	}
	cyclePS := 1e6 / freqMHz
	reachable := math.Min(l.MaxUnrepeatedLinkMM, cyclePS/l.WireDelayPSPerMM)
	if reachable <= 0 {
		return 0
	}
	stages := int(math.Ceil(lengthMM/reachable)) - 1
	if stages < 0 {
		stages = 0
	}
	return stages
}

// CyclesForLink returns the number of NoC cycles needed to traverse a planar
// link of the given length at freqMHz (at least 1).
func (l Library) CyclesForLink(lengthMM, freqMHz float64) float64 {
	return float64(1 + l.LinkPipelineStages(lengthMM, freqMHz))
}

// MaxInterLayerLinks converts a TSV budget between two adjacent layers into
// the maximum number of NoC links crossing that boundary (the paper's
// max_ill), given that each link needs LinkWidthBits TSVs plus 10% overhead.
func (l Library) MaxInterLayerLinks(tsvBudget int) int {
	perLink := int(math.Ceil(float64(l.LinkWidthBits) * 1.1))
	if perLink <= 0 || tsvBudget <= 0 {
		return 0
	}
	return tsvBudget / perLink
}
