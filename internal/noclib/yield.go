package noclib

import "math"

// This file implements the yield-versus-TSV-count model behind Fig. 1 of the
// paper. The figure (from Miyakawa, ASPDAC 2009) shows that for every 3-D
// manufacturing process the stack yield stays roughly flat up to a
// process-dependent TSV count and then drops rapidly. The synthesis flow uses
// the knee of this curve to derive the max_ill constraint.

// Process identifies a 3-D manufacturing process with its own yield
// characteristics.
type Process struct {
	// Name of the process (informational).
	Name string
	// BaseYield is the stack yield with no TSVs (bonding losses only).
	BaseYield float64
	// TSVFailureRate is the independent failure probability of a single TSV.
	TSVFailureRate float64
	// KneeTSVs is the TSV count up to which redundancy and repair keep the
	// yield near BaseYield; beyond it the per-TSV failures apply fully.
	KneeTSVs int
}

// StandardProcesses returns the three representative processes plotted in
// Fig. 1: an aggressive wafer-level process with a low knee, a mainstream
// process, and a conservative process tolerating many TSVs.
func StandardProcesses() []Process {
	return []Process{
		{Name: "wafer-level-A", BaseYield: 0.98, TSVFailureRate: 5e-4, KneeTSVs: 400},
		{Name: "wafer-level-B", BaseYield: 0.96, TSVFailureRate: 2e-4, KneeTSVs: 900},
		{Name: "die-to-wafer", BaseYield: 0.93, TSVFailureRate: 8e-5, KneeTSVs: 1600},
	}
}

// Yield returns the stack yield when the design uses the given total number
// of TSVs on the process.
func (p Process) Yield(tsvs int) float64 {
	if tsvs < 0 {
		tsvs = 0
	}
	excess := 0
	if tsvs > p.KneeTSVs {
		excess = tsvs - p.KneeTSVs
	}
	// Below the knee, failures are masked by redundancy except for a small
	// residual; above it every additional TSV multiplies the survival
	// probability.
	residual := math.Pow(1-p.TSVFailureRate/10, float64(minInt(tsvs, p.KneeTSVs)))
	exposed := math.Pow(1-p.TSVFailureRate, float64(excess))
	return p.BaseYield * residual * exposed
}

// MaxTSVsForYield returns the largest TSV count whose yield is at least the
// given target. It returns 0 if even a TSV-free stack misses the target.
func (p Process) MaxTSVsForYield(target float64) int {
	if p.Yield(0) < target {
		return 0
	}
	lo, hi := 0, 1<<20
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if p.Yield(mid) >= target {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
