package noclib

// PowerFloorMW returns an analytic lower bound on the total NoC power of any
// complete topology the synthesis engine can produce with at least
// `switches` switches for a design with `cores` cores and
// `totalTrafficMBps` of aggregate flow bandwidth, at freqMHz. It is the
// branch-and-bound bound of the design-space explorer: build-independent, so
// it holds for every partitioning, theta retry and Phase-2 fallback alike.
//
// The bound keeps only terms every such topology must pay:
//
//   - per-switch base power for the requested switch count (the router can
//     only add switches, never remove them);
//   - port power for max(cores, switches) input and output ports — every
//     attached core contributes one input and one output port at its switch,
//     and SwitchPowerMW clamps every empty port dimension to one;
//   - switch traffic power for the aggregate bandwidth once — every routed
//     flow traverses at least one switch;
//   - network-interface power for every core.
//
// Link power (wire and vertical) is dropped entirely. The bound is monotone
// nondecreasing in `switches`, which is what lets the explorer prune whole
// switch-count suffixes.
func (l Library) PowerFloorMW(cores, switches int, freqMHz, totalTrafficMBps float64) float64 {
	if switches < 1 {
		switches = 1
	}
	ports := cores
	if switches > ports {
		ports = switches
	}
	static := float64(switches)*l.SwitchBasePowerMW + float64(2*ports)*l.SwitchPortPowerMW
	dynamic := l.SwitchTrafficPowerMWPerGBps * totalTrafficMBps / 1000.0
	return static*l.freqScale(freqMHz) + dynamic + float64(cores)*l.NIPowerMWAt(freqMHz)
}
