package noclib

import (
	"testing"
	"testing/quick"
)

func TestDefaultLibraryValid(t *testing.T) {
	if err := DefaultLibrary().Validate(); err != nil {
		t.Fatalf("DefaultLibrary invalid: %v", err)
	}
}

func TestValidateCatchesBadFields(t *testing.T) {
	mutations := []func(*Library){
		func(l *Library) { l.LinkWidthBits = 0 },
		func(l *Library) { l.SwitchBasePowerMW = 0 },
		func(l *Library) { l.SwitchPortPowerMW = -1 },
		func(l *Library) { l.SwitchTrafficPowerMWPerGBps = -1 },
		func(l *Library) { l.SwitchBaseAreaMM2 = 0 },
		func(l *Library) { l.SwitchPortAreaMM2 = 0 },
		func(l *Library) { l.NIPowerMW = 0 },
		func(l *Library) { l.NIAreaMM2 = 0 },
		func(l *Library) { l.ReferenceFreqMHz = 0 },
		func(l *Library) { l.WirePowerMWPerMMPerGBps = 0 },
		func(l *Library) { l.WireLeakagePowerMWPerMM = -0.1 },
		func(l *Library) { l.WireDelayPSPerMM = 0 },
		func(l *Library) { l.MaxUnrepeatedLinkMM = 0 },
		func(l *Library) { l.TSVDelayPS = 0 },
		func(l *Library) { l.TSVPowerMWPerGBps = -1 },
		func(l *Library) { l.TSVPitchUM = 0 },
		func(l *Library) { l.VerticalPitchMM = 0 },
		func(l *Library) { l.SwitchFreqK = 0 },
		func(l *Library) { l.SwitchFreqCapMHz = 0 },
	}
	for i, mut := range mutations {
		l := DefaultLibrary()
		mut(&l)
		if err := l.Validate(); err == nil {
			t.Errorf("mutation %d: expected validation error", i)
		}
	}
}

func TestSwitchPowerMonotoneInPorts(t *testing.T) {
	l := DefaultLibrary()
	prev := 0.0
	for p := 2; p <= 12; p++ {
		pw := l.SwitchPowerMW(p, p, 400, 1000)
		if pw <= prev {
			t.Fatalf("switch power not increasing with ports: %d ports -> %v (prev %v)", p, pw, prev)
		}
		prev = pw
	}
}

func TestSwitchPowerScalesWithFrequencyAndTraffic(t *testing.T) {
	l := DefaultLibrary()
	low := l.SwitchPowerMW(4, 4, 200, 0)
	high := l.SwitchPowerMW(4, 4, 800, 0)
	if high <= low {
		t.Error("static switch power must grow with frequency")
	}
	idle := l.SwitchPowerMW(4, 4, 400, 0)
	busy := l.SwitchPowerMW(4, 4, 400, 4000)
	if busy <= idle {
		t.Error("switch power must grow with traffic")
	}
	// Degenerate port counts are clamped rather than producing nonsense.
	if l.SwitchPowerMW(0, -1, 400, 0) <= 0 {
		t.Error("clamped switch power must stay positive")
	}
}

func TestSwitchAreaGrowsQuadratically(t *testing.T) {
	l := DefaultLibrary()
	a4 := l.SwitchAreaMM2(4, 4)
	a8 := l.SwitchAreaMM2(8, 8)
	if a8 <= a4 {
		t.Error("area must grow with ports")
	}
	// Crossbar term: (64-16)*portArea difference
	wantDiff := 48 * l.SwitchPortAreaMM2
	if diff := a8 - a4; diff < wantDiff*0.99 || diff > wantDiff*1.01 {
		t.Errorf("area growth %v, want about %v", diff, wantDiff)
	}
	if l.SwitchAreaMM2(0, 0) <= 0 {
		t.Error("clamped area must stay positive")
	}
}

func TestMaxSwitchSizeAndFreqAreConsistent(t *testing.T) {
	l := DefaultLibrary()
	for _, f := range []float64{200, 400, 800, 1000} {
		size := l.MaxSwitchSize(f)
		if size < 2 {
			t.Fatalf("MaxSwitchSize(%v) = %d < 2", f, size)
		}
		// A switch of exactly that size must support the frequency...
		if got := l.MaxSwitchFreqMHz(size); got < f*0.999 {
			t.Errorf("switch of size %d supports only %v MHz < %v", size, got, f)
		}
	}
	// Higher frequency -> smaller or equal max size.
	if l.MaxSwitchSize(400) < l.MaxSwitchSize(800) {
		t.Error("max switch size must not grow with frequency")
	}
	if l.MaxSwitchSize(0) != 2 {
		t.Errorf("MaxSwitchSize(0) = %d, want 2", l.MaxSwitchSize(0))
	}
	if l.MaxSwitchFreqMHz(1) != l.MaxSwitchFreqMHz(2) {
		t.Error("port count below 2 should clamp")
	}
}

func TestWirePowerAndDelay(t *testing.T) {
	l := DefaultLibrary()
	if l.WirePowerMW(0, 1000) != 0 {
		t.Error("zero-length wire must have zero power")
	}
	if l.WirePowerMW(-1, 1000) != 0 {
		t.Error("negative length must clamp to zero")
	}
	p1 := l.WirePowerMW(1, 1000)
	p2 := l.WirePowerMW(2, 1000)
	if !almost(p2, 2*p1, 1e-9) {
		t.Errorf("wire power must be linear in length: %v vs %v", p2, 2*p1)
	}
	if l.WireDelayPS(2) != 2*l.WireDelayPSPerMM {
		t.Error("wire delay must be linear in length")
	}
	if l.WireDelayPS(-5) != 0 {
		t.Error("negative length delay must clamp to zero")
	}
}

func TestVerticalLinkCheaperThanPlanar(t *testing.T) {
	l := DefaultLibrary()
	// Per the paper, a vertical hop is substantially faster and more power
	// efficient than a moderate (1 mm) planar link.
	if l.VerticalLinkDelayPS(1) >= l.WireDelayPS(1.0) {
		t.Error("TSV hop must be faster than 1 mm planar wire")
	}
	if l.VerticalLinkPowerMW(1, 1000) >= l.WirePowerMW(1.0, 1000) {
		t.Error("TSV hop must consume less power than 1 mm planar wire")
	}
	if l.VerticalLinkPowerMW(-2, 1000) != l.VerticalLinkPowerMW(2, 1000) {
		t.Error("vertical power must use absolute layer distance")
	}
	if l.VerticalLinkDelayPS(-3) != l.VerticalLinkDelayPS(3) {
		t.Error("vertical delay must use absolute layer distance")
	}
}

func TestTSVMacroArea(t *testing.T) {
	l := DefaultLibrary()
	a := l.TSVMacroAreaMM2()
	if a <= 0 {
		t.Fatal("TSV macro area must be positive")
	}
	// 32 wires at 8um pitch: about 35 * 64e-6 mm^2 ~ 0.0023 mm^2, i.e. small
	// compared to a switch.
	if a >= l.SwitchAreaMM2(4, 4) {
		t.Errorf("TSV macro (%v mm2) should be smaller than a 4x4 switch (%v mm2)",
			a, l.SwitchAreaMM2(4, 4))
	}
}

func TestLinkPipelineStages(t *testing.T) {
	l := DefaultLibrary()
	if s := l.LinkPipelineStages(0.5, 400); s != 0 {
		t.Errorf("short link should need 0 stages, got %d", s)
	}
	if s := l.LinkPipelineStages(5.0, 400); s < 2 {
		t.Errorf("5 mm link at 400 MHz should need several stages, got %d", s)
	}
	if s := l.LinkPipelineStages(-1, 400); s != 0 {
		t.Errorf("negative length stages = %d", s)
	}
	if s := l.LinkPipelineStages(3, 0); s != 0 {
		t.Errorf("zero frequency stages = %d", s)
	}
	if c := l.CyclesForLink(0.5, 400); c != 1 {
		t.Errorf("CyclesForLink short = %v, want 1", c)
	}
	if c := l.CyclesForLink(5, 400); c < 3 {
		t.Errorf("CyclesForLink long = %v, want >= 3", c)
	}
}

func TestPipelineStagesMonotone(t *testing.T) {
	l := DefaultLibrary()
	f := func(a, b uint8) bool {
		la, lb := float64(a)/10, float64(b)/10
		if la > lb {
			la, lb = lb, la
		}
		return l.LinkPipelineStages(la, 400) <= l.LinkPipelineStages(lb, 400)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMaxInterLayerLinks(t *testing.T) {
	l := DefaultLibrary()
	if got := l.MaxInterLayerLinks(0); got != 0 {
		t.Errorf("MaxInterLayerLinks(0) = %d", got)
	}
	// 36 TSVs per 32-bit link (with 10% overhead): a 900-TSV budget gives 25
	// links, the constraint used throughout the paper's experiments.
	if got := l.MaxInterLayerLinks(900); got != 25 {
		t.Errorf("MaxInterLayerLinks(900) = %d, want 25", got)
	}
	if got := l.MaxInterLayerLinks(-10); got != 0 {
		t.Errorf("MaxInterLayerLinks(-10) = %d", got)
	}
}

func TestNIPower(t *testing.T) {
	l := DefaultLibrary()
	if l.NIPowerMWAt(500) >= l.NIPowerMWAt(1000) {
		t.Error("NI power must scale with frequency")
	}
}

func TestYieldModel(t *testing.T) {
	for _, p := range StandardProcesses() {
		if y := p.Yield(0); y > p.BaseYield+1e-9 || y < p.BaseYield*0.9 {
			t.Errorf("%s: Yield(0) = %v, base %v", p.Name, y, p.BaseYield)
		}
		// Monotone non-increasing in TSV count.
		prev := 2.0
		for _, n := range []int{0, 100, 500, 1000, 2000, 5000, 20000} {
			y := p.Yield(n)
			if y > prev+1e-12 {
				t.Errorf("%s: yield increased at %d TSVs", p.Name, n)
			}
			if y < 0 || y > 1 {
				t.Errorf("%s: yield out of range: %v", p.Name, y)
			}
			prev = y
		}
		// Sharp drop beyond the knee.
		atKnee := p.Yield(p.KneeTSVs)
		far := p.Yield(p.KneeTSVs * 10)
		if far >= atKnee {
			t.Errorf("%s: no drop after knee (%v vs %v)", p.Name, far, atKnee)
		}
		if p.Yield(-5) != p.Yield(0) {
			t.Errorf("%s: negative TSV count should clamp", p.Name)
		}
	}
}

func TestMaxTSVsForYield(t *testing.T) {
	p := StandardProcesses()[0]
	target := 0.90
	n := p.MaxTSVsForYield(target)
	if n <= 0 {
		t.Fatalf("MaxTSVsForYield = %d", n)
	}
	if p.Yield(n) < target {
		t.Errorf("yield at %d TSVs = %v < target", n, p.Yield(n))
	}
	if p.Yield(n+1) >= target {
		t.Errorf("n is not maximal: yield at %d TSVs = %v", n+1, p.Yield(n+1))
	}
	if got := p.MaxTSVsForYield(0.999); got != 0 {
		t.Errorf("unreachable target should give 0, got %d", got)
	}
}

func almost(a, b, eps float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < eps
}
