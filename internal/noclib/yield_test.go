package noclib

import "testing"

// TestMaxTSVsForYieldTable pins the documented edge behaviour of the yield
// inversion: targets above the TSV-free yield are unreachable and give 0, a
// target sitting exactly at the knee's yield admits at least the knee, and
// the inversion is consistent with the forward model at every answer.
func TestMaxTSVsForYieldTable(t *testing.T) {
	for _, p := range StandardProcesses() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			atKnee := p.Yield(p.KneeTSVs)
			cases := []struct {
				name   string
				target float64
				// wantZero: the target is unreachable even TSV-free.
				wantZero bool
				// wantMin is a lower bound on the returned count.
				wantMin int
			}{
				{name: "above base yield", target: p.BaseYield * 1.01, wantZero: true},
				{name: "above one", target: 1.1, wantZero: true},
				{name: "exactly base yield", target: p.Yield(0), wantMin: 0},
				{name: "at the knee", target: atKnee, wantMin: p.KneeTSVs},
				{name: "just below the knee", target: atKnee * 0.999, wantMin: p.KneeTSVs},
				{name: "deep below the knee", target: atKnee * 0.5, wantMin: p.KneeTSVs + 1},
			}
			for _, tc := range cases {
				t.Run(tc.name, func(t *testing.T) {
					n := p.MaxTSVsForYield(tc.target)
					if tc.wantZero {
						if n != 0 {
							t.Fatalf("MaxTSVsForYield(%g) = %d, want 0 (unreachable target)", tc.target, n)
						}
						return
					}
					if n < tc.wantMin {
						t.Fatalf("MaxTSVsForYield(%g) = %d, want at least %d", tc.target, n, tc.wantMin)
					}
					// The forward model must agree: n qualifies, n+1 does not.
					if y := p.Yield(n); y < tc.target {
						t.Errorf("Yield(%d) = %v misses the target %g the inversion promised", n, y, tc.target)
					}
					if y := p.Yield(n + 1); y >= tc.target {
						t.Errorf("n not maximal: Yield(%d) = %v still meets %g", n+1, y, tc.target)
					}
				})
			}

			// The inversion is antitone in the target: asking for more yield
			// never admits more TSVs.
			prev := -1
			targets := []float64{atKnee * 0.25, atKnee * 0.5, atKnee * 0.9, atKnee, p.Yield(0)}
			for _, target := range targets {
				n := p.MaxTSVsForYield(target)
				if prev >= 0 && n > prev {
					t.Errorf("target %g admits %d TSVs, more than the lower target before it (%d)", target, n, prev)
				}
				prev = n
			}
		})
	}
}
