package experiments

import (
	"fmt"
	"math"
	"sort"

	"sunfloor3d/internal/bench"
	"sunfloor3d/internal/floorplan"
	"sunfloor3d/internal/geom"
	"sunfloor3d/internal/place"
	"sunfloor3d/internal/synth"
	"sunfloor3d/internal/topology"
)

// FloorplanOutcome is the result of inserting the NoC of one design point
// with one floorplanning method.
type FloorplanOutcome struct {
	// ChipAreaMM2 is the stacked chip outline area after insertion.
	ChipAreaMM2 float64
	// PowerMW is the NoC power evaluated on the post-insertion positions.
	PowerMW float64
}

// customInsert runs the paper's custom insertion routine on a copy of the
// topology and evaluates the result.
func customInsert(t *topology.Topology) (FloorplanOutcome, error) {
	work := t.Clone()
	fp, err := place.InsertNoC(work)
	if err != nil {
		return FloorplanOutcome{}, err
	}
	applied := place.ApplyFloorplan(work, fp)
	return FloorplanOutcome{
		ChipAreaMM2: fp.ChipAreaMM2(),
		PowerMW:     applied.Evaluate().Power.TotalMW(),
	}, nil
}

// standardInsert emulates the constrained standard floorplanner baseline of
// the paper: per layer, the cores (fixed) and the layer's switches (movable)
// are handed to the SA sequence-pair floorplanner in constrained mode seeded
// with the current positions; the per-layer results are stitched back into
// the topology for evaluation.
func standardInsert(t *topology.Topology, seed int64, quick bool) (FloorplanOutcome, error) {
	work := t.Clone()
	design := work.Design.Clone()
	work.Design = design

	layers := design.NumLayers()
	for _, s := range work.Switches {
		if s.Layer+1 > layers {
			layers = s.Layer + 1
		}
	}
	inPorts, outPorts := work.SwitchPorts()

	var chipArea float64
	for l := 0; l < layers; l++ {
		coreIdx := design.CoresInLayer(l)
		var switchIdx []int
		for i, s := range work.Switches {
			if s.Layer == l {
				switchIdx = append(switchIdx, i)
			}
		}
		if len(coreIdx) == 0 && len(switchIdx) == 0 {
			continue
		}
		var blocks []floorplan.Block
		var initial []geom.Point
		for _, ci := range coreIdx {
			c := design.Cores[ci]
			blocks = append(blocks, floorplan.Block{Name: c.Name, W: c.Width, H: c.Height, Fixed: true})
			initial = append(initial, geom.Point{X: c.X, Y: c.Y})
		}
		for _, si := range switchIdx {
			area := work.Lib.SwitchAreaMM2(inPorts[si], outPorts[si])
			side := math.Sqrt(area)
			blocks = append(blocks, floorplan.Block{
				Name: fmt.Sprintf("sw%d", si), W: side, H: side,
			})
			initial = append(initial, geom.Point{
				X: work.Switches[si].Pos.X - side/2,
				Y: work.Switches[si].Pos.Y - side/2,
			})
		}
		params := floorplan.DefaultParams(seed + int64(l)*7)
		params.Constrained = true
		// Keep the cores reasonably close to their input placement
		// ("maintaining the relative positions of the cores"); the weight is
		// mild so the baseline can still legalise and compact.
		params.DisplacementWeight = 0.5
		if quick {
			params.Iterations = 60
			params.TemperatureSteps = 20
		}
		res, err := floorplan.FloorplanWithInitial(blocks, nil, initial, params)
		if err != nil {
			return FloorplanOutcome{}, err
		}
		if a := res.AreaMM2; a > chipArea {
			chipArea = a
		}
		// Write back the placed positions.
		for bi, ci := range coreIdx {
			design.Cores[ci].X = res.Positions[bi].X
			design.Cores[ci].Y = res.Positions[bi].Y
		}
		for k, si := range switchIdx {
			r := res.Rect(blocks, len(coreIdx)+k)
			work.Switches[si].Pos = r.Center()
		}
	}
	return FloorplanOutcome{
		ChipAreaMM2: chipArea,
		PowerMW:     work.Evaluate().Power.TotalMW(),
	}, nil
}

// ---------------------------------------------------------------------------
// Fig. 18 — area vs. switch count, custom routine vs. constrained standard
// floorplanner (D_26_media)
// ---------------------------------------------------------------------------

// AreaPoint compares the two insertion methods at one switch count.
type AreaPoint struct {
	Switches        int
	CustomAreaMM2   float64
	StandardAreaMM2 float64
}

// Fig18FloorplanArea reproduces Fig. 18.
func Fig18FloorplanArea(c Config) ([]AreaPoint, error) {
	b := bench.D26Media(c.Seed)
	opt := c.synthOptions()
	res, err := synth.Synthesize(b.Graph3D, opt)
	if err != nil {
		return nil, err
	}
	valid := res.ValidPoints()
	sort.Slice(valid, func(i, j int) bool { return valid[i].SwitchCount < valid[j].SwitchCount })
	stride := 1
	if c.Quick {
		stride = 6
	}
	var out []AreaPoint
	for i := 0; i < len(valid); i += stride {
		p := valid[i]
		cu, err := customInsert(p.Topology)
		if err != nil {
			return nil, fmt.Errorf("custom insert (sw=%d): %w", p.SwitchCount, err)
		}
		st, err := standardInsert(p.Topology, c.Seed, c.Quick)
		if err != nil {
			return nil, fmt.Errorf("standard insert (sw=%d): %w", p.SwitchCount, err)
		}
		out = append(out, AreaPoint{
			Switches:        p.SwitchCount,
			CustomAreaMM2:   cu.ChipAreaMM2,
			StandardAreaMM2: st.ChipAreaMM2,
		})
	}
	return out, nil
}

// FormatFig18 renders the area sweep.
func FormatFig18(points []AreaPoint) string {
	header := []string{"switches", "custom_area_mm2", "standard_area_mm2"}
	var rows [][]string
	for _, p := range points {
		rows = append(rows, []string{d0(p.Switches), f2(p.CustomAreaMM2), f2(p.StandardAreaMM2)})
	}
	return "Fig. 18: floorplan area vs. switch count (D_26_media)\n" + FormatTable(header, rows)
}

// ---------------------------------------------------------------------------
// Figs. 19 and 20 — area and power across benchmarks for the two
// floorplanning methods (best power points)
// ---------------------------------------------------------------------------

// FloorplanComparison is one benchmark's best-point comparison between the
// custom insertion routine and the constrained standard floorplanner.
type FloorplanComparison struct {
	Benchmark       string
	CustomAreaMM2   float64
	StandardAreaMM2 float64
	CustomPowerMW   float64
	StandardPowerMW float64
}

// AreaSaving returns the relative area saving of the custom routine.
func (f FloorplanComparison) AreaSaving() float64 {
	if f.StandardAreaMM2 <= 0 {
		return 0
	}
	return 1 - f.CustomAreaMM2/f.StandardAreaMM2
}

// PowerSaving returns the relative power saving of the custom routine.
func (f FloorplanComparison) PowerSaving() float64 {
	if f.StandardPowerMW <= 0 {
		return 0
	}
	return 1 - f.CustomPowerMW/f.StandardPowerMW
}

// Fig19Fig20FloorplanComparison reproduces Figs. 19 and 20: for every
// benchmark's best power point, the chip area and NoC power obtained with the
// custom insertion routine versus the constrained standard floorplanner.
func Fig19Fig20FloorplanComparison(c Config) ([]FloorplanComparison, error) {
	var out []FloorplanComparison
	for _, b := range c.benchmarks() {
		if c.Quick && b.Graph3D.NumCores() > 40 {
			continue
		}
		opt := c.synthOptions()
		res, err := synth.Synthesize(b.Graph3D, opt)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", b.Name, err)
		}
		if res.Best == nil {
			return nil, fmt.Errorf("%s: no valid design point", b.Name)
		}
		cu, err := customInsert(res.Best.Topology)
		if err != nil {
			return nil, fmt.Errorf("%s custom insert: %w", b.Name, err)
		}
		st, err := standardInsert(res.Best.Topology, c.Seed, c.Quick)
		if err != nil {
			return nil, fmt.Errorf("%s standard insert: %w", b.Name, err)
		}
		out = append(out, FloorplanComparison{
			Benchmark:       b.Name,
			CustomAreaMM2:   cu.ChipAreaMM2,
			StandardAreaMM2: st.ChipAreaMM2,
			CustomPowerMW:   cu.PowerMW,
			StandardPowerMW: st.PowerMW,
		})
	}
	return out, nil
}

// FormatFig19Fig20 renders the cross-benchmark floorplanning comparison.
func FormatFig19Fig20(rows []FloorplanComparison) string {
	header := []string{"benchmark", "custom_area", "standard_area", "area_saving",
		"custom_mW", "standard_mW", "power_saving"}
	var cells [][]string
	var sumA, sumP float64
	for _, r := range rows {
		cells = append(cells, []string{
			r.Benchmark, f2(r.CustomAreaMM2), f2(r.StandardAreaMM2), pct(r.AreaSaving()),
			f2(r.CustomPowerMW), f2(r.StandardPowerMW), pct(r.PowerSaving()),
		})
		sumA += r.AreaSaving()
		sumP += r.PowerSaving()
	}
	s := "Figs. 19-20: floorplanning method comparison (best power points)\n" + FormatTable(header, cells)
	if len(rows) > 0 {
		s += fmt.Sprintf("average area saving: %s, average power saving: %s\n",
			pct(sumA/float64(len(rows))), pct(sumP/float64(len(rows))))
	}
	return s
}
