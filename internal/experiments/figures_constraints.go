package experiments

import (
	"fmt"

	"sunfloor3d/internal/bench"
	"sunfloor3d/internal/mesh"
	"sunfloor3d/internal/synth"
)

// ---------------------------------------------------------------------------
// Figs. 21 and 22 — impact of the max_ill constraint on power and latency
// (D_36_4)
// ---------------------------------------------------------------------------

// ILLSweepPoint is the best design point under one max_ill budget.
type ILLSweepPoint struct {
	MaxILL int
	// Feasible is false when no topology at all can be built under the
	// budget (the paper reports this below ~10 links).
	Feasible         bool
	PowerMW          float64
	AvgLatencyCycles float64
	Switches         int
}

// Fig21Fig22MaxILLSweep reproduces Figs. 21 and 22: power and latency of the
// best design as the inter-layer link budget is tightened, on D_36_4.
func Fig21Fig22MaxILLSweep(c Config) ([]ILLSweepPoint, error) {
	b := bench.ByNameMust("D_36_4", c.Seed)
	budgets := []int{6, 8, 10, 12, 14, 16, 18, 20, 22, 24, 26, 28}
	if c.Quick {
		budgets = []int{8, 12, 16, 24}
	}
	var out []ILLSweepPoint
	for _, ill := range budgets {
		opt := c.synthOptions()
		opt.MaxILL = ill
		res, err := synth.Synthesize(b.Graph3D, opt)
		if err != nil {
			return nil, fmt.Errorf("max_ill=%d: %w", ill, err)
		}
		p := ILLSweepPoint{MaxILL: ill}
		if res.Best != nil {
			p.Feasible = true
			p.PowerMW = res.Best.Metrics.Power.TotalMW()
			p.AvgLatencyCycles = res.Best.Metrics.AvgLatencyCycles
			p.Switches = res.Best.Topology.NumSwitches()
		}
		out = append(out, p)
	}
	return out, nil
}

// FormatFig21Fig22 renders the max_ill sweep.
func FormatFig21Fig22(points []ILLSweepPoint) string {
	header := []string{"max_ill", "feasible", "power_mW", "avg_latency_cyc", "switches"}
	var rows [][]string
	for _, p := range points {
		feas := "yes"
		power, lat, sw := f2(p.PowerMW), f2(p.AvgLatencyCycles), d0(p.Switches)
		if !p.Feasible {
			feas, power, lat, sw = "no", "-", "-", "-"
		}
		rows = append(rows, []string{d0(p.MaxILL), feas, power, lat, sw})
	}
	return "Figs. 21-22: impact of max_ill on power and latency (D_36_4)\n" + FormatTable(header, rows)
}

// ---------------------------------------------------------------------------
// Fig. 23 — custom topology vs. optimized mesh
// ---------------------------------------------------------------------------

// MeshComparison is one benchmark's custom-vs-mesh result.
type MeshComparison struct {
	Benchmark        string
	CustomPowerMW    float64
	MeshPowerMW      float64
	CustomLatency    float64
	MeshLatency      float64
	RemovedMeshLinks int
}

// PowerSaving returns the relative power saving of the custom topology over
// the optimized mesh.
func (m MeshComparison) PowerSaving() float64 {
	if m.MeshPowerMW <= 0 {
		return 0
	}
	return 1 - m.CustomPowerMW/m.MeshPowerMW
}

// LatencySaving returns the relative latency saving of the custom topology.
func (m MeshComparison) LatencySaving() float64 {
	if m.MeshLatency <= 0 {
		return 0
	}
	return 1 - m.CustomLatency/m.MeshLatency
}

// Fig23MeshComparison reproduces Fig. 23: the power of the synthesized custom
// topologies compared with power-optimised mesh mappings (unused links
// removed), over the benchmark suite.
func Fig23MeshComparison(c Config) ([]MeshComparison, error) {
	var out []MeshComparison
	for _, b := range c.benchmarks() {
		if c.Quick && b.Graph3D.NumCores() > 40 {
			continue
		}
		opt := c.synthOptions()
		res, err := synth.Synthesize(b.Graph3D, opt)
		if err != nil {
			return nil, fmt.Errorf("%s synthesis: %w", b.Name, err)
		}
		if res.Best == nil {
			return nil, fmt.Errorf("%s: no valid design point", b.Name)
		}
		mopt := mesh.DefaultOptions()
		mopt.FreqMHz = c.FreqMHz
		mres, err := mesh.Build(b.Graph3D, mopt)
		if err != nil {
			return nil, fmt.Errorf("%s mesh: %w", b.Name, err)
		}
		mm := mres.Topology.Evaluate()
		out = append(out, MeshComparison{
			Benchmark:        b.Name,
			CustomPowerMW:    res.Best.Metrics.Power.TotalMW(),
			MeshPowerMW:      mm.Power.TotalMW(),
			CustomLatency:    res.Best.Metrics.AvgLatencyCycles,
			MeshLatency:      mm.AvgLatencyCycles,
			RemovedMeshLinks: mres.RemovedLinks,
		})
	}
	return out, nil
}

// FormatFig23 renders the mesh comparison.
func FormatFig23(rows []MeshComparison) string {
	header := []string{"benchmark", "custom_mW", "mesh_mW", "power_saving",
		"custom_lat", "mesh_lat", "latency_saving", "pruned_links"}
	var cells [][]string
	var sumP, sumL float64
	for _, r := range rows {
		cells = append(cells, []string{
			r.Benchmark, f2(r.CustomPowerMW), f2(r.MeshPowerMW), pct(r.PowerSaving()),
			f2(r.CustomLatency), f2(r.MeshLatency), pct(r.LatencySaving()), d0(r.RemovedMeshLinks),
		})
		sumP += r.PowerSaving()
		sumL += r.LatencySaving()
	}
	s := "Fig. 23: custom topology vs. optimized mesh\n" + FormatTable(header, cells)
	if len(rows) > 0 {
		s += fmt.Sprintf("average power saving: %s, average latency saving: %s\n",
			pct(sumP/float64(len(rows))), pct(sumL/float64(len(rows))))
	}
	return s
}
