package experiments

import (
	"fmt"
	"sort"
	"strings"

	"sunfloor3d/internal/bench"
	"sunfloor3d/internal/noclib"
	"sunfloor3d/internal/synth"
)

// ---------------------------------------------------------------------------
// Fig. 1 — yield vs. TSV count
// ---------------------------------------------------------------------------

// YieldPoint is one (TSV count, yield) sample of one manufacturing process.
type YieldPoint struct {
	TSVs  int
	Yield float64
}

// YieldSeries is the yield curve of one process.
type YieldSeries struct {
	Process string
	Points  []YieldPoint
}

// Fig01Yield reproduces the yield-versus-TSV-count curves of Fig. 1 for the
// three representative processes.
func Fig01Yield() []YieldSeries {
	counts := []int{0, 100, 200, 400, 600, 800, 1000, 1500, 2000, 3000, 5000, 8000}
	var out []YieldSeries
	for _, p := range noclib.StandardProcesses() {
		s := YieldSeries{Process: p.Name}
		for _, n := range counts {
			s.Points = append(s.Points, YieldPoint{TSVs: n, Yield: p.Yield(n)})
		}
		out = append(out, s)
	}
	return out
}

// FormatFig01 renders the yield curves as a table.
func FormatFig01(series []YieldSeries) string {
	header := []string{"tsvs"}
	for _, s := range series {
		header = append(header, s.Process)
	}
	var rows [][]string
	if len(series) > 0 {
		for i, p := range series[0].Points {
			row := []string{d0(p.TSVs)}
			for _, s := range series {
				row = append(row, f3(s.Points[i].Yield))
			}
			rows = append(rows, row)
		}
	}
	return "Fig. 1: yield vs. TSV count\n" + FormatTable(header, rows)
}

// ---------------------------------------------------------------------------
// Figs. 10 and 11 — NoC power vs. switch count (2-D and 3-D, D_26_media)
// ---------------------------------------------------------------------------

// PowerPoint is the power breakdown of the best valid design point at one
// switch count.
type PowerPoint struct {
	Switches     int
	SwitchMW     float64
	SwitchLinkMW float64
	CoreLinkMW   float64
	TotalMW      float64
}

// PowerSweep is the per-switch-count power series of one design.
type PowerSweep struct {
	Design string
	Points []PowerPoint
}

// powerSweep synthesizes the design and extracts one power point per valid
// switch count.
func (c Config) powerSweep(name string, run func() (*synth.Result, error)) (PowerSweep, error) {
	res, err := run()
	if err != nil {
		return PowerSweep{}, err
	}
	sweep := PowerSweep{Design: name}
	for _, p := range res.ValidPoints() {
		sweep.Points = append(sweep.Points, PowerPoint{
			Switches:     p.SwitchCount,
			SwitchMW:     p.Metrics.Power.SwitchMW + p.Metrics.Power.NIMW,
			SwitchLinkMW: p.Metrics.Power.SwitchLinkMW,
			CoreLinkMW:   p.Metrics.Power.CoreLinkMW,
			TotalMW:      p.Metrics.Power.TotalMW(),
		})
	}
	sort.Slice(sweep.Points, func(i, j int) bool { return sweep.Points[i].Switches < sweep.Points[j].Switches })
	return sweep, nil
}

// Fig10Power2D reproduces Fig. 10: NoC power versus switch count for the 2-D
// implementation of D_26_media.
func Fig10Power2D(c Config) (PowerSweep, error) {
	b := bench.D26Media(c.Seed)
	opt := c.synthOptions()
	return c.powerSweep("D_26_media/2D", func() (*synth.Result, error) {
		return synth.Synthesize(b.Graph2D, opt)
	})
}

// Fig11Power3D reproduces Fig. 11: NoC power versus switch count for the 3-D
// implementation of D_26_media.
func Fig11Power3D(c Config) (PowerSweep, error) {
	b := bench.D26Media(c.Seed)
	opt := c.synthOptions()
	return c.powerSweep("D_26_media/3D", func() (*synth.Result, error) {
		return synth.Synthesize(b.Graph3D, opt)
	})
}

// FormatPowerSweep renders a power sweep as a table.
func FormatPowerSweep(title string, s PowerSweep) string {
	header := []string{"switches", "switch_mW", "s2s_link_mW", "c2s_link_mW", "total_mW"}
	var rows [][]string
	for _, p := range s.Points {
		rows = append(rows, []string{
			d0(p.Switches), f2(p.SwitchMW), f2(p.SwitchLinkMW), f2(p.CoreLinkMW), f2(p.TotalMW),
		})
	}
	return title + " (" + s.Design + ")\n" + FormatTable(header, rows)
}

// ---------------------------------------------------------------------------
// Fig. 12 — wire length distribution, 2-D vs. 3-D
// ---------------------------------------------------------------------------

// WireLengthDistribution holds the binned link length histograms of the best
// 2-D and 3-D design points.
type WireLengthDistribution struct {
	BinMM     float64
	Bins2D    []int
	Bins3D    []int
	Total2DMM float64
	Total3DMM float64
}

// Fig12WireLengths reproduces Fig. 12 on D_26_media.
func Fig12WireLengths(c Config) (WireLengthDistribution, error) {
	b := bench.D26Media(c.Seed)
	opt := c.synthOptions()
	res3d, err := synth.Synthesize(b.Graph3D, opt)
	if err != nil {
		return WireLengthDistribution{}, err
	}
	res2d, err := synth.Synthesize(b.Graph2D, opt)
	if err != nil {
		return WireLengthDistribution{}, err
	}
	if res3d.Best == nil || res2d.Best == nil {
		return WireLengthDistribution{}, fmt.Errorf("fig12: no valid design point")
	}
	const bin = 0.5
	out := WireLengthDistribution{BinMM: bin}
	out.Bins3D = res3d.Best.Topology.WireLengthHistogram(bin)
	out.Bins2D = res2d.Best.Topology.WireLengthHistogram(bin)
	out.Total3DMM = res3d.Best.Metrics.TotalWireLengthMM
	out.Total2DMM = res2d.Best.Metrics.TotalWireLengthMM
	return out, nil
}

// FormatFig12 renders the wire length distributions.
func FormatFig12(d WireLengthDistribution) string {
	n := len(d.Bins2D)
	if len(d.Bins3D) > n {
		n = len(d.Bins3D)
	}
	header := []string{"length_bin_mm", "links_2D", "links_3D"}
	var rows [][]string
	for i := 0; i < n; i++ {
		lo := float64(i) * d.BinMM
		hi := lo + d.BinMM
		get := func(b []int) int {
			if i < len(b) {
				return b[i]
			}
			return 0
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.1f-%.1f", lo, hi), d0(get(d.Bins2D)), d0(get(d.Bins3D)),
		})
	}
	rows = append(rows, []string{"total_mm", f1(d.Total2DMM), f1(d.Total3DMM)})
	return "Fig. 12: wire length distribution\n" + FormatTable(header, rows)
}

// ---------------------------------------------------------------------------
// Figs. 13-16 — best topologies and floorplans for D_26_media
// ---------------------------------------------------------------------------

// TopologyCaseStudy bundles the textual artefacts of the D_26_media case
// study: the most power-efficient Phase-1 topology (Fig. 13), the
// layer-by-layer Phase-2 topology (Fig. 14), and the initial core placement
// (Fig. 16). The floorplan with inserted switches (Fig. 15) is produced by
// the floorplanning experiment.
type TopologyCaseStudy struct {
	Phase1Topology   string
	Phase1Power      float64
	Phase1MaxILL     int
	Phase2Topology   string
	Phase2Power      float64
	Phase2MaxILL     int
	InitialPlacement string
}

// Fig13to16CaseStudy reproduces the D_26_media case study artefacts.
func Fig13to16CaseStudy(c Config) (TopologyCaseStudy, error) {
	b := bench.D26Media(c.Seed)
	opt := c.synthOptions()

	opt1 := opt
	opt1.Phase = synth.Phase1Only
	res1, err := synth.Synthesize(b.Graph3D, opt1)
	if err != nil {
		return TopologyCaseStudy{}, err
	}
	opt2 := opt
	opt2.Phase = synth.Phase2Only
	res2, err := synth.Synthesize(b.Graph3D, opt2)
	if err != nil {
		return TopologyCaseStudy{}, err
	}
	if res1.Best == nil || res2.Best == nil {
		return TopologyCaseStudy{}, fmt.Errorf("fig13-16: no valid design point (phase1=%v phase2=%v)",
			res1.Best != nil, res2.Best != nil)
	}
	var placement strings.Builder
	for l := 0; l < b.Graph3D.NumLayers(); l++ {
		fmt.Fprintf(&placement, "layer %d:\n", l)
		for _, ci := range b.Graph3D.CoresInLayer(l) {
			core := b.Graph3D.Cores[ci]
			fmt.Fprintf(&placement, "  %-10s %s\n", core.Name, core.Rect())
		}
	}
	return TopologyCaseStudy{
		Phase1Topology:   res1.Best.Topology.Describe(),
		Phase1Power:      res1.Best.Metrics.Power.TotalMW(),
		Phase1MaxILL:     res1.Best.Metrics.MaxILL,
		Phase2Topology:   res2.Best.Topology.Describe(),
		Phase2Power:      res2.Best.Metrics.Power.TotalMW(),
		Phase2MaxILL:     res2.Best.Metrics.MaxILL,
		InitialPlacement: placement.String(),
	}, nil
}

// ---------------------------------------------------------------------------
// Fig. 17 — Phase 2 power relative to Phase 1 across benchmarks
// ---------------------------------------------------------------------------

// PhaseComparison is one benchmark's Phase-1 vs Phase-2 result.
type PhaseComparison struct {
	Benchmark     string
	Phase1PowerMW float64
	Phase2PowerMW float64
	// Ratio is Phase2 / Phase1 (>= 1 when Phase 1 wins, as the paper reports).
	Ratio float64
	// Phase1MaxILL and Phase2MaxILL show the price Phase 1 pays in vertical
	// links.
	Phase1MaxILL int
	Phase2MaxILL int
}

// Fig17Phase1VsPhase2 reproduces Fig. 17 over the benchmark suite.
func Fig17Phase1VsPhase2(c Config) ([]PhaseComparison, error) {
	var out []PhaseComparison
	for _, b := range c.benchmarks() {
		if c.Quick && b.Graph3D.NumCores() > 40 {
			continue
		}
		opt1 := c.synthOptions()
		opt1.Phase = synth.Phase1Only
		res1, err := synth.Synthesize(b.Graph3D, opt1)
		if err != nil {
			return nil, fmt.Errorf("%s phase1: %w", b.Name, err)
		}
		opt2 := c.synthOptions()
		opt2.Phase = synth.Phase2Only
		res2, err := synth.Synthesize(b.Graph3D, opt2)
		if err != nil {
			return nil, fmt.Errorf("%s phase2: %w", b.Name, err)
		}
		if res1.Best == nil || res2.Best == nil {
			return nil, fmt.Errorf("%s: missing valid design point", b.Name)
		}
		pc := PhaseComparison{
			Benchmark:     b.Name,
			Phase1PowerMW: res1.Best.Metrics.Power.TotalMW(),
			Phase2PowerMW: res2.Best.Metrics.Power.TotalMW(),
			Phase1MaxILL:  res1.Best.Metrics.MaxILL,
			Phase2MaxILL:  res2.Best.Metrics.MaxILL,
		}
		if pc.Phase1PowerMW > 0 {
			pc.Ratio = pc.Phase2PowerMW / pc.Phase1PowerMW
		}
		out = append(out, pc)
	}
	return out, nil
}

// FormatFig17 renders the Phase comparison table.
func FormatFig17(rows []PhaseComparison) string {
	header := []string{"benchmark", "phase1_mW", "phase2_mW", "phase2/phase1", "ill_p1", "ill_p2"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Benchmark, f2(r.Phase1PowerMW), f2(r.Phase2PowerMW), f2(r.Ratio),
			d0(r.Phase1MaxILL), d0(r.Phase2MaxILL),
		})
	}
	return "Fig. 17: Phase 2 power relative to Phase 1\n" + FormatTable(header, cells)
}

// ---------------------------------------------------------------------------
// Table I — 2-D vs. 3-D comparison
// ---------------------------------------------------------------------------

// Table1Row is one benchmark's 2-D vs. 3-D comparison.
type Table1Row struct {
	Benchmark     string
	LinkPower2D   float64
	LinkPower3D   float64
	SwitchPower2D float64
	SwitchPower3D float64
	TotalPower2D  float64
	TotalPower3D  float64
	Latency2D     float64
	Latency3D     float64
}

// PowerReduction returns the relative total-power reduction of 3-D vs 2-D.
func (r Table1Row) PowerReduction() float64 {
	if r.TotalPower2D <= 0 {
		return 0
	}
	return 1 - r.TotalPower3D/r.TotalPower2D
}

// LatencyReduction returns the relative latency reduction of 3-D vs 2-D.
func (r Table1Row) LatencyReduction() float64 {
	if r.Latency2D <= 0 {
		return 0
	}
	return 1 - r.Latency3D/r.Latency2D
}

// Table1 reproduces Table I: least-power design points for the 2-D and 3-D
// implementations of the distributed, bottleneck and pipelined benchmarks.
func Table1(c Config) ([]Table1Row, error) {
	names := []string{"D_36_4", "D_36_6", "D_36_8", "D_35_bot", "D_65_pipe", "D_38_tvopd"}
	var out []Table1Row
	for _, name := range names {
		if c.Quick && (name == "D_65_pipe" || name == "D_38_tvopd") {
			continue
		}
		b, err := bench.ByName(name, c.Seed)
		if err != nil {
			return nil, err
		}
		opt := c.synthOptions()
		res3d, err := synth.Synthesize(b.Graph3D, opt)
		if err != nil {
			return nil, fmt.Errorf("%s 3D: %w", name, err)
		}
		res2d, err := synth.Synthesize(b.Graph2D, opt)
		if err != nil {
			return nil, fmt.Errorf("%s 2D: %w", name, err)
		}
		if res3d.Best == nil || res2d.Best == nil {
			return nil, fmt.Errorf("%s: missing valid design point", name)
		}
		m3, m2 := res3d.Best.Metrics, res2d.Best.Metrics
		out = append(out, Table1Row{
			Benchmark:     name,
			LinkPower2D:   m2.Power.LinkMW(),
			LinkPower3D:   m3.Power.LinkMW(),
			SwitchPower2D: m2.Power.SwitchMW + m2.Power.NIMW,
			SwitchPower3D: m3.Power.SwitchMW + m3.Power.NIMW,
			TotalPower2D:  m2.Power.TotalMW(),
			TotalPower3D:  m3.Power.TotalMW(),
			Latency2D:     m2.AvgLatencyCycles,
			Latency3D:     m3.AvgLatencyCycles,
		})
	}
	return out, nil
}

// FormatTable1 renders Table I together with the average reductions.
func FormatTable1(rows []Table1Row) string {
	header := []string{"benchmark", "link_2D", "link_3D", "switch_2D", "switch_3D",
		"total_2D", "total_3D", "lat_2D", "lat_3D", "power_red", "lat_red"}
	var cells [][]string
	var sumP, sumL float64
	for _, r := range rows {
		cells = append(cells, []string{
			r.Benchmark, f1(r.LinkPower2D), f1(r.LinkPower3D), f1(r.SwitchPower2D), f1(r.SwitchPower3D),
			f1(r.TotalPower2D), f1(r.TotalPower3D), f2(r.Latency2D), f2(r.Latency3D),
			pct(r.PowerReduction()), pct(r.LatencyReduction()),
		})
		sumP += r.PowerReduction()
		sumL += r.LatencyReduction()
	}
	s := "Table I: 2-D vs. 3-D NoC comparison\n" + FormatTable(header, cells)
	if len(rows) > 0 {
		s += fmt.Sprintf("average power reduction: %s, average latency reduction: %s\n",
			pct(sumP/float64(len(rows))), pct(sumL/float64(len(rows))))
	}
	return s
}
