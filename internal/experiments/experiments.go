// Package experiments contains one runner per table and figure of the
// paper's evaluation section (Section VIII). Every runner regenerates the
// corresponding data series — the same rows the paper plots or tabulates —
// on the synthetic benchmark suite, using the full synthesis, placement,
// mesh-mapping and floorplanning machinery of this repository. The cmd/
// sunfloor-bench tool prints them and EXPERIMENTS.md records paper-vs-measured
// comparisons; bench_test.go exposes each runner as a Go benchmark.
package experiments

import (
	"fmt"
	"strings"

	"sunfloor3d/internal/bench"
	"sunfloor3d/internal/noclib"
	"sunfloor3d/internal/partition"
	"sunfloor3d/internal/synth"
)

// Config controls an experiment run.
type Config struct {
	// Seed drives every randomised generator so runs are reproducible.
	Seed int64
	// FreqMHz is the NoC operating frequency used by all experiments.
	FreqMHz float64
	// MaxILL is the inter-layer link constraint used unless an experiment
	// sweeps it.
	MaxILL int
	// Quick trades thoroughness for speed (used by unit tests): smaller
	// switch-count ranges and lighter floorplanning.
	Quick bool
	// Jobs bounds how many design points each synthesis run evaluates
	// concurrently (0 or 1 = serial, negative = one worker per CPU).
	Jobs int
}

// DefaultConfig matches the experimental setup of the paper: 400 MHz NoC,
// 32-bit links, max_ill = 25.
func DefaultConfig() Config {
	return Config{Seed: 1, FreqMHz: 400, MaxILL: 25}
}

// synthOptions builds the synthesis options corresponding to the config.
func (c Config) synthOptions() synth.Options {
	opt := synth.DefaultOptions()
	opt.Lib = noclib.DefaultLibrary()
	opt.FrequenciesMHz = []float64{c.FreqMHz}
	opt.MaxILL = c.MaxILL
	opt.Partition = partition.DefaultParams()
	opt.Parallelism = c.Jobs
	return opt
}

// benchmarks returns the full suite for this config's seed.
func (c Config) benchmarks() []bench.Benchmark {
	return bench.All(c.Seed)
}

// FormatTable renders a simple aligned text table: header plus rows.
func FormatTable(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, cell := range r {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			for pad := len(cell); pad < widths[i]; pad++ {
				sb.WriteByte(' ')
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range rows {
		writeRow(r)
	}
	return sb.String()
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func d0(v int) string     { return fmt.Sprintf("%d", v) }
func pct(v float64) string {
	return fmt.Sprintf("%.0f%%", v*100)
}
