package experiments

import (
	"strings"
	"testing"
)

// quickConfig keeps the unit tests fast: small sweeps, light floorplanning.
func quickConfig() Config {
	c := DefaultConfig()
	c.Quick = true
	return c
}

func TestFormatTable(t *testing.T) {
	s := FormatTable([]string{"a", "long_header"}, [][]string{{"1", "2"}, {"333", "4"}})
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected 4 lines, got %d:\n%s", len(lines), s)
	}
	if !strings.Contains(lines[0], "long_header") {
		t.Error("header missing")
	}
	if !strings.HasPrefix(lines[1], "---") {
		t.Error("separator missing")
	}
}

func TestFig01Yield(t *testing.T) {
	series := Fig01Yield()
	if len(series) != 3 {
		t.Fatalf("expected 3 processes, got %d", len(series))
	}
	for _, s := range series {
		if len(s.Points) == 0 {
			t.Fatalf("%s: no points", s.Process)
		}
		// Non-increasing yield and a visible knee: last point well below first.
		first := s.Points[0].Yield
		last := s.Points[len(s.Points)-1].Yield
		if last >= first {
			t.Errorf("%s: yield does not drop (%v -> %v)", s.Process, first, last)
		}
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].Yield > s.Points[i-1].Yield+1e-12 {
				t.Errorf("%s: yield increases at %d TSVs", s.Process, s.Points[i].TSVs)
			}
		}
	}
	if out := FormatFig01(series); !strings.Contains(out, "Fig. 1") {
		t.Error("FormatFig01 missing title")
	}
}

func TestFig10Fig11PowerSweeps(t *testing.T) {
	c := quickConfig()
	p2d, err := Fig10Power2D(c)
	if err != nil {
		t.Fatalf("Fig10: %v", err)
	}
	p3d, err := Fig11Power3D(c)
	if err != nil {
		t.Fatalf("Fig11: %v", err)
	}
	if len(p2d.Points) == 0 || len(p3d.Points) == 0 {
		t.Fatal("empty power sweeps")
	}
	// Points are sorted by switch count and have consistent breakdowns.
	for _, sweep := range []PowerSweep{p2d, p3d} {
		for i, p := range sweep.Points {
			if i > 0 && p.Switches < sweep.Points[i-1].Switches {
				t.Errorf("%s: sweep not sorted", sweep.Design)
			}
			sum := p.SwitchMW + p.SwitchLinkMW + p.CoreLinkMW
			if sum > p.TotalMW*1.0001 || sum < p.TotalMW*0.9 {
				t.Errorf("%s: breakdown %v inconsistent with total %v", sweep.Design, sum, p.TotalMW)
			}
		}
	}
	// Headline trend: the best 3-D point consumes less power than the best
	// 2-D point (Section VIII-A reports 24% for this benchmark).
	if best(p3d) >= best(p2d) {
		t.Errorf("3-D best power %v not below 2-D best power %v", best(p3d), best(p2d))
	}
	if out := FormatPowerSweep("Fig. 10", p2d); !strings.Contains(out, "switches") {
		t.Error("FormatPowerSweep missing header")
	}
}

func best(s PowerSweep) float64 {
	bestV := 1e18
	for _, p := range s.Points {
		if p.TotalMW < bestV {
			bestV = p.TotalMW
		}
	}
	return bestV
}

func TestFig12WireLengths(t *testing.T) {
	c := quickConfig()
	d, err := Fig12WireLengths(c)
	if err != nil {
		t.Fatalf("Fig12: %v", err)
	}
	if len(d.Bins2D) == 0 || len(d.Bins3D) == 0 {
		t.Fatal("empty histograms")
	}
	if d.Total3DMM >= d.Total2DMM {
		t.Errorf("3-D total wire length %v not below 2-D %v", d.Total3DMM, d.Total2DMM)
	}
	// The 2-D design has longer wires: its histogram extends at least as far.
	if len(d.Bins2D) < len(d.Bins3D) {
		t.Errorf("2-D histogram (%d bins) shorter than 3-D (%d bins)", len(d.Bins2D), len(d.Bins3D))
	}
	if out := FormatFig12(d); !strings.Contains(out, "length_bin_mm") {
		t.Error("FormatFig12 missing header")
	}
}

func TestFig13to16CaseStudy(t *testing.T) {
	c := quickConfig()
	cs, err := Fig13to16CaseStudy(c)
	if err != nil {
		t.Fatalf("Fig13to16: %v", err)
	}
	if !strings.Contains(cs.Phase1Topology, "sw0") || !strings.Contains(cs.Phase2Topology, "sw0") {
		t.Error("topology descriptions look empty")
	}
	if !strings.Contains(cs.InitialPlacement, "layer 0") {
		t.Error("initial placement missing layers")
	}
	if cs.Phase1Power <= 0 || cs.Phase2Power <= 0 {
		t.Error("non-positive powers")
	}
	// Phase 2 uses only same-layer attachments, so it cannot use more
	// inter-layer links than Phase 1.
	if cs.Phase2MaxILL > cs.Phase1MaxILL {
		t.Errorf("phase 2 ILL (%d) exceeds phase 1 (%d)", cs.Phase2MaxILL, cs.Phase1MaxILL)
	}
}

func TestFig17PhaseComparison(t *testing.T) {
	c := quickConfig()
	rows, err := Fig17Phase1VsPhase2(c)
	if err != nil {
		t.Fatalf("Fig17: %v", err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		if r.Phase1PowerMW <= 0 || r.Phase2PowerMW <= 0 {
			t.Errorf("%s: non-positive power", r.Benchmark)
		}
		if r.Ratio <= 0 {
			t.Errorf("%s: bad ratio %v", r.Benchmark, r.Ratio)
		}
		// The paper's trend: Phase 2 costs extra power (up to ~40%) but never
		// uses more vertical links than Phase 1.
		if r.Phase2MaxILL > r.Phase1MaxILL {
			t.Errorf("%s: phase 2 uses more inter-layer links", r.Benchmark)
		}
	}
	if out := FormatFig17(rows); !strings.Contains(out, "phase2/phase1") {
		t.Error("FormatFig17 missing header")
	}
}

func TestTable1(t *testing.T) {
	c := quickConfig()
	rows, err := Table1(c)
	if err != nil {
		t.Fatalf("Table1: %v", err)
	}
	if len(rows) < 3 {
		t.Fatalf("expected at least 3 rows in quick mode, got %d", len(rows))
	}
	var reductions int
	for _, r := range rows {
		if r.TotalPower2D <= 0 || r.TotalPower3D <= 0 {
			t.Errorf("%s: non-positive power", r.Benchmark)
		}
		if r.Latency2D < 1 || r.Latency3D < 1 {
			t.Errorf("%s: latency below one cycle", r.Benchmark)
		}
		if r.PowerReduction() > 0 {
			reductions++
		}
	}
	// The headline claim: 3-D saves interconnect power on (nearly) all
	// benchmarks; require it on the majority.
	if reductions*2 < len(rows) {
		t.Errorf("3-D reduced power on only %d of %d benchmarks", reductions, len(rows))
	}
	if out := FormatTable1(rows); !strings.Contains(out, "average power reduction") {
		t.Error("FormatTable1 missing summary")
	}
}

func TestFig18AreaSweep(t *testing.T) {
	c := quickConfig()
	points, err := Fig18FloorplanArea(c)
	if err != nil {
		t.Fatalf("Fig18: %v", err)
	}
	if len(points) == 0 {
		t.Fatal("no points")
	}
	for _, p := range points {
		if p.CustomAreaMM2 <= 0 || p.StandardAreaMM2 <= 0 {
			t.Errorf("sw=%d: non-positive area", p.Switches)
		}
	}
	if out := FormatFig18(points); !strings.Contains(out, "custom_area_mm2") {
		t.Error("FormatFig18 missing header")
	}
}

func TestFig19Fig20FloorplanComparison(t *testing.T) {
	c := quickConfig()
	rows, err := Fig19Fig20FloorplanComparison(c)
	if err != nil {
		t.Fatalf("Fig19/20: %v", err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	var customPower, standardPower float64
	for _, r := range rows {
		if r.CustomAreaMM2 <= 0 || r.StandardAreaMM2 <= 0 ||
			r.CustomPowerMW <= 0 || r.StandardPowerMW <= 0 {
			t.Errorf("%s: non-positive outcome", r.Benchmark)
		}
		// Both methods insert the same topology, so their areas and powers
		// must stay within the same ballpark (no method may blow up).
		if r.CustomAreaMM2 > 2*r.StandardAreaMM2 || r.StandardAreaMM2 > 2*r.CustomAreaMM2 {
			t.Errorf("%s: area outcomes diverge wildly (%v vs %v)",
				r.Benchmark, r.CustomAreaMM2, r.StandardAreaMM2)
		}
		customPower += r.CustomPowerMW
		standardPower += r.StandardPowerMW
	}
	// On aggregate the custom routine must not lose on power against the
	// constrained standard floorplanner (the paper reports a ~7.5% average
	// power advantage; see EXPERIMENTS.md for the measured numbers and the
	// discussion of the area comparison).
	if customPower > standardPower*1.10 {
		t.Errorf("custom insertion power (%v) clearly worse than standard floorplanner (%v)",
			customPower, standardPower)
	}
	if out := FormatFig19Fig20(rows); !strings.Contains(out, "area_saving") {
		t.Error("FormatFig19Fig20 missing header")
	}
}

func TestFig21Fig22MaxILLSweep(t *testing.T) {
	c := quickConfig()
	points, err := Fig21Fig22MaxILLSweep(c)
	if err != nil {
		t.Fatalf("Fig21/22: %v", err)
	}
	if len(points) == 0 {
		t.Fatal("no points")
	}
	// The paper's trend: once feasible, loosening max_ill never increases the
	// best power by much; and the loosest budget must be feasible.
	last := points[len(points)-1]
	if !last.Feasible {
		t.Error("loosest max_ill budget infeasible")
	}
	var prev float64
	seen := false
	for _, p := range points {
		if !p.Feasible {
			continue
		}
		if seen && p.PowerMW > prev*1.15 {
			t.Errorf("power rose sharply from %v to %v when loosening max_ill to %d",
				prev, p.PowerMW, p.MaxILL)
		}
		prev = p.PowerMW
		seen = true
	}
	if !seen {
		t.Fatal("no feasible point at any max_ill")
	}
	if out := FormatFig21Fig22(points); !strings.Contains(out, "max_ill") {
		t.Error("FormatFig21Fig22 missing header")
	}
}

func TestFig23MeshComparison(t *testing.T) {
	c := quickConfig()
	rows, err := Fig23MeshComparison(c)
	if err != nil {
		t.Fatalf("Fig23: %v", err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	wins := 0
	for _, r := range rows {
		if r.CustomPowerMW <= 0 || r.MeshPowerMW <= 0 {
			t.Errorf("%s: non-positive power", r.Benchmark)
		}
		if r.PowerSaving() > 0 {
			wins++
		}
	}
	// Headline claim of Fig. 23: the custom topology wins on power across the
	// suite (paper average 51%); require a majority of wins here.
	if wins*2 < len(rows) {
		t.Errorf("custom topology beat the mesh on only %d of %d benchmarks", wins, len(rows))
	}
	if out := FormatFig23(rows); !strings.Contains(out, "power_saving") {
		t.Error("FormatFig23 missing header")
	}
}
