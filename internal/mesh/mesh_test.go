package mesh

import (
	"testing"

	"sunfloor3d/internal/bench"
	"sunfloor3d/internal/model"
	"sunfloor3d/internal/synth"
)

func gridDesign(t *testing.T, layers, perLayer int) *model.CommGraph {
	t.Helper()
	var cores []model.Core
	for l := 0; l < layers; l++ {
		for i := 0; i < perLayer; i++ {
			cores = append(cores, model.Core{
				Name:  "n" + string(rune('a'+l)) + string(rune('a'+i)),
				Width: 1.2, Height: 1.2,
				X: float64(i%3) * 1.5, Y: float64(i/3) * 1.5, Layer: l,
			})
		}
	}
	var flows []model.Flow
	n := len(cores)
	for i := 0; i < n; i++ {
		flows = append(flows, model.Flow{Src: i, Dst: (i + 3) % n, BandwidthMBps: 100 + float64(10*i)})
	}
	g, err := model.NewCommGraph(cores, flows)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuildMeshBasic(t *testing.T) {
	g := gridDesign(t, 2, 6)
	res, err := Build(g, DefaultOptions())
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	top := res.Topology
	if err := top.Validate(); err != nil {
		t.Fatalf("mesh topology invalid: %v", err)
	}
	if res.DimX < 1 || res.DimY < 1 {
		t.Errorf("mesh dims %dx%d", res.DimX, res.DimY)
	}
	if res.DimX*res.DimY < 6 {
		t.Errorf("mesh %dx%d too small for 6 cores per layer", res.DimX, res.DimY)
	}
	// Every core attaches to a switch on its own layer.
	for c, sw := range top.CoreAttach {
		if top.Switches[sw].Layer != g.Cores[c].Layer {
			t.Errorf("core %d mapped across layers", c)
		}
	}
	// No two cores share a mesh node.
	seen := map[int]bool{}
	for _, sw := range top.CoreAttach {
		if seen[sw] {
			t.Error("two cores mapped to the same mesh node")
		}
		seen[sw] = true
	}
	m := top.Evaluate()
	if m.Power.TotalMW() <= 0 || m.AvgLatencyCycles < 1 {
		t.Errorf("implausible metrics: %+v", m)
	}
}

func TestBuildMeshErrors(t *testing.T) {
	empty, err := model.NewCommGraph(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(empty, DefaultOptions()); err == nil {
		t.Error("empty design should fail")
	}
}

func TestXYZRoutesAreMinimalAndDeadlockFree(t *testing.T) {
	g := gridDesign(t, 2, 9)
	res, err := Build(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	top := res.Topology
	// Dimension-ordered routes never revisit a switch.
	for f, r := range top.Routes {
		visited := map[int]bool{}
		for _, s := range r.Switches {
			if visited[s] {
				t.Fatalf("flow %d revisits switch %d", f, s)
			}
			visited[s] = true
		}
	}
	// XYZ routing on a mesh is deadlock free by construction; spot-check the
	// channel dependency graph the same way the route package tests do.
	idx := map[[2]int]int{}
	next := 0
	vtx := func(a, b int) int {
		k := [2]int{a, b}
		if v, ok := idx[k]; ok {
			return v
		}
		idx[k] = next
		next++
		return next - 1
	}
	type dep struct{ a, b int }
	var deps []dep
	for _, r := range top.Routes {
		for i := 2; i < len(r.Switches); i++ {
			deps = append(deps, dep{vtx(r.Switches[i-2], r.Switches[i-1]), vtx(r.Switches[i-1], r.Switches[i])})
		}
	}
	adj := make(map[int][]int)
	for _, d := range deps {
		adj[d.a] = append(adj[d.a], d.b)
	}
	color := make(map[int]int)
	var dfs func(u int) bool
	dfs = func(u int) bool {
		color[u] = 1
		for _, v := range adj[u] {
			if color[v] == 1 {
				return true
			}
			if color[v] == 0 && dfs(v) {
				return true
			}
		}
		color[u] = 2
		return false
	}
	for u := 0; u < next; u++ {
		if color[u] == 0 && dfs(u) {
			t.Fatal("XYZ routing produced a cyclic channel dependency graph")
		}
	}
}

func TestMappingImprovementReducesCost(t *testing.T) {
	g := gridDesign(t, 1, 9)
	optNoSwap := DefaultOptions()
	optNoSwap.SwapPasses = 0
	r0, err := Build(g, optNoSwap)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := Build(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	p0 := r0.Topology.Evaluate().Power.TotalMW()
	p4 := r4.Topology.Evaluate().Power.TotalMW()
	if p4 > p0*1.02 {
		t.Errorf("swap improvement made the mesh worse: %v -> %v mW", p0, p4)
	}
}

func TestCustomTopologyBeatsMesh(t *testing.T) {
	// The central claim of Fig. 23: the synthesized custom topology consumes
	// substantially less power than the optimized mesh.
	if testing.Short() {
		t.Skip("skipping benchmark comparison in -short mode")
	}
	b := bench.D36(4, 1)
	meshRes, err := Build(b.Graph3D, DefaultOptions())
	if err != nil {
		t.Fatalf("mesh build: %v", err)
	}
	synRes, err := synth.Synthesize(b.Graph3D, synth.DefaultOptions())
	if err != nil || synRes.Best == nil {
		t.Fatalf("synthesis failed: %v", err)
	}
	meshPower := meshRes.Topology.Evaluate().Power.TotalMW()
	customPower := synRes.Best.Metrics.Power.TotalMW()
	if customPower >= meshPower {
		t.Errorf("custom topology (%.1f mW) not better than mesh (%.1f mW)", customPower, meshPower)
	}
}

func TestUnusedLinksAreRemoved(t *testing.T) {
	// A sparse pipeline uses only a fraction of the mesh links, so many must
	// be reported as removed.
	g := gridDesign(t, 1, 9)
	res, err := Build(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.RemovedLinks == 0 {
		t.Error("expected some unused mesh links to be removed")
	}
}
