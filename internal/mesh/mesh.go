// Package mesh implements the standard-topology baseline of the paper's
// comparison (Fig. 23): cores are mapped onto a regular 2-D or 3-D mesh NoC
// (one switch per mesh node), the mapping is optimised for power (bandwidth
// times hop distance) while respecting latency constraints, traffic is routed
// with deadlock-free dimension-ordered (XYZ) routing, and switch-to-switch
// links that carry no traffic are removed — the "optimized mesh" the custom
// topologies are compared against.
package mesh

import (
	"fmt"
	"math"
	"sort"

	"sunfloor3d/internal/geom"
	"sunfloor3d/internal/model"
	"sunfloor3d/internal/noclib"
	"sunfloor3d/internal/topology"
)

// Options configures mesh construction.
type Options struct {
	// Lib is the NoC component library.
	Lib noclib.Library
	// FreqMHz is the NoC operating frequency.
	FreqMHz float64
	// SwapPasses is the number of improvement passes of the mapper.
	SwapPasses int
}

// DefaultOptions returns the options used by the experiments.
func DefaultOptions() Options {
	return Options{Lib: noclib.DefaultLibrary(), FreqMHz: 400, SwapPasses: 4}
}

// node is one mesh position.
type node struct {
	x, y, layer int
}

// Result is the outcome of mapping a design onto a mesh.
type Result struct {
	// Topology is the mapped, routed and pruned mesh NoC.
	Topology *topology.Topology
	// DimX and DimY are the per-layer mesh dimensions.
	DimX, DimY int
	// RemovedLinks is the number of unused switch-to-switch links pruned.
	RemovedLinks int
}

// Build maps the design onto a mesh. For multi-layer designs each layer
// receives its own DimX x DimY mesh and vertical links connect vertically
// adjacent mesh nodes.
func Build(g *model.CommGraph, opt Options) (*Result, error) {
	if g.NumCores() == 0 {
		return nil, fmt.Errorf("mesh: design has no cores")
	}
	layers := g.NumLayers()
	// Mesh dimension: smallest square mesh per layer that fits the largest
	// layer population.
	maxPerLayer := 0
	for l := 0; l < layers; l++ {
		if n := len(g.CoresInLayer(l)); n > maxPerLayer {
			maxPerLayer = n
		}
	}
	dimX := int(math.Ceil(math.Sqrt(float64(maxPerLayer))))
	if dimX < 1 {
		dimX = 1
	}
	dimY := (maxPerLayer + dimX - 1) / dimX
	if dimY < 1 {
		dimY = 1
	}

	// Build the list of mesh nodes and the switch for each.
	top := topology.New(g, opt.Lib, opt.FreqMHz)
	nodes := make([]node, 0, dimX*dimY*layers)
	nodeIdx := make(map[node]int)
	for l := 0; l < layers; l++ {
		for y := 0; y < dimY; y++ {
			for x := 0; x < dimX; x++ {
				n := node{x: x, y: y, layer: l}
				id := top.AddSwitch(l)
				nodes = append(nodes, n)
				nodeIdx[n] = id
			}
		}
	}

	// Physical pitch of the mesh: spread the switches over the bounding box
	// of the cores of each layer so wire lengths are realistic.
	pitchX, pitchY := meshPitch(g, dimX, dimY)
	for i, n := range nodes {
		top.Switches[i].Pos = geom.Point{
			X: (float64(n.x) + 0.5) * pitchX,
			Y: (float64(n.y) + 0.5) * pitchY,
		}
	}

	// Map cores of each layer onto that layer's mesh nodes.
	mapping := initialMapping(g, nodes, dimX, dimY)
	improveMapping(g, nodes, mapping, pitchX, pitchY, opt.SwapPasses)
	for c, nIdx := range mapping {
		top.AttachCore(c, nIdx)
	}

	// Route every flow with dimension-ordered XYZ routing (X, then Y, then Z),
	// which is deadlock free on a mesh.
	for f, fl := range g.Flows {
		src := nodes[mapping[fl.Src]]
		dst := nodes[mapping[fl.Dst]]
		path := xyzPath(src, dst, nodeIdx)
		top.SetRoute(f, path)
	}

	res := &Result{Topology: top, DimX: dimX, DimY: dimY}

	// Count how many mesh links of the full mesh carry no traffic (they are
	// "removed": they simply never appear as aggregated SwitchLinks, so the
	// evaluation does not charge for them).
	used := make(map[[2]int]bool)
	for _, l := range top.SwitchLinks() {
		used[[2]int{l.From, l.To}] = true
	}
	total := 0
	for _, n := range nodes {
		for _, nb := range neighbours(n, dimX, dimY, layers) {
			total++
			if !used[[2]int{nodeIdx[n], nodeIdx[nb]}] {
				res.RemovedLinks++
			}
		}
	}
	_ = total
	return res, nil
}

// meshPitch derives the physical spacing of mesh switches from the core
// floorplan extent.
func meshPitch(g *model.CommGraph, dimX, dimY int) (float64, float64) {
	var maxX, maxY float64
	for _, c := range g.Cores {
		if v := c.X + c.Width; v > maxX {
			maxX = v
		}
		if v := c.Y + c.Height; v > maxY {
			maxY = v
		}
	}
	if maxX <= 0 {
		maxX = float64(dimX)
	}
	if maxY <= 0 {
		maxY = float64(dimY)
	}
	return maxX / float64(dimX), maxY / float64(dimY)
}

// initialMapping assigns every core to a mesh node on its own layer, in
// order of decreasing traffic, choosing the free node closest to the core's
// floorplan position.
func initialMapping(g *model.CommGraph, nodes []node, dimX, dimY int) []int {
	traffic := make([]float64, g.NumCores())
	for _, f := range g.Flows {
		traffic[f.Src] += f.BandwidthMBps
		traffic[f.Dst] += f.BandwidthMBps
	}
	order := make([]int, g.NumCores())
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return traffic[order[a]] > traffic[order[b]] })

	pitchX, pitchY := meshPitch(g, dimX, dimY)
	taken := make(map[int]bool)
	mapping := make([]int, g.NumCores())
	for _, c := range order {
		core := g.Cores[c]
		best, bestDist := -1, math.MaxFloat64
		for idx, n := range nodes {
			if n.layer != core.Layer || taken[idx] {
				continue
			}
			p := geom.Point{X: (float64(n.x) + 0.5) * pitchX, Y: (float64(n.y) + 0.5) * pitchY}
			d := geom.Manhattan(p, core.Center())
			if d < bestDist {
				best, bestDist = idx, d
			}
		}
		if best < 0 {
			// Should not happen (mesh sized to fit); fall back to any node of
			// the layer.
			for idx, n := range nodes {
				if n.layer == core.Layer {
					best = idx
					break
				}
			}
		}
		mapping[c] = best
		taken[best] = true
	}
	return mapping
}

// mappingCost approximates the link power of a mapping: the bandwidth of
// every flow weighted by the physical length of its dimension-ordered route,
// plus the bandwidth of every core weighted by its core-to-switch wire
// length. Minimising it is the "best mapping optimising for power" the paper
// uses for the mesh baseline.
func mappingCost(g *model.CommGraph, nodes []node, mapping []int, pitchX, pitchY float64) float64 {
	var cost float64
	for _, f := range g.Flows {
		a := nodes[mapping[f.Src]]
		b := nodes[mapping[f.Dst]]
		length := float64(abs(a.x-b.x))*pitchX + float64(abs(a.y-b.y))*pitchY
		cost += f.BandwidthMBps * length
	}
	nodeCenter := func(n node) geom.Point {
		return geom.Point{X: (float64(n.x) + 0.5) * pitchX, Y: (float64(n.y) + 0.5) * pitchY}
	}
	coreBW := make([]float64, g.NumCores())
	for _, f := range g.Flows {
		coreBW[f.Src] += f.BandwidthMBps
		coreBW[f.Dst] += f.BandwidthMBps
	}
	for c := range g.Cores {
		cost += coreBW[c] * geom.Manhattan(g.Cores[c].Center(), nodeCenter(nodes[mapping[c]]))
	}
	return cost
}

// improveMapping applies pairwise swap improvement between cores on the same
// layer until no swap helps or the pass budget is exhausted.
func improveMapping(g *model.CommGraph, nodes []node, mapping []int, pitchX, pitchY float64, passes int) {
	n := g.NumCores()
	for pass := 0; pass < passes; pass++ {
		improved := false
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				if g.Cores[a].Layer != g.Cores[b].Layer {
					continue
				}
				before := mappingCost(g, nodes, mapping, pitchX, pitchY)
				mapping[a], mapping[b] = mapping[b], mapping[a]
				after := mappingCost(g, nodes, mapping, pitchX, pitchY)
				if after+1e-9 < before {
					improved = true
				} else {
					mapping[a], mapping[b] = mapping[b], mapping[a]
				}
			}
		}
		if !improved {
			break
		}
	}
}

// xyzPath returns the switch IDs of the dimension-ordered route from src to
// dst (inclusive).
func xyzPath(src, dst node, nodeIdx map[node]int) []int {
	var path []int
	cur := src
	path = append(path, nodeIdx[cur])
	step := func(d *int, target int) bool {
		if *d < target {
			*d++
			return true
		}
		if *d > target {
			*d--
			return true
		}
		return false
	}
	for {
		moved := false
		if step(&cur.x, dst.x) {
			moved = true
		} else if step(&cur.y, dst.y) {
			moved = true
		} else if step(&cur.layer, dst.layer) {
			moved = true
		}
		if !moved {
			break
		}
		path = append(path, nodeIdx[cur])
	}
	return path
}

// neighbours returns the mesh neighbours of a node (x+-1, y+-1, layer+-1).
func neighbours(n node, dimX, dimY, layers int) []node {
	var out []node
	cand := []node{
		{n.x + 1, n.y, n.layer}, {n.x - 1, n.y, n.layer},
		{n.x, n.y + 1, n.layer}, {n.x, n.y - 1, n.layer},
		{n.x, n.y, n.layer + 1}, {n.x, n.y, n.layer - 1},
	}
	for _, c := range cand {
		if c.x >= 0 && c.x < dimX && c.y >= 0 && c.y < dimY && c.layer >= 0 && c.layer < layers {
			out = append(out, c)
		}
	}
	return out
}

func abs(a int) int {
	if a < 0 {
		return -a
	}
	return a
}
