package fault

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"sunfloor3d/internal/model"
	"sunfloor3d/internal/noclib"
	"sunfloor3d/internal/route"
	"sunfloor3d/internal/sim"
	"sunfloor3d/internal/topology"
)

// triangle builds the canonical 3-core, 3-switch repair fixture: flows
// 0 (s0->s1), 1 (s0->s2) and 2 (s2->s1). Killing s0->s1 is repairable via
// the detour s0->s2->s1; killing either other link is certified dead. With
// layers=2, c2/s2 sit on layer 1, making s0->s2 and s2->s1 vertical sites.
func triangle(t *testing.T, layers int) *topology.Topology {
	t.Helper()
	l2 := 0
	if layers > 1 {
		l2 = 1
	}
	cores := []model.Core{
		{Name: "c0", Width: 1, Height: 1, X: 0, Y: 0, Layer: 0},
		{Name: "c1", Width: 1, Height: 1, X: 2, Y: 0, Layer: 0},
		{Name: "c2", Width: 1, Height: 1, X: 1, Y: 2, Layer: l2},
	}
	flows := []model.Flow{
		{Src: 0, Dst: 1, BandwidthMBps: 300},
		{Src: 0, Dst: 2, BandwidthMBps: 200},
		{Src: 2, Dst: 1, BandwidthMBps: 100},
	}
	g, err := model.NewCommGraph(cores, flows)
	if err != nil {
		t.Fatal(err)
	}
	top := topology.New(g, noclib.DefaultLibrary(), 400)
	s0, s1, s2 := top.AddSwitch(0), top.AddSwitch(0), top.AddSwitch(l2)
	top.AttachCore(0, s0)
	top.AttachCore(1, s1)
	top.AttachCore(2, s2)
	top.EstimateSwitchPositions()
	top.SetRoute(0, []int{s0, s1})
	top.SetRoute(1, []int{s0, s2})
	top.SetRoute(2, []int{s2, s1})
	if err := top.Validate(); err != nil {
		t.Fatal(err)
	}
	return top
}

// highRateProcess fails often enough that every site needs at least one
// spare at a 0.999 target.
func highRateProcess() noclib.Process {
	return noclib.Process{Name: "test-lossy", BaseYield: 0.98, TSVFailureRate: 0.05, KneeTSVs: 400}
}

func TestSitesOrderAndBoundaries(t *testing.T) {
	top := triangle(t, 2)
	sites := Sites(top)
	want := []Site{
		{From: 0, To: 1, Boundaries: 0},
		{From: 0, To: 2, Boundaries: 1},
		{From: 2, To: 1, Boundaries: 1},
	}
	if !reflect.DeepEqual(sites, want) {
		t.Fatalf("Sites = %+v, want %+v", sites, want)
	}
	if sites[0].Vertical() || !sites[1].Vertical() {
		t.Error("Vertical() disagrees with Boundaries")
	}
}

func TestSingleFaultPlansEnumerateEverySite(t *testing.T) {
	top := triangle(t, 1)
	plans := SingleFaultPlans(top)
	sites := Sites(top)
	if len(plans) != len(sites) {
		t.Fatalf("got %d plans for %d sites", len(plans), len(sites))
	}
	for i, p := range plans {
		if len(p.Faults) != 1 || p.Faults[0] != (Fault{From: sites[i].From, To: sites[i].To}) {
			t.Errorf("plan %d = %+v, want the single fault of site %+v", i, p, sites[i])
		}
	}
}

func TestRandomPlansDeterministicAndWeighted(t *testing.T) {
	top := triangle(t, 2)
	proc := noclib.StandardProcesses()[0]

	a := RandomPlans(top, 32, 1, 7, proc)
	b := RandomPlans(top, 32, 1, 7, proc)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("equal seeds produced different plans")
	}
	if len(a) != 32 {
		t.Fatalf("got %d plans, want 32", len(a))
	}
	c := RandomPlans(top, 32, 1, 8, proc)
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical plans")
	}

	// Vertical sites are ~20x likelier than the planar one, so in 32
	// single-fault draws the planar link s0->s1 must be the minority.
	planar := 0
	for _, p := range a {
		if p.Faults[0] == (Fault{From: 0, To: 1}) {
			planar++
		}
	}
	if planar > 8 {
		t.Errorf("planar site drawn %d/32 times despite a 20x lower weight", planar)
	}

	// faultsPerPlan caps at the site count, and faults within a plan are
	// distinct.
	wide := RandomPlans(top, 4, 10, 1, proc)
	for i, p := range wide {
		if len(p.Faults) != 3 {
			t.Fatalf("plan %d has %d faults, want all 3 sites", i, len(p.Faults))
		}
		seen := map[Fault]bool{}
		for _, f := range p.Faults {
			if seen[f] {
				t.Errorf("plan %d repeats fault %+v", i, f)
			}
			seen[f] = true
		}
	}

	if got := RandomPlans(top, 0, 1, 1, proc); got != nil {
		t.Errorf("n=0 returned %v", got)
	}
}

func TestBuildSparingSizesEverySite(t *testing.T) {
	top := triangle(t, 2)
	cfg := SparingConfig{Process: highRateProcess(), TargetYield: 0.999}
	plan, err := BuildSparing(top, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Links) != 3 {
		t.Fatalf("sized %d links, want 3", len(plan.Links))
	}
	tsvs, wires := 0, 0
	sites := Sites(top)
	for i, l := range plan.Links {
		if l.From != sites[i].From || l.To != sites[i].To {
			t.Errorf("link %d = %d->%d, want site order %d->%d", i, l.From, l.To, sites[i].From, sites[i].To)
		}
		if sites[i].Vertical() {
			if l.Spares < 1 {
				t.Errorf("vertical link %d->%d got no spare at 5%% TSV failure rate", l.From, l.To)
			}
			tsvs += l.Spares
		} else {
			wires += l.Spares
		}
	}
	if plan.SpareTSVs != tsvs || plan.SpareWires != wires {
		t.Errorf("totals (%d TSVs, %d wires) disagree with the links (%d, %d)",
			plan.SpareTSVs, plan.SpareWires, tsvs, wires)
	}
	if plan.TotalSpares() != tsvs+wires {
		t.Errorf("TotalSpares = %d, want %d", plan.TotalSpares(), tsvs+wires)
	}

	// Deterministic: equal inputs give byte-identical plans.
	again, err := BuildSparing(top, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plan, again) {
		t.Error("equal inputs produced different sparing plans")
	}

	// A realistic process at a modest target needs far fewer spares.
	cheap, err := BuildSparing(top, SparingConfig{Process: noclib.StandardProcesses()[0], TargetYield: 0.99})
	if err != nil {
		t.Fatal(err)
	}
	if cheap.TotalSpares() > plan.TotalSpares() {
		t.Errorf("realistic process needs %d spares, more than the lossy process's %d",
			cheap.TotalSpares(), plan.TotalSpares())
	}
}

func TestBuildSparingValidation(t *testing.T) {
	top := triangle(t, 1)
	bad := []SparingConfig{
		{Process: highRateProcess(), TargetYield: 0},
		{Process: highRateProcess(), TargetYield: 1},
		{Process: noclib.Process{BaseYield: 0, TSVFailureRate: 0.01}, TargetYield: 0.9},
		{Process: noclib.Process{BaseYield: 0.9, TSVFailureRate: 0}, TargetYield: 0.9},
	}
	for i, cfg := range bad {
		if _, err := BuildSparing(top, cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestLinkSurvivalModel(t *testing.T) {
	proc := highRateProcess()
	vert := Site{From: 0, To: 1, Boundaries: 2}
	// More spares never hurt.
	prev := 0.0
	for n := 0; n <= 4; n++ {
		s := linkSurvival(vert, proc, n)
		if s < prev {
			t.Errorf("survival dropped from %v to %v at %d spares", prev, s, n)
		}
		if s <= 0 || s > 1 {
			t.Errorf("survival %v out of range at %d spares", s, n)
		}
		prev = s
	}
	// Zero spares: all b TSVs must work.
	want := (1 - proc.TSVFailureRate) * (1 - proc.TSVFailureRate)
	if got := linkSurvival(vert, proc, 0); !almostEq(got, want, 1e-12) {
		t.Errorf("vertical survival with 0 spares = %v, want %v", got, want)
	}
	// Planar: 1+n redundant wires at the derated rate.
	planar := Site{From: 1, To: 2, Boundaries: 0}
	q := proc.TSVFailureRate / planarRateDivisor
	if got := linkSurvival(planar, proc, 1); !almostEq(got, 1-q*q, 1e-12) {
		t.Errorf("planar survival with 1 spare = %v, want %v", got, 1-q*q)
	}
}

func TestBinomialAtMost(t *testing.T) {
	if got := binomialAtMost(3, 3, 0.5); got != 1 {
		t.Errorf("P(X<=n) = %v, want 1", got)
	}
	// X ~ Binomial(2, 0.5): P(X<=1) = 0.75.
	if got := binomialAtMost(2, 1, 0.5); !almostEq(got, 0.75, 1e-12) {
		t.Errorf("P(X<=1) = %v, want 0.75", got)
	}
	if got := binomialAtMost(4, 0, 0.1); !almostEq(got, 0.9*0.9*0.9*0.9, 1e-12) {
		t.Errorf("P(X=0) = %v", got)
	}
}

func TestModelConfigValidate(t *testing.T) {
	if err := DefaultModelConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []ModelConfig{
		{Plans: 0, FaultsPerPlan: 1},
		{Plans: -1, FaultsPerPlan: 1, ExhaustiveMax: 8},
		{Plans: 4, FaultsPerPlan: 0},
		{Plans: 4, FaultsPerPlan: 1, ExhaustiveMax: -1},
		{Plans: 4, FaultsPerPlan: 1, FaultCycle: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d accepted: %+v", i, c)
		}
	}
}

func TestReplayExhaustiveTriangle(t *testing.T) {
	top := triangle(t, 1)
	mc := ModelConfig{Plans: 4, FaultsPerPlan: 1, Seed: 1, ExhaustiveMax: 24}
	rep, err := Replay(top, route.DefaultConfig(), mc, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Exhaustive {
		t.Error("3-site design did not take the exhaustive path")
	}
	// s0->s1 repairs via the detour; s0->s2 and s2->s1 are certified dead.
	if rep.Plans != 3 || rep.Repaired != 1 || rep.Dead != 2 || rep.Absorbed != 0 {
		t.Fatalf("report = %+v, want 3 plans: 1 repaired, 2 dead", rep)
	}
	if rep.Survived != 1 || rep.ReroutedFlows != 1 {
		t.Errorf("Survived = %d, ReroutedFlows = %d, want 1 and 1", rep.Survived, rep.ReroutedFlows)
	}
	if f := rep.SurvivedFraction(); !almostEq(f, 1.0/3, 1e-12) {
		t.Errorf("SurvivedFraction = %v, want 1/3", f)
	}
	// The detour is longer, so the repair inflates latency.
	if rep.WorstLatencyInflation <= 1 {
		t.Errorf("WorstLatencyInflation = %v, want > 1 for a detour repair", rep.WorstLatencyInflation)
	}
	// The replay never mutates its input.
	if !reflect.DeepEqual(top.Routes[0].Switches, []int{0, 1}) {
		t.Errorf("Replay mutated the input topology: %v", top.Routes[0].Switches)
	}

	// Byte-identical on a second run.
	again, err := Replay(top, route.DefaultConfig(), mc, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(rep)
	b, _ := json.Marshal(again)
	if !bytes.Equal(a, b) {
		t.Errorf("reports differ across runs:\n%s\n%s", a, b)
	}
}

func TestReplaySparesAbsorbEverything(t *testing.T) {
	top := triangle(t, 2)
	sp, err := BuildSparing(top, SparingConfig{Process: highRateProcess(), TargetYield: 0.999})
	if err != nil {
		t.Fatal(err)
	}
	if sp.TotalSpares() < 3 {
		t.Fatalf("fixture needs a spare on every site, got %+v", sp)
	}
	mc := ModelConfig{Plans: 4, FaultsPerPlan: 1, Seed: 1, ExhaustiveMax: 24}
	rep, err := Replay(top, route.DefaultConfig(), mc, sp, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Absorbed != rep.Plans || rep.Survived != rep.Plans || rep.Dead != 0 {
		t.Fatalf("spared design not fully absorbed: %+v", rep)
	}
	if rep.SparesUsed != rep.Plans {
		t.Errorf("SparesUsed = %d, want one per plan", rep.SparesUsed)
	}
	if rep.SpareUtilization <= 0 || rep.SpareUtilization > 1 {
		t.Errorf("SpareUtilization = %v out of range", rep.SpareUtilization)
	}
	if rep.SpareTSVs != sp.SpareTSVs || rep.SpareWires != sp.SpareWires {
		t.Errorf("report spares (%d, %d) disagree with the plan (%d, %d)",
			rep.SpareTSVs, rep.SpareWires, sp.SpareTSVs, sp.SpareWires)
	}
}

func TestReplaySimCrossValidation(t *testing.T) {
	top := triangle(t, 1)
	scfg := sim.DefaultConfig()
	scfg.Cycles = 1000
	scfg.DrainCycles = 1000
	mc := ModelConfig{Plans: 4, FaultsPerPlan: 1, Seed: 1, ExhaustiveMax: 24}
	rep, err := Replay(top, route.DefaultConfig(), mc, nil, &scfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SimInjected != rep.Plans {
		t.Errorf("SimInjected = %d, want every non-absorbed plan (%d)", rep.SimInjected, rep.Plans)
	}
	if rep.SimDetected == 0 {
		t.Error("the watchdog never observed an injected fault")
	}
	if rep.SimChecked != rep.Repaired {
		t.Errorf("SimChecked = %d, want one post-repair run per repaired plan (%d)", rep.SimChecked, rep.Repaired)
	}
	// The graceful-degradation contract: the watchdog must never trip on a
	// repaired topology.
	if rep.SimDeadlocks != 0 {
		t.Errorf("SimDeadlocks = %d, want 0", rep.SimDeadlocks)
	}
}

func TestReplayRandomPath(t *testing.T) {
	top := triangle(t, 2)
	mc := ModelConfig{Plans: 8, FaultsPerPlan: 1, Seed: 3, ExhaustiveMax: 0}
	rep, err := Replay(top, route.DefaultConfig(), mc, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Exhaustive {
		t.Error("ExhaustiveMax=0 still took the exhaustive path")
	}
	if rep.Plans != 8 {
		t.Errorf("Plans = %d, want 8", rep.Plans)
	}
	if rep.Survived+rep.Dead != rep.Plans {
		t.Errorf("survived %d + dead %d != plans %d", rep.Survived, rep.Dead, rep.Plans)
	}
}

// TestReplayAllAbsorbedReportFinite is the regression test for the
// degenerate-ratio bugs: with every fault absorbed by a spare there are zero
// repaired flows, so neither worst_latency_inflation nor spare_utilization
// has a populated numerator path, and with zero provisioned spares the
// utilization denominator is zero. In both cases the JSON-stable report must
// stay finite — encoding/json rejects NaN and Inf outright, so a successful
// marshal doubles as the finiteness check.
func TestReplayAllAbsorbedReportFinite(t *testing.T) {
	mc := ModelConfig{Plans: 4, FaultsPerPlan: 1, Seed: 1, ExhaustiveMax: 24}

	// Every fault absorbed: zero repaired flows.
	top := triangle(t, 2)
	sp, err := BuildSparing(top, SparingConfig{Process: highRateProcess(), TargetYield: 0.999})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Replay(top, route.DefaultConfig(), mc, sp, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Repaired != 0 || rep.ReroutedFlows != 0 || rep.Absorbed != rep.Plans {
		t.Fatalf("fixture not fully absorbed: %+v", rep)
	}
	if rep.WorstLatencyInflation != 1 {
		t.Errorf("WorstLatencyInflation = %v with zero repairs, want the neutral 1", rep.WorstLatencyInflation)
	}
	if math.IsNaN(rep.SpareUtilization) || math.IsInf(rep.SpareUtilization, 0) {
		t.Errorf("SpareUtilization = %v, want finite", rep.SpareUtilization)
	}
	if _, err := json.Marshal(rep); err != nil {
		t.Errorf("all-absorbed report does not serialise: %v", err)
	}

	// Zero provisioned spares: the utilization denominator Plans*TotalSpares
	// is zero and the ratio must not be computed at all.
	empty := &SparingPlan{Process: highRateProcess()}
	rep, err = Replay(triangle(t, 1), route.DefaultConfig(), mc, empty, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SpareUtilization != 0 {
		t.Errorf("SpareUtilization = %v with zero spares, want 0", rep.SpareUtilization)
	}
	if _, err := json.Marshal(rep); err != nil {
		t.Errorf("zero-spare report does not serialise: %v", err)
	}
}

func almostEq(a, b, eps float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < eps
}
