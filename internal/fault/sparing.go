package fault

import (
	"fmt"
	"math"

	"sunfloor3d/internal/noclib"
	"sunfloor3d/internal/topology"
)

// SparingConfig asks the synthesis flow to provision spare TSVs and spare
// planar wires so the fabricated chip reaches a target functional yield on a
// given manufacturing process.
type SparingConfig struct {
	// Process is the 3-D manufacturing process whose failure rates size the
	// spares.
	Process noclib.Process
	// TargetYield is the functional-yield target in (0, 1): the probability
	// that every inter-switch link of the chip works (possibly through a
	// spare) must be at least this value.
	TargetYield float64
}

// Validate checks the configuration values.
func (c SparingConfig) Validate() error {
	if c.Process.BaseYield <= 0 || c.Process.BaseYield > 1 {
		return fmt.Errorf("fault: sparing process BaseYield %g outside (0, 1]", c.Process.BaseYield)
	}
	if c.Process.TSVFailureRate <= 0 || c.Process.TSVFailureRate >= 1 {
		return fmt.Errorf("fault: sparing process TSVFailureRate %g outside (0, 1)", c.Process.TSVFailureRate)
	}
	if c.TargetYield <= 0 || c.TargetYield >= 1 {
		return fmt.Errorf("fault: TargetYield %g outside (0, 1)", c.TargetYield)
	}
	return nil
}

// LinkSpares records the spares provisioned for one fault site.
type LinkSpares struct {
	From, To int
	// Spares is the number of spare TSVs (vertical sites) or spare wires
	// (planar sites) the link carries.
	Spares int
}

// SparingPlan is the provisioned spare set of one topology: how many spare
// TSVs or wires every inter-switch link carries so the chip meets the target
// yield.
type SparingPlan struct {
	// Process the plan was sized for.
	Process noclib.Process
	// Links lists the per-site spare counts, in Sites order.
	Links []LinkSpares
	// SpareTSVs is the total number of spare TSVs (vertical sites only);
	// these occupy TSV macros and are reported in the topology metrics.
	SpareTSVs int
	// SpareWires is the total number of spare planar wires.
	SpareWires int
}

// TotalSpares returns the total number of provisioned spares across all
// sites.
func (p *SparingPlan) TotalSpares() int { return p.SpareTSVs + p.SpareWires }

// maxSparesPerLink bounds the spare search; with realistic failure rates one
// or two spares per link always suffice, the cap only guards against an
// unreachable per-link target.
const maxSparesPerLink = 64

// BuildSparing sizes the spares of every fault site of the topology so the
// whole link set survives manufacturing with probability at least
// cfg.TargetYield. The target is split evenly across the sites (per-link
// target yield^(1/L)); each vertical link spanning b boundaries carries b
// TSVs failing independently at the process rate and receives the smallest
// spare count whose binomial survival meets the per-link target, and each
// planar link fails as a unit at the derated wire rate with 1+s independent
// copies. The construction is deterministic: equal (topology, config) inputs
// return byte-identical plans.
func BuildSparing(t *topology.Topology, cfg SparingConfig) (*SparingPlan, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sites := Sites(t)
	plan := &SparingPlan{Process: cfg.Process, Links: make([]LinkSpares, 0, len(sites))}
	if len(sites) == 0 {
		return plan, nil
	}
	perLink := rootN(cfg.TargetYield, len(sites))
	for _, s := range sites {
		n, err := sparesFor(s, cfg.Process, perLink)
		if err != nil {
			return nil, err
		}
		plan.Links = append(plan.Links, LinkSpares{From: s.From, To: s.To, Spares: n})
		if s.Vertical() {
			plan.SpareTSVs += n
		} else {
			plan.SpareWires += n
		}
	}
	return plan, nil
}

// sparesFor returns the smallest spare count that lifts the site's survival
// probability to at least target.
func sparesFor(s Site, proc noclib.Process, target float64) (int, error) {
	for n := 0; n <= maxSparesPerLink; n++ {
		if linkSurvival(s, proc, n) >= target {
			return n, nil
		}
	}
	return 0, fmt.Errorf("fault: link %d->%d cannot reach per-link yield %g with %d spares",
		s.From, s.To, target, maxSparesPerLink)
}

// linkSurvival returns the probability that the site still works with n
// spares. A vertical site spanning b boundaries needs b working TSVs out of
// the b+n fabricated ones (spares substitute for any failed TSV); a planar
// site needs any one of its 1+n redundant wires.
func linkSurvival(s Site, proc noclib.Process, n int) float64 {
	if s.Vertical() {
		return binomialAtMost(s.Boundaries+n, n, proc.TSVFailureRate)
	}
	q := proc.TSVFailureRate / planarRateDivisor
	allDead := 1.0
	for i := 0; i <= n; i++ {
		allDead *= q
	}
	return 1 - allDead
}

// binomialAtMost returns P(X <= k) for X ~ Binomial(n, p), evaluated with a
// fixed left-to-right recurrence so the result is byte-identical across
// platforms and runs.
func binomialAtMost(n, k int, p float64) float64 {
	if k >= n {
		return 1
	}
	// pmf(0) = (1-p)^n, pmf(i+1) = pmf(i) * (n-i)/(i+1) * p/(1-p).
	pmf := 1.0
	for i := 0; i < n; i++ {
		pmf *= 1 - p
	}
	cdf := pmf
	for i := 0; i < k; i++ {
		pmf *= float64(n-i) / float64(i+1) * p / (1 - p)
		cdf += pmf
	}
	return cdf
}

// rootN returns x^(1/n); math.Pow is a pure-Go softfloat implementation, so
// the result is byte-identical across platforms (the yield model already
// depends on this).
func rootN(x float64, n int) float64 {
	if n <= 1 {
		return x
	}
	return math.Pow(x, 1/float64(n))
}
