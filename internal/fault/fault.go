// Package fault implements the fault-aware side of the synthesis flow:
// deterministic fault-plan generation over the fabricated inter-switch links,
// spare-TSV/link sizing from a manufacturing process and a target yield, and
// the replay harness that verifies graceful degradation — every injected
// fault plan must end either fully absorbed by spares, repaired into a
// deadlock-free re-routed topology, or certified dead (some flow provably has
// no surviving path).
//
// Everything in this package is seed-deterministic: equal (topology, config,
// seed) inputs produce byte-identical plans and byte-identical survivability
// reports, which is what lets the property harness compare serial and
// parallel synthesis runs flit for flit and byte for byte.
package fault

import (
	"fmt"
	"math/rand"

	"sunfloor3d/internal/noclib"
	"sunfloor3d/internal/topology"
)

// Site is a fabricated directed inter-switch link that can fail. Vertical
// sites carry one TSV per crossed layer boundary; planar sites are on-layer
// wires.
type Site struct {
	// From and To are the switch IDs of the directed link.
	From, To int
	// Boundaries is the number of layer boundaries the link crosses
	// (0 = planar link).
	Boundaries int
}

// Vertical reports whether the site crosses at least one layer boundary and
// therefore uses TSVs.
func (s Site) Vertical() bool { return s.Boundaries > 0 }

// Fault identifies one failed directed inter-switch link.
type Fault struct {
	From int `json:"from"`
	To   int `json:"to"`
}

// Plan is one manufacturing-fault scenario: the set of links that fail
// together.
type Plan struct {
	Faults []Fault `json:"faults"`
}

// Sites returns the failure sites of the topology: every directed
// switch-to-switch link implied by the committed routes, in the deterministic
// ascending (From, To) order of Topology.SwitchLinks.
func Sites(t *topology.Topology) []Site {
	links := t.SwitchLinks()
	sites := make([]Site, 0, len(links))
	for _, l := range links {
		d := t.Switches[l.From].Layer - t.Switches[l.To].Layer
		if d < 0 {
			d = -d
		}
		sites = append(sites, Site{From: l.From, To: l.To, Boundaries: d})
	}
	return sites
}

// SingleFaultPlans enumerates every single-link fault plan, one per site, in
// site order. For small designs this is the exhaustive fault universe.
func SingleFaultPlans(t *topology.Topology) []Plan {
	sites := Sites(t)
	plans := make([]Plan, len(sites))
	for i, s := range sites {
		plans[i] = Plan{Faults: []Fault{{From: s.From, To: s.To}}}
	}
	return plans
}

// siteWeight is the relative failure probability of a site on the process: a
// vertical link fails when any of its TSVs fails, a planar wire fails as a
// unit at a twentieth of the per-TSV rate (wires need no through-silicon
// etch, so manufacturing defects are far rarer).
func siteWeight(s Site, proc noclib.Process) float64 {
	p := proc.TSVFailureRate
	if s.Vertical() {
		surv := 1.0
		for i := 0; i < s.Boundaries; i++ {
			surv *= 1 - p
		}
		return 1 - surv
	}
	return p / planarRateDivisor
}

// planarRateDivisor scales the per-TSV failure rate down to the failure rate
// of a planar wire.
const planarRateDivisor = 20

// RandomPlans draws n fault plans of faultsPerPlan distinct links each,
// weighting every site by its failure probability on the process, so the
// plans follow the physical fault distribution instead of a uniform one.
// The sampling is fully determined by the seed: equal inputs return
// byte-identical plans.
func RandomPlans(t *topology.Topology, n, faultsPerPlan int, seed int64, proc noclib.Process) []Plan {
	sites := Sites(t)
	if len(sites) == 0 || n <= 0 || faultsPerPlan <= 0 {
		return nil
	}
	if faultsPerPlan > len(sites) {
		faultsPerPlan = len(sites)
	}
	rng := rand.New(rand.NewSource(seed))
	plans := make([]Plan, n)
	weights := make([]float64, len(sites))
	for i := range plans {
		// Weighted sampling without replacement over a fresh weight vector.
		for j, s := range sites {
			weights[j] = siteWeight(s, proc)
		}
		faults := make([]Fault, 0, faultsPerPlan)
		for len(faults) < faultsPerPlan {
			total := 0.0
			for _, w := range weights {
				total += w
			}
			r := rng.Float64() * total
			pick := len(sites) - 1
			acc := 0.0
			for j, w := range weights {
				acc += w
				if r < acc && w > 0 {
					pick = j
					break
				}
			}
			faults = append(faults, Fault{From: sites[pick].From, To: sites[pick].To})
			weights[pick] = 0
		}
		plans[i] = Plan{Faults: faults}
	}
	return plans
}

// ModelConfig configures the fault-injection replay attached to a synthesis
// run.
type ModelConfig struct {
	// Plans is the number of random fault plans replayed against every valid
	// design point (ignored when the exhaustive enumeration applies).
	Plans int
	// FaultsPerPlan is the number of distinct links that fail together in
	// each random plan.
	FaultsPerPlan int
	// Seed drives the weighted fault-site sampling. Equal seeds give
	// byte-identical plans and reports.
	Seed int64
	// ExhaustiveMax switches to the exhaustive single-fault enumeration
	// whenever the design has at most this many fault sites (0 disables the
	// exhaustive path).
	ExhaustiveMax int
	// FaultCycle is the simulated cycle at which the plan's links die when
	// the replay cross-validates a fault dynamically (0 = dead from reset).
	FaultCycle int
}

// DefaultModelConfig returns the replay configuration used by the CLI when
// -faults is given without further tuning: 16 single-fault random plans, with
// exhaustive enumeration taking over on designs of up to 24 fault sites.
func DefaultModelConfig() ModelConfig {
	return ModelConfig{Plans: 16, FaultsPerPlan: 1, Seed: 1, ExhaustiveMax: 24}
}

// Validate checks the configuration values.
func (c ModelConfig) Validate() error {
	checks := []struct {
		ok  bool
		msg string
	}{
		{c.Plans > 0 || c.ExhaustiveMax > 0, "fault: Plans must be positive (or ExhaustiveMax set)"},
		{c.Plans >= 0, "fault: Plans must be non-negative"},
		{c.FaultsPerPlan > 0, "fault: FaultsPerPlan must be positive"},
		{c.ExhaustiveMax >= 0, "fault: ExhaustiveMax must be non-negative"},
		{c.FaultCycle >= 0, "fault: FaultCycle must be non-negative"},
	}
	for _, ch := range checks {
		if !ch.ok {
			return fmt.Errorf("%s", ch.msg)
		}
	}
	return nil
}
