package fault

import (
	"fmt"

	"sunfloor3d/internal/noclib"
	"sunfloor3d/internal/route"
	"sunfloor3d/internal/sim"
	"sunfloor3d/internal/topology"
)

// Survivability is the per-design-point fault report: how the topology fared
// against every replayed fault plan. All fields are plain values with fixed
// JSON names, so the report serialises byte-identically for equal inputs.
type Survivability struct {
	// Plans is the number of fault plans replayed.
	Plans int `json:"plans"`
	// Exhaustive reports that the plans enumerate every single-link fault of
	// the design rather than a random sample.
	Exhaustive bool `json:"exhaustive,omitempty"`
	// Survived counts the plans the design survives: every fault absorbed by
	// a spare, or all stranded flows re-routed deadlock-free.
	Survived int `json:"survived"`
	// Absorbed counts the survived plans in which spares masked every fault
	// and no re-routing was needed.
	Absorbed int `json:"absorbed"`
	// Repaired counts the survived plans that needed re-routing.
	Repaired int `json:"repaired"`
	// Dead counts the certified-dead plans: some flow provably has no path
	// over the surviving links.
	Dead int `json:"dead"`
	// ReroutedFlows is the total number of stranded flows re-routed across
	// all repaired plans.
	ReroutedFlows int `json:"rerouted_flows,omitempty"`
	// WorstLatencyInflation is the worst ratio of repaired to baseline
	// average zero-load latency over the repaired plans (1 when no repair
	// changed the latency).
	WorstLatencyInflation float64 `json:"worst_latency_inflation,omitempty"`
	// SpareTSVs and SpareWires echo the provisioned sparing plan.
	SpareTSVs  int `json:"spare_tsvs,omitempty"`
	SpareWires int `json:"spare_wires,omitempty"`
	// SparesUsed is the total number of faults absorbed by a spare across
	// all plans.
	SparesUsed int `json:"spares_used,omitempty"`
	// SpareUtilization is SparesUsed over the total spare capacity offered
	// across all plans (Plans x TotalSpares).
	SpareUtilization float64 `json:"spare_utilization,omitempty"`
	// SimInjected counts the plans whose faults were additionally injected
	// into the flit-level simulator on the unrepaired topology; SimDetected
	// counts how many of those runs the runtime watchdog flagged.
	SimInjected int `json:"sim_injected,omitempty"`
	SimDetected int `json:"sim_detected,omitempty"`
	// SimChecked counts the repaired plans whose re-routed topology was
	// re-simulated; SimDeadlocks counts watchdog trips among them and must
	// be zero — the repair contract is that the watchdog never fires
	// post-repair.
	SimChecked   int `json:"sim_checked,omitempty"`
	SimDeadlocks int `json:"sim_deadlocks,omitempty"`
}

// SurvivedFraction returns the fraction of replayed plans the design
// survived (0 when no plan ran).
func (s *Survivability) SurvivedFraction() float64 {
	if s.Plans == 0 {
		return 0
	}
	return float64(s.Survived) / float64(s.Plans)
}

// Replay runs the fault harness against a routed, validated topology: it
// generates the fault plans (exhaustive single-fault enumeration when the
// design is small enough, weighted random sampling otherwise), lets the
// sparing plan absorb what it can, repairs the rest with
// route.RepairRoutes, statically re-validates every repaired route set via
// the channel-dependency graph, and — when simCfg is non-nil — dynamically
// cross-validates with the flit simulator: faults are injected into the
// unrepaired topology at mc.FaultCycle (the watchdog should observe them)
// and the repaired topology is re-simulated (the watchdog must not trip).
//
// t is never mutated; repairs happen on clones. The replay is fully
// deterministic: equal (topology, configs, sparing plan, seed) inputs return
// byte-identical reports.
func Replay(t *topology.Topology, rcfg route.Config, mc ModelConfig, sp *SparingPlan, simCfg *sim.Config) (*Survivability, error) {
	if err := mc.Validate(); err != nil {
		return nil, err
	}
	rep := &Survivability{}
	if sp != nil {
		rep.SpareTSVs = sp.SpareTSVs
		rep.SpareWires = sp.SpareWires
	}
	sites := Sites(t)
	if len(sites) == 0 {
		// A single-switch design has no inter-switch link to fail.
		return rep, nil
	}

	var plans []Plan
	if mc.ExhaustiveMax > 0 && len(sites) <= mc.ExhaustiveMax {
		plans = SingleFaultPlans(t)
		rep.Exhaustive = true
	} else {
		proc := noclib.StandardProcesses()[0]
		if sp != nil {
			proc = sp.Process
		}
		plans = RandomPlans(t, mc.Plans, mc.FaultsPerPlan, mc.Seed, proc)
	}
	rep.Plans = len(plans)
	rep.WorstLatencyInflation = 1

	spares := make(map[[2]int]int)
	if sp != nil {
		for _, l := range sp.Links {
			spares[[2]int{l.From, l.To}] = l.Spares
		}
	}
	baseline := t.Evaluate().AvgLatencyCycles

	for _, plan := range plans {
		// Spares absorb faults first: a link with at least one provisioned
		// spare survives the loss of its primary TSV/wire.
		var dead [][2]int
		for _, f := range plan.Faults {
			key := [2]int{f.From, f.To}
			if spares[key] > 0 {
				rep.SparesUsed++
				continue
			}
			dead = append(dead, key)
		}
		if len(dead) == 0 {
			rep.Absorbed++
			rep.Survived++
			continue
		}

		if simCfg != nil {
			// Dynamic fault observation: inject the dead links into the
			// unrepaired topology and let the watchdog see the stranded
			// flits starve.
			cfg := *simCfg
			cfg.DeadLinks = dead
			cfg.FaultCycle = mc.FaultCycle
			st, err := sim.Run(t, cfg)
			if err != nil {
				return nil, fmt.Errorf("fault: injection simulation: %w", err)
			}
			rep.SimInjected++
			if !st.Healthy() {
				rep.SimDetected++
			}
		}

		clone := t.Clone()
		rr, err := route.RepairRoutes(clone, rcfg, dead)
		if err != nil {
			return nil, err
		}
		if len(rr.Unroutable) > 0 {
			rep.Dead++
			continue
		}
		if !route.DeadlockFree(clone) {
			return nil, fmt.Errorf("fault: repaired routes have a cyclic channel dependency graph")
		}
		rep.ReroutedFlows += rr.Rerouted
		m := clone.Evaluate()
		// A degenerate baseline (no routed flows, zero-length routes) would
		// turn the ratio into NaN or Inf; the inflation then stays at its
		// neutral value of 1 rather than poisoning the JSON-stable report.
		if baseline > 0 {
			if infl := m.AvgLatencyCycles / baseline; infl > rep.WorstLatencyInflation {
				rep.WorstLatencyInflation = infl
			}
		}
		rep.Repaired++
		rep.Survived++

		if simCfg != nil {
			// Graceful-degradation check: the repaired topology must run
			// clean — no watchdog trip, no livelock.
			cfg := *simCfg
			cfg.DeadLinks = nil
			cfg.FaultCycle = 0
			st, err := sim.Run(clone, cfg)
			if err != nil {
				return nil, fmt.Errorf("fault: post-repair simulation: %w", err)
			}
			rep.SimChecked++
			if !st.Healthy() {
				rep.SimDeadlocks++
			}
		}
	}

	if sp != nil && sp.TotalSpares() > 0 && rep.Plans > 0 {
		rep.SpareUtilization = float64(rep.SparesUsed) / float64(rep.Plans*sp.TotalSpares())
	}
	return rep, nil
}
