package route_test

// Fuzz harness for the path-computation step: randomized communication
// graphs and switch assignments must never panic the router, the committed
// paths must validate and stay deadlock free (acyclic CDG), and the
// incrementally maintained cost graph must return byte-identical results to
// the full-rebuild reference implementation.

import (
	"testing"

	"sunfloor3d/internal/model"
	"sunfloor3d/internal/noclib"
	"sunfloor3d/internal/route"
	"sunfloor3d/internal/topology"
)

// fuzzReader doles out bytes from the fuzz input, falling back to a rolling
// default when the input is exhausted so every prefix decodes to a valid
// scenario.
type fuzzReader struct {
	data []byte
	pos  int
}

func (r *fuzzReader) byte() byte {
	if r.pos >= len(r.data) {
		r.pos++
		return byte(r.pos * 37)
	}
	b := r.data[r.pos]
	r.pos++
	return b
}

// intn returns a value in [1, n] derived from the next byte.
func (r *fuzzReader) intn(n int) int { return 1 + int(r.byte())%n }

// buildScenario decodes the fuzz input into a routed-topology scenario: a
// communication graph, a switch set with layers and positions, and core
// attachments. It returns nil when the decoded design is degenerate.
func buildScenario(data []byte) (*model.CommGraph, func() *topology.Topology) {
	r := &fuzzReader{data: data}
	nCores := 2 + int(r.byte())%9    // 2..10
	nLayers := 1 + int(r.byte())%3   // 1..3
	nSwitches := 1 + int(r.byte())%6 // 1..6
	nFlows := 1 + int(r.byte())%16   // 1..16

	cores := make([]model.Core, nCores)
	for i := range cores {
		cores[i] = model.Core{
			Name:   "c" + string(rune('a'+i)),
			Width:  0.5 + float64(r.intn(8))/4,
			Height: 0.5 + float64(r.intn(8))/4,
			X:      float64(r.intn(12)),
			Y:      float64(r.intn(12)),
			Layer:  int(r.byte()) % nLayers,
		}
	}
	var flows []model.Flow
	for i := 0; i < nFlows; i++ {
		src := int(r.byte()) % nCores
		dst := int(r.byte()) % nCores
		if src == dst {
			continue
		}
		flows = append(flows, model.Flow{
			Src: src, Dst: dst,
			BandwidthMBps: float64(25 * r.intn(80)),
			LatencyCycles: float64(int(r.byte()) % 12), // 0 = unconstrained
		})
	}
	if len(flows) == 0 {
		return nil, nil
	}
	g, err := model.NewCommGraph(cores, flows)
	if err != nil {
		return nil, nil
	}

	swLayer := make([]int, nSwitches)
	swX := make([]float64, nSwitches)
	swY := make([]float64, nSwitches)
	for s := 0; s < nSwitches; s++ {
		swLayer[s] = int(r.byte()) % nLayers
		swX[s] = float64(r.intn(12))
		swY[s] = float64(r.intn(12))
	}
	attach := make([]int, nCores)
	for c := range attach {
		attach[c] = int(r.byte()) % nSwitches
	}

	build := func() *topology.Topology {
		top := topology.New(g, noclib.DefaultLibrary(), 400)
		for s := 0; s < nSwitches; s++ {
			id := top.AddSwitch(swLayer[s])
			top.Switches[id].Pos.X = swX[s]
			top.Switches[id].Pos.Y = swY[s]
		}
		for c, s := range attach {
			top.AttachCore(c, s)
		}
		return top
	}
	return g, build
}

// routesEqual compares the committed routes of two topologies.
func routesEqual(a, b *topology.Topology) bool {
	if len(a.Routes) != len(b.Routes) {
		return false
	}
	for f := range a.Routes {
		ra, rb := a.Routes[f].Switches, b.Routes[f].Switches
		if len(ra) != len(rb) {
			return false
		}
		for i := range ra {
			if ra[i] != rb[i] {
				return false
			}
		}
	}
	return true
}

func FuzzComputePaths(f *testing.F) {
	// Seed corpus: hand-picked shapes covering single-switch, multi-layer,
	// constrained and dense scenarios.
	f.Add([]byte{})
	f.Add([]byte{4, 2, 3, 8, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add([]byte{9, 3, 5, 15, 200, 100, 50, 25, 12, 6, 3, 1, 0, 255, 128, 64, 32, 16, 8, 4, 2, 1})
	f.Add([]byte{2, 1, 1, 1, 0, 1, 10, 0})
	f.Add([]byte{10, 3, 6, 16, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7})

	f.Fuzz(func(t *testing.T, data []byte) {
		g, build := buildScenario(data)
		if g == nil {
			return
		}
		cfg := route.DefaultConfig()
		// Derive mild constraints from the input so both constrained and
		// unconstrained paths are explored.
		if len(data) > 0 {
			cfg.MaxILL = int(data[0]) % 8 // 0 = unconstrained
			cfg.MaxSwitchSize = int(data[len(data)-1]) % 10
			if cfg.MaxSwitchSize > 0 && cfg.MaxSwitchSize < 2 {
				cfg.MaxSwitchSize = 2
			}
		}

		// Incremental cost graph (production) vs full rebuild (reference):
		// both must route identically from identical starting topologies.
		incTop := build()
		incCfg := cfg
		incRes, incErr := route.ComputePaths(incTop, incCfg)

		refTop := build()
		refCfg := cfg
		refCfg.FullRebuild = true
		refRes, refErr := route.ComputePaths(refTop, refCfg)

		if (incErr == nil) != (refErr == nil) {
			t.Fatalf("error divergence: incremental %v, reference %v", incErr, refErr)
		}
		if incErr != nil {
			return
		}
		if incRes.Routed != refRes.Routed || len(incRes.Failed) != len(refRes.Failed) ||
			incRes.IndirectSwitches != refRes.IndirectSwitches ||
			incRes.DeadlockRetries != refRes.DeadlockRetries {
			t.Fatalf("result divergence:\nincremental %+v\nreference   %+v", incRes, refRes)
		}
		if incTop.NumSwitches() != refTop.NumSwitches() {
			t.Fatalf("switch count divergence: %d vs %d", incTop.NumSwitches(), refTop.NumSwitches())
		}
		if !routesEqual(incTop, refTop) {
			t.Fatal("committed routes diverge between incremental and full-rebuild router")
		}

		// Committed paths of a fully routed topology must validate and be
		// deadlock free.
		if incRes.Success() {
			if err := incTop.Validate(); err != nil {
				t.Fatalf("routed topology does not validate: %v", err)
			}
			if !route.DeadlockFree(incTop) {
				t.Fatal("committed paths have a cyclic channel dependency graph")
			}
		}

		// CommittedPaths must mirror the routes without aliasing.
		paths := route.CommittedPaths(incTop)
		for fl, p := range paths {
			if len(p) != len(incTop.Routes[fl].Switches) {
				t.Fatalf("flow %d: exported path length %d != route length %d",
					fl, len(p), len(incTop.Routes[fl].Switches))
			}
		}
	})
}
