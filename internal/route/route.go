// Package route implements the path-computation step of Section VI of the
// paper: establishing physical links between switches and assigning a path to
// every traffic flow, driven by the marginal power and latency cost of using
// or opening each link, while honouring the 3-D technology constraints of
// Algorithm 3 (maximum inter-layer links, maximum switch size, both with hard
// INF and soft SOFT_INF thresholds) and keeping the routes free of routing
// deadlocks via a channel-dependency-graph acyclicity check. When the switch
// size constraint cannot be met, indirect switches are inserted to connect
// other switches together, as described at the end of Section VI.
package route

import (
	"fmt"
	"sort"

	"sunfloor3d/internal/geom"
	"sunfloor3d/internal/graph"
	"sunfloor3d/internal/noclib"
	"sunfloor3d/internal/topology"
)

// Config controls the path computation.
type Config struct {
	// MaxILL is the maximum number of links allowed to cross any adjacent
	// layer boundary (the paper's max_ill). Zero means unconstrained.
	MaxILL int
	// SoftILLMargin is how many links below MaxILL the soft threshold sits
	// (the paper found 2-3 to work well).
	SoftILLMargin int
	// MaxSwitchSize is the maximum number of input or output ports per
	// switch (max_sw_size). Zero means unconstrained.
	MaxSwitchSize int
	// SoftSwitchMargin is how many ports below MaxSwitchSize the soft
	// threshold sits.
	SoftSwitchMargin int
	// AdjacentLayersOnly forbids physical links spanning two or more layers
	// (Phase 2 and technologies without multi-layer TSV stacks).
	AdjacentLayersOnly bool
	// PowerWeight and LatencyWeight blend the two objectives in the link
	// cost. They need not sum to one.
	PowerWeight, LatencyWeight float64
	// AllowIndirectSwitches lets the router insert extra switches when no
	// valid path exists under the switch-size constraint.
	AllowIndirectSwitches bool
	// MaxDeadlockRetries bounds how many times a flow's path is recomputed
	// with penalised arcs after a channel-dependency cycle is detected.
	MaxDeadlockRetries int
	// FullRebuild disables the incrementally maintained cost graph and
	// rebuilds the full O(S^2) arc-cost graph for every flow and deadlock
	// retry, as the original CHECK_CONSTRAINTS loop does. It exists as the
	// reference implementation for equivalence tests and before/after
	// benchmarks; production runs should leave it off.
	FullRebuild bool
}

// DefaultConfig returns the configuration used by the experiments: a blend
// strongly favouring power (as in the paper's "most power-efficient" points),
// soft margins of 2, and indirect switch insertion enabled.
func DefaultConfig() Config {
	return Config{
		MaxILL:                0,
		SoftILLMargin:         2,
		MaxSwitchSize:         0,
		SoftSwitchMargin:      1,
		AdjacentLayersOnly:    false,
		PowerWeight:           1.0,
		LatencyWeight:         0.1,
		AllowIndirectSwitches: true,
		MaxDeadlockRetries:    4,
	}
}

// Result reports what the router did.
type Result struct {
	// Routed is the number of flows that received a valid path.
	Routed int
	// Failed lists the flows that could not be routed under the constraints.
	Failed []int
	// IndirectSwitches is the number of switches added by the router.
	IndirectSwitches int
	// DeadlockRetries counts path recomputations forced by channel
	// dependency cycles.
	DeadlockRetries int
}

// Success reports whether every flow was routed.
func (r Result) Success() bool { return len(r.Failed) == 0 }

// router carries the mutable state of one ComputePaths run.
type router struct {
	top *topology.Topology
	cfg Config

	// linkBW[from][to] is the bandwidth already committed to the directed
	// physical link between two switches (only links that exist are present).
	linkBW map[[2]int]float64
	// ill[b] is the number of physical links crossing the boundary between
	// layers b and b+1 (switch-to-switch and core-to-switch).
	ill []int
	// inPorts/outPorts track current switch sizes.
	inPorts, outPorts []int
	// cdg is the channel dependency graph: one vertex per directed
	// switch-to-switch link, an edge when some flow uses two links in
	// sequence.
	cdg      *graph.Graph
	linkIdx  map[[2]int]int
	deadlock int
	// softInf is the SOFT_INF penalty of Algorithm 3, fixed for the whole
	// run (it depends only on the design, library, frequency and weights).
	softInf float64
	// allowed, when non-nil, restricts routing to the listed directed arcs.
	// It is the repair-mode overlay: on a fabricated chip only the links that
	// were actually built (minus the failed ones) are usable, whatever their
	// current cost would be. nil (the synthesis case) allows every arc.
	allowed map[[2]int]bool
	// cost is the incrementally maintained arc-cost graph (nil when
	// Config.FullRebuild selects the reference per-flow rebuild).
	cost *costModel
}

// ComputePaths assigns a route to every flow of the topology. Switches and
// core attachments must already be in place (and switch positions estimated);
// existing routes are discarded.
func ComputePaths(t *topology.Topology, cfg Config) (Result, error) {
	if t.NumSwitches() == 0 {
		return Result{}, fmt.Errorf("route: topology has no switches")
	}
	for c, sw := range t.CoreAttach {
		if sw < 0 || sw >= t.NumSwitches() {
			return Result{}, fmt.Errorf("route: core %d is not attached to a switch", c)
		}
	}
	r := &router{top: t, cfg: cfg}
	r.init()

	var res Result
	// Route flows in decreasing bandwidth order so the heaviest flows get the
	// cheapest paths (same strategy as the 2-D flow of [16]).
	for _, f := range t.Design.FlowsByBandwidth() {
		if ok := r.routeFlow(f); ok {
			res.Routed++
		} else if cfg.AllowIndirectSwitches {
			routed, kept := r.tryWithIndirectSwitch(f)
			if routed {
				res.Routed++
				if kept {
					res.IndirectSwitches++
				}
			} else {
				res.Failed = append(res.Failed, f)
			}
		} else {
			res.Failed = append(res.Failed, f)
		}
	}
	sort.Ints(res.Failed)
	res.DeadlockRetries = r.deadlock
	return res, nil
}

// init seeds the bookkeeping with the core attachments (which are fixed
// before path computation) and empty switch-to-switch connectivity.
func (r *router) init() {
	t := r.top
	layers := t.Design.NumLayers()
	for _, s := range t.Switches {
		if s.Layer+1 > layers {
			layers = s.Layer + 1
		}
	}
	if layers > 1 {
		r.ill = make([]int, layers-1)
	}
	r.inPorts = make([]int, t.NumSwitches())
	r.outPorts = make([]int, t.NumSwitches())
	r.linkBW = make(map[[2]int]float64)
	r.linkIdx = make(map[[2]int]int)
	r.cdg = graph.New(0)

	for c, sw := range t.CoreAttach {
		r.inPorts[sw]++
		r.outPorts[sw]++
		r.addBoundaryCrossings(t.Design.Cores[c].Layer, t.Switches[sw].Layer, 1)
	}
	for f := range t.Routes {
		t.Routes[f] = topology.Route{Flow: f}
	}
	r.softInf = 10 * r.maxFlowCost()
	if !r.cfg.FullRebuild {
		r.cost = newCostModel(r)
	}
}

// addBoundaryCrossings adds delta to every adjacent-layer boundary crossed
// between layers a and b.
func (r *router) addBoundaryCrossings(a, b, delta int) {
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	for l := lo; l < hi; l++ {
		if l >= 0 && l < len(r.ill) {
			r.ill[l] += delta
		}
	}
}

// boundaryMax returns the maximum ill over the boundaries crossed between
// layers a and b (0 if none).
func (r *router) boundaryMax(a, b int) int {
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	m := 0
	for l := lo; l < hi; l++ {
		if l >= 0 && l < len(r.ill) && r.ill[l] > m {
			m = r.ill[l]
		}
	}
	return m
}

// maxFlowCost estimates the largest possible "reasonable" arc cost; SOFT_INF
// is ten times this value, per the paper.
func (r *router) maxFlowCost() float64 {
	t := r.top
	// Longest possible wire: chip diagonal estimate from core bounding box.
	var maxX, maxY float64
	for _, c := range t.Design.Cores {
		if x := c.X + c.Width; x > maxX {
			maxX = x
		}
		if y := c.Y + c.Height; y > maxY {
			maxY = y
		}
	}
	maxDist := maxX + maxY
	maxBW := t.Design.MaxBandwidth()
	cost := r.cfg.PowerWeight*(t.Lib.WirePowerMW(maxDist, maxBW)+
		t.Lib.SwitchPowerMW(2, 2, t.FreqMHz, maxBW)) +
		r.cfg.LatencyWeight*10
	if cost <= 0 {
		cost = 1
	}
	return cost
}

// arcState is the mutable CHECK_CONSTRAINTS outcome of one arc: everything
// router.arcCost needs beyond the (immutable) arc geometry. The incremental
// cost model caches one arcState per arc and refreshes it only when a commit
// invalidates it.
type arcState struct {
	// forbidden marks arcs that violate a hard constraint (Infinity cost).
	forbidden bool
	// exists reports whether the physical link already carries traffic.
	exists bool
	// soft marks arcs inside a SOFT_INF threshold of Algorithm 3.
	soft bool
	// openJ and openI are the port-opening power marginals charged when the
	// link does not exist yet: a new input port on j and a new output port
	// on i.
	openJ, openI float64
}

// arcState evaluates the CHECK_CONSTRAINTS thresholds of Algorithm 3 for the
// arc (i, j) against the router's current bookkeeping.
func (r *router) arcState(i, j int) arcState {
	if i == j {
		return arcState{forbidden: true}
	}
	if r.allowed != nil && !r.allowed[[2]int{i, j}] {
		return arcState{forbidden: true}
	}
	t := r.top
	li, lj := t.Switches[i].Layer, t.Switches[j].Layer
	span := li - lj
	if span < 0 {
		span = -span
	}
	var st arcState
	if _, ok := r.linkBW[[2]int{i, j}]; ok {
		st.exists = true
	}

	if span > 0 {
		// Hard constraint: adjacency and max_ill.
		if r.cfg.AdjacentLayersOnly && span >= 2 {
			return arcState{forbidden: true}
		}
		if r.cfg.MaxILL > 0 && !st.exists {
			cur := r.boundaryMax(li, lj)
			if cur >= r.cfg.MaxILL {
				return arcState{forbidden: true}
			}
			if cur >= r.cfg.MaxILL-r.cfg.SoftILLMargin {
				st.soft = true
			}
		}
	}
	// Switch size constraints apply when a new link must be opened (a new
	// output port on i and a new input port on j).
	if !st.exists && r.cfg.MaxSwitchSize > 0 {
		if r.outPorts[i]+1 > r.cfg.MaxSwitchSize || r.inPorts[j]+1 > r.cfg.MaxSwitchSize {
			return arcState{forbidden: true}
		}
		if r.outPorts[i]+1 > r.cfg.MaxSwitchSize-r.cfg.SoftSwitchMargin ||
			r.inPorts[j]+1 > r.cfg.MaxSwitchSize-r.cfg.SoftSwitchMargin {
			st.soft = true
		}
	}
	if !st.exists {
		// Opening a link costs the extra ports on both switches: a new input
		// port on j and a new output port on i. The closed-form marginal
		// depends only on its own dimension's count, so a commit that grows
		// the other dimension of i or j cannot silently invalidate this arc.
		st.openJ = t.Lib.SwitchPortMarginalMW(r.inPorts[j], t.FreqMHz)
		st.openI = t.Lib.SwitchPortMarginalMW(r.outPorts[i], t.FreqMHz)
	}
	return st
}

// wireFactor returns the per-millimetre planar wire power at the given
// bandwidth (the parenthesised factor of noclib.WirePowerMW), hoisted out so
// the relaxation loop computes it once per flow.
func wireFactor(lib noclib.Library, bw float64) float64 {
	return lib.WirePowerMWPerMMPerGBps*bw/1000.0 + lib.WireLeakagePowerMWPerMM
}

// evalArc combines an arc's cached state and geometry into its routing cost
// for a flow of bandwidth bw. Both the full-rebuild reference (via arcCost)
// and the incremental cost model evaluate arcs through this one function, so
// the two agree bit for bit — equal-cost path ties resolve identically.
func (r *router) evalArc(st arcState, planar float64, span int, latency, wf, bw, softInf float64) float64 {
	if st.forbidden {
		return graph.Infinity
	}
	power := planar*wf + float64(span)*r.top.Lib.TSVPowerMWPerGBps*bw/1000.0
	if !st.exists {
		power += st.openJ
		power += st.openI
	}
	cost := r.cfg.PowerWeight*power + r.cfg.LatencyWeight*latency
	if st.soft {
		cost += softInf
	}
	return cost
}

// arcCost returns the cost of sending the flow (bandwidth bw) over a physical
// link from switch i to switch j, implementing the CHECK_CONSTRAINTS
// thresholds of Algorithm 3. It returns graph.Infinity for forbidden arcs.
func (r *router) arcCost(i, j int, bw float64, softInf float64) float64 {
	st := r.arcState(i, j)
	if st.forbidden {
		return graph.Infinity
	}
	t := r.top
	span := t.Switches[i].Layer - t.Switches[j].Layer
	if span < 0 {
		span = -span
	}
	planar := geom.Manhattan(t.Switches[i].Pos, t.Switches[j].Pos)
	latency := 1 + float64(t.Lib.LinkPipelineStages(planar, t.FreqMHz))
	return r.evalArc(st, planar, span, latency, wireFactor(t.Lib, bw), bw, softInf)
}

// buildCostGraph builds the per-flow routing graph over switches from scratch.
// forbidden holds arcs temporarily excluded by deadlock-avoidance retries.
// The equivalence tests use it as the ground truth the cached cost model is
// compared against; the Config.FullRebuild reference path itself rebuilds a
// fresh costModel per attempt so that both configurations search with the
// identical deterministic Dijkstra.
func (r *router) buildCostGraph(bw float64, forbidden map[[2]int]bool) *graph.Graph {
	n := r.top.NumSwitches()
	cg := graph.New(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j || forbidden[[2]int{i, j}] {
				continue
			}
			c := r.arcCost(i, j, bw, r.softInf)
			if c < graph.Infinity {
				cg.SetEdge(i, j, c)
			}
		}
	}
	return cg
}

// routeFlow computes and commits a path for flow f. It returns false when no
// valid deadlock-free path exists.
func (r *router) routeFlow(f int) bool {
	t := r.top
	fl := t.Design.Flows[f]
	src := t.CoreAttach[fl.Src]
	dst := t.CoreAttach[fl.Dst]
	if src == dst {
		t.SetRoute(f, []int{src})
		return true
	}

	forbidden := make(map[[2]int]bool)
	for try := 0; try <= r.cfg.MaxDeadlockRetries; try++ {
		var path []int
		var cost float64
		if r.cost != nil {
			path, cost = r.cost.shortestPath(src, dst, fl.BandwidthMBps, forbidden)
		} else {
			// Reference: recompute every arc state from scratch for this
			// attempt (the full O(S^2) pass of the original CHECK_CONSTRAINTS
			// loop), then search with the same deterministic dense Dijkstra
			// as the incremental model — a different shortest-path
			// implementation could break ties between exactly equal-cost
			// paths differently and commit different (equally optimal)
			// routes, and the two configurations must stay byte-identical.
			path, cost = newCostModel(r).shortestPath(src, dst, fl.BandwidthMBps, forbidden)
		}
		if path == nil || cost >= graph.Infinity {
			return false
		}
		if bad := r.deadlockArc(path); bad != nil {
			// Penalise the arc that closed a cycle and retry.
			forbidden[*bad] = true
			r.deadlock++
			continue
		}
		r.commit(f, path)
		return true
	}
	return false
}

// deadlockArc tentatively adds the path's channel dependencies to the CDG and
// returns an arc of the path to forbid if a cycle would be created (nil if
// the path is safe). The tentative edges are removed before returning when a
// cycle is found.
func (r *router) deadlockArc(path []int) *[2]int {
	if len(path) < 3 {
		return nil // a single link cannot create a new dependency
	}
	type added struct {
		from, to int
	}
	var newEdges []added
	for i := 2; i < len(path); i++ {
		a := r.ensureLinkVertex(path[i-2], path[i-1])
		b := r.ensureLinkVertex(path[i-1], path[i])
		if !r.cdg.HasEdge(a, b) {
			r.cdg.AddEdge(a, b, 1)
			newEdges = append(newEdges, added{a, b})
		}
	}
	if !r.cdg.HasCycle() {
		return nil
	}
	for _, e := range newEdges {
		r.cdg.RemoveEdge(e.from, e.to)
	}
	// Forbid the middle arc of the path; re-routing around it usually breaks
	// the cycle while keeping source and destination reachable.
	mid := len(path) / 2
	arc := [2]int{path[mid-1], path[mid]}
	return &arc
}

// ensureLinkVertex returns the CDG vertex of the directed link (i, j),
// growing the CDG if the link is new.
func (r *router) ensureLinkVertex(i, j int) int {
	key := [2]int{i, j}
	if v, ok := r.linkIdx[key]; ok {
		return v
	}
	v := r.cdg.Grow(1)
	r.linkIdx[key] = v
	return v
}

// commit records the route and updates link, port and inter-layer-link
// bookkeeping, then refreshes the cost-graph arcs those updates invalidated.
func (r *router) commit(f int, path []int) {
	t := r.top
	bw := t.Design.Flows[f].BandwidthMBps
	var opened [][2]int
	for i := 1; i < len(path); i++ {
		key := [2]int{path[i-1], path[i]}
		if _, exists := r.linkBW[key]; !exists {
			r.outPorts[path[i-1]]++
			r.inPorts[path[i]]++
			r.addBoundaryCrossings(t.Switches[path[i-1]].Layer, t.Switches[path[i]].Layer, 1)
			opened = append(opened, key)
		}
		r.linkBW[key] += bw
	}
	t.SetRoute(f, path)
	if r.cost != nil && len(opened) > 0 {
		r.cost.applyCommit(opened)
	}
}

// tryWithIndirectSwitch adds an indirect switch between the source and
// destination switches of the failed flow and retries the routing once. This
// mirrors the paper's insertion of indirect switches when the
// max_switch_size constraint cannot be met directly. It returns whether the
// flow was routed and whether the inserted switch was kept: the insertion is
// rolled back — restoring the topology (switch list, port counts, power and
// area) to exactly its pre-attempt state — both when the retry still fails
// and when the retry happens to commit a path that never traverses the new
// switch (a fresh deadlock-retry sequence can succeed on existing switches
// alone; keeping the unused switch would pollute the point's metrics).
func (r *router) tryWithIndirectSwitch(f int) (routed, kept bool) {
	t := r.top
	fl := t.Design.Flows[f]
	src := t.CoreAttach[fl.Src]
	dst := t.CoreAttach[fl.Dst]
	if src == dst {
		return false, false
	}
	// Place the new switch between the two endpoints, on an intermediate
	// layer when the endpoints are on different layers.
	ls, ld := t.Switches[src].Layer, t.Switches[dst].Layer
	layer := (ls + ld) / 2
	id := t.AddIndirectSwitch(layer)
	t.Switches[id].Pos = geom.Point{
		X: (t.Switches[src].Pos.X + t.Switches[dst].Pos.X) / 2,
		Y: (t.Switches[src].Pos.Y + t.Switches[dst].Pos.Y) / 2,
	}
	r.inPorts = append(r.inPorts, 0)
	r.outPorts = append(r.outPorts, 0)
	if r.cost != nil {
		r.cost.grow()
	}
	routed = r.routeFlow(f)
	if routed {
		for _, s := range t.Routes[f].Switches {
			if s == id {
				return true, true
			}
		}
		// Routed without the new switch: no committed link touches it, so
		// the insertion can be undone like a failed retry.
	}
	// Undoing the insertion restores the pre-attempt state: nothing involving
	// the switch was committed. CDG vertices created for candidate links
	// through the removed switch keep their (edge-free) slots, but their
	// linkIdx entries must go so a future switch reusing this ID starts from
	// a clean link identity.
	t.Switches = t.Switches[:id]
	r.inPorts = r.inPorts[:id]
	r.outPorts = r.outPorts[:id]
	//determlint:ordered deletes of distinct keys commute and the loop reads nothing but the key; the surviving map content is order-independent
	for key := range r.linkIdx {
		if key[0] == id || key[1] == id {
			delete(r.linkIdx, key)
		}
	}
	if r.cost != nil {
		r.cost.shrink()
	}
	return routed, false
}
