package route

import (
	"fmt"
	"sort"

	"sunfloor3d/internal/topology"
)

// RepairResult reports what RepairRoutes did to a faulted topology.
type RepairResult struct {
	// Stranded lists the flows whose committed route crossed a dead link,
	// in ascending flow order.
	Stranded []int
	// Rerouted is the number of stranded flows that received a new
	// deadlock-free route over the surviving links.
	Rerouted int
	// Unroutable lists the stranded flows for which no deadlock-free path
	// over the surviving links exists; their routes are left empty, so
	// Topology.Validate fails and the design point is certified dead under
	// this fault plan.
	Unroutable []int
	// DeadlockRetries counts path recomputations forced by channel
	// dependency cycles during the repair.
	DeadlockRetries int
}

// RepairRoutes re-routes the flows stranded by the failure of the given
// inter-switch links, in place on t. The fabricated chip is fixed: only links
// already implied by the committed routes — minus the dead ones — may carry
// the repaired paths, and no indirect switch can be inserted. Surviving
// routes are kept verbatim; their channel dependencies seed the CDG, so every
// repaired path is deadlock-free against the whole repaired route set (a
// surviving subset of a deadlock-free set is itself deadlock-free). The
// repair is fully deterministic: equal (topology, config, dead set) inputs
// commit byte-identical routes.
//
// A stranded flow with no valid path keeps an empty route; the caller detects
// certified-dead plans through RepairResult.Unroutable (equivalently, a
// failing Topology.Validate).
func RepairRoutes(t *topology.Topology, cfg Config, dead [][2]int) (RepairResult, error) {
	var res RepairResult
	if len(dead) == 0 {
		return res, nil
	}

	// The fabricated link set is exactly what the committed routes imply.
	fabricated := make(map[[2]int]bool)
	for _, rt := range t.Routes {
		for i := 1; i < len(rt.Switches); i++ {
			fabricated[[2]int{rt.Switches[i-1], rt.Switches[i]}] = true
		}
	}
	deadSet := make(map[[2]int]bool)
	for _, d := range dead {
		if !fabricated[d] {
			return res, fmt.Errorf("route: dead link %d->%d is not a fabricated link of the topology", d[0], d[1])
		}
		deadSet[d] = true
	}

	// Partition the flows and save the surviving paths before the router
	// resets every route.
	crossesDead := func(path []int) bool {
		for i := 1; i < len(path); i++ {
			if deadSet[[2]int{path[i-1], path[i]}] {
				return true
			}
		}
		return false
	}
	stranded := make(map[int]bool)
	surviving := make([][]int, len(t.Routes))
	for f, rt := range t.Routes {
		if len(rt.Switches) == 0 {
			return res, fmt.Errorf("route: flow %d carries no committed route to repair", f)
		}
		if crossesDead(rt.Switches) {
			stranded[f] = true
			res.Stranded = append(res.Stranded, f)
		} else {
			surviving[f] = rt.Switches
		}
	}
	sort.Ints(res.Stranded)
	if len(res.Stranded) == 0 {
		return res, nil
	}

	// Repair router: the arc universe is the surviving fabricated links only,
	// and no switch can be added to a fabbed chip.
	cfg.AllowIndirectSwitches = false
	allowed := make(map[[2]int]bool, len(fabricated))
	//determlint:ordered writes to distinct keys of a fresh map commute; the surviving content is order-independent
	for l := range fabricated {
		if !deadSet[l] {
			allowed[l] = true
		}
	}
	r := &router{top: t, cfg: cfg, allowed: allowed}
	r.init()

	// Re-commit the surviving routes in the deterministic decreasing-
	// bandwidth order the original router used, rebuilding the link, port,
	// ILL and CDG bookkeeping the repaired paths must respect.
	order := t.Design.FlowsByBandwidth()
	for _, f := range order {
		if stranded[f] {
			continue
		}
		if bad := r.deadlockArc(surviving[f]); bad != nil {
			return res, fmt.Errorf("route: surviving routes are not deadlock-free (cycle at link %d->%d)", bad[0], bad[1])
		}
		r.commit(f, surviving[f])
	}

	// Route the stranded flows, heaviest first, over the surviving links.
	for _, f := range order {
		if !stranded[f] {
			continue
		}
		if r.routeFlow(f) {
			res.Rerouted++
		} else {
			res.Unroutable = append(res.Unroutable, f)
		}
	}
	sort.Ints(res.Unroutable)
	res.DeadlockRetries = r.deadlock
	return res, nil
}
