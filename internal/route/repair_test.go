package route

import (
	"reflect"
	"testing"

	"sunfloor3d/internal/model"
	"sunfloor3d/internal/noclib"
	"sunfloor3d/internal/topology"
)

// triangleTopology builds a 3-core, 3-switch single-layer topology with
// committed routes forming a triangle of fabricated links:
//
//	flow 0: c0 -> c1, route s0 -> s1
//	flow 1: c0 -> c2, route s0 -> s2
//	flow 2: c2 -> c1, route s2 -> s1
//
// Killing s0->s1 leaves the detour s0 -> s2 -> s1 over fabricated links;
// killing s0->s2 or s2->s1 is unrepairable.
func triangleTopology(t *testing.T) *topology.Topology {
	t.Helper()
	cores := []model.Core{
		{Name: "c0", Width: 1, Height: 1, X: 0, Y: 0, Layer: 0},
		{Name: "c1", Width: 1, Height: 1, X: 2, Y: 0, Layer: 0},
		{Name: "c2", Width: 1, Height: 1, X: 1, Y: 2, Layer: 0},
	}
	flows := []model.Flow{
		{Src: 0, Dst: 1, BandwidthMBps: 300, LatencyCycles: 0},
		{Src: 0, Dst: 2, BandwidthMBps: 200, LatencyCycles: 0},
		{Src: 2, Dst: 1, BandwidthMBps: 100, LatencyCycles: 0},
	}
	g, err := model.NewCommGraph(cores, flows)
	if err != nil {
		t.Fatal(err)
	}
	top := topology.New(g, noclib.DefaultLibrary(), 400)
	s0 := top.AddSwitch(0)
	s1 := top.AddSwitch(0)
	s2 := top.AddSwitch(0)
	top.AttachCore(0, s0)
	top.AttachCore(1, s1)
	top.AttachCore(2, s2)
	top.EstimateSwitchPositions()
	top.SetRoute(0, []int{s0, s1})
	top.SetRoute(1, []int{s0, s2})
	top.SetRoute(2, []int{s2, s1})
	if err := top.Validate(); err != nil {
		t.Fatalf("triangle topology invalid: %v", err)
	}
	return top
}

func TestRepairRoutesReroutesOverSurvivingLinks(t *testing.T) {
	top := triangleTopology(t)
	res, err := RepairRoutes(top, DefaultConfig(), [][2]int{{0, 1}})
	if err != nil {
		t.Fatalf("RepairRoutes: %v", err)
	}
	if want := []int{0}; !reflect.DeepEqual(res.Stranded, want) {
		t.Errorf("Stranded = %v, want %v", res.Stranded, want)
	}
	if res.Rerouted != 1 || len(res.Unroutable) != 0 {
		t.Fatalf("Rerouted = %d, Unroutable = %v, want 1 rerouted and none unroutable", res.Rerouted, res.Unroutable)
	}
	if want := []int{0, 2, 1}; !reflect.DeepEqual(top.Routes[0].Switches, want) {
		t.Errorf("repaired route = %v, want the detour %v", top.Routes[0].Switches, want)
	}
	// The surviving routes are untouched.
	if !reflect.DeepEqual(top.Routes[1].Switches, []int{0, 2}) || !reflect.DeepEqual(top.Routes[2].Switches, []int{2, 1}) {
		t.Errorf("surviving routes changed: %v, %v", top.Routes[1].Switches, top.Routes[2].Switches)
	}
	// The repaired route set avoids the dead link and stays sound.
	for f, rt := range top.Routes {
		for i := 1; i < len(rt.Switches); i++ {
			if rt.Switches[i-1] == 0 && rt.Switches[i] == 1 {
				t.Errorf("flow %d still crosses the dead link", f)
			}
		}
	}
	if err := top.Validate(); err != nil {
		t.Errorf("topology invalid after repair: %v", err)
	}
	if !DeadlockFree(top) {
		t.Error("repaired routes are not deadlock-free")
	}
}

func TestRepairRoutesCertifiesDeadPlans(t *testing.T) {
	top := triangleTopology(t)
	// s2->s1 is flow 2's only possible path: s2 has no other outgoing link.
	res, err := RepairRoutes(top, DefaultConfig(), [][2]int{{2, 1}})
	if err != nil {
		t.Fatalf("RepairRoutes: %v", err)
	}
	if want := []int{2}; !reflect.DeepEqual(res.Unroutable, want) {
		t.Fatalf("Unroutable = %v, want %v", res.Unroutable, want)
	}
	if res.Rerouted != 0 {
		t.Errorf("Rerouted = %d, want 0", res.Rerouted)
	}
	// The unroutable flow keeps an empty route, so validation fails — that is
	// the certified-dead signal.
	if len(top.Routes[2].Switches) != 0 {
		t.Errorf("unroutable flow kept route %v", top.Routes[2].Switches)
	}
	if err := top.Validate(); err == nil {
		t.Error("certified-dead topology still validates")
	}
}

func TestRepairRoutesRejectsUnknownDeadLink(t *testing.T) {
	top := triangleTopology(t)
	// s1->s2 exists only in the reverse direction; it was never fabricated.
	if _, err := RepairRoutes(top, DefaultConfig(), [][2]int{{1, 2}}); err == nil {
		t.Error("unfabricated dead link accepted")
	}
}

func TestRepairRoutesEmptyDeadSetIsNoOp(t *testing.T) {
	top := triangleTopology(t)
	before := [][]int{
		append([]int(nil), top.Routes[0].Switches...),
		append([]int(nil), top.Routes[1].Switches...),
		append([]int(nil), top.Routes[2].Switches...),
	}
	res, err := RepairRoutes(top, DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stranded) != 0 || res.Rerouted != 0 {
		t.Errorf("no-op repair reported work: %+v", res)
	}
	for f := range before {
		if !reflect.DeepEqual(top.Routes[f].Switches, before[f]) {
			t.Errorf("flow %d route changed by a no-op repair", f)
		}
	}
}

// TestRepairRoutesDeterministic repairs a synthesized multi-path topology
// twice and requires byte-identical committed routes.
func TestRepairRoutesDeterministic(t *testing.T) {
	g := buildDesign(t, 2, 8)
	dead := [][2]int{}
	run := func() *topology.Topology {
		top := buildTopology(t, g, 2)
		res, err := ComputePaths(top, DefaultConfig())
		if err != nil || !res.Success() {
			t.Fatalf("ComputePaths: %v (failed %v)", err, res.Failed)
		}
		if len(dead) == 0 {
			// Pick the first fabricated inter-switch link as the fault.
			links := top.SwitchLinks()
			if len(links) == 0 {
				t.Skip("routed topology has no inter-switch link")
			}
			dead = append(dead, [2]int{links[0].From, links[0].To})
		}
		if _, err := RepairRoutes(top, DefaultConfig(), dead); err != nil {
			t.Fatalf("RepairRoutes: %v", err)
		}
		return top
	}
	a, b := run(), run()
	for f := range a.Routes {
		if !reflect.DeepEqual(a.Routes[f].Switches, b.Routes[f].Switches) {
			t.Errorf("flow %d repaired differently: %v vs %v", f, a.Routes[f].Switches, b.Routes[f].Switches)
		}
	}
}
