package route

import (
	"sunfloor3d/internal/geom"
	"sunfloor3d/internal/graph"
)

// costModel is the incrementally maintained routing cost graph of Algorithm 3.
// For every arc (i, j) it caches the two ingredients of router.arcCost:
//
//   - the immutable geometry — planar Manhattan length, crossed layers and
//     the pipeline-latency term, fixed once the switch exists; and
//   - the arcState — everything the router mutates while committing paths:
//     link existence, the port-opening power marginals, the hard-constraint
//     verdict and the SOFT_INF flags of CHECK_CONSTRAINTS.
//
// A commit therefore only has to refresh the states its bookkeeping updates
// invalidated instead of rebuilding all O(S^2) arc costs for every flow and
// deadlock retry. Costs are evaluated on demand per flow by evalArc, which is
// the same code path router.arcCost itself uses — the incremental model is
// bit-identical to the full-rebuild reference by construction, not merely
// close: an earlier formulation cached a state+slope*bw linearisation whose
// ULP-level rounding differences could flip Dijkstra ties on exactly
// equal-cost paths and make the two routers commit different (equally
// optimal) routes.
type costModel struct {
	r *router
	n int
	// state[i][j] is the mutable CHECK_CONSTRAINTS outcome of the arc.
	state [][]arcState
	// planar[i][j], span[i][j] and latency[i][j] cache the arc geometry.
	planar  [][]float64
	span    [][]int
	latency [][]float64
	// Dijkstra scratch space, reused across flows.
	dist    []float64
	prev    []int
	settled []bool
	// Commit scratch space, reused across commits.
	dirtyRow []bool
	dirtyCol []bool
	boundary []bool
}

// newCostModel computes the initial geometry and arc states for every switch
// pair. This is the only full O(S^2) pass of a run; everything after is
// incremental.
func newCostModel(r *router) *costModel {
	m := &costModel{r: r, boundary: make([]bool, len(r.ill))}
	for len(m.state) < r.top.NumSwitches() {
		m.grow()
	}
	return m
}

// refresh recomputes the mutable state of the arc (i, j) from the router's
// current bookkeeping.
func (m *costModel) refresh(i, j int) {
	m.state[i][j] = m.r.arcState(i, j)
}

// geometry computes the immutable part of the arc (i, j).
func (m *costModel) geometry(i, j int) (planar float64, span int, latency float64) {
	t := m.r.top
	planar = geom.Manhattan(t.Switches[i].Pos, t.Switches[j].Pos)
	span = t.Switches[i].Layer - t.Switches[j].Layer
	if span < 0 {
		span = -span
	}
	latency = 1 + float64(t.Lib.LinkPipelineStages(planar, t.FreqMHz))
	return planar, span, latency
}

// grow extends the model with one switch (the router just appended it to the
// topology) and computes the arcs to and from it.
func (m *costModel) grow() {
	n := m.n
	for i := 0; i < n; i++ {
		planar, span, latency := m.geometry(i, n)
		m.state[i] = append(m.state[i], arcState{})
		m.planar[i] = append(m.planar[i], planar)
		m.span[i] = append(m.span[i], span)
		m.latency[i] = append(m.latency[i], latency)
	}
	m.state = append(m.state, make([]arcState, n+1))
	m.planar = append(m.planar, make([]float64, n+1))
	m.span = append(m.span, make([]int, n+1))
	m.latency = append(m.latency, make([]float64, n+1))
	for j := 0; j < n; j++ {
		m.planar[n][j], m.span[n][j], m.latency[n][j] = m.geometry(n, j)
	}
	m.n = n + 1
	m.state[n][n] = arcState{forbidden: true}
	for i := 0; i < n; i++ {
		m.refresh(i, n)
		m.refresh(n, i)
	}
	m.dist = append(m.dist, 0)
	m.prev = append(m.prev, 0)
	m.settled = append(m.settled, false)
	m.dirtyRow = append(m.dirtyRow, false)
	m.dirtyCol = append(m.dirtyCol, false)
}

// shrink drops the last switch from the model (rolling back a failed indirect
// switch insertion). The underlying arrays keep their capacity for the next
// grow, which overwrites every re-appended entry.
func (m *costModel) shrink() {
	m.n--
	m.state = m.state[:m.n]
	m.planar = m.planar[:m.n]
	m.span = m.span[:m.n]
	m.latency = m.latency[:m.n]
	for i := 0; i < m.n; i++ {
		m.state[i] = m.state[i][:m.n]
		m.planar[i] = m.planar[i][:m.n]
		m.span[i] = m.span[i][:m.n]
		m.latency[i] = m.latency[i][:m.n]
	}
	m.dist = m.dist[:m.n]
	m.prev = m.prev[:m.n]
	m.settled = m.settled[:m.n]
	m.dirtyRow = m.dirtyRow[:m.n]
	m.dirtyCol = m.dirtyCol[:m.n]
}

// applyCommit refreshes the arcs invalidated by a committed path that opened
// the given new links: every arc leaving a switch whose output ports grew,
// every arc entering a switch whose input ports grew (this includes the new
// links themselves, whose existence flag flipped), and every arc crossing a
// layer boundary whose inter-layer-link count changed.
//
// Refreshing only row i / column j per grown port relies on the port-opening
// marginal (noclib.SwitchPortMarginalMW) depending only on its own port
// dimension — bit-exactly, not merely mathematically — so an outPorts[i]
// change cannot alter arcs (*, i) and an inPorts[j] change cannot alter arcs
// (j, *). If the power model ever couples the dimensions (e.g. crossbar-
// style in*out, as SwitchAreaMM2 does for area), both the row and the
// column of every grown switch must be refreshed here.
func (m *costModel) applyCommit(opened [][2]int) {
	t := m.r.top
	dirtyRow, dirtyCol, boundary := m.dirtyRow, m.dirtyCol, m.boundary
	for i := range dirtyRow {
		dirtyRow[i] = false
		dirtyCol[i] = false
	}
	for b := range boundary {
		boundary[b] = false
	}
	anyBoundary := false
	for _, l := range opened {
		dirtyRow[l[0]] = true
		dirtyCol[l[1]] = true
		if m.r.cfg.MaxILL <= 0 {
			continue // arc costs ignore ILL occupancy when unconstrained
		}
		lo, hi := t.Switches[l[0]].Layer, t.Switches[l[1]].Layer
		if lo > hi {
			lo, hi = hi, lo
		}
		for b := lo; b < hi; b++ {
			if b >= 0 && b < len(boundary) {
				boundary[b] = true
				anyBoundary = true
			}
		}
	}
	for i := 0; i < m.n; i++ {
		if !dirtyRow[i] {
			continue
		}
		for j := 0; j < m.n; j++ {
			if i != j {
				m.refresh(i, j)
			}
		}
	}
	for j := 0; j < m.n; j++ {
		if !dirtyCol[j] {
			continue
		}
		for i := 0; i < m.n; i++ {
			if i != j && !dirtyRow[i] {
				m.refresh(i, j)
			}
		}
	}
	if !anyBoundary {
		return
	}
	for i := 0; i < m.n; i++ {
		for j := 0; j < m.n; j++ {
			if i == j || dirtyRow[i] || dirtyCol[j] {
				continue
			}
			if m.crossesDirty(boundary, i, j) {
				m.refresh(i, j)
			}
		}
	}
}

// crossesDirty reports whether the arc (i, j) crosses any boundary marked
// dirty.
func (m *costModel) crossesDirty(boundary []bool, i, j int) bool {
	lo, hi := m.r.top.Switches[i].Layer, m.r.top.Switches[j].Layer
	if lo > hi {
		lo, hi = hi, lo
	}
	for b := lo; b < hi; b++ {
		if b >= 0 && b < len(boundary) && boundary[b] {
			return true
		}
	}
	return false
}

// cost returns the full arc cost at the given bandwidth (Infinity for
// forbidden arcs). It shares evalArc with router.arcCost, so the two agree
// bit for bit.
func (m *costModel) cost(i, j int, bw float64) float64 {
	return m.r.evalArc(m.state[i][j], m.planar[i][j], m.span[i][j], m.latency[i][j],
		wireFactor(m.r.top.Lib, bw), bw, m.r.softInf)
}

// shortestPath runs Dijkstra over the dense cached arc costs for a flow of
// bandwidth bw, skipping arcs in forbidden (the deadlock-retry overlay, so
// retries need no graph mutation at all). Neighbours relax in ascending index
// order, making the returned path deterministic even between equal-cost
// alternatives. It returns (nil, Infinity) when dst is unreachable.
func (m *costModel) shortestPath(src, dst int, bw float64, forbidden map[[2]int]bool) ([]int, float64) {
	n := m.n
	for i := 0; i < n; i++ {
		m.dist[i] = graph.Infinity
		m.prev[i] = -1
		m.settled[i] = false
	}
	m.dist[src] = 0
	wf := wireFactor(m.r.top.Lib, bw)
	softInf := m.r.softInf
	for {
		// Dense graph: the O(n) min scan beats a heap here.
		u, best := -1, graph.Infinity
		for i := 0; i < n; i++ {
			if !m.settled[i] && m.dist[i] < best {
				u, best = i, m.dist[i]
			}
		}
		if u < 0 || u == dst {
			break
		}
		m.settled[u] = true
		state, planar, span, latency := m.state[u], m.planar[u], m.span[u], m.latency[u]
		for v := 0; v < n; v++ {
			if m.settled[v] || state[v].forbidden {
				continue
			}
			if len(forbidden) > 0 && forbidden[[2]int{u, v}] {
				continue
			}
			c := m.r.evalArc(state[v], planar[v], span[v], latency[v], wf, bw, softInf)
			if nd := best + c; nd < m.dist[v] {
				m.dist[v] = nd
				m.prev[v] = u
			}
		}
	}
	if m.dist[dst] >= graph.Infinity {
		return nil, graph.Infinity
	}
	var rev []int
	for v := dst; v != -1; v = m.prev[v] {
		rev = append(rev, v)
	}
	path := make([]int, len(rev))
	for i, v := range rev {
		path[len(rev)-1-i] = v
	}
	return path, m.dist[dst]
}
