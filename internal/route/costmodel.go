package route

import (
	"sunfloor3d/internal/geom"
	"sunfloor3d/internal/graph"
)

// costModel is the incrementally maintained routing cost graph of Algorithm 3.
// The cost of sending a flow of bandwidth bw over the arc (i, j) decomposes as
//
//	arcCost(i, j, bw) = state[i][j] + slope[i][j]*bw
//
// because the library's wire and TSV power are linear in bandwidth. slope is
// pure geometry and never changes during a run; state bundles everything the
// router mutates while committing paths — link existence (port-opening power,
// switch-size thresholds), port counts and inter-layer-link occupancy — plus
// the constant wire leakage, pipeline latency and SOFT_INF penalties
// (Infinity marks forbidden arcs). A commit therefore only has to refresh the
// arcs its bookkeeping updates invalidated instead of rebuilding all O(S^2)
// arc costs for every flow and deadlock retry.
type costModel struct {
	r *router
	n int
	// state[i][j] is the bandwidth-independent arc cost (Infinity when the
	// arc violates a hard constraint); slope[i][j] is the cost per MBps.
	state [][]float64
	slope [][]float64
	// Dijkstra scratch space, reused across flows.
	dist    []float64
	prev    []int
	settled []bool
	// Commit scratch space, reused across commits.
	dirtyRow []bool
	dirtyCol []bool
	boundary []bool
}

// newCostModel computes the initial arc costs for every switch pair. This is
// the only full O(S^2) pass of a run; everything after is incremental.
func newCostModel(r *router) *costModel {
	m := &costModel{r: r, boundary: make([]bool, len(r.ill))}
	for len(m.state) < r.top.NumSwitches() {
		m.grow()
	}
	return m
}

// refBW is the bandwidth at which the per-MBps slope of an arc is sampled.
// Wire and TSV power are linear in bandwidth, so any positive value yields
// the same slope up to rounding.
const refBW = 1000.0

// bwSlope returns the bandwidth-proportional cost of the arc (i, j): the
// dynamic power of the planar wire and of the TSVs it crosses, per MBps.
func (m *costModel) bwSlope(i, j int) float64 {
	if i == j {
		return 0
	}
	t := m.r.top
	planar := geom.Manhattan(t.Switches[i].Pos, t.Switches[j].Pos)
	span := t.Switches[i].Layer - t.Switches[j].Layer
	if span < 0 {
		span = -span
	}
	dyn := t.Lib.WirePowerMW(planar, refBW) - t.Lib.WirePowerMW(planar, 0) +
		t.Lib.VerticalLinkPowerMW(span, refBW)
	return m.r.cfg.PowerWeight * dyn / refBW
}

// refresh recomputes the state cost of the arc (i, j) from the router's
// current bookkeeping.
func (m *costModel) refresh(i, j int) {
	m.state[i][j] = m.r.arcCost(i, j, 0, m.r.softInf)
}

// grow extends the model with one switch (the router just appended it to the
// topology) and computes the arcs to and from it.
func (m *costModel) grow() {
	n := m.n
	for i := 0; i < n; i++ {
		m.state[i] = append(m.state[i], 0)
		m.slope[i] = append(m.slope[i], m.bwSlope(i, n))
	}
	m.state = append(m.state, make([]float64, n+1))
	m.slope = append(m.slope, make([]float64, n+1))
	for j := 0; j < n; j++ {
		m.slope[n][j] = m.bwSlope(n, j)
	}
	m.n = n + 1
	m.state[n][n] = graph.Infinity
	for i := 0; i < n; i++ {
		m.refresh(i, n)
		m.refresh(n, i)
	}
	m.dist = append(m.dist, 0)
	m.prev = append(m.prev, 0)
	m.settled = append(m.settled, false)
	m.dirtyRow = append(m.dirtyRow, false)
	m.dirtyCol = append(m.dirtyCol, false)
}

// shrink drops the last switch from the model (rolling back a failed indirect
// switch insertion). The underlying arrays keep their capacity for the next
// grow, which overwrites every re-appended entry.
func (m *costModel) shrink() {
	m.n--
	m.state = m.state[:m.n]
	m.slope = m.slope[:m.n]
	for i := 0; i < m.n; i++ {
		m.state[i] = m.state[i][:m.n]
		m.slope[i] = m.slope[i][:m.n]
	}
	m.dist = m.dist[:m.n]
	m.prev = m.prev[:m.n]
	m.settled = m.settled[:m.n]
	m.dirtyRow = m.dirtyRow[:m.n]
	m.dirtyCol = m.dirtyCol[:m.n]
}

// applyCommit refreshes the arcs invalidated by a committed path that opened
// the given new links: every arc leaving a switch whose output ports grew,
// every arc entering a switch whose input ports grew (this includes the new
// links themselves, whose existence flag flipped), and every arc crossing a
// layer boundary whose inter-layer-link count changed.
//
// Refreshing only row i / column j per grown port relies on SwitchPowerMW
// being additive in inPorts+outPorts: the port-opening marginal on one
// dimension is then independent of the other, so an outPorts[i] change
// cannot alter arcs (*, i) and an inPorts[j] change cannot alter arcs
// (j, *). If the power model ever couples the dimensions (e.g. crossbar-
// style in*out, as SwitchAreaMM2 does for area), both the row and the
// column of every grown switch must be refreshed here.
func (m *costModel) applyCommit(opened [][2]int) {
	t := m.r.top
	dirtyRow, dirtyCol, boundary := m.dirtyRow, m.dirtyCol, m.boundary
	for i := range dirtyRow {
		dirtyRow[i] = false
		dirtyCol[i] = false
	}
	for b := range boundary {
		boundary[b] = false
	}
	anyBoundary := false
	for _, l := range opened {
		dirtyRow[l[0]] = true
		dirtyCol[l[1]] = true
		if m.r.cfg.MaxILL <= 0 {
			continue // arc costs ignore ILL occupancy when unconstrained
		}
		lo, hi := t.Switches[l[0]].Layer, t.Switches[l[1]].Layer
		if lo > hi {
			lo, hi = hi, lo
		}
		for b := lo; b < hi; b++ {
			if b >= 0 && b < len(boundary) {
				boundary[b] = true
				anyBoundary = true
			}
		}
	}
	for i := 0; i < m.n; i++ {
		if !dirtyRow[i] {
			continue
		}
		for j := 0; j < m.n; j++ {
			if i != j {
				m.refresh(i, j)
			}
		}
	}
	for j := 0; j < m.n; j++ {
		if !dirtyCol[j] {
			continue
		}
		for i := 0; i < m.n; i++ {
			if i != j && !dirtyRow[i] {
				m.refresh(i, j)
			}
		}
	}
	if !anyBoundary {
		return
	}
	for i := 0; i < m.n; i++ {
		for j := 0; j < m.n; j++ {
			if i == j || dirtyRow[i] || dirtyCol[j] {
				continue
			}
			if m.crossesDirty(boundary, i, j) {
				m.refresh(i, j)
			}
		}
	}
}

// crossesDirty reports whether the arc (i, j) crosses any boundary marked
// dirty.
func (m *costModel) crossesDirty(boundary []bool, i, j int) bool {
	lo, hi := m.r.top.Switches[i].Layer, m.r.top.Switches[j].Layer
	if lo > hi {
		lo, hi = hi, lo
	}
	for b := lo; b < hi; b++ {
		if b >= 0 && b < len(boundary) && boundary[b] {
			return true
		}
	}
	return false
}

// cost returns the full arc cost at the given bandwidth (Infinity for
// forbidden arcs). It mirrors router.arcCost on the cached state.
func (m *costModel) cost(i, j int, bw float64) float64 {
	if m.state[i][j] >= graph.Infinity {
		return graph.Infinity
	}
	return m.state[i][j] + m.slope[i][j]*bw
}

// shortestPath runs Dijkstra over the dense cached arc costs for a flow of
// bandwidth bw, skipping arcs in forbidden (the deadlock-retry overlay, so
// retries need no graph mutation at all). Neighbours relax in ascending index
// order, making the returned path deterministic even between equal-cost
// alternatives. It returns (nil, Infinity) when dst is unreachable.
func (m *costModel) shortestPath(src, dst int, bw float64, forbidden map[[2]int]bool) ([]int, float64) {
	n := m.n
	for i := 0; i < n; i++ {
		m.dist[i] = graph.Infinity
		m.prev[i] = -1
		m.settled[i] = false
	}
	m.dist[src] = 0
	for {
		// Dense graph: the O(n) min scan beats a heap here.
		u, best := -1, graph.Infinity
		for i := 0; i < n; i++ {
			if !m.settled[i] && m.dist[i] < best {
				u, best = i, m.dist[i]
			}
		}
		if u < 0 || u == dst {
			break
		}
		m.settled[u] = true
		state, slope := m.state[u], m.slope[u]
		for v := 0; v < n; v++ {
			if m.settled[v] || state[v] >= graph.Infinity {
				continue
			}
			if len(forbidden) > 0 && forbidden[[2]int{u, v}] {
				continue
			}
			if nd := best + state[v] + slope[v]*bw; nd < m.dist[v] {
				m.dist[v] = nd
				m.prev[v] = u
			}
		}
	}
	if m.dist[dst] >= graph.Infinity {
		return nil, graph.Infinity
	}
	var rev []int
	for v := dst; v != -1; v = m.prev[v] {
		rev = append(rev, v)
	}
	path := make([]int, len(rev))
	for i, v := range rev {
		path[len(rev)-1-i] = v
	}
	return path, m.dist[dst]
}
