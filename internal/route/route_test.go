package route

import (
	"testing"

	"sunfloor3d/internal/graph"
	"sunfloor3d/internal/model"
	"sunfloor3d/internal/noclib"
	"sunfloor3d/internal/topology"
)

// buildDesign creates a design with nPerLayer cores on each of layers layers,
// arranged in a grid, with each core sending to the next core (ring) plus
// cross-layer flows between vertically stacked cores.
func buildDesign(t *testing.T, layers, nPerLayer int) *model.CommGraph {
	t.Helper()
	var cores []model.Core
	for l := 0; l < layers; l++ {
		for i := 0; i < nPerLayer; i++ {
			cores = append(cores, model.Core{
				Name: coreName(l, i), Width: 1, Height: 1,
				X: float64(i%4) * 1.5, Y: float64(i/4) * 1.5, Layer: l,
			})
		}
	}
	var flows []model.Flow
	n := len(cores)
	for c := 0; c < n; c++ {
		flows = append(flows, model.Flow{
			Src: c, Dst: (c + 1) % n, BandwidthMBps: 100 + float64(c), LatencyCycles: 0,
		})
	}
	for i := 0; i < nPerLayer && layers > 1; i++ {
		flows = append(flows, model.Flow{
			Src: i, Dst: nPerLayer + i, BandwidthMBps: 500, LatencyCycles: 6,
		})
	}
	g, err := model.NewCommGraph(cores, flows)
	if err != nil {
		t.Fatalf("NewCommGraph: %v", err)
	}
	return g
}

func coreName(l, i int) string {
	return string(rune('a'+l)) + string(rune('0'+i/10)) + string(rune('0'+i%10))
}

// buildTopology attaches cores round-robin to switchesPerLayer switches per
// layer and estimates switch positions.
func buildTopology(t *testing.T, g *model.CommGraph, switchesPerLayer int) *topology.Topology {
	t.Helper()
	top := topology.New(g, noclib.DefaultLibrary(), 400)
	layers := g.NumLayers()
	swOf := make([][]int, layers)
	for l := 0; l < layers; l++ {
		for s := 0; s < switchesPerLayer; s++ {
			swOf[l] = append(swOf[l], top.AddSwitch(l))
		}
	}
	for l := 0; l < layers; l++ {
		cores := g.CoresInLayer(l)
		for i, c := range cores {
			top.AttachCore(c, swOf[l][i%switchesPerLayer])
		}
	}
	top.EstimateSwitchPositions()
	return top
}

func TestComputePathsBasic(t *testing.T) {
	g := buildDesign(t, 2, 8)
	top := buildTopology(t, g, 2)
	res, err := ComputePaths(top, DefaultConfig())
	if err != nil {
		t.Fatalf("ComputePaths: %v", err)
	}
	if !res.Success() {
		t.Fatalf("failed flows: %v", res.Failed)
	}
	if res.Routed != g.NumFlows() {
		t.Errorf("routed %d of %d flows", res.Routed, g.NumFlows())
	}
	if err := top.Validate(); err != nil {
		t.Fatalf("topology invalid after routing: %v", err)
	}
}

func TestComputePathsSingleSwitch(t *testing.T) {
	g := buildDesign(t, 1, 6)
	top := topology.New(g, noclib.DefaultLibrary(), 400)
	s := top.AddSwitch(0)
	for c := 0; c < g.NumCores(); c++ {
		top.AttachCore(c, s)
	}
	top.EstimateSwitchPositions()
	res, err := ComputePaths(top, DefaultConfig())
	if err != nil {
		t.Fatalf("ComputePaths: %v", err)
	}
	if !res.Success() {
		t.Fatalf("failed: %v", res.Failed)
	}
	for f := range g.Flows {
		if len(top.Routes[f].Switches) != 1 {
			t.Errorf("flow %d route = %v, want single switch", f, top.Routes[f].Switches)
		}
	}
}

func TestComputePathsErrorsOnBadInput(t *testing.T) {
	g := buildDesign(t, 1, 4)
	top := topology.New(g, noclib.DefaultLibrary(), 400)
	if _, err := ComputePaths(top, DefaultConfig()); err == nil {
		t.Error("expected error with no switches")
	}
	top.AddSwitch(0)
	// cores unattached
	if _, err := ComputePaths(top, DefaultConfig()); err == nil {
		t.Error("expected error with unattached cores")
	}
}

func TestAdjacentLayersOnlyRestriction(t *testing.T) {
	// Three layers; traffic from layer 0 to layer 2. With AdjacentLayersOnly
	// the route must pass through a switch on layer 1.
	cores := []model.Core{
		{Name: "c0", Width: 1, Height: 1, Layer: 0},
		{Name: "c1", Width: 1, Height: 1, Layer: 1},
		{Name: "c2", Width: 1, Height: 1, Layer: 2},
	}
	flows := []model.Flow{
		{Src: 0, Dst: 2, BandwidthMBps: 100},
		{Src: 1, Dst: 0, BandwidthMBps: 10},
		{Src: 2, Dst: 1, BandwidthMBps: 10},
	}
	g, err := model.NewCommGraph(cores, flows)
	if err != nil {
		t.Fatal(err)
	}
	top := topology.New(g, noclib.DefaultLibrary(), 400)
	s0 := top.AddSwitch(0)
	s1 := top.AddSwitch(1)
	s2 := top.AddSwitch(2)
	top.AttachCore(0, s0)
	top.AttachCore(1, s1)
	top.AttachCore(2, s2)
	top.EstimateSwitchPositions()

	cfg := DefaultConfig()
	cfg.AdjacentLayersOnly = true
	res, err := ComputePaths(top, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success() {
		t.Fatalf("failed: %v", res.Failed)
	}
	r := top.Routes[0].Switches
	if len(r) != 3 || r[0] != s0 || r[1] != s1 || r[2] != s2 {
		t.Errorf("flow 0 route = %v, want [s0 s1 s2]", r)
	}

	// Without the restriction, the direct 2-hop route is allowed (and cheaper
	// in latency), though the router may still choose either; just confirm
	// routing succeeds.
	top2 := topology.New(g, noclib.DefaultLibrary(), 400)
	a := top2.AddSwitch(0)
	b := top2.AddSwitch(1)
	c := top2.AddSwitch(2)
	top2.AttachCore(0, a)
	top2.AttachCore(1, b)
	top2.AttachCore(2, c)
	top2.EstimateSwitchPositions()
	res2, err := ComputePaths(top2, DefaultConfig())
	if err != nil || !res2.Success() {
		t.Fatalf("unrestricted routing failed: %v %v", err, res2.Failed)
	}
}

func TestMaxILLRespected(t *testing.T) {
	g := buildDesign(t, 2, 8)
	for _, maxILL := range []int{25, 12, 8} {
		top := buildTopology(t, g, 2)
		cfg := DefaultConfig()
		cfg.MaxILL = maxILL
		res, err := ComputePaths(top, cfg)
		if err != nil {
			t.Fatalf("ComputePaths: %v", err)
		}
		if !res.Success() {
			// With a tight constraint failure is acceptable, but any routed
			// result must still respect the cap.
			t.Logf("maxILL=%d: %d flows failed", maxILL, len(res.Failed))
		}
		if got := top.MaxInterLayerLinks(); got > maxILL {
			t.Errorf("maxILL=%d violated: topology uses %d inter-layer links", maxILL, got)
		}
	}
}

func TestMaxSwitchSizeRespected(t *testing.T) {
	g := buildDesign(t, 1, 12)
	top := buildTopology(t, g, 4)
	cfg := DefaultConfig()
	cfg.MaxSwitchSize = 6
	cfg.AllowIndirectSwitches = true
	res, err := ComputePaths(top, cfg)
	if err != nil {
		t.Fatalf("ComputePaths: %v", err)
	}
	if !res.Success() {
		t.Fatalf("failed flows: %v", res.Failed)
	}
	in, out := top.SwitchPorts()
	for i := range in {
		if in[i] > cfg.MaxSwitchSize || out[i] > cfg.MaxSwitchSize {
			t.Errorf("switch %d has %dx%d ports, exceeds max %d", i, in[i], out[i], cfg.MaxSwitchSize)
		}
	}
}

func TestDeadlockFreedom(t *testing.T) {
	// Route a dense all-to-all pattern over a ring of switches and verify the
	// channel dependency graph of the final routes is acyclic.
	cores := make([]model.Core, 8)
	for i := range cores {
		cores[i] = model.Core{Name: coreName(0, i), Width: 1, Height: 1,
			X: float64(i) * 1.2, Layer: 0}
	}
	var flows []model.Flow
	for i := range cores {
		for j := range cores {
			if i != j {
				flows = append(flows, model.Flow{Src: i, Dst: j, BandwidthMBps: 50})
			}
		}
	}
	g, err := model.NewCommGraph(cores, flows)
	if err != nil {
		t.Fatal(err)
	}
	top := topology.New(g, noclib.DefaultLibrary(), 400)
	for i := 0; i < 4; i++ {
		top.AddSwitch(0)
	}
	for c := range cores {
		top.AttachCore(c, c%4)
	}
	top.EstimateSwitchPositions()
	res, err := ComputePaths(top, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success() {
		t.Fatalf("failed: %v", res.Failed)
	}
	if err := top.Validate(); err != nil {
		t.Fatal(err)
	}
	assertAcyclicCDG(t, top)
}

// assertAcyclicCDG rebuilds the channel dependency graph from the final
// routes and checks it has no cycles.
func assertAcyclicCDG(t *testing.T, top *topology.Topology) {
	t.Helper()
	idx := map[[2]int]int{}
	next := 0
	vertex := func(a, b int) int {
		k := [2]int{a, b}
		if v, ok := idx[k]; ok {
			return v
		}
		idx[k] = next
		next++
		return next - 1
	}
	type dep struct{ a, b int }
	var deps []dep
	for _, r := range top.Routes {
		for i := 2; i < len(r.Switches); i++ {
			deps = append(deps, dep{
				a: vertex(r.Switches[i-2], r.Switches[i-1]),
				b: vertex(r.Switches[i-1], r.Switches[i]),
			})
		}
	}
	// next is now the number of distinct links.
	cdg := graph.New(next)
	for _, d := range deps {
		cdg.AddEdge(d.a, d.b, 1)
	}
	if cdg.HasCycle() {
		t.Error("channel dependency graph has a cycle: routes are not deadlock free")
	}
}

func TestImpossibleConstraintFails(t *testing.T) {
	// Cores on two layers, each attached to a switch on its own layer, but
	// max_ill of 0... MaxILL=0 means unconstrained in our config, so use
	// AdjacentLayersOnly with a 3-layer gap instead: no intermediate switch
	// exists, so routing must fail.
	cores := []model.Core{
		{Name: "c0", Width: 1, Height: 1, Layer: 0},
		{Name: "c2", Width: 1, Height: 1, Layer: 2},
	}
	flows := []model.Flow{{Src: 0, Dst: 1, BandwidthMBps: 100}}
	g, err := model.NewCommGraph(cores, flows)
	if err != nil {
		t.Fatal(err)
	}
	top := topology.New(g, noclib.DefaultLibrary(), 400)
	s0 := top.AddSwitch(0)
	s2 := top.AddSwitch(2)
	top.AttachCore(0, s0)
	top.AttachCore(1, s2)
	top.EstimateSwitchPositions()
	cfg := DefaultConfig()
	cfg.AdjacentLayersOnly = true
	cfg.AllowIndirectSwitches = false
	res, err := ComputePaths(top, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Success() {
		t.Error("expected failure when no adjacent-layer path exists")
	}

	// With indirect switches allowed, the router inserts one on layer 1 and
	// succeeds.
	top2 := topology.New(g, noclib.DefaultLibrary(), 400)
	a := top2.AddSwitch(0)
	b := top2.AddSwitch(2)
	top2.AttachCore(0, a)
	top2.AttachCore(1, b)
	top2.EstimateSwitchPositions()
	cfg.AllowIndirectSwitches = true
	res2, err := ComputePaths(top2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Success() {
		t.Fatalf("indirect switch insertion should rescue the flow: %v", res2.Failed)
	}
	if res2.IndirectSwitches != 1 {
		t.Errorf("IndirectSwitches = %d, want 1", res2.IndirectSwitches)
	}
	if top2.NumSwitches() != 3 {
		t.Errorf("switch count = %d, want 3", top2.NumSwitches())
	}
}

func TestRoutingPrefersExistingLinks(t *testing.T) {
	// Two flows between the same pair of switch groups should share physical
	// links rather than opening parallel ones, because reusing a link has no
	// port-opening cost.
	g := buildDesign(t, 1, 8)
	top := buildTopology(t, g, 2)
	res, err := ComputePaths(top, DefaultConfig())
	if err != nil || !res.Success() {
		t.Fatalf("routing failed: %v %v", err, res)
	}
	links := top.SwitchLinks()
	// With 2 switches there can be at most 2 directed switch-to-switch links.
	if len(links) > 2 {
		t.Errorf("expected at most 2 aggregated links, got %d", len(links))
	}
}
