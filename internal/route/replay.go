package route

import (
	"sunfloor3d/internal/graph"
	"sunfloor3d/internal/topology"
)

// CommittedPaths returns a deep copy of the per-flow switch paths committed
// on the topology, indexed like Design.Flows. Unrouted flows yield nil. The
// copies are safe to hand to consumers that replay the routes — the flit
// simulator, exporters — without aliasing the topology's internal state.
func CommittedPaths(t *topology.Topology) [][]int {
	out := make([][]int, len(t.Routes))
	for f, r := range t.Routes {
		if len(r.Switches) == 0 {
			continue
		}
		out[f] = append([]int(nil), r.Switches...)
	}
	return out
}

// BuildCDG reconstructs the channel dependency graph of the committed routes:
// one vertex per directed switch-to-switch link in use, one edge whenever some
// flow traverses two links in sequence. It returns the graph together with
// the link-to-vertex index (keyed by [from, to] switch pairs), so callers can
// map cycles back to physical links. This is the same structure the router
// maintains incrementally while committing paths; rebuilding it post hoc lets
// external consumers (tests, the simulator's cross-validation) audit a routed
// topology without rerunning path computation.
func BuildCDG(t *topology.Topology) (*graph.Graph, map[[2]int]int) {
	linkIdx := make(map[[2]int]int)
	cdg := graph.New(0)
	vertex := func(a, b int) int {
		key := [2]int{a, b}
		if v, ok := linkIdx[key]; ok {
			return v
		}
		v := cdg.Grow(1)
		linkIdx[key] = v
		return v
	}
	for _, r := range t.Routes {
		for i := 1; i < len(r.Switches); i++ {
			a := vertex(r.Switches[i-1], r.Switches[i])
			if i >= 2 {
				prev := linkIdx[[2]int{r.Switches[i-2], r.Switches[i-1]}]
				cdg.AddEdge(prev, a, 1)
			}
		}
	}
	return cdg, linkIdx
}

// DeadlockFree reports whether the committed routes are free of routing
// deadlocks: the channel dependency graph over the switch-to-switch links is
// acyclic. This is the static check Algorithm 3 enforces while routing; the
// flit-level simulator's runtime watchdog cross-validates it dynamically.
func DeadlockFree(t *topology.Topology) bool {
	cdg, _ := BuildCDG(t)
	return !cdg.HasCycle()
}
