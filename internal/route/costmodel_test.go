package route

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"sunfloor3d/internal/graph"
	"sunfloor3d/internal/model"
	"sunfloor3d/internal/noclib"
	"sunfloor3d/internal/topology"
)

// TestIndirectSwitchRollbackOnFailure checks that a failed indirect-switch
// retry leaves the topology byte-identical to its pre-attempt state: no
// leftover switch, no phantom port slots polluting power and area.
func TestIndirectSwitchRollbackOnFailure(t *testing.T) {
	// Cores three layers apart with adjacent-layer-only links: the indirect
	// switch lands on layer 1, but its link to layer 3 still spans two
	// layers, so the retry must fail and roll back.
	cores := []model.Core{
		{Name: "c0", Width: 1, Height: 1, Layer: 0},
		{Name: "c3", Width: 1, Height: 1, Layer: 3},
	}
	flows := []model.Flow{{Src: 0, Dst: 1, BandwidthMBps: 100}}
	g, err := model.NewCommGraph(cores, flows)
	if err != nil {
		t.Fatal(err)
	}
	for _, fullRebuild := range []bool{false, true} {
		top := topology.New(g, noclib.DefaultLibrary(), 400)
		s0 := top.AddSwitch(0)
		s3 := top.AddSwitch(3)
		top.AttachCore(0, s0)
		top.AttachCore(1, s3)
		top.EstimateSwitchPositions()
		snapshot := top.Clone()

		cfg := DefaultConfig()
		cfg.AdjacentLayersOnly = true
		cfg.AllowIndirectSwitches = true
		cfg.FullRebuild = fullRebuild
		res, err := ComputePaths(top, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Success() {
			t.Fatalf("fullRebuild=%v: routing across a 3-layer gap should fail", fullRebuild)
		}
		if res.IndirectSwitches != 0 {
			t.Errorf("fullRebuild=%v: failed insertion counted %d indirect switches", fullRebuild, res.IndirectSwitches)
		}
		if !reflect.DeepEqual(top.Switches, snapshot.Switches) {
			t.Errorf("fullRebuild=%v: switches not rolled back:\ngot  %+v\nwant %+v",
				fullRebuild, top.Switches, snapshot.Switches)
		}
		if !reflect.DeepEqual(top.CoreAttach, snapshot.CoreAttach) {
			t.Errorf("fullRebuild=%v: core attachments changed", fullRebuild)
		}
		in, out := top.SwitchPorts()
		wantIn, wantOut := snapshot.SwitchPorts()
		if !reflect.DeepEqual(in, wantIn) || !reflect.DeepEqual(out, wantOut) {
			t.Errorf("fullRebuild=%v: port counts changed: %v/%v want %v/%v",
				fullRebuild, in, out, wantIn, wantOut)
		}
	}
}

// TestIndirectSwitchRollbackThenReuse checks that after a rolled-back
// insertion the router can still insert an indirect switch for a later flow
// with a clean link identity (the rolled-back switch ID is reused).
func TestIndirectSwitchRollbackThenReuse(t *testing.T) {
	cores := []model.Core{
		{Name: "a0", Width: 1, Height: 1, Layer: 0},
		{Name: "a4", Width: 1, Height: 1, Layer: 4},
		{Name: "b0", Width: 1, Height: 1, X: 2, Layer: 0},
		{Name: "b2", Width: 1, Height: 1, X: 2, Layer: 2},
	}
	flows := []model.Flow{
		// Unroutable: a 4-layer gap that a single indirect switch (placed on
		// layer 2) cannot bridge with adjacent-layer-only links.
		{Src: 0, Dst: 1, BandwidthMBps: 900},
		// Rescued by an indirect switch on layer 1.
		{Src: 2, Dst: 3, BandwidthMBps: 100},
	}
	g, err := model.NewCommGraph(cores, flows)
	if err != nil {
		t.Fatal(err)
	}
	top := topology.New(g, noclib.DefaultLibrary(), 400)
	top.AttachCore(0, top.AddSwitch(0))
	top.AttachCore(1, top.AddSwitch(4))
	top.AttachCore(2, top.AddSwitch(0))
	top.AttachCore(3, top.AddSwitch(2))
	top.EstimateSwitchPositions()

	cfg := DefaultConfig()
	cfg.AdjacentLayersOnly = true
	cfg.AllowIndirectSwitches = true
	res, err := ComputePaths(top, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failed) != 1 || res.Failed[0] != 0 {
		t.Fatalf("Failed = %v, want [0]", res.Failed)
	}
	if res.IndirectSwitches != 1 {
		t.Errorf("IndirectSwitches = %d, want 1", res.IndirectSwitches)
	}
	if top.NumSwitches() != 5 {
		t.Errorf("switch count = %d, want 5 (4 + 1 surviving indirect)", top.NumSwitches())
	}
}

// randomRoutedCase builds a random multi-layer design and switch assignment
// for the equivalence test.
func randomRoutedCase(t *testing.T, rng *rand.Rand) *topology.Topology {
	t.Helper()
	layers := 1 + rng.Intn(3)
	perLayer := 2 + rng.Intn(3)
	var cores []model.Core
	for l := 0; l < layers; l++ {
		for i := 0; i < perLayer; i++ {
			cores = append(cores, model.Core{
				Name:  coreName(l, i),
				Width: 1, Height: 1,
				X: rng.Float64() * 6, Y: rng.Float64() * 6, Layer: l,
			})
		}
	}
	n := len(cores)
	var flows []model.Flow
	for f := 0; f < n+rng.Intn(2*n); f++ {
		src := rng.Intn(n)
		dst := rng.Intn(n)
		if src == dst {
			continue
		}
		flows = append(flows, model.Flow{
			Src: src, Dst: dst, BandwidthMBps: 50 + rng.Float64()*900,
		})
	}
	if len(flows) == 0 {
		flows = append(flows, model.Flow{Src: 0, Dst: 1, BandwidthMBps: 100})
	}
	g, err := model.NewCommGraph(cores, flows)
	if err != nil {
		t.Fatal(err)
	}
	top := topology.New(g, noclib.DefaultLibrary(), 400+float64(rng.Intn(3))*200)
	swPerLayer := 1 + rng.Intn(3)
	var sw [][]int
	for l := 0; l < layers; l++ {
		var row []int
		for s := 0; s < swPerLayer; s++ {
			id := top.AddSwitch(l)
			row = append(row, id)
		}
		sw = append(sw, row)
	}
	for c := range cores {
		top.AttachCore(c, sw[cores[c].Layer][rng.Intn(swPerLayer)])
	}
	top.EstimateSwitchPositions()
	return top
}

// TestCostModelMatchesRebuild routes randomized topologies with the
// incremental cost model and, between every commit, cross-checks each cached
// arc against a from-scratch arcCost evaluation (what the FullRebuild
// reference graph would contain). This pins the incremental invalidation
// logic to the ground truth of Algorithm 3's CHECK_CONSTRAINTS.
func TestCostModelMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		top := randomRoutedCase(t, rng)
		cfg := DefaultConfig()
		if rng.Intn(2) == 0 {
			cfg.MaxILL = 2 + rng.Intn(8)
		}
		if rng.Intn(2) == 0 {
			cfg.MaxSwitchSize = 4 + rng.Intn(6)
		}
		cfg.AdjacentLayersOnly = rng.Intn(2) == 0

		r := &router{top: top, cfg: cfg}
		r.init()
		if r.cost == nil {
			t.Fatal("incremental cost model not built")
		}
		sampleBWs := []float64{0, 120, 975.5}
		verify := func(stage string) {
			n := top.NumSwitches()
			cg := r.buildCostGraph(sampleBWs[1], nil)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if i == j {
						continue
					}
					for _, bw := range sampleBWs {
						want := r.arcCost(i, j, bw, r.softInf)
						got := r.cost.cost(i, j, bw)
						if !costsClose(got, want) {
							t.Fatalf("trial %d, %s: arc (%d,%d) bw=%v: incremental %v, rebuilt %v",
								trial, stage, i, j, bw, got, want)
						}
					}
					// The reference graph must agree too (missing edge = Infinity).
					want := r.arcCost(i, j, sampleBWs[1], r.softInf)
					got := graph.Infinity
					if cg.HasEdge(i, j) {
						got = cg.Weight(i, j)
					}
					if !costsClose(got, want) {
						t.Fatalf("trial %d, %s: reference graph arc (%d,%d): %v want %v",
							trial, stage, i, j, got, want)
					}
				}
			}
		}
		verify("init")
		before := top.NumSwitches()
		for _, f := range top.Design.FlowsByBandwidth() {
			if !r.routeFlow(f) && cfg.AllowIndirectSwitches {
				r.tryWithIndirectSwitch(f)
			}
			verify("after flow")
		}
		// Every switch the router kept must actually carry a route: unused
		// insertions are rolled back on both the failure and success paths.
		used := make(map[int]bool)
		for _, rt := range top.Routes {
			for _, s := range rt.Switches {
				used[s] = true
			}
		}
		for id := before; id < top.NumSwitches(); id++ {
			if !used[id] {
				t.Fatalf("trial %d: inserted switch %d survives with no route through it", trial, id)
			}
		}
	}
}

// costsClose compares arc costs with a relative tolerance (the incremental
// model's state+slope*bw split rounds differently from the monolithic
// arcCost evaluation).
func costsClose(a, b float64) bool {
	if a >= graph.Infinity || b >= graph.Infinity {
		return a >= graph.Infinity && b >= graph.Infinity
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*math.Max(scale, 1)
}

// TestIncrementalRoutingStaysDeadlockFree re-runs the deadlock test pattern
// through the incremental path with tight constraints and verifies the final
// routes still form an acyclic channel dependency graph.
func TestIncrementalRoutingStaysDeadlockFree(t *testing.T) {
	g := buildDesign(t, 2, 8)
	top := buildTopology(t, g, 2)
	cfg := DefaultConfig()
	cfg.MaxILL = 10
	res, err := ComputePaths(top, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success() {
		t.Fatalf("failed: %v", res.Failed)
	}
	assertAcyclicCDG(t, top)
}
