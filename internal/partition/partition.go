// Package partition builds the partitioning graphs used by the core-to-switch
// connectivity algorithms of the paper: the partitioning graph PG
// (Definition 3), the scaled partitioning graph SPG (Definition 4 with the
// edge weights of Eq. 1) and the per-layer partitioning graphs LPG
// (Definition 5). The graphs are then fed to the balanced min-cut k-way
// partitioner of the graph package.
package partition

import (
	"fmt"

	"sunfloor3d/internal/graph"
	"sunfloor3d/internal/model"
)

// Params collects the knobs of the partitioning-graph construction.
type Params struct {
	// Alpha weighs bandwidth versus latency in edge weights: weight =
	// alpha*bw/max_bw + (1-alpha)*min_lat/lat. Alpha of 1 considers only
	// bandwidth.
	Alpha float64
	// ThetaMin, ThetaMax and ThetaStep drive the SPG scaling sweep of
	// Algorithm 1 (steps 11-19). The paper found 1..15 in steps of 3 to work
	// well.
	ThetaMin, ThetaMax, ThetaStep float64
	// IsolatedEdgeWeight is the small weight of the edges added in an LPG
	// between cores that do not communicate inside the layer (Definition 5).
	IsolatedEdgeWeight float64
}

// DefaultParams returns the parameter values recommended in the paper.
func DefaultParams() Params {
	return Params{
		Alpha:              1.0,
		ThetaMin:           1,
		ThetaMax:           15,
		ThetaStep:          3,
		IsolatedEdgeWeight: 1e-3,
	}
}

// Validate checks the parameter ranges.
func (p Params) Validate() error {
	if p.Alpha < 0 || p.Alpha > 1 {
		return fmt.Errorf("partition: alpha %g out of [0,1]", p.Alpha)
	}
	if p.ThetaMin <= 0 || p.ThetaMax < p.ThetaMin || p.ThetaStep <= 0 {
		return fmt.Errorf("partition: invalid theta sweep (%g, %g, %g)", p.ThetaMin, p.ThetaMax, p.ThetaStep)
	}
	if p.IsolatedEdgeWeight < 0 {
		return fmt.Errorf("partition: negative isolated edge weight")
	}
	return nil
}

// edgeWeight implements the weight formula shared by Definitions 3 and 5:
// h = alpha*bw/max_bw + (1-alpha)*min_lat/lat.
func edgeWeight(f model.Flow, maxBW, minLat, alpha float64) float64 {
	var w float64
	if maxBW > 0 {
		w += alpha * f.BandwidthMBps / maxBW
	}
	if f.LatencyCycles > 0 && minLat > 0 {
		w += (1 - alpha) * minLat / f.LatencyCycles
	}
	return w
}

// BuildPG constructs the partitioning graph PG(U, H, alpha) of Definition 3:
// one vertex per core, one directed edge per communicating core pair with the
// combined bandwidth/latency weight.
func BuildPG(g *model.CommGraph, alpha float64) *graph.Graph {
	pg := graph.New(g.NumCores())
	maxBW := g.MaxBandwidth()
	minLat := g.MinLatency()
	for _, f := range g.Flows {
		pg.AddEdge(f.Src, f.Dst, edgeWeight(f, maxBW, minLat, alpha))
	}
	return pg
}

// BuildSPG constructs the scaled partitioning graph SPG(W, L, theta) of
// Definition 4. Relative to the PG it:
//
//   - keeps intra-layer edges at their PG weight,
//   - divides the weight of inter-layer edges by theta*|layer_i - layer_j|,
//   - adds a low-weight edge (theta*max_wt / (10*theta_max)) between every
//     pair of cores in the same layer that do not already communicate, so the
//     partitioner prefers grouping same-layer cores.
func BuildSPG(g *model.CommGraph, alpha, theta, thetaMax float64) *graph.Graph {
	return BuildSPGFrom(BuildPG(g, alpha), g, theta, thetaMax)
}

// BuildSPGFrom is BuildSPG for callers that already hold the design's PG
// (the sweep-wide partition cache builds the PG once and derives every SPG of
// the theta sweep from it). pg is read, never modified.
func BuildSPGFrom(pg *graph.Graph, g *model.CommGraph, theta, thetaMax float64) *graph.Graph {
	spg := graph.New(g.NumCores())

	// Maximum edge weight in PG (max_wt in Eq. 1).
	var maxWt float64
	for _, e := range pg.Edges() {
		if e.Weight > maxWt {
			maxWt = e.Weight
		}
	}

	for _, e := range pg.Edges() {
		li := g.Cores[e.From].Layer
		lj := g.Cores[e.To].Layer
		if li == lj {
			spg.AddEdge(e.From, e.To, e.Weight)
		} else {
			d := li - lj
			if d < 0 {
				d = -d
			}
			spg.AddEdge(e.From, e.To, e.Weight/(theta*float64(d)))
		}
	}

	// Extra same-layer edges between non-communicating cores.
	extra := theta * maxWt / (10 * thetaMax)
	for i := 0; i < g.NumCores(); i++ {
		for j := i + 1; j < g.NumCores(); j++ {
			if g.Cores[i].Layer != g.Cores[j].Layer {
				continue
			}
			if pg.HasEdge(i, j) || pg.HasEdge(j, i) {
				continue
			}
			spg.AddEdge(i, j, extra)
		}
	}
	return spg
}

// LPG is the layer partitioning graph of Definition 5 for one layer. Vertices
// returns the core indices (into the design) that the graph vertices
// represent; Graph holds one vertex per entry of Vertices.
type LPG struct {
	Layer    int
	Vertices []int
	Graph    *graph.Graph
}

// BuildLPGs constructs one LPG per layer. Each LPG contains the cores of its
// layer, edges between cores that communicate within the layer (with the
// Definition 3 weight) and low-weight edges connecting otherwise isolated
// cores to every other core of the layer so that the partitioner still
// balances them.
func BuildLPGs(g *model.CommGraph, p Params) []LPG {
	maxBW := g.MaxBandwidth()
	minLat := g.MinLatency()
	layers := g.NumLayers()
	out := make([]LPG, 0, layers)
	for ly := 0; ly < layers; ly++ {
		verts := g.CoresInLayer(ly)
		pos := make(map[int]int, len(verts)) // core index -> vertex index
		for i, c := range verts {
			pos[c] = i
		}
		lg := graph.New(len(verts))
		for _, f := range g.Flows {
			si, sok := pos[f.Src]
			di, dok := pos[f.Dst]
			if !sok || !dok {
				continue
			}
			lg.AddEdge(si, di, edgeWeight(f, maxBW, minLat, p.Alpha))
		}
		// Connect isolated vertices with low-weight edges to all others.
		und := lg.Undirected()
		for i := range verts {
			if len(und.Successors(i)) > 0 {
				continue
			}
			for j := range verts {
				if i != j {
					lg.AddEdge(i, j, p.IsolatedEdgeWeight)
				}
			}
		}
		out = append(out, LPG{Layer: ly, Vertices: verts, Graph: lg})
	}
	return out
}

// PartitionCores partitions the cores of the design into k blocks using the
// given partitioning graph over all cores (PG or SPG). The result maps every
// core index to its block in [0, k).
func PartitionCores(pg *graph.Graph, k int) []int {
	return graph.PartitionK(pg, k)
}

// PartitionLPG partitions one layer's LPG into k blocks and returns a map
// from core index (design indices, not LPG vertex indices) to block.
func PartitionLPG(l LPG, k int) map[int]int {
	if len(l.Vertices) == 0 {
		return map[int]int{}
	}
	if k > len(l.Vertices) {
		k = len(l.Vertices)
	}
	assign := graph.PartitionK(l.Graph, k)
	out := make(map[int]int, len(l.Vertices))
	for v, block := range assign {
		out[l.Vertices[v]] = block
	}
	return out
}

// ThetaSweep returns the theta values of the SPG scaling loop, from ThetaMin
// to ThetaMax inclusive in steps of ThetaStep.
func (p Params) ThetaSweep() []float64 {
	var ts []float64
	for t := p.ThetaMin; t <= p.ThetaMax+1e-9; t += p.ThetaStep {
		ts = append(ts, t)
	}
	return ts
}

// SwitchLayerFromBlock computes the layer of a switch serving the given cores
// as the rounded average of the member cores' layers (Algorithm 1, step 7).
func SwitchLayerFromBlock(g *model.CommGraph, cores []int) int {
	if len(cores) == 0 {
		return 0
	}
	sum := 0
	for _, c := range cores {
		sum += g.Cores[c].Layer
	}
	// Round to nearest integer layer.
	return (2*sum + len(cores)) / (2 * len(cores))
}

// SwitchLayerMajority is the alternative rule mentioned in the paper: assign
// the switch to the layer containing most of its cores (ties to the lower
// layer).
func SwitchLayerMajority(g *model.CommGraph, cores []int) int {
	counts := make(map[int]int)
	for _, c := range cores {
		counts[g.Cores[c].Layer]++
	}
	best, bestCount := 0, -1
	for layer := 0; layer <= maxLayer(g, cores); layer++ {
		if counts[layer] > bestCount {
			best, bestCount = layer, counts[layer]
		}
	}
	return best
}

func maxLayer(g *model.CommGraph, cores []int) int {
	m := 0
	for _, c := range cores {
		if g.Cores[c].Layer > m {
			m = g.Cores[c].Layer
		}
	}
	return m
}
