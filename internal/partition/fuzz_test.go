package partition_test

// Fuzz harness for the partitioning graphs and the min-cut partitioner on
// randomized communication graphs: construction and partitioning must never
// panic, every partition must be a complete assignment into the requested
// number of non-empty blocks, repeated runs must be deterministic, and the
// cache construction path (BuildSPGFrom over a shared PG) must produce
// graphs identical to the direct BuildSPG — the equivalence that makes the
// sweep-wide partition cache sound.

import (
	"testing"

	"sunfloor3d/internal/graph"
	"sunfloor3d/internal/model"
	"sunfloor3d/internal/partition"
)

// buildGraph decodes the fuzz input into a communication graph, or nil when
// the decoded design is degenerate.
func buildGraph(data []byte) *model.CommGraph {
	at := func(i int) byte {
		if i < len(data) {
			return data[i]
		}
		return byte(i*31 + 7)
	}
	nCores := 2 + int(at(0))%11 // 2..12
	nLayers := 1 + int(at(1))%4 // 1..4
	nFlows := 1 + int(at(2))%24 // 1..24

	cores := make([]model.Core, nCores)
	for i := range cores {
		cores[i] = model.Core{
			Name:   "c" + string(rune('a'+i)),
			Width:  1 + float64(at(3+i)%5)/4,
			Height: 1 + float64(at(4+i)%5)/4,
			X:      float64(at(5+i) % 13),
			Y:      float64(at(6+i) % 13),
			Layer:  int(at(7+i)) % nLayers,
		}
	}
	var flows []model.Flow
	for i := 0; i < nFlows; i++ {
		src := int(at(8+2*i)) % nCores
		dst := int(at(9+2*i)) % nCores
		if src == dst {
			continue
		}
		flows = append(flows, model.Flow{
			Src: src, Dst: dst,
			BandwidthMBps: float64(10 * (1 + int(at(10+3*i))%100)),
			LatencyCycles: float64(int(at(11+3*i)) % 10),
		})
	}
	if len(flows) == 0 {
		return nil
	}
	g, err := model.NewCommGraph(cores, flows)
	if err != nil {
		return nil
	}
	return g
}

// graphsEqual compares two weighted graphs edge for edge.
func graphsEqual(a, b *graph.Graph) bool {
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		return false
	}
	ea, eb := a.Edges(), b.Edges()
	for i := range ea {
		if ea[i] != eb[i] {
			return false
		}
	}
	return true
}

// checkAssignment verifies a k-way partition: complete, in range, non-empty
// blocks, and stable under recomputation.
func checkAssignment(t *testing.T, what string, assign []int, n, k int) {
	t.Helper()
	if len(assign) != n {
		t.Fatalf("%s: %d assignments for %d vertices", what, len(assign), n)
	}
	seen := make([]int, k)
	for v, b := range assign {
		if b < 0 || b >= k {
			t.Fatalf("%s: vertex %d in block %d (k=%d)", what, v, b, k)
		}
		seen[b]++
	}
	if n >= k {
		for b, c := range seen {
			if c == 0 {
				t.Fatalf("%s: block %d empty (n=%d, k=%d, sizes=%v)", what, b, n, k, seen)
			}
		}
	}
}

func FuzzPartitionMinCut(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3})
	f.Add([]byte{11, 3, 20, 0, 255, 0, 255, 0, 255, 0, 255, 0, 255, 0, 255, 0, 255, 0, 255})
	f.Add([]byte{6, 2, 12, 40, 41, 42, 43, 44, 45, 46, 47, 48, 49, 50, 51, 52, 53, 54, 55})

	f.Fuzz(func(t *testing.T, data []byte) {
		g := buildGraph(data)
		if g == nil {
			return
		}
		params := partition.DefaultParams()
		if len(data) > 2 {
			params.Alpha = float64(int(data[2])%5) / 4 // 0, 0.25, .., 1
		}
		if err := params.Validate(); err != nil {
			t.Fatalf("derived params invalid: %v", err)
		}

		pg := partition.BuildPG(g, params.Alpha)
		if pg.NumVertices() != g.NumCores() {
			t.Fatalf("PG has %d vertices for %d cores", pg.NumVertices(), g.NumCores())
		}

		// Cache-path equivalence: deriving every SPG of the theta sweep from
		// the shared PG must equal building it directly from the design.
		for _, theta := range params.ThetaSweep() {
			direct := partition.BuildSPG(g, params.Alpha, theta, params.ThetaMax)
			derived := partition.BuildSPGFrom(pg, g, theta, params.ThetaMax)
			if !graphsEqual(direct, derived) {
				t.Fatalf("SPG(theta=%g) differs between direct and PG-derived construction", theta)
			}
		}

		// Min-cut partitions of the PG for every feasible switch count.
		for k := 1; k <= g.NumCores(); k++ {
			assign := partition.PartitionCores(pg, k)
			checkAssignment(t, "PG", assign, g.NumCores(), k)
			again := partition.PartitionCores(pg, k)
			for v := range assign {
				if assign[v] != again[v] {
					t.Fatalf("PG partition k=%d not deterministic at vertex %d", k, v)
				}
			}
			// The reported cut must match the assignment.
			cut := pg.CutWeight(assign)
			if cut < 0 {
				t.Fatalf("negative cut weight %g", cut)
			}
		}

		// Per-layer LPGs: every core of the layer appears, and partitions are
		// complete for every feasible block count.
		lpgs := partition.BuildLPGs(g, params)
		coresSeen := 0
		for _, l := range lpgs {
			coresSeen += len(l.Vertices)
			if len(l.Vertices) == 0 {
				continue
			}
			for np := 1; np <= len(l.Vertices); np++ {
				m := partition.PartitionLPG(l, np)
				if len(m) != len(l.Vertices) {
					t.Fatalf("layer %d: %d assigned of %d cores", l.Layer, len(m), len(l.Vertices))
				}
				for core, b := range m {
					if g.Cores[core].Layer != l.Layer {
						t.Fatalf("layer %d assignment contains core %d of layer %d",
							l.Layer, core, g.Cores[core].Layer)
					}
					if b < 0 || b >= np {
						t.Fatalf("layer %d: core %d in block %d of %d", l.Layer, core, b, np)
					}
				}
			}
			// Switch layer rules must return a layer touched by the block.
			if ly := partition.SwitchLayerFromBlock(g, l.Vertices); ly != l.Layer {
				t.Fatalf("single-layer block resolved to layer %d, want %d", ly, l.Layer)
			}
			if ly := partition.SwitchLayerMajority(g, l.Vertices); ly != l.Layer {
				t.Fatalf("majority of single-layer block resolved to layer %d, want %d", ly, l.Layer)
			}
		}
		if coresSeen != g.NumCores() {
			t.Fatalf("LPGs cover %d of %d cores", coresSeen, g.NumCores())
		}
	})
}
