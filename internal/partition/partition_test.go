package partition

import (
	"testing"

	"sunfloor3d/internal/graph"
	"sunfloor3d/internal/model"
)

// paperExampleDesign reproduces the spirit of Fig. 4 of the paper: two layers
// with heavy traffic between vertically stacked cores and lighter traffic
// within each layer.
func paperExampleDesign(t *testing.T) *model.CommGraph {
	t.Helper()
	cores := []model.Core{
		{Name: "a0", Width: 1, Height: 1, Layer: 0},
		{Name: "a1", Width: 1, Height: 1, X: 2, Layer: 0},
		{Name: "a2", Width: 1, Height: 1, X: 4, Layer: 0},
		{Name: "b0", Width: 1, Height: 1, Layer: 1},
		{Name: "b1", Width: 1, Height: 1, X: 2, Layer: 1},
		{Name: "b2", Width: 1, Height: 1, X: 4, Layer: 1},
	}
	flows := []model.Flow{
		// Heavy inter-layer traffic between stacked pairs.
		{Src: 0, Dst: 3, BandwidthMBps: 1000, LatencyCycles: 2},
		{Src: 1, Dst: 4, BandwidthMBps: 900, LatencyCycles: 2},
		{Src: 2, Dst: 5, BandwidthMBps: 950, LatencyCycles: 2},
		// Lighter intra-layer traffic.
		{Src: 0, Dst: 1, BandwidthMBps: 100, LatencyCycles: 8},
		{Src: 1, Dst: 2, BandwidthMBps: 120, LatencyCycles: 8},
		{Src: 3, Dst: 4, BandwidthMBps: 110, LatencyCycles: 8},
		{Src: 4, Dst: 5, BandwidthMBps: 90, LatencyCycles: 8},
	}
	g, err := model.NewCommGraph(cores, flows)
	if err != nil {
		t.Fatalf("NewCommGraph: %v", err)
	}
	return g
}

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("DefaultParams invalid: %v", err)
	}
}

func TestParamsValidation(t *testing.T) {
	bad := []Params{
		{Alpha: -0.1, ThetaMin: 1, ThetaMax: 15, ThetaStep: 3},
		{Alpha: 1.1, ThetaMin: 1, ThetaMax: 15, ThetaStep: 3},
		{Alpha: 1, ThetaMin: 0, ThetaMax: 15, ThetaStep: 3},
		{Alpha: 1, ThetaMin: 5, ThetaMax: 4, ThetaStep: 3},
		{Alpha: 1, ThetaMin: 1, ThetaMax: 15, ThetaStep: 0},
		{Alpha: 1, ThetaMin: 1, ThetaMax: 15, ThetaStep: 3, IsolatedEdgeWeight: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestBuildPGWeights(t *testing.T) {
	g := paperExampleDesign(t)
	pg := BuildPG(g, 1.0)
	if pg.NumVertices() != 6 {
		t.Fatalf("PG vertices = %d", pg.NumVertices())
	}
	if pg.NumEdges() != len(g.Flows) {
		t.Fatalf("PG edges = %d, want %d", pg.NumEdges(), len(g.Flows))
	}
	// With alpha=1, the heaviest flow has weight 1 and weights are bw/max_bw.
	if w := pg.Weight(0, 3); w != 1.0 {
		t.Errorf("weight(0,3) = %v, want 1", w)
	}
	if w := pg.Weight(0, 1); w != 0.1 {
		t.Errorf("weight(0,1) = %v, want 0.1", w)
	}
	// With alpha=0, weights depend only on latency: min_lat/lat.
	pg0 := BuildPG(g, 0.0)
	if w := pg0.Weight(0, 3); w != 1.0 {
		t.Errorf("alpha=0 weight(0,3) = %v, want 1", w)
	}
	if w := pg0.Weight(0, 1); w != 0.25 {
		t.Errorf("alpha=0 weight(0,1) = %v, want 0.25", w)
	}
}

func TestBuildPGUnconstrainedLatency(t *testing.T) {
	cores := []model.Core{
		{Name: "x", Width: 1, Height: 1},
		{Name: "y", Width: 1, Height: 1},
	}
	flows := []model.Flow{{Src: 0, Dst: 1, BandwidthMBps: 10}}
	g, err := model.NewCommGraph(cores, flows)
	if err != nil {
		t.Fatal(err)
	}
	pg := BuildPG(g, 0.5)
	// No latency constraint anywhere: only the bandwidth term contributes.
	if w := pg.Weight(0, 1); w != 0.5 {
		t.Errorf("weight = %v, want 0.5", w)
	}
}

func TestPhase1PartitionGroupsVerticalPairs(t *testing.T) {
	// With the plain PG (Phase 1), the heavy inter-layer pairs should end up
	// in the same block even though they are on different layers.
	g := paperExampleDesign(t)
	pg := BuildPG(g, 1.0)
	assign := PartitionCores(pg, 3)
	for _, pair := range [][2]int{{0, 3}, {1, 4}, {2, 5}} {
		if assign[pair[0]] != assign[pair[1]] {
			t.Errorf("vertical pair %v split across blocks: %v", pair, assign)
		}
	}
}

func TestSPGFavoursSameLayerClustering(t *testing.T) {
	g := paperExampleDesign(t)
	p := DefaultParams()
	spg := BuildSPG(g, p.Alpha, 10, p.ThetaMax)
	// Inter-layer edge weights must be scaled down by theta.
	pg := BuildPG(g, p.Alpha)
	if w, orig := spg.Weight(0, 3), pg.Weight(0, 3); w >= orig {
		t.Errorf("inter-layer weight not scaled down: %v vs %v", w, orig)
	}
	// New same-layer edges must exist between non-communicating cores
	// (e.g. a0 and a2) with a small weight.
	if !spg.HasEdge(0, 2) && !spg.HasEdge(2, 0) {
		t.Error("SPG missing extra same-layer edge a0-a2")
	}
	var maxWt float64
	for _, e := range pg.Edges() {
		if e.Weight > maxWt {
			maxWt = e.Weight
		}
	}
	extra := spg.Weight(0, 2) + spg.Weight(2, 0)
	if extra <= 0 || extra > maxWt/10+1e-9 {
		t.Errorf("extra edge weight %v out of range (max_wt=%v)", extra, maxWt)
	}
	// No extra edges across layers.
	if spg.HasEdge(0, 4) || spg.HasEdge(4, 0) {
		t.Error("SPG must not add edges across layers")
	}

	// With a strong theta, a 2-way partition should separate the layers,
	// reducing inter-layer links - the very purpose of the SPG.
	assign := PartitionCores(spg, 2)
	if assign[0] != assign[1] || assign[1] != assign[2] {
		t.Errorf("layer 0 split: %v", assign)
	}
	if assign[3] != assign[4] || assign[4] != assign[5] {
		t.Errorf("layer 1 split: %v", assign)
	}
	if assign[0] == assign[3] {
		t.Errorf("layers not separated: %v", assign)
	}
}

func TestBuildLPGs(t *testing.T) {
	g := paperExampleDesign(t)
	p := DefaultParams()
	lpgs := BuildLPGs(g, p)
	if len(lpgs) != 2 {
		t.Fatalf("LPG count = %d", len(lpgs))
	}
	for _, l := range lpgs {
		if len(l.Vertices) != 3 {
			t.Errorf("layer %d has %d vertices", l.Layer, len(l.Vertices))
		}
		if l.Graph.NumVertices() != len(l.Vertices) {
			t.Errorf("layer %d graph size mismatch", l.Layer)
		}
	}
	// Layer 0 has intra-layer flows 0->1 and 1->2; vertex ids are local.
	l0 := lpgs[0]
	if l0.Graph.NumEdges() < 2 {
		t.Errorf("layer 0 LPG edges = %d", l0.Graph.NumEdges())
	}
}

func TestLPGIsolatedCoresGetEdges(t *testing.T) {
	cores := []model.Core{
		{Name: "p0", Width: 1, Height: 1, Layer: 0},
		{Name: "p1", Width: 1, Height: 1, Layer: 0},
		{Name: "lonely", Width: 1, Height: 1, Layer: 0},
		{Name: "q0", Width: 1, Height: 1, Layer: 1},
	}
	flows := []model.Flow{
		{Src: 0, Dst: 1, BandwidthMBps: 100},
		{Src: 2, Dst: 3, BandwidthMBps: 50}, // lonely only talks across layers
	}
	g, err := model.NewCommGraph(cores, flows)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	lpgs := BuildLPGs(g, p)
	l0 := lpgs[0]
	// "lonely" is vertex 2 in layer 0 and has no intra-layer traffic, so the
	// builder must add low-weight edges from it.
	found := false
	for _, e := range l0.Graph.Edges() {
		if e.From == 2 || e.To == 2 {
			found = true
			if e.Weight > p.IsolatedEdgeWeight+1e-12 && (e.From == 2) {
				t.Errorf("isolated edge weight too large: %v", e.Weight)
			}
		}
	}
	if !found {
		t.Error("isolated core has no edges in LPG")
	}

	m := PartitionLPG(l0, 2)
	if len(m) != 3 {
		t.Errorf("PartitionLPG returned %d entries", len(m))
	}
	// Keys must be design core indices (0,1,2), not graph-local ones.
	for c := range m {
		if c > 2 {
			t.Errorf("unexpected core index %d in LPG partition", c)
		}
	}
}

func TestPartitionLPGMoreBlocksThanCores(t *testing.T) {
	g := paperExampleDesign(t)
	lpgs := BuildLPGs(g, DefaultParams())
	m := PartitionLPG(lpgs[0], 10) // clamped to 3
	blocks := map[int]bool{}
	for _, b := range m {
		blocks[b] = true
	}
	if len(blocks) != 3 {
		t.Errorf("expected 3 singleton blocks, got %d", len(blocks))
	}
	empty := PartitionLPG(LPG{Layer: 0, Graph: graph.New(0)}, 2)
	if len(empty) != 0 {
		t.Errorf("empty LPG partition = %v", empty)
	}
}

func TestThetaSweep(t *testing.T) {
	p := DefaultParams()
	ts := p.ThetaSweep()
	want := []float64{1, 4, 7, 10, 13}
	if len(ts) != len(want) {
		t.Fatalf("ThetaSweep = %v", ts)
	}
	for i := range want {
		if ts[i] != want[i] {
			t.Errorf("ThetaSweep[%d] = %v, want %v", i, ts[i], want[i])
		}
	}
}

func TestSwitchLayerFromBlock(t *testing.T) {
	g := paperExampleDesign(t)
	if l := SwitchLayerFromBlock(g, []int{0, 1, 2}); l != 0 {
		t.Errorf("all layer-0 block -> %d", l)
	}
	if l := SwitchLayerFromBlock(g, []int{3, 4, 5}); l != 1 {
		t.Errorf("all layer-1 block -> %d", l)
	}
	// Mixed block: average of 0,0,1,1 = 0.5 rounds to 1 with our formula
	// ((2*2+4)/(2*4) = 8/8 = 1).
	if l := SwitchLayerFromBlock(g, []int{0, 1, 3, 4}); l != 1 {
		t.Errorf("mixed block -> %d, want 1", l)
	}
	if l := SwitchLayerFromBlock(g, []int{0, 3, 4}); l != 1 {
		t.Errorf("2/3 layer-1 block -> %d, want 1", l)
	}
	if l := SwitchLayerFromBlock(g, nil); l != 0 {
		t.Errorf("empty block -> %d, want 0", l)
	}
}

func TestSwitchLayerMajority(t *testing.T) {
	g := paperExampleDesign(t)
	if l := SwitchLayerMajority(g, []int{0, 1, 5}); l != 0 {
		t.Errorf("majority layer = %d, want 0", l)
	}
	if l := SwitchLayerMajority(g, []int{0, 5}); l != 0 {
		t.Errorf("tie should go to lower layer, got %d", l)
	}
	if l := SwitchLayerMajority(g, []int{3, 5, 0}); l != 1 {
		t.Errorf("majority layer = %d, want 1", l)
	}
}
