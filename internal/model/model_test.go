package model

import (
	"strings"
	"testing"
)

func smallCores() []Core {
	return []Core{
		{Name: "cpu", Width: 1, Height: 1, X: 0, Y: 0, Layer: 0},
		{Name: "mem0", Width: 1, Height: 1, X: 2, Y: 0, Layer: 0, IsMemory: true},
		{Name: "dsp", Width: 1, Height: 2, X: 0, Y: 2, Layer: 1},
		{Name: "mem1", Width: 2, Height: 1, X: 2, Y: 2, Layer: 1, IsMemory: true},
	}
}

func smallFlows() []Flow {
	return []Flow{
		{Src: 0, Dst: 1, BandwidthMBps: 100, LatencyCycles: 4, Type: Request},
		{Src: 1, Dst: 0, BandwidthMBps: 50, LatencyCycles: 0, Type: Response},
		{Src: 0, Dst: 3, BandwidthMBps: 200, LatencyCycles: 6, Type: Request},
		{Src: 2, Dst: 3, BandwidthMBps: 400, LatencyCycles: 2, Type: Request},
	}
}

func mustGraph(t *testing.T) *CommGraph {
	t.Helper()
	g, err := NewCommGraph(smallCores(), smallFlows())
	if err != nil {
		t.Fatalf("NewCommGraph: %v", err)
	}
	return g
}

func TestNewCommGraphValid(t *testing.T) {
	g := mustGraph(t)
	if g.NumCores() != 4 || g.NumFlows() != 4 {
		t.Fatalf("unexpected sizes: %d cores, %d flows", g.NumCores(), g.NumFlows())
	}
	if g.NumLayers() != 2 {
		t.Errorf("NumLayers = %d, want 2", g.NumLayers())
	}
	if g.CoreIndex("dsp") != 2 {
		t.Errorf("CoreIndex(dsp) = %d, want 2", g.CoreIndex("dsp"))
	}
	if g.CoreIndex("nope") != -1 {
		t.Errorf("CoreIndex(nope) = %d, want -1", g.CoreIndex("nope"))
	}
}

func TestNewCommGraphErrors(t *testing.T) {
	cores := smallCores()
	flows := smallFlows()

	tests := []struct {
		name   string
		mutate func(cs []Core, fs []Flow) ([]Core, []Flow)
	}{
		{"duplicate name", func(cs []Core, fs []Flow) ([]Core, []Flow) {
			cs[1].Name = "cpu"
			return cs, fs
		}},
		{"empty name", func(cs []Core, fs []Flow) ([]Core, []Flow) {
			cs[0].Name = ""
			return cs, fs
		}},
		{"zero size", func(cs []Core, fs []Flow) ([]Core, []Flow) {
			cs[0].Width = 0
			return cs, fs
		}},
		{"negative layer", func(cs []Core, fs []Flow) ([]Core, []Flow) {
			cs[0].Layer = -1
			return cs, fs
		}},
		{"flow out of range", func(cs []Core, fs []Flow) ([]Core, []Flow) {
			fs[0].Dst = 99
			return cs, fs
		}},
		{"self loop", func(cs []Core, fs []Flow) ([]Core, []Flow) {
			fs[0].Dst = fs[0].Src
			return cs, fs
		}},
		{"zero bandwidth", func(cs []Core, fs []Flow) ([]Core, []Flow) {
			fs[0].BandwidthMBps = 0
			return cs, fs
		}},
		{"negative latency", func(cs []Core, fs []Flow) ([]Core, []Flow) {
			fs[0].LatencyCycles = -1
			return cs, fs
		}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			cs := append([]Core(nil), cores...)
			fs := append([]Flow(nil), flows...)
			cs, fs = tc.mutate(cs, fs)
			if _, err := NewCommGraph(cs, fs); err == nil {
				t.Errorf("expected error for %s", tc.name)
			}
		})
	}
}

func TestGraphQueries(t *testing.T) {
	g := mustGraph(t)
	if bw := g.MaxBandwidth(); bw != 400 {
		t.Errorf("MaxBandwidth = %v, want 400", bw)
	}
	if lat := g.MinLatency(); lat != 2 {
		t.Errorf("MinLatency = %v, want 2", lat)
	}
	if tb := g.TotalBandwidth(); tb != 750 {
		t.Errorf("TotalBandwidth = %v, want 750", tb)
	}
	if fl := g.InterLayerFlows(); len(fl) != 1 {
		t.Errorf("InterLayerFlows = %d, want 1", len(fl))
	}
	if bw := g.FlowsBetween(0, 1); bw != 100 {
		t.Errorf("FlowsBetween(0,1) = %v, want 100", bw)
	}
	if bw := g.FlowsBetween(3, 0); bw != 0 {
		t.Errorf("FlowsBetween(3,0) = %v, want 0", bw)
	}
	if l0 := g.CoresInLayer(0); len(l0) != 2 || l0[0] != 0 || l0[1] != 1 {
		t.Errorf("CoresInLayer(0) = %v", l0)
	}
	hist := g.LayerHistogram()
	if len(hist) != 2 || hist[0] != 2 || hist[1] != 2 {
		t.Errorf("LayerHistogram = %v", hist)
	}
}

func TestEmptyGraphQueries(t *testing.T) {
	g, err := NewCommGraph(nil, nil)
	if err != nil {
		t.Fatalf("empty graph should be valid: %v", err)
	}
	if g.MaxBandwidth() != 0 || g.MinLatency() != 0 || g.TotalBandwidth() != 0 {
		t.Error("empty graph aggregates should be zero")
	}
	if g.NumLayers() != 1 {
		t.Errorf("NumLayers of empty graph = %d, want 1", g.NumLayers())
	}
}

func TestCloneAndFlatten(t *testing.T) {
	g := mustGraph(t)
	c := g.Clone()
	c.Cores[0].Name = "changed"
	if g.Cores[0].Name != "cpu" {
		t.Error("Clone is not deep")
	}
	flat := g.Flatten2D()
	if flat.NumLayers() != 1 {
		t.Errorf("Flatten2D layers = %d, want 1", flat.NumLayers())
	}
	if g.NumLayers() != 2 {
		t.Error("Flatten2D mutated the original")
	}
}

func TestFlowsByBandwidth(t *testing.T) {
	g := mustGraph(t)
	order := g.FlowsByBandwidth()
	if len(order) != 4 {
		t.Fatalf("order length %d", len(order))
	}
	for i := 1; i < len(order); i++ {
		if g.Flows[order[i-1]].BandwidthMBps < g.Flows[order[i]].BandwidthMBps {
			t.Errorf("order not descending at %d", i)
		}
	}
	if order[0] != 3 {
		t.Errorf("heaviest flow should be index 3, got %d", order[0])
	}
}

func TestCoreGeometry(t *testing.T) {
	c := Core{Name: "x", Width: 2, Height: 4, X: 1, Y: 1, Layer: 2}
	r := c.Rect()
	if r.W != 2 || r.H != 4 || r.X != 1 || r.Y != 1 {
		t.Errorf("Rect = %v", r)
	}
	if ctr := c.Center(); ctr.X != 2 || ctr.Y != 3 {
		t.Errorf("Center = %v", ctr)
	}
	if c3 := c.Center3D(); c3.Layer != 2 {
		t.Errorf("Center3D layer = %d", c3.Layer)
	}
}

func TestMessageTypeString(t *testing.T) {
	if Request.String() != "request" || Response.String() != "response" {
		t.Error("MessageType.String mismatch")
	}
	if MessageType(9).String() == "" {
		t.Error("unknown MessageType should still produce a string")
	}
}

func TestValidateAfterMutation(t *testing.T) {
	g := mustGraph(t)
	g.Cores[1].Name = "cpu" // duplicate
	if err := g.Validate(); err == nil {
		t.Error("Validate should detect duplicate after mutation")
	}
	g.Cores[1].Name = "renamed"
	if err := g.Validate(); err != nil {
		t.Errorf("Validate after fix: %v", err)
	}
	if g.CoreIndex("renamed") != 1 {
		t.Error("Validate should rebuild the name index")
	}
}

func TestSummary(t *testing.T) {
	g := mustGraph(t)
	s := g.Summary()
	if !strings.Contains(s, "4 cores") || !strings.Contains(s, "2 layer") {
		t.Errorf("Summary = %q", s)
	}
	names := g.SortedCoreNames()
	if len(names) != 4 || names[0] != "cpu" {
		t.Errorf("SortedCoreNames = %v", names)
	}
}

func TestSpecRoundTrip(t *testing.T) {
	g := mustGraph(t)

	var coreBuf, commBuf strings.Builder
	if err := WriteCoreSpec(&coreBuf, g.Cores); err != nil {
		t.Fatalf("WriteCoreSpec: %v", err)
	}
	if err := WriteCommSpec(&commBuf, g); err != nil {
		t.Fatalf("WriteCommSpec: %v", err)
	}

	g2, err := LoadDesign(strings.NewReader(coreBuf.String()), strings.NewReader(commBuf.String()))
	if err != nil {
		t.Fatalf("LoadDesign: %v", err)
	}
	if g2.NumCores() != g.NumCores() || g2.NumFlows() != g.NumFlows() {
		t.Fatalf("round trip lost entities: %d/%d vs %d/%d",
			g2.NumCores(), g2.NumFlows(), g.NumCores(), g.NumFlows())
	}
	for i := range g.Cores {
		if g.Cores[i] != g2.Cores[i] {
			t.Errorf("core %d mismatch: %+v vs %+v", i, g.Cores[i], g2.Cores[i])
		}
	}
	for i := range g.Flows {
		if g.Flows[i] != g2.Flows[i] {
			t.Errorf("flow %d mismatch: %+v vs %+v", i, g.Flows[i], g2.Flows[i])
		}
	}
}

func TestParseCoreSpecErrors(t *testing.T) {
	bad := []string{
		"core only 3 fields",
		"notcore a 1 1 0 0 0",
		"core a x 1 0 0 0",
		"core a 1 1 0 0 zz",
		"core a 1 1 0 0 0 weird",
	}
	for _, line := range bad {
		if _, err := ParseCoreSpec(strings.NewReader(line)); err == nil {
			t.Errorf("ParseCoreSpec(%q) should fail", line)
		}
	}
	// Comments and blank lines are fine.
	ok := "# header\n\ncore a 1 1 0 0 0 # trailing comment\n"
	cores, err := ParseCoreSpec(strings.NewReader(ok))
	if err != nil {
		t.Fatalf("ParseCoreSpec(ok): %v", err)
	}
	if len(cores) != 1 || cores[0].Name != "a" {
		t.Errorf("cores = %+v", cores)
	}
}

func TestParseCommSpecErrors(t *testing.T) {
	cores := []Core{{Name: "a", Width: 1, Height: 1}, {Name: "b", Width: 1, Height: 1}}
	bad := []string{
		"flow a b 100 0",                // too few fields
		"flow a c 100 0 request",        // unknown core
		"flow a b xx 0 request",         // bad bandwidth
		"flow a b 100 yy request",       // bad latency
		"flow a b 100 0 neither",        // bad type
		"notflow a b 100 0 request",     // wrong keyword
		"flow a b 100 0 request extra7", // too many fields
	}
	for _, line := range bad {
		if _, err := ParseCommSpec(strings.NewReader(line), cores); err == nil {
			t.Errorf("ParseCommSpec(%q) should fail", line)
		}
	}
	flows, err := ParseCommSpec(strings.NewReader("flow a b 128 6 response\n"), cores)
	if err != nil {
		t.Fatalf("ParseCommSpec(ok): %v", err)
	}
	if len(flows) != 1 || flows[0].Type != Response || flows[0].BandwidthMBps != 128 {
		t.Errorf("flows = %+v", flows)
	}
}
