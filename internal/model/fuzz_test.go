package model_test

// Fuzz harness for the spec parsers: arbitrary (malformed) core and
// communication specification texts must never panic the parsers, and any
// design that parses successfully must survive a Write -> Parse round trip
// with full equality — the writers and parsers are exact inverses on the
// parsers' image.

import (
	"strings"
	"testing"

	"sunfloor3d/internal/model"
)

func FuzzParseSpecs(f *testing.F) {
	// Seed corpus: a valid pair, comment/blank handling, the mem marker,
	// scientific-notation floats, and a sampler of malformed inputs (wrong
	// keywords, bad numbers, unknown endpoints, duplicate names, negative
	// values, short and overlong lines).
	f.Add("core a 1 1 0 0 0\ncore b 1 1 2 0 1 mem\n", "flow a b 100 6 request\nflow b a 50 0 response\n")
	f.Add("# header\n\ncore a 1.5 2.5 0.25 0.75 2 # trailing\n", "# flows\n\n")
	f.Add("core a 1e-3 1e3 0 0 0\n", "flow a a 1 1 request\n")
	f.Add("core a 1 1 0 0 0\ncore a 1 1 0 0 0\n", "flow a a 100 0 request\n")
	f.Add("core a x 1 0 0 0\n", "flow a b -5 0 request\n")
	f.Add("notcore a 1 1 0 0 0\n", "notflow a b 1 1 request\n")
	f.Add("core a 1 1 0 0 zz\ncore b 1 1 0 0 -1\n", "flow a ghost 10 2 neither\n")
	f.Add("core only 3\n", "flow a b 100 0 request extra\n")
	f.Add("", "")

	f.Fuzz(func(t *testing.T, coreSpec, commSpec string) {
		cores, err := model.ParseCoreSpec(strings.NewReader(coreSpec))
		if err != nil {
			return
		}
		flows, err := model.ParseCommSpec(strings.NewReader(commSpec), cores)
		if err != nil {
			return
		}
		g, err := model.NewCommGraph(cores, flows)
		if err != nil {
			return
		}

		// Write -> Parse must reproduce the design exactly: %g emits the
		// shortest float representation that round-trips, so every parsed
		// value survives bit-for-bit.
		var coreOut, commOut strings.Builder
		if err := model.WriteCoreSpec(&coreOut, g.Cores); err != nil {
			t.Fatalf("WriteCoreSpec: %v", err)
		}
		if err := model.WriteCommSpec(&commOut, g); err != nil {
			t.Fatalf("WriteCommSpec: %v", err)
		}
		g2, err := model.LoadDesign(strings.NewReader(coreOut.String()), strings.NewReader(commOut.String()))
		if err != nil {
			t.Fatalf("round trip of a valid design failed to parse: %v\ncores:\n%s\ncomm:\n%s",
				err, coreOut.String(), commOut.String())
		}
		if len(g2.Cores) != len(g.Cores) || len(g2.Flows) != len(g.Flows) {
			t.Fatalf("round trip lost entities: %d/%d cores, %d/%d flows",
				len(g2.Cores), len(g.Cores), len(g2.Flows), len(g.Flows))
		}
		for i := range g.Cores {
			if g.Cores[i] != g2.Cores[i] {
				t.Fatalf("core %d round-trip mismatch: %+v vs %+v", i, g.Cores[i], g2.Cores[i])
			}
		}
		for i := range g.Flows {
			if g.Flows[i] != g2.Flows[i] {
				t.Fatalf("flow %d round-trip mismatch: %+v vs %+v", i, g.Flows[i], g2.Flows[i])
			}
		}

		// A second write of the reparsed design must be byte-identical: the
		// writers are deterministic on the parsers' image.
		var coreOut2, commOut2 strings.Builder
		if err := model.WriteCoreSpec(&coreOut2, g2.Cores); err != nil {
			t.Fatal(err)
		}
		if err := model.WriteCommSpec(&commOut2, g2); err != nil {
			t.Fatal(err)
		}
		if coreOut.String() != coreOut2.String() || commOut.String() != commOut2.String() {
			t.Fatal("second serialisation differs from the first")
		}
	})
}
