package model

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// The design flow of the paper takes two input files: a core specification
// file (core names, sizes, positions and 3-D layer assignment) and a
// communication specification file (bandwidth, latency constraint and message
// type of every traffic flow). This file implements a simple, line-oriented
// text format for both, together with the corresponding writers, so that the
// cmd/ tools can exchange designs.
//
// Core specification format (whitespace separated, '#' starts a comment):
//
//	core <name> <width_mm> <height_mm> <x_mm> <y_mm> <layer> [mem]
//
// Communication specification format:
//
//	flow <src_core> <dst_core> <bandwidth_MBps> <latency_cycles> <request|response>
//
// A latency of 0 means "unconstrained".

// ParseCoreSpec reads a core specification from r and returns the cores in
// file order.
func ParseCoreSpec(r io.Reader) ([]Core, error) {
	var cores []Core
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		fields, err := specFields(sc.Text())
		if err != nil {
			return nil, fmt.Errorf("core spec line %d: %w", lineNo, err)
		}
		if fields == nil {
			continue
		}
		if fields[0] != "core" {
			return nil, fmt.Errorf("core spec line %d: expected 'core', got %q", lineNo, fields[0])
		}
		if len(fields) < 7 || len(fields) > 8 {
			return nil, fmt.Errorf("core spec line %d: expected 7 or 8 fields, got %d", lineNo, len(fields))
		}
		c := Core{Name: fields[1]}
		vals := make([]float64, 4)
		for i := 0; i < 4; i++ {
			v, err := strconv.ParseFloat(fields[2+i], 64)
			if err != nil {
				return nil, fmt.Errorf("core spec line %d: bad number %q: %w", lineNo, fields[2+i], err)
			}
			vals[i] = v
		}
		c.Width, c.Height, c.X, c.Y = vals[0], vals[1], vals[2], vals[3]
		layer, err := strconv.Atoi(fields[6])
		if err != nil {
			return nil, fmt.Errorf("core spec line %d: bad layer %q: %w", lineNo, fields[6], err)
		}
		c.Layer = layer
		if len(fields) == 8 {
			if fields[7] != "mem" {
				return nil, fmt.Errorf("core spec line %d: unexpected trailing field %q", lineNo, fields[7])
			}
			c.IsMemory = true
		}
		cores = append(cores, c)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("reading core spec: %w", err)
	}
	return cores, nil
}

// ParseCommSpec reads a communication specification from r. The cores slice
// is needed to resolve core names to indices.
func ParseCommSpec(r io.Reader, cores []Core) ([]Flow, error) {
	idx := make(map[string]int, len(cores))
	for i, c := range cores {
		idx[c.Name] = i
	}
	var flows []Flow
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		fields, err := specFields(sc.Text())
		if err != nil {
			return nil, fmt.Errorf("comm spec line %d: %w", lineNo, err)
		}
		if fields == nil {
			continue
		}
		if fields[0] != "flow" {
			return nil, fmt.Errorf("comm spec line %d: expected 'flow', got %q", lineNo, fields[0])
		}
		if len(fields) != 6 {
			return nil, fmt.Errorf("comm spec line %d: expected 6 fields, got %d", lineNo, len(fields))
		}
		src, ok := idx[fields[1]]
		if !ok {
			return nil, fmt.Errorf("comm spec line %d: unknown source core %q", lineNo, fields[1])
		}
		dst, ok := idx[fields[2]]
		if !ok {
			return nil, fmt.Errorf("comm spec line %d: unknown destination core %q", lineNo, fields[2])
		}
		bw, err := strconv.ParseFloat(fields[3], 64)
		if err != nil {
			return nil, fmt.Errorf("comm spec line %d: bad bandwidth %q: %w", lineNo, fields[3], err)
		}
		lat, err := strconv.ParseFloat(fields[4], 64)
		if err != nil {
			return nil, fmt.Errorf("comm spec line %d: bad latency %q: %w", lineNo, fields[4], err)
		}
		var mt MessageType
		switch fields[5] {
		case "request":
			mt = Request
		case "response":
			mt = Response
		default:
			return nil, fmt.Errorf("comm spec line %d: bad message type %q", lineNo, fields[5])
		}
		flows = append(flows, Flow{Src: src, Dst: dst, BandwidthMBps: bw, LatencyCycles: lat, Type: mt})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("reading comm spec: %w", err)
	}
	return flows, nil
}

// specFields strips comments and splits a spec line into fields. It returns
// nil for blank or comment-only lines.
func specFields(line string) ([]string, error) {
	if i := strings.IndexByte(line, '#'); i >= 0 {
		line = line[:i]
	}
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return nil, nil
	}
	return fields, nil
}

// WriteCoreSpec writes the cores to w in the core specification format.
func WriteCoreSpec(w io.Writer, cores []Core) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# core <name> <width_mm> <height_mm> <x_mm> <y_mm> <layer> [mem]")
	for _, c := range cores {
		mem := ""
		if c.IsMemory {
			mem = " mem"
		}
		fmt.Fprintf(bw, "core %s %g %g %g %g %d%s\n", c.Name, c.Width, c.Height, c.X, c.Y, c.Layer, mem)
	}
	return bw.Flush()
}

// WriteCommSpec writes the flows to w in the communication specification
// format.
func WriteCommSpec(w io.Writer, g *CommGraph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# flow <src> <dst> <bandwidth_MBps> <latency_cycles> <request|response>")
	for _, f := range g.Flows {
		fmt.Fprintf(bw, "flow %s %s %g %g %s\n",
			g.Cores[f.Src].Name, g.Cores[f.Dst].Name, f.BandwidthMBps, f.LatencyCycles, f.Type)
	}
	return bw.Flush()
}

// LoadDesign parses the two specification readers and returns the validated
// communication graph.
func LoadDesign(coreSpec, commSpec io.Reader) (*CommGraph, error) {
	cores, err := ParseCoreSpec(coreSpec)
	if err != nil {
		return nil, err
	}
	flows, err := ParseCommSpec(commSpec, cores)
	if err != nil {
		return nil, err
	}
	return NewCommGraph(cores, flows)
}

// Summary returns a short human-readable description of the design, suitable
// for tool banners and logs.
func (g *CommGraph) Summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d cores, %d flows, %d layer(s)", g.NumCores(), g.NumFlows(), g.NumLayers())
	fmt.Fprintf(&sb, ", total bandwidth %.1f MB/s", g.TotalBandwidth())
	hist := g.LayerHistogram()
	if len(hist) > 1 {
		parts := make([]string, len(hist))
		for i, n := range hist {
			parts[i] = fmt.Sprintf("L%d:%d", i, n)
		}
		fmt.Fprintf(&sb, " [%s]", strings.Join(parts, " "))
	}
	return sb.String()
}

// FlowsByBandwidth returns the indices of all flows sorted by decreasing
// bandwidth (ties broken by flow index for determinism). The path-computation
// step routes flows in this order so that the heaviest flows get the shortest
// paths.
func (g *CommGraph) FlowsByBandwidth() []int {
	idx := make([]int, len(g.Flows))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return g.Flows[idx[a]].BandwidthMBps > g.Flows[idx[b]].BandwidthMBps
	})
	return idx
}
