package model_test

// Table-driven error-path tests for the spec parsers and graph validation:
// every malformed input is paired with the exact failure message fragment it
// must produce, so error texts — which the CLI surfaces verbatim — stay
// stable and specific.

import (
	"strings"
	"testing"

	"sunfloor3d/internal/model"
)

func TestSpecErrorMessages(t *testing.T) {
	const goodCores = "core a 1 1 0 0 0\ncore b 1 1 2 0 1\n"
	cases := []struct {
		name    string
		cores   string
		comm    string
		wantErr string
	}{
		{
			name:    "duplicate core names",
			cores:   "core a 1 1 0 0 0\ncore a 1 1 2 0 0\n",
			comm:    "flow a a 100 0 request\n",
			wantErr: `duplicate core name "a"`,
		},
		{
			name:    "unknown flow source",
			cores:   goodCores,
			comm:    "flow ghost b 100 0 request\n",
			wantErr: `comm spec line 1: unknown source core "ghost"`,
		},
		{
			name:    "unknown flow destination",
			cores:   goodCores,
			comm:    "flow a ghost 100 0 request\n",
			wantErr: `comm spec line 1: unknown destination core "ghost"`,
		},
		{
			name:    "negative bandwidth",
			cores:   goodCores,
			comm:    "flow a b -100 0 request\n",
			wantErr: `flow 0 ("a" -> "b") has non-positive bandwidth -100`,
		},
		{
			name:    "zero bandwidth",
			cores:   goodCores,
			comm:    "flow a b 0 0 request\n",
			wantErr: "non-positive bandwidth 0",
		},
		{
			name:    "NaN bandwidth",
			cores:   goodCores,
			comm:    "flow a b NaN 0 request\n",
			wantErr: "non-positive bandwidth NaN",
		},
		{
			name:    "bad layer index",
			cores:   "core a 1 1 0 0 first\n",
			comm:    "",
			wantErr: `core spec line 1: bad layer "first"`,
		},
		{
			name:    "negative layer index",
			cores:   "core a 1 1 0 0 -2\ncore b 1 1 0 0 0\n",
			comm:    "flow a b 10 0 request\n",
			wantErr: `core "a" has negative layer -2`,
		},
		{
			name:    "non-finite core size",
			cores:   "core a Inf 1 0 0 0\ncore b 1 1 0 0 0\n",
			comm:    "flow a b 10 0 request\n",
			wantErr: `core "a" has a non-finite geometry value`,
		},
		{
			name:    "negative latency",
			cores:   goodCores,
			comm:    "flow a b 100 -3 request\n",
			wantErr: "flow 0 has negative latency constraint",
		},
		{
			name:    "self loop",
			cores:   goodCores,
			comm:    "flow a a 100 0 request\n",
			wantErr: `flow 0 is a self loop on core "a"`,
		},
		{
			name:    "bad message type",
			cores:   goodCores,
			comm:    "flow a b 100 0 broadcast\n",
			wantErr: `comm spec line 1: bad message type "broadcast"`,
		},
		{
			name:    "wrong core keyword",
			cores:   "switch a 1 1 0 0 0\n",
			comm:    "",
			wantErr: `core spec line 1: expected 'core', got "switch"`,
		},
		{
			name:    "core field count",
			cores:   "core a 1 1\n",
			comm:    "",
			wantErr: "core spec line 1: expected 7 or 8 fields, got 4",
		},
		{
			name:    "comm field count",
			cores:   goodCores,
			comm:    "flow a b 100\n",
			wantErr: "comm spec line 1: expected 6 fields, got 4",
		},
		{
			name:    "bad mem marker",
			cores:   "core a 1 1 0 0 0 memory\n",
			comm:    "",
			wantErr: `core spec line 1: unexpected trailing field "memory"`,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			_, err := model.LoadDesign(strings.NewReader(tc.cores), strings.NewReader(tc.comm))
			if err == nil {
				t.Fatalf("LoadDesign succeeded, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err.Error(), tc.wantErr)
			}
		})
	}
}
