// Package model defines the input data model of the SunFloor 3D flow: the
// cores of the system on chip, their sizes, positions and 3-D layer
// assignment (the core specification), and the communication flows between
// them with bandwidth and latency constraints (the communication
// specification). It corresponds to Definitions 1 and 2 of the paper.
package model

import (
	"fmt"
	"math"
	"sort"

	"sunfloor3d/internal/geom"
)

// finite reports whether v is neither NaN nor an infinity. The spec parsers
// accept anything strconv.ParseFloat does — including "NaN" and "Inf" — so
// graph validation must reject non-finite values explicitly.
func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// MessageType distinguishes request from response traffic. The distinction is
// used by the path-computation step to avoid message-dependent deadlocks by
// routing the two classes on disjoint turn sets.
type MessageType int

const (
	// Request messages travel from initiator cores to target cores.
	Request MessageType = iota
	// Response messages travel from target cores back to initiators.
	Response
)

// String implements fmt.Stringer.
func (m MessageType) String() string {
	switch m {
	case Request:
		return "request"
	case Response:
		return "response"
	default:
		return fmt.Sprintf("MessageType(%d)", int(m))
	}
}

// Core is a hardware block of the SoC (processor, memory, DMA, accelerator,
// peripheral). Its planar position and size within its layer are part of the
// input floorplan; the layer assignment in the 3-D stack is also an input to
// the synthesis flow (Definition 1).
type Core struct {
	// Name is the unique identifier of the core.
	Name string
	// Width and Height are the core dimensions in millimetres.
	Width, Height float64
	// X and Y are the coordinates of the lower-left corner of the core in
	// its layer, in millimetres.
	X, Y float64
	// Layer is the index of the 3-D layer the core is assigned to
	// (0 = bottom die).
	Layer int
	// IsMemory marks target (slave) cores; used by benchmark generators and
	// by the mesh mapper to distinguish initiators from targets.
	IsMemory bool
}

// Rect returns the core outline as a rectangle.
func (c Core) Rect() geom.Rect {
	return geom.Rect{X: c.X, Y: c.Y, W: c.Width, H: c.Height}
}

// Center returns the planar centre of the core.
func (c Core) Center() geom.Point { return c.Rect().Center() }

// Center3D returns the centre of the core as a 3-D point.
func (c Core) Center3D() geom.Point3D {
	p := c.Center()
	return geom.Point3D{X: p.X, Y: p.Y, Layer: c.Layer}
}

// Flow is a directed communication flow between two cores (one edge of the
// communication graph of Definition 2).
type Flow struct {
	// Src and Dst are indices into the CommGraph core slice.
	Src, Dst int
	// BandwidthMBps is the sustained bandwidth demand in MB/s.
	BandwidthMBps float64
	// LatencyCycles is the maximum allowed zero-load latency in NoC cycles
	// (hop count constraint). Zero means unconstrained.
	LatencyCycles float64
	// Type is the message class of the flow.
	Type MessageType
}

// CommGraph is the communication graph G(V, E) of Definition 2 together with
// the core descriptions of Definition 1.
type CommGraph struct {
	Cores []Core
	Flows []Flow

	nameIdx map[string]int
}

// NewCommGraph builds a communication graph from cores and flows and validates
// it. It returns an error if a core name is duplicated, a flow references an
// unknown core index, or a flow has a non-positive bandwidth.
func NewCommGraph(cores []Core, flows []Flow) (*CommGraph, error) {
	g := &CommGraph{
		Cores:   append([]Core(nil), cores...),
		Flows:   append([]Flow(nil), flows...),
		nameIdx: make(map[string]int, len(cores)),
	}
	for i, c := range g.Cores {
		if c.Name == "" {
			return nil, fmt.Errorf("core %d has an empty name", i)
		}
		if _, dup := g.nameIdx[c.Name]; dup {
			return nil, fmt.Errorf("duplicate core name %q", c.Name)
		}
		// The comparisons below are false for NaN, so non-finite values need
		// an explicit check: the spec parsers accept anything ParseFloat does.
		if !finite(c.Width) || !finite(c.Height) || !finite(c.X) || !finite(c.Y) {
			return nil, fmt.Errorf("core %q has a non-finite geometry value", c.Name)
		}
		if c.Width <= 0 || c.Height <= 0 {
			return nil, fmt.Errorf("core %q has non-positive size %gx%g", c.Name, c.Width, c.Height)
		}
		if c.Layer < 0 {
			return nil, fmt.Errorf("core %q has negative layer %d", c.Name, c.Layer)
		}
		g.nameIdx[c.Name] = i
	}
	for i, f := range g.Flows {
		if f.Src < 0 || f.Src >= len(g.Cores) || f.Dst < 0 || f.Dst >= len(g.Cores) {
			return nil, fmt.Errorf("flow %d references core out of range (%d -> %d)", i, f.Src, f.Dst)
		}
		if f.Src == f.Dst {
			return nil, fmt.Errorf("flow %d is a self loop on core %q", i, g.Cores[f.Src].Name)
		}
		if !finite(f.BandwidthMBps) || f.BandwidthMBps <= 0 {
			return nil, fmt.Errorf("flow %d (%q -> %q) has non-positive bandwidth %g",
				i, g.Cores[f.Src].Name, g.Cores[f.Dst].Name, f.BandwidthMBps)
		}
		if !finite(f.LatencyCycles) || f.LatencyCycles < 0 {
			return nil, fmt.Errorf("flow %d has negative latency constraint", i)
		}
	}
	return g, nil
}

// CoreIndex returns the index of the named core, or -1 if it does not exist.
func (g *CommGraph) CoreIndex(name string) int {
	if i, ok := g.nameIdx[name]; ok {
		return i
	}
	return -1
}

// NumCores returns the number of cores.
func (g *CommGraph) NumCores() int { return len(g.Cores) }

// NumFlows returns the number of communication flows.
func (g *CommGraph) NumFlows() int { return len(g.Flows) }

// NumLayers returns the number of 3-D layers used by the core assignment
// (highest layer index + 1). A pure 2-D design returns 1.
func (g *CommGraph) NumLayers() int {
	maxL := 0
	for _, c := range g.Cores {
		if c.Layer > maxL {
			maxL = c.Layer
		}
	}
	return maxL + 1
}

// CoresInLayer returns the indices of the cores assigned to the given layer,
// in ascending index order.
func (g *CommGraph) CoresInLayer(layer int) []int {
	var idx []int
	for i, c := range g.Cores {
		if c.Layer == layer {
			idx = append(idx, i)
		}
	}
	return idx
}

// MaxBandwidth returns the maximum flow bandwidth (max_bw in Definition 3).
// It returns 0 for a graph without flows.
func (g *CommGraph) MaxBandwidth() float64 {
	var m float64
	for _, f := range g.Flows {
		if f.BandwidthMBps > m {
			m = f.BandwidthMBps
		}
	}
	return m
}

// MinLatency returns the tightest (smallest non-zero) latency constraint over
// all flows (min_lat in Definition 3). It returns 0 if no flow is
// latency-constrained.
func (g *CommGraph) MinLatency() float64 {
	m := 0.0
	for _, f := range g.Flows {
		if f.LatencyCycles > 0 && (m == 0 || f.LatencyCycles < m) {
			m = f.LatencyCycles
		}
	}
	return m
}

// TotalBandwidth returns the sum of the bandwidth of all flows in MB/s.
func (g *CommGraph) TotalBandwidth() float64 {
	var t float64
	for _, f := range g.Flows {
		t += f.BandwidthMBps
	}
	return t
}

// InterLayerFlows returns the flows whose source and destination cores are on
// different layers.
func (g *CommGraph) InterLayerFlows() []Flow {
	var out []Flow
	for _, f := range g.Flows {
		if g.Cores[f.Src].Layer != g.Cores[f.Dst].Layer {
			out = append(out, f)
		}
	}
	return out
}

// FlowsBetween returns the total bandwidth of flows from core src to core dst
// (directed).
func (g *CommGraph) FlowsBetween(src, dst int) float64 {
	var bw float64
	for _, f := range g.Flows {
		if f.Src == src && f.Dst == dst {
			bw += f.BandwidthMBps
		}
	}
	return bw
}

// Clone returns a deep copy of the graph.
func (g *CommGraph) Clone() *CommGraph {
	c, err := NewCommGraph(g.Cores, g.Flows)
	if err != nil {
		// A validated graph always clones cleanly.
		panic(fmt.Sprintf("model: clone of valid graph failed: %v", err))
	}
	return c
}

// Flatten2D returns a copy of the graph with every core assigned to layer 0
// and the cores re-floorplanned is left to the caller: positions are kept
// as-is. It is used to derive the 2-D reference implementation of a 3-D
// design.
func (g *CommGraph) Flatten2D() *CommGraph {
	c := g.Clone()
	for i := range c.Cores {
		c.Cores[i].Layer = 0
	}
	return c
}

// LayerHistogram returns, for each layer, the number of cores assigned to it.
func (g *CommGraph) LayerHistogram() []int {
	h := make([]int, g.NumLayers())
	for _, c := range g.Cores {
		h[c.Layer]++
	}
	return h
}

// SortedCoreNames returns all core names in lexicographic order. Useful for
// stable, reproducible reporting.
func (g *CommGraph) SortedCoreNames() []string {
	names := make([]string, len(g.Cores))
	for i, c := range g.Cores {
		names[i] = c.Name
	}
	sort.Strings(names)
	return names
}

// Validate re-runs the construction-time validation. It is useful after the
// caller mutates Cores or Flows in place.
func (g *CommGraph) Validate() error {
	ng, err := NewCommGraph(g.Cores, g.Flows)
	if err != nil {
		return err
	}
	g.nameIdx = ng.nameIdx
	return nil
}
