// Package sim is a deterministic, seedable flit-level wormhole simulator for
// synthesized SunFloor 3D topologies. It executes a routed topology — the
// switches, the committed per-flow paths and the link pipeline stages implied
// by the switch positions — under traffic derived from the input communication
// graph, with finite virtual-channel buffers, credit-based flow control and
// per-output-port round-robin arbitration. The simulator is the dynamic
// cross-check of the analytic models: with zero contention the simulated
// head-flit latency of every flow equals Topology.FlowLatencyCycles exactly,
// and a deadlock detected by the runtime watchdog on a topology whose channel
// dependency graph is acyclic would falsify the static deadlock-freedom
// argument of internal/route.
//
// Determinism contract: for a fixed topology, Config and seed the simulation
// is fully reproducible — same injection times, same arbitration decisions,
// byte-identical Stats. The seed feeds only the bursty profile's on/off
// period draws; the uniform and hotspot profiles are rate-accumulator based
// and do not consume randomness at all.
//
// Execution core: the production engine keeps packets in an index-based
// arena with a free list, buffers flits in fixed-capacity ring buffers (the
// credit bound makes VC depth exact), resolves each packet's output port
// once per hop through dense per-switch routing tables, and schedules work
// through active sets — idle NIs, switches without an owned VC and output
// ports without a waiting head flit cost one comparison per cycle, and a
// fully drained network fast-forwards the clock to the next injector event.
// A steady-state cycle performs no heap allocation. The pre-optimization
// stepper is retained behind Config.Reference as the equivalence oracle and
// benchmark baseline; both engines produce byte-identical Stats.
package sim

import "fmt"

// Profile selects how packet injection is derived from the flow bandwidths.
type Profile int

const (
	// Uniform injects every flow at its communication-graph bandwidth with a
	// deterministic rate accumulator (no randomness).
	Uniform Profile = iota
	// Bursty alternates exponentially distributed on/off periods per flow.
	// During a burst the flow injects at BurstFactor times its nominal rate
	// (capped at link capacity); the off periods are sized so the long-run
	// average rate still matches the communication graph.
	Bursty
	// Hotspot multiplies the rate of every flow whose destination is the
	// hottest core (the one with the highest total incoming bandwidth) by
	// HotspotFactor, leaving all other flows at their nominal rate.
	Hotspot
)

// String implements fmt.Stringer.
func (p Profile) String() string {
	switch p {
	case Uniform:
		return "uniform"
	case Bursty:
		return "bursty"
	case Hotspot:
		return "hotspot"
	default:
		return fmt.Sprintf("Profile(%d)", int(p))
	}
}

// ParseProfile converts a profile name ("uniform", "bursty", "hotspot") to a
// Profile.
func ParseProfile(s string) (Profile, error) {
	switch s {
	case "uniform":
		return Uniform, nil
	case "bursty":
		return Bursty, nil
	case "hotspot":
		return Hotspot, nil
	default:
		return Uniform, fmt.Errorf("sim: unknown profile %q (valid: uniform, bursty, hotspot)", s)
	}
}

// StatsLevel selects how much of the Stats breakdown a run collects. The
// level never changes the simulation itself — the cycle-by-cycle behaviour
// and every aggregate and per-flow number are identical at every level — it
// only controls which per-resource rows are materialised at the end of the
// run. Sweep-mode simulation (one run per valid design point) typically
// discards the per-link and per-switch tables, so skipping them removes the
// dominant share of collection cost and garbage.
type StatsLevel int

const (
	// StatsFull collects everything: aggregates, per-flow, per-link and
	// per-switch rows. It is the zero value, so existing configurations keep
	// their behaviour.
	StatsFull StatsLevel = iota
	// StatsSummary collects the aggregates and the per-flow rows only;
	// Stats.Links and Stats.Switches stay nil.
	StatsSummary
)

// Config controls one simulation run.
type Config struct {
	// Cycles is the injection horizon: flows inject packets during cycles
	// [0, Cycles).
	Cycles int
	// DrainCycles bounds how long the simulator keeps running after the
	// injection horizon to let in-flight packets reach their destinations.
	DrainCycles int
	// Seed drives the randomised parts of the injection profiles (only the
	// bursty profile draws randomness).
	Seed int64
	// Profile selects the injection profile.
	Profile Profile
	// InjectionScale multiplies every flow's nominal bandwidth (1 = simulate
	// the communication graph as specified).
	InjectionScale float64
	// PacketFlits is the number of flits per packet (head and tail included).
	PacketFlits int
	// VCs is the number of virtual channels per switch input port.
	VCs int
	// BufferFlits is the depth of each virtual-channel buffer, in flits.
	BufferFlits int
	// WatchdogCycles is the runtime deadlock horizon: if flits are buffered in
	// the network and none moves for this many consecutive cycles, the run is
	// aborted with Stats.Deadlock set.
	WatchdogCycles int
	// LivelockCycles is the livelock horizon: if flits keep moving but no
	// packet is delivered for this many consecutive cycles, the run is aborted
	// with Stats.Livelock set.
	LivelockCycles int
	// BurstFactor is the rate multiplier during a bursty-profile burst.
	BurstFactor float64
	// MeanBurstCycles is the mean length of a bursty-profile on period.
	MeanBurstCycles float64
	// HotspotFactor is the rate multiplier of hotspot-destined flows under the
	// hotspot profile.
	HotspotFactor float64
	// StatsLevel selects how much of the Stats breakdown the run collects
	// (StatsFull, the zero value, collects everything).
	StatsLevel StatsLevel
	// DeadLinks lists inter-switch links, as (from, to) switch-ID pairs, that
	// fail during the run: from cycle FaultCycle on a listed link forwards no
	// further flit (flits already in its pipeline still arrive). Listing a
	// link the topology does not have is a build error — fault plans are
	// always expressed against the committed routes. Injection and ejection
	// links cannot fail; manufacturing faults hit the switch fabric.
	DeadLinks [][2]int
	// FaultCycle is the cycle at which the DeadLinks fail (0 = dead from the
	// start of the run).
	FaultCycle int
	// Reference runs the retained pre-optimization execution core instead of
	// the production engine: pointer-based packets allocated per injection,
	// slice-backed queues, map-based routing lookups and a dense cycle loop
	// that scans every NI, switch and port every cycle. Both engines produce
	// byte-identical Stats; the switch exists for the equivalence tests and
	// the before/after benchmarks (BENCH_PR4.json) only.
	Reference bool
}

// DefaultConfig returns the configuration used by the CLI and facade when the
// caller provides none: a 4000-cycle injection window with an equal drain
// budget, four-flit packets, two VCs of four flits each, and watchdog horizons
// comfortably above the deepest link pipelines.
func DefaultConfig() Config {
	return Config{
		Cycles:          4000,
		DrainCycles:     4000,
		Seed:            1,
		Profile:         Uniform,
		InjectionScale:  1.0,
		PacketFlits:     4,
		VCs:             2,
		BufferFlits:     4,
		WatchdogCycles:  500,
		LivelockCycles:  2500,
		BurstFactor:     4.0,
		MeanBurstCycles: 64,
		HotspotFactor:   2.0,
	}
}

// Validate checks the configuration ranges.
func (c Config) Validate() error {
	checks := []struct {
		ok  bool
		msg string
	}{
		{c.Cycles > 0, "Cycles must be positive"},
		{c.DrainCycles >= 0, "DrainCycles must be non-negative"},
		{c.InjectionScale > 0, "InjectionScale must be positive"},
		{c.PacketFlits > 0, "PacketFlits must be positive"},
		{c.VCs > 0, "VCs must be positive"},
		{c.BufferFlits > 0, "BufferFlits must be positive"},
		{c.WatchdogCycles > 0, "WatchdogCycles must be positive"},
		{c.LivelockCycles > 0, "LivelockCycles must be positive"},
		{c.BurstFactor >= 1, "BurstFactor must be at least 1"},
		{c.MeanBurstCycles > 0, "MeanBurstCycles must be positive"},
		{c.HotspotFactor >= 1, "HotspotFactor must be at least 1"},
		{c.FaultCycle >= 0, "FaultCycle must be non-negative"},
		{c.StatsLevel == StatsFull || c.StatsLevel == StatsSummary, "StatsLevel must be StatsFull or StatsSummary"},
	}
	for _, chk := range checks {
		if !chk.ok {
			return fmt.Errorf("sim: %s", chk.msg)
		}
	}
	return nil
}
