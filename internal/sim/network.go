package sim

import (
	"fmt"

	"sunfloor3d/internal/geom"
	"sunfloor3d/internal/topology"
)

// Link kinds. Injection links carry flits from a source core's network
// interface to its switch, internal links connect two switches, and ejection
// links deliver flits from a switch to a destination core.
type linkKind int

const (
	linkInjection linkKind = iota
	linkInternal
	linkEjection
)

// link is one directed physical channel of the simulated network.
type link struct {
	id   int
	kind linkKind
	// from/to are switch IDs; from is -1 on injection links and to is -1 on
	// ejection links, where core identifies the attached core instead.
	from, to int
	core     int
	// stages is the number of pipeline stages the planar span of the link
	// requires at the operating frequency (noclib.LinkPipelineStages).
	stages int

	busy int64 // cycles on which a flit was forwarded onto this link
}

// packet is one in-flight packet: PacketFlits flits following the committed
// route of its flow.
type packet struct {
	flow   int
	flits  int
	path   []int // committed switch path of the flow
	inject int64 // cycle the packet entered its source queue
}

// flit is one flow-control unit buffered in a virtual channel. readyAt models
// the link pipeline: the flit becomes visible to the downstream arbiter once
// the simulation clock reaches readyAt.
type flit struct {
	pkt     *packet
	seq     int // 0 = head, pkt.flits-1 = tail
	readyAt int64
}

// vc is one virtual-channel buffer of a switch input port. A VC is owned by a
// single packet from the cycle its head flit is granted the upstream output
// (or NI) until its tail flit leaves the buffer.
type vc struct {
	owner *packet
	hop   int // index of this input port's switch within owner.path
	q     []flit
	// lastMove is the last cycle a flit left this buffer (or the cycle the VC
	// was allocated); the deadlock detector treats a VC whose ready head has
	// not moved for a whole watchdog horizon as stalled.
	lastMove int64
}

// inputPort is one switch input port (the downstream end of a link) with its
// virtual channels.
type inputPort struct {
	link *link
	vcs  []vc
}

// outputPort is one switch output port (the upstream end of a link). Under
// wormhole switching the port is allocated to one packet from head to tail.
type outputPort struct {
	link *link
	// ds is the input port on the downstream switch (nil for ejection links).
	ds *inputPort
	// alloc is the index into the owning switch's flat candidate list of the
	// (input port, VC) currently holding this output, or -1 when free.
	alloc int
	// dsVC is the downstream VC reserved for the allocated packet.
	dsVC int
	// rr is the round-robin arbitration pointer over the candidate list.
	rr int
}

// switchNode is one simulated switch.
type switchNode struct {
	id      int
	inputs  []*inputPort
	outputs []*outputPort
	// outTo maps a next-hop switch ID to the output port index; outEject maps
	// a destination core to its ejection output port index.
	outTo    map[int]int
	outEject map[int]int

	forwarded int64 // flits forwarded by this switch
}

// ni is the network interface of one source core: an unbounded source queue
// feeding the core's injection link one flit per cycle.
type ni struct {
	core int
	link *link
	ds   *inputPort // input port of the attached switch
	q    []*packet
	cur  *packet
	seq  int
	dsVC int
}

// network is the static structure plus the dynamic state of one simulation.
type network struct {
	top   *topology.Topology
	links []*link
	nodes []*switchNode
	// nis holds the source-core network interfaces, ordered by core index;
	// niOf maps a core index to its NI (nil when the core sources no flow).
	nis  []*ni
	niOf []*ni

	vcs         int
	bufring     int // buffer depth per VC, in flits
	packetFlits int
}

// buildNetwork instantiates the simulation structure for a routed topology.
// Every flow must carry a committed route (topology.Validate must pass).
func buildNetwork(t *topology.Topology, cfg Config) (*network, error) {
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("sim: topology not simulatable: %w", err)
	}
	net := &network{top: t, vcs: cfg.VCs, bufring: cfg.BufferFlits, packetFlits: cfg.PacketFlits}

	nodes := make([]*switchNode, t.NumSwitches())
	for i := range nodes {
		nodes[i] = &switchNode{id: i, outTo: make(map[int]int), outEject: make(map[int]int)}
	}
	net.nodes = nodes

	isSrc := make([]bool, t.Design.NumCores())
	isDst := make([]bool, t.Design.NumCores())
	for _, f := range t.Design.Flows {
		isSrc[f.Src] = true
		isDst[f.Dst] = true
	}

	addLink := func(l *link) *link {
		l.id = len(net.links)
		net.links = append(net.links, l)
		return l
	}
	attachInput := func(s int, l *link) *inputPort {
		p := &inputPort{link: l, vcs: make([]vc, cfg.VCs)}
		nodes[s].inputs = append(nodes[s].inputs, p)
		return p
	}
	attachOutput := func(s int, l *link, ds *inputPort) int {
		o := &outputPort{link: l, ds: ds, alloc: -1}
		nodes[s].outputs = append(nodes[s].outputs, o)
		return len(nodes[s].outputs) - 1
	}

	// Injection links, in core order (deterministic network layout).
	net.niOf = make([]*ni, t.Design.NumCores())
	for c := 0; c < t.Design.NumCores(); c++ {
		if !isSrc[c] {
			continue
		}
		sw := t.CoreAttach[c]
		planar := t.Design.Cores[c].Rect().Center()
		stages := t.Lib.LinkPipelineStages(geom.Manhattan(planar, t.Switches[sw].Pos), t.FreqMHz)
		l := addLink(&link{kind: linkInjection, from: -1, to: sw, core: c, stages: stages})
		in := attachInput(sw, l)
		n := &ni{core: c, link: l, ds: in}
		net.nis = append(net.nis, n)
		net.niOf[c] = n
	}

	// Switch-to-switch links, in the deterministic (From, To) order of
	// SwitchLinks.
	for _, sl := range t.SwitchLinks() {
		planar := geom.Manhattan(t.Switches[sl.From].Pos, t.Switches[sl.To].Pos)
		stages := t.Lib.LinkPipelineStages(planar, t.FreqMHz)
		l := addLink(&link{kind: linkInternal, from: sl.From, to: sl.To, core: -1, stages: stages})
		in := attachInput(sl.To, l)
		nodes[sl.From].outTo[sl.To] = attachOutput(sl.From, l, in)
	}

	// Ejection links, in core order.
	for c := 0; c < t.Design.NumCores(); c++ {
		if !isDst[c] {
			continue
		}
		sw := t.CoreAttach[c]
		planar := t.Design.Cores[c].Rect().Center()
		stages := t.Lib.LinkPipelineStages(geom.Manhattan(planar, t.Switches[sw].Pos), t.FreqMHz)
		l := addLink(&link{kind: linkEjection, from: sw, to: -1, core: c, stages: stages})
		nodes[sw].outEject[c] = attachOutput(sw, l, nil)
	}
	return net, nil
}

// nextOutput returns the output port the packet requests at the switch where
// the given input VC lives: the link towards the next switch of its path, or
// the ejection link of its destination core at the last hop.
func (net *network) nextOutput(s *switchNode, v *vc) *outputPort {
	pkt := v.owner
	if v.hop == len(pkt.path)-1 {
		dst := net.top.Design.Flows[pkt.flow].Dst
		return s.outputs[s.outEject[dst]]
	}
	return s.outputs[s.outTo[pkt.path[v.hop+1]]]
}
