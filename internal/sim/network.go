package sim

import (
	"fmt"
	"math"

	"sunfloor3d/internal/geom"
	"sunfloor3d/internal/topology"
)

// Link kinds. Injection links carry flits from a source core's network
// interface to its switch, internal links connect two switches, and ejection
// links deliver flits from a switch to a destination core.
type linkKind int

const (
	linkInjection linkKind = iota
	linkInternal
	linkEjection
)

// link is one directed physical channel of the simulated network.
type link struct {
	id   int
	kind linkKind
	// from/to are switch IDs; from is -1 on injection links and to is -1 on
	// ejection links, where core identifies the attached core instead.
	from, to int
	core     int
	// stages is the number of pipeline stages the planar span of the link
	// requires at the operating frequency (noclib.LinkPipelineStages).
	stages int
	// deadAt is the cycle the link fails (Config.DeadLinks/FaultCycle);
	// neverDead for a healthy link. From that cycle on the upstream output
	// port forwards nothing onto the link; flits already in its pipeline
	// still arrive.
	deadAt int64

	busy int64 // cycles on which a flit was forwarded onto this link
}

// neverDead is the deadAt value of a link that never fails.
const neverDead = int64(math.MaxInt64)

// applyDeadLinks marks the links named by cfg.DeadLinks dead at
// cfg.FaultCycle. It is shared by both engines so the fault semantics cannot
// drift; a pair naming no inter-switch link of the topology is an error.
func applyDeadLinks(links []*link, cfg Config) error {
	if len(cfg.DeadLinks) == 0 {
		return nil
	}
	byPair := make(map[[2]int]*link)
	for _, l := range links {
		if l.kind == linkInternal {
			byPair[[2]int{l.from, l.to}] = l
		}
	}
	for _, dl := range cfg.DeadLinks {
		l, ok := byPair[dl]
		if !ok {
			return fmt.Errorf("sim: dead link %d->%d is not an inter-switch link of the topology", dl[0], dl[1])
		}
		l.deadAt = int64(cfg.FaultCycle)
	}
	return nil
}

// packet is one in-flight packet: PacketFlits flits following the committed
// route of its flow. Packets live in the network's arena and are referenced
// by index, so injecting a packet costs no heap allocation and delivering one
// returns its slot to the free list.
type packet struct {
	flow   int32
	flits  int32
	inject int64 // cycle the packet entered its source queue
	path   []int // committed switch path of the flow (aliases the topology)
}

// flit is one flow-control unit buffered in a virtual channel. pkt indexes
// the packet arena; readyAt models the link pipeline: the flit becomes
// visible to the downstream arbiter once the simulation clock reaches
// readyAt.
type flit struct {
	pkt     int32
	seq     int32 // 0 = head, pkt.flits-1 = tail
	readyAt int64
}

// vc is one virtual-channel buffer of a switch input port: a fixed-capacity
// ring of BufferFlits flits (the credit bound makes the ring exact, so the
// buffer never allocates after construction). A VC is owned by a single
// packet from the cycle its head flit is granted the upstream output (or NI)
// until its tail flit leaves the buffer; out caches the output port the
// packet requests at this switch, resolved once per hop when ownership is
// granted instead of once per flit inside the arbiter.
type vc struct {
	owner int32 // packet arena index, -1 when free
	hop   int32 // index of this input port's switch within owner's path
	out   int32 // output-port index within the switch, cached for the residency
	head  int32 // ring read position
	n     int32 // flits currently buffered
	// cwIdx is the circular-wait detector's transient index of this VC in its
	// stalled list (-1 outside a detection pass).
	cwIdx int32
	// lastMove is the last cycle a flit left this buffer (or the cycle the VC
	// was allocated); the deadlock detector treats a VC whose ready head has
	// not moved for a whole watchdog horizon as stalled.
	lastMove int64
	buf      []flit // capacity BufferFlits, sliced out of the network's backing
}

func (v *vc) front() flit { return v.buf[v.head] }

func (v *vc) push(f flit) {
	i := int(v.head) + int(v.n)
	if i >= len(v.buf) {
		i -= len(v.buf)
	}
	v.buf[i] = f
	v.n++
}

func (v *vc) pop() {
	v.head++
	if int(v.head) == len(v.buf) {
		v.head = 0
	}
	v.n--
}

// inputPort is one switch input port (the downstream end of a link) with its
// virtual channels. sw is the owning switch, needed to resolve a packet's
// next output port at the moment a VC is granted.
type inputPort struct {
	link *link
	sw   *switchNode
	vcs  []vc
}

// outputPort is one switch output port (the upstream end of a link). Under
// wormhole switching the port is allocated to one packet from head to tail.
type outputPort struct {
	link *link
	// ds is the input port on the downstream switch (nil for ejection links).
	ds *inputPort
	// alloc is the index into the owning switch's flat candidate list of the
	// (input port, VC) currently holding this output, or -1 when free;
	// srcVC is the same VC resolved to a pointer at grant time, so the
	// per-cycle forward path needs no div/mod over the candidate space.
	alloc int32
	srcVC *vc
	// dsVC is the downstream VC reserved for the allocated packet.
	dsVC int32
	// rr is the round-robin arbitration pointer over the candidate list.
	rr int32
	// waiters counts the input VCs whose buffered head flit requests this
	// port and has not been granted it yet. It is the arbiter's
	// incrementally-maintained ready list: a port with no waiters skips the
	// O(inputs x VCs) candidate scan entirely.
	waiters int32
}

// switchNode is one simulated switch. outTo and outEject are dense
// per-switch routing tables (indexed by next-hop switch ID and destination
// core ID respectively, -1 where no port exists) replacing the map lookups of
// the reference engine.
type switchNode struct {
	id      int
	inputs  []*inputPort
	outputs []*outputPort

	outTo    []int32
	outEject []int32

	// busyVCs counts input VCs currently owned by a packet. It is the
	// active-set criterion: a switch with no owned VC has no queued flit, no
	// allocated output and no arbitration candidate, so step skips it in one
	// comparison.
	busyVCs int32

	forwarded int64 // flits forwarded by this switch
}

// ni is the network interface of one source core: a growable ring deque of
// arena packet indices feeding the core's injection link one flit per cycle.
// The ring replaces the q = q[1:] reslice of the reference engine, which kept
// every delivered packet reachable through the queue's backing array.
type ni struct {
	core int
	link *link
	ds   *inputPort
	q    pktRing
	cur  int32 // arena index of the packet being streamed, -1 when idle
	seq  int32
	dsVC int32
}

// network is the static structure plus the dynamic state of one simulation.
// All dynamic state is index-based and arena-backed, so a network can be
// reset() and reused across runs (ZeroLoadLatencies simulates every flow on
// one build) and a steady-state cycle allocates nothing.
type network struct {
	top   *topology.Topology
	links []*link
	nodes []*switchNode
	// nis holds the source-core network interfaces, ordered by core index;
	// niOf maps a core index to its NI (nil when the core sources no flow).
	nis  []*ni
	niOf []*ni

	vcs         int
	bufring     int // buffer depth per VC, in flits
	packetFlits int

	// packets is the arena; free lists released slots for reuse.
	packets []packet
	free    []int32

	// flitBacking is the single allocation behind every VC ring.
	flitBacking []flit

	// Scratch buffers of the circular-wait detector, reused across checks.
	cwStalled []stalledVC
	cwWaits   []int32
	cwColor   []uint8
}

// stalledVC is one entry of the circular-wait detector's stalled list.
type stalledVC struct {
	v    *vc
	node *switchNode
	flat int32 // candidate index of v within its switch (output alloc space)
}

// allocPacket returns a free arena slot, growing the arena only when the
// free list is empty.
func (net *network) allocPacket() int32 {
	if k := len(net.free); k > 0 {
		id := net.free[k-1]
		net.free = net.free[:k-1]
		return id
	}
	net.packets = append(net.packets, packet{})
	return int32(len(net.packets) - 1)
}

// freePacket returns a delivered packet's slot to the arena free list.
func (net *network) freePacket(id int32) {
	net.free = append(net.free, id)
}

// buildNetwork instantiates the simulation structure for a routed topology.
// Every flow must carry a committed route (topology.Validate must pass).
func buildNetwork(t *topology.Topology, cfg Config) (*network, error) {
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("sim: topology not simulatable: %w", err)
	}
	net := &network{top: t, vcs: cfg.VCs, bufring: cfg.BufferFlits, packetFlits: cfg.PacketFlits}

	nodes := make([]*switchNode, t.NumSwitches())
	for i := range nodes {
		nodes[i] = &switchNode{
			id:       i,
			outTo:    newDenseTable(t.NumSwitches()),
			outEject: newDenseTable(t.Design.NumCores()),
		}
	}
	net.nodes = nodes

	isSrc := make([]bool, t.Design.NumCores())
	isDst := make([]bool, t.Design.NumCores())
	for _, f := range t.Design.Flows {
		isSrc[f.Src] = true
		isDst[f.Dst] = true
	}

	addLink := func(l *link) *link {
		l.id = len(net.links)
		l.deadAt = neverDead
		net.links = append(net.links, l)
		return l
	}
	attachInput := func(s int, l *link) *inputPort {
		p := &inputPort{link: l, sw: nodes[s], vcs: make([]vc, cfg.VCs)}
		nodes[s].inputs = append(nodes[s].inputs, p)
		return p
	}
	attachOutput := func(s int, l *link, ds *inputPort) int32 {
		o := &outputPort{link: l, ds: ds, alloc: -1, dsVC: -1}
		nodes[s].outputs = append(nodes[s].outputs, o)
		return int32(len(nodes[s].outputs) - 1)
	}

	// Injection links, in core order (deterministic network layout).
	net.niOf = make([]*ni, t.Design.NumCores())
	for c := 0; c < t.Design.NumCores(); c++ {
		if !isSrc[c] {
			continue
		}
		sw := t.CoreAttach[c]
		planar := t.Design.Cores[c].Rect().Center()
		stages := t.Lib.LinkPipelineStages(geom.Manhattan(planar, t.Switches[sw].Pos), t.FreqMHz)
		l := addLink(&link{kind: linkInjection, from: -1, to: sw, core: c, stages: stages})
		in := attachInput(sw, l)
		n := &ni{core: c, link: l, ds: in, cur: -1, dsVC: -1}
		net.nis = append(net.nis, n)
		net.niOf[c] = n
	}

	// Switch-to-switch links, in the deterministic (From, To) order of
	// SwitchLinks.
	for _, sl := range t.SwitchLinks() {
		planar := geom.Manhattan(t.Switches[sl.From].Pos, t.Switches[sl.To].Pos)
		stages := t.Lib.LinkPipelineStages(planar, t.FreqMHz)
		l := addLink(&link{kind: linkInternal, from: sl.From, to: sl.To, core: -1, stages: stages})
		in := attachInput(sl.To, l)
		nodes[sl.From].outTo[sl.To] = attachOutput(sl.From, l, in)
	}

	// Ejection links, in core order.
	for c := 0; c < t.Design.NumCores(); c++ {
		if !isDst[c] {
			continue
		}
		sw := t.CoreAttach[c]
		planar := t.Design.Cores[c].Rect().Center()
		stages := t.Lib.LinkPipelineStages(geom.Manhattan(planar, t.Switches[sw].Pos), t.FreqMHz)
		l := addLink(&link{kind: linkEjection, from: sw, to: -1, core: c, stages: stages})
		nodes[sw].outEject[c] = attachOutput(sw, l, nil)
	}

	if err := applyDeadLinks(net.links, cfg); err != nil {
		return nil, err
	}

	// One backing block for every VC ring: bounded, contiguous, allocated
	// once.
	totalPorts := 0
	for _, s := range nodes {
		totalPorts += len(s.inputs)
	}
	net.flitBacking = make([]flit, totalPorts*cfg.VCs*cfg.BufferFlits)
	off := 0
	for _, s := range nodes {
		for _, ip := range s.inputs {
			for k := range ip.vcs {
				ip.vcs[k].buf = net.flitBacking[off : off+cfg.BufferFlits : off+cfg.BufferFlits]
				off += cfg.BufferFlits
			}
		}
	}
	net.reset()
	return net, nil
}

// newDenseTable returns a routing table of the given size with every entry
// empty (-1).
func newDenseTable(n int) []int32 {
	t := make([]int32, n)
	for i := range t {
		t[i] = -1
	}
	return t
}

// reset restores the network to its just-built state so it can be reused for
// another run: empty buffers, free ports, zeroed counters, empty arena. The
// static structure (links, ports, routing tables, ring capacities) is
// untouched.
func (net *network) reset() {
	for _, l := range net.links {
		l.busy = 0
	}
	for _, s := range net.nodes {
		s.forwarded = 0
		s.busyVCs = 0
		for _, ip := range s.inputs {
			for k := range ip.vcs {
				v := &ip.vcs[k]
				v.owner, v.hop, v.out = -1, 0, -1
				v.head, v.n = 0, 0
				v.cwIdx = -1
				v.lastMove = 0
			}
		}
		for _, o := range s.outputs {
			o.alloc, o.dsVC, o.rr, o.waiters = -1, -1, 0, 0
			o.srcVC = nil
		}
	}
	for _, n := range net.nis {
		n.q.reset()
		n.cur, n.seq, n.dsVC = -1, 0, -1
	}
	net.packets = net.packets[:0]
	net.free = net.free[:0]
}

// routeOutput resolves the output port the packet owning v requests at the
// given switch: the link towards the next switch of its path, or the ejection
// link of its destination core at the last hop. It is called once per hop —
// when the VC is granted to the packet — and cached in vc.out.
func (net *network) routeOutput(s *switchNode, v *vc) int32 {
	p := &net.packets[v.owner]
	if int(v.hop) == len(p.path)-1 {
		return s.outEject[net.top.Design.Flows[p.flow].Dst]
	}
	return s.outTo[p.path[v.hop+1]]
}
