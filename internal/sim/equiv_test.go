package sim_test

// Equivalence tests between the optimized execution core and the retained
// reference stepper (Config.Reference): for the same topology and Config the
// two engines must produce byte-identical Stats — same injection times, same
// arbitration grants, same watchdog verdicts, same floating-point latency
// sums. The root package runs the same comparison over the golden-corpus
// specs; this file covers the hand-built fixtures, including both deadlock
// scenarios, which exercise the circular-wait detector that a healthy
// synthesized design never reaches.

import (
	"bytes"
	"encoding/json"
	"testing"

	"sunfloor3d/internal/sim"
	"sunfloor3d/internal/topology"
)

// runBothEngines simulates the topology with the optimized and the reference
// engine and fails the test unless the full Stats are byte-identical.
func runBothEngines(t *testing.T, label string, top *topology.Topology, cfg sim.Config) *sim.Stats {
	t.Helper()
	cfg.Reference = false
	opt, err := sim.Run(top, cfg)
	if err != nil {
		t.Fatalf("%s: optimized engine: %v", label, err)
	}
	cfg.Reference = true
	ref, err := sim.Run(top, cfg)
	if err != nil {
		t.Fatalf("%s: reference engine: %v", label, err)
	}
	oj, err := json.Marshal(opt)
	if err != nil {
		t.Fatal(err)
	}
	rj, err := json.Marshal(ref)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(oj, rj) {
		t.Fatalf("%s: engines diverged\noptimized: %s\nreference: %s", label, oj, rj)
	}
	return opt
}

// TestEnginesAgreeOnHealthyTraffic compares the engines on a synthesized
// topology across every profile and a load range that spans near-idle (long
// quiet stretches exercising the fast-forward path) to saturation (backlog
// and credit stalls exercising the active sets).
func TestEnginesAgreeOnHealthyTraffic(t *testing.T) {
	top := synthBest(t, testDesign(t))
	for _, profile := range []sim.Profile{sim.Uniform, sim.Bursty, sim.Hotspot} {
		for _, scale := range []float64{0.02, 0.3, 1.0, 2.5} {
			cfg := sim.DefaultConfig()
			cfg.Profile = profile
			cfg.InjectionScale = scale
			cfg.Cycles = 1200
			cfg.DrainCycles = 1200
			cfg.Seed = 7
			st := runBothEngines(t, profile.String(), top, cfg)
			if st.PacketsInjected == 0 {
				t.Errorf("%v scale %v: no packets injected", profile, scale)
			}
		}
	}
}

// TestEnginesAgreeOnDeadlock compares the engines on both deadlock fixtures:
// the fully wedged ring (global-stall watchdog) and the partially wedged ring
// behind live traffic (circular-wait detector). Deadlock cycle, verdict and
// all partial statistics must match bit for bit.
func TestEnginesAgreeOnDeadlock(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.Cycles = 3000
	cfg.DrainCycles = 3000
	cfg.PacketFlits = 8
	cfg.VCs = 1
	cfg.BufferFlits = 2
	cfg.WatchdogCycles = 200

	st := runBothEngines(t, "full deadlock", deadlockRing(t), cfg)
	if !st.Deadlock {
		t.Fatal("ring fixture did not deadlock")
	}

	cfg.Cycles = 4000
	cfg.DrainCycles = 4000
	st = runBothEngines(t, "partial deadlock", partialDeadlockTopology(t), cfg)
	if !st.Deadlock {
		t.Fatal("partial-deadlock fixture did not deadlock")
	}
}

// TestEnginesAgreeOnZeroLoad checks the reused-network oracle against the
// reference per-flow-rebuild loop.
func TestEnginesAgreeOnZeroLoad(t *testing.T) {
	top := synthBest(t, testDesign(t))
	cfg := sim.DefaultConfig()
	opt, err := sim.ZeroLoadLatencies(top, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Reference = true
	ref, err := sim.ZeroLoadLatencies(top, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(opt) != len(ref) {
		t.Fatalf("latency vector lengths differ: %d vs %d", len(opt), len(ref))
	}
	for f := range opt {
		if opt[f] != ref[f] {
			t.Errorf("flow %d: optimized %v, reference %v", f, opt[f], ref[f])
		}
	}
}

// TestStatsSummaryLevel checks that StatsSummary changes only what is
// collected, not what is simulated: the aggregate and per-flow numbers equal
// the full run's, and the per-link/per-switch tables are absent.
func TestStatsSummaryLevel(t *testing.T) {
	top := synthBest(t, testDesign(t))
	cfg := sim.DefaultConfig()
	cfg.Cycles = 800
	cfg.DrainCycles = 800

	full, err := sim.Run(top, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.StatsLevel = sim.StatsSummary
	summary, err := sim.Run(top, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if summary.Links != nil || summary.Switches != nil {
		t.Fatalf("summary level collected %d link and %d switch rows",
			len(summary.Links), len(summary.Switches))
	}
	if len(full.Links) == 0 || len(full.Switches) == 0 {
		t.Fatal("full level collected no link/switch rows")
	}
	summary.Links, summary.Switches = full.Links, full.Switches
	sj, err := json.Marshal(summary)
	if err != nil {
		t.Fatal(err)
	}
	fj, err := json.Marshal(full)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sj, fj) {
		t.Fatalf("summary run diverged from full run beyond the omitted tables\nsummary: %s\nfull: %s", sj, fj)
	}
}
