package sim_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"sunfloor3d/internal/bench"
	"sunfloor3d/internal/model"
	"sunfloor3d/internal/noclib"
	"sunfloor3d/internal/route"
	"sunfloor3d/internal/sim"
	"sunfloor3d/internal/synth"
	"sunfloor3d/internal/topology"
)

// testDesign is an 8-core, 2-layer design that synthesizes quickly.
func testDesign(t *testing.T) *model.CommGraph {
	t.Helper()
	var cores []model.Core
	for l := 0; l < 2; l++ {
		for i := 0; i < 4; i++ {
			cores = append(cores, model.Core{
				Name:  "c" + string(rune('0'+l)) + string(rune('0'+i)),
				Width: 1.5, Height: 1.5, X: float64(i) * 1.8, Y: float64(l) * 0.1, Layer: l,
			})
		}
	}
	flows := []model.Flow{
		{Src: 0, Dst: 4, BandwidthMBps: 800, LatencyCycles: 4},
		{Src: 1, Dst: 5, BandwidthMBps: 700, LatencyCycles: 4},
		{Src: 2, Dst: 6, BandwidthMBps: 750, LatencyCycles: 4},
		{Src: 3, Dst: 7, BandwidthMBps: 650, LatencyCycles: 4},
		{Src: 0, Dst: 1, BandwidthMBps: 100, LatencyCycles: 8},
		{Src: 1, Dst: 2, BandwidthMBps: 120, LatencyCycles: 8},
		{Src: 4, Dst: 5, BandwidthMBps: 90, LatencyCycles: 8},
		{Src: 6, Dst: 7, BandwidthMBps: 110, LatencyCycles: 8},
	}
	g, err := model.NewCommGraph(cores, flows)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// synthBest synthesizes the design and returns the best point's topology.
func synthBest(t *testing.T, g *model.CommGraph) *topology.Topology {
	t.Helper()
	opt := synth.DefaultOptions()
	opt.MaxILL = 10
	res, err := synth.Synthesize(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil || res.Best.Topology == nil {
		t.Fatal("no valid design point")
	}
	return res.Best.Topology
}

// TestZeroLoadMatchesAnalytic is the sim-vs-analytic equivalence detector of
// the cross-validation contract: for every flow of every benchmark's best
// design point, the simulated zero-contention head-flit latency must equal
// Topology.FlowLatencyCycles exactly.
func TestZeroLoadMatchesAnalytic(t *testing.T) {
	tops := []*topology.Topology{synthBest(t, testDesign(t))}
	for _, b := range bench.All(1) {
		opt := synth.DefaultOptions()
		res, err := synth.Synthesize(b.Graph3D, opt)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if res.Best == nil {
			t.Fatalf("%s: no valid point", b.Name)
		}
		tops = append(tops, res.Best.Topology)
	}
	for i, top := range tops {
		lats, err := sim.ZeroLoadLatencies(top, sim.DefaultConfig())
		if err != nil {
			t.Fatalf("topology %d: %v", i, err)
		}
		for f := range lats {
			if want := top.FlowLatencyCycles(f); lats[f] != want {
				t.Errorf("topology %d flow %d: simulated zero-load latency %v, analytic %v",
					i, f, lats[f], want)
			}
		}
	}
}

// TestZeroLoadEveryValidPoint runs the same equivalence check over every
// valid point of one benchmark sweep, not just the winner.
func TestZeroLoadEveryValidPoint(t *testing.T) {
	b := bench.ByNameMust("D_26_media", 1)
	opt := synth.DefaultOptions()
	res, err := synth.Synthesize(b.Graph3D, opt)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, p := range res.Points {
		if !p.Valid || p.Topology == nil {
			continue
		}
		lats, err := sim.ZeroLoadLatencies(p.Topology, sim.DefaultConfig())
		if err != nil {
			t.Fatalf("point with %d switches: %v", p.SwitchCount, err)
		}
		for f := range lats {
			if want := p.Topology.FlowLatencyCycles(f); lats[f] != want {
				t.Fatalf("point with %d switches, flow %d: simulated %v, analytic %v",
					p.SwitchCount, f, lats[f], want)
			}
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no valid points checked")
	}
}

// TestDeterminism checks the byte-identical reproducibility contract for all
// three injection profiles.
func TestDeterminism(t *testing.T) {
	top := synthBest(t, testDesign(t))
	for _, profile := range []sim.Profile{sim.Uniform, sim.Bursty, sim.Hotspot} {
		cfg := sim.DefaultConfig()
		cfg.Profile = profile
		cfg.Cycles = 1500
		cfg.DrainCycles = 1500
		cfg.Seed = 42
		a, err := sim.Run(top, cfg)
		if err != nil {
			t.Fatalf("%v: %v", profile, err)
		}
		b, err := sim.Run(top, cfg)
		if err != nil {
			t.Fatalf("%v: %v", profile, err)
		}
		aj, err := json.Marshal(a)
		if err != nil {
			t.Fatal(err)
		}
		bj, err := json.Marshal(b)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(aj, bj) {
			t.Errorf("%v: repeated runs differ:\n%s\n%s", profile, aj, bj)
		}
		if a.PacketsInjected == 0 {
			t.Errorf("%v: no packets injected", profile)
		}
	}
}

// TestNoDeadlockOnAcyclicCDG cross-validates the static deadlock check
// dynamically: every synthesized point has an acyclic CDG, and simulating it
// under every profile must not trip the runtime watchdog.
func TestNoDeadlockOnAcyclicCDG(t *testing.T) {
	tops := []*topology.Topology{synthBest(t, testDesign(t))}
	for _, name := range []string{"D_26_media", "D_36_4", "D_38_tvopd"} {
		b := bench.ByNameMust(name, 1)
		opt := synth.DefaultOptions()
		res, err := synth.Synthesize(b.Graph3D, opt)
		if err != nil {
			t.Fatal(err)
		}
		tops = append(tops, res.Best.Topology)
	}
	for i, top := range tops {
		if !route.DeadlockFree(top) {
			t.Fatalf("topology %d: synthesized routes have a cyclic CDG", i)
		}
		for _, profile := range []sim.Profile{sim.Uniform, sim.Bursty, sim.Hotspot} {
			cfg := sim.DefaultConfig()
			cfg.Profile = profile
			cfg.Cycles = 2000
			cfg.DrainCycles = 2000
			st, err := sim.Run(top, cfg)
			if err != nil {
				t.Fatalf("topology %d %v: %v", i, profile, err)
			}
			if st.Deadlock {
				t.Errorf("topology %d %v: simulated deadlock on a CDG-acyclic design (cycle %d)",
					i, profile, st.DeadlockCycle)
			}
			if st.Livelock {
				t.Errorf("topology %d %v: simulated livelock", i, profile)
			}
			if st.PacketsDelivered == 0 {
				t.Errorf("topology %d %v: nothing delivered", i, profile)
			}
		}
	}
}

// deadlockRing builds a 4-switch ring whose routes form a cyclic CDG: flow i
// travels two hops clockwise, so link (i, i+1) always waits on (i+1, i+2).
func deadlockRing(t *testing.T) *topology.Topology {
	t.Helper()
	cores := make([]model.Core, 4)
	for i := range cores {
		cores[i] = model.Core{
			Name: "c" + string(rune('0'+i)), Width: 1, Height: 1,
			X: float64(i%2) * 6, Y: float64(i/2) * 6,
		}
	}
	// Ring order 0 -> 1 -> 3 -> 2 -> 0 keeps consecutive switches adjacent.
	// Flow i enters at ring position i and travels two hops clockwise, so
	// every ring link waits on the next one: a cyclic CDG.
	ring := []int{0, 1, 3, 2}
	flows := make([]model.Flow, 4)
	for i := range flows {
		flows[i] = model.Flow{Src: ring[i], Dst: ring[(i+2)%4], BandwidthMBps: 1600}
	}
	g, err := model.NewCommGraph(cores, flows)
	if err != nil {
		t.Fatal(err)
	}
	top := topology.New(g, noclib.DefaultLibrary(), 400)
	for i := 0; i < 4; i++ {
		top.AddSwitch(0)
		top.AttachCore(i, i)
		top.Switches[i].Pos = cores[i].Center()
	}
	for f := range flows {
		top.SetRoute(f, []int{ring[f], ring[(f+1)%4], ring[(f+2)%4]})
	}
	if err := top.Validate(); err != nil {
		t.Fatal(err)
	}
	return top
}

// TestWatchdogDetectsDeadlock checks the other direction of the
// cross-validation: routes with a cyclic CDG must both fail the static check
// and trip the simulator's runtime deadlock watchdog under saturating load.
func TestWatchdogDetectsDeadlock(t *testing.T) {
	top := deadlockRing(t)
	if route.DeadlockFree(top) {
		t.Fatal("ring routes should have a cyclic CDG")
	}
	cfg := sim.DefaultConfig()
	cfg.Cycles = 3000
	cfg.DrainCycles = 3000
	cfg.PacketFlits = 8
	cfg.VCs = 1
	cfg.BufferFlits = 2
	cfg.WatchdogCycles = 200
	st, err := sim.Run(top, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Deadlock {
		t.Fatalf("saturated cyclic-CDG ring did not deadlock: %+v", st)
	}
	if st.DeadlockCycle <= 0 || st.DeadlockCycle >= int64(cfg.Cycles+cfg.DrainCycles) {
		t.Errorf("deadlock cycle %d outside run", st.DeadlockCycle)
	}
}

// partialDeadlockTopology builds the 4-switch ring of deadlockRing plus an
// independent live flow on two extra switches: the ring wedges while the
// extra flow keeps the global movement counter alive.
func partialDeadlockTopology(t *testing.T) *topology.Topology {
	t.Helper()
	cores := make([]model.Core, 6)
	for i := range cores {
		cores[i] = model.Core{
			Name: "c" + string(rune('0'+i)), Width: 1, Height: 1,
			X: float64(i%3) * 6, Y: float64(i/3) * 6,
		}
	}
	ring := []int{0, 1, 3, 2}
	flows := make([]model.Flow, 4)
	for i := range flows {
		flows[i] = model.Flow{Src: ring[i], Dst: ring[(i+2)%4], BandwidthMBps: 1600}
	}
	flows = append(flows, model.Flow{Src: 4, Dst: 5, BandwidthMBps: 200})
	g, err := model.NewCommGraph(cores, flows)
	if err != nil {
		t.Fatal(err)
	}
	top := topology.New(g, noclib.DefaultLibrary(), 400)
	for i := 0; i < 6; i++ {
		top.AddSwitch(0)
		top.AttachCore(i, i)
		top.Switches[i].Pos = cores[i].Center()
	}
	for f := 0; f < 4; f++ {
		top.SetRoute(f, []int{ring[f], ring[(f+1)%4], ring[(f+2)%4]})
	}
	top.SetRoute(4, []int{4, 5})
	if err := top.Validate(); err != nil {
		t.Fatal(err)
	}
	return top
}

// TestWatchdogDetectsPartialDeadlock checks that a wedged subnetwork is
// detected even while unrelated traffic keeps flowing: the global-stall
// watchdog never fires (flits keep moving on the healthy pair of switches),
// so only the circular-wait detector can see the dead ring.
func TestWatchdogDetectsPartialDeadlock(t *testing.T) {
	top := partialDeadlockTopology(t)
	if route.DeadlockFree(top) {
		t.Fatal("ring routes should have a cyclic CDG")
	}
	cfg := sim.DefaultConfig()
	cfg.Cycles = 4000
	cfg.DrainCycles = 4000
	cfg.PacketFlits = 8
	cfg.VCs = 1
	cfg.BufferFlits = 2
	cfg.WatchdogCycles = 200
	st, err := sim.Run(top, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Deadlock {
		t.Fatalf("partial deadlock not detected: %+v", st)
	}
	// The independent flow must have made progress before the abort,
	// proving the global-stall watchdog alone could not have fired.
	if st.Flows[4].PacketsDelivered == 0 {
		t.Error("independent flow delivered nothing; the scenario did not exercise partial deadlock")
	}
}

// TestLowLoadDeliversEverything checks conservation and throughput at a load
// the network can sustain: every injected packet is delivered and the
// achieved bandwidth tracks the offered bandwidth.
func TestLowLoadDeliversEverything(t *testing.T) {
	top := synthBest(t, testDesign(t))
	cfg := sim.DefaultConfig()
	cfg.InjectionScale = 0.05
	cfg.Cycles = 2000
	cfg.DrainCycles = 2000
	st, err := sim.Run(top, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.PacketsInjected == 0 {
		t.Fatal("no packets injected at 5% load")
	}
	if st.PacketsDelivered != st.PacketsInjected {
		t.Fatalf("delivered %d of %d packets at 5%% load", st.PacketsDelivered, st.PacketsInjected)
	}
	if st.FlitsInFlight != 0 || st.SourceBacklogPackets != 0 {
		t.Fatalf("network not drained: %d flits, %d backlog", st.FlitsInFlight, st.SourceBacklogPackets)
	}
	for _, f := range st.Flows {
		if f.FlitsInjected != f.FlitsDelivered {
			t.Errorf("flow %d: %d flits injected, %d delivered", f.Flow, f.FlitsInjected, f.FlitsDelivered)
		}
		if f.PacketsDelivered > 0 && f.MinLatencyCycles < top.FlowLatencyCycles(f.Flow) {
			t.Errorf("flow %d: min latency %v below zero-load latency %v",
				f.Flow, f.MinLatencyCycles, top.FlowLatencyCycles(f.Flow))
		}
	}
	// Link conservation: every flit delivered crossed each route link once.
	for _, l := range st.Links {
		if l.Utilization < 0 || l.Utilization > 1 {
			t.Errorf("link %+v utilization out of range", l)
		}
	}
}

// TestCommittedPathsReplay checks the route package's replay export: the
// copies match the topology's routes and do not alias them.
func TestCommittedPathsReplay(t *testing.T) {
	top := synthBest(t, testDesign(t))
	paths := route.CommittedPaths(top)
	if len(paths) != len(top.Routes) {
		t.Fatalf("%d paths for %d routes", len(paths), len(top.Routes))
	}
	for f, p := range paths {
		if len(p) != len(top.Routes[f].Switches) {
			t.Fatalf("flow %d: path length %d, route length %d", f, len(p), len(top.Routes[f].Switches))
		}
		for i := range p {
			if p[i] != top.Routes[f].Switches[i] {
				t.Fatalf("flow %d: path %v differs from route %v", f, p, top.Routes[f].Switches)
			}
		}
		if len(p) > 0 {
			p[0] = -99
			if top.Routes[f].Switches[0] == -99 {
				t.Fatal("CommittedPaths aliases the topology routes")
			}
		}
	}
}

// TestConfigValidation exercises the config and profile parsing errors.
func TestConfigValidation(t *testing.T) {
	if err := sim.DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []func(*sim.Config){
		func(c *sim.Config) { c.Cycles = 0 },
		func(c *sim.Config) { c.DrainCycles = -1 },
		func(c *sim.Config) { c.InjectionScale = 0 },
		func(c *sim.Config) { c.PacketFlits = 0 },
		func(c *sim.Config) { c.VCs = 0 },
		func(c *sim.Config) { c.BufferFlits = 0 },
		func(c *sim.Config) { c.WatchdogCycles = 0 },
		func(c *sim.Config) { c.LivelockCycles = 0 },
		func(c *sim.Config) { c.BurstFactor = 0.5 },
		func(c *sim.Config) { c.MeanBurstCycles = 0 },
		func(c *sim.Config) { c.HotspotFactor = 0 },
	}
	for i, mutate := range bad {
		cfg := sim.DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d should fail validation", i)
		}
	}
	for _, name := range []string{"uniform", "bursty", "hotspot"} {
		p, err := sim.ParseProfile(name)
		if err != nil {
			t.Errorf("ParseProfile(%q): %v", name, err)
		}
		if p.String() != name {
			t.Errorf("ParseProfile(%q).String() = %q", name, p.String())
		}
	}
	if _, err := sim.ParseProfile("bogus"); err == nil {
		t.Error("unknown profile should fail")
	}
	if sim.Profile(99).String() == "" {
		t.Error("unknown profile String empty")
	}
}

// TestRunRejectsUnroutedTopology checks that the simulator refuses a
// topology whose flows carry no committed routes.
func TestRunRejectsUnroutedTopology(t *testing.T) {
	g := testDesign(t)
	top := topology.New(g, noclib.DefaultLibrary(), 400)
	top.AddSwitch(0)
	for c := range g.Cores {
		top.AttachCore(c, 0)
	}
	if _, err := sim.Run(top, sim.DefaultConfig()); err == nil {
		t.Fatal("unrouted topology should be rejected")
	}
	if _, err := sim.Run(synthBest(t, g), sim.Config{}); err == nil {
		t.Fatal("zero config should be rejected")
	}
}

// TestStatsReport sanity-checks the text renderer.
func TestStatsReport(t *testing.T) {
	top := synthBest(t, testDesign(t))
	cfg := sim.DefaultConfig()
	cfg.Cycles = 500
	cfg.DrainCycles = 500
	st, err := sim.Run(top, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := st.Report()
	for _, want := range []string{"profile uniform", "packets_delivered", "deadlock false", "flows:", "links:", "switches:"} {
		if !bytes.Contains([]byte(rep), []byte(want)) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
	if st.DeliveredFraction() <= 0 || !st.Healthy() {
		t.Errorf("unexpected stats health: delivered=%v healthy=%v", st.DeliveredFraction(), st.Healthy())
	}
}
