package sim

import (
	"math"
	"math/rand"

	"sunfloor3d/internal/topology"
)

// injector decides, cycle by cycle, how many packets each flow injects. All
// injectors are deterministic for a fixed seed and iterate flows in index
// order, so the source-queue contents (and hence the whole simulation) are
// reproducible. The same injector instances drive both the optimized and the
// reference engine, which is one half of the byte-identical-Stats contract.
type injector interface {
	// poll advances the injector by one cycle and reports every flow that
	// injects packets this cycle via emit(flow, n), in flow index order.
	poll(now int64, emit func(flow, n int))
	// done reports that the injector will never emit another packet (used by
	// the single-packet oracle to terminate early).
	done() bool
	// nextEventAt reports the earliest cycle >= now at which the injector
	// might emit a packet, advancing its internal state over the skipped
	// quiet cycles [now, returned). Returning now means "cannot skip"; the
	// caller must then poll normally. Implementations may only skip
	// stretches they can advance bit-identically to per-cycle polling — the
	// bursty profile's integer off-period countdowns qualify, floating-point
	// rate accumulators do not.
	nextEventAt(now int64) int64
}

// flowRates returns the per-flow injection rate in flits per cycle, derived
// from the flow bandwidths, the link width and the operating frequency. A
// link carries one flit of LinkWidthBits per cycle, so its capacity in MB/s is
// bytesPerFlit * freqMHz; rates are capped at 1 flit/cycle (link saturation).
func flowRates(t *topology.Topology, scale float64) []float64 {
	bytesPerFlit := float64(t.Lib.LinkWidthBits) / 8
	capMBps := bytesPerFlit * t.FreqMHz
	rates := make([]float64, t.Design.NumFlows())
	for i, f := range t.Design.Flows {
		r := 0.0
		if capMBps > 0 {
			r = f.BandwidthMBps * scale / capMBps
		}
		if r > 1 {
			r = 1
		}
		rates[i] = r
	}
	return rates
}

// rateInjector injects packets with a deterministic per-flow rate accumulator:
// every cycle the flow earns rate/PacketFlits packet credits and injects one
// packet per whole credit. It implements both the uniform profile and (with
// per-flow scaled rates) the hotspot profile without consuming randomness.
type rateInjector struct {
	perFlow []float64 // packet injections per cycle
	credit  []float64
	anyRate bool
}

func newRateInjector(rates []float64, packetFlits int) *rateInjector {
	per := make([]float64, len(rates))
	any := false
	for i, r := range rates {
		per[i] = r / float64(packetFlits)
		if per[i] > 0 {
			any = true
		}
	}
	return &rateInjector{perFlow: per, credit: make([]float64, len(rates)), anyRate: any}
}

func (r *rateInjector) poll(now int64, emit func(flow, n int)) {
	per, credit := r.perFlow, r.credit
	for f := range per {
		c := credit[f] + per[f]
		if c >= 1 {
			n := 0
			for c >= 1 {
				c -= 1
				n++
			}
			emit(f, n)
		}
		credit[f] = c
	}
}

func (r *rateInjector) done() bool { return false }

// nextEventAt cannot skip quiet cycles: the credit accumulators advance by
// floating-point addition every cycle, and a batched multiply-add would not
// reproduce the per-cycle rounding. With no injecting flow at all the
// injector is quiet forever.
func (r *rateInjector) nextEventAt(now int64) int64 {
	if r.anyRate {
		return now
	}
	return math.MaxInt64
}

// hotspotRates scales the rate of every flow whose destination is the core
// with the highest total incoming bandwidth (lowest index on ties).
func hotspotRates(t *topology.Topology, rates []float64, factor float64) []float64 {
	in := make([]float64, t.Design.NumCores())
	for _, f := range t.Design.Flows {
		in[f.Dst] += f.BandwidthMBps
	}
	hot, hotBW := -1, 0.0
	for c, bw := range in {
		if bw > hotBW {
			hot, hotBW = c, bw
		}
	}
	out := append([]float64(nil), rates...)
	for i, f := range t.Design.Flows {
		if f.Dst == hot {
			out[i] *= factor
			if out[i] > 1 {
				out[i] = 1
			}
		}
	}
	return out
}

// burstInjector alternates exponentially distributed on/off periods per flow.
// During an on period the flow injects at burst rate; the off period length is
// chosen so the long-run average matches the nominal rate.
type burstInjector struct {
	rng     *rand.Rand
	on      []bool
	left    []int64   // cycles left in the current period
	onRate  []float64 // packet injections per cycle while on
	onMean  []float64
	offMean []float64
	credit  []float64
}

func newBurstInjector(rates []float64, cfg Config) *burstInjector {
	n := len(rates)
	b := &burstInjector{
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		on:      make([]bool, n),
		left:    make([]int64, n),
		onRate:  make([]float64, n),
		onMean:  make([]float64, n),
		offMean: make([]float64, n),
		credit:  make([]float64, n),
	}
	for i, r := range rates {
		if r <= 0 {
			continue
		}
		rOn := r * cfg.BurstFactor
		if rOn > 1 {
			rOn = 1
		}
		if rOn <= r {
			// No burst headroom (the nominal rate already saturates the link,
			// or BurstFactor is 1): the flow streams permanently at its
			// nominal rate, otherwise the forced >=1-cycle off periods would
			// shave the long-run average below the communication graph.
			b.onRate[i] = r / float64(cfg.PacketFlits)
			b.on[i] = true
			b.left[i] = math.MaxInt64
			continue
		}
		b.onRate[i] = rOn / float64(cfg.PacketFlits)
		b.onMean[i] = cfg.MeanBurstCycles
		// Solve mean_off from r = rOn * on/(on+off).
		b.offMean[i] = cfg.MeanBurstCycles * (rOn - r) / r
		// Start in an off period of random phase so flows do not burst in
		// lockstep.
		b.on[i] = false
		b.left[i] = b.draw(b.offMean[i])
	}
	return b
}

// draw samples an exponentially distributed period of the given mean, at
// least one cycle.
func (b *burstInjector) draw(mean float64) int64 {
	if mean <= 0 {
		return 1
	}
	v := int64(b.rng.ExpFloat64() * mean)
	if v < 1 {
		v = 1
	}
	return v
}

func (b *burstInjector) poll(now int64, emit func(flow, n int)) {
	for f := range b.onRate {
		if b.onRate[f] == 0 {
			continue
		}
		if b.left[f] == 0 {
			b.on[f] = !b.on[f]
			if b.on[f] {
				b.left[f] = b.draw(b.onMean[f])
			} else {
				b.left[f] = b.draw(b.offMean[f])
			}
		}
		b.left[f]--
		if !b.on[f] {
			continue
		}
		b.credit[f] += b.onRate[f]
		if b.credit[f] >= 1 {
			n := 0
			for b.credit[f] >= 1 {
				b.credit[f] -= 1
				n++
			}
			emit(f, n)
		}
	}
}

func (b *burstInjector) done() bool { return false }

// nextEventAt fast-forwards over all-off stretches: while every bursting
// flow sits in an off period, a poll only decrements the integer countdowns,
// so batching k decrements is bit-identical to k polls (the RNG and the
// credit accumulators are untouched until a flow turns on). The skip ends at
// the first cycle a countdown reaches its flip.
func (b *burstInjector) nextEventAt(now int64) int64 {
	k := int64(math.MaxInt64)
	any := false
	for f := range b.onRate {
		if b.onRate[f] == 0 {
			continue
		}
		if b.on[f] {
			return now // a flow is bursting (or streams permanently)
		}
		any = true
		if b.left[f] < k {
			k = b.left[f]
		}
	}
	if !any {
		return math.MaxInt64 // no flow ever injects
	}
	if k < 1 {
		return now // a flow flips on at the very next poll
	}
	for f := range b.onRate {
		if b.onRate[f] != 0 {
			b.left[f] -= k
		}
	}
	return now + k
}

// singlePacketInjector injects exactly one packet for one flow at cycle 0.
// It is the zero-contention oracle used to cross-validate FlowLatencyCycles.
type singlePacketInjector struct {
	flow int
	sent bool
}

func (s *singlePacketInjector) poll(now int64, emit func(flow, n int)) {
	if !s.sent {
		s.sent = true
		emit(s.flow, 1)
	}
}

func (s *singlePacketInjector) done() bool { return s.sent }

func (s *singlePacketInjector) nextEventAt(now int64) int64 { return now }

// newProfileInjector builds the injector for the configured profile.
func newProfileInjector(t *topology.Topology, cfg Config) injector {
	rates := flowRates(t, cfg.InjectionScale)
	switch cfg.Profile {
	case Bursty:
		return newBurstInjector(rates, cfg)
	case Hotspot:
		return newRateInjector(hotspotRates(t, rates, cfg.HotspotFactor), cfg.PacketFlits)
	default:
		return newRateInjector(rates, cfg.PacketFlits)
	}
}
