package sim

import (
	"math"
	"math/rand"

	"sunfloor3d/internal/topology"
)

// injector decides, cycle by cycle, how many packets each flow injects. All
// injectors are deterministic for a fixed seed and iterate flows in index
// order, so the source-queue contents (and hence the whole simulation) are
// reproducible.
type injector interface {
	// packetsAt returns how many packets the flow injects at the given cycle.
	packetsAt(flow int, cycle int64) int
	// done reports that the injector will never emit another packet (used by
	// the single-packet oracle to terminate early).
	done() bool
}

// flowRates returns the per-flow injection rate in flits per cycle, derived
// from the flow bandwidths, the link width and the operating frequency. A
// link carries one flit of LinkWidthBits per cycle, so its capacity in MB/s is
// bytesPerFlit * freqMHz; rates are capped at 1 flit/cycle (link saturation).
func flowRates(t *topology.Topology, scale float64) []float64 {
	bytesPerFlit := float64(t.Lib.LinkWidthBits) / 8
	capMBps := bytesPerFlit * t.FreqMHz
	rates := make([]float64, t.Design.NumFlows())
	for i, f := range t.Design.Flows {
		r := 0.0
		if capMBps > 0 {
			r = f.BandwidthMBps * scale / capMBps
		}
		if r > 1 {
			r = 1
		}
		rates[i] = r
	}
	return rates
}

// rateInjector injects packets with a deterministic per-flow rate accumulator:
// every cycle the flow earns rate/PacketFlits packet credits and injects one
// packet per whole credit. It implements both the uniform profile and (with
// per-flow scaled rates) the hotspot profile without consuming randomness.
type rateInjector struct {
	perFlow []float64 // packet injections per cycle
	credit  []float64
}

func newRateInjector(rates []float64, packetFlits int) *rateInjector {
	per := make([]float64, len(rates))
	for i, r := range rates {
		per[i] = r / float64(packetFlits)
	}
	return &rateInjector{perFlow: per, credit: make([]float64, len(rates))}
}

func (r *rateInjector) packetsAt(flow int, cycle int64) int {
	r.credit[flow] += r.perFlow[flow]
	n := 0
	for r.credit[flow] >= 1 {
		r.credit[flow] -= 1
		n++
	}
	return n
}

func (r *rateInjector) done() bool { return false }

// hotspotRates scales the rate of every flow whose destination is the core
// with the highest total incoming bandwidth (lowest index on ties).
func hotspotRates(t *topology.Topology, rates []float64, factor float64) []float64 {
	in := make([]float64, t.Design.NumCores())
	for _, f := range t.Design.Flows {
		in[f.Dst] += f.BandwidthMBps
	}
	hot, hotBW := -1, 0.0
	for c, bw := range in {
		if bw > hotBW {
			hot, hotBW = c, bw
		}
	}
	out := append([]float64(nil), rates...)
	for i, f := range t.Design.Flows {
		if f.Dst == hot {
			out[i] *= factor
			if out[i] > 1 {
				out[i] = 1
			}
		}
	}
	return out
}

// burstInjector alternates exponentially distributed on/off periods per flow.
// During an on period the flow injects at burst rate; the off period length is
// chosen so the long-run average matches the nominal rate.
type burstInjector struct {
	rng     *rand.Rand
	on      []bool
	left    []int64   // cycles left in the current period
	onRate  []float64 // packet injections per cycle while on
	onMean  []float64
	offMean []float64
	credit  []float64
}

func newBurstInjector(rates []float64, cfg Config) *burstInjector {
	n := len(rates)
	b := &burstInjector{
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		on:      make([]bool, n),
		left:    make([]int64, n),
		onRate:  make([]float64, n),
		onMean:  make([]float64, n),
		offMean: make([]float64, n),
		credit:  make([]float64, n),
	}
	for i, r := range rates {
		if r <= 0 {
			continue
		}
		rOn := r * cfg.BurstFactor
		if rOn > 1 {
			rOn = 1
		}
		if rOn <= r {
			// No burst headroom (the nominal rate already saturates the link,
			// or BurstFactor is 1): the flow streams permanently at its
			// nominal rate, otherwise the forced >=1-cycle off periods would
			// shave the long-run average below the communication graph.
			b.onRate[i] = r / float64(cfg.PacketFlits)
			b.on[i] = true
			b.left[i] = math.MaxInt64
			continue
		}
		b.onRate[i] = rOn / float64(cfg.PacketFlits)
		b.onMean[i] = cfg.MeanBurstCycles
		// Solve mean_off from r = rOn * on/(on+off).
		b.offMean[i] = cfg.MeanBurstCycles * (rOn - r) / r
		// Start in an off period of random phase so flows do not burst in
		// lockstep.
		b.on[i] = false
		b.left[i] = b.draw(b.offMean[i])
	}
	return b
}

// draw samples an exponentially distributed period of the given mean, at
// least one cycle.
func (b *burstInjector) draw(mean float64) int64 {
	if mean <= 0 {
		return 1
	}
	v := int64(b.rng.ExpFloat64() * mean)
	if v < 1 {
		v = 1
	}
	return v
}

func (b *burstInjector) packetsAt(flow int, cycle int64) int {
	if b.onRate[flow] == 0 {
		return 0
	}
	if b.left[flow] == 0 {
		b.on[flow] = !b.on[flow]
		if b.on[flow] {
			b.left[flow] = b.draw(b.onMean[flow])
		} else {
			b.left[flow] = b.draw(b.offMean[flow])
		}
	}
	b.left[flow]--
	if !b.on[flow] {
		return 0
	}
	b.credit[flow] += b.onRate[flow]
	n := 0
	for b.credit[flow] >= 1 {
		b.credit[flow] -= 1
		n++
	}
	return n
}

func (b *burstInjector) done() bool { return false }

// singlePacketInjector injects exactly one packet for one flow at cycle 0.
// It is the zero-contention oracle used to cross-validate FlowLatencyCycles.
type singlePacketInjector struct {
	flow int
	sent bool
}

func (s *singlePacketInjector) packetsAt(flow int, cycle int64) int {
	if flow == s.flow && !s.sent {
		s.sent = true
		return 1
	}
	return 0
}

func (s *singlePacketInjector) done() bool { return s.sent }

// newProfileInjector builds the injector for the configured profile.
func newProfileInjector(t *topology.Topology, cfg Config) injector {
	rates := flowRates(t, cfg.InjectionScale)
	switch cfg.Profile {
	case Bursty:
		return newBurstInjector(rates, cfg)
	case Hotspot:
		return newRateInjector(hotspotRates(t, rates, cfg.HotspotFactor), cfg.PacketFlits)
	default:
		return newRateInjector(rates, cfg.PacketFlits)
	}
}
