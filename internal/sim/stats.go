package sim

import (
	"fmt"
	"strings"

	"sunfloor3d/internal/topology"
)

// FlowStats is the simulated behaviour of one communication flow. Latencies
// are head-flit latencies: the cycle the head flit reached the destination
// core minus the cycle the packet entered its source queue.
type FlowStats struct {
	Flow             int     `json:"flow"`
	OfferedMBps      float64 `json:"offered_mbps"`
	AchievedMBps     float64 `json:"achieved_mbps"`
	PacketsInjected  int64   `json:"packets_injected"`
	PacketsDelivered int64   `json:"packets_delivered"`
	FlitsInjected    int64   `json:"flits_injected"`
	FlitsDelivered   int64   `json:"flits_delivered"`
	AvgLatencyCycles float64 `json:"avg_latency_cycles"`
	MinLatencyCycles float64 `json:"min_latency_cycles"`
	MaxLatencyCycles float64 `json:"max_latency_cycles"`
}

// LinkStats is the activity of one simulated channel. Injection links have
// From == -1 and Core set to the source core; ejection links have To == -1
// and Core set to the destination core; internal switch-to-switch links have
// Core == -1.
type LinkStats struct {
	Kind        string  `json:"kind"` // "injection", "internal" or "ejection"
	From        int     `json:"from"`
	To          int     `json:"to"`
	Core        int     `json:"core"`
	Stages      int     `json:"stages"`
	BusyCycles  int64   `json:"busy_cycles"`
	Utilization float64 `json:"utilization"`
}

// SwitchStats is the activity of one simulated switch. Utilization is the
// fraction of output-port forwarding slots used.
type SwitchStats struct {
	Switch         int     `json:"switch"`
	FlitsForwarded int64   `json:"flits_forwarded"`
	Utilization    float64 `json:"utilization"`
}

// Stats is the outcome of one simulation run. For a fixed topology and Config
// the whole structure is byte-identical across runs (the determinism
// contract of the package).
type Stats struct {
	// Cycles is the number of cycles actually simulated (injection horizon
	// plus the drain the run needed, or less when the watchdog tripped).
	Cycles int64 `json:"cycles"`
	// InjectionCycles echoes Config.Cycles.
	InjectionCycles int `json:"injection_cycles"`
	// Profile and Seed echo the traffic configuration of the run.
	Profile string `json:"profile"`
	Seed    int64  `json:"seed"`

	PacketsInjected  int64 `json:"packets_injected"`
	PacketsDelivered int64 `json:"packets_delivered"`
	FlitsInjected    int64 `json:"flits_injected"`
	FlitsDelivered   int64 `json:"flits_delivered"`
	// FlitsInFlight counts flits still buffered in the network when the run
	// ended; SourceBacklogPackets counts packets still queued at their NI.
	FlitsInFlight        int64 `json:"flits_in_flight"`
	SourceBacklogPackets int64 `json:"source_backlog_packets"`

	// AvgLatencyCycles and MaxLatencyCycles aggregate the head-flit latency
	// over all delivered packets.
	AvgLatencyCycles float64 `json:"avg_latency_cycles"`
	MaxLatencyCycles float64 `json:"max_latency_cycles"`

	// Deadlock reports that the runtime watchdog saw buffered flits make no
	// progress for the whole watchdog horizon; DeadlockCycle is the cycle the
	// run was aborted. Livelock reports movement without any delivery for the
	// livelock horizon.
	Deadlock      bool  `json:"deadlock"`
	DeadlockCycle int64 `json:"deadlock_cycle,omitempty"`
	Livelock      bool  `json:"livelock"`

	// Flows is always collected. Links and Switches are nil when the run was
	// collected at StatsSummary level (Config.StatsLevel).
	Flows    []FlowStats   `json:"flows"`
	Links    []LinkStats   `json:"links,omitempty"`
	Switches []SwitchStats `json:"switches,omitempty"`
}

// DeliveredFraction returns the fraction of injected packets delivered by the
// end of the run (1 when nothing was injected).
func (s *Stats) DeliveredFraction() float64 {
	if s.PacketsInjected == 0 {
		return 1
	}
	return float64(s.PacketsDelivered) / float64(s.PacketsInjected)
}

// Healthy reports that the run saw neither a deadlock nor a livelock.
func (s *Stats) Healthy() bool { return !s.Deadlock && !s.Livelock }

// collectStats freezes the run state into the exported statistics. It is
// shared by the optimized and the reference engine: both hand over the same
// link slice layout and per-switch forwarded-flit and output-port counts, so
// equal run states produce byte-identical Stats. When cfg.StatsLevel is
// StatsSummary the per-link and per-switch rows are skipped (the aggregate
// and per-flow numbers are always collected); the simulation itself is
// unaffected.
func collectStats(t *topology.Topology, cfg Config, cycles int64, st *runState, links []*link, forwarded, outputs []int64) *Stats {
	bytesPerFlit := float64(t.Lib.LinkWidthBits) / 8
	// flits/cycle * bytes/flit * cycles/us = bytes/us = MB/s at FreqMHz.
	toMBps := func(flits int64) float64 {
		if cycles == 0 {
			return 0
		}
		return float64(flits) / float64(cycles) * bytesPerFlit * t.FreqMHz
	}

	out := &Stats{
		Cycles:               cycles,
		InjectionCycles:      cfg.Cycles,
		Profile:              cfg.Profile.String(),
		Seed:                 cfg.Seed,
		PacketsInjected:      st.packetsInjected,
		PacketsDelivered:     st.packetsDelivered,
		FlitsInjected:        st.flitsInjected,
		FlitsDelivered:       st.flitsDelivered,
		FlitsInFlight:        st.inNetworkFlits,
		SourceBacklogPackets: st.sourceBacklog,
		Deadlock:             st.deadlock,
		DeadlockCycle:        st.deadlockCycle,
		Livelock:             st.livelock,
	}
	if st.packetsDelivered > 0 {
		out.AvgLatencyCycles = st.latTotalSum / float64(st.packetsDelivered)
		out.MaxLatencyCycles = st.latTotalMax
	}

	out.Flows = make([]FlowStats, t.Design.NumFlows())
	for f := range out.Flows {
		fs := FlowStats{
			Flow:             f,
			OfferedMBps:      toMBps(st.perFlowFlitIn[f]),
			AchievedMBps:     toMBps(st.perFlowFlitOut[f]),
			PacketsInjected:  st.perFlowPktIn[f],
			PacketsDelivered: st.perFlowPktOut[f],
			FlitsInjected:    st.perFlowFlitIn[f],
			FlitsDelivered:   st.perFlowFlitOut[f],
		}
		if st.perFlowHeads[f] > 0 {
			fs.AvgLatencyCycles = st.latSum[f] / float64(st.perFlowHeads[f])
			fs.MinLatencyCycles = st.latMin[f]
			fs.MaxLatencyCycles = st.latMax[f]
		}
		out.Flows[f] = fs
	}

	if cfg.StatsLevel == StatsSummary {
		return out
	}

	kinds := map[linkKind]string{linkInjection: "injection", linkInternal: "internal", linkEjection: "ejection"}
	out.Links = make([]LinkStats, len(links))
	for i, l := range links {
		u := 0.0
		if cycles > 0 {
			u = float64(l.busy) / float64(cycles)
		}
		out.Links[i] = LinkStats{
			Kind: kinds[l.kind], From: l.from, To: l.to, Core: l.core,
			Stages: l.stages, BusyCycles: l.busy, Utilization: u,
		}
	}

	out.Switches = make([]SwitchStats, len(forwarded))
	for i, fw := range forwarded {
		u := 0.0
		if slots := cycles * outputs[i]; slots > 0 {
			u = float64(fw) / float64(slots)
		}
		out.Switches[i] = SwitchStats{Switch: i, FlitsForwarded: fw, Utilization: u}
	}
	return out
}

// Report renders the statistics as "key value" lines plus per-flow and
// per-switch tables (the format of the CLI's sim.txt).
func (s *Stats) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "profile %s\n", s.Profile)
	fmt.Fprintf(&b, "seed %d\n", s.Seed)
	fmt.Fprintf(&b, "cycles %d\n", s.Cycles)
	fmt.Fprintf(&b, "packets_injected %d\n", s.PacketsInjected)
	fmt.Fprintf(&b, "packets_delivered %d\n", s.PacketsDelivered)
	fmt.Fprintf(&b, "delivered_fraction %.4f\n", s.DeliveredFraction())
	fmt.Fprintf(&b, "avg_latency_cycles %.3f\n", s.AvgLatencyCycles)
	fmt.Fprintf(&b, "max_latency_cycles %.3f\n", s.MaxLatencyCycles)
	fmt.Fprintf(&b, "deadlock %v\n", s.Deadlock)
	fmt.Fprintf(&b, "livelock %v\n", s.Livelock)
	b.WriteString("flows:\n")
	for _, f := range s.Flows {
		fmt.Fprintf(&b, "  flow %3d: offered %8.1f MB/s achieved %8.1f MB/s latency avg %7.2f min %5.0f max %5.0f\n",
			f.Flow, f.OfferedMBps, f.AchievedMBps, f.AvgLatencyCycles, f.MinLatencyCycles, f.MaxLatencyCycles)
	}
	b.WriteString("links:\n")
	for _, l := range s.Links {
		var ep string
		switch l.Kind {
		case "injection":
			ep = fmt.Sprintf("core %d -> switch %d", l.Core, l.To)
		case "ejection":
			ep = fmt.Sprintf("switch %d -> core %d", l.From, l.Core)
		default:
			ep = fmt.Sprintf("switch %d -> switch %d", l.From, l.To)
		}
		fmt.Fprintf(&b, "  %-9s %-24s %8d busy cycles, utilization %.4f\n",
			l.Kind, ep, l.BusyCycles, l.Utilization)
	}
	b.WriteString("switches:\n")
	for _, sw := range s.Switches {
		fmt.Fprintf(&b, "  switch %3d: %8d flits forwarded, utilization %.4f\n",
			sw.Switch, sw.FlitsForwarded, sw.Utilization)
	}
	return b.String()
}
