package sim

import (
	"fmt"

	"sunfloor3d/internal/topology"
)

// Run simulates the routed topology under the configured traffic profile and
// returns the collected statistics. The topology must validate (every core
// attached, every flow routed); the simulation replays the committed per-flow
// switch paths with wormhole switching, finite VC buffers and credit-based
// flow control, and aborts early when the runtime watchdog detects a deadlock
// or livelock.
func Run(t *topology.Topology, cfg Config) (*Stats, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	net, err := buildNetwork(t, cfg)
	if err != nil {
		return nil, err
	}
	return net.run(newProfileInjector(t, cfg), cfg), nil
}

// ZeroLoadLatencies simulates every flow in isolation — a single one-flit
// packet injected at cycle 0 into an otherwise empty network — and returns
// the measured head-flit latency of each flow in cycles. This is the
// zero-contention oracle: the returned values must equal
// Topology.FlowLatencyCycles exactly for every flow.
func ZeroLoadLatencies(t *topology.Topology, cfg Config) ([]float64, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.PacketFlits = 1
	cfg.Cycles = 1
	// The drain budget only needs to cover one uncontended traversal; the
	// watchdog still guards against a simulator bug that strands the packet.
	cfg.DrainCycles = 1 << 20
	out := make([]float64, t.Design.NumFlows())
	for f := range t.Design.Flows {
		net, err := buildNetwork(t, cfg)
		if err != nil {
			return nil, err
		}
		st := net.run(&singlePacketInjector{flow: f}, cfg)
		if st.PacketsDelivered != 1 {
			return nil, fmt.Errorf("sim: zero-load packet of flow %d not delivered (deadlock=%v livelock=%v)",
				f, st.Deadlock, st.Livelock)
		}
		out[f] = st.Flows[f].AvgLatencyCycles
	}
	return out, nil
}

// runState carries the mutable counters of one simulation.
type runState struct {
	inNetworkFlits   int64 // flits buffered in switch input VCs (incl. in-flight on links)
	sourceBacklog    int64 // packets queued at or being streamed by an NI
	packetsInNetwork int64 // packets whose head entered the network, tail not yet ejected

	packetsInjected, packetsDelivered int64
	flitsInjected, flitsDelivered     int64

	perFlowPktIn, perFlowPktOut   []int64
	perFlowFlitIn, perFlowFlitOut []int64
	perFlowHeads                  []int64
	latSum, latMin, latMax        []float64

	lastMove      int64
	lastDelivery  int64
	emptySince    int64 // last cycle the network held no undelivered packet
	deadlock      bool
	deadlockCycle int64
	livelock      bool
	latTotalSum   float64
	latTotalMax   float64
}

func newRunState(flows int) *runState {
	st := &runState{
		perFlowPktIn:   make([]int64, flows),
		perFlowPktOut:  make([]int64, flows),
		perFlowFlitIn:  make([]int64, flows),
		perFlowFlitOut: make([]int64, flows),
		perFlowHeads:   make([]int64, flows),
		latSum:         make([]float64, flows),
		latMin:         make([]float64, flows),
		latMax:         make([]float64, flows),
	}
	return st
}

// run executes the cycle loop until the network drains, the horizon expires,
// or the watchdog trips.
func (net *network) run(inj injector, cfg Config) *Stats {
	t := net.top
	st := newRunState(t.Design.NumFlows())

	// The watchdog must outlast the deepest link pipeline: flits in flight on
	// a long link legitimately produce no buffer movement for `stages` cycles.
	watchdog := int64(cfg.WatchdogCycles)
	maxStages := 0
	for _, l := range net.links {
		if l.stages > maxStages {
			maxStages = l.stages
		}
	}
	if min := int64(2*maxStages + 8); watchdog < min {
		watchdog = min
	}
	livelockHorizon := int64(cfg.LivelockCycles)
	if livelockHorizon < watchdog {
		livelockHorizon = watchdog
	}

	horizon := int64(cfg.Cycles)
	maxCycle := horizon + int64(cfg.DrainCycles)

	var now int64
	for now = 0; now < maxCycle; now++ {
		// Injection: every flow is polled every cycle, in index order, so the
		// profile state machines advance deterministically.
		if now < horizon && !inj.done() {
			for f := range t.Design.Flows {
				for k := inj.packetsAt(f, now); k > 0; k-- {
					net.injectPacket(f, now, st)
				}
			}
		}

		moved := net.step(now, st)
		if moved {
			st.lastMove = now
		}
		if st.packetsInNetwork == 0 {
			st.emptySince = now
		}

		active := st.inNetworkFlits > 0 || st.sourceBacklog > 0
		if !active && (now+1 >= horizon || inj.done()) {
			now++
			break
		}
		// Global stall: buffered flits and nothing moved for a whole horizon.
		if st.inNetworkFlits > 0 && now-st.lastMove >= watchdog {
			st.deadlock = true
			st.deadlockCycle = now
			now++
			break
		}
		// Partial deadlock: a circular wait among stalled VCs can hide behind
		// unrelated traffic that keeps the global movement counter alive, so
		// the wait-for graph is checked periodically as well.
		if st.inNetworkFlits > 0 && now > 0 && now%watchdog == 0 && net.findCircularWait(now, watchdog) {
			st.deadlock = true
			st.deadlockCycle = now
			now++
			break
		}
		if st.packetsInNetwork > 0 && now-max64(st.lastDelivery, st.emptySince) >= livelockHorizon {
			st.livelock = true
			now++
			break
		}
	}
	return net.collect(st, cfg, now)
}

// injectPacket creates one packet of the flow and appends it to the source
// core's NI queue.
func (net *network) injectPacket(f int, now int64, st *runState) {
	fl := net.top.Design.Flows[f]
	n := net.niOf[fl.Src]
	pkt := &packet{
		flow:   f,
		flits:  net.packetFlits,
		path:   net.top.Routes[f].Switches,
		inject: now,
	}
	n.q = append(n.q, pkt)
	st.sourceBacklog++
	st.packetsInjected++
	st.flitsInjected += int64(pkt.flits)
	st.perFlowPktIn[f]++
	st.perFlowFlitIn[f] += int64(pkt.flits)
}

// step advances the network by one cycle: NIs first (their flits may be
// forwarded by the attached switch in the same cycle, which is what makes the
// zero-load latency match the analytic model exactly), then every switch
// output port in deterministic order. It reports whether any flit moved.
func (net *network) step(now int64, st *runState) bool {
	moved := false

	// Network interfaces: stream the current packet one flit per cycle.
	for _, n := range net.nis {
		if n.cur == nil {
			if len(n.q) == 0 || n.q[0].inject > now {
				continue
			}
			k := freeVC(n.ds)
			if k < 0 {
				continue
			}
			pkt := n.q[0]
			n.q = n.q[1:]
			n.ds.vcs[k].owner = pkt
			n.ds.vcs[k].hop = 0
			n.ds.vcs[k].lastMove = now
			n.cur, n.seq, n.dsVC = pkt, 0, k
			st.packetsInNetwork++
		}
		v := &n.ds.vcs[n.dsVC]
		if len(v.q) >= net.bufring {
			continue // no credit at the first switch
		}
		// NI link traversal costs only its pipeline stages: the attached
		// switch's own cycle is charged when the switch forwards the flit.
		v.q = append(v.q, flit{pkt: n.cur, seq: n.seq, readyAt: now + int64(n.link.stages)})
		n.link.busy++
		st.inNetworkFlits++
		moved = true
		n.seq++
		if n.seq == n.cur.flits {
			n.cur = nil
			st.sourceBacklog--
		}
	}

	// Switches: one flit per output port per cycle.
	for _, s := range net.nodes {
		ncand := len(s.inputs) * net.vcs
		for _, o := range s.outputs {
			if o.alloc < 0 && ncand > 0 {
				net.arbitrate(s, o, ncand, now)
			}
			if o.alloc < 0 {
				continue
			}
			ip := s.inputs[o.alloc/net.vcs]
			v := &ip.vcs[o.alloc%net.vcs]
			if len(v.q) == 0 {
				continue // next flit still upstream
			}
			f := v.q[0]
			if f.readyAt > now {
				continue // still in the link pipeline
			}
			if o.ds != nil {
				dv := &o.ds.vcs[o.dsVC]
				if len(dv.q) >= net.bufring {
					continue // no downstream credit
				}
				v.q = v.q[1:]
				dv.q = append(dv.q, flit{pkt: f.pkt, seq: f.seq, readyAt: now + 1 + int64(o.link.stages)})
			} else {
				// Ejection: the destination core always accepts.
				v.q = v.q[1:]
				st.inNetworkFlits--
				arrival := now + 1 + int64(o.link.stages)
				net.deliverFlit(f, arrival, st)
			}
			v.lastMove = now
			o.link.busy++
			s.forwarded++
			moved = true
			if f.seq == f.pkt.flits-1 {
				// Tail forwarded: release the VC and the output port.
				v.owner = nil
				o.alloc = -1
				o.dsVC = -1
			}
		}
	}
	return moved
}

// arbitrate grants the free output port to a waiting head flit, round-robin
// over the switch's (input port, VC) pairs, reserving a downstream VC when the
// link leads to another switch.
func (net *network) arbitrate(s *switchNode, o *outputPort, ncand int, now int64) {
	for i := 0; i < ncand; i++ {
		ci := (o.rr + 1 + i) % ncand
		ip := s.inputs[ci/net.vcs]
		v := &ip.vcs[ci%net.vcs]
		if v.owner == nil || len(v.q) == 0 {
			continue
		}
		f := v.q[0]
		if f.seq != 0 || f.readyAt > now {
			continue
		}
		if net.nextOutput(s, v) != o {
			continue
		}
		if o.ds != nil {
			k := freeVC(o.ds)
			if k < 0 {
				continue // no VC on the next link; head keeps waiting
			}
			o.ds.vcs[k].owner = v.owner
			o.ds.vcs[k].hop = v.hop + 1
			o.ds.vcs[k].lastMove = now
			o.dsVC = k
		}
		o.alloc = ci
		o.rr = ci
		return
	}
}

// deliverFlit accounts one flit reaching its destination core.
func (net *network) deliverFlit(f flit, arrival int64, st *runState) {
	flow := f.pkt.flow
	st.flitsDelivered++
	st.perFlowFlitOut[flow]++
	if f.seq == 0 {
		lat := float64(arrival - f.pkt.inject)
		st.latSum[flow] += lat
		st.latTotalSum += lat
		if st.perFlowHeads[flow] == 0 || lat < st.latMin[flow] {
			st.latMin[flow] = lat
		}
		st.perFlowHeads[flow]++
		if lat > st.latMax[flow] {
			st.latMax[flow] = lat
		}
		if lat > st.latTotalMax {
			st.latTotalMax = lat
		}
	}
	if f.seq == f.pkt.flits-1 {
		st.packetsDelivered++
		st.perFlowPktOut[flow]++
		st.packetsInNetwork--
		st.lastDelivery = arrival
	}
}

// findCircularWait detects partial deadlocks the global-stall watchdog cannot
// see: a circular wait among stalled VCs while unrelated traffic keeps the
// network moving. A VC is stalled when its head flit has been ready but
// unmoved for a whole watchdog horizon; each stalled VC waits on exactly one
// definite resource — the downstream VC whose credit it needs (output already
// allocated to it) or the VC currently holding its output port. A cycle of
// such definite waits can never resolve, because every resource on it is
// released only by the movement of another cycle member. Waits with multiple
// ways out (a head that merely needs any free VC on the next link) contribute
// no edge: they cannot prove a deadlock on their own, and the cycle of
// definite waits that starves them is detected through its own members.
func (net *network) findCircularWait(now, watchdog int64) bool {
	type stalledVC struct {
		v    *vc
		node *switchNode
		flat int // candidate index of v within its switch (output alloc space)
	}
	idx := make(map[*vc]int)
	var stalled []stalledVC
	for _, s := range net.nodes {
		for pi, ip := range s.inputs {
			for k := range ip.vcs {
				v := &ip.vcs[k]
				if v.owner == nil || len(v.q) == 0 {
					continue
				}
				if v.q[0].readyAt > now || now-v.lastMove < watchdog {
					continue
				}
				idx[v] = len(stalled)
				stalled = append(stalled, stalledVC{v: v, node: s, flat: pi*net.vcs + k})
			}
		}
	}
	if len(stalled) < 2 {
		return false
	}
	// waitsOn[i] is the index of the stalled VC that i definitely waits on
	// (-1 when the blocker is not itself stalled, or the wait is not
	// definite).
	waitsOn := make([]int, len(stalled))
	for i, sv := range stalled {
		waitsOn[i] = -1
		o := net.nextOutput(sv.node, sv.v)
		var blocker *vc
		switch {
		case o.alloc == sv.flat:
			// Output granted: the head waits on downstream credit. Ejection
			// links always drain, so a stalled VC here implies o.ds != nil.
			if o.ds != nil {
				blocker = &o.ds.vcs[o.dsVC]
			}
		case o.alloc >= 0:
			// Output held by another packet until its tail passes.
			hp := sv.node.inputs[o.alloc/net.vcs]
			blocker = &hp.vcs[o.alloc%net.vcs]
		}
		if blocker != nil {
			if j, ok := idx[blocker]; ok {
				waitsOn[i] = j
			}
		}
	}
	// Functional graph (≤1 out-edge per vertex): follow the chains and look
	// for a vertex that reaches itself.
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make([]int, len(stalled))
	for i := range stalled {
		if color[i] != white {
			continue
		}
		j := i
		for j >= 0 && color[j] == white {
			color[j] = grey
			j = waitsOn[j]
		}
		if j >= 0 && color[j] == grey {
			return true
		}
		k := i
		for k >= 0 && color[k] == grey {
			color[k] = black
			k = waitsOn[k]
		}
	}
	return false
}

// freeVC returns the lowest-index unowned VC of the input port, or -1.
func freeVC(ip *inputPort) int {
	for k := range ip.vcs {
		if ip.vcs[k].owner == nil {
			return k
		}
	}
	return -1
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
