package sim

import (
	"fmt"

	"sunfloor3d/internal/topology"
)

// Run simulates the routed topology under the configured traffic profile and
// returns the collected statistics. The topology must validate (every core
// attached, every flow routed); the simulation replays the committed per-flow
// switch paths with wormhole switching, finite VC buffers and credit-based
// flow control, and aborts early when the runtime watchdog detects a deadlock
// or livelock.
//
// Two engines implement the same cycle-level semantics: the optimized
// production core (arena-allocated packets, ring-buffer VCs, dense routing
// tables, active-set scheduling) and, when cfg.Reference is set, the retained
// pre-optimization stepper. Both produce byte-identical Stats for the same
// topology and Config — the equivalence tests and the fuzz harness enforce
// it.
func Run(t *topology.Topology, cfg Config) (*Stats, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Reference {
		net, err := buildRefNetwork(t, cfg)
		if err != nil {
			return nil, err
		}
		return net.run(newProfileInjector(t, cfg), cfg), nil
	}
	net, err := buildNetwork(t, cfg)
	if err != nil {
		return nil, err
	}
	return net.run(newProfileInjector(t, cfg), cfg), nil
}

// ZeroLoadLatencies simulates every flow in isolation — a single one-flit
// packet injected at cycle 0 into an otherwise empty network — and returns
// the measured head-flit latency of each flow in cycles. This is the
// zero-contention oracle: the returned values must equal
// Topology.FlowLatencyCycles exactly for every flow.
//
// The network is built once and reset() between flows, so the oracle costs
// one structure build instead of one per flow (the reference engine keeps the
// per-flow rebuild).
func ZeroLoadLatencies(t *topology.Topology, cfg Config) ([]float64, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.PacketFlits = 1
	cfg.Cycles = 1
	// The drain budget only needs to cover one uncontended traversal; the
	// watchdog still guards against a simulator bug that strands the packet.
	cfg.DrainCycles = 1 << 20
	if cfg.Reference {
		return refZeroLoadLatencies(t, cfg)
	}
	net, err := buildNetwork(t, cfg)
	if err != nil {
		return nil, err
	}
	out := make([]float64, t.Design.NumFlows())
	for f := range t.Design.Flows {
		if f > 0 {
			net.reset()
		}
		st := net.run(&singlePacketInjector{flow: f}, cfg)
		if st.PacketsDelivered != 1 {
			return nil, fmt.Errorf("sim: zero-load packet of flow %d not delivered (deadlock=%v livelock=%v)",
				f, st.Deadlock, st.Livelock)
		}
		out[f] = st.Flows[f].AvgLatencyCycles
	}
	return out, nil
}

// runState carries the mutable counters of one simulation.
type runState struct {
	inNetworkFlits   int64 // flits buffered in switch input VCs (incl. in-flight on links)
	sourceBacklog    int64 // packets queued at or being streamed by an NI
	packetsInNetwork int64 // packets whose head entered the network, tail not yet ejected

	packetsInjected, packetsDelivered int64
	flitsInjected, flitsDelivered     int64

	perFlowPktIn, perFlowPktOut   []int64
	perFlowFlitIn, perFlowFlitOut []int64
	perFlowHeads                  []int64
	latSum, latMin, latMax        []float64

	lastMove      int64
	lastDelivery  int64
	emptySince    int64 // last cycle the network held no undelivered packet
	deadlock      bool
	deadlockCycle int64
	livelock      bool
	latTotalSum   float64
	latTotalMax   float64
}

func newRunState(flows int) *runState {
	st := &runState{
		perFlowPktIn:   make([]int64, flows),
		perFlowPktOut:  make([]int64, flows),
		perFlowFlitIn:  make([]int64, flows),
		perFlowFlitOut: make([]int64, flows),
		perFlowHeads:   make([]int64, flows),
		latSum:         make([]float64, flows),
		latMin:         make([]float64, flows),
		latMax:         make([]float64, flows),
	}
	return st
}

// horizons derives the watchdog and livelock horizons of a run. The watchdog
// must outlast the deepest link pipeline: flits in flight on a long link
// legitimately produce no buffer movement for `stages` cycles.
func horizons(cfg Config, links []*link) (watchdog, livelock int64) {
	watchdog = int64(cfg.WatchdogCycles)
	maxStages := 0
	for _, l := range links {
		if l.stages > maxStages {
			maxStages = l.stages
		}
	}
	if min := int64(2*maxStages + 8); watchdog < min {
		watchdog = min
	}
	livelock = int64(cfg.LivelockCycles)
	if livelock < watchdog {
		livelock = watchdog
	}
	return watchdog, livelock
}

// run executes the cycle loop until the network drains, the horizon expires,
// or the watchdog trips.
func (net *network) run(inj injector, cfg Config) *Stats {
	t := net.top
	st := newRunState(t.Design.NumFlows())
	watchdog, livelockHorizon := horizons(cfg, net.links)

	horizon := int64(cfg.Cycles)
	maxCycle := horizon + int64(cfg.DrainCycles)

	// The emit closure is hoisted out of the loop (injNow carries the cycle)
	// so injection allocates nothing per cycle.
	var injNow int64
	emit := func(f, k int) {
		for ; k > 0; k-- {
			net.injectPacket(f, injNow, st)
		}
	}

	var now int64
	for now = 0; now < maxCycle; now++ {
		// Injection: every flow is polled every cycle, in index order, so the
		// profile state machines advance deterministically.
		if now < horizon && !inj.done() {
			// Fast-forward: with the network fully drained and the injector
			// able to prove (and bit-identically skip) a quiet stretch, the
			// clock jumps straight to the next injector event instead of
			// ticking empty cycles. Skipped cycles are no-ops in the
			// reference engine too — no flit moves, no watchdog arms — so
			// the Stats are unchanged.
			if st.inNetworkFlits == 0 && st.sourceBacklog == 0 {
				if next := inj.nextEventAt(now); next > now {
					if next >= horizon {
						// The injector stays quiet through the horizon: the
						// reference loop would idle to horizon-1 and stop.
						st.emptySince = horizon - 1
						now = horizon
						break
					}
					st.emptySince = next - 1
					now = next
				}
			}
			injNow = now
			inj.poll(now, emit)
		}

		moved := net.step(now, st)
		if moved {
			st.lastMove = now
		}
		if st.packetsInNetwork == 0 {
			st.emptySince = now
		}

		active := st.inNetworkFlits > 0 || st.sourceBacklog > 0
		if !active && (now+1 >= horizon || inj.done()) {
			now++
			break
		}
		// Global stall: buffered flits and nothing moved for a whole horizon.
		if st.inNetworkFlits > 0 && now-st.lastMove >= watchdog {
			st.deadlock = true
			st.deadlockCycle = now
			now++
			break
		}
		// Partial deadlock: a circular wait among stalled VCs can hide behind
		// unrelated traffic that keeps the global movement counter alive, so
		// the wait-for graph is checked periodically as well.
		if st.inNetworkFlits > 0 && now > 0 && now%watchdog == 0 && net.findCircularWait(now, watchdog) {
			st.deadlock = true
			st.deadlockCycle = now
			now++
			break
		}
		if st.packetsInNetwork > 0 && now-max64(st.lastDelivery, st.emptySince) >= livelockHorizon {
			st.livelock = true
			now++
			break
		}
	}
	forwarded := make([]int64, len(net.nodes))
	outputs := make([]int64, len(net.nodes))
	for i, s := range net.nodes {
		forwarded[i] = s.forwarded
		outputs[i] = int64(len(s.outputs))
	}
	return collectStats(net.top, cfg, now, st, net.links, forwarded, outputs)
}

// injectPacket creates one packet of the flow in the arena and appends its
// index to the source core's NI queue.
func (net *network) injectPacket(f int, now int64, st *runState) {
	fl := net.top.Design.Flows[f]
	n := net.niOf[fl.Src]
	id := net.allocPacket()
	net.packets[id] = packet{
		flow:   int32(f),
		flits:  int32(net.packetFlits),
		path:   net.top.Routes[f].Switches,
		inject: now,
	}
	n.q.push(id)
	st.sourceBacklog++
	st.packetsInjected++
	st.flitsInjected += int64(net.packetFlits)
	st.perFlowPktIn[f]++
	st.perFlowFlitIn[f] += int64(net.packetFlits)
}

// step advances the network by one cycle: NIs first (their flits may be
// forwarded by the attached switch in the same cycle, which is what makes the
// zero-load latency match the analytic model exactly), then every switch
// output port in deterministic order. It reports whether any flit moved.
//
// Unlike the reference engine's dense scan, step touches only the active
// set: the NI loop is skipped entirely while no packet is queued or
// streaming, switches with no owned VC are skipped in one comparison, and a
// free output port runs its arbitration scan only when its waiters list says
// a buffered head flit actually requests it. The iteration order over the
// surviving work (core order, then switch/port index order) is identical to
// the reference scan, which is what keeps arbitration — and therefore the
// whole run — bit-identical.
func (net *network) step(now int64, st *runState) bool {
	moved := false

	// Network interfaces: stream the current packet one flit per cycle.
	if st.sourceBacklog > 0 {
		for _, n := range net.nis {
			if n.cur < 0 {
				if n.q.len() == 0 || net.packets[n.q.front()].inject > now {
					continue
				}
				k := freeVC(n.ds)
				if k < 0 {
					continue
				}
				id := n.q.pop()
				v := &n.ds.vcs[k]
				v.owner = id
				v.hop = 0
				v.lastMove = now
				v.out = net.routeOutput(n.ds.sw, v)
				n.ds.sw.busyVCs++
				n.cur, n.seq, n.dsVC = id, 0, int32(k)
				st.packetsInNetwork++
			}
			v := &n.ds.vcs[n.dsVC]
			if int(v.n) >= net.bufring {
				continue // no credit at the first switch
			}
			// NI link traversal costs only its pipeline stages: the attached
			// switch's own cycle is charged when the switch forwards the flit.
			v.push(flit{pkt: n.cur, seq: n.seq, readyAt: now + int64(n.link.stages)})
			if n.seq == 0 {
				n.ds.sw.outputs[v.out].waiters++
			}
			n.link.busy++
			st.inNetworkFlits++
			moved = true
			n.seq++
			if n.seq == net.packets[n.cur].flits {
				n.cur = -1
				st.sourceBacklog--
			}
		}
	}

	// Switches: one flit per output port per cycle.
	for _, s := range net.nodes {
		if s.busyVCs == 0 {
			continue // no owned VC: nothing buffered, granted or requested
		}
		for oi, o := range s.outputs {
			if o.link.deadAt <= now {
				continue // failed link: nothing is granted or forwarded onto it
			}
			if o.alloc < 0 {
				if o.waiters == 0 {
					continue
				}
				net.arbitrate(s, o, int32(oi), now)
				if o.alloc < 0 {
					continue
				}
			}
			v := o.srcVC
			if v.n == 0 {
				continue // next flit still upstream
			}
			f := v.front()
			if f.readyAt > now {
				continue // still in the link pipeline
			}
			if o.ds != nil {
				dv := &o.ds.vcs[o.dsVC]
				if int(dv.n) >= net.bufring {
					continue // no downstream credit
				}
				v.pop()
				dv.push(flit{pkt: f.pkt, seq: f.seq, readyAt: now + 1 + int64(o.link.stages)})
				if f.seq == 0 {
					o.ds.sw.outputs[dv.out].waiters++
				}
			} else {
				// Ejection: the destination core always accepts.
				v.pop()
				st.inNetworkFlits--
				arrival := now + 1 + int64(o.link.stages)
				p := &net.packets[f.pkt]
				deliverFlit(int(p.flow), int(f.seq), int(p.flits), p.inject, arrival, st)
			}
			v.lastMove = now
			o.link.busy++
			s.forwarded++
			moved = true
			if f.seq == net.packets[f.pkt].flits-1 {
				// Tail forwarded: release the VC and the output port; a tail
				// leaving on an ejection link retires the packet to the
				// arena free list (no live reference remains).
				v.owner = -1
				v.out = -1
				s.busyVCs--
				if o.ds == nil {
					net.freePacket(f.pkt)
				}
				o.alloc = -1
				o.srcVC = nil
				o.dsVC = -1
			}
		}
	}
	return moved
}

// arbitrate grants the free output port to a waiting head flit, round-robin
// over the switch's (input port, VC) pairs, reserving a downstream VC when
// the link leads to another switch. The scan order and grant rule are
// identical to the reference engine; the only difference is that each
// candidate's requested port is the cached vc.out instead of a per-candidate
// routing lookup, and a successful grant removes the VC from the port's
// waiters count.
func (net *network) arbitrate(s *switchNode, o *outputPort, oi int32, now int64) {
	// With every downstream VC owned, no candidate can be granted this cycle
	// whatever the scan finds (the VC reservation is the last grant
	// condition and is candidate-independent), and the scan itself has no
	// side effects — so skip it. Under saturation this prunes most scans.
	dsFree := -1
	if o.ds != nil {
		if dsFree = freeVC(o.ds); dsFree < 0 {
			return
		}
	}
	vcs := int32(net.vcs)
	ncand := int32(len(s.inputs)) * vcs
	// Walk the candidate ring starting after the last grant, tracking the
	// (input port, VC) coordinates incrementally instead of dividing per
	// candidate.
	ci := o.rr + 1
	if ci >= ncand {
		ci -= ncand
	}
	pi := ci / vcs
	k := ci % vcs
	ip := s.inputs[pi]
	for i := int32(0); i < ncand; i++ {
		v := &ip.vcs[k]
		if v.owner >= 0 && v.n > 0 && v.out == oi {
			f := v.front()
			if f.seq == 0 && f.readyAt <= now {
				if o.ds != nil {
					dv := &o.ds.vcs[dsFree]
					dv.owner = v.owner
					dv.hop = v.hop + 1
					dv.lastMove = now
					dv.out = net.routeOutput(o.ds.sw, dv)
					o.ds.sw.busyVCs++
					o.dsVC = int32(dsFree)
				}
				o.alloc = ci
				o.srcVC = v
				o.rr = ci
				o.waiters--
				return
			}
		}
		ci++
		k++
		if k == vcs {
			k = 0
			pi++
			if pi == int32(len(s.inputs)) {
				pi = 0
				ci = 0
			}
			ip = s.inputs[pi]
		}
	}
}

// deliverFlit accounts one flit reaching its destination core. It is shared
// by both engines, so the latency accumulation order — and therefore every
// floating-point sum in Stats — is identical.
func deliverFlit(flow, seq, flits int, inject, arrival int64, st *runState) {
	st.flitsDelivered++
	st.perFlowFlitOut[flow]++
	if seq == 0 {
		lat := float64(arrival - inject)
		st.latSum[flow] += lat
		st.latTotalSum += lat
		if st.perFlowHeads[flow] == 0 || lat < st.latMin[flow] {
			st.latMin[flow] = lat
		}
		st.perFlowHeads[flow]++
		if lat > st.latMax[flow] {
			st.latMax[flow] = lat
		}
		if lat > st.latTotalMax {
			st.latTotalMax = lat
		}
	}
	if seq == flits-1 {
		st.packetsDelivered++
		st.perFlowPktOut[flow]++
		st.packetsInNetwork--
		st.lastDelivery = arrival
	}
}

// findCircularWait detects partial deadlocks the global-stall watchdog cannot
// see: a circular wait among stalled VCs while unrelated traffic keeps the
// network moving. A VC is stalled when its head flit has been ready but
// unmoved for a whole watchdog horizon; each stalled VC waits on exactly one
// definite resource — the downstream VC whose credit it needs (output already
// allocated to it) or the VC currently holding its output port. A cycle of
// such definite waits can never resolve, because every resource on it is
// released only by the movement of another cycle member. Waits with multiple
// ways out (a head that merely needs any free VC on the next link) contribute
// no edge: they cannot prove a deadlock on their own, and the cycle of
// definite waits that starves them is detected through its own members.
//
// The detector walks only active switches and keeps its stalled list, wait
// edges and colors in scratch buffers on the network, so the periodic check
// allocates nothing in steady state. The transient vc.cwIdx field replaces
// the reference engine's map from VC pointer to stalled index.
func (net *network) findCircularWait(now, watchdog int64) bool {
	stalled := net.cwStalled[:0]
	for _, s := range net.nodes {
		if s.busyVCs == 0 {
			continue // a stalled VC is necessarily owned
		}
		for pi, ip := range s.inputs {
			for k := range ip.vcs {
				v := &ip.vcs[k]
				if v.owner < 0 || v.n == 0 {
					continue
				}
				if v.front().readyAt > now || now-v.lastMove < watchdog {
					continue
				}
				v.cwIdx = int32(len(stalled))
				stalled = append(stalled, stalledVC{v: v, node: s, flat: int32(pi*net.vcs + k)})
			}
		}
	}
	net.cwStalled = stalled
	if len(stalled) < 2 {
		clearCwIdx(stalled)
		return false
	}
	if cap(net.cwWaits) < len(stalled) {
		net.cwWaits = make([]int32, len(stalled))
		net.cwColor = make([]uint8, len(stalled))
	}
	// waitsOn[i] is the index of the stalled VC that i definitely waits on
	// (-1 when the blocker is not itself stalled, or the wait is not
	// definite).
	waitsOn := net.cwWaits[:len(stalled)]
	for i, sv := range stalled {
		waitsOn[i] = -1
		o := sv.node.outputs[sv.v.out]
		var blocker *vc
		switch {
		case o.alloc == sv.flat:
			// Output granted: the head waits on downstream credit. Ejection
			// links always drain, so a stalled VC here implies o.ds != nil.
			if o.ds != nil {
				blocker = &o.ds.vcs[o.dsVC]
			}
		case o.alloc >= 0:
			// Output held by another packet until its tail passes.
			hp := sv.node.inputs[o.alloc/int32(net.vcs)]
			blocker = &hp.vcs[o.alloc%int32(net.vcs)]
		}
		if blocker != nil && blocker.cwIdx >= 0 {
			waitsOn[i] = blocker.cwIdx
		}
	}
	// Functional graph (≤1 out-edge per vertex): follow the chains and look
	// for a vertex that reaches itself.
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := net.cwColor[:len(stalled)]
	for i := range color {
		color[i] = white
	}
	for i := range stalled {
		if color[i] != white {
			continue
		}
		j := int32(i)
		for j >= 0 && color[j] == white {
			color[j] = grey
			j = waitsOn[j]
		}
		if j >= 0 && color[j] == grey {
			clearCwIdx(stalled)
			return true
		}
		k := int32(i)
		for k >= 0 && color[k] == grey {
			color[k] = black
			k = waitsOn[k]
		}
	}
	clearCwIdx(stalled)
	return false
}

// clearCwIdx restores the -1 invariant of vc.cwIdx after a detection pass.
func clearCwIdx(stalled []stalledVC) {
	for _, sv := range stalled {
		sv.v.cwIdx = -1
	}
}

// freeVC returns the lowest-index unowned VC of the input port, or -1.
func freeVC(ip *inputPort) int {
	for k := range ip.vcs {
		if ip.vcs[k].owner < 0 {
			return k
		}
	}
	return -1
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
