package sim

// pktRing is a growable ring deque of packet arena indices, used as the NI
// source queue. Unlike the reference engine's q = q[1:] slice advance — which
// keeps every popped packet reachable through the backing array until the
// next append reallocates — the ring reuses its backing storage in place and
// grows only when the queue depth exceeds every depth seen before.
type pktRing struct {
	buf  []int32
	head int
	n    int
}

func (r *pktRing) len() int { return r.n }

func (r *pktRing) front() int32 { return r.buf[r.head] }

func (r *pktRing) push(id int32) {
	if r.n == len(r.buf) {
		r.grow()
	}
	i := r.head + r.n
	if i >= len(r.buf) {
		i -= len(r.buf)
	}
	r.buf[i] = id
	r.n++
}

func (r *pktRing) pop() int32 {
	id := r.buf[r.head]
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
	}
	r.n--
	return id
}

// reset empties the ring, keeping its capacity for reuse.
func (r *pktRing) reset() {
	r.head, r.n = 0, 0
}

// grow doubles the ring capacity, unwrapping the live window to the front of
// the new backing array.
func (r *pktRing) grow() {
	cap := 2 * len(r.buf)
	if cap < 8 {
		cap = 8
	}
	nb := make([]int32, cap)
	for i := 0; i < r.n; i++ {
		j := r.head + i
		if j >= len(r.buf) {
			j -= len(r.buf)
		}
		nb[i] = r.buf[j]
	}
	r.buf, r.head = nb, 0
}
