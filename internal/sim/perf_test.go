package sim

// White-box performance regression tests of the execution core: a
// steady-state cycle must not allocate (the arena, the VC rings and the NI
// ring deque exist to guarantee it), and the engine must stay deterministic
// and reference-equivalent on randomly generated specs (FuzzSimDeterminism).

import (
	"bytes"
	"encoding/json"
	"testing"

	"sunfloor3d/internal/model"
	"sunfloor3d/internal/noclib"
	"sunfloor3d/internal/topology"
)

// chainTopology builds a hand-routed line of k switches (one core each) with
// the given flows routed along the chain. It is the minimal valid topology:
// every flow's path is the contiguous switch interval between its endpoints.
func chainTopology(k int, flows []model.Flow) (*topology.Topology, error) {
	cores := make([]model.Core, k)
	for i := range cores {
		cores[i] = model.Core{
			Name: "c" + string(rune('a'+i)), Width: 1, Height: 1,
			X: float64(i) * 3, Y: 0,
		}
	}
	g, err := model.NewCommGraph(cores, flows)
	if err != nil {
		return nil, err
	}
	top := topology.New(g, noclib.DefaultLibrary(), 400)
	for i := 0; i < k; i++ {
		top.AddSwitch(0)
		top.AttachCore(i, i)
		top.Switches[i].Pos = cores[i].Center()
	}
	for f, fl := range flows {
		var path []int
		if fl.Src <= fl.Dst {
			for s := fl.Src; s <= fl.Dst; s++ {
				path = append(path, s)
			}
		} else {
			for s := fl.Src; s >= fl.Dst; s-- {
				path = append(path, s)
			}
		}
		top.SetRoute(f, path)
	}
	if err := top.Validate(); err != nil {
		return nil, err
	}
	return top, nil
}

// TestRunSteadyStateAllocs is the regression test for the reference engine's
// allocation patterns (a packet per injection, append-grown queues, and the
// q = q[1:] NI queue that kept delivered packets reachable): on a reused
// network, a whole run — thousands of cycles, hundreds of packets — must
// allocate only the per-run bookkeeping (run state, injector, collected
// stats), independent of how much traffic flows.
func TestRunSteadyStateAllocs(t *testing.T) {
	flows := []model.Flow{
		{Src: 0, Dst: 3, BandwidthMBps: 900},
		{Src: 3, Dst: 0, BandwidthMBps: 700},
		{Src: 1, Dst: 2, BandwidthMBps: 500},
		{Src: 2, Dst: 1, BandwidthMBps: 300},
	}
	top, err := chainTopology(4, flows)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.StatsLevel = StatsSummary

	allocsFor := func(cycles int) float64 {
		cfg.Cycles = cycles
		cfg.DrainCycles = cycles
		net, err := buildNetwork(top, cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Warm-up run: lets the packet arena and the NI rings reach their
		// steady-state capacity before counting.
		net.run(newProfileInjector(top, cfg), cfg)
		return testing.AllocsPerRun(5, func() {
			net.reset()
			st := net.run(newProfileInjector(top, cfg), cfg)
			if st.PacketsDelivered == 0 {
				t.Fatal("no traffic simulated")
			}
		})
	}

	short := allocsFor(500)
	long := allocsFor(4000)
	// Per-run bookkeeping: run state slices, injector, Stats with per-flow
	// rows. Anything scaling with traffic blows well past this.
	const budget = 48
	if short > budget || long > budget {
		t.Errorf("run allocates too much: %v allocs at 500 cycles, %v at 4000 (budget %d)", short, long, budget)
	}
	if long > short+4 {
		t.Errorf("allocations scale with simulated cycles: %v at 500, %v at 4000", short, long)
	}
}

// FuzzSimDeterminism generates a random chain spec and traffic configuration
// and checks the two halves of the simulator's core contract: the same seed
// twice produces byte-identical Stats, and the optimized engine matches the
// retained reference stepper bit for bit.
func FuzzSimDeterminism(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(3), uint8(0), uint16(300), false)
	f.Add(int64(42), uint8(2), uint8(1), uint8(1), uint16(128), true)
	f.Add(int64(7), uint8(6), uint8(7), uint8(2), uint16(500), false)
	f.Fuzz(func(t *testing.T, seed int64, nsw, nflows, profile uint8, cycles uint16, tight bool) {
		k := 2 + int(nsw%5)    // 2..6 switches
		m := 1 + int(nflows%6) // 1..6 flows
		flows := make([]model.Flow, 0, m)
		for i := 0; i < m; i++ {
			// Derive deterministic, spread-out endpoints from the fuzz input.
			src := (int(seed>>(uint(i)%40)) + i) % k
			if src < 0 {
				src += k
			}
			dst := (src + 1 + i%(k-1)) % k
			bw := 100 + float64((int(cycles)+97*i)%1500)
			flows = append(flows, model.Flow{Src: src, Dst: dst, BandwidthMBps: bw})
		}
		top, err := chainTopology(k, flows)
		if err != nil {
			t.Skip() // degenerate spec (e.g. duplicate flow endpoints)
		}
		cfg := DefaultConfig()
		cfg.Seed = seed
		cfg.Profile = Profile(int(profile) % 3)
		cfg.Cycles = 64 + int(cycles%448)
		cfg.DrainCycles = cfg.Cycles
		cfg.WatchdogCycles = 64
		cfg.LivelockCycles = 256
		if tight {
			cfg.VCs = 1
			cfg.BufferFlits = 2
			cfg.PacketFlits = 6
		}

		run := func(reference bool) []byte {
			c := cfg
			c.Reference = reference
			st, err := Run(top, c)
			if err != nil {
				t.Fatalf("reference=%v: %v", reference, err)
			}
			j, err := json.Marshal(st)
			if err != nil {
				t.Fatal(err)
			}
			return j
		}
		a, b := run(false), run(false)
		if !bytes.Equal(a, b) {
			t.Fatalf("same seed diverged:\n%s\n%s", a, b)
		}
		ref := run(true)
		if !bytes.Equal(a, ref) {
			t.Fatalf("optimized engine diverged from reference:\noptimized: %s\nreference: %s", a, ref)
		}
	})
}
