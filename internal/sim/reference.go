package sim

import (
	"fmt"

	"sunfloor3d/internal/geom"
	"sunfloor3d/internal/topology"
)

// This file retains the pre-optimization execution core — pointer-based
// packets allocated per injection, slice-backed VC queues advanced with
// q = q[1:], map-based output lookups and a dense cycle loop that scans every
// NI, switch and output port every cycle. It is selected with
// Config.Reference and exists for two reasons: as the oracle of the
// equivalence tests (the optimized engine must produce byte-identical Stats)
// and as the baseline of the before/after simulator benchmarks
// (BENCH_PR4.json). It must not be "improved"; any behavioural change here
// invalidates both uses.

// refPacket is one in-flight packet of the reference engine.
type refPacket struct {
	flow   int
	flits  int
	path   []int // committed switch path of the flow
	inject int64 // cycle the packet entered its source queue
}

// refFlit is one flow-control unit buffered in a reference virtual channel.
type refFlit struct {
	pkt     *refPacket
	seq     int // 0 = head, pkt.flits-1 = tail
	readyAt int64
}

// refVC is one virtual-channel buffer of a reference switch input port.
type refVC struct {
	owner    *refPacket
	hop      int // index of this input port's switch within owner.path
	q        []refFlit
	lastMove int64
}

// refInputPort is one switch input port with its virtual channels.
type refInputPort struct {
	link *link
	vcs  []refVC
}

// refOutputPort is one switch output port.
type refOutputPort struct {
	link *link
	// ds is the input port on the downstream switch (nil for ejection links).
	ds *refInputPort
	// alloc is the index into the owning switch's flat candidate list of the
	// (input port, VC) currently holding this output, or -1 when free.
	alloc int
	// dsVC is the downstream VC reserved for the allocated packet.
	dsVC int
	// rr is the round-robin arbitration pointer over the candidate list.
	rr int
}

// refSwitch is one simulated switch of the reference engine.
type refSwitch struct {
	id      int
	inputs  []*refInputPort
	outputs []*refOutputPort
	// outTo maps a next-hop switch ID to the output port index; outEject maps
	// a destination core to its ejection output port index.
	outTo    map[int]int
	outEject map[int]int

	forwarded int64 // flits forwarded by this switch
}

// refNI is the network interface of one source core: an unbounded source
// queue feeding the core's injection link one flit per cycle.
type refNI struct {
	core int
	link *link
	ds   *refInputPort
	q    []*refPacket
	cur  *refPacket
	seq  int
	dsVC int
}

// refNetwork is the static structure plus the dynamic state of one reference
// simulation.
type refNetwork struct {
	top   *topology.Topology
	links []*link
	nodes []*refSwitch
	nis   []*refNI
	niOf  []*refNI

	vcs         int
	bufring     int
	packetFlits int
}

// buildRefNetwork instantiates the reference simulation structure. The link
// construction order is identical to buildNetwork, so both engines report the
// same link rows in the same order.
func buildRefNetwork(t *topology.Topology, cfg Config) (*refNetwork, error) {
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("sim: topology not simulatable: %w", err)
	}
	net := &refNetwork{top: t, vcs: cfg.VCs, bufring: cfg.BufferFlits, packetFlits: cfg.PacketFlits}

	nodes := make([]*refSwitch, t.NumSwitches())
	for i := range nodes {
		nodes[i] = &refSwitch{id: i, outTo: make(map[int]int), outEject: make(map[int]int)}
	}
	net.nodes = nodes

	isSrc := make([]bool, t.Design.NumCores())
	isDst := make([]bool, t.Design.NumCores())
	for _, f := range t.Design.Flows {
		isSrc[f.Src] = true
		isDst[f.Dst] = true
	}

	addLink := func(l *link) *link {
		l.id = len(net.links)
		l.deadAt = neverDead
		net.links = append(net.links, l)
		return l
	}
	attachInput := func(s int, l *link) *refInputPort {
		p := &refInputPort{link: l, vcs: make([]refVC, cfg.VCs)}
		nodes[s].inputs = append(nodes[s].inputs, p)
		return p
	}
	attachOutput := func(s int, l *link, ds *refInputPort) int {
		o := &refOutputPort{link: l, ds: ds, alloc: -1}
		nodes[s].outputs = append(nodes[s].outputs, o)
		return len(nodes[s].outputs) - 1
	}

	// Injection links, in core order (deterministic network layout).
	net.niOf = make([]*refNI, t.Design.NumCores())
	for c := 0; c < t.Design.NumCores(); c++ {
		if !isSrc[c] {
			continue
		}
		sw := t.CoreAttach[c]
		planar := t.Design.Cores[c].Rect().Center()
		stages := t.Lib.LinkPipelineStages(geom.Manhattan(planar, t.Switches[sw].Pos), t.FreqMHz)
		l := addLink(&link{kind: linkInjection, from: -1, to: sw, core: c, stages: stages})
		in := attachInput(sw, l)
		n := &refNI{core: c, link: l, ds: in}
		net.nis = append(net.nis, n)
		net.niOf[c] = n
	}

	// Switch-to-switch links, in the deterministic (From, To) order of
	// SwitchLinks.
	for _, sl := range t.SwitchLinks() {
		planar := geom.Manhattan(t.Switches[sl.From].Pos, t.Switches[sl.To].Pos)
		stages := t.Lib.LinkPipelineStages(planar, t.FreqMHz)
		l := addLink(&link{kind: linkInternal, from: sl.From, to: sl.To, core: -1, stages: stages})
		in := attachInput(sl.To, l)
		nodes[sl.From].outTo[sl.To] = attachOutput(sl.From, l, in)
	}

	// Ejection links, in core order.
	for c := 0; c < t.Design.NumCores(); c++ {
		if !isDst[c] {
			continue
		}
		sw := t.CoreAttach[c]
		planar := t.Design.Cores[c].Rect().Center()
		stages := t.Lib.LinkPipelineStages(geom.Manhattan(planar, t.Switches[sw].Pos), t.FreqMHz)
		l := addLink(&link{kind: linkEjection, from: sw, to: -1, core: c, stages: stages})
		nodes[sw].outEject[c] = attachOutput(sw, l, nil)
	}
	if err := applyDeadLinks(net.links, cfg); err != nil {
		return nil, err
	}
	return net, nil
}

// nextOutput returns the output port the packet requests at the switch where
// the given input VC lives.
func (net *refNetwork) nextOutput(s *refSwitch, v *refVC) *refOutputPort {
	pkt := v.owner
	if v.hop == len(pkt.path)-1 {
		dst := net.top.Design.Flows[pkt.flow].Dst
		return s.outputs[s.outEject[dst]]
	}
	return s.outputs[s.outTo[pkt.path[v.hop+1]]]
}

// run executes the reference cycle loop until the network drains, the horizon
// expires, or the watchdog trips.
func (net *refNetwork) run(inj injector, cfg Config) *Stats {
	t := net.top
	st := newRunState(t.Design.NumFlows())
	watchdog, livelockHorizon := horizons(cfg, net.links)

	horizon := int64(cfg.Cycles)
	maxCycle := horizon + int64(cfg.DrainCycles)

	var injNow int64
	emit := func(f, k int) {
		for ; k > 0; k-- {
			net.injectPacket(f, injNow, st)
		}
	}

	var now int64
	for now = 0; now < maxCycle; now++ {
		// Injection: every flow is polled every cycle, in index order, so the
		// profile state machines advance deterministically.
		if now < horizon && !inj.done() {
			injNow = now
			inj.poll(now, emit)
		}

		moved := net.step(now, st)
		if moved {
			st.lastMove = now
		}
		if st.packetsInNetwork == 0 {
			st.emptySince = now
		}

		active := st.inNetworkFlits > 0 || st.sourceBacklog > 0
		if !active && (now+1 >= horizon || inj.done()) {
			now++
			break
		}
		// Global stall: buffered flits and nothing moved for a whole horizon.
		if st.inNetworkFlits > 0 && now-st.lastMove >= watchdog {
			st.deadlock = true
			st.deadlockCycle = now
			now++
			break
		}
		// Partial deadlock: a circular wait among stalled VCs can hide behind
		// unrelated traffic that keeps the global movement counter alive, so
		// the wait-for graph is checked periodically as well.
		if st.inNetworkFlits > 0 && now > 0 && now%watchdog == 0 && net.findCircularWait(now, watchdog) {
			st.deadlock = true
			st.deadlockCycle = now
			now++
			break
		}
		if st.packetsInNetwork > 0 && now-max64(st.lastDelivery, st.emptySince) >= livelockHorizon {
			st.livelock = true
			now++
			break
		}
	}
	forwarded := make([]int64, len(net.nodes))
	outputs := make([]int64, len(net.nodes))
	for i, s := range net.nodes {
		forwarded[i] = s.forwarded
		outputs[i] = int64(len(s.outputs))
	}
	return collectStats(net.top, cfg, now, st, net.links, forwarded, outputs)
}

// injectPacket creates one packet of the flow and appends it to the source
// core's NI queue.
func (net *refNetwork) injectPacket(f int, now int64, st *runState) {
	fl := net.top.Design.Flows[f]
	n := net.niOf[fl.Src]
	pkt := &refPacket{
		flow:   f,
		flits:  net.packetFlits,
		path:   net.top.Routes[f].Switches,
		inject: now,
	}
	n.q = append(n.q, pkt)
	st.sourceBacklog++
	st.packetsInjected++
	st.flitsInjected += int64(pkt.flits)
	st.perFlowPktIn[f]++
	st.perFlowFlitIn[f] += int64(pkt.flits)
}

// step advances the reference network by one cycle: NIs first, then every
// switch output port in deterministic order.
func (net *refNetwork) step(now int64, st *runState) bool {
	moved := false

	// Network interfaces: stream the current packet one flit per cycle.
	for _, n := range net.nis {
		if n.cur == nil {
			if len(n.q) == 0 || n.q[0].inject > now {
				continue
			}
			k := refFreeVC(n.ds)
			if k < 0 {
				continue
			}
			pkt := n.q[0]
			n.q = n.q[1:]
			n.ds.vcs[k].owner = pkt
			n.ds.vcs[k].hop = 0
			n.ds.vcs[k].lastMove = now
			n.cur, n.seq, n.dsVC = pkt, 0, k
			st.packetsInNetwork++
		}
		v := &n.ds.vcs[n.dsVC]
		if len(v.q) >= net.bufring {
			continue // no credit at the first switch
		}
		// NI link traversal costs only its pipeline stages: the attached
		// switch's own cycle is charged when the switch forwards the flit.
		v.q = append(v.q, refFlit{pkt: n.cur, seq: n.seq, readyAt: now + int64(n.link.stages)})
		n.link.busy++
		st.inNetworkFlits++
		moved = true
		n.seq++
		if n.seq == n.cur.flits {
			n.cur = nil
			st.sourceBacklog--
		}
	}

	// Switches: one flit per output port per cycle.
	for _, s := range net.nodes {
		ncand := len(s.inputs) * net.vcs
		for _, o := range s.outputs {
			if o.link.deadAt <= now {
				continue // failed link: nothing is granted or forwarded onto it
			}
			if o.alloc < 0 && ncand > 0 {
				net.arbitrate(s, o, ncand, now)
			}
			if o.alloc < 0 {
				continue
			}
			ip := s.inputs[o.alloc/net.vcs]
			v := &ip.vcs[o.alloc%net.vcs]
			if len(v.q) == 0 {
				continue // next flit still upstream
			}
			f := v.q[0]
			if f.readyAt > now {
				continue // still in the link pipeline
			}
			if o.ds != nil {
				dv := &o.ds.vcs[o.dsVC]
				if len(dv.q) >= net.bufring {
					continue // no downstream credit
				}
				v.q = v.q[1:]
				dv.q = append(dv.q, refFlit{pkt: f.pkt, seq: f.seq, readyAt: now + 1 + int64(o.link.stages)})
			} else {
				// Ejection: the destination core always accepts.
				v.q = v.q[1:]
				st.inNetworkFlits--
				arrival := now + 1 + int64(o.link.stages)
				deliverFlit(f.pkt.flow, f.seq, f.pkt.flits, f.pkt.inject, arrival, st)
			}
			v.lastMove = now
			o.link.busy++
			s.forwarded++
			moved = true
			if f.seq == f.pkt.flits-1 {
				// Tail forwarded: release the VC and the output port.
				v.owner = nil
				o.alloc = -1
				o.dsVC = -1
			}
		}
	}
	return moved
}

// arbitrate grants the free output port to a waiting head flit, round-robin
// over the switch's (input port, VC) pairs, reserving a downstream VC when the
// link leads to another switch.
func (net *refNetwork) arbitrate(s *refSwitch, o *refOutputPort, ncand int, now int64) {
	for i := 0; i < ncand; i++ {
		ci := (o.rr + 1 + i) % ncand
		ip := s.inputs[ci/net.vcs]
		v := &ip.vcs[ci%net.vcs]
		if v.owner == nil || len(v.q) == 0 {
			continue
		}
		f := v.q[0]
		if f.seq != 0 || f.readyAt > now {
			continue
		}
		if net.nextOutput(s, v) != o {
			continue
		}
		if o.ds != nil {
			k := refFreeVC(o.ds)
			if k < 0 {
				continue // no VC on the next link; head keeps waiting
			}
			o.ds.vcs[k].owner = v.owner
			o.ds.vcs[k].hop = v.hop + 1
			o.ds.vcs[k].lastMove = now
			o.dsVC = k
		}
		o.alloc = ci
		o.rr = ci
		return
	}
}

// findCircularWait detects partial deadlocks the global-stall watchdog cannot
// see; see the optimized engine's findCircularWait for the full rationale.
func (net *refNetwork) findCircularWait(now, watchdog int64) bool {
	type stalledVC struct {
		v    *refVC
		node *refSwitch
		flat int // candidate index of v within its switch (output alloc space)
	}
	idx := make(map[*refVC]int)
	var stalled []stalledVC
	for _, s := range net.nodes {
		for pi, ip := range s.inputs {
			for k := range ip.vcs {
				v := &ip.vcs[k]
				if v.owner == nil || len(v.q) == 0 {
					continue
				}
				if v.q[0].readyAt > now || now-v.lastMove < watchdog {
					continue
				}
				idx[v] = len(stalled)
				stalled = append(stalled, stalledVC{v: v, node: s, flat: pi*net.vcs + k})
			}
		}
	}
	if len(stalled) < 2 {
		return false
	}
	// waitsOn[i] is the index of the stalled VC that i definitely waits on
	// (-1 when the blocker is not itself stalled, or the wait is not
	// definite).
	waitsOn := make([]int, len(stalled))
	for i, sv := range stalled {
		waitsOn[i] = -1
		o := net.nextOutput(sv.node, sv.v)
		var blocker *refVC
		switch {
		case o.alloc == sv.flat:
			// Output granted: the head waits on downstream credit. Ejection
			// links always drain, so a stalled VC here implies o.ds != nil.
			if o.ds != nil {
				blocker = &o.ds.vcs[o.dsVC]
			}
		case o.alloc >= 0:
			// Output held by another packet until its tail passes.
			hp := sv.node.inputs[o.alloc/net.vcs]
			blocker = &hp.vcs[o.alloc%net.vcs]
		}
		if blocker != nil {
			if j, ok := idx[blocker]; ok {
				waitsOn[i] = j
			}
		}
	}
	// Functional graph (≤1 out-edge per vertex): follow the chains and look
	// for a vertex that reaches itself.
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make([]int, len(stalled))
	for i := range stalled {
		if color[i] != white {
			continue
		}
		j := i
		for j >= 0 && color[j] == white {
			color[j] = grey
			j = waitsOn[j]
		}
		if j >= 0 && color[j] == grey {
			return true
		}
		k := i
		for k >= 0 && color[k] == grey {
			color[k] = black
			k = waitsOn[k]
		}
	}
	return false
}

// refFreeVC returns the lowest-index unowned VC of the input port, or -1.
func refFreeVC(ip *refInputPort) int {
	for k := range ip.vcs {
		if ip.vcs[k].owner == nil {
			return k
		}
	}
	return -1
}

// refZeroLoadLatencies is the pre-optimization oracle loop: one full network
// rebuild per flow.
func refZeroLoadLatencies(t *topology.Topology, cfg Config) ([]float64, error) {
	out := make([]float64, t.Design.NumFlows())
	for f := range t.Design.Flows {
		net, err := buildRefNetwork(t, cfg)
		if err != nil {
			return nil, err
		}
		st := net.run(&singlePacketInjector{flow: f}, cfg)
		if st.PacketsDelivered != 1 {
			return nil, fmt.Errorf("sim: zero-load packet of flow %d not delivered (deadlock=%v livelock=%v)",
				f, st.Deadlock, st.Livelock)
		}
		out[f] = st.Flows[f].AvgLatencyCycles
	}
	return out, nil
}
