package sim_test

// Dead-link injection tests: a link listed in Config.DeadLinks forwards no
// flit from FaultCycle on, the watchdog observes the starvation, both engines
// agree byte for byte, and unknown links are a build error.

import (
	"encoding/json"
	"reflect"
	"testing"

	"sunfloor3d/internal/model"
	"sunfloor3d/internal/noclib"
	"sunfloor3d/internal/sim"
	"sunfloor3d/internal/topology"
)

// faultTriangle builds the 3-core, 3-switch topology with a detour: killing
// link 0->1 strands flow 0 while flows 1 and 2 keep their paths.
func faultTriangle(t *testing.T) *topology.Topology {
	t.Helper()
	cores := []model.Core{
		{Name: "c0", Width: 1, Height: 1, X: 0, Y: 0, Layer: 0},
		{Name: "c1", Width: 1, Height: 1, X: 2, Y: 0, Layer: 0},
		{Name: "c2", Width: 1, Height: 1, X: 1, Y: 2, Layer: 0},
	}
	flows := []model.Flow{
		{Src: 0, Dst: 1, BandwidthMBps: 300},
		{Src: 0, Dst: 2, BandwidthMBps: 200},
		{Src: 2, Dst: 1, BandwidthMBps: 100},
	}
	g, err := model.NewCommGraph(cores, flows)
	if err != nil {
		t.Fatal(err)
	}
	top := topology.New(g, noclib.DefaultLibrary(), 400)
	s0, s1, s2 := top.AddSwitch(0), top.AddSwitch(0), top.AddSwitch(0)
	top.AttachCore(0, s0)
	top.AttachCore(1, s1)
	top.AttachCore(2, s2)
	top.EstimateSwitchPositions()
	top.SetRoute(0, []int{s0, s1})
	top.SetRoute(1, []int{s0, s2})
	top.SetRoute(2, []int{s2, s1})
	return top
}

func faultSimConfig() sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Cycles = 1500
	cfg.DrainCycles = 1500
	return cfg
}

func TestDeadLinkStarvesFlowAndTripsWatchdog(t *testing.T) {
	top := faultTriangle(t)

	healthy, err := sim.Run(top, faultSimConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !healthy.Healthy() {
		t.Fatal("baseline run unhealthy")
	}

	cfg := faultSimConfig()
	cfg.DeadLinks = [][2]int{{0, 1}}
	st, err := sim.Run(top, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Healthy() {
		t.Error("watchdog did not observe the dead link")
	}
	if st.Flows[0].PacketsDelivered >= healthy.Flows[0].PacketsDelivered {
		t.Errorf("stranded flow still delivered %d packets (healthy: %d)",
			st.Flows[0].PacketsDelivered, healthy.Flows[0].PacketsDelivered)
	}
}

// TestDeadLinkMidRunDeliversUntilFault checks FaultCycle semantics: a link
// dying mid-run forwards traffic up to the fault and nothing after, so the
// stranded flow lands strictly between the healthy and dead-from-reset runs.
func TestDeadLinkMidRunDeliversUntilFault(t *testing.T) {
	top := faultTriangle(t)
	healthy, err := sim.Run(top, faultSimConfig())
	if err != nil {
		t.Fatal(err)
	}

	atReset := faultSimConfig()
	atReset.DeadLinks = [][2]int{{0, 1}}
	fromStart, err := sim.Run(top, atReset)
	if err != nil {
		t.Fatal(err)
	}

	midRun := atReset
	midRun.FaultCycle = 700
	mid, err := sim.Run(top, midRun)
	if err != nil {
		t.Fatal(err)
	}

	if got, lo, hi := mid.Flows[0].PacketsDelivered, fromStart.Flows[0].PacketsDelivered, healthy.Flows[0].PacketsDelivered; got <= lo || got >= hi {
		t.Errorf("mid-run fault delivered %d packets on the stranded flow, want strictly between %d (dead at reset) and %d (healthy)",
			got, lo, hi)
	}
}

// TestDeadLinkEnginesEquivalent extends the byte-identical-Stats contract of
// the two execution cores to fault injection.
func TestDeadLinkEnginesEquivalent(t *testing.T) {
	top := faultTriangle(t)
	for _, fc := range []int{0, 400} {
		cfg := faultSimConfig()
		cfg.DeadLinks = [][2]int{{0, 1}}
		cfg.FaultCycle = fc

		opt, err := sim.Run(top, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ref := cfg
		ref.Reference = true
		oracle, err := sim.Run(top, ref)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(opt, oracle) {
			a, _ := json.Marshal(opt)
			b, _ := json.Marshal(oracle)
			t.Errorf("FaultCycle %d: engines diverge under fault injection:\noptimized: %s\nreference: %s", fc, a, b)
		}
	}
}

func TestDeadLinkUnknownPairRejected(t *testing.T) {
	top := faultTriangle(t)
	cases := [][2]int{
		{1, 2}, // reverse of a fabricated link
		{7, 8}, // switches that do not exist
		{0, 0}, // self loop
	}
	for _, dl := range cases {
		cfg := faultSimConfig()
		cfg.DeadLinks = [][2]int{dl}
		if _, err := sim.Run(top, cfg); err == nil {
			t.Errorf("dead link %v accepted, want build error", dl)
		}
	}
}
