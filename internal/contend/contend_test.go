package contend

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"sunfloor3d/internal/model"
	"sunfloor3d/internal/noclib"
	"sunfloor3d/internal/topology"
)

// buildPair returns a 2-core, 2-switch topology with a single routed flow of
// the given bandwidth: c0 -> s0 -> s1 -> c1.
func buildPair(t *testing.T, bwMBps float64) *topology.Topology {
	t.Helper()
	g, err := model.NewCommGraph(
		[]model.Core{
			{Name: "c0", Width: 1, Height: 1, X: 0, Y: 0, Layer: 0},
			{Name: "c1", Width: 1, Height: 1, X: 2, Y: 0, Layer: 0},
		},
		[]model.Flow{{Src: 0, Dst: 1, BandwidthMBps: bwMBps}},
	)
	if err != nil {
		t.Fatalf("NewCommGraph: %v", err)
	}
	top := topology.New(g, noclib.DefaultLibrary(), 400)
	s0 := top.AddSwitch(0)
	s1 := top.AddSwitch(0)
	top.AttachCore(0, s0)
	top.AttachCore(1, s1)
	top.SetRoute(0, []int{s0, s1})
	top.EstimateSwitchPositions()
	return top
}

func TestEstimateMatchesHandComputation(t *testing.T) {
	top := buildPair(t, 100)
	est := EstimatePoint(top, 4)

	// Capacity: 400 MHz x 32 bits / 8 = 1600 MB/s; utilization 100/1600.
	u := 100.0 / 1600.0
	if math.Abs(est.MaxUtilization-u) > 1e-12 {
		t.Fatalf("MaxUtilization = %g, want %g", est.MaxUtilization, u)
	}
	// The flow crosses three links (ingress, s0->s1, ejection), each at the
	// same utilization, so the wait is 3 x rho*S/(2*(1-rho)).
	wantWait := 3 * u * 4 / (2 * (1 - u))
	if math.Abs(est.AvgWaitCycles-wantWait) > 1e-12 {
		t.Fatalf("AvgWaitCycles = %g, want %g", est.AvgWaitCycles, wantWait)
	}
	zero := top.FlowLatencyCycles(0)
	if math.Abs(est.AvgLatencyCycles-(zero+wantWait)) > 1e-12 {
		t.Fatalf("AvgLatencyCycles = %g, want zero-load %g + wait %g", est.AvgLatencyCycles, zero, wantWait)
	}
	if est.MaxLatencyCycles != est.AvgLatencyCycles {
		t.Fatalf("single flow: MaxLatencyCycles %g != AvgLatencyCycles %g", est.MaxLatencyCycles, est.AvgLatencyCycles)
	}
	if est.SaturatedLinks != 0 {
		t.Fatalf("SaturatedLinks = %d, want 0", est.SaturatedLinks)
	}
}

func TestEstimateSaturatedLinkIsFiniteAndFlagged(t *testing.T) {
	// 10x the 1600 MB/s capacity: every one of the three links saturates.
	top := buildPair(t, 16000)
	est := EstimatePoint(top, 4)
	if est.SaturatedLinks != 3 {
		t.Fatalf("SaturatedLinks = %d, want 3", est.SaturatedLinks)
	}
	if math.Abs(est.MaxUtilization-10) > 1e-12 {
		t.Fatalf("MaxUtilization = %g, want 10", est.MaxUtilization)
	}
	assertFinite(t, est)
	// The clamp caps each hop at rhoMax, so the estimate stays bounded.
	maxWait := 3 * rhoMax * 4 / (2 * (1 - rhoMax))
	if est.AvgWaitCycles > maxWait+1e-9 {
		t.Fatalf("AvgWaitCycles = %g exceeds the clamp bound %g", est.AvgWaitCycles, maxWait)
	}
}

func TestEstimateUnroutedFlowsSkipped(t *testing.T) {
	top := buildPair(t, 100)
	top.SetRoute(0, nil) // drop the only route
	est := EstimatePoint(top, 4)
	if est.AvgLatencyCycles != 0 || est.MaxLatencyCycles != 0 || est.AvgWaitCycles != 0 {
		t.Fatalf("unrouted flow must contribute nothing, got %+v", est)
	}
	assertFinite(t, est)
}

func TestEstimateDefaultsPacketFlits(t *testing.T) {
	top := buildPair(t, 100)
	got := EstimatePoint(top, 0)
	want := EstimatePoint(top, defaultPacketFlits)
	if *got != *want {
		t.Fatalf("packetFlits<=0 fallback: got %+v, want %+v", got, want)
	}
}

func TestEstimateMonotoneInLoad(t *testing.T) {
	lo := EstimatePoint(buildPair(t, 100), 4)
	hi := EstimatePoint(buildPair(t, 800), 4)
	if hi.AvgLatencyCycles <= lo.AvgLatencyCycles {
		t.Fatalf("higher load must raise the estimate: %g <= %g", hi.AvgLatencyCycles, lo.AvgLatencyCycles)
	}
	if hi.AvgWaitCycles <= lo.AvgWaitCycles {
		t.Fatalf("higher load must raise the wait: %g <= %g", hi.AvgWaitCycles, lo.AvgWaitCycles)
	}
}

func TestEstimateZeroCapacityNeverNaN(t *testing.T) {
	top := buildPair(t, 100)
	top.Lib.LinkWidthBits = 0 // impossible library: zero capacity
	est := EstimatePoint(top, 4)
	assertFinite(t, est)
	if est.SaturatedLinks != 3 {
		t.Fatalf("zero capacity must saturate all 3 links, got %d", est.SaturatedLinks)
	}
}

func TestEstimateDeterministicBytes(t *testing.T) {
	a, err := json.Marshal(EstimatePoint(buildPair(t, 300), 4))
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(EstimatePoint(buildPair(t, 300), 4))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("estimate bytes diverged:\n%s\n%s", a, b)
	}
}

func assertFinite(t *testing.T, est *Estimate) {
	t.Helper()
	for name, v := range map[string]float64{
		"AvgLatencyCycles": est.AvgLatencyCycles,
		"MaxLatencyCycles": est.MaxLatencyCycles,
		"AvgWaitCycles":    est.AvgWaitCycles,
		"MaxUtilization":   est.MaxUtilization,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("%s is not finite: %g", name, v)
		}
	}
}
