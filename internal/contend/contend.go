// Package contend estimates queueing contention on a synthesized topology
// analytically, without running the flit-level simulator. It layers an
// M/D/1-style per-link waiting-time model on top of the exact zero-load
// latencies of internal/topology: every physical link's utilization is the
// sum of the bandwidths of the flows routed over it divided by the link
// capacity (width x frequency), the deterministic service time of a packet
// is its flit count, and each flow's estimated latency is its zero-load
// latency plus the waiting estimate of every link it traverses. The result
// costs microseconds per design point, which is what lets a design-space
// sweep triage which points deserve full simulation (the fidelity ladder).
//
// The model is deliberately conservative about its own domain: the M/D/1
// waiting term W = rho*S/(2*(1-rho)) diverges as utilization approaches 1,
// so utilizations are clamped just below saturation and any link offered
// more traffic than its capacity is counted in SaturatedLinks instead of
// producing an infinite estimate. An Estimate therefore never contains NaN
// or Inf; a non-zero SaturatedLinks is the signal that the point is past
// the validity range of the model and only full simulation can rank it.
package contend

import (
	"math"

	"sunfloor3d/internal/topology"
)

// rhoMax is the utilization clamp applied inside the waiting-time term. It
// bounds the M/D/1 estimate at roughly 512 service times per hop, keeping
// saturated points finite (and comparable) instead of infinite.
const rhoMax = 1 - 1.0/1024

// defaultPacketFlits matches sim.DefaultConfig().PacketFlits so that the
// estimator and the simulator agree on the service time when the caller has
// not configured a simulation.
const defaultPacketFlits = 4

// Estimate is the JSON-stable analytic contention estimate for one design
// point. All fields are finite by construction.
type Estimate struct {
	// AvgLatencyCycles is the mean estimated per-flow latency: zero-load
	// latency plus the per-hop M/D/1 waiting estimates, averaged over the
	// routed flows.
	AvgLatencyCycles float64 `json:"avg_latency_cycles"`
	// MaxLatencyCycles is the largest estimated per-flow latency.
	MaxLatencyCycles float64 `json:"max_latency_cycles"`
	// AvgWaitCycles is the mean estimated queueing wait per flow (the
	// contention excess over zero load).
	AvgWaitCycles float64 `json:"avg_wait_cycles"`
	// MaxUtilization is the highest offered load over capacity across all
	// physical links (unclamped, so it can exceed 1 on saturated links).
	MaxUtilization float64 `json:"max_utilization"`
	// SaturatedLinks counts directed physical links whose offered load
	// meets or exceeds capacity. Non-zero means the waiting estimates were
	// clamped and the point should not be trusted without simulation.
	SaturatedLinks int `json:"saturated_links,omitempty"`
}

// wait returns the M/D/1 waiting estimate in cycles for a link with the
// given utilization, with the packet service time of flits cycles. The
// utilization is clamped below 1 so the result is always finite.
func wait(rho float64, flits int) float64 {
	if rho <= 0 {
		return 0
	}
	if rho > rhoMax {
		rho = rhoMax
	}
	return rho * float64(flits) / (2 * (1 - rho))
}

// EstimatePoint scores a routed topology. packetFlits is the deterministic
// packet service time in flits (use the simulation config's PacketFlits when
// one is set); non-positive values fall back to the simulator default. The
// returned estimate is byte-deterministic: it depends only on the topology's
// committed routes and flow order, never on map iteration or scheduling.
func EstimatePoint(t *topology.Topology, packetFlits int) *Estimate {
	if packetFlits <= 0 {
		packetFlits = defaultPacketFlits
	}
	// Link capacity in MB/s: FreqMHz cycles/us times LinkWidthBits/8 bytes
	// per cycle. Guard impossible libraries by treating the capacity as
	// saturated rather than dividing by zero.
	capacityMBps := t.FreqMHz * float64(t.Lib.LinkWidthBits) / 8

	est := &Estimate{}
	utilization := func(bwMBps float64) float64 {
		if capacityMBps <= 0 {
			return math.Inf(1) // flagged and clamped below, never returned
		}
		return bwMBps / capacityMBps
	}
	record := func(u float64) float64 {
		if u >= 1 {
			est.SaturatedLinks++
		}
		if u > est.MaxUtilization && !math.IsInf(u, 1) {
			est.MaxUtilization = u
		}
		return wait(u, packetFlits)
	}

	// Per-link waits, keyed the same way the aggregations are sorted. Both
	// SwitchLinks and CoreLinks return deterministic slices; the maps here
	// are only lookup tables indexed by fully-determined keys.
	switchWait := make(map[[2]int]float64)
	for _, l := range t.SwitchLinks() {
		switchWait[[2]int{l.From, l.To}] = record(utilization(l.BandwidthMBps))
	}
	type coreKey struct {
		core   int
		toCore bool
	}
	coreWait := make(map[coreKey]float64)
	for _, l := range t.CoreLinks() {
		coreWait[coreKey{l.Core, l.ToCore}] = record(utilization(l.BandwidthMBps))
	}
	if math.IsInf(est.MaxUtilization, 1) || math.IsNaN(est.MaxUtilization) {
		est.MaxUtilization = 0
	}

	var latSum, waitSum float64
	routed := 0
	for f := range t.Design.Flows {
		r := t.Routes[f]
		if len(r.Switches) == 0 {
			continue // unrouted: no committed path to score
		}
		fl := t.Design.Flows[f]
		w := coreWait[coreKey{fl.Src, false}]
		for i := 1; i < len(r.Switches); i++ {
			w += switchWait[[2]int{r.Switches[i-1], r.Switches[i]}]
		}
		w += coreWait[coreKey{fl.Dst, true}]

		lat := t.FlowLatencyCycles(f) + w
		latSum += lat
		waitSum += w
		if lat > est.MaxLatencyCycles {
			est.MaxLatencyCycles = lat
		}
		routed++
	}
	if routed > 0 {
		est.AvgLatencyCycles = latSum / float64(routed)
		est.AvgWaitCycles = waitSum / float64(routed)
	}
	return est
}
