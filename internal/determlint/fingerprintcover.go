package determlint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"

	"sunfloor3d/internal/determlint/analysis"
)

// FingerprintCover proves the memo fingerprint total: every exported field
// reachable from the parameters of internal/memo's Key function — the
// CommGraph and the synthesis Options, recursively through nested structs,
// slices and pointers — must either be read by Key (hashed into the content
// address) or appear in the package's executionKnobs map with a written
// justification. A future option added without classification is reported,
// so it can never silently poison the content-addressed cache by producing
// equal keys for requests with different results.
//
// The analyzer also reports the two ways the classification itself can rot:
// an executionKnobs entry whose field Key meanwhile hashes (contradictory),
// and an entry naming a field that no longer exists (stale).
// TestOptionsFingerprintCoverage in internal/memo mirrors this check at
// runtime for builds that never run sunfloor-lint.
var FingerprintCover = &analysis.Analyzer{
	Name: "fingerprintcover",
	Doc: "verifies that every field reachable from memo.Key's parameters is either hashed " +
		"by the canonical encoder or justified in the executionKnobs exclusion list",
	Run: runFingerprintCover,
}

func runFingerprintCover(pass *analysis.Pass) (any, error) {
	if !strings.HasSuffix(pass.Pkg.Path(), "internal/memo") {
		return nil, nil
	}
	keyDecl := findFunc(pass, "Key")
	if keyDecl == nil {
		pass.Reportf(pass.Files[0].Pos(), "package %s declares no Key function for fingerprintcover to check", pass.Pkg.Path())
		return nil, nil
	}
	knobs, knobPos, ok := executionKnobs(pass)
	if !ok {
		pass.Reportf(keyDecl.Pos(), "package %s must declare an executionKnobs map classifying every option field Key does not hash", pass.Pkg.Path())
		return nil, nil
	}

	// Every field selection evaluated inside Key, attributed to the struct
	// type it selects from. Aliases like `s := opt.Sim; s.Cycles` resolve
	// through the type checker, so no syntactic chain tracking is needed.
	type selKey struct {
		recv  *types.Named
		field string
	}
	selected := make(map[selKey]bool)
	for sel, s := range pass.TypesInfo.Selections {
		if s.Kind() != types.FieldVal || !within(sel.Pos(), keyDecl) {
			continue
		}
		if named := namedStruct(s.Recv()); named != nil {
			selected[selKey{named, s.Obj().Name()}] = true
		}
	}

	visitedKnobs := make(map[string]bool)
	seen := make(map[*types.Named]bool)
	var check func(n *types.Named, path string)
	check = func(n *types.Named, path string) {
		if seen[n] {
			pass.Reportf(keyDecl.Pos(), "struct %s is reachable from two different Key parameters or fields; fingerprintcover cannot attribute its selections", n.Obj().Name())
			return
		}
		seen[n] = true
		st := n.Underlying().(*types.Struct)
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if !f.Exported() {
				continue // unexported fields must be derived from exported state
			}
			fp := f.Name()
			if path != "" {
				fp = path + "." + f.Name()
			}
			excluded := false
			if _, ok := knobs[fp]; ok {
				excluded = true
				visitedKnobs[fp] = true
			}
			hashed := selected[selKey{n, f.Name()}]
			switch {
			case excluded && hashed:
				pass.Reportf(keyDecl.Pos(), "field %s is listed as an execution knob in executionKnobs but is also hashed by Key; remove one of the two classifications", fp)
			case excluded:
				// Justified exclusion exempts the whole subtree.
			case !hashed:
				pass.Reportf(keyDecl.Pos(), "option field %s is neither hashed by Key nor classified in executionKnobs; hash it (and bump memo.Version) or record why it cannot affect the Result", fp)
			default:
				if elem := namedStruct(f.Type()); elem != nil {
					check(elem, fp)
				}
			}
		}
	}
	params := keyDecl.Type.Params
	if params != nil {
		for _, field := range params.List {
			for _, name := range field.Names {
				obj := pass.TypesInfo.Defs[name]
				if obj == nil {
					continue
				}
				if elem := namedStruct(obj.Type()); elem != nil {
					check(elem, "")
				}
			}
		}
	}

	var stale []string
	for path := range knobs {
		if !visitedKnobs[path] {
			stale = append(stale, path)
		}
	}
	sort.Strings(stale)
	for _, path := range stale {
		pass.Reportf(knobPos[path], "executionKnobs entry %q matches no field reachable from Key's parameters; delete the stale entry", path)
	}
	return nil, nil
}

// findFunc returns the package-level function decl named name.
func findFunc(pass *analysis.Pass, name string) *ast.FuncDecl {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Recv == nil && fd.Name.Name == name {
				return fd
			}
		}
	}
	return nil
}

// executionKnobs parses the package-level `var executionKnobs = map[string]string{...}`
// declaration, returning the excluded field paths and the position of each
// entry's key.
func executionKnobs(pass *analysis.Pass) (map[string]string, map[string]token.Pos, bool) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Names) != 1 || vs.Names[0].Name != "executionKnobs" || len(vs.Values) != 1 {
					continue
				}
				lit, ok := vs.Values[0].(*ast.CompositeLit)
				if !ok {
					continue
				}
				knobs := make(map[string]string)
				pos := make(map[string]token.Pos)
				for _, elt := range lit.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					kl, ok := kv.Key.(*ast.BasicLit)
					if !ok || kl.Kind != token.STRING {
						continue
					}
					key, err := strconv.Unquote(kl.Value)
					if err != nil {
						continue
					}
					reason := ""
					if vl, ok := kv.Value.(*ast.BasicLit); ok && vl.Kind == token.STRING {
						reason, _ = strconv.Unquote(vl.Value)
					}
					knobs[key] = reason
					pos[key] = kv.Key.Pos()
					if strings.TrimSpace(reason) == "" {
						pass.Reportf(kv.Key.Pos(), "executionKnobs entry %q needs a written justification for why the field cannot change the Result", key)
					}
				}
				return knobs, pos, true
			}
		}
	}
	return nil, nil, false
}

// namedStruct resolves t — through pointers, slices, arrays and map values —
// to the named struct type it carries, or nil.
func namedStruct(t types.Type) *types.Named {
	for {
		switch u := types.Unalias(t).(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		case *types.Map:
			t = u.Elem()
		case *types.Named:
			if _, ok := u.Underlying().(*types.Struct); ok {
				return u
			}
			return nil
		default:
			return nil
		}
	}
}
