package determlint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"

	"sunfloor3d/internal/determlint/analysis"
)

// Suite returns the determlint analyzers in the order sunfloor-lint runs
// them.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{MapRange, FloatAccum, WallClock, FingerprintCover}
}

// resultAffectingInternal lists the internal packages whose output feeds the
// serialised Result (directly or through the memo fingerprint). A package on
// this list must produce byte-identical output run-to-run; everything else —
// the server, the benchmark harnesses, the experiment figure writers, the
// commands — is allowed to iterate maps and read clocks freely.
var resultAffectingInternal = map[string]bool{
	"contend":   true,
	"fault":     true,
	"floorplan": true,
	"geom":      true,
	"graph":     true,
	"lp":        true,
	"memo":      true,
	"mesh":      true,
	"model":     true,
	"noclib":    true,
	"partition": true,
	"place":     true,
	"route":     true,
	"sim":       true,
	"synth":     true,
	"topology":  true,
	"workload":  true,
}

// ResultAffecting reports whether the package at path is bound by the
// determinism contract: the sunfloor3d facade itself plus the internal
// packages listed in resultAffectingInternal.
func ResultAffecting(path string) bool {
	if path == "sunfloor3d" {
		return true
	}
	rest, ok := strings.CutPrefix(path, "sunfloor3d/internal/")
	if !ok {
		return false
	}
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		rest = rest[:i]
	}
	return resultAffectingInternal[rest]
}

// A waiver directive suppresses determlint findings at a specific site with a
// mandatory justification:
//
//	//determlint:ordered <reason>   — maprange and floataccum
//	//determlint:wallclock <reason> — wallclock
//
// A directive written on its own line waives the line below it; written at
// the end of a code line it waives that line; written in a function's doc
// comment it waives the entire function. The reason is not optional: a
// directive without one is itself a finding.
const directivePrefix = "//determlint:"

// knownDirectives maps directive names to the analyzers that honour them.
var knownDirectives = map[string]string{
	"ordered":   "maprange, floataccum",
	"wallclock": "wallclock",
}

// directive is one parsed //determlint: comment.
type directive struct {
	pos    token.Pos
	name   string
	reason string
}

// waiverSet indexes the waiver directives of one package.
type waiverSet struct {
	fset       *token.FileSet
	directives []directive
	// lines maps directive name -> "file:line" keys the directive waives.
	lines map[string]map[string]bool
	// spans maps directive name -> position ranges (function bodies) waived
	// by a doc-comment directive.
	spans map[string][]span
}

type span struct{ pos, end token.Pos }

// collectWaivers parses every //determlint: directive in the package.
func collectWaivers(pass *analysis.Pass) *waiverSet {
	w := &waiverSet{
		fset:  pass.Fset,
		lines: make(map[string]map[string]bool),
		spans: make(map[string][]span),
	}
	for _, file := range pass.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				name, reason, _ := strings.Cut(rest, " ")
				d := directive{pos: c.Pos(), name: name, reason: strings.TrimSpace(reason)}
				w.directives = append(w.directives, d)
				p := pass.Fset.Position(c.Pos())
				if w.lines[d.name] == nil {
					w.lines[d.name] = make(map[string]bool)
				}
				w.lines[d.name][lineKey(p.Filename, p.Line)] = true
				w.lines[d.name][lineKey(p.Filename, p.Line+1)] = true
			}
		}
		// A directive inside a function's doc comment waives the whole body.
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil || fd.Body == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				name, _, _ := strings.Cut(rest, " ")
				w.spans[name] = append(w.spans[name], span{fd.Body.Pos(), fd.Body.End()})
			}
		}
	}
	return w
}

func lineKey(file string, line int) string {
	return fmt.Sprintf("%s:%d", file, line)
}

// waived reports whether a finding of the given directive class at pos is
// suppressed.
func (w *waiverSet) waived(name string, pos token.Pos) bool {
	p := w.fset.Position(pos)
	if w.lines[name][lineKey(p.Filename, p.Line)] {
		return true
	}
	for _, s := range w.spans[name] {
		if pos >= s.pos && pos < s.end {
			return true
		}
	}
	return false
}

// validate reports malformed directives: unknown names and missing reasons.
// It is called from maprange only, so each defect is reported exactly once
// per package even though several analyzers share the waiver set.
func (w *waiverSet) validate(pass *analysis.Pass) {
	for _, d := range w.directives {
		if _, ok := knownDirectives[d.name]; !ok {
			pass.Reportf(d.pos, "unknown determlint directive %q (known: ordered, wallclock)", d.name)
			continue
		}
		if d.reason == "" {
			pass.Reportf(d.pos, "determlint:%s directive requires a justification: //determlint:%s <reason>", d.name, d.name)
		}
	}
}
