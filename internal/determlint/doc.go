// Package determlint statically enforces sunfloor3d's determinism contract:
// for equal (CommGraph, Options) inputs the synthesis flow must produce
// byte-identical serialised Results, independent of parallelism, scheduling,
// caching, progress observation and host state. Every cache, golden test and
// property harness in the repo leans on that contract; this package makes the
// bug classes that have actually broken it (and their near misses) fail the
// build instead of a bisection.
//
// The suite has four analyzers, run by cmd/sunfloor-lint alongside go vet:
//
//   - maprange flags `for range` over a map in result-affecting packages.
//     Go randomises map iteration order per run, so any order-sensitive body
//     is a run-to-run difference waiting to surface. The canonical
//     collect-keys-then-sort idiom and the keyed scatter (`dst[k] = expr`)
//     are recognised as safe; anything else needs a written waiver.
//
//   - floataccum flags floating-point accumulation under unordered
//     iteration — a map range, a goroutine body, a sync callback. Float
//     addition is not associative, so folding the same operands in two
//     orders can differ in the last ULPs; in PR 3 exactly this shape steered
//     the partitioner's min-cut tie-breaks differently from run to run.
//
//   - wallclock forbids time.Now/Since/Until and the process-global
//     math/rand source in result-affecting packages. Explicitly seeded
//     generators (rand.New(rand.NewSource(seed))) are the supported idiom.
//
//   - fingerprintcover proves the memo fingerprint total: every exported
//     field reachable from internal/memo Key's parameters is either hashed
//     into the content address or justified in the executionKnobs exclusion
//     list — so a new option can never silently poison the cache by mapping
//     different results to equal keys. TestOptionsFingerprintCoverage in
//     internal/memo mirrors the same check at runtime.
//
// The result-affecting set is the facade package plus the internal packages
// whose output feeds the serialised Result (see resultAffectingInternal);
// the server, benchmark harnesses, experiments and commands are exempt.
//
// # Waivers
//
// A finding whose site is provably order-independent (or whose timing never
// reaches the Result) is waived in place, with a mandatory justification:
//
//	//determlint:ordered <reason>   — honoured by maprange and floataccum
//	//determlint:wallclock <reason> — honoured by wallclock
//
// A directive at the end of a code line waives that line; on its own line it
// waives the line below; in a function's doc comment it waives the whole
// body. Unknown directive names and missing reasons are themselves findings,
// so waivers cannot rot silently.
//
// The analyzers are written against the go/analysis-shaped mini framework in
// the analysis subpackage (stdlib-only; see its docs), so porting to
// golang.org/x/tools/go/analysis if that dependency ever lands is a
// mechanical import swap.
package determlint
