package determlint

import (
	"go/ast"
	"go/token"
	"go/types"

	"sunfloor3d/internal/determlint/analysis"
)

// FloatAccum flags floating-point accumulation (`sum += x`, `sum = sum + x`
// and the -, *, / variants) whose evaluation order is unordered: inside a
// `for range` over a map, inside a goroutine body, or inside a function
// literal handed to the sync package. Float arithmetic is not associative,
// so the same multiset of operands folded in two different orders can differ
// in the last ULPs — the exact shape of the PR 3 partitioner bug, where a
// map-ordered bandwidth sum steered min-cut tie-breaks differently from run
// to run.
//
// Only accumulators declared outside the unordered region are flagged: a
// variable created inside the loop body restarts every iteration and cannot
// fold values across the unordered sequence. The //determlint:ordered waiver
// is shared with maprange, so one justified directive silences both.
var FloatAccum = &analysis.Analyzer{
	Name: "floataccum",
	Doc: "flags floating-point accumulation under unordered iteration (map range, goroutine, " +
		"sync callback) in result-affecting packages",
	Run: runFloatAccum,
}

// unorderedCtx is one region whose execution order is not deterministic.
type unorderedCtx struct {
	node ast.Node
	kind string
}

func runFloatAccum(pass *analysis.Pass) (any, error) {
	if !ResultAffecting(pass.Pkg.Path()) {
		return nil, nil
	}
	w := collectWaivers(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ctxs := collectUnordered(pass, w, fd)
			if len(ctxs) == 0 {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				as, ok := n.(*ast.AssignStmt)
				if !ok {
					return true
				}
				lhs, op := accumLHS(pass, as)
				if lhs == nil {
					return true
				}
				ctx := innermost(ctxs, as.Pos())
				if ctx == nil {
					return true
				}
				obj := rootObject(pass, lhs)
				if obj == nil || within(obj.Pos(), ctx.node) {
					return true
				}
				if w.waived("ordered", as.Pos()) {
					return true
				}
				pass.Reportf(as.Pos(), "floating-point accumulation %s %s ... inside %s folds operands in nondeterministic order (float arithmetic is not associative); iterate in sorted order or waive with //determlint:ordered <reason>",
					types.ExprString(lhs), op, ctx.kind)
				return true
			})
		}
	}
	return nil, nil
}

// collectUnordered finds the unordered regions of fd: non-waived map ranges,
// goroutine function literals and function literals passed to sync.
func collectUnordered(pass *analysis.Pass, w *waiverSet, fd *ast.FuncDecl) []unorderedCtx {
	var ctxs []unorderedCtx
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if isMapRange(pass, n) && !w.waived("ordered", n.Pos()) {
				ctxs = append(ctxs, unorderedCtx{n.Body, "a map-ordered loop"})
			}
		case *ast.GoStmt:
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				ctxs = append(ctxs, unorderedCtx{lit.Body, "a goroutine"})
			}
		case *ast.CallExpr:
			if !isSyncCall(pass, n) {
				return true
			}
			for _, arg := range n.Args {
				if lit, ok := arg.(*ast.FuncLit); ok {
					ctxs = append(ctxs, unorderedCtx{lit.Body, "a sync callback"})
				}
			}
		}
		return true
	})
	return ctxs
}

// isSyncCall reports whether call invokes a function or method of package
// sync (sync.Map.Range, sync.OnceFunc, WaitGroup helpers, ...).
func isSyncCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == "sync"
}

// accumLHS reports the accumulated expression and operator if as is a
// floating-point read-modify-write, and nil otherwise.
func accumLHS(pass *analysis.Pass, as *ast.AssignStmt) (ast.Expr, string) {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil, ""
	}
	lhs := as.Lhs[0]
	t := pass.TypesInfo.TypeOf(lhs)
	if t == nil {
		return nil, ""
	}
	basic, ok := t.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsFloat == 0 {
		return nil, ""
	}
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		return lhs, as.Tok.String()
	case token.ASSIGN:
		bin, ok := as.Rhs[0].(*ast.BinaryExpr)
		if !ok {
			return nil, ""
		}
		switch bin.Op {
		case token.ADD, token.SUB, token.MUL, token.QUO:
		default:
			return nil, ""
		}
		// x = x + e and x = e + x both fold x across iterations.
		ls := types.ExprString(lhs)
		if types.ExprString(bin.X) == ls || types.ExprString(bin.Y) == ls {
			return lhs, "= " + types.ExprString(lhs) + " " + bin.Op.String()
		}
	}
	return nil, ""
}

// rootObject resolves the base identifier of an lvalue (sum, s.total,
// arr[i], *p) to its object.
func rootObject(pass *analysis.Pass, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return pass.TypesInfo.Uses[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// innermost returns the smallest unordered region containing pos.
func innermost(ctxs []unorderedCtx, pos token.Pos) *unorderedCtx {
	var best *unorderedCtx
	for i := range ctxs {
		n := ctxs[i].node
		if pos < n.Pos() || pos >= n.End() {
			continue
		}
		if best == nil || n.End()-n.Pos() < best.node.End()-best.node.Pos() {
			best = &ctxs[i]
		}
	}
	return best
}

// within reports whether pos falls inside node.
func within(pos token.Pos, node ast.Node) bool {
	return pos >= node.Pos() && pos < node.End()
}
