package determlint

import (
	"go/ast"
	"go/token"
	"go/types"

	"sunfloor3d/internal/determlint/analysis"
)

// MapRange flags `for range` over a map in result-affecting packages. Go
// randomises map iteration order per run, so any map range whose body can
// influence the serialised Result — ordering of emitted elements, float
// arithmetic, first-wins/last-wins selection — is a determinism bug of
// exactly the class behind the PR 3 partitioner and PR 5 LP-placement
// incidents.
//
// Three shapes are accepted without a waiver:
//
//   - the canonical sorted-keys idiom: a loop whose body only appends the
//     key (or value) to a slice that is subsequently passed to the sort or
//     slices package within the same function;
//   - the keyed scatter: a body that is exactly `dst[k] = expr` with k the
//     range key and expr not reading dst — writes to distinct keys commute,
//     so the loop is order-independent by construction; and
//   - loops waived with //determlint:ordered <reason>, for bodies that are
//     provably order-independent (set construction, integer counting,
//     commutative min/max with a total tie-break).
var MapRange = &analysis.Analyzer{
	Name: "maprange",
	Doc: "flags nondeterministically-ordered map iteration in result-affecting packages " +
		"unless the keys are collected and sorted or the loop carries a //determlint:ordered waiver",
	Run: runMapRange,
}

func runMapRange(pass *analysis.Pass) (any, error) {
	if !ResultAffecting(pass.Pkg.Path()) {
		return nil, nil
	}
	w := collectWaivers(pass)
	// maprange is the one analyzer guaranteed to visit every
	// result-affecting package, so it owns directive hygiene.
	w.validate(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok || !isMapRange(pass, rs) {
					return true
				}
				if w.waived("ordered", rs.Pos()) || isSortedKeyCollection(pass, fd, rs) || isKeyedScatter(pass, rs) {
					return true
				}
				pass.Reportf(rs.Pos(), "range over map %s has nondeterministic iteration order; collect and sort the keys first, or waive an order-independent body with //determlint:ordered <reason>",
					types.ExprString(rs.X))
				return true
			})
		}
	}
	return nil, nil
}

// isMapRange reports whether rs ranges over a map value.
func isMapRange(pass *analysis.Pass, rs *ast.RangeStmt) bool {
	t := pass.TypesInfo.TypeOf(rs.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// isSortedKeyCollection recognises the canonical deterministic-iteration
// idiom: the loop body is exactly `s = append(s, k)` (k the range key and/or
// value), and s is later handed to the sort or slices package inside the same
// function. The append-only body cannot observe iteration order, and the
// subsequent sort erases it.
func isSortedKeyCollection(pass *analysis.Pass, fd *ast.FuncDecl, rs *ast.RangeStmt) bool {
	if len(rs.Body.List) != 1 {
		return false
	}
	as, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	lhs, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	sliceObj := pass.TypesInfo.Uses[lhs]
	if sliceObj == nil {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) < 2 {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	if _, builtin := pass.TypesInfo.Uses[fn].(*types.Builtin); !builtin || fn.Name != "append" {
		return false
	}
	if arg0, ok := call.Args[0].(*ast.Ident); !ok || pass.TypesInfo.Uses[arg0] != sliceObj {
		return false
	}
	// Every appended element must be the loop's key or value variable.
	loopVars := make(map[types.Object]bool)
	for _, v := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := v.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				loopVars[obj] = true
			}
		}
	}
	for _, arg := range call.Args[1:] {
		id, ok := arg.(*ast.Ident)
		if !ok || !loopVars[pass.TypesInfo.Uses[id]] {
			return false
		}
	}
	return sortedAfter(pass, fd, rs, sliceObj)
}

// isKeyedScatter recognises the write-only scatter idiom: the loop body is
// exactly `dst[k] = expr` where k is the range key and expr never mentions
// dst's base variable. Each iteration writes a distinct key and reads no
// accumulated state, so the iterations commute exactly and the resulting map
// or slice content is independent of iteration order.
func isKeyedScatter(pass *analysis.Pass, rs *ast.RangeStmt) bool {
	if len(rs.Body.List) != 1 {
		return false
	}
	as, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	idx, ok := as.Lhs[0].(*ast.IndexExpr)
	if !ok {
		return false
	}
	keyID, ok := rs.Key.(*ast.Ident)
	if !ok || keyID.Name == "_" {
		return false
	}
	keyObj := pass.TypesInfo.Defs[keyID]
	idxID, ok := idx.Index.(*ast.Ident)
	if !ok || keyObj == nil || pass.TypesInfo.Uses[idxID] != keyObj {
		return false
	}
	base := rootObject(pass, idx.X)
	if base == nil {
		return false
	}
	mentionsBase := false
	ast.Inspect(as.Rhs[0], func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == base {
			mentionsBase = true
		}
		return !mentionsBase
	})
	return !mentionsBase
}

// sortedAfter reports whether, after the loop, the enclosing function passes
// slice (anywhere in an argument) to a function of package sort or slices.
func sortedAfter(pass *analysis.Pass, fd *ast.FuncDecl, rs *ast.RangeStmt, slice types.Object) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pkgName, ok := pass.TypesInfo.Uses[pkgID].(*types.PkgName)
		if !ok {
			return true
		}
		if p := pkgName.Imported().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == slice {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}
