// Package analysis is a minimal, dependency-free stand-in for the
// golang.org/x/tools/go/analysis framework, providing exactly the subset the
// determlint suite needs: an Analyzer descriptor, a per-package Pass carrying
// parsed files and type information, and positioned Diagnostics.
//
// The API deliberately mirrors x/tools so the analyzers read idiomatically
// and porting them onto the upstream framework (multichecker, unitchecker,
// go vet -vettool) later is a mechanical import swap. The repo builds with
// the standard library only, so vendoring the upstream module is not an
// option; everything here is built on go/ast, go/token and go/types.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and waiver directives.
	// It must be a valid identifier.
	Name string
	// Doc is the one-paragraph description printed by sunfloor-lint -help.
	Doc string
	// Run applies the analyzer to one package. It reports findings through
	// pass.Report / pass.Reportf and returns an optional result value
	// (unused by the determlint suite) and an error for operational
	// failures — an error is not a finding.
	Run func(*Pass) (any, error)
}

// Pass carries one package's syntax and types to an Analyzer's Run function.
type Pass struct {
	// Analyzer is the check being applied.
	Analyzer *Analyzer
	// Fset maps token positions of Files to file/line/column.
	Fset *token.FileSet
	// Files are the parsed non-test source files of the package, with
	// comments attached.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds the type-checker's findings for Files.
	TypesInfo *types.Info
	// Report delivers one diagnostic.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}
