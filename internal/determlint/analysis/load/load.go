// Package load type-checks Go packages for the determlint analyzers without
// depending on golang.org/x/tools/go/packages. It has two entry points that
// mirror how the upstream drivers work:
//
//   - Packages loads module packages by pattern. It shells out to
//     `go list -deps -export -json`, which compiles (or reuses from the build
//     cache) the export data of every dependency, then parses each target
//     package's non-test sources and type-checks them against that export
//     data with the standard library's gc importer — the same strategy
//     go vet uses.
//
//   - Fixtures loads GOPATH-style source trees under a testdata/src root for
//     analysistest. Fixture packages are type-checked from source (so they
//     may import each other under their real import paths, including
//     deliberately fake stand-ins for this repo's packages), while standard
//     library imports are resolved lazily through the same export-data
//     importer.
//
// Both paths share one token.FileSet and one gc importer instance, so type
// identity holds across every package loaded by the same Loader.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package.
type Package struct {
	// Path is the import path.
	Path string
	// Dir is the directory holding the sources.
	Dir string
	// Fset maps positions in Files.
	Fset *token.FileSet
	// Files are the parsed non-test sources, with comments.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info holds the type-checker's results for Files.
	Info *types.Info
}

// Loader loads and caches packages. The zero value is not usable; construct
// with New.
type Loader struct {
	fset    *token.FileSet
	dir     string            // working directory for go invocations
	srcRoot string            // fixture source root ("" outside analysistest)
	exports map[string]string // import path -> export data file
	gc      types.Importer    // export-data importer over exports
	pkgs    map[string]*Package
	loading map[string]bool // fixture import cycle guard
}

// New returns a Loader that runs the go tool in dir. srcRoot, when non-empty,
// is a GOPATH-style source root consulted before the export-data importer,
// enabling analysistest fixtures to shadow real import paths.
func New(dir, srcRoot string) *Loader {
	l := &Loader{
		fset:    token.NewFileSet(),
		dir:     dir,
		srcRoot: srcRoot,
		exports: make(map[string]string),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
	l.gc = importer.ForCompiler(l.fset, "gc", l.lookup)
	return l
}

// lookup feeds export data files to the gc importer, resolving paths that the
// bulk `go list -deps` pass did not cover (fixture stdlib imports) one by one.
func (l *Loader) lookup(path string) (io.ReadCloser, error) {
	file, ok := l.exports[path]
	if !ok {
		if err := l.listExports(path); err != nil {
			return nil, err
		}
		file, ok = l.exports[path]
		if !ok {
			return nil, fmt.Errorf("load: no export data for %q", path)
		}
	}
	return os.Open(file)
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
}

// goList runs `go list` with the given arguments and decodes the JSON stream.
func (l *Loader) goList(args ...string) ([]listPkg, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = l.dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// listExports records the export data files of paths and their dependencies.
func (l *Loader) listExports(paths ...string) error {
	args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Export", "--"}, paths...)
	pkgs, err := l.goList(args...)
	if err != nil {
		return err
	}
	for _, p := range pkgs {
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
	}
	return nil
}

// Packages loads the module packages matching patterns (as `go list` resolves
// them), parses their non-test sources and type-checks them. Test files are
// excluded by design: the determinism contract binds shipped code, and
// analysistest fixtures exercise the analyzers themselves.
func (l *Loader) Packages(patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Dir,GoFiles,Export,DepOnly", "--"}, patterns...)
	pkgs, err := l.goList(args...)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, p := range pkgs {
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
		if p.DepOnly {
			continue
		}
		loaded, err := l.check(p.ImportPath, p.Dir, p.GoFiles, l.gc)
		if err != nil {
			return nil, err
		}
		out = append(out, loaded)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// Fixture loads the package at import path from the loader's srcRoot,
// type-checking it (and any fixture packages it imports) from source.
func (l *Loader) Fixture(path string) (*Package, error) {
	if l.srcRoot == "" {
		return nil, fmt.Errorf("load: loader has no fixture source root")
	}
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("load: fixture import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := filepath.Join(l.srcRoot, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("load: fixture %q: %v", path, err)
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			files = append(files, name)
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("load: fixture %q has no Go files", path)
	}
	p, err := l.check(path, dir, files, fixtureImporter{l})
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = p
	return p, nil
}

// fixtureImporter resolves imports for fixture packages: source trees under
// srcRoot shadow everything else, which falls through to export data.
type fixtureImporter struct{ l *Loader }

func (f fixtureImporter) Import(path string) (*types.Package, error) {
	dir := filepath.Join(f.l.srcRoot, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		p, err := f.l.Fixture(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return f.l.gc.Import(path)
}

// check parses files (named relative to dir) and type-checks them.
func (l *Loader) check(path, dir string, files []string, imp types.Importer) (*Package, error) {
	sort.Strings(files)
	var parsed []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	cfg := types.Config{Importer: imp}
	tpkg, err := cfg.Check(path, l.fset, parsed, info)
	if err != nil {
		return nil, fmt.Errorf("load: type-checking %s: %v", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: l.fset, Files: parsed, Types: tpkg, Info: info}, nil
}
