// Package analysistest runs an analyzer over GOPATH-style fixture packages
// under a testdata/src root and checks its diagnostics against `// want`
// comments, mirroring golang.org/x/tools/go/analysis/analysistest on top of
// the dependency-free framework in the parent packages.
//
// A want comment sits on the line the diagnostic is expected at and carries
// one or more quoted or backquoted regular expressions, each of which must
// match (unanchored) a distinct diagnostic on that line:
//
//	for v := range m { // want `nondeterministic iteration order`
//
// The block form `/* want "..." */` attaches an expectation to a line whose
// trailing line comment is already taken — a //determlint: directive that is
// itself expected to be diagnosed, for example.
//
// Fixture packages may import each other under their full (fake) import
// paths — the loader resolves anything under testdata/src from source and
// everything else, the standard library included, from compiled export data.
// A fixture package with no want comments asserts the analyzer stays silent
// on it.
package analysistest

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"sunfloor3d/internal/determlint/analysis"
	"sunfloor3d/internal/determlint/analysis/load"
)

// want is one expected-diagnostic pattern.
type want struct {
	re      *regexp.Regexp
	matched bool
}

// Run applies the analyzer to each fixture package in paths (relative to
// testdata/src) and reports any mismatch between its diagnostics and the
// fixtures' want comments as test errors.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	loader := load.New(".", testdata+"/src")
	for _, path := range paths {
		pkg, err := loader.Fixture(path)
		if err != nil {
			t.Errorf("%s: loading fixture %s: %v", a.Name, path, err)
			continue
		}
		runPackage(t, a, pkg)
	}
}

func runPackage(t *testing.T, a *analysis.Analyzer, pkg *load.Package) {
	t.Helper()
	wants := collectWants(t, pkg)

	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
	}
	var diags []analysis.Diagnostic
	pass.Report = func(d analysis.Diagnostic) { diags = append(diags, d) }
	if _, err := a.Run(pass); err != nil {
		t.Errorf("%s: running on %s: %v", a.Name, pkg.Path, err)
		return
	}

	for _, d := range diags {
		p := pkg.Fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", p.Filename, p.Line)
		found := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: %s: unexpected diagnostic: %s", a.Name, p, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: %s: expected diagnostic matching %q, got none", a.Name, key, w.re)
			}
		}
	}
}

// collectWants parses the `// want` comments of every fixture file, keyed by
// "filename:line".
func collectWants(t *testing.T, pkg *load.Package) map[string][]*want {
	t.Helper()
	wants := make(map[string][]*want)
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				var rest string
				if idx := strings.Index(c.Text, "// want "); idx >= 0 {
					rest = c.Text[idx+len("// want "):]
				} else if strings.HasPrefix(c.Text, "/* want ") {
					rest = strings.TrimSuffix(c.Text[len("/* want "):], "*/")
				} else {
					continue
				}
				p := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", p.Filename, p.Line)
				rest = strings.TrimSpace(rest)
				for rest != "" {
					quoted, err := strconv.QuotedPrefix(rest)
					if err != nil {
						t.Errorf("%s: malformed want comment %q: %v", p, c.Text, err)
						break
					}
					pattern, err := strconv.Unquote(quoted)
					if err != nil {
						t.Errorf("%s: unquoting %q: %v", p, quoted, err)
						break
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Errorf("%s: compiling want pattern %q: %v", p, pattern, err)
						break
					}
					wants[key] = append(wants[key], &want{re: re})
					rest = strings.TrimSpace(rest[len(quoted):])
				}
			}
		}
	}
	return wants
}
