// Package graph is a maprange fixture: it shadows the result-affecting
// import path sunfloor3d/internal/graph so the analyzer treats it as bound by
// the determinism contract.
package graph

import "sort"

// Bare map iteration whose body depends on order: the canonical violation.
func SumNames(m map[string]int) string {
	var out string
	for k := range m { // want `range over map m has nondeterministic iteration order`
		out += k
	}
	return out
}

// Ranging over the values is just as order-sensitive as ranging over keys.
func FirstPositive(m map[int]float64) float64 {
	for _, v := range m { // want `range over map m has nondeterministic iteration order`
		if v > 0 {
			return v
		}
	}
	return 0
}

// The sorted-keys idiom: collect, sort, then iterate the slice. Neither loop
// is a finding — the first only appends the key, the second ranges a slice.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// The keyed scatter: each iteration writes a distinct key of dst and reads
// nothing back from it, so the iterations commute.
func Invert(src map[int]string) map[int]bool {
	dst := make(map[int]bool)
	for k := range src {
		dst[k] = len(src[k]) > 0
	}
	return dst
}

// A justified waiver silences the finding.
func CountEdges(m map[string][]int) int {
	n := 0
	//determlint:ordered integer counting is commutative and order-independent
	for _, edges := range m {
		n += len(edges)
	}
	return n
}

// A trailing same-line waiver works too.
func HasAny(m map[string]bool) bool {
	found := false
	for _, v := range m { //determlint:ordered boolean OR is commutative
		found = found || v
	}
	return found
}

// A directive in the function's doc comment waives every map range in the
// body.
//
//determlint:ordered set union is order-independent
func Union(a, b map[string]bool) map[string]bool {
	out := make(map[string]bool)
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}

// Directive hygiene: unknown names and missing reasons are findings at the
// directive itself (reported by maprange, which owns validation).
func BadDirectives(m map[string]int) int {
	n := 0
	/* want `unknown determlint directive "sorted"` */ //determlint:sorted keys are fine
	for k := range m {                                 // want `range over map m has nondeterministic iteration order`
		n += len(k)
	}
	/* want `determlint:ordered directive requires a justification` */ //determlint:ordered
	for k := range m {
		n += len(k)
	}
	return n
}

// Ranging over a slice or channel is always fine.
func SliceSum(xs []int) int {
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}
