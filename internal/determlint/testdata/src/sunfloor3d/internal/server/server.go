// Package server is the allowlisted-path fixture: internal/server is not in
// the result-affecting set, so every violation shape below — map iteration,
// float accumulation under it, wall-clock reads, global rand — must produce
// zero findings from every analyzer. There are deliberately no want comments
// in this file.
package server

import (
	"math/rand"
	"time"
)

func RequestStats(latencies map[string]float64) (float64, int) {
	var total float64
	n := 0
	for _, l := range latencies {
		total += l
		n++
	}
	return total, n
}

func StampResponse() (int64, time.Duration, float64) {
	begin := time.Now()
	jitter := rand.Float64()
	return begin.UnixNano(), time.Since(begin), jitter
}
