// Package synth is the miniature Options surface for the fingerprintcover
// fixture. Each field exercises one classification outcome:
//
//	Hashed    — read by Key: covered.
//	Sub.Inner — read by Key through a nested struct: covered recursively.
//	Knob      — justified in executionKnobs: excluded.
//	NoReason  — excluded, but with an empty justification: a finding.
//	Both      — hashed AND excluded: a contradiction finding.
//	Dummy     — neither hashed nor excluded: the poisoned-cache finding.
//	hidden    — unexported: ignored (must be derived from exported state).
package synth

// SubOptions is a nested result-affecting option group.
type SubOptions struct {
	Inner int
}

// Options is the fixture option surface.
type Options struct {
	Hashed   float64
	Sub      SubOptions
	Knob     int
	NoReason int
	Both     int
	Dummy    string
	hidden   int
}

// Touch keeps the unexported field legal to declare.
func (o Options) Touch() int { return o.hidden }
