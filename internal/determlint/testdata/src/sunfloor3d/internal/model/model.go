// Package model is the miniature CommGraph for the fingerprintcover fixture.
package model

// Core is one core; Name is hashed by the fixture Key.
type Core struct {
	Name string
}

// CommGraph is the fixture communication graph.
type CommGraph struct {
	Cores []Core
}
