// Package memo is the fingerprintcover fixture: a miniature Key over the
// fixture CommGraph and Options, with an executionKnobs map seeded with one
// good entry, one entry missing its justification, one contradicting Key, and
// one stale entry.
package memo

import (
	"fmt"

	"sunfloor3d/internal/model"
	"sunfloor3d/internal/synth"
)

var executionKnobs = map[string]string{
	"Knob":     "justified execution knob that cannot change the Result",
	"NoReason": "", // want `executionKnobs entry "NoReason" needs a written justification`
	"Both":     "claimed to be a knob, but Key hashes it",
	"Gone":     "names a field that no longer exists", // want `executionKnobs entry "Gone" matches no field reachable from Key's parameters`
}

func Key(g *model.CommGraph, opt synth.Options) string { // want `field Both is listed as an execution knob in executionKnobs but is also hashed by Key` `option field Dummy is neither hashed by Key nor classified in executionKnobs`
	s := ""
	for _, c := range g.Cores {
		s += c.Name
	}
	return s + fmt.Sprint(opt.Hashed, opt.Sub.Inner, opt.Both)
}
