// Package partition is a floataccum fixture shadowing the result-affecting
// import path sunfloor3d/internal/partition — deliberately, because this is
// the package where the real bug lived: in PR 3 the min-cut partitioner
// summed adjacent-edge bandwidth by ranging a map, and the last-ULP
// differences between iteration orders flipped gain tie-breaks from run to
// run.
package partition

import "sync"

// SwapGain recreates the PR 3 bug shape: a float accumulator declared outside
// a map-ordered loop.
func SwapGain(adjBW map[int]float64) float64 {
	var gain float64
	for _, w := range adjBW {
		gain += w // want `floating-point accumulation gain \+= .* inside a map-ordered loop`
	}
	return gain
}

// The spelled-out form x = x + e is the same accumulation.
func TotalBandwidth(flows map[string]float64) float64 {
	total := 0.0
	for _, bw := range flows {
		total = total + bw // want `floating-point accumulation total = total \+ .* inside a map-ordered loop`
	}
	return total
}

// Multiplicative folds are order-sensitive too.
func Product(weights map[int]float64) float64 {
	p := 1.0
	for _, w := range weights {
		p *= w // want `floating-point accumulation p \*= .* inside a map-ordered loop`
	}
	return p
}

// An accumulator declared inside the loop body restarts every iteration and
// cannot fold values across the unordered sequence.
func MaxPairSum(pairs map[int][2]float64) float64 {
	best := -1.0
	//determlint:ordered max with deterministic >= tie-break over per-key sums
	for _, p := range pairs {
		s := p[0]
		s += p[1]
		if s >= best {
			best = s
		}
	}
	return best
}

// Integer accumulation is exact and commutative: never a finding.
func CountFlows(flows map[string]int) int {
	n := 0
	//determlint:ordered integer addition is associative
	for _, c := range flows {
		n += c
	}
	return n
}

// A goroutine body is an unordered region even without any map in sight.
func AsyncSum(xs []float64) float64 {
	var sum float64
	done := make(chan struct{})
	go func() {
		for _, x := range xs {
			sum += x // want `floating-point accumulation sum \+= .* inside a goroutine`
		}
		close(done)
	}()
	<-done
	return sum
}

// So is a function literal handed to the sync package.
func OnceSum(once *sync.Once, xs []float64) float64 {
	var sum float64
	once.Do(func() {
		for _, x := range xs {
			sum += x // want `floating-point accumulation sum \+= .* inside a sync callback`
		}
	})
	return sum
}

// A waived map range is not an unordered region, so accumulation inside it is
// accepted on the waiver's justification.
func WaivedSum(m map[int]float64) float64 {
	var s float64
	//determlint:ordered fixture stand-in for a compensated (order-insensitive) summation
	for _, v := range m {
		s += v
	}
	return s
}

// Accumulation in an ordered loop is the baseline and never flagged.
func OrderedSum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}
