// Package sim is a wallclock fixture shadowing the result-affecting import
// path sunfloor3d/internal/sim: simulation results must be pure functions of
// the request, so wall-clock reads and the process-global random source are
// forbidden while explicitly seeded generators are the supported idiom.
package sim

import (
	"math/rand"
	"time"
)

// Reading the wall clock smuggles host state into a result-affecting package.
func Stamp() int64 {
	return time.Now().UnixNano() // want `call to time.Now reads the wall clock`
}

// Since and Until are Now in disguise.
func Age(t time.Time) time.Duration {
	return time.Since(t) // want `call to time.Since reads the wall clock`
}

// The package-level math/rand functions draw from the process-global,
// randomly-seeded source.
func Jitter() float64 {
	return rand.Float64() // want `call to math/rand.Float64 draws from the process-global random source`
}

// An explicitly seeded generator is the supported idiom: the constructors are
// allowlisted and methods on the resulting Rand are pure state transitions.
func SeededJitter(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

// Pure time arithmetic — constructors, methods, constants — is fine.
func Deadline(start time.Time, budget time.Duration) time.Time {
	return start.Add(budget * 2)
}

// Timing plumbing that provably never reaches the serialised Result can carry
// a waiver.
func Observe() time.Duration {
	begin := time.Now() //determlint:wallclock fixture stand-in for json-excluded observability plumbing
	work()
	return time.Since(begin) //determlint:wallclock fixture stand-in for json-excluded observability plumbing
}

// A doc-comment directive waives the whole function body — every wall-clock
// read inside, with one written justification.
//
//determlint:wallclock fixture stand-in for a benchmark recorder
func Profile() time.Duration {
	begin := time.Now()
	work()
	return time.Since(begin)
}

func work() {}
