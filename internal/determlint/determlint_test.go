package determlint

import (
	"testing"

	"sunfloor3d/internal/determlint/analysis/analysistest"
)

// The graph fixture seeds maprange violations, the three accepted shapes
// (sorted keys, keyed scatter, waivers) and the directive-hygiene findings;
// the server fixture re-runs the violating shapes in an allowlisted package
// and must stay silent.
func TestMapRange(t *testing.T) {
	analysistest.Run(t, "testdata", MapRange,
		"sunfloor3d/internal/graph",
		"sunfloor3d/internal/server",
	)
}

// The partition fixture recreates the PR 3 map-order float-summation bug
// (SwapGain) plus the goroutine and sync-callback variants; declarations
// inside the unordered region, integer folds and waived loops stay silent.
func TestFloatAccum(t *testing.T) {
	analysistest.Run(t, "testdata", FloatAccum,
		"sunfloor3d/internal/partition",
		"sunfloor3d/internal/server",
	)
}

// The sim fixture seeds wall-clock reads and global rand draws next to the
// seeded-generator idiom and both waiver placements; the server fixture
// asserts the allowlist.
func TestWallClock(t *testing.T) {
	analysistest.Run(t, "testdata", WallClock,
		"sunfloor3d/internal/sim",
		"sunfloor3d/internal/server",
	)
}

// The memo fixture's miniature Key covers every classification outcome:
// hashed, nested-hashed, justified knob, missing justification, contradiction
// and the uncovered Dummy field that would poison the content-addressed
// cache.
func TestFingerprintCover(t *testing.T) {
	analysistest.Run(t, "testdata", FingerprintCover,
		"sunfloor3d/internal/memo",
	)
}

func TestResultAffecting(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"sunfloor3d", true},
		{"sunfloor3d/internal/graph", true},
		{"sunfloor3d/internal/partition", true},
		{"sunfloor3d/internal/memo", true},
		{"sunfloor3d/internal/determlint", false},
		{"sunfloor3d/internal/server", false},
		{"sunfloor3d/internal/bench", false},
		{"sunfloor3d/cmd/sunfloor-server", false},
		{"sunfloor3d/experiments", false},
		{"fmt", false},
	}
	for _, c := range cases {
		if got := ResultAffecting(c.path); got != c.want {
			t.Errorf("ResultAffecting(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}
