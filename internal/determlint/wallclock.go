package determlint

import (
	"go/types"
	"sort"

	"sunfloor3d/internal/determlint/analysis"
)

// WallClock forbids wall-clock reads and global (unseeded) math/rand use in
// result-affecting packages. A Result must be a pure function of
// (CommGraph, Options): time.Now smuggles the host's clock into scope, and
// the math/rand package-level functions draw from a process-global,
// randomly-seeded source. Constructing an explicitly seeded generator
// (rand.New(rand.NewSource(seed))) is fine — that is how the floorplanner,
// the simulator and the workload generator stay reproducible.
//
// The two legitimate timing sites — the json-excluded Elapsed/SimElapsed
// plumbing in internal/synth and the facade's benchmark recorders — carry
// //determlint:wallclock waivers; the server and bench packages are outside
// the result-affecting set entirely.
var WallClock = &analysis.Analyzer{
	Name: "wallclock",
	Doc: "forbids time.Now/Since/Until and global math/rand in result-affecting packages; " +
		"seeded rand.New(rand.NewSource(...)) and //determlint:wallclock-waived timing plumbing are allowed",
	Run: runWallClock,
}

// wallClockFuncs are the forbidden time package functions.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// seededConstructors are the math/rand entry points that do not touch the
// global source (they build or wrap an explicitly seeded generator).
var seededConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	// math/rand/v2 equivalents.
	"NewPCG": true, "NewChaCha8": true,
}

func runWallClock(pass *analysis.Pass) (any, error) {
	if !ResultAffecting(pass.Pkg.Path()) {
		return nil, nil
	}
	w := collectWaivers(pass)
	var diags []analysis.Diagnostic
	for ident, obj := range pass.TypesInfo.Uses {
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil {
			continue
		}
		if fn.Type().(*types.Signature).Recv() != nil {
			continue // methods (e.g. Time.Sub, Rand.Intn) are pure
		}
		var msg string
		switch fn.Pkg().Path() {
		case "time":
			if wallClockFuncs[fn.Name()] {
				msg = "reads the wall clock"
			}
		case "math/rand", "math/rand/v2":
			if !seededConstructors[fn.Name()] {
				msg = "draws from the process-global random source"
			}
		}
		if msg == "" || w.waived("wallclock", ident.Pos()) {
			continue
		}
		diags = append(diags, analysis.Diagnostic{
			Pos: ident.Pos(),
			Message: "call to " + fn.Pkg().Path() + "." + fn.Name() + " " + msg +
				" in a result-affecting package; results must be pure functions of (CommGraph, Options) — use a seeded source, or waive timing plumbing with //determlint:wallclock <reason>",
		})
	}
	// Uses is a map; report in source order so driver output is stable.
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		pass.Report(d)
	}
	return nil, nil
}
