package memo

import (
	"bytes"
	"testing"

	"sunfloor3d/internal/fault"
	"sunfloor3d/internal/model"
	"sunfloor3d/internal/noclib"
	"sunfloor3d/internal/sim"
	"sunfloor3d/internal/synth"
)

// testGraph builds a small three-core, two-layer design.
func testGraph(t *testing.T) *model.CommGraph {
	t.Helper()
	cores := []model.Core{
		{Name: "cpu", Width: 1, Height: 1, X: 0, Y: 0, Layer: 0},
		{Name: "mem", Width: 2, Height: 1, X: 1.5, Y: 0, Layer: 1, IsMemory: true},
		{Name: "dma", Width: 1, Height: 0.5, X: 0, Y: 1.5, Layer: 0},
	}
	flows := []model.Flow{
		{Src: 0, Dst: 1, BandwidthMBps: 400, LatencyCycles: 10, Type: model.Request},
		{Src: 1, Dst: 0, BandwidthMBps: 400, LatencyCycles: 10, Type: model.Response},
		{Src: 2, Dst: 1, BandwidthMBps: 120, Type: model.Request},
	}
	g, err := model.NewCommGraph(cores, flows)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestKeyDeterministic(t *testing.T) {
	g := testGraph(t)
	opt := synth.DefaultOptions()
	k1 := Key(g, opt)
	k2 := Key(g, opt)
	if k1 != k2 {
		t.Fatalf("same inputs hashed differently: %s vs %s", k1, k2)
	}
	if len(k1) != 64 {
		t.Fatalf("key is not a sha-256 hex string: %q", k1)
	}
	// An independently constructed but equal graph must hash identically.
	k3 := Key(testGraph(t), synth.DefaultOptions())
	if k1 != k3 {
		t.Fatalf("equal graphs hashed differently: %s vs %s", k1, k3)
	}
}

// TestKeySpecRoundTrip checks that the key depends on the design content, not
// on its representation: a graph written to the text spec formats and parsed
// back produces the same key as the original.
func TestKeySpecRoundTrip(t *testing.T) {
	g := testGraph(t)
	var cores, comm bytes.Buffer
	if err := model.WriteCoreSpec(&cores, g.Cores); err != nil {
		t.Fatal(err)
	}
	if err := model.WriteCommSpec(&comm, g); err != nil {
		t.Fatal(err)
	}
	parsed, err := model.LoadDesign(&cores, &comm)
	if err != nil {
		t.Fatal(err)
	}
	opt := synth.DefaultOptions()
	if k1, k2 := Key(g, opt), Key(parsed, opt); k1 != k2 {
		t.Fatalf("spec round trip changed the key: %s vs %s", k1, k2)
	}
}

// TestKeyIgnoresExecutionKnobs asserts that the options proven not to affect
// the serialised Result — parallelism, progress callbacks, the hot-path
// toggles and the shared scheduler — stay out of the key, so a cache filled
// by a 32-worker server answers a serial CLI run and vice versa.
func TestKeyIgnoresExecutionKnobs(t *testing.T) {
	g := testGraph(t)
	base := synth.DefaultOptions()
	ref := Key(g, base)

	mod := base
	mod.Parallelism = 16
	mod.Progress = func(synth.Event) {}
	mod.DisablePartitionCache = true
	mod.FullRebuildRouter = true
	mod.Scheduler = synth.NewScheduler(4)
	mod.Weight = 7
	if k := Key(g, mod); k != ref {
		t.Fatalf("execution knobs changed the key: %s vs %s", k, ref)
	}
}

// TestKeyCoversResultAffectingFields flips each result-affecting input and
// asserts the key moves.
func TestKeyCoversResultAffectingFields(t *testing.T) {
	g := testGraph(t)
	base := synth.DefaultOptions()
	ref := Key(g, base)

	mutations := map[string]func(*synth.Options){
		"frequencies":       func(o *synth.Options) { o.FrequenciesMHz = []float64{400, 600} },
		"max_ill":           func(o *synth.Options) { o.MaxILL = 12 },
		"soft_ill_margin":   func(o *synth.Options) { o.SoftILLMargin = 5 },
		"phase":             func(o *synth.Options) { o.Phase = synth.Phase2Only },
		"alpha":             func(o *synth.Options) { o.Partition.Alpha = 0.5 },
		"theta_step":        func(o *synth.Options) { o.Partition.ThetaStep = 1 },
		"switch_layer":      func(o *synth.Options) { o.SwitchLayer = synth.LayerMajority },
		"power_weight":      func(o *synth.Options) { o.PowerWeight = 2 },
		"latency_weight":    func(o *synth.Options) { o.LatencyWeight = 0.25 },
		"lp_placement":      func(o *synth.Options) { o.RunLPPlacement = true },
		"lp_on_best":        func(o *synth.Options) { o.LPOnBest = false },
		"max_sw_per_layer":  func(o *synth.Options) { o.MaxSwitchesPerLayer = 3 },
		"require_latency":   func(o *synth.Options) { o.RequireLatencyMet = true },
		"library_link_bits": func(o *synth.Options) { o.Lib.LinkWidthBits = 64 },
		"library_sw_power":  func(o *synth.Options) { o.Lib.SwitchBasePowerMW *= 2 },
		"space_present": func(o *synth.Options) {
			o.Space = &synth.Space{Axes: []synth.Axis{{Name: synth.AxisFreqMHz, Values: []float64{400}}}}
		},
		"space_no_prune": func(o *synth.Options) {
			o.Space = &synth.Space{NoPrune: true, Axes: []synth.Axis{{Name: synth.AxisFreqMHz, Values: []float64{400}}}}
		},
		"space_axis_name": func(o *synth.Options) {
			o.Space = &synth.Space{Axes: []synth.Axis{{Name: synth.AxisSwitchCount, Values: []float64{400}}}}
		},
		"space_axis_value": func(o *synth.Options) {
			o.Space = &synth.Space{Axes: []synth.Axis{{Name: synth.AxisFreqMHz, Values: []float64{600}}}}
		},
	}
	for name, mutate := range mutations {
		opt := base
		mutate(&opt)
		if k := Key(g, opt); k == ref {
			t.Errorf("mutating %s did not change the key", name)
		}
	}

	// The space variants must also differ pairwise, not just from the
	// space-less reference: presence, NoPrune, axis name and axis values all
	// feed the key.
	spaceKeys := map[string]string{}
	for _, name := range []string{"space_present", "space_no_prune", "space_axis_name", "space_axis_value"} {
		opt := base
		mutations[name](&opt)
		spaceKeys[name] = Key(g, opt)
	}
	for a, ka := range spaceKeys {
		for b, kb := range spaceKeys {
			if a < b && ka == kb {
				t.Errorf("%s and %s share a key", a, b)
			}
		}
	}

	// Graph-side mutations.
	g2 := testGraph(t)
	g2.Flows[0].BandwidthMBps = 401
	if Key(g2, base) == ref {
		t.Error("mutating a flow bandwidth did not change the key")
	}
	g3 := testGraph(t)
	g3.Cores[0].Layer = 1
	if Key(g3, base) == ref {
		t.Error("mutating a core layer did not change the key")
	}
	g4 := testGraph(t)
	g4.Cores[2].Name = "dma2"
	if Key(g4, base) == ref {
		t.Error("renaming a core did not change the key")
	}
}

// TestKeyCoversFaultFields flips each fault-model, sparing and dead-link
// input of the v3 key and asserts the key moves — the fields feed
// DesignPoint.Survivability, which is serialised, so a stale cache entry
// answering a mutated request would be a wrong answer.
func TestKeyCoversFaultFields(t *testing.T) {
	g := testGraph(t)
	base := synth.DefaultOptions()
	ref := Key(g, base)

	proc := noclib.StandardProcesses()[0]
	mutations := map[string]func(*synth.Options){
		"sparing_present": func(o *synth.Options) {
			o.Sparing = &fault.SparingConfig{Process: proc, TargetYield: 0.99}
		},
		"sparing_target": func(o *synth.Options) {
			o.Sparing = &fault.SparingConfig{Process: proc, TargetYield: 0.95}
		},
		"sparing_process": func(o *synth.Options) {
			o.Sparing = &fault.SparingConfig{Process: noclib.StandardProcesses()[1], TargetYield: 0.99}
		},
		"fault_present": func(o *synth.Options) {
			fc := fault.DefaultModelConfig()
			o.Fault = &fc
		},
		"fault_plans": func(o *synth.Options) {
			fc := fault.DefaultModelConfig()
			fc.Plans = 32
			o.Fault = &fc
		},
		"fault_faults_per_plan": func(o *synth.Options) {
			fc := fault.DefaultModelConfig()
			fc.FaultsPerPlan = 2
			o.Fault = &fc
		},
		"fault_seed": func(o *synth.Options) {
			fc := fault.DefaultModelConfig()
			fc.Seed = 99
			o.Fault = &fc
		},
		"fault_exhaustive_max": func(o *synth.Options) {
			fc := fault.DefaultModelConfig()
			fc.ExhaustiveMax = 0
			o.Fault = &fc
		},
		"fault_cycle": func(o *synth.Options) {
			fc := fault.DefaultModelConfig()
			fc.FaultCycle = 100
			o.Fault = &fc
		},
	}
	keys := map[string]string{}
	for name, mutate := range mutations {
		opt := base
		mutate(&opt)
		k := Key(g, opt)
		if k == ref {
			t.Errorf("mutating %s did not change the key", name)
		}
		keys[name] = k
	}
	// The variants must also differ pairwise: every field feeds the key on
	// its own, not just the presence bit.
	for a, ka := range keys {
		for b, kb := range keys {
			if a < b && ka == kb {
				t.Errorf("%s and %s share a key", a, b)
			}
		}
	}

	// The sim config's dead-link fields are v3 additions too: a cached run
	// without injected faults must not answer one with them.
	simBase := sim.DefaultConfig()
	withSim := base
	withSim.Sim = &simBase
	refSim := Key(g, withSim)
	deadCfg := simBase
	deadCfg.DeadLinks = [][2]int{{0, 1}}
	withDead := base
	withDead.Sim = &deadCfg
	if k := Key(g, withDead); k == refSim {
		t.Error("adding sim dead links did not change the key")
	}
	cycleCfg := deadCfg
	cycleCfg.FaultCycle = 200
	withCycle := base
	withCycle.Sim = &cycleCfg
	if Key(g, withCycle) == Key(g, withDead) {
		t.Error("changing the sim fault cycle did not change the key")
	}
}

// TestKeyNormalizesNegativeZero: -0.0 and +0.0 compare equal and behave
// identically through the whole flow, so they must share a key.
func TestKeyNormalizesNegativeZero(t *testing.T) {
	gPos := testGraph(t)
	gNeg := testGraph(t)
	gPos.Cores[0].X = 0.0
	gNeg.Cores[0].X = math_Copysign0()
	opt := synth.DefaultOptions()
	if k1, k2 := Key(gPos, opt), Key(gNeg, opt); k1 != k2 {
		t.Fatalf("-0.0 hashed differently from +0.0: %s vs %s", k1, k2)
	}
}

// math_Copysign0 returns -0.0 without tripping vet's suspicious-constant
// checks.
func math_Copysign0() float64 {
	z := 0.0
	return -z
}

// TestKeyFraming guards against field aliasing: moving a byte from the end
// of one string field to the start of the next must change the key.
func TestKeyFraming(t *testing.T) {
	mk := func(a, b string) string {
		g, err := model.NewCommGraph([]model.Core{
			{Name: a, Width: 1, Height: 1, Layer: 0},
			{Name: b, Width: 1, Height: 1, Layer: 0},
		}, []model.Flow{{Src: 0, Dst: 1, BandwidthMBps: 1}})
		if err != nil {
			t.Fatal(err)
		}
		return Key(g, synth.DefaultOptions())
	}
	if mk("ab", "c") == mk("a", "bc") {
		t.Fatal("string fields alias across boundaries")
	}
}
