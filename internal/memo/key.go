// Package memo implements the content-addressed design-point cache behind
// synthesis-as-a-service: a canonical, versioned content hash of a synthesis
// request — the communication graph plus the result-affecting options — and a
// two-tier (in-memory LRU + on-disk) store of the JSON-stable Result bytes,
// with single-flight deduplication of concurrent identical requests.
//
// The cache is sound because synthesis is deterministic: for equal
// (CommGraph, Options) inputs the engine produces byte-identical serialised
// Results regardless of parallelism, partition caching, progress callbacks or
// the scheduler used (enforced since PR 2, property-tested since PR 5). The
// key therefore covers exactly the inputs the serialised Result depends on
// and deliberately excludes the execution knobs that are proven not to change
// it (Parallelism, Progress, DisablePartitionCache, FullRebuildRouter,
// Scheduler, Weight, and the simulator's Reference/StatsLevel switches).
package memo

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"

	"sunfloor3d/internal/model"
	"sunfloor3d/internal/synth"
)

// Version tags the canonical encoding. It must be bumped whenever the
// encoding itself changes, a result-affecting field is added to the inputs,
// or the synthesis flow changes the bytes it produces for unchanged inputs
// (a golden-corpus diff): entries written under an old version must never be
// returned for a new one. The version string is hashed into every key, so a
// bump invalidates the whole store without touching it.
const Version = "sunfloor3d-memo/v4"

// executionKnobs classifies every field reachable from Key's parameters that
// the canonical encoder deliberately does NOT hash, keyed by its dotted path
// from the parameter root, with the proof obligation as the value: each entry
// must name a property (usually an existing test) showing the field cannot
// change the serialised Result bytes. The fingerprintcover analyzer in
// internal/determlint and TestOptionsFingerprintCoverage both enforce that
// this map plus the fields Key reads exactly tile the option surface — an
// option added without being hashed here or justified below fails the lint
// and the test, so it can never silently poison the content-addressed cache.
var executionKnobs = map[string]string{
	"Parallelism":           "worker count never changes Result bytes (serial==parallel property, PR 1; re-asserted by the PR 5 harness)",
	"Scheduler":             "a contended shared scheduler is byte-identical to a serial run (scheduler equivalence tests, PR 6)",
	"Weight":                "fair-share weight only reorders slot grants, which the pre-assigned point indices make result-neutral (PR 6)",
	"Progress":              "progress callbacks observe the sweep; results are assembled independently of callback presence or speed (PR 1)",
	"DisablePartitionCache": "cached and uncached partition runs are byte-identical (cache equivalence tests, PR 2)",
	"FullRebuildRouter":     "incremental and full-rebuild routers share evalArc and are bit-identical (equivalence tests, PR 3)",
	"Sim.StatsLevel":        "stats level only controls which per-resource rows are materialised; serialised Results exclude Sim stats entirely",
	"Sim.Reference":         "reference and production simulator engines produce byte-identical Stats (equivalence suite + FuzzSimDeterminism, PR 4)",
}

// Key returns the canonical content hash of a synthesis request as a
// lowercase hex string. Two requests receive the same key exactly when the
// engine is guaranteed to produce byte-identical serialised Results for them.
//
// The encoding walks every field in a fixed declaration order with explicit
// length framing (no map iteration, no reflection, no struct layout
// dependence) and normalises floats before hashing: negative zero hashes
// like positive zero, every other value hashes its exact IEEE-754 bit
// pattern. NaN and infinities never reach the hash — graph and option
// validation reject them first.
func Key(g *model.CommGraph, opt synth.Options) string {
	h := sha256.New()
	e := encoder{h: h}

	e.str(Version)

	// Section 1: the communication graph (Definitions 1 and 2).
	e.str("cores")
	e.i64(int64(len(g.Cores)))
	for _, c := range g.Cores {
		e.str(c.Name)
		e.f64(c.Width)
		e.f64(c.Height)
		e.f64(c.X)
		e.f64(c.Y)
		e.i64(int64(c.Layer))
		e.bool(c.IsMemory)
	}
	e.str("flows")
	e.i64(int64(len(g.Flows)))
	for _, f := range g.Flows {
		e.i64(int64(f.Src))
		e.i64(int64(f.Dst))
		e.f64(f.BandwidthMBps)
		e.f64(f.LatencyCycles)
		e.i64(int64(f.Type))
	}

	// Section 2: the result-affecting synthesis options.
	e.str("options")
	e.i64(int64(len(opt.FrequenciesMHz)))
	for _, f := range opt.FrequenciesMHz {
		e.f64(f)
	}
	e.i64(int64(opt.MaxILL))
	e.i64(int64(opt.SoftILLMargin))
	e.i64(int64(opt.Phase))
	e.f64(opt.Partition.Alpha)
	e.f64(opt.Partition.ThetaMin)
	e.f64(opt.Partition.ThetaMax)
	e.f64(opt.Partition.ThetaStep)
	e.f64(opt.Partition.IsolatedEdgeWeight)
	e.i64(int64(opt.SwitchLayer))
	e.f64(opt.PowerWeight)
	e.f64(opt.LatencyWeight)
	e.bool(opt.RunLPPlacement)
	e.bool(opt.LPOnBest)
	e.i64(int64(opt.MaxSwitchesPerLayer))
	e.bool(opt.RequireLatencyMet)

	// Section 3: the component library (power/delay/area models).
	e.str("library")
	e.i64(int64(opt.Lib.TechnologyNM))
	e.i64(int64(opt.Lib.LinkWidthBits))
	e.f64(opt.Lib.SwitchBasePowerMW)
	e.f64(opt.Lib.SwitchPortPowerMW)
	e.f64(opt.Lib.SwitchTrafficPowerMWPerGBps)
	e.f64(opt.Lib.SwitchBaseAreaMM2)
	e.f64(opt.Lib.SwitchPortAreaMM2)
	e.f64(opt.Lib.NIPowerMW)
	e.f64(opt.Lib.NIAreaMM2)
	e.f64(opt.Lib.ReferenceFreqMHz)
	e.f64(opt.Lib.WirePowerMWPerMMPerGBps)
	e.f64(opt.Lib.WireLeakagePowerMWPerMM)
	e.f64(opt.Lib.WireDelayPSPerMM)
	e.f64(opt.Lib.MaxUnrepeatedLinkMM)
	e.f64(opt.Lib.TSVDelayPS)
	e.f64(opt.Lib.TSVPowerMWPerGBps)
	e.f64(opt.Lib.TSVPitchUM)
	e.f64(opt.Lib.VerticalPitchMM)
	e.f64(opt.Lib.SwitchFreqK)
	e.f64(opt.Lib.SwitchFreqCapMHz)

	// Section 4: the simulation request. Simulation statistics are excluded
	// from the serialised Result, but a failed simulation invalidates the
	// point it ran on (Valid/FailReason are serialised), so the simulated
	// workload is part of the key. Reference and StatsLevel are execution
	// knobs with byte-identical outcomes and stay out.
	e.str("sim")
	e.bool(opt.Sim != nil)
	if opt.Sim != nil {
		s := opt.Sim
		e.i64(int64(s.Cycles))
		e.i64(int64(s.DrainCycles))
		e.i64(s.Seed)
		e.i64(int64(s.Profile))
		e.f64(s.InjectionScale)
		e.i64(int64(s.PacketFlits))
		e.i64(int64(s.VCs))
		e.i64(int64(s.BufferFlits))
		e.i64(int64(s.WatchdogCycles))
		e.i64(int64(s.LivelockCycles))
		e.f64(s.BurstFactor)
		e.f64(s.MeanBurstCycles)
		e.f64(s.HotspotFactor)
		e.i64(int64(len(s.DeadLinks)))
		for _, dl := range s.DeadLinks {
			e.i64(int64(dl[0]))
			e.i64(int64(dl[1]))
		}
		e.i64(int64(s.FaultCycle))
	}

	// Section 5: the exploration space. The axes define the enumerated
	// points and NoPrune switches between stubbed and fully evaluated
	// dominated regions, so both shape the serialised Result. The
	// checkpoint/shard hooks are execution plumbing (a resumed or merged run
	// is byte-identical to an uninterrupted one) and stay out, which is also
	// what lets every shard of one exploration share one fingerprint.
	e.str("space")
	e.bool(opt.Space != nil)
	if opt.Space != nil {
		s := opt.Space
		e.bool(s.NoPrune)
		e.i64(int64(len(s.Axes)))
		for _, a := range s.Axes {
			e.str(a.Name)
			e.i64(int64(len(a.Values)))
			for _, v := range a.Values {
				e.f64(v)
			}
		}
	}

	// Section 6: the fault model. Sparing changes the spare provisioning
	// stamped into the serialised metrics and which faults the replay
	// absorbs; the fault model's plan count, seed and fault cycle shape the
	// survivability report attached to every valid point. All of it reaches
	// the serialised Result, so all of it is keyed.
	e.str("fault")
	e.bool(opt.Sparing != nil)
	if opt.Sparing != nil {
		s := opt.Sparing
		e.str(s.Process.Name)
		e.f64(s.Process.BaseYield)
		e.f64(s.Process.TSVFailureRate)
		e.i64(int64(s.Process.KneeTSVs))
		e.f64(s.TargetYield)
	}
	e.bool(opt.Fault != nil)
	if opt.Fault != nil {
		s := opt.Fault
		e.i64(int64(s.Plans))
		e.i64(int64(s.FaultsPerPlan))
		e.i64(s.Seed)
		e.i64(int64(s.ExhaustiveMax))
		e.i64(int64(s.FaultCycle))
	}

	// Section 7: the fidelity ladder. Contend adds the serialised contention
	// estimate to every valid point, and SimBand decides which points carry
	// simulation-backed validity and the serialised sim_triage marker, so a
	// triaged run must never alias a full-sim (or estimate-free) run of the
	// same request — the v4 bump plus this section guarantees it.
	e.str("contend")
	e.bool(opt.Contend)
	e.f64(opt.SimBand)

	return hex.EncodeToString(h.Sum(nil))
}

// encoder writes length-framed primitives into a hash. Every string is
// prefixed with its byte length so that adjacent fields can never alias
// ("ab"+"c" vs "a"+"bc"), and all integers are fixed-width little endian.
type encoder struct {
	h   hash.Hash
	buf [8]byte
}

func (e *encoder) i64(v int64) {
	binary.LittleEndian.PutUint64(e.buf[:], uint64(v))
	e.h.Write(e.buf[:])
}

// f64 hashes the IEEE-754 bit pattern of v with negative zero normalised to
// positive zero, so the two representations of zero — which compare equal and
// behave identically throughout the flow — share a key.
func (e *encoder) f64(v float64) {
	if v == 0 {
		v = 0
	}
	binary.LittleEndian.PutUint64(e.buf[:], math.Float64bits(v))
	e.h.Write(e.buf[:])
}

func (e *encoder) bool(v bool) {
	if v {
		e.i64(1)
	} else {
		e.i64(0)
	}
}

func (e *encoder) str(s string) {
	e.i64(int64(len(s)))
	e.h.Write([]byte(s))
}
