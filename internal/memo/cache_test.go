package memo

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCacheLookupPutTiers(t *testing.T) {
	dir := t.TempDir()
	c, err := New(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	if c.Dir() != dir {
		t.Fatalf("Dir() = %q, want %q", c.Dir(), dir)
	}
	if _, _, ok := c.Lookup("k1"); ok {
		t.Fatal("lookup hit on empty cache")
	}
	c.Put("k1", []byte(`{"v":1}`))
	b, prov, ok := c.Lookup("k1")
	if !ok || prov != FromMemory || string(b) != `{"v":1}` {
		t.Fatalf("memory hit = (%q, %v, %v)", b, prov, ok)
	}

	// A fresh cache on the same directory simulates another process: the
	// memory tier is cold, the disk tier answers, and the entry is promoted.
	c2, err := New(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, prov, ok = c2.Lookup("k1")
	if !ok || prov != FromDisk || string(b) != `{"v":1}` {
		t.Fatalf("disk hit = (%q, %v, %v)", b, prov, ok)
	}
	if _, prov, _ = c2.Lookup("k1"); prov != FromMemory {
		t.Fatalf("promoted entry served from %v, want memory", prov)
	}

	st := c2.Stats()
	if st.MemHits != 1 || st.DiskHits != 1 || st.Misses != 0 {
		t.Fatalf("stats = %+v, want 1 mem hit, 1 disk hit", st)
	}
}

func TestCacheMemoryLRUEviction(t *testing.T) {
	dir := t.TempDir()
	c, err := New(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	c.Put("a", []byte(`1`))
	c.Put("b", []byte(`2`))
	c.Put("c", []byte(`3`)) // evicts "a" from memory
	if st := c.Stats(); st.MemEntries != 2 {
		t.Fatalf("mem entries = %d, want 2", st.MemEntries)
	}
	// "a" fell out of memory but the disk tier still has it.
	if _, prov, ok := c.Lookup("a"); !ok || prov != FromDisk {
		t.Fatalf("evicted entry lookup = (%v, %v), want disk hit", prov, ok)
	}
}

func TestCacheMemoryOnly(t *testing.T) {
	c, err := New("", 0)
	if err != nil {
		t.Fatal(err)
	}
	c.Put("k", []byte(`{}`))
	if _, prov, ok := c.Lookup("k"); !ok || prov != FromMemory {
		t.Fatalf("memory-only lookup = (%v, %v)", prov, ok)
	}
	if st := c.Stats(); st.DiskErrors != 0 {
		t.Fatalf("memory-only cache recorded disk errors: %+v", st)
	}
}

// TestCacheSingleFlight checks the headline dedup property: 100 concurrent
// identical requests cost exactly one computation; 99 callers share it.
func TestCacheSingleFlight(t *testing.T) {
	c, err := New(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	const callers = 100
	var computes atomic.Int64
	release := make(chan struct{})
	compute := func() ([]byte, error) {
		computes.Add(1)
		<-release // hold the flight open until every caller has joined
		return []byte(`{"v":42}`), nil
	}

	var wg sync.WaitGroup
	provs := make([]Provenance, callers)
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, provs[i], errs[i] = c.GetOrCompute(context.Background(), "k", compute)
		}(i)
	}
	// Wait until the other 99 callers are blocked on the flight, then let
	// the leader finish.
	deadline := time.Now().Add(10 * time.Second)
	for c.Stats().Shared != callers-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d callers joined the flight", c.Stats().Shared)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if got := computes.Load(); got != 1 {
		t.Fatalf("%d computations for %d identical requests, want 1", got, callers)
	}
	nComputed, nShared := 0, 0
	for i := range provs {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		switch provs[i] {
		case Computed:
			nComputed++
		case Shared:
			nShared++
		default:
			t.Fatalf("caller %d: unexpected provenance %v", i, provs[i])
		}
	}
	if nComputed != 1 || nShared != callers-1 {
		t.Fatalf("provenances: %d computed, %d shared", nComputed, nShared)
	}
}

// TestCacheSingleFlightWaiterCancel: a waiter that gives up gets its context
// error; the computation keeps running for everyone else.
func TestCacheSingleFlightWaiterCancel(t *testing.T) {
	c, err := New("", 0)
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	leaderDone := make(chan error, 1)
	go func() {
		_, _, err := c.GetOrCompute(context.Background(), "k", func() ([]byte, error) {
			<-release
			return []byte(`{}`), nil
		})
		leaderDone <- err
	}()
	for c.Stats().Misses == 0 {
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithCancel(context.Background())
	waiterDone := make(chan error, 1)
	go func() {
		_, _, err := c.GetOrCompute(ctx, "k", func() ([]byte, error) {
			t.Error("waiter must not compute")
			return nil, nil
		})
		waiterDone <- err
	}()
	for c.Stats().Shared == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-waiterDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter returned %v, want context.Canceled", err)
	}
	close(release)
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader failed after waiter cancel: %v", err)
	}
}

// TestCacheFailedComputeNotCached: a failed computation is shared with
// current waiters but never stored, so the next caller retries.
func TestCacheFailedComputeNotCached(t *testing.T) {
	c, err := New(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	if _, _, err := c.GetOrCompute(context.Background(), "k", func() ([]byte, error) {
		return nil, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
	b, prov, err := c.GetOrCompute(context.Background(), "k", func() ([]byte, error) {
		return []byte(`{}`), nil
	})
	if err != nil || prov != Computed || string(b) != `{}` {
		t.Fatalf("retry = (%q, %v, %v), want fresh computation", b, prov, err)
	}
}

// TestCacheCorruptDiskEntry: garbage on disk is dropped and recomputed, not
// crashed on and not returned.
func TestCacheCorruptDiskEntry(t *testing.T) {
	dir := t.TempDir()
	c, err := New(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	c.Put("deadbeef", []byte(`{"good":true}`))

	// Corrupt the entry behind the cache's back, then start a fresh cache so
	// the memory tier cannot mask the damage.
	path := filepath.Join(dir, "de", "deadbeef.json")
	if err := os.WriteFile(path, []byte("{\"truncated\":"), 0o644); err != nil {
		t.Fatal(err)
	}
	c2, err := New(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := c2.Lookup("deadbeef"); ok {
		t.Fatal("corrupt entry was returned")
	}
	if st := c2.Stats(); st.CorruptDropped != 1 {
		t.Fatalf("corrupt entries dropped = %d, want 1", st.CorruptDropped)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("corrupt entry not removed: %v", err)
	}

	b, prov, err := c2.GetOrCompute(context.Background(), "deadbeef", func() ([]byte, error) {
		return []byte(`{"recomputed":true}`), nil
	})
	if err != nil || prov != Computed || string(b) != `{"recomputed":true}` {
		t.Fatalf("recompute after corruption = (%q, %v, %v)", b, prov, err)
	}
}

// TestCachePanickingComputeReleasesFlight: a compute that panics must not
// leak its flight entry — waiters unblock with an error and the key stays
// usable for the next caller.
func TestCachePanickingComputeReleasesFlight(t *testing.T) {
	c, err := New("", 0)
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	leaderPanicked := make(chan any, 1)
	go func() {
		defer func() { leaderPanicked <- recover() }()
		c.GetOrCompute(context.Background(), "k", func() ([]byte, error) {
			<-release
			panic("compute exploded")
		})
	}()
	for c.Stats().Misses == 0 {
		time.Sleep(time.Millisecond)
	}

	// A waiter joins the doomed flight before the panic fires.
	waiterDone := make(chan error, 1)
	go func() {
		_, _, err := c.GetOrCompute(context.Background(), "k", func() ([]byte, error) {
			t.Error("waiter must not compute while the flight is open")
			return nil, nil
		})
		waiterDone <- err
	}()
	for c.Stats().Shared == 0 {
		time.Sleep(time.Millisecond)
	}
	close(release)

	if r := <-leaderPanicked; r == nil {
		t.Fatal("panic did not propagate to the leader's caller")
	}
	select {
	case err := <-waiterDone:
		if err == nil {
			t.Fatal("waiter of a panicked flight returned no error")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("waiter still blocked: panicked flight leaked")
	}

	// The key must be fully usable again.
	b, prov, err := c.GetOrCompute(context.Background(), "k", func() ([]byte, error) {
		return []byte(`{"ok":true}`), nil
	})
	if err != nil || prov != Computed || string(b) != `{"ok":true}` {
		t.Fatalf("key unusable after panicked flight: (%q, %v, %v)", b, prov, err)
	}
}

// TestCacheReturnedSlicesIsolated: mutating a slice returned by any read
// path — or one previously handed to Put — must not corrupt later hits.
func TestCacheReturnedSlicesIsolated(t *testing.T) {
	c, err := New(t.TempDir(), 4)
	if err != nil {
		t.Fatal(err)
	}
	const want = `{"v":1}`
	stored := []byte(want)
	c.Put("k", stored)
	stored[0] = 'X' // caller scribbles on the slice it stored

	got, prov, ok := c.Lookup("k")
	if !ok || prov != FromMemory || string(got) != want {
		t.Fatalf("after store-side mutation: (%q, %v, %v), want %q", got, prov, ok, want)
	}
	got[0] = 'Y' // caller scribbles on the slice it was handed
	if got2, _, ok := c.Lookup("k"); !ok || string(got2) != want {
		t.Fatalf("after hit-side mutation: %q, want %q", got2, want)
	}
	if got3, _, err := c.GetOrCompute(context.Background(), "k", func() ([]byte, error) {
		t.Error("hit must not compute")
		return nil, nil
	}); err != nil || string(got3) != want {
		t.Fatalf("GetOrCompute after mutations: (%q, %v), want %q", got3, err, want)
	}
}

// TestCacheStaleTempSweep: New removes temp files orphaned by a crashed
// diskPut, but keeps a concurrent writer's fresh temp file and every real
// entry.
func TestCacheStaleTempSweep(t *testing.T) {
	dir := t.TempDir()
	c, err := New(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	c.Put("deadbeef", []byte(`{"v":1}`))

	fan := filepath.Join(dir, "de")
	stale := filepath.Join(fan, ".deadbeef.tmp123456")
	fresh := filepath.Join(fan, ".cafef00d.tmp654321")
	for _, p := range []string{stale, fresh} {
		if err := os.WriteFile(p, []byte("partial"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-2 * staleTempAge)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}

	if _, err := New(dir, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale temp file survived the sweep: %v", err)
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Fatalf("fresh temp file was swept: %v", err)
	}
	if _, err := os.Stat(filepath.Join(fan, "deadbeef.json")); err != nil {
		t.Fatalf("real entry was swept: %v", err)
	}
}

// TestCacheConcurrentDistinctKeys hammers the cache with distinct keys to
// exercise LRU eviction and disk writes under the race detector.
func TestCacheConcurrentDistinctKeys(t *testing.T) {
	c, err := New(t.TempDir(), 8)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("key-%02d", i%16)
			val := []byte(fmt.Sprintf(`{"i":%d}`, i%16))
			got, _, err := c.GetOrCompute(context.Background(), key, func() ([]byte, error) {
				return val, nil
			})
			if err != nil {
				t.Error(err)
			}
			if string(got) != string(val) {
				t.Errorf("key %s: got %s want %s", key, got, val)
			}
		}(i)
	}
	wg.Wait()
}
