package memo

import (
	"container/list"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

// Provenance says where a cached result came from.
type Provenance string

const (
	// FromMemory means the in-memory LRU tier answered the lookup.
	FromMemory Provenance = "memory"
	// FromDisk means the on-disk store answered the lookup (the entry is
	// promoted into the memory tier on the way out).
	FromDisk Provenance = "disk"
	// Computed means no tier had the entry and this caller ran the synthesis.
	Computed Provenance = "computed"
	// Shared means another in-flight computation of the same key was joined:
	// N concurrent identical requests cost one synthesis.
	Shared Provenance = "shared"
)

// Stats counts cache activity since construction. All counters are
// monotonically increasing.
type Stats struct {
	// MemHits and DiskHits count lookups answered by each tier.
	MemHits  uint64 `json:"mem_hits"`
	DiskHits uint64 `json:"disk_hits"`
	// Misses counts lookups no tier could answer.
	Misses uint64 `json:"misses"`
	// Shared counts callers that joined another caller's in-flight
	// computation instead of starting their own.
	Shared uint64 `json:"shared"`
	// Stores counts successful writes of a computed entry.
	Stores uint64 `json:"stores"`
	// CorruptDropped counts on-disk entries discarded because their content
	// was not a valid serialised result (truncated write, bit rot, external
	// tampering). A dropped entry is recomputed, never returned.
	CorruptDropped uint64 `json:"corrupt_dropped"`
	// DiskErrors counts disk reads/writes that failed with an I/O error.
	// Disk trouble degrades the cache to memory-only behaviour per request;
	// it never fails the request itself.
	DiskErrors uint64 `json:"disk_errors"`
	// MemEntries is the current number of entries in the memory tier.
	MemEntries int `json:"mem_entries"`
}

// DefaultMemEntries is the memory-tier capacity used when the caller passes
// a non-positive limit to New.
const DefaultMemEntries = 256

// Cache is the two-tier result store: a bounded in-memory LRU in front of an
// optional on-disk directory of JSON files, with single-flight deduplication
// of concurrent computations for the same key. All methods are safe for
// concurrent use.
//
// The disk layout is dir/<k0k1>/<key>.json — two hex characters of fan-out,
// then one file per key holding exactly the serialised Result bytes, so
// entries are directly readable (and diffable) with standard tools. Writes
// go through a temp file and an atomic rename, so a crash mid-write leaves
// at worst a stale temp file, never a truncated entry. Processes can share a
// directory: the CLI's -cache-dir and a sunfloor-server pointed at the same
// path serve each other's results.
type Cache struct {
	dir        string
	memEntries int

	mu      sync.Mutex
	lru     *list.List // most recent at front; values are *memEntry
	mem     map[string]*list.Element
	flights map[string]*flight
	stats   Stats
}

type memEntry struct {
	key string
	val []byte
}

// flight is one in-progress computation other callers of the same key join.
type flight struct {
	done chan struct{} // closed when val/err are final
	val  []byte
	err  error
}

// staleTempAge is how old an orphaned diskPut temp file must be before New
// sweeps it. A live temp file belonging to a concurrent writer is at most a
// few seconds old; anything this stale is the residue of a crash between
// CreateTemp and Rename.
const staleTempAge = time.Hour

// New opens a cache. dir is the on-disk store root ("" disables the disk
// tier); it is created if missing, and temp files orphaned by a crashed
// writer (older than staleTempAge) are swept. memEntries bounds the memory
// tier (<= 0 selects DefaultMemEntries).
func New(dir string, memEntries int) (*Cache, error) {
	if memEntries <= 0 {
		memEntries = DefaultMemEntries
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("memo: creating cache dir: %w", err)
		}
		sweepStaleTemps(dir)
	}
	return &Cache{
		dir:        dir,
		memEntries: memEntries,
		lru:        list.New(),
		mem:        make(map[string]*list.Element),
		flights:    make(map[string]*flight),
	}, nil
}

// sweepStaleTemps removes diskPut temp files left behind by a crashed
// writer. Real entries are <hexkey>.json and never start with a dot, so
// anything dot-prefixed with ".tmp" in its name inside a fan-out directory is
// a write-in-progress; the age gate keeps a concurrent writer's live temp
// file safe. Sweep failures are ignored — a leftover temp file is garbage,
// not a correctness problem.
func sweepStaleTemps(dir string) {
	now := time.Now() //determlint:wallclock age-gating orphaned temp files only; file removal never affects cache content or results
	fans, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, fan := range fans {
		if !fan.IsDir() {
			continue
		}
		entries, err := os.ReadDir(filepath.Join(dir, fan.Name()))
		if err != nil {
			continue
		}
		for _, e := range entries {
			name := e.Name()
			if !strings.HasPrefix(name, ".") || !strings.Contains(name, ".tmp") {
				continue
			}
			info, err := e.Info()
			if err != nil {
				continue
			}
			if now.Sub(info.ModTime()) >= staleTempAge {
				os.Remove(filepath.Join(dir, fan.Name(), name))
			}
		}
	}
}

// Dir returns the on-disk store root ("" when the disk tier is disabled).
func (c *Cache) Dir() string { return c.dir }

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.MemEntries = c.lru.Len()
	return s
}

// Lookup returns the cached bytes for key from either tier, without
// computing anything. A disk hit is promoted into the memory tier.
func (c *Cache) Lookup(key string) ([]byte, Provenance, bool) {
	b, prov, ok := c.Peek(key)
	if !ok {
		c.mu.Lock()
		c.stats.Misses++
		c.mu.Unlock()
	}
	return b, prov, ok
}

// Peek is Lookup without miss accounting: hits count as hits, but a miss
// leaves the counters untouched. Use it for an opportunistic check that a
// GetOrCompute will follow on a miss, so the miss is not counted twice.
func (c *Cache) Peek(key string) ([]byte, Provenance, bool) {
	c.mu.Lock()
	if b, ok := c.memGetLocked(key); ok {
		c.stats.MemHits++
		c.mu.Unlock()
		return b, FromMemory, true
	}
	c.mu.Unlock()

	if b, ok := c.diskGet(key); ok {
		c.mu.Lock()
		c.stats.DiskHits++
		c.memPutLocked(key, b)
		c.mu.Unlock()
		return b, FromDisk, true
	}
	return nil, "", false
}

// Put stores computed bytes for key in both tiers. Disk write failures are
// counted and swallowed: the entry still lands in the memory tier.
func (c *Cache) Put(key string, val []byte) {
	c.mu.Lock()
	c.memPutLocked(key, val)
	c.stats.Stores++
	c.mu.Unlock()
	c.diskPut(key, val)
}

// GetOrCompute returns the cached bytes for key, computing and storing them
// with compute on a miss. Concurrent calls for the same key are
// single-flighted: one caller computes, the others block and share its
// outcome (Provenance Shared). The context only bounds this caller's wait —
// a joined computation keeps running for the benefit of the other waiters
// when one of them gives up.
func (c *Cache) GetOrCompute(ctx context.Context, key string, compute func() ([]byte, error)) ([]byte, Provenance, error) {
	for {
		// Fast path: either tier already has it.
		c.mu.Lock()
		if b, ok := c.memGetLocked(key); ok {
			c.stats.MemHits++
			c.mu.Unlock()
			return b, FromMemory, nil
		}
		if f, ok := c.flights[key]; ok {
			c.stats.Shared++
			c.mu.Unlock()
			select {
			case <-f.done:
				if f.err != nil {
					return nil, Shared, f.err
				}
				// Every waiter gets its own copy: f.val is shared by all
				// joiners and may also be the leader's return value.
				return clone(f.val), Shared, nil
			case <-ctx.Done():
				return nil, Shared, ctx.Err()
			}
		}
		c.mu.Unlock()

		if b, ok := c.diskGet(key); ok {
			c.mu.Lock()
			c.stats.DiskHits++
			c.memPutLocked(key, b)
			c.mu.Unlock()
			return b, FromDisk, nil
		}

		// Miss: become the flight leader, unless someone beat us to it
		// between the unlock and here — then loop and join their flight.
		c.mu.Lock()
		if _, ok := c.flights[key]; ok {
			c.mu.Unlock()
			continue
		}
		f := &flight{done: make(chan struct{})}
		c.flights[key] = f
		c.stats.Misses++
		c.mu.Unlock()

		// The flight must be cleaned up even when compute panics — otherwise
		// the entry leaks and every future caller of the key blocks forever
		// on a done channel that never closes. The cleanup is deferred, the
		// panic itself propagates to this caller, and waiters observe an
		// error instead of the leader's result.
		func() {
			completed := false
			defer func() {
				if !completed && f.err == nil {
					f.err = fmt.Errorf("memo: computing entry for key %s panicked", key)
				}
				c.mu.Lock()
				delete(c.flights, key)
				c.mu.Unlock()
				close(f.done)
			}()
			f.val, f.err = compute()
			completed = true
			if f.err == nil {
				c.Put(key, f.val)
			}
		}()
		if f.err != nil {
			return nil, Computed, f.err
		}
		return f.val, Computed, nil
	}
}

// clone copies cached bytes so the memory tier and its callers never share a
// backing array: a caller mutating a returned slice (or a slice it previously
// stored) must not corrupt later hits the way it would with aliasing, which
// the disk tier never suffered from.
func clone(b []byte) []byte {
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

// memGetLocked returns a copy of the memory-tier entry and marks it most
// recently used.
func (c *Cache) memGetLocked(key string) ([]byte, bool) {
	el, ok := c.mem[key]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(el)
	return clone(el.Value.(*memEntry).val), true
}

// memPutLocked inserts or refreshes a memory-tier entry (storing its own
// copy of val), evicting from the LRU tail past capacity.
func (c *Cache) memPutLocked(key string, val []byte) {
	if el, ok := c.mem[key]; ok {
		el.Value.(*memEntry).val = clone(val)
		c.lru.MoveToFront(el)
		return
	}
	c.mem[key] = c.lru.PushFront(&memEntry{key: key, val: clone(val)})
	for c.lru.Len() > c.memEntries {
		tail := c.lru.Back()
		c.lru.Remove(tail)
		delete(c.mem, tail.Value.(*memEntry).key)
	}
}

// entryPath maps a key to its on-disk location.
func (c *Cache) entryPath(key string) string {
	fan := "xx"
	if len(key) >= 2 {
		fan = key[:2]
	}
	return filepath.Join(c.dir, fan, key+".json")
}

// diskGet reads an entry from the disk tier, dropping it as corrupt when the
// content is not a valid JSON document (a torn external write, truncation or
// bit rot must lead to recomputation, never to a crash or a bad result).
func (c *Cache) diskGet(key string) ([]byte, bool) {
	if c.dir == "" {
		return nil, false
	}
	b, err := os.ReadFile(c.entryPath(key))
	if err != nil {
		if !os.IsNotExist(err) {
			c.mu.Lock()
			c.stats.DiskErrors++
			c.mu.Unlock()
		}
		return nil, false
	}
	if !json.Valid(b) {
		os.Remove(c.entryPath(key))
		c.mu.Lock()
		c.stats.CorruptDropped++
		c.mu.Unlock()
		return nil, false
	}
	return b, true
}

// diskPut writes an entry to the disk tier atomically (temp file + rename).
func (c *Cache) diskPut(key string, val []byte) {
	if c.dir == "" {
		return
	}
	path := c.entryPath(key)
	fail := func() {
		c.mu.Lock()
		c.stats.DiskErrors++
		c.mu.Unlock()
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		fail()
		return
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+key+".tmp*")
	if err != nil {
		fail()
		return
	}
	if _, err := tmp.Write(val); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		fail()
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		fail()
		return
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		fail()
		return
	}
}
