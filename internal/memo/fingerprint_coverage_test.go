package memo

import (
	"go/ast"
	"go/parser"
	"go/token"
	"reflect"
	"sort"
	"strings"
	"testing"

	"sunfloor3d/internal/model"
	"sunfloor3d/internal/synth"
)

// TestOptionsFingerprintCoverage mirrors the fingerprintcover analyzer at
// runtime, so the fingerprint-totality invariant holds for anyone running
// plain `go test ./...` even if sunfloor-lint never runs: every exported
// field reachable from Key's parameters (CommGraph and Options, recursively)
// must either be read by Key — established by parsing key.go — or carry a
// justification in executionKnobs. It also asserts the classification is
// consistent (no field both hashed and excluded) and current (no stale
// executionKnobs entry).
func TestOptionsFingerprintCoverage(t *testing.T) {
	hashed := hashedPaths(t)

	visitedKnobs := make(map[string]bool)
	var problems []string
	var walk func(rt reflect.Type, path string)
	walk = func(rt reflect.Type, path string) {
		for i := 0; i < rt.NumField(); i++ {
			f := rt.Field(i)
			if !f.IsExported() {
				continue // unexported fields must be derived from exported state
			}
			fp := f.Name
			if path != "" {
				fp = path + "." + f.Name
			}
			_, excluded := executionKnobs[fp]
			switch {
			case excluded && hashed[fp]:
				problems = append(problems, fp+": both hashed by Key and excluded in executionKnobs")
				visitedKnobs[fp] = true
			case excluded:
				visitedKnobs[fp] = true // justified exclusion exempts the subtree
			case !hashed[fp]:
				problems = append(problems, fp+": neither hashed by Key nor classified in executionKnobs")
			default:
				if elem := structElem(f.Type); elem != nil {
					walk(elem, fp)
				}
			}
		}
	}
	walk(reflect.TypeOf(synth.Options{}), "")
	walk(reflect.TypeOf(model.CommGraph{}), "")

	for path := range executionKnobs {
		if !visitedKnobs[path] {
			problems = append(problems, path+": executionKnobs entry matches no option field (stale)")
		}
	}
	for path, reason := range executionKnobs {
		if strings.TrimSpace(reason) == "" {
			problems = append(problems, path+": executionKnobs entry has no justification")
		}
	}
	sort.Strings(problems)
	for _, p := range problems {
		t.Errorf("fingerprint coverage: %s", p)
	}
}

// structElem resolves t through pointers, slices, arrays and map values to a
// struct type, or nil — the reflect twin of the analyzer's namedStruct.
func structElem(t reflect.Type) reflect.Type {
	for {
		switch t.Kind() {
		case reflect.Pointer, reflect.Slice, reflect.Array, reflect.Map:
			t = t.Elem()
		case reflect.Struct:
			return t
		default:
			return nil
		}
	}
}

// hashedPaths parses key.go and returns every dotted field path (and prefix)
// the Key function reads from its parameters, following the two aliasing
// forms the encoder uses: `s := opt.Sim` and `for _, c := range g.Cores`.
func hashedPaths(t *testing.T) map[string]bool {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "key.go", nil, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parsing key.go: %v", err)
	}
	var key *ast.FuncDecl
	for _, decl := range file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Recv == nil && fd.Name.Name == "Key" {
			key = fd
			break
		}
	}
	if key == nil {
		t.Fatal("key.go declares no func Key")
	}

	// roots maps a variable name to the dotted path it stands for; the
	// parameters themselves stand for the empty root path.
	roots := make(map[string]string)
	for _, param := range key.Type.Params.List {
		for _, name := range param.Names {
			roots[name.Name] = ""
		}
	}
	hashed := make(map[string]bool)
	record := func(path string) {
		parts := strings.Split(path, ".")
		for i := 1; i <= len(parts); i++ {
			hashed[strings.Join(parts[:i], ".")] = true
		}
	}
	// resolve flattens a selector chain rooted at a known variable into its
	// dotted path ("" base means the expression is not rooted at one).
	var resolve func(e ast.Expr) (string, bool)
	resolve = func(e ast.Expr) (string, bool) {
		switch x := e.(type) {
		case *ast.Ident:
			p, ok := roots[x.Name]
			return p, ok
		case *ast.SelectorExpr:
			base, ok := resolve(x.X)
			if !ok {
				return "", false
			}
			if base == "" {
				return x.Sel.Name, true
			}
			return base + "." + x.Sel.Name, true
		case *ast.ParenExpr:
			return resolve(x.X)
		}
		return "", false
	}

	ast.Inspect(key.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			// s := opt.Sim — s aliases the path of the right-hand chain.
			if x.Tok == token.DEFINE && len(x.Lhs) == 1 && len(x.Rhs) == 1 {
				if lhs, ok := x.Lhs[0].(*ast.Ident); ok {
					if path, ok := resolve(x.Rhs[0]); ok && path != "" {
						record(path)
						roots[lhs.Name] = path
					}
				}
			}
		case *ast.RangeStmt:
			// for _, c := range g.Cores — c aliases the element path.
			if path, ok := resolve(x.X); ok && path != "" {
				record(path)
				if v, ok := x.Value.(*ast.Ident); ok && v.Name != "_" {
					roots[v.Name] = path
				}
			}
		case *ast.SelectorExpr:
			if path, ok := resolve(x); ok && path != "" {
				record(path)
				return false // prefixes already recorded
			}
		}
		return true
	})
	return hashed
}
