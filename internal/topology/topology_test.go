package topology

import (
	"math"
	"strings"
	"testing"

	"sunfloor3d/internal/geom"
	"sunfloor3d/internal/model"
	"sunfloor3d/internal/noclib"
)

// testDesign builds a 4-core, 2-layer design with cross-layer traffic.
func testDesign(t *testing.T) *model.CommGraph {
	t.Helper()
	cores := []model.Core{
		{Name: "cpu", Width: 1, Height: 1, X: 0, Y: 0, Layer: 0},
		{Name: "mem0", Width: 1, Height: 1, X: 3, Y: 0, Layer: 0, IsMemory: true},
		{Name: "dsp", Width: 1, Height: 1, X: 0, Y: 0, Layer: 1},
		{Name: "mem1", Width: 1, Height: 1, X: 3, Y: 0, Layer: 1, IsMemory: true},
	}
	flows := []model.Flow{
		{Src: 0, Dst: 1, BandwidthMBps: 1000, LatencyCycles: 4, Type: model.Request},
		{Src: 2, Dst: 3, BandwidthMBps: 800, LatencyCycles: 4, Type: model.Request},
		{Src: 0, Dst: 3, BandwidthMBps: 400, LatencyCycles: 6, Type: model.Request},
		{Src: 3, Dst: 0, BandwidthMBps: 200, Type: model.Response},
	}
	g, err := model.NewCommGraph(cores, flows)
	if err != nil {
		t.Fatalf("NewCommGraph: %v", err)
	}
	return g
}

// twoSwitchTopology attaches layer-0 cores to sw0 and layer-1 cores to sw1 and
// routes all flows.
func twoSwitchTopology(t *testing.T) *Topology {
	t.Helper()
	g := testDesign(t)
	top := New(g, noclib.DefaultLibrary(), 400)
	s0 := top.AddSwitch(0)
	s1 := top.AddSwitch(1)
	top.AttachCore(0, s0)
	top.AttachCore(1, s0)
	top.AttachCore(2, s1)
	top.AttachCore(3, s1)
	top.SetRoute(0, []int{s0})
	top.SetRoute(1, []int{s1})
	top.SetRoute(2, []int{s0, s1})
	top.SetRoute(3, []int{s1, s0})
	top.EstimateSwitchPositions()
	return top
}

func TestValidateGood(t *testing.T) {
	top := twoSwitchTopology(t)
	if err := top.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateCatchesProblems(t *testing.T) {
	base := func() *Topology { return twoSwitchTopology(t) }

	top := base()
	top.CoreAttach[0] = -1
	if err := top.Validate(); err == nil {
		t.Error("unattached core not detected")
	}

	top = base()
	top.Routes[0].Switches = nil
	if err := top.Validate(); err == nil {
		t.Error("missing route not detected")
	}

	top = base()
	top.Routes[0].Switches = []int{5}
	if err := top.Validate(); err == nil {
		t.Error("invalid switch in route not detected")
	}

	top = base()
	top.Routes[2].Switches = []int{1, 0} // starts at wrong switch
	if err := top.Validate(); err == nil {
		t.Error("route start mismatch not detected")
	}

	top = base()
	top.Routes[2].Switches = []int{0, 0, 1}
	if err := top.Validate(); err == nil {
		t.Error("repeated switch not detected")
	}
}

func TestSwitchLinksAggregation(t *testing.T) {
	top := twoSwitchTopology(t)
	links := top.SwitchLinks()
	if len(links) != 2 {
		t.Fatalf("links = %+v", links)
	}
	// 0->1 carries flow 2 (400), 1->0 carries flow 3 (200).
	if links[0].From != 0 || links[0].To != 1 || links[0].BandwidthMBps != 400 {
		t.Errorf("link 0 = %+v", links[0])
	}
	if links[1].From != 1 || links[1].To != 0 || links[1].BandwidthMBps != 200 {
		t.Errorf("link 1 = %+v", links[1])
	}
}

func TestCoreLinksAggregation(t *testing.T) {
	top := twoSwitchTopology(t)
	links := top.CoreLinks()
	// core0: out 1400 (flows 0 and 2), in 200 (flow 3) -> 2 entries
	var out0, in0 float64
	for _, l := range links {
		if l.Core == 0 {
			if l.ToCore {
				in0 += l.BandwidthMBps
			} else {
				out0 += l.BandwidthMBps
			}
		}
	}
	if out0 != 1400 || in0 != 200 {
		t.Errorf("core0 out=%v in=%v, want 1400/200", out0, in0)
	}
}

func TestSwitchPorts(t *testing.T) {
	top := twoSwitchTopology(t)
	in, out := top.SwitchPorts()
	// sw0: 2 cores (2 in, 2 out) + incoming link from sw1 + outgoing to sw1.
	if in[0] != 3 || out[0] != 3 {
		t.Errorf("sw0 ports = %d/%d, want 3/3", in[0], out[0])
	}
	if in[1] != 3 || out[1] != 3 {
		t.Errorf("sw1 ports = %d/%d, want 3/3", in[1], out[1])
	}
}

func TestInterLayerLinksAndTSVs(t *testing.T) {
	top := twoSwitchTopology(t)
	ill := top.InterLayerLinkCount()
	if len(ill) != 1 {
		t.Fatalf("ill = %v", ill)
	}
	// Two switch-to-switch links cross the boundary (0->1 and 1->0); all cores
	// attach to a switch in their own layer.
	if ill[0] != 2 {
		t.Errorf("ill[0] = %d, want 2", ill[0])
	}
	if top.MaxInterLayerLinks() != 2 {
		t.Errorf("MaxInterLayerLinks = %d", top.MaxInterLayerLinks())
	}
	if top.TSVMacroCount() != 2 {
		t.Errorf("TSVMacroCount = %d, want 2", top.TSVMacroCount())
	}
}

func TestCrossLayerCoreAttachment(t *testing.T) {
	g := testDesign(t)
	top := New(g, noclib.DefaultLibrary(), 400)
	s0 := top.AddSwitch(0)
	for c := 0; c < 4; c++ {
		top.AttachCore(c, s0)
	}
	for f := 0; f < 4; f++ {
		top.SetRoute(f, []int{s0})
	}
	top.EstimateSwitchPositions()
	if err := top.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	ill := top.InterLayerLinkCount()
	// Cores 2 and 3 are on layer 1 and attach to a switch on layer 0.
	if len(ill) != 1 || ill[0] != 2 {
		t.Errorf("ill = %v, want [2]", ill)
	}
	if top.TSVMacroCount() != 2 {
		t.Errorf("TSVMacroCount = %d, want 2", top.TSVMacroCount())
	}
}

func TestEstimateSwitchPositions(t *testing.T) {
	top := twoSwitchTopology(t)
	// Switch 0 serves cores at x-centres 0.5 and 3.5 on layer 0; its position
	// must lie between them.
	p := top.Switches[0].Pos
	if p.X <= 0.5 || p.X >= 3.5 {
		t.Errorf("sw0 position %v not between attached cores", p)
	}
	// Indirect switch with no cores gets the centroid of its neighbours.
	g := testDesign(t)
	top2 := New(g, noclib.DefaultLibrary(), 400)
	s0 := top2.AddSwitch(0)
	s1 := top2.AddSwitch(1)
	mid := top2.AddIndirectSwitch(0)
	top2.AttachCore(0, s0)
	top2.AttachCore(1, s0)
	top2.AttachCore(2, s1)
	top2.AttachCore(3, s1)
	top2.SetRoute(0, []int{s0})
	top2.SetRoute(1, []int{s1})
	top2.SetRoute(2, []int{s0, mid, s1})
	top2.SetRoute(3, []int{s1, mid, s0})
	top2.EstimateSwitchPositions()
	if !top2.Switches[mid].Indirect {
		t.Error("indirect flag lost")
	}
	mp := top2.Switches[mid].Pos
	if mp.X == 0 && mp.Y == 0 {
		// The neighbours have non-zero positions, so the indirect switch
		// should have moved.
		t.Errorf("indirect switch not positioned: %v", mp)
	}
}

func TestEvaluatePowerBreakdown(t *testing.T) {
	top := twoSwitchTopology(t)
	m := top.Evaluate()
	if m.Power.SwitchMW <= 0 || m.Power.CoreLinkMW <= 0 || m.Power.NIMW <= 0 {
		t.Errorf("power components must be positive: %+v", m.Power)
	}
	if m.Power.TotalMW() <= m.Power.SwitchMW {
		t.Error("total power must exceed switch power alone")
	}
	if !geom.AlmostEqual(m.Power.LinkMW(), m.Power.SwitchLinkMW+m.Power.CoreLinkMW, 1e-9) {
		t.Error("LinkMW inconsistent")
	}
	if m.NumSwitches != 2 {
		t.Errorf("NumSwitches = %d", m.NumSwitches)
	}
	if m.NoCAreaMM2 <= 0 {
		t.Error("NoC area must be positive")
	}
	if len(m.WireLengthsMM) == 0 {
		t.Error("wire lengths missing")
	}
	if m.TotalWireLengthMM <= 0 {
		t.Error("total wire length must be positive")
	}
}

func TestLatencyAccounting(t *testing.T) {
	top := twoSwitchTopology(t)
	// Flow 0 traverses one switch; flow 2 traverses two.
	if l := top.FlowLatencyCycles(0); l < 1 || l > 2 {
		t.Errorf("flow 0 latency = %v", l)
	}
	// The two-switch flow pays at least one more switch traversal than the
	// single-switch flow would with the same link pipelining, so it can never
	// be faster.
	l0 := top.FlowLatencyCycles(0)
	l2 := top.FlowLatencyCycles(2)
	if l2 < 2 {
		t.Errorf("two-switch flow latency = %v, want >= 2", l2)
	}
	if l2 < l0-1 {
		t.Errorf("two-switch flow latency (%v) implausibly below one-switch (%v)", l2, l0)
	}
	m := top.Evaluate()
	if m.AvgLatencyCycles <= 0 || m.MaxLatencyCycles < m.AvgLatencyCycles {
		t.Errorf("latency stats inconsistent: %+v", m)
	}
	if m.LatencyViolations != 0 {
		t.Errorf("unexpected latency violations: %d", m.LatencyViolations)
	}
	// An unrouted flow has infinite latency.
	top.Routes[1].Switches = nil
	if !math.IsInf(top.FlowLatencyCycles(1), 1) {
		t.Error("unrouted flow should have +Inf latency")
	}
}

func TestLatencyViolationDetection(t *testing.T) {
	g := testDesign(t)
	top := New(g, noclib.DefaultLibrary(), 400)
	// Chain of 6 switches so flow 0 (constraint 4 cycles) is violated.
	var chain []int
	for i := 0; i < 6; i++ {
		chain = append(chain, top.AddSwitch(0))
	}
	top.AttachCore(0, chain[0])
	top.AttachCore(1, chain[5])
	top.AttachCore(2, chain[0])
	top.AttachCore(3, chain[5])
	top.SetRoute(0, chain)
	top.SetRoute(1, chain)
	top.SetRoute(2, chain)
	top.SetRoute(3, []int{chain[5], chain[4], chain[3], chain[2], chain[1], chain[0]})
	top.EstimateSwitchPositions()
	m := top.Evaluate()
	if m.LatencyViolations == 0 {
		t.Error("expected latency violations on 6-hop route with 4-cycle constraint")
	}
}

func TestMoreSwitchesShorterCoreLinks(t *testing.T) {
	// With one switch per core, core-to-switch links are essentially zero
	// length, so their power must not exceed the shared-switch case. This is
	// one of the trends discussed in Section IV of the paper.
	g := testDesign(t)
	lib := noclib.DefaultLibrary()

	shared := New(g, lib, 400)
	s := shared.AddSwitch(0)
	for c := 0; c < 4; c++ {
		shared.AttachCore(c, s)
	}
	for f := 0; f < 4; f++ {
		shared.SetRoute(f, []int{s})
	}
	shared.EstimateSwitchPositions()

	perCore := New(g, lib, 400)
	for c := 0; c < 4; c++ {
		sw := perCore.AddSwitch(g.Cores[c].Layer)
		perCore.AttachCore(c, sw)
	}
	for f, fl := range g.Flows {
		perCore.SetRoute(f, []int{perCore.CoreAttach[fl.Src], perCore.CoreAttach[fl.Dst]})
	}
	perCore.EstimateSwitchPositions()

	ms := shared.Evaluate()
	mp := perCore.Evaluate()
	if mp.Power.CoreLinkMW > ms.Power.CoreLinkMW+1e-9 {
		t.Errorf("per-core switches should not increase core-link power: %v vs %v",
			mp.Power.CoreLinkMW, ms.Power.CoreLinkMW)
	}
	// And the per-core design uses more switches, so its switch count is higher.
	if mp.NumSwitches <= ms.NumSwitches {
		t.Error("per-core design should have more switches")
	}
}

func TestCloneIndependence(t *testing.T) {
	top := twoSwitchTopology(t)
	c := top.Clone()
	c.Switches[0].Layer = 7
	c.CoreAttach[0] = 1
	c.Routes[0].Switches[0] = 1
	if top.Switches[0].Layer == 7 || top.CoreAttach[0] == 1 || top.Routes[0].Switches[0] == 1 {
		t.Error("Clone shares state with original")
	}
}

func TestWireLengthHistogram(t *testing.T) {
	top := twoSwitchTopology(t)
	h := top.WireLengthHistogram(0.5)
	if len(h) == 0 {
		t.Fatal("histogram empty")
	}
	total := 0
	for _, c := range h {
		total += c
	}
	m := top.Evaluate()
	if total != len(m.WireLengthsMM) {
		t.Errorf("histogram total %d != %d links", total, len(m.WireLengthsMM))
	}
	// Degenerate bin widths: every one must yield an empty histogram, never
	// a panic (NaN slips past a plain <= 0 check and used to make the bin
	// count conversion undefined) and never an unbounded allocation.
	for _, tc := range []struct {
		name  string
		binMM float64
	}{
		{"zero", 0},
		{"negative", -0.5},
		{"negative zero", math.Copysign(0, -1)},
		{"NaN", math.NaN()},
		{"+Inf", math.Inf(1)},
		{"-Inf", math.Inf(-1)},
	} {
		if got := top.WireLengthHistogram(tc.binMM); got != nil {
			t.Errorf("WireLengthHistogram(%s) = %v, want nil", tc.name, got)
		}
	}
	sorted := top.SortedWireLengths()
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1] > sorted[i] {
			t.Fatal("SortedWireLengths not sorted")
		}
	}
}

func TestDescribeAndDOT(t *testing.T) {
	top := twoSwitchTopology(t)
	desc := top.Describe()
	for _, want := range []string{"sw0", "sw1", "cpu", "mem1", "bw="} {
		if !strings.Contains(desc, want) {
			t.Errorf("Describe missing %q:\n%s", want, desc)
		}
	}
	var sb strings.Builder
	if err := top.WriteDOT(&sb); err != nil {
		t.Fatalf("WriteDOT: %v", err)
	}
	dot := sb.String()
	for _, want := range []string{"digraph", "cluster_layer0", "cluster_layer1", "core0 -> sw0", "sw0 -> sw1"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
}
