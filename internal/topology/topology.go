// Package topology defines the NoC topology data structure produced by the
// synthesis flow — switches, network interfaces, core-to-switch attachments
// and per-flow routes — together with its evaluation: power consumption
// (broken down into switch, switch-to-switch link and core-to-switch link
// power as plotted in Figs. 10 and 11 of the paper), zero-load latency, wire
// lengths (Fig. 12), inter-layer link usage (the max_ill constraint), silicon
// area and TSV macro counts.
package topology

import (
	"fmt"
	"sort"

	"sunfloor3d/internal/geom"
	"sunfloor3d/internal/model"
	"sunfloor3d/internal/noclib"
)

// Switch is one NoC switch instance.
type Switch struct {
	// ID is the index of the switch in the topology.
	ID int
	// Layer is the 3-D layer the switch is assigned to.
	Layer int
	// Pos is the planar position of the switch centre within its layer. It
	// is first estimated at the centroid of the attached cores and later
	// refined by the LP of the placement step.
	Pos geom.Point
	// Indirect marks switches inserted by the path computation step purely
	// to connect other switches (no cores attach to them).
	Indirect bool
}

// Route is the switch path assigned to one communication flow. The flow
// enters the network at the switch attached to its source core and leaves at
// the switch attached to its destination core; Switches lists the traversed
// switch IDs in order (length >= 1).
type Route struct {
	Flow     int
	Switches []int
}

// Topology is a synthesized NoC for a given design.
type Topology struct {
	// Design is the input communication graph.
	Design *model.CommGraph
	// Lib is the component library used for evaluation.
	Lib noclib.Library
	// FreqMHz is the NoC operating frequency.
	FreqMHz float64

	// Switches are the NoC switches.
	Switches []Switch
	// CoreAttach maps every core index to the switch it is attached to
	// through its network interface (-1 while unassigned).
	CoreAttach []int
	// Routes holds one route per flow, indexed like Design.Flows.
	Routes []Route
}

// New returns an empty topology for the design with no switches and all cores
// unattached.
func New(design *model.CommGraph, lib noclib.Library, freqMHz float64) *Topology {
	attach := make([]int, design.NumCores())
	for i := range attach {
		attach[i] = -1
	}
	return &Topology{
		Design:     design,
		Lib:        lib,
		FreqMHz:    freqMHz,
		CoreAttach: attach,
		Routes:     make([]Route, design.NumFlows()),
	}
}

// AddSwitch appends a switch on the given layer and returns its ID.
func (t *Topology) AddSwitch(layer int) int {
	id := len(t.Switches)
	t.Switches = append(t.Switches, Switch{ID: id, Layer: layer})
	return id
}

// AddIndirectSwitch appends an indirect switch (used only for switch-to-switch
// connectivity) on the given layer and returns its ID.
func (t *Topology) AddIndirectSwitch(layer int) int {
	id := t.AddSwitch(layer)
	t.Switches[id].Indirect = true
	return id
}

// AttachCore attaches the core to the switch.
func (t *Topology) AttachCore(core, sw int) {
	t.CoreAttach[core] = sw
}

// SetRoute records the switch path for the flow.
func (t *Topology) SetRoute(flow int, switches []int) {
	t.Routes[flow] = Route{Flow: flow, Switches: append([]int(nil), switches...)}
}

// NumSwitches returns the number of switches.
func (t *Topology) NumSwitches() int { return len(t.Switches) }

// Clone returns a deep copy of the topology (sharing the design and library).
func (t *Topology) Clone() *Topology {
	c := &Topology{Design: t.Design, Lib: t.Lib, FreqMHz: t.FreqMHz}
	c.Switches = append([]Switch(nil), t.Switches...)
	c.CoreAttach = append([]int(nil), t.CoreAttach...)
	c.Routes = make([]Route, len(t.Routes))
	for i, r := range t.Routes {
		c.Routes[i] = Route{Flow: r.Flow, Switches: append([]int(nil), r.Switches...)}
	}
	return c
}

// Validate checks structural consistency: every core is attached to an
// existing switch, and every flow has a route that starts at its source
// core's switch, ends at its destination core's switch and only steps between
// existing switches.
func (t *Topology) Validate() error {
	for c, sw := range t.CoreAttach {
		if sw < 0 || sw >= len(t.Switches) {
			return fmt.Errorf("core %d (%s) attached to invalid switch %d",
				c, t.Design.Cores[c].Name, sw)
		}
	}
	for f, r := range t.Routes {
		if len(r.Switches) == 0 {
			return fmt.Errorf("flow %d has no route", f)
		}
		for _, s := range r.Switches {
			if s < 0 || s >= len(t.Switches) {
				return fmt.Errorf("flow %d routes through invalid switch %d", f, s)
			}
		}
		src := t.Design.Flows[f].Src
		dst := t.Design.Flows[f].Dst
		if r.Switches[0] != t.CoreAttach[src] {
			return fmt.Errorf("flow %d route starts at switch %d, source core attached to %d",
				f, r.Switches[0], t.CoreAttach[src])
		}
		if r.Switches[len(r.Switches)-1] != t.CoreAttach[dst] {
			return fmt.Errorf("flow %d route ends at switch %d, destination core attached to %d",
				f, r.Switches[len(r.Switches)-1], t.CoreAttach[dst])
		}
		for i := 1; i < len(r.Switches); i++ {
			if r.Switches[i] == r.Switches[i-1] {
				return fmt.Errorf("flow %d route repeats switch %d consecutively", f, r.Switches[i])
			}
		}
	}
	return nil
}

// EstimateSwitchPositions places every switch at the bandwidth-weighted
// centroid of the cores attached to it (indirect switches at the centroid of
// their neighbouring switches). This is the pre-LP estimate used while
// exploring topologies; the placement step later refines it.
func (t *Topology) EstimateSwitchPositions() {
	type acc struct {
		x, y, w float64
	}
	accs := make([]acc, len(t.Switches))
	for c, sw := range t.CoreAttach {
		if sw < 0 || sw >= len(t.Switches) {
			continue
		}
		// Weight by the core's total traffic so busy cores pull the switch
		// closer, mirroring the LP objective.
		w := 1.0
		for _, f := range t.Design.Flows {
			if f.Src == c || f.Dst == c {
				w += f.BandwidthMBps
			}
		}
		p := t.Design.Cores[c].Center()
		accs[sw].x += p.X * w
		accs[sw].y += p.Y * w
		accs[sw].w += w
	}
	for i := range t.Switches {
		if accs[i].w > 0 {
			t.Switches[i].Pos = geom.Point{X: accs[i].x / accs[i].w, Y: accs[i].y / accs[i].w}
		}
	}
	// Indirect switches (or switches with no cores): centroid of the switches
	// they exchange traffic with.
	links := t.SwitchLinks()
	for i := range t.Switches {
		if accs[i].w > 0 {
			continue
		}
		var x, y float64
		n := 0
		for _, l := range links {
			var other int
			switch i {
			case l.From:
				other = l.To
			case l.To:
				other = l.From
			default:
				continue
			}
			x += t.Switches[other].Pos.X
			y += t.Switches[other].Pos.Y
			n++
		}
		if n > 0 {
			t.Switches[i].Pos = geom.Point{X: x / float64(n), Y: y / float64(n)}
		}
	}
}

// SwitchLink is an aggregated switch-to-switch physical link with the total
// bandwidth of the flows routed over it.
type SwitchLink struct {
	From, To      int
	BandwidthMBps float64
}

// SwitchLinks aggregates the per-flow routes into directed switch-to-switch
// links, summing bandwidth, sorted by (From, To).
func (t *Topology) SwitchLinks() []SwitchLink {
	agg := make(map[[2]int]float64)
	for f, r := range t.Routes {
		if len(r.Switches) < 2 {
			continue
		}
		bw := t.Design.Flows[f].BandwidthMBps
		for i := 1; i < len(r.Switches); i++ {
			key := [2]int{r.Switches[i-1], r.Switches[i]}
			agg[key] += bw
		}
	}
	links := make([]SwitchLink, 0, len(agg))
	//determlint:ordered each aggregated key appears once and the sort below is by the full (From, To) key, so the returned slice is independent of map order
	for k, bw := range agg {
		links = append(links, SwitchLink{From: k[0], To: k[1], BandwidthMBps: bw})
	}
	sort.Slice(links, func(i, j int) bool {
		if links[i].From != links[j].From {
			return links[i].From < links[j].From
		}
		return links[i].To < links[j].To
	})
	return links
}

// CoreLink is an aggregated core-to-switch (or switch-to-core) physical link.
type CoreLink struct {
	Core          int
	Switch        int
	ToCore        bool // true when the link direction is switch -> core
	BandwidthMBps float64
}

// CoreLinks aggregates per-flow traffic on the core/switch attachment links.
func (t *Topology) CoreLinks() []CoreLink {
	type key struct {
		core   int
		toCore bool
	}
	agg := make(map[key]float64)
	for f, fl := range t.Design.Flows {
		_ = f
		agg[key{core: fl.Src, toCore: false}] += fl.BandwidthMBps
		agg[key{core: fl.Dst, toCore: true}] += fl.BandwidthMBps
	}
	links := make([]CoreLink, 0, len(agg))
	//determlint:ordered each aggregated key appears once and the sort below is by the full (Core, ToCore) key, so the returned slice is independent of map order
	for k, bw := range agg {
		sw := t.CoreAttach[k.core]
		links = append(links, CoreLink{Core: k.core, Switch: sw, ToCore: k.toCore, BandwidthMBps: bw})
	}
	sort.Slice(links, func(i, j int) bool {
		if links[i].Core != links[j].Core {
			return links[i].Core < links[j].Core
		}
		return !links[i].ToCore && links[j].ToCore
	})
	return links
}

// SwitchPorts returns the number of input and output ports of every switch:
// one port pair per attached core plus one per incident switch link direction.
func (t *Topology) SwitchPorts() (in, out []int) {
	in = make([]int, len(t.Switches))
	out = make([]int, len(t.Switches))
	for _, sw := range t.CoreAttach {
		if sw >= 0 && sw < len(t.Switches) {
			in[sw]++ // from the core's NI into the switch
			out[sw]++
		}
	}
	for _, l := range t.SwitchLinks() {
		out[l.From]++
		in[l.To]++
	}
	return in, out
}

// InterLayerLinkCount returns, for every pair of adjacent layers (i, i+1), the
// number of physical links crossing that boundary. Links spanning multiple
// layers count once per crossed boundary. Core-to-switch attachments that
// cross layers are included.
func (t *Topology) InterLayerLinkCount() []int {
	layers := t.Design.NumLayers()
	for _, s := range t.Switches {
		if s.Layer+1 > layers {
			layers = s.Layer + 1
		}
	}
	if layers < 2 {
		return nil
	}
	counts := make([]int, layers-1)
	cross := func(a, b int) {
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		for l := lo; l < hi; l++ {
			counts[l]++
		}
	}
	for _, l := range t.SwitchLinks() {
		cross(t.Switches[l.From].Layer, t.Switches[l.To].Layer)
	}
	seen := make(map[int]bool)
	for c, sw := range t.CoreAttach {
		if sw < 0 || seen[c] {
			continue
		}
		seen[c] = true
		cross(t.Design.Cores[c].Layer, t.Switches[sw].Layer)
	}
	return counts
}

// MaxInterLayerLinks returns the maximum of InterLayerLinkCount over all
// adjacent layer pairs (0 for single-layer designs).
func (t *Topology) MaxInterLayerLinks() int {
	m := 0
	for _, c := range t.InterLayerLinkCount() {
		if c > m {
			m = c
		}
	}
	return m
}

// TSVMacroCount returns the total number of TSV macros required: one per
// boundary crossed by every vertical link (switch-to-switch or
// core-to-switch), as described in Section III.
func (t *Topology) TSVMacroCount() int {
	n := 0
	for _, l := range t.SwitchLinks() {
		d := t.Switches[l.From].Layer - t.Switches[l.To].Layer
		if d < 0 {
			d = -d
		}
		n += d
	}
	seen := make(map[int]bool)
	for c, sw := range t.CoreAttach {
		if sw < 0 || seen[c] {
			continue
		}
		seen[c] = true
		d := t.Design.Cores[c].Layer - t.Switches[sw].Layer
		if d < 0 {
			d = -d
		}
		n += d
	}
	return n
}
