package topology

import (
	"math"
	"sort"

	"sunfloor3d/internal/geom"
)

// PowerBreakdown decomposes the NoC power consumption the way Figs. 10 and 11
// of the paper plot it: switch power, switch-to-switch link power and
// core-to-switch link power, all in milliwatts.
type PowerBreakdown struct {
	SwitchMW     float64
	SwitchLinkMW float64
	CoreLinkMW   float64
	NIMW         float64
}

// TotalMW returns the total NoC power.
func (p PowerBreakdown) TotalMW() float64 {
	return p.SwitchMW + p.SwitchLinkMW + p.CoreLinkMW + p.NIMW
}

// LinkMW returns the total link power (switch-to-switch plus core-to-switch),
// the "Link Power" column of Table I.
func (p PowerBreakdown) LinkMW() float64 { return p.SwitchLinkMW + p.CoreLinkMW }

// Metrics summarises a fully evaluated topology.
type Metrics struct {
	Power PowerBreakdown
	// AvgLatencyCycles is the average zero-load latency over all flows.
	AvgLatencyCycles float64
	// MaxLatencyCycles is the worst zero-load latency over all flows.
	MaxLatencyCycles float64
	// WireLengthsMM lists the planar length of every physical link.
	WireLengthsMM []float64
	// TotalWireLengthMM is the sum of WireLengthsMM.
	TotalWireLengthMM float64
	// NoCAreaMM2 is the silicon area of switches, NIs and TSV macros.
	NoCAreaMM2 float64
	// MaxILL is the maximum number of links crossing any adjacent layer pair.
	MaxILL int
	// TSVMacros is the number of TSV macros needed.
	TSVMacros int
	// NumSwitches is the number of switches in the topology.
	NumSwitches int
	// LatencyViolations counts flows whose zero-load latency exceeds their
	// latency constraint.
	LatencyViolations int
	// SpareTSVMacros is the number of spare TSVs provisioned by the
	// fault-aware sparing pass (0 when sparing is disabled). Evaluate never
	// sets it — sparing is sized after evaluation from the committed routes
	// and stamped onto the metrics by the synthesis engine.
	SpareTSVMacros int
}

// switchDistance returns the planar Manhattan distance between two switches
// plus the vertical distance for crossed layers.
func (t *Topology) switchDistance(a, b int) (planarMM float64, layers int) {
	sa, sb := t.Switches[a], t.Switches[b]
	d := sa.Layer - sb.Layer
	if d < 0 {
		d = -d
	}
	return geom.Manhattan(sa.Pos, sb.Pos), d
}

// coreSwitchDistance returns the planar Manhattan distance between a core and
// its switch plus the number of crossed layers.
func (t *Topology) coreSwitchDistance(core, sw int) (planarMM float64, layers int) {
	c := t.Design.Cores[core]
	s := t.Switches[sw]
	d := c.Layer - s.Layer
	if d < 0 {
		d = -d
	}
	return geom.Manhattan(c.Center(), s.Pos), d
}

// Evaluate computes all metrics of the topology at its current switch
// positions. Callers should have attached all cores and routed all flows
// (Validate reports violations); Evaluate itself is tolerant of partial
// topologies so that the synthesis loop can use it for incremental estimates.
func (t *Topology) Evaluate() Metrics {
	var m Metrics
	m.NumSwitches = len(t.Switches)

	swLinks := t.SwitchLinks()
	inPorts, outPorts := t.SwitchPorts()

	// Traffic through each switch: everything entering it (from cores or
	// other switches).
	through := make([]float64, len(t.Switches))
	for f, r := range t.Routes {
		if len(r.Switches) == 0 {
			continue
		}
		bw := t.Design.Flows[f].BandwidthMBps
		for _, s := range r.Switches {
			through[s] += bw
		}
	}

	// Switch and NI power.
	for i := range t.Switches {
		m.Power.SwitchMW += t.Lib.SwitchPowerMW(inPorts[i], outPorts[i], t.FreqMHz, through[i])
		m.NoCAreaMM2 += t.Lib.SwitchAreaMM2(inPorts[i], outPorts[i])
	}
	attached := 0
	for _, sw := range t.CoreAttach {
		if sw >= 0 {
			attached++
		}
	}
	m.Power.NIMW = float64(attached) * t.Lib.NIPowerMWAt(t.FreqMHz)
	m.NoCAreaMM2 += float64(attached) * t.Lib.NIAreaMM2

	// Switch-to-switch links.
	for _, l := range swLinks {
		planar, layers := t.switchDistance(l.From, l.To)
		m.Power.SwitchLinkMW += t.Lib.WirePowerMW(planar, l.BandwidthMBps) +
			t.Lib.VerticalLinkPowerMW(layers, l.BandwidthMBps)
		m.WireLengthsMM = append(m.WireLengthsMM, planar)
	}

	// Core-to-switch links.
	for _, l := range t.CoreLinks() {
		if l.Switch < 0 {
			continue
		}
		planar, layers := t.coreSwitchDistance(l.Core, l.Switch)
		m.Power.CoreLinkMW += t.Lib.WirePowerMW(planar, l.BandwidthMBps) +
			t.Lib.VerticalLinkPowerMW(layers, l.BandwidthMBps)
		m.WireLengthsMM = append(m.WireLengthsMM, planar)
	}

	for _, w := range m.WireLengthsMM {
		m.TotalWireLengthMM += w
	}

	// Zero-load latency per flow: one cycle per traversed switch, plus extra
	// pipeline stages for long planar links, plus one cycle when a
	// core-to-switch attachment needs pipelining.
	var latSum float64
	count := 0
	for f, r := range t.Routes {
		if len(r.Switches) == 0 {
			continue
		}
		lat := t.FlowLatencyCycles(f)
		latSum += lat
		count++
		if lat > m.MaxLatencyCycles {
			m.MaxLatencyCycles = lat
		}
		if c := t.Design.Flows[f].LatencyCycles; c > 0 && lat > c {
			m.LatencyViolations++
		}
	}
	if count > 0 {
		m.AvgLatencyCycles = latSum / float64(count)
	}

	m.MaxILL = t.MaxInterLayerLinks()
	m.TSVMacros = t.TSVMacroCount()
	m.NoCAreaMM2 += float64(m.TSVMacros) * t.Lib.TSVMacroAreaMM2()
	return m
}

// FlowLatencyCycles returns the zero-load latency of the flow in cycles at
// the current switch positions: one cycle per traversed switch plus the
// pipeline stages needed on each traversed link. Unrouted flows return
// +Inf.
func (t *Topology) FlowLatencyCycles(flow int) float64 {
	r := t.Routes[flow]
	if len(r.Switches) == 0 {
		return math.Inf(1)
	}
	lat := float64(len(r.Switches)) // one cycle of switch traversal each
	f := t.Design.Flows[flow]

	// Source core to first switch.
	planar, _ := t.coreSwitchDistance(f.Src, r.Switches[0])
	lat += float64(t.Lib.LinkPipelineStages(planar, t.FreqMHz))
	// Inter-switch hops.
	for i := 1; i < len(r.Switches); i++ {
		planar, _ := t.switchDistance(r.Switches[i-1], r.Switches[i])
		lat += float64(t.Lib.LinkPipelineStages(planar, t.FreqMHz))
	}
	// Last switch to destination core.
	planar, _ = t.coreSwitchDistance(f.Dst, r.Switches[len(r.Switches)-1])
	lat += float64(t.Lib.LinkPipelineStages(planar, t.FreqMHz))
	return lat
}

// WireLengthHistogram buckets the link lengths into bins of the given width
// (in mm) and returns the counts; used to reproduce Fig. 12. A non-positive,
// NaN or infinite bin width returns an empty histogram: NaN in particular
// fails every ordered comparison, so without the explicit guard it would
// slip past the <= 0 check and turn the bin index computation into an
// undefined float-to-int conversion.
func (t *Topology) WireLengthHistogram(binMM float64) []int {
	if binMM <= 0 || math.IsNaN(binMM) || math.IsInf(binMM, 0) {
		return nil
	}
	m := t.Evaluate()
	if len(m.WireLengthsMM) == 0 {
		return nil
	}
	maxLen := 0.0
	for _, w := range m.WireLengthsMM {
		if w > maxLen {
			maxLen = w
		}
	}
	bins := make([]int, int(maxLen/binMM)+1)
	for _, w := range m.WireLengthsMM {
		bins[int(w/binMM)]++
	}
	return bins
}

// SortedWireLengths returns all link lengths in ascending order.
func (t *Topology) SortedWireLengths() []float64 {
	m := t.Evaluate()
	ws := append([]float64(nil), m.WireLengthsMM...)
	sort.Float64s(ws)
	return ws
}
