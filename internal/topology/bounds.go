package topology

import (
	"sunfloor3d/internal/geom"
	"sunfloor3d/internal/model"
	"sunfloor3d/internal/noclib"
)

// LatencyFloorCycles returns an analytic lower bound on the average zero-load
// latency (Metrics.AvgLatencyCycles) of any complete topology for the design
// at freqMHz, independent of how cores are partitioned, where switches are
// placed and how flows are routed. It is the branch-and-bound bound of the
// design-space explorer.
//
// Per flow, FlowLatencyCycles charges one cycle per traversed switch plus
// LinkPipelineStages for every planar link segment. A route with s switches
// has s+1 segments whose planar lengths sum to at least the direct Manhattan
// distance D between the core centres (triangle inequality), so the total is
// at least (s-1) + D/reach >= max(1, LinkPipelineStages(D)) by integrality.
// The floor averages that per-flow bound over all flows, matching how
// AvgLatencyCycles averages over all (routed) flows on valid points.
func LatencyFloorCycles(g *model.CommGraph, lib noclib.Library, freqMHz float64) float64 {
	if g.NumFlows() == 0 {
		return 0
	}
	var sum float64
	for _, f := range g.Flows {
		d := geom.Manhattan(g.Cores[f.Src].Center(), g.Cores[f.Dst].Center())
		lf := float64(lib.LinkPipelineStages(d, freqMHz))
		if lf < 1 {
			lf = 1
		}
		sum += lf
	}
	return sum / float64(g.NumFlows())
}
