package topology

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteDOT writes the topology as a Graphviz DOT graph: cores as boxes,
// switches as ellipses, with layers rendered as clusters. This is the format
// used to inspect the topologies of Figs. 13 and 14.
func (t *Topology) WriteDOT(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "digraph noc {")
	fmt.Fprintln(bw, "  rankdir=LR;")

	layers := t.Design.NumLayers()
	for _, s := range t.Switches {
		if s.Layer+1 > layers {
			layers = s.Layer + 1
		}
	}
	for l := 0; l < layers; l++ {
		fmt.Fprintf(bw, "  subgraph cluster_layer%d {\n", l)
		fmt.Fprintf(bw, "    label=\"layer %d\";\n", l)
		for i, c := range t.Design.Cores {
			if c.Layer == l {
				fmt.Fprintf(bw, "    core%d [shape=box,label=%q];\n", i, c.Name)
			}
		}
		for _, s := range t.Switches {
			if s.Layer == l {
				shape := "ellipse"
				if s.Indirect {
					shape = "diamond"
				}
				fmt.Fprintf(bw, "    sw%d [shape=%s,label=\"sw%d\"];\n", s.ID, shape, s.ID)
			}
		}
		fmt.Fprintln(bw, "  }")
	}

	for c, sw := range t.CoreAttach {
		if sw >= 0 {
			fmt.Fprintf(bw, "  core%d -> sw%d [dir=both];\n", c, sw)
		}
	}
	for _, l := range t.SwitchLinks() {
		fmt.Fprintf(bw, "  sw%d -> sw%d [label=\"%.0f\"];\n", l.From, l.To, l.BandwidthMBps)
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}

// Describe returns a human-readable multi-line description of the topology:
// switch list with layer, position and port counts, core attachments, and the
// aggregated switch-to-switch links. It is the textual counterpart of the
// topology drawings in the paper.
func (t *Topology) Describe() string {
	var sb strings.Builder
	in, out := t.SwitchPorts()
	fmt.Fprintf(&sb, "topology: %d switches, %d cores, %.0f MHz\n",
		len(t.Switches), t.Design.NumCores(), t.FreqMHz)
	for _, s := range t.Switches {
		kind := ""
		if s.Indirect {
			kind = " (indirect)"
		}
		fmt.Fprintf(&sb, "  sw%d layer=%d pos=%s ports=%dx%d%s\n",
			s.ID, s.Layer, s.Pos, in[s.ID], out[s.ID], kind)
	}
	// Core attachments grouped by switch.
	bySwitch := make(map[int][]string)
	for c, sw := range t.CoreAttach {
		if sw >= 0 {
			bySwitch[sw] = append(bySwitch[sw], t.Design.Cores[c].Name)
		}
	}
	var swIDs []int
	for sw := range bySwitch {
		swIDs = append(swIDs, sw)
	}
	sort.Ints(swIDs)
	for _, sw := range swIDs {
		names := bySwitch[sw]
		sort.Strings(names)
		fmt.Fprintf(&sb, "  sw%d <- {%s}\n", sw, strings.Join(names, ", "))
	}
	for _, l := range t.SwitchLinks() {
		span := t.Switches[l.From].Layer - t.Switches[l.To].Layer
		if span < 0 {
			span = -span
		}
		tag := ""
		if span > 0 {
			tag = fmt.Sprintf(" [vertical x%d]", span)
		}
		fmt.Fprintf(&sb, "  sw%d -> sw%d bw=%.0f MB/s%s\n", l.From, l.To, l.BandwidthMBps, tag)
	}
	return sb.String()
}
