// Package workload is a seed-deterministic random SoC benchmark generator.
// Where internal/bench reproduces the seven fixed designs of the paper's
// evaluation, this package samples whole *families* of designs — pipelines,
// hub-and-spoke hotspots, multi-application mixes and explicitly layered
// stacks — with parameterized core counts, layer counts and core-size,
// bandwidth and latency distributions. It exists so that the synthesis,
// routing, floorplanning and simulation invariants can be asserted on a
// distribution of inputs (the property harness at the repository root)
// instead of on three hardcoded fixtures.
//
// Two guarantees hold for every generated benchmark:
//
//   - Connected: the undirected communication graph is weakly connected, so
//     no core is isolated and the min-cut layer assignment, the router and
//     the simulator all see one component. The generator bridges any stray
//     components with low-bandwidth control flows.
//   - Satisfiable: every latency constraint sits at or above a conservative
//     floor (LatencyFloor) derived from the stack height, every bandwidth is
//     positive, core sizes are positive, and the result validates through
//     model.NewCommGraph. Generation never returns a design the flow cannot
//     in principle synthesize.
//
// Determinism contract: Generate is a pure function of its Spec. The same
// Spec produces byte-identical core and communication specifications (and
// therefore byte-identical synthesis results) on every run and platform.
package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"sunfloor3d/internal/floorplan"
	"sunfloor3d/internal/graph"
	"sunfloor3d/internal/model"
)

// Shape selects the traffic structure of a generated benchmark.
type Shape int

const (
	// Pipeline chains the logic cores into one long processing pipeline with
	// side memories and periodic feedback paths (the D_65_pipe / D_38_tvopd
	// family).
	Pipeline Shape = iota
	// Hotspot concentrates traffic on a few hub memories every other core
	// reads and writes (hub-and-spoke; the shared-memory half of D_35_bot,
	// pushed to the extreme).
	Hotspot
	// MultiApp partitions the cores into independent application clusters,
	// each with its own connected traffic pattern and bandwidth scale, plus a
	// few low-bandwidth cross-application bridges.
	MultiApp
	// Layered assigns cores to layers explicitly (contiguous blocks, no
	// min-cut) and mixes intra-layer traffic with vertical flows between
	// adjacent layers, exercising the inter-layer-link constraint directly.
	Layered
)

// String implements fmt.Stringer.
func (s Shape) String() string {
	switch s {
	case Pipeline:
		return "pipeline"
	case Hotspot:
		return "hotspot"
	case MultiApp:
		return "multiapp"
	case Layered:
		return "layered"
	default:
		return fmt.Sprintf("Shape(%d)", int(s))
	}
}

// Shapes returns every generator shape, in declaration order.
func Shapes() []Shape { return []Shape{Pipeline, Hotspot, MultiApp, Layered} }

// ParseShape converts a shape name ("pipeline", "hotspot", "multiapp",
// "layered") to a Shape.
func ParseShape(s string) (Shape, error) {
	for _, sh := range Shapes() {
		if sh.String() == s {
			return sh, nil
		}
	}
	names := make([]string, 0, len(Shapes()))
	for _, sh := range Shapes() {
		names = append(names, sh.String())
	}
	return Pipeline, fmt.Errorf("workload: unknown shape %q (valid: %s)", s, strings.Join(names, ", "))
}

// Spec parameterizes one generated benchmark. The zero value of every
// optional field selects a shape-appropriate default; only Cores, Layers and
// Seed are commonly set. Specs are comparable and serialise cleanly, so they
// double as test-case identifiers.
type Spec struct {
	// Shape selects the traffic structure.
	Shape Shape
	// Cores is the total number of cores (logic plus memories), at least 4.
	// 0 selects the default of 16.
	Cores int
	// Layers is the number of 3-D layers, at least 1. 0 selects 2.
	Layers int
	// Seed drives every random draw. Equal specs generate byte-identical
	// benchmarks.
	Seed int64
	// MemoryFraction is the fraction of cores that are memories (targets),
	// in (0, 0.75]. 0 selects a shape default (hotspot hubs are always
	// memories regardless).
	MemoryFraction float64
	// Apps is the number of application clusters of the MultiApp shape.
	// 0 selects max(2, Cores/8). Ignored by the other shapes.
	Apps int
	// Hubs is the number of hub memories of the Hotspot shape. 0 selects
	// max(1, Cores/10). Ignored by the other shapes.
	Hubs int
	// MeanBandwidthMBps centres the flow bandwidth distribution. 0 selects
	// 600 MB/s.
	MeanBandwidthMBps float64
	// BandwidthSpread is the relative half-width of the bandwidth
	// distribution, in [0, 0.9]: bandwidths are drawn uniformly from
	// mean*(1-spread) to mean*(1+spread). 0 keeps the default of 0.5.
	BandwidthSpread float64
	// LatencySlack scales every latency constraint relative to the
	// conservative floor: constraints are drawn from
	// [floor*slack, floor*slack*2.5]. Must be >= 1; 0 selects 2. Smaller
	// values stress the latency validation, larger values loosen it.
	LatencySlack float64
	// UnconstrainedFraction is the fraction of flows left without a latency
	// constraint (LatencyCycles = 0), in [0, 1]. 0 selects the default of
	// 0.25 (like every other optional field); negative constrains every
	// flow.
	UnconstrainedFraction float64
}

// withDefaults returns the spec with every zero optional field resolved.
func (s Spec) withDefaults() Spec {
	if s.Cores == 0 {
		s.Cores = 16
	}
	if s.Layers == 0 {
		s.Layers = 2
	}
	if s.MemoryFraction == 0 {
		switch s.Shape {
		case Hotspot:
			s.MemoryFraction = 0.15
		default:
			s.MemoryFraction = 0.25
		}
	}
	if s.Apps == 0 {
		s.Apps = s.Cores / 8
		if s.Apps < 2 {
			s.Apps = 2
		}
	}
	if s.Hubs == 0 {
		s.Hubs = s.Cores / 10
		if s.Hubs < 1 {
			s.Hubs = 1
		}
	}
	if s.MeanBandwidthMBps == 0 {
		s.MeanBandwidthMBps = 600
	}
	if s.BandwidthSpread == 0 {
		s.BandwidthSpread = 0.5
	}
	if s.LatencySlack == 0 {
		s.LatencySlack = 2
	}
	if s.UnconstrainedFraction == 0 {
		s.UnconstrainedFraction = 0.25
	} else if s.UnconstrainedFraction < 0 {
		s.UnconstrainedFraction = 0
	}
	return s
}

// Validate checks the spec ranges (after default resolution, so a zero value
// plus a shape always validates).
func (s Spec) Validate() error {
	r := s.withDefaults()
	checks := []struct {
		ok  bool
		msg string
	}{
		{r.Shape >= Pipeline && r.Shape <= Layered, fmt.Sprintf("unknown shape %d", int(r.Shape))},
		{r.Cores >= 4, fmt.Sprintf("Cores must be at least 4, got %d", r.Cores)},
		{r.Cores <= 256, fmt.Sprintf("Cores must be at most 256, got %d", r.Cores)},
		{r.Layers >= 1, fmt.Sprintf("Layers must be at least 1, got %d", r.Layers)},
		{r.Layers <= 8, fmt.Sprintf("Layers must be at most 8, got %d", r.Layers)},
		{r.Layers <= r.Cores, fmt.Sprintf("Layers (%d) must not exceed Cores (%d)", r.Layers, r.Cores)},
		{r.MemoryFraction > 0 && r.MemoryFraction <= 0.75, fmt.Sprintf("MemoryFraction must be in (0, 0.75], got %g", r.MemoryFraction)},
		{r.Apps >= 1 && r.Apps <= r.Cores/2, fmt.Sprintf("Apps must be in [1, Cores/2], got %d", r.Apps)},
		{r.Hubs >= 1 && r.Hubs <= r.Cores/2, fmt.Sprintf("Hubs must be in [1, Cores/2], got %d", r.Hubs)},
		{r.MeanBandwidthMBps > 0, fmt.Sprintf("MeanBandwidthMBps must be positive, got %g", r.MeanBandwidthMBps)},
		{r.BandwidthSpread > 0 && r.BandwidthSpread <= 0.9, fmt.Sprintf("BandwidthSpread must be in (0, 0.9], got %g", r.BandwidthSpread)},
		{r.LatencySlack >= 1, fmt.Sprintf("LatencySlack must be at least 1, got %g", r.LatencySlack)},
		{r.UnconstrainedFraction <= 1, fmt.Sprintf("UnconstrainedFraction must be at most 1, got %g", r.UnconstrainedFraction)},
	}
	for _, c := range checks {
		if !c.ok {
			return fmt.Errorf("workload: %s", c.msg)
		}
	}
	return nil
}

// Name returns the canonical identifier of the benchmark the spec generates,
// e.g. "W_hotspot_c40_l3_s7".
func (s Spec) Name() string {
	r := s.withDefaults()
	return fmt.Sprintf("W_%s_c%d_l%d_s%d", r.Shape, r.Cores, r.Layers, r.Seed)
}

// LatencyFloor returns the conservative lower bound (in cycles) the generator
// keeps every latency constraint at or above for the given layer count: a
// budget of switch traversals and link pipeline stages that any reasonable
// synthesized topology can meet. Constraints below this floor could make a
// whole workload unsatisfiable, which would break the generator's contract.
func LatencyFloor(layers int) float64 {
	if layers < 1 {
		layers = 1
	}
	return float64(8 + 2*layers)
}

// Benchmark is one generated SoC benchmark, mirroring internal/bench: the
// 3-D version (cores assigned to layers and floorplanned per layer) and the
// flattened 2-D reference (same cores and flows on one die).
type Benchmark struct {
	// Name is the canonical Spec.Name of the generator input.
	Name string
	// Graph3D is the layered, floorplanned design.
	Graph3D *model.CommGraph
	// Graph2D is the same cores and flows on a single layer with its own
	// floorplan.
	Graph2D *model.CommGraph
	// Layers is the number of 3-D layers used by Graph3D.
	Layers int
	// Spec is the resolved (defaulted) generator input.
	Spec Spec
}

// protoCore is a core under construction, before layering and floorplanning.
type protoCore struct {
	name   string
	w, h   float64
	memory bool
	layer  int // explicit layer (Layered shape); -1 = assign by min-cut
}

// protoFlow is a flow by core index. lat < 0 marks "draw a constraint from
// the distribution"; lat == 0 stays unconstrained.
type protoFlow struct {
	src, dst int
	bw       float64
	lat      float64
	typ      model.MessageType
}

// Generate builds the benchmark described by the spec. It is deterministic:
// equal specs return byte-identical benchmarks.
func Generate(spec Spec) (Benchmark, error) {
	if err := spec.Validate(); err != nil {
		return Benchmark{}, err
	}
	spec = spec.withDefaults()
	rng := rand.New(rand.NewSource(spec.Seed ^ (int64(spec.Shape+1) << 32) ^ int64(spec.Cores)))

	var cores []protoCore
	var flows []protoFlow
	switch spec.Shape {
	case Pipeline:
		cores, flows = genPipeline(spec, rng)
	case Hotspot:
		cores, flows = genHotspot(spec, rng)
	case MultiApp:
		cores, flows = genMultiApp(spec, rng)
	case Layered:
		cores, flows = genLayered(spec, rng)
	}

	flows = bridgeComponents(len(cores), flows, spec, rng)
	resolveLatencies(flows, spec, rng)

	b, err := assemble(spec, cores, flows)
	if err != nil {
		return Benchmark{}, fmt.Errorf("workload: %s: %w", spec.Name(), err)
	}
	return b, nil
}

// sizeDraw returns a core size (width, height) in millimetres: logic cores
// are near-square with moderate variance, memories slightly larger and
// flatter.
func sizeDraw(rng *rand.Rand, memory bool) (w, h float64) {
	base := 0.9 + 0.8*rng.Float64()
	if memory {
		base *= 1.15
		return base, base * (0.7 + 0.3*rng.Float64())
	}
	return base, base * (0.8 + 0.4*rng.Float64())
}

// bwDraw samples one flow bandwidth from the spec's distribution, scaled by
// the shape-local multiplier.
func bwDraw(spec Spec, rng *rand.Rand, scale float64) float64 {
	lo := 1 - spec.BandwidthSpread
	return spec.MeanBandwidthMBps * scale * (lo + 2*spec.BandwidthSpread*rng.Float64())
}

// constrained marks a proto flow for latency-constraint resolution.
const constrained = -1

// genPipeline chains the logic cores into one pipeline with side memories and
// periodic feedback.
func genPipeline(spec Spec, rng *rand.Rand) ([]protoCore, []protoFlow) {
	nMem := int(float64(spec.Cores) * spec.MemoryFraction)
	if nMem < 1 {
		nMem = 1
	}
	nLogic := spec.Cores - nMem
	if nLogic < 2 {
		nLogic = 2
		nMem = spec.Cores - nLogic
	}
	var cores []protoCore
	for i := 0; i < nLogic; i++ {
		w, h := sizeDraw(rng, false)
		cores = append(cores, protoCore{name: fmt.Sprintf("stage%d", i), w: w, h: h, layer: -1})
	}
	for i := 0; i < nMem; i++ {
		w, h := sizeDraw(rng, true)
		cores = append(cores, protoCore{name: fmt.Sprintf("mem%d", i), w: w, h: h, memory: true, layer: -1})
	}

	var flows []protoFlow
	// The main chain carries the heaviest traffic.
	for i := 0; i+1 < nLogic; i++ {
		flows = append(flows, protoFlow{src: i, dst: i + 1, bw: bwDraw(spec, rng, 1), lat: constrained, typ: model.Request})
	}
	// Each memory serves one pipeline stage (request + response).
	for m := 0; m < nMem; m++ {
		stage := rng.Intn(nLogic)
		mem := nLogic + m
		bw := bwDraw(spec, rng, 0.8)
		flows = append(flows, protoFlow{src: stage, dst: mem, bw: bw, lat: constrained, typ: model.Request})
		flows = append(flows, protoFlow{src: mem, dst: stage, bw: bw * 0.5, lat: constrained, typ: model.Response})
	}
	// Feedback paths every ~8 stages, as real pipelines have.
	for i := 8; i < nLogic; i += 8 {
		flows = append(flows, protoFlow{src: i, dst: i - rng.Intn(7) - 1, bw: bwDraw(spec, rng, 0.2), lat: constrained, typ: model.Response})
	}
	return cores, flows
}

// genHotspot concentrates traffic on a few hub memories.
func genHotspot(spec Spec, rng *rand.Rand) ([]protoCore, []protoFlow) {
	nHub := spec.Hubs
	nPeer := spec.Cores - nHub
	var cores []protoCore
	for i := 0; i < nHub; i++ {
		w, h := sizeDraw(rng, true)
		cores = append(cores, protoCore{name: fmt.Sprintf("hub%d", i), w: w * 1.2, h: h * 1.2, memory: true, layer: -1})
	}
	for i := 0; i < nPeer; i++ {
		mem := rng.Float64() < spec.MemoryFraction
		w, h := sizeDraw(rng, mem)
		name := fmt.Sprintf("core%d", i)
		if mem {
			name = fmt.Sprintf("mem%d", i)
		}
		cores = append(cores, protoCore{name: name, w: w, h: h, memory: mem, layer: -1})
	}

	var flows []protoFlow
	for p := 0; p < nPeer; p++ {
		core := nHub + p
		// Hub 0 is the hottest: half the cores pick it, the rest spread.
		hub := 0
		if nHub > 1 && rng.Float64() < 0.5 {
			hub = 1 + rng.Intn(nHub-1)
		}
		bw := bwDraw(spec, rng, 1)
		flows = append(flows, protoFlow{src: core, dst: hub, bw: bw, lat: constrained, typ: model.Request})
		flows = append(flows, protoFlow{src: hub, dst: core, bw: bw * 0.6, lat: constrained, typ: model.Response})
	}
	// Light peer-to-peer traffic so the design is not a pure star.
	for i := 0; i < nPeer/4; i++ {
		a, b := nHub+rng.Intn(nPeer), nHub+rng.Intn(nPeer)
		if a == b {
			continue
		}
		flows = append(flows, protoFlow{src: a, dst: b, bw: bwDraw(spec, rng, 0.15), lat: constrained, typ: model.Request})
	}
	return cores, flows
}

// genMultiApp partitions the cores into independent application clusters.
func genMultiApp(spec Spec, rng *rand.Rand) ([]protoCore, []protoFlow) {
	var cores []protoCore
	var flows []protoFlow
	// Contiguous blocks of near-equal size.
	bounds := make([]int, spec.Apps+1)
	for a := 0; a <= spec.Apps; a++ {
		bounds[a] = a * spec.Cores / spec.Apps
	}
	for a := 0; a < spec.Apps; a++ {
		lo, hi := bounds[a], bounds[a+1]
		scale := 0.5 + 1.5*rng.Float64() // per-application bandwidth scale
		for i := lo; i < hi; i++ {
			mem := rng.Float64() < spec.MemoryFraction
			w, h := sizeDraw(rng, mem)
			kind := "p"
			if mem {
				kind = "m"
			}
			cores = append(cores, protoCore{name: fmt.Sprintf("app%d_%s%d", a, kind, i-lo), w: w, h: h, memory: mem, layer: -1})
		}
		// Spanning tree keeps each application connected...
		for i := lo + 1; i < hi; i++ {
			parent := lo + rng.Intn(i-lo)
			bw := bwDraw(spec, rng, scale)
			flows = append(flows, protoFlow{src: parent, dst: i, bw: bw, lat: constrained, typ: model.Request})
			if rng.Float64() < 0.5 {
				flows = append(flows, protoFlow{src: i, dst: parent, bw: bw * 0.4, lat: constrained, typ: model.Response})
			}
		}
		// ...plus extra intra-application edges for richer structure.
		for k := 0; k < (hi-lo)/2; k++ {
			a1, b1 := lo+rng.Intn(hi-lo), lo+rng.Intn(hi-lo)
			if a1 == b1 {
				continue
			}
			flows = append(flows, protoFlow{src: a1, dst: b1, bw: bwDraw(spec, rng, scale*0.4), lat: constrained, typ: model.Request})
		}
	}
	// Low-bandwidth bridges between consecutive applications (shared
	// services); bridgeComponents would connect them anyway, but an explicit
	// bridge with realistic bandwidth reads better than a control flow.
	for a := 0; a+1 < spec.Apps; a++ {
		src := bounds[a] + rng.Intn(bounds[a+1]-bounds[a])
		dst := bounds[a+1] + rng.Intn(bounds[a+2]-bounds[a+1])
		flows = append(flows, protoFlow{src: src, dst: dst, bw: bwDraw(spec, rng, 0.1), lat: 0, typ: model.Request})
	}
	return cores, flows
}

// genLayered assigns cores to layers explicitly and mixes intra-layer with
// vertical traffic.
func genLayered(spec Spec, rng *rand.Rand) ([]protoCore, []protoFlow) {
	var cores []protoCore
	layerOf := make([]int, spec.Cores)
	for i := 0; i < spec.Cores; i++ {
		l := i * spec.Layers / spec.Cores
		layerOf[i] = l
		mem := rng.Float64() < spec.MemoryFraction
		w, h := sizeDraw(rng, mem)
		kind := "p"
		if mem {
			kind = "m"
		}
		cores = append(cores, protoCore{name: fmt.Sprintf("l%d_%s%d", l, kind, i), w: w, h: h, memory: mem, layer: l})
	}
	perLayer := make([][]int, spec.Layers)
	for i, l := range layerOf {
		perLayer[l] = append(perLayer[l], i)
	}

	var flows []protoFlow
	// Intra-layer: a ring per layer plus random chords.
	for l := 0; l < spec.Layers; l++ {
		members := perLayer[l]
		if len(members) < 2 {
			continue
		}
		for i := range members {
			next := members[(i+1)%len(members)]
			flows = append(flows, protoFlow{src: members[i], dst: next, bw: bwDraw(spec, rng, 0.8), lat: constrained, typ: model.Request})
		}
		for k := 0; k < len(members)/3; k++ {
			a, b := members[rng.Intn(len(members))], members[rng.Intn(len(members))]
			if a == b {
				continue
			}
			flows = append(flows, protoFlow{src: a, dst: b, bw: bwDraw(spec, rng, 0.4), lat: constrained, typ: model.Request})
		}
	}
	// Vertical: every core on layer l>0 talks to one core on layer l-1.
	for l := 1; l < spec.Layers; l++ {
		below := perLayer[l-1]
		if len(below) == 0 {
			continue
		}
		for _, c := range perLayer[l] {
			partner := below[rng.Intn(len(below))]
			bw := bwDraw(spec, rng, 0.6)
			flows = append(flows, protoFlow{src: c, dst: partner, bw: bw, lat: constrained, typ: model.Request})
			if rng.Float64() < 0.4 {
				flows = append(flows, protoFlow{src: partner, dst: c, bw: bw * 0.5, lat: constrained, typ: model.Response})
			}
		}
	}
	return cores, flows
}

// bridgeComponents enforces the connectivity guarantee: if the undirected
// communication graph has more than one weakly connected component (isolated
// cores included), low-bandwidth unconstrained control flows are added
// between deterministic representatives until one component remains.
// ConnectedComponents orders components by their smallest vertex, so the
// bridging is deterministic.
func bridgeComponents(nCores int, flows []protoFlow, spec Spec, rng *rand.Rand) []protoFlow {
	cg := graph.New(nCores)
	for _, f := range flows {
		cg.AddEdge(f.src, f.dst, 1)
	}
	comps := cg.ConnectedComponents()
	for i := 1; i < len(comps); i++ {
		flows = append(flows, protoFlow{
			src: comps[i-1][0], dst: comps[i][0],
			bw:  spec.MeanBandwidthMBps * 0.05 * (0.5 + rng.Float64()),
			lat: 0, typ: model.Request,
		})
	}
	return flows
}

// resolveLatencies replaces every "constrained" marker with a draw from the
// spec's latency distribution, leaving UnconstrainedFraction of them at 0.
// Every emitted constraint is >= LatencyFloor(spec.Layers)*LatencySlack,
// which is the satisfiability guarantee.
func resolveLatencies(flows []protoFlow, spec Spec, rng *rand.Rand) {
	floor := LatencyFloor(spec.Layers) * spec.LatencySlack
	for i := range flows {
		if flows[i].lat != constrained {
			continue
		}
		if rng.Float64() < spec.UnconstrainedFraction {
			flows[i].lat = 0
			continue
		}
		// Round to whole cycles: spec files stay tidy and satisfiability is
		// unaffected (rounding up only).
		flows[i].lat = float64(int(floor*(1+1.5*rng.Float64())) + 1)
	}
}

// IsConnected reports whether the undirected communication graph of the
// design is weakly connected with every core in the single component. It is
// the checkable half of the generator's connectivity guarantee.
func IsConnected(g *model.CommGraph) bool {
	cg := graph.New(g.NumCores())
	for _, f := range g.Flows {
		cg.AddEdge(f.Src, f.Dst, 1)
	}
	return len(cg.ConnectedComponents()) <= 1
}

// assemble turns proto cores and flows into the validated 3-D and 2-D
// communication graphs: layer assignment (explicit for Layered, min-cut of
// the bandwidth-weighted graph otherwise, exactly like internal/bench),
// per-layer floorplanning and validation.
func assemble(spec Spec, protos []protoCore, flows []protoFlow) (Benchmark, error) {
	assignment := make([]int, len(protos))
	explicit := true
	for i, p := range protos {
		if p.layer < 0 {
			explicit = false
			break
		}
		assignment[i] = p.layer
	}
	if !explicit {
		assignment = assignLayers(protos, flows, spec.Layers)
	}

	mkCores := func(layerOf func(int) int) []model.Core {
		cores := make([]model.Core, len(protos))
		for i, p := range protos {
			cores[i] = model.Core{
				Name: p.name, Width: p.w, Height: p.h,
				Layer: layerOf(i), IsMemory: p.memory,
			}
		}
		return cores
	}
	mkFlows := func() []model.Flow {
		out := make([]model.Flow, len(flows))
		for i, f := range flows {
			out[i] = model.Flow{Src: f.src, Dst: f.dst, BandwidthMBps: f.bw,
				LatencyCycles: f.lat, Type: f.typ}
		}
		return out
	}

	cores3d := mkCores(func(i int) int { return assignment[i] })
	floorplanLayers(cores3d, flows, spec.Layers, spec.Seed)
	g3d, err := model.NewCommGraph(cores3d, mkFlows())
	if err != nil {
		return Benchmark{}, fmt.Errorf("3-D graph invalid: %w", err)
	}

	cores2d := mkCores(func(int) int { return 0 })
	floorplanLayers(cores2d, flows, 1, spec.Seed+1)
	g2d, err := model.NewCommGraph(cores2d, mkFlows())
	if err != nil {
		return Benchmark{}, fmt.Errorf("2-D graph invalid: %w", err)
	}

	return Benchmark{Name: spec.Name(), Graph3D: g3d, Graph2D: g2d, Layers: spec.Layers, Spec: spec}, nil
}

// assignLayers distributes cores over layers with a balanced min-cut
// partition of the bandwidth-weighted communication graph, the same policy
// internal/bench uses for the paper's designs.
func assignLayers(protos []protoCore, flows []protoFlow, layers int) []int {
	n := len(protos)
	assign := make([]int, n)
	if layers <= 1 || n == 0 {
		return assign
	}
	cg := graph.New(n)
	for _, f := range flows {
		cg.AddEdge(f.src, f.dst, f.bw)
	}
	copy(assign, graph.PartitionK(cg, layers))
	return assign
}

// floorplanLayers computes initial core positions for every layer with the
// SA floorplanner (a light schedule: the generator only needs a legal,
// reasonable initial placement, not a converged one).
func floorplanLayers(cores []model.Core, flows []protoFlow, layers int, seed int64) {
	for l := 0; l < layers; l++ {
		var idx []int
		for i := range cores {
			if cores[i].Layer == l {
				idx = append(idx, i)
			}
		}
		if len(idx) == 0 {
			continue
		}
		pos := make(map[int]int, len(idx)) // core index -> block index
		blocks := make([]floorplan.Block, len(idx))
		for bi, ci := range idx {
			pos[ci] = bi
			blocks[bi] = floorplan.Block{Name: cores[ci].Name, W: cores[ci].Width, H: cores[ci].Height}
		}
		var nets []floorplan.Net
		for _, f := range flows {
			a, aok := pos[f.src]
			b, bok := pos[f.dst]
			if aok && bok {
				nets = append(nets, floorplan.Net{A: a, B: b, Weight: f.bw / 1000})
			}
		}
		params := floorplan.DefaultParams(seed + int64(l)*101)
		params.Iterations = 100
		params.TemperatureSteps = 35
		res, err := floorplan.Floorplan(blocks, nets, params)
		if err != nil {
			panic(fmt.Sprintf("workload: floorplanning layer %d failed: %v", l, err))
		}
		for bi, ci := range idx {
			cores[ci].X = res.Positions[bi].X
			cores[ci].Y = res.Positions[bi].Y
		}
	}
}
