package workload

import (
	"bytes"
	"strings"
	"testing"

	"sunfloor3d/internal/model"
)

// specBytes serialises a design through the canonical spec writers; byte
// equality of two designs' specBytes is the determinism contract.
func specBytes(t *testing.T, g *model.CommGraph) []byte {
	t.Helper()
	var core, comm bytes.Buffer
	if err := model.WriteCoreSpec(&core, g.Cores); err != nil {
		t.Fatal(err)
	}
	if err := model.WriteCommSpec(&comm, g); err != nil {
		t.Fatal(err)
	}
	return append(core.Bytes(), comm.Bytes()...)
}

func TestGenerateDeterministic(t *testing.T) {
	for _, sh := range Shapes() {
		sh := sh
		t.Run(sh.String(), func(t *testing.T) {
			t.Parallel()
			spec := Spec{Shape: sh, Cores: 20, Layers: 3, Seed: 42}
			a, err := Generate(spec)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Generate(spec)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(specBytes(t, a.Graph3D), specBytes(t, b.Graph3D)) {
				t.Error("two generations of the same spec differ (3-D)")
			}
			if !bytes.Equal(specBytes(t, a.Graph2D), specBytes(t, b.Graph2D)) {
				t.Error("two generations of the same spec differ (2-D)")
			}
			if a.Name != spec.Name() {
				t.Errorf("Name = %q, want %q", a.Name, spec.Name())
			}
			// Different seeds must actually vary the design.
			c, err := Generate(Spec{Shape: sh, Cores: 20, Layers: 3, Seed: 43})
			if err != nil {
				t.Fatal(err)
			}
			if bytes.Equal(specBytes(t, a.Graph3D), specBytes(t, c.Graph3D)) {
				t.Error("seed 42 and 43 generated identical designs")
			}
		})
	}
}

func TestGenerateGuarantees(t *testing.T) {
	for _, sh := range Shapes() {
		sh := sh
		t.Run(sh.String(), func(t *testing.T) {
			t.Parallel()
			for seed := int64(0); seed < 12; seed++ {
				for _, layers := range []int{1, 2, 3} {
					spec := Spec{Shape: sh, Cores: 4 + int(seed)*3%25, Layers: layers, Seed: seed}
					b, err := Generate(spec)
					if err != nil {
						t.Fatalf("seed %d layers %d: %v", seed, layers, err)
					}
					g := b.Graph3D
					if !IsConnected(g) {
						t.Fatalf("seed %d layers %d: disconnected communication graph", seed, layers)
					}
					if got := g.NumLayers(); got > layers {
						t.Fatalf("seed %d: NumLayers = %d, want <= %d", seed, got, layers)
					}
					floor := LatencyFloor(layers) * b.Spec.LatencySlack
					for i, f := range g.Flows {
						if f.LatencyCycles != 0 && f.LatencyCycles < floor {
							t.Fatalf("seed %d flow %d: constraint %g below floor %g", seed, i, f.LatencyCycles, floor)
						}
						if f.BandwidthMBps <= 0 {
							t.Fatalf("seed %d flow %d: non-positive bandwidth", seed, i)
						}
					}
					for l, g2 := range b.Graph2D.LayerHistogram() {
						if l > 0 && g2 > 0 {
							t.Fatalf("2-D graph places cores on layer %d", l)
						}
					}
				}
			}
		})
	}
}

func TestShapeStructure(t *testing.T) {
	t.Run("hotspot hub dominates", func(t *testing.T) {
		b, err := Generate(Spec{Shape: Hotspot, Cores: 30, Layers: 2, Seed: 7, Hubs: 3})
		if err != nil {
			t.Fatal(err)
		}
		g := b.Graph3D
		incoming := make([]float64, g.NumCores())
		for _, f := range g.Flows {
			incoming[f.Dst] += f.BandwidthMBps
		}
		hub0 := g.CoreIndex("hub0")
		if hub0 != 0 {
			t.Fatalf("hub0 index = %d", hub0)
		}
		if !g.Cores[hub0].IsMemory {
			t.Error("hub0 is not a memory")
		}
		for i := range incoming {
			if i != hub0 && incoming[i] > incoming[hub0] {
				t.Errorf("core %s in-bandwidth %.0f exceeds hub0's %.0f",
					g.Cores[i].Name, incoming[i], incoming[hub0])
			}
		}
	})
	t.Run("pipeline chain", func(t *testing.T) {
		b, err := Generate(Spec{Shape: Pipeline, Cores: 24, Layers: 2, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		g := b.Graph3D
		// Every consecutive stage pair must be linked by a request flow.
		nLogic := 0
		for _, c := range g.Cores {
			if strings.HasPrefix(c.Name, "stage") {
				nLogic++
			}
		}
		if nLogic < 2 {
			t.Fatalf("only %d pipeline stages", nLogic)
		}
		for i := 0; i+1 < nLogic; i++ {
			if g.FlowsBetween(i, i+1) <= 0 {
				t.Errorf("no chain flow from stage%d to stage%d", i, i+1)
			}
		}
	})
	t.Run("multiapp clusters", func(t *testing.T) {
		b, err := Generate(Spec{Shape: MultiApp, Cores: 32, Layers: 2, Seed: 5, Apps: 4})
		if err != nil {
			t.Fatal(err)
		}
		g := b.Graph3D
		apps := map[string]bool{}
		for _, c := range g.Cores {
			apps[strings.SplitN(c.Name, "_", 2)[0]] = true
		}
		if len(apps) != 4 {
			t.Errorf("core names span %d apps, want 4: %v", len(apps), apps)
		}
	})
	t.Run("layered fills every layer", func(t *testing.T) {
		b, err := Generate(Spec{Shape: Layered, Cores: 18, Layers: 3, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		hist := b.Graph3D.LayerHistogram()
		if len(hist) != 3 {
			t.Fatalf("layer histogram %v, want 3 layers", hist)
		}
		for l, n := range hist {
			if n == 0 {
				t.Errorf("layer %d is empty", l)
			}
		}
		if len(b.Graph3D.InterLayerFlows()) == 0 {
			t.Error("layered shape generated no inter-layer flows")
		}
	})
}

func TestSpecValidation(t *testing.T) {
	bad := []Spec{
		{Shape: Shape(99)},
		{Cores: 3},
		{Cores: 1000},
		{Layers: 9},
		{Cores: 4, Layers: 5},
		{MemoryFraction: 0.9},
		{MemoryFraction: -0.1},
		{Apps: 100, Cores: 8},
		{Hubs: 100, Cores: 8},
		{MeanBandwidthMBps: -5},
		{BandwidthSpread: 0.95},
		{LatencySlack: 0.5},
		{UnconstrainedFraction: 1.5},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("Validate(%+v) should fail", s)
		}
		if _, err := Generate(s); err == nil {
			t.Errorf("Generate(%+v) should fail", s)
		}
	}
	if err := (Spec{}).Validate(); err != nil {
		t.Errorf("zero spec (all defaults) should validate: %v", err)
	}
}

func TestParseShape(t *testing.T) {
	for _, sh := range Shapes() {
		got, err := ParseShape(sh.String())
		if err != nil || got != sh {
			t.Errorf("ParseShape(%q) = %v, %v", sh.String(), got, err)
		}
	}
	if _, err := ParseShape("mesh"); err == nil {
		t.Error("ParseShape of an unknown name should fail")
	}
	if s := Shape(42).String(); !strings.Contains(s, "42") {
		t.Errorf("unknown shape String() = %q", s)
	}
}

func TestIsConnected(t *testing.T) {
	cores := []model.Core{
		{Name: "a", Width: 1, Height: 1},
		{Name: "b", Width: 1, Height: 1},
		{Name: "c", Width: 1, Height: 1},
	}
	joined, err := model.NewCommGraph(cores, []model.Flow{
		{Src: 0, Dst: 1, BandwidthMBps: 10},
		{Src: 2, Dst: 1, BandwidthMBps: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !IsConnected(joined) {
		t.Error("joined graph reported disconnected")
	}
	split, err := model.NewCommGraph(cores, []model.Flow{{Src: 0, Dst: 1, BandwidthMBps: 10}})
	if err != nil {
		t.Fatal(err)
	}
	if IsConnected(split) {
		t.Error("graph with an isolated core reported connected")
	}
}
