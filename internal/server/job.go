// Job bookkeeping for sunfloor-server: lifecycle states, progress fan-out
// and the bounded registry of retained jobs.
package server

import (
	"fmt"
	"sync"

	"sunfloor3d/internal/memo"
)

// JobStatus is the lifecycle state of a submitted synthesis job.
type JobStatus string

// Job lifecycle states.
const (
	// StatusQueued: accepted, waiting for a worker.
	StatusQueued JobStatus = "queued"
	// StatusRunning: a worker is synthesizing (or waiting on the in-flight
	// computation of another job with the same fingerprint).
	StatusRunning JobStatus = "running"
	// StatusDone: finished successfully; the result bytes are available.
	StatusDone JobStatus = "done"
	// StatusFailed: synthesis or validation failed; Error is set.
	StatusFailed JobStatus = "failed"
)

// ProgressEvent is one NDJSON line of a job's progress stream.
type ProgressEvent struct {
	// Type is "progress" for per-point events, "done" for the terminal event.
	Type string `json:"type"`
	// Done/Total mirror the engine's progress events ("progress" only).
	Done  int `json:"done,omitempty"`
	Total int `json:"total,omitempty"`
	// FreqMHz/SwitchCount/Valid identify the point that just finished
	// ("progress" only).
	FreqMHz     float64 `json:"freq_mhz,omitempty"`
	SwitchCount int     `json:"switch_count,omitempty"`
	Valid       bool    `json:"valid,omitempty"`
	// Pruned marks explorer stubs that were skipped by exact pruning instead
	// of being evaluated ("progress" only).
	Pruned bool `json:"pruned,omitempty"`
	// SimTriage relays the fidelity-ladder decision for the point: "sim"
	// (simulated, inside the estimated Pareto band) or "skip" (triaged out
	// by the contention estimate); empty when the ladder is off.
	SimTriage string `json:"sim_triage,omitempty"`
	// Status and the optional fields below are set on the terminal event.
	Status JobStatus       `json:"status,omitempty"`
	Cache  memo.Provenance `json:"cache,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// job is one submitted synthesis request.
type job struct {
	id  string
	key string // memo fingerprint

	mu     sync.Mutex
	cond   *sync.Cond
	status JobStatus
	events []ProgressEvent // history; terminal event is always last
	result []byte          // canonical serialised Result (done only)
	prov   memo.Provenance
	err    string
}

func newJob(id, key string) *job {
	j := &job{id: id, key: key, status: StatusQueued}
	j.cond = sync.NewCond(&j.mu)
	return j
}

// setRunning transitions the job to running.
func (j *job) setRunning() {
	j.mu.Lock()
	j.status = StatusRunning
	j.cond.Broadcast()
	j.mu.Unlock()
}

// progress appends a per-point event and wakes streamers.
func (j *job) progress(ev ProgressEvent) {
	j.mu.Lock()
	j.events = append(j.events, ev)
	j.cond.Broadcast()
	j.mu.Unlock()
}

// finish records the terminal state: the result bytes and provenance on
// success, the error string on failure.
func (j *job) finish(result []byte, prov memo.Provenance, err error) {
	j.mu.Lock()
	if err != nil {
		j.status = StatusFailed
		j.err = err.Error()
		j.events = append(j.events, ProgressEvent{Type: "done", Status: StatusFailed, Error: j.err})
	} else {
		j.status = StatusDone
		j.result = result
		j.prov = prov
		j.events = append(j.events, ProgressEvent{Type: "done", Status: StatusDone, Cache: prov})
	}
	j.cond.Broadcast()
	j.mu.Unlock()
}

// terminal reports whether the job reached done or failed.
func (j *job) terminal() bool { return j.status == StatusDone || j.status == StatusFailed }

// wait blocks until the job is terminal or abort is closed, and returns the
// final status, result bytes, provenance and error string.
func (j *job) wait(abort <-chan struct{}) (JobStatus, []byte, memo.Provenance, string) {
	// A goroutine pumping the cond on abort lets the cond-based wait honour
	// cancellation without polling.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-abort:
			j.cond.Broadcast()
		case <-stop:
		}
	}()
	j.mu.Lock()
	defer j.mu.Unlock()
	for !j.terminal() {
		select {
		case <-abort:
			return j.status, nil, "", ""
		default:
		}
		j.cond.Wait()
	}
	return j.status, j.result, j.prov, j.err
}

// snapshot returns the job's externally visible state.
func (j *job) snapshot() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{ID: j.id, Key: j.key, Status: j.status, Error: j.err}
	if j.status == StatusDone {
		v.Cache = j.prov
	}
	for _, ev := range j.events {
		if ev.Type == "progress" {
			v.Done, v.Total = ev.Done, ev.Total
		}
	}
	return v
}

// JobView is the JSON body of a job status response.
type JobView struct {
	ID     string          `json:"id"`
	Key    string          `json:"key"`
	Status JobStatus       `json:"status"`
	Done   int             `json:"done,omitempty"`
	Total  int             `json:"total,omitempty"`
	Cache  memo.Provenance `json:"cache,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// registry holds every live job plus a bounded backlog of terminal ones:
// once more than retain jobs are terminal, the oldest terminal jobs are
// forgotten (their results stay available through the cache).
type registry struct {
	mu     sync.Mutex
	jobs   map[string]*job
	order  []string // insertion order, for retention eviction
	seq    uint64
	retain int
}

func newRegistry(retain int) *registry {
	if retain <= 0 {
		retain = 256
	}
	return &registry{jobs: make(map[string]*job), retain: retain}
}

// add creates and registers a new job for the given fingerprint.
func (r *registry) add(key string) *job {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	j := newJob(fmt.Sprintf("j%08x", r.seq), key)
	r.jobs[j.id] = j
	r.order = append(r.order, j.id)
	r.evictLocked()
	return j
}

// get looks a job up by id.
func (r *registry) get(id string) (*job, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.jobs[id]
	return j, ok
}

// evict applies the retention policy immediately. It runs after every
// terminal transition so that an evicted job's endpoints 404 as soon as the
// backlog overflows, not at the next submission.
func (r *registry) evict() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.evictLocked()
}

// evictLocked drops the oldest terminal jobs while more than retain are
// terminal. Live jobs are never evicted.
func (r *registry) evictLocked() {
	terminal := 0
	for _, id := range r.order {
		j := r.jobs[id]
		j.mu.Lock()
		t := j.terminal()
		j.mu.Unlock()
		if t {
			terminal++
		}
	}
	if terminal <= r.retain {
		return
	}
	keep := r.order[:0]
	for _, id := range r.order {
		j := r.jobs[id]
		j.mu.Lock()
		t := j.terminal()
		j.mu.Unlock()
		if t && terminal > r.retain {
			delete(r.jobs, id)
			terminal--
			continue
		}
		keep = append(keep, id)
	}
	r.order = keep
}
