// Package server implements sunfloor-server: synthesis as a service. It
// wraps the sunfloor3d engine in an HTTP/JSON daemon with
//
//   - a content-addressed design-point cache (internal/memo): every request
//     is fingerprinted, equal requests — across clients, processes and
//     restarts — are answered from the cache or deduplicated onto one
//     in-flight computation;
//   - a bounded job queue with request validation and graceful shutdown;
//   - streaming progress over NDJSON or SSE, wired to the engine's
//     per-design-point progress events;
//   - one process-wide fair-share scheduler: concurrent requests draw
//     evaluation slots from a fixed budget proportionally to their weights
//     instead of oversubscribing the CPU.
//
// The HTTP surface:
//
//	POST /v1/synthesize            submit a job; 202 + job view, or the
//	                               result body directly with ?wait=1
//	GET  /v1/jobs/{id}             job status
//	GET  /v1/jobs/{id}/stream      progress events (NDJSON; SSE on Accept)
//	GET  /v1/jobs/{id}/result      canonical serialised Result
//	GET  /v1/cache/stats           cache, scheduler and queue statistics
//	GET  /healthz                  liveness probe
//
// Result bodies are the engine's canonical serialisation: byte-identical to
// a local Synthesize + WriteJSON of the same request, whatever mix of cache
// tiers, deduplication and scheduling produced them.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"sunfloor3d"
	"sunfloor3d/internal/memo"
)

// Config parameterizes a Server. The zero value is usable: memory-only
// cache, CPU-sized scheduler, default queue and retention bounds.
type Config struct {
	// CacheDir is the on-disk tier of the design-point cache ("" = memory
	// only). The directory may be shared with CLI runs (-cache-dir) and
	// other server processes.
	CacheDir string
	// MemEntries bounds the in-memory cache tier (<= 0 selects the default).
	MemEntries int
	// QueueDepth bounds the backlog of accepted-but-not-started jobs;
	// submissions beyond it are rejected with 503 (<= 0 selects 64).
	QueueDepth int
	// Workers is the number of jobs synthesized concurrently (<= 0 selects
	// 4). Each job's design points still multiplex over the shared
	// scheduler, so Workers bounds bookkeeping, not CPU use.
	Workers int
	// Capacity is the shared scheduler's evaluation-slot budget (<= 0
	// selects one slot per available CPU).
	Capacity int
	// RetainJobs bounds how many terminal jobs keep their status and result
	// queryable (<= 0 selects 256). Evicted results remain available through
	// the cache by resubmitting the request.
	RetainJobs int
}

// Server is the synthesis service. Create with New, serve with any
// http.Server (Server implements http.Handler), stop with Shutdown.
type Server struct {
	cache *memo.Cache
	sched *sunfloor3d.Scheduler
	reg   *registry
	mux   *http.ServeMux

	baseCtx context.Context
	cancel  context.CancelFunc

	queue   chan queued
	workers sync.WaitGroup

	mu     sync.Mutex
	closed bool

	// genMu guards genCache, a memo of generator-built designs keyed by the
	// raw gen string. Generation is deterministic and the engine treats
	// designs as read-only, so sharing one instance across requests is sound
	// — and skipping the ~tens-of-ms regeneration (the generator floorplans
	// the design) is what keeps a warm cache hit in the sub-millisecond
	// range.
	genMu    sync.Mutex
	genCache map[string]*sunfloor3d.Design
}

// maxGenCache bounds the generated-design memo; past it the memo is reset
// (designs are cheap to regenerate, the bound only guards memory).
const maxGenCache = 128

// queued pairs an accepted job with its parsed, validated work.
type queued struct {
	job    *job
	design *sunfloor3d.Design
	opts   []sunfloor3d.Option
}

// New builds a Server and starts its worker pool.
func New(cfg Config) (*Server, error) {
	cache, err := memo.New(cfg.CacheDir, cfg.MemEntries)
	if err != nil {
		return nil, fmt.Errorf("server: opening cache: %w", err)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cache:    cache,
		sched:    sunfloor3d.NewScheduler(cfg.Capacity),
		reg:      newRegistry(cfg.RetainJobs),
		baseCtx:  ctx,
		cancel:   cancel,
		queue:    make(chan queued, cfg.QueueDepth),
		genCache: make(map[string]*sunfloor3d.Design),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/synthesize", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /v1/cache/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	for i := 0; i < cfg.Workers; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	return s, nil
}

// ServeHTTP dispatches to the server's API.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Scheduler returns the process-wide fair-share scheduler, so embedding
// callers can attach their own runs to the same slot budget.
func (s *Server) Scheduler() *sunfloor3d.Scheduler { return s.sched }

// Cache returns the design-point cache.
func (s *Server) Cache() *memo.Cache { return s.cache }

// Shutdown stops the server gracefully: new submissions are rejected,
// queued and running jobs are given until ctx expires to finish, then the
// stragglers are cancelled and drained. Shutdown returns once every worker
// has exited.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.queue) // submissions stopped above, so no further sends
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		s.cancel() // cancel in-flight synthesis; workers drain and exit
		<-done
	}
	s.cancel()
	return err
}

// worker drains the job queue until it is closed.
func (s *Server) worker() {
	defer s.workers.Done()
	for q := range s.queue {
		s.run(q)
	}
}

// run executes one job through the cache: a fingerprint hit (or another
// in-flight job with the same fingerprint) answers without synthesizing;
// otherwise this job computes and its progress is streamed.
func (s *Server) run(q queued) {
	q.job.setRunning()
	compute := func() ([]byte, error) {
		opts := append(q.opts, sunfloor3d.WithProgress(func(ev sunfloor3d.Event) {
			q.job.progress(ProgressEvent{
				Type: "progress", Done: ev.Done, Total: ev.Total,
				FreqMHz:     ev.Point.FreqMHz,
				SwitchCount: ev.Point.SwitchCount,
				Valid:       ev.Point.Valid,
				Pruned:      ev.Point.Pruned,
				SimTriage:   ev.Point.SimTriage,
			})
		}))
		res, err := sunfloor3d.Synthesize(s.baseCtx, q.design, opts...)
		if err != nil {
			return nil, err
		}
		return res.MarshalStable()
	}
	body, prov, err := s.cache.GetOrCompute(s.baseCtx, q.job.key, compute)
	q.job.finish(body, prov, err)
	s.reg.evict()
}

// SynthesizeRequest is the JSON body of POST /v1/synthesize. The design is
// given either as the text spec pair (cores_spec + comm_spec, the formats of
// WriteDesign/cmd/specgen) or as a workload generator string (gen, the
// key=value form of the CLI's -gen flag). Requests that denote the same
// design and options share one fingerprint however they were spelled.
type SynthesizeRequest struct {
	CoresSpec string          `json:"cores_spec,omitempty"`
	CommSpec  string          `json:"comm_spec,omitempty"`
	Gen       string          `json:"gen,omitempty"`
	Options   *RequestOptions `json:"options,omitempty"`
}

// RequestOptions mirrors the facade's With* options; unset fields keep the
// engine defaults. Weight is the request's fair-share weight on the shared
// scheduler; Parallelism caps this request's slot share.
type RequestOptions struct {
	FrequenciesMHz      []float64 `json:"frequencies_mhz,omitempty"`
	MaxILL              *int      `json:"max_ill,omitempty"`
	SoftILLMargin       *int      `json:"soft_ill_margin,omitempty"`
	Phase               *string   `json:"phase,omitempty"`
	Alpha               *float64  `json:"alpha,omitempty"`
	PowerWeight         *float64  `json:"power_weight,omitempty"`
	LatencyWeight       *float64  `json:"latency_weight,omitempty"`
	SwitchLayer         *string   `json:"switch_layer,omitempty"`
	MaxSwitchesPerLayer *int      `json:"max_switches_per_layer,omitempty"`
	LPEveryPoint        *bool     `json:"lp_every_point,omitempty"`
	RequireLatencyMet   *bool     `json:"require_latency_met,omitempty"`
	Weight              *int      `json:"weight,omitempty"`
	Parallelism         *int      `json:"parallelism,omitempty"`
	// Space switches the request from the classic frequency sweep to the
	// N-dimensional design-space explorer (sunfloor3d.WithSpace). Checkpoint
	// files and shards are per-process concerns and are not exposed here.
	Space *SpaceRequest `json:"space,omitempty"`
	// Sparing provisions spare TSVs/wires for a target functional yield
	// (sunfloor3d.WithSparing); Fault replays deterministic fault plans and
	// attaches the survivability report to every valid point
	// (sunfloor3d.WithFaultModel). Both are fingerprint-relevant.
	Sparing *SparingRequest `json:"sparing,omitempty"`
	Fault   *FaultRequest   `json:"fault,omitempty"`
	// Contention attaches the analytic M/D/1 contention estimate to every
	// valid point (sunfloor3d.WithContention). Fingerprint-relevant: the
	// estimate is part of the serialised result. The WithSimBand triage is
	// not exposed here because simulation itself is not server-exposed.
	Contention *bool `json:"contention,omitempty"`
}

// SparingRequest mirrors sunfloor3d.WithSparing: the manufacturing process —
// one of the standard names (wafer-level-A, wafer-level-B, die-to-wafer) —
// and the functional-yield target in (0, 1).
type SparingRequest struct {
	Process     string  `json:"process"`
	TargetYield float64 `json:"target_yield"`
}

// FaultRequest mirrors sunfloor3d.FaultModelConfig; unset fields keep the
// defaults of sunfloor3d.DefaultFaultModelConfig.
type FaultRequest struct {
	Plans         *int   `json:"plans,omitempty"`
	FaultsPerPlan *int   `json:"faults_per_plan,omitempty"`
	Seed          *int64 `json:"seed,omitempty"`
	ExhaustiveMax *int   `json:"exhaustive_max,omitempty"`
	FaultCycle    *int   `json:"fault_cycle,omitempty"`
}

// SpaceRequest mirrors sunfloor3d.Space in the JSON request body.
type SpaceRequest struct {
	Axes    []AxisRequest `json:"axes"`
	NoPrune bool          `json:"no_prune,omitempty"`
}

// AxisRequest mirrors sunfloor3d.Axis: one named exploration dimension.
type AxisRequest struct {
	Name   string    `json:"name"`
	Values []float64 `json:"values"`
}

// maxRequestBody bounds the accepted request size (specs are text; even
// hundreds of cores stay far below this).
const maxRequestBody = 8 << 20

// generatedDesign builds (or recalls) the design of a generator string.
func (s *Server) generatedDesign(gen string) (*sunfloor3d.Design, error) {
	s.genMu.Lock()
	if d, ok := s.genCache[gen]; ok {
		s.genMu.Unlock()
		return d, nil
	}
	s.genMu.Unlock()

	spec, err := sunfloor3d.ParseGenSpec(gen)
	if err != nil {
		return nil, err
	}
	b, err := sunfloor3d.GenerateBenchmark(spec)
	if err != nil {
		return nil, err
	}

	s.genMu.Lock()
	if len(s.genCache) >= maxGenCache {
		s.genCache = make(map[string]*sunfloor3d.Design)
	}
	s.genCache[gen] = b.Graph3D
	s.genMu.Unlock()
	return b.Graph3D, nil
}

// parseRequest validates the request and builds the design plus the option
// list (fingerprint-relevant options first; the caller appends execution
// options such as the scheduler).
func (s *Server) parseRequest(req *SynthesizeRequest) (*sunfloor3d.Design, []sunfloor3d.Option, error) {
	hasSpecs := req.CoresSpec != "" || req.CommSpec != ""
	hasGen := req.Gen != ""
	var design *sunfloor3d.Design
	switch {
	case hasSpecs && hasGen:
		return nil, nil, errors.New("give either cores_spec+comm_spec or gen, not both")
	case hasSpecs:
		if req.CoresSpec == "" || req.CommSpec == "" {
			return nil, nil, errors.New("cores_spec and comm_spec must both be set")
		}
		d, err := sunfloor3d.LoadDesign(strings.NewReader(req.CoresSpec), strings.NewReader(req.CommSpec))
		if err != nil {
			return nil, nil, err
		}
		design = d
	case hasGen:
		d, err := s.generatedDesign(req.Gen)
		if err != nil {
			return nil, nil, err
		}
		design = d
	default:
		return nil, nil, errors.New("no design: set cores_spec+comm_spec or gen")
	}

	var opts []sunfloor3d.Option
	o := req.Options
	if o == nil {
		return design, opts, nil
	}
	if len(o.FrequenciesMHz) > 0 {
		opts = append(opts, sunfloor3d.WithFrequenciesMHz(o.FrequenciesMHz...))
	}
	if o.MaxILL != nil {
		opts = append(opts, sunfloor3d.WithMaxILL(*o.MaxILL))
	}
	if o.SoftILLMargin != nil {
		opts = append(opts, sunfloor3d.WithSoftILLMargin(*o.SoftILLMargin))
	}
	if o.Phase != nil {
		p, err := sunfloor3d.ParsePhase(*o.Phase)
		if err != nil {
			return nil, nil, err
		}
		opts = append(opts, sunfloor3d.WithPhase(p))
	}
	if o.Alpha != nil {
		opts = append(opts, sunfloor3d.WithAlpha(*o.Alpha))
	}
	if (o.PowerWeight == nil) != (o.LatencyWeight == nil) {
		return nil, nil, errors.New("power_weight and latency_weight must be set together")
	}
	if o.PowerWeight != nil {
		opts = append(opts, sunfloor3d.WithObjective(*o.PowerWeight, *o.LatencyWeight))
	}
	if o.SwitchLayer != nil {
		switch *o.SwitchLayer {
		case "average":
			opts = append(opts, sunfloor3d.WithSwitchLayerRule(sunfloor3d.LayerAverage))
		case "majority":
			opts = append(opts, sunfloor3d.WithSwitchLayerRule(sunfloor3d.LayerMajority))
		default:
			return nil, nil, fmt.Errorf("unknown switch_layer %q (valid: average, majority)", *o.SwitchLayer)
		}
	}
	if o.MaxSwitchesPerLayer != nil {
		opts = append(opts, sunfloor3d.WithMaxSwitchesPerLayer(*o.MaxSwitchesPerLayer))
	}
	if o.LPEveryPoint != nil {
		opts = append(opts, sunfloor3d.WithLPPlacement(*o.LPEveryPoint))
	}
	if o.RequireLatencyMet != nil {
		opts = append(opts, sunfloor3d.WithRequireLatencyMet(*o.RequireLatencyMet))
	}
	if o.Weight != nil {
		opts = append(opts, sunfloor3d.WithFairShareWeight(*o.Weight))
	}
	if o.Parallelism != nil {
		opts = append(opts, sunfloor3d.WithParallelism(*o.Parallelism))
	}
	if o.Sparing != nil {
		proc, err := sunfloor3d.ProcessByName(o.Sparing.Process)
		if err != nil {
			return nil, nil, err
		}
		opts = append(opts, sunfloor3d.WithSparing(proc, o.Sparing.TargetYield))
	}
	if o.Fault != nil {
		fc := sunfloor3d.DefaultFaultModelConfig()
		if o.Fault.Plans != nil {
			fc.Plans = *o.Fault.Plans
		}
		if o.Fault.FaultsPerPlan != nil {
			fc.FaultsPerPlan = *o.Fault.FaultsPerPlan
		}
		if o.Fault.Seed != nil {
			fc.Seed = *o.Fault.Seed
		}
		if o.Fault.ExhaustiveMax != nil {
			fc.ExhaustiveMax = *o.Fault.ExhaustiveMax
		}
		if o.Fault.FaultCycle != nil {
			fc.FaultCycle = *o.Fault.FaultCycle
		}
		opts = append(opts, sunfloor3d.WithFaultModel(fc))
	}
	if o.Space != nil {
		sp := sunfloor3d.Space{NoPrune: o.Space.NoPrune}
		for _, a := range o.Space.Axes {
			sp.Axes = append(sp.Axes, sunfloor3d.Axis{Name: a.Name, Values: a.Values})
		}
		opts = append(opts, sunfloor3d.WithSpace(sp))
	}
	if o.Contention != nil && *o.Contention {
		opts = append(opts, sunfloor3d.WithContention())
	}
	return design, opts, nil
}

// handleSubmit validates and enqueues a synthesis request. With ?wait=1 it
// blocks and answers with the result body directly; otherwise it returns
// 202 with the job view. Either way the fingerprint is exposed as
// X-Sunfloor-Key, and terminal responses carry X-Sunfloor-Cache.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SynthesizeRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("parsing request body: %v", err))
		return
	}
	design, opts, err := s.parseRequest(&req)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	key, err := sunfloor3d.Fingerprint(design, opts...)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	w.Header().Set("X-Sunfloor-Key", key)

	opts = append(opts, sunfloor3d.WithScheduler(s.sched))

	// Cache fast path: a fingerprint hit answers without consuming a queue
	// slot or a worker.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	if body, prov, ok := s.cache.Peek(key); ok {
		j := s.reg.add(key)
		s.mu.Unlock()
		j.setRunning()
		j.finish(body, prov, nil)
		s.reg.evict()
		s.respondTerminal(w, r, j)
		return
	}
	j := s.reg.add(key)
	select {
	case s.queue <- queued{job: j, design: design, opts: opts}:
		s.mu.Unlock()
	default:
		s.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, "job queue is full, retry later")
		return
	}

	s.respondTerminal(w, r, j)
}

// respondTerminal finishes a submit response: waits for the job when ?wait
// was requested, otherwise acknowledges with 202.
func (s *Server) respondTerminal(w http.ResponseWriter, r *http.Request, j *job) {
	if wait := r.URL.Query().Get("wait"); wait == "1" || wait == "true" {
		status, body, prov, errMsg := j.wait(r.Context().Done())
		if status == StatusFailed {
			httpError(w, http.StatusUnprocessableEntity, errMsg)
			return
		}
		if status != StatusDone {
			// Client went away before the job finished; the job keeps running.
			httpError(w, http.StatusRequestTimeout, "request cancelled while waiting")
			return
		}
		w.Header().Set("X-Sunfloor-Cache", string(prov))
		w.Header().Set("Content-Type", "application/json")
		w.Write(body)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	writeJSON(w, http.StatusAccepted, j.snapshot())
}

// handleStatus answers with the job view.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.reg.get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job")
		return
	}
	writeJSON(w, http.StatusOK, j.snapshot())
}

// handleResult answers with the canonical serialised Result of a finished
// job, with the cache provenance and fingerprint in headers.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.reg.get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job")
		return
	}
	j.mu.Lock()
	status, body, prov, errMsg := j.status, j.result, j.prov, j.err
	j.mu.Unlock()
	switch status {
	case StatusDone:
		w.Header().Set("X-Sunfloor-Key", j.key)
		w.Header().Set("X-Sunfloor-Cache", string(prov))
		w.Header().Set("Content-Type", "application/json")
		w.Write(body)
	case StatusFailed:
		httpError(w, http.StatusUnprocessableEntity, errMsg)
	default:
		httpError(w, http.StatusConflict, "job is not finished")
	}
}

// handleStream streams the job's progress events: one JSON object per line
// (NDJSON), or SSE "data:" frames when the client asks for
// text/event-stream. The stream replays history, follows live events and
// ends after the terminal event.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j, ok := s.reg.get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job")
		return
	}
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	// Wake the cond-based follower when the client disconnects.
	clientGone := r.Context().Done()
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-clientGone:
			j.cond.Broadcast()
		case <-stop:
		}
	}()

	next := 0
	for {
		j.mu.Lock()
		for next >= len(j.events) {
			select {
			case <-clientGone:
				j.mu.Unlock()
				return
			default:
			}
			j.cond.Wait()
		}
		batch := append([]ProgressEvent(nil), j.events[next:]...)
		next = len(j.events)
		j.mu.Unlock()

		for _, ev := range batch {
			line, err := json.Marshal(ev)
			if err != nil {
				return
			}
			if sse {
				fmt.Fprintf(w, "data: %s\n\n", line)
			} else {
				fmt.Fprintf(w, "%s\n", line)
			}
			if ev.Type == "done" {
				if flusher != nil {
					flusher.Flush()
				}
				return
			}
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// StatsView is the body of GET /v1/cache/stats.
type StatsView struct {
	Cache     memo.Stats                `json:"cache"`
	Scheduler sunfloor3d.SchedulerStats `json:"scheduler"`
	QueueLen  int                       `json:"queue_len"`
	QueueCap  int                       `json:"queue_cap"`
}

// handleStats reports cache, scheduler and queue statistics.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, StatsView{
		Cache:     s.cache.Stats(),
		Scheduler: s.sched.Stats(),
		QueueLen:  len(s.queue),
		QueueCap:  cap(s.queue),
	})
}

// errorBody is the JSON shape of every error response.
type errorBody struct {
	Error string `json:"error"`
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorBody{Error: msg})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
