package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"sunfloor3d"
	"sunfloor3d/internal/server"
)

// fastGen is a small workload that synthesizes in well under a second.
const fastGen = "shape=pipeline,cores=8,layers=2,seed=1"

// newTestServer starts a Server with the given config behind httptest.
func newTestServer(t *testing.T, cfg server.Config) (*server.Server, *httptest.Server) {
	t.Helper()
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s, ts
}

// submit POSTs a synthesize request and returns the response.
func submit(t *testing.T, ts *httptest.Server, body string, wait bool) *http.Response {
	t.Helper()
	url := ts.URL + "/v1/synthesize"
	if wait {
		url += "?wait=1"
	}
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// directResult runs the same request through the in-process facade and
// returns the canonical serialised Result.
func directResult(t *testing.T, gen string, opts ...sunfloor3d.Option) []byte {
	t.Helper()
	spec, err := sunfloor3d.ParseGenSpec(gen)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sunfloor3d.GenerateBenchmark(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sunfloor3d.Synthesize(context.Background(), b.Graph3D, opts...)
	if err != nil {
		t.Fatal(err)
	}
	out, err := res.MarshalStable()
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestServerWaitRoundTrip: a synchronous submit returns exactly the bytes a
// direct Synthesize+WriteJSON produces, and resubmitting hits the cache with
// an identical body.
func TestServerWaitRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	body := fmt.Sprintf(`{"gen":%q}`, fastGen)

	resp := submit(t, ts, body, true)
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold submit: status %d: %s", resp.StatusCode, got)
	}
	if prov := resp.Header.Get("X-Sunfloor-Cache"); prov != "computed" {
		t.Fatalf("cold submit provenance = %q, want computed", prov)
	}
	if resp.Header.Get("X-Sunfloor-Key") == "" {
		t.Fatal("no fingerprint header on response")
	}
	want := directResult(t, fastGen)
	if !bytes.Equal(got, want) {
		t.Fatalf("served result differs from direct synthesis:\nserved %d bytes, direct %d bytes", len(got), len(want))
	}

	resp2 := submit(t, ts, body, true)
	got2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if prov := resp2.Header.Get("X-Sunfloor-Cache"); prov != "memory" {
		t.Fatalf("warm submit provenance = %q, want memory", prov)
	}
	if !bytes.Equal(got2, got) {
		t.Fatal("warm body differs from cold body")
	}
}

// TestServerDiskCacheAcrossRestart: a second server on the same cache
// directory answers from disk with identical bytes.
func TestServerDiskCacheAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	body := fmt.Sprintf(`{"gen":%q}`, fastGen)

	_, ts1 := newTestServer(t, server.Config{CacheDir: dir})
	resp := submit(t, ts1, body, true)
	cold, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold: status %d: %s", resp.StatusCode, cold)
	}

	_, ts2 := newTestServer(t, server.Config{CacheDir: dir})
	resp2 := submit(t, ts2, body, true)
	warm, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if prov := resp2.Header.Get("X-Sunfloor-Cache"); prov != "disk" {
		t.Fatalf("restarted-server provenance = %q, want disk", prov)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatal("disk-served body differs from computed body")
	}
}

// TestServerAsyncLifecycle drives the asynchronous flow: 202 on submit,
// status polling to done, progress stream ending in a terminal event, and a
// result fetch byte-identical to direct synthesis.
func TestServerAsyncLifecycle(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	resp := submit(t, ts, fmt.Sprintf(`{"gen":%q}`, fastGen), false)
	ack, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, ack)
	}
	var view server.JobView
	if err := json.Unmarshal(ack, &view); err != nil {
		t.Fatalf("parsing ack %q: %v", ack, err)
	}
	if view.ID == "" || view.Key == "" {
		t.Fatalf("ack missing id/key: %+v", view)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/jobs/"+view.ID {
		t.Fatalf("Location = %q", loc)
	}

	// The stream replays history, so subscribing after completion still
	// yields every event.
	deadline := time.Now().Add(30 * time.Second)
	for {
		r, err := http.Get(ts.URL + "/v1/jobs/" + view.ID)
		if err != nil {
			t.Fatal(err)
		}
		var v server.JobView
		json.NewDecoder(r.Body).Decode(&v)
		r.Body.Close()
		if v.Status == server.StatusDone {
			break
		}
		if v.Status == server.StatusFailed {
			t.Fatalf("job failed: %+v", v)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job not done in time: %+v", v)
		}
		time.Sleep(10 * time.Millisecond)
	}

	sr, err := http.Get(ts.URL + "/v1/jobs/" + view.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	lines, _ := io.ReadAll(sr.Body)
	sr.Body.Close()
	var events []server.ProgressEvent
	for _, line := range strings.Split(strings.TrimSpace(string(lines)), "\n") {
		var ev server.ProgressEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad stream line %q: %v", line, err)
		}
		events = append(events, ev)
	}
	if len(events) < 2 {
		t.Fatalf("stream had %d events, want progress + done", len(events))
	}
	last := events[len(events)-1]
	if last.Type != "done" || last.Status != server.StatusDone {
		t.Fatalf("terminal stream event = %+v", last)
	}
	for _, ev := range events[:len(events)-1] {
		if ev.Type != "progress" || ev.Total == 0 {
			t.Fatalf("non-terminal stream event = %+v", ev)
		}
	}

	rr, err := http.Get(ts.URL + "/v1/jobs/" + view.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(rr.Body)
	rr.Body.Close()
	if rr.StatusCode != http.StatusOK {
		t.Fatalf("result fetch: status %d: %s", rr.StatusCode, got)
	}
	if want := directResult(t, fastGen); !bytes.Equal(got, want) {
		t.Fatal("async result differs from direct synthesis")
	}
}

// TestServerSpecAndGenShareFingerprint: the same design submitted as spec
// text hits the cache entry created by its generator-string submission.
func TestServerSpecAndGenShareFingerprint(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})

	resp := submit(t, ts, fmt.Sprintf(`{"gen":%q}`, fastGen), true)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	key := resp.Header.Get("X-Sunfloor-Key")

	spec, err := sunfloor3d.ParseGenSpec(fastGen)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sunfloor3d.GenerateBenchmark(spec)
	if err != nil {
		t.Fatal(err)
	}
	var cores, comm bytes.Buffer
	if err := sunfloor3d.WriteDesign(&cores, &comm, b.Graph3D); err != nil {
		t.Fatal(err)
	}
	req, err := json.Marshal(server.SynthesizeRequest{CoresSpec: cores.String(), CommSpec: comm.String()})
	if err != nil {
		t.Fatal(err)
	}
	resp2 := submit(t, ts, string(req), true)
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if k2 := resp2.Header.Get("X-Sunfloor-Key"); k2 != key {
		t.Fatalf("spec-form fingerprint %s differs from gen-form %s", k2, key)
	}
	if prov := resp2.Header.Get("X-Sunfloor-Cache"); prov != "memory" {
		t.Fatalf("spec-form submission provenance = %q, want memory (same design)", prov)
	}
}

// TestServerOptionsChangeFingerprint: result-affecting options produce a
// different fingerprint and a different computation.
func TestServerOptionsChangeFingerprint(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	r1 := submit(t, ts, fmt.Sprintf(`{"gen":%q}`, fastGen), true)
	io.Copy(io.Discard, r1.Body)
	r1.Body.Close()
	r2 := submit(t, ts, fmt.Sprintf(`{"gen":%q,"options":{"frequencies_mhz":[400,800]}}`, fastGen), true)
	io.Copy(io.Discard, r2.Body)
	r2.Body.Close()
	if r1.Header.Get("X-Sunfloor-Key") == r2.Header.Get("X-Sunfloor-Key") {
		t.Fatal("different frequencies produced the same fingerprint")
	}
	if prov := r2.Header.Get("X-Sunfloor-Cache"); prov != "computed" {
		t.Fatalf("changed-options submission provenance = %q, want computed", prov)
	}

	// Execution-only knobs keep the fingerprint (and hit the cache).
	r3 := submit(t, ts, fmt.Sprintf(`{"gen":%q,"options":{"weight":5,"parallelism":2}}`, fastGen), true)
	io.Copy(io.Discard, r3.Body)
	r3.Body.Close()
	if r3.Header.Get("X-Sunfloor-Key") != r1.Header.Get("X-Sunfloor-Key") {
		t.Fatal("execution knobs changed the fingerprint")
	}
	if prov := r3.Header.Get("X-Sunfloor-Cache"); prov != "memory" {
		t.Fatalf("execution-knob resubmission provenance = %q, want memory", prov)
	}
}

// TestServerConcurrentIdenticalRequests: N clients submitting the same cold
// request get byte-identical bodies from a single synthesis.
func TestServerConcurrentIdenticalRequests(t *testing.T) {
	s, ts := newTestServer(t, server.Config{Workers: 8})
	const clients = 8
	bodies := make([][]byte, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/synthesize?wait=1", "application/json",
				strings.NewReader(fmt.Sprintf(`{"gen":%q}`, fastGen)))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			b, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("client %d: status %d: %s", i, resp.StatusCode, b)
				return
			}
			bodies[i] = b
		}(i)
	}
	wg.Wait()
	for i := 1; i < clients; i++ {
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("client %d body differs from client 0", i)
		}
	}
	if st := s.Cache().Stats(); st.Misses != 1 {
		t.Fatalf("identical concurrent requests caused %d computations, want 1 (%+v)", st.Misses, st)
	}
}

// TestServerValidation: malformed submissions are rejected with 400 and a
// JSON error body.
func TestServerValidation(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	cases := []struct {
		name, body string
	}{
		{"bad json", `{`},
		{"unknown field", `{"genn":"x"}`},
		{"no design", `{}`},
		{"both forms", fmt.Sprintf(`{"gen":%q,"cores_spec":"x","comm_spec":"y"}`, fastGen)},
		{"half spec pair", `{"cores_spec":"x"}`},
		{"bad gen", `{"gen":"shape=nosuch"}`},
		{"bad phase", fmt.Sprintf(`{"gen":%q,"options":{"phase":"phase9"}}`, fastGen)},
		{"bad switch layer", fmt.Sprintf(`{"gen":%q,"options":{"switch_layer":"median"}}`, fastGen)},
		{"half objective", fmt.Sprintf(`{"gen":%q,"options":{"power_weight":1}}`, fastGen)},
		{"bad option value", fmt.Sprintf(`{"gen":%q,"options":{"alpha":7.5}}`, fastGen)},
		{"unknown sparing process", fmt.Sprintf(`{"gen":%q,"options":{"sparing":{"process":"nope","target_yield":0.99}}}`, fastGen)},
		{"bad sparing target", fmt.Sprintf(`{"gen":%q,"options":{"sparing":{"process":"wafer-level-A","target_yield":2}}}`, fastGen)},
		{"bad fault model", fmt.Sprintf(`{"gen":%q,"options":{"fault":{"plans":0,"exhaustive_max":0}}}`, fastGen)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := submit(t, ts, tc.body, true)
			defer resp.Body.Close()
			b, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d (%s), want 400", resp.StatusCode, b)
			}
			var e struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(b, &e); err != nil || e.Error == "" {
				t.Fatalf("error body %q not of the {error} shape", b)
			}
		})
	}

	// Unknown job endpoints.
	for _, path := range []string{"/v1/jobs/nope", "/v1/jobs/nope/stream", "/v1/jobs/nope/result"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s: status %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestServerFaultOptionsRoundTrip: a request with sparing and fault options
// returns exactly the bytes the in-process facade produces for the same
// configuration, survivability reports included.
func TestServerFaultOptionsRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	body := fmt.Sprintf(`{"gen":%q,"options":{"sparing":{"process":"wafer-level-A","target_yield":0.99},"fault":{"plans":4,"seed":7}}}`, fastGen)

	resp := submit(t, ts, body, true)
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, got)
	}
	proc, err := sunfloor3d.ProcessByName("wafer-level-A")
	if err != nil {
		t.Fatal(err)
	}
	fc := sunfloor3d.DefaultFaultModelConfig()
	fc.Plans = 4
	fc.Seed = 7
	want := directResult(t, fastGen,
		sunfloor3d.WithSparing(proc, 0.99), sunfloor3d.WithFaultModel(fc))
	if !bytes.Equal(got, want) {
		t.Fatalf("served fault-aware result differs from direct synthesis:\nserved %d bytes, direct %d bytes", len(got), len(want))
	}
	if !bytes.Contains(got, []byte(`"survivability"`)) {
		t.Fatal("served result carries no survivability report")
	}
}

// TestServerContentionOptionRoundTrip: the contention flag reaches the
// engine (the served result carries the estimate), matches a direct run byte
// for byte, and changes the fingerprint relative to an estimate-free run.
func TestServerContentionOptionRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})

	plain := submit(t, ts, fmt.Sprintf(`{"gen":%q}`, fastGen), true)
	io.Copy(io.Discard, plain.Body)
	plain.Body.Close()

	resp := submit(t, ts, fmt.Sprintf(`{"gen":%q,"options":{"contention":true}}`, fastGen), true)
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, got)
	}
	if plain.Header.Get("X-Sunfloor-Key") == resp.Header.Get("X-Sunfloor-Key") {
		t.Fatal("contention option did not change the fingerprint")
	}
	if !bytes.Contains(got, []byte(`"contention"`)) {
		t.Fatal("served result carries no contention estimate")
	}
	want := directResult(t, fastGen, sunfloor3d.WithContention())
	if !bytes.Equal(got, want) {
		t.Fatalf("served contention result differs from direct synthesis:\nserved %d bytes, direct %d bytes", len(got), len(want))
	}
}

// TestServerStats: the stats endpoint reports cache activity and scheduler
// shape.
func TestServerStats(t *testing.T) {
	_, ts := newTestServer(t, server.Config{Capacity: 3, QueueDepth: 5})
	resp := submit(t, ts, fmt.Sprintf(`{"gen":%q}`, fastGen), true)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	sr, err := http.Get(ts.URL + "/v1/cache/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Body.Close()
	var view server.StatsView
	if err := json.NewDecoder(sr.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	if view.Cache.Misses != 1 || view.Cache.Stores != 1 {
		t.Fatalf("cache stats after one cold run: %+v", view.Cache)
	}
	if view.Scheduler.Capacity != 3 {
		t.Fatalf("scheduler capacity = %d, want 3", view.Scheduler.Capacity)
	}
	if view.QueueCap != 5 {
		t.Fatalf("queue cap = %d, want 5", view.QueueCap)
	}
}

// TestServerHealthz: liveness probe answers ok.
func TestServerHealthz(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || string(b) != "ok\n" {
		t.Fatalf("healthz: %d %q", resp.StatusCode, b)
	}
}

// TestServerShutdown: a graceful shutdown finishes queued work, and
// submissions after shutdown are rejected.
func TestServerShutdown(t *testing.T) {
	s, err := server.New(server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp := submit(t, ts, fmt.Sprintf(`{"gen":%q}`, fastGen), false)
	var view server.JobView
	json.NewDecoder(resp.Body).Decode(&view)
	resp.Body.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	// Idempotent.
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}

	// The accepted job ran to completion before shutdown returned.
	r, err := http.Get(ts.URL + "/v1/jobs/" + view.ID)
	if err != nil {
		t.Fatal(err)
	}
	var v server.JobView
	json.NewDecoder(r.Body).Decode(&v)
	r.Body.Close()
	if v.Status != server.StatusDone {
		t.Fatalf("job after graceful shutdown: %+v", v)
	}

	resp2 := submit(t, ts, fmt.Sprintf(`{"gen":%q}`, fastGen), true)
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit after shutdown: status %d, want 503", resp2.StatusCode)
	}
}

// TestServerQueueFull: with one busy worker and a one-deep queue, a burst of
// distinct submissions overflows into 503.
func TestServerQueueFull(t *testing.T) {
	_, ts := newTestServer(t, server.Config{Workers: 1, QueueDepth: 1})
	// A burst of distinct, slow-ish requests: the first occupies the worker,
	// the second the queue slot; one of the remainder must see a full queue.
	const burst = 6
	codes := make([]int, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"gen":"shape=hotspot,cores=20,layers=2,seed=%d"}`, 100+i)
			resp, err := http.Post(ts.URL+"/v1/synthesize?wait=1", "application/json", strings.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			codes[i] = resp.StatusCode
		}(i)
	}
	wg.Wait()
	full, ok := 0, 0
	for _, c := range codes {
		switch c {
		case http.StatusServiceUnavailable:
			full++
		case http.StatusOK:
			ok++
		default:
			t.Fatalf("unexpected status in burst: %v", codes)
		}
	}
	if full == 0 {
		t.Fatalf("no submission was rejected with a full queue: %v", codes)
	}
	if ok == 0 {
		t.Fatalf("no submission succeeded: %v", codes)
	}
}

// TestServerStreamAfterEviction: with -retain 1, finishing a second job
// must evict the first terminal job immediately — its stream (and status)
// endpoints 404 without waiting for a third submission to trigger the
// retention sweep.
func TestServerStreamAfterEviction(t *testing.T) {
	_, ts := newTestServer(t, server.Config{RetainJobs: 1})

	// runJob submits asynchronously and polls the job to a terminal state.
	runJob := func(gen string) string {
		t.Helper()
		resp := submit(t, ts, fmt.Sprintf(`{"gen":%q}`, gen), false)
		ack, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit: status %d: %s", resp.StatusCode, ack)
		}
		var view server.JobView
		if err := json.Unmarshal(ack, &view); err != nil {
			t.Fatalf("parsing ack %q: %v", ack, err)
		}
		deadline := time.Now().Add(30 * time.Second)
		for {
			r, err := http.Get(ts.URL + "/v1/jobs/" + view.ID)
			if err != nil {
				t.Fatal(err)
			}
			var v server.JobView
			json.NewDecoder(r.Body).Decode(&v)
			r.Body.Close()
			if v.Status == server.StatusDone {
				return view.ID
			}
			if v.Status == server.StatusFailed {
				t.Fatalf("job failed: %+v", v)
			}
			if time.Now().After(deadline) {
				t.Fatalf("job not done in time: %+v", v)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	first := runJob(fastGen)
	second := runJob("shape=pipeline,cores=8,layers=2,seed=2")

	// The second finish overflows the retain=1 backlog and sweeps the first
	// job out. The sweep runs just after the terminal transition the poll
	// observed, so allow a brief convergence window — but no third submit.
	deadline := time.Now().Add(5 * time.Second)
	for {
		r, err := http.Get(ts.URL + "/v1/jobs/" + first + "/stream")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		if r.StatusCode == http.StatusNotFound {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stream of evicted job %s = %d, want 404", first, r.StatusCode)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The surviving job still streams its full history.
	r, err := http.Get(ts.URL + "/v1/jobs/" + second + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	lines, _ := io.ReadAll(r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("stream of retained job %s = %d: %s", second, r.StatusCode, lines)
	}
	if !strings.Contains(string(lines), `"done"`) {
		t.Fatalf("retained job stream missing terminal event: %s", lines)
	}
}
