// Package floorplan provides a general-purpose simulated-annealing
// floorplanner based on the sequence-pair representation. It substitutes the
// Parquet fixed-outline floorplanner the paper uses for two purposes:
//
//  1. generating the initial placement of the cores of each benchmark (and of
//     the flattened 2-D equivalents), minimising area and wire length; and
//  2. acting as the "constrained standard floorplanner" baseline of the
//     floorplanning study (Figs. 18-20), where it inserts the NoC switches
//     into an existing core placement while being forbidden from swapping the
//     relative order of the cores.
//
// Both uses exercise the same annealer; the constrained mode simply restricts
// the move set to the inserted (non-fixed) blocks.
package floorplan

import (
	"fmt"
	"math"
	"math/rand"

	"sunfloor3d/internal/geom"
)

// Block is a rectangular block to floorplan.
type Block struct {
	Name string
	W, H float64
	// Fixed marks blocks whose relative order must not change in constrained
	// mode (the already-placed cores during NoC insertion).
	Fixed bool
}

// Net is a weighted two-pin connection between blocks, used in the wirelength
// part of the cost function.
type Net struct {
	A, B   int
	Weight float64
}

// Params tunes the annealer.
type Params struct {
	// Seed makes runs reproducible.
	Seed int64
	// Iterations per temperature step.
	Iterations int
	// TemperatureSteps is the number of cooling steps.
	TemperatureSteps int
	// InitialTemp and CoolingFactor define the annealing schedule.
	InitialTemp   float64
	CoolingFactor float64
	// AreaWeight and WireWeight blend the two cost terms.
	AreaWeight, WireWeight float64
	// DisplacementWeight penalises moving Fixed blocks away from their
	// initial positions (only meaningful with FloorplanWithInitial). The
	// paper's constrained-standard-floorplanner baseline must keep the cores
	// close to their input placement, which is what this term models.
	DisplacementWeight float64
	// Constrained forbids moves that change the relative order of Fixed
	// blocks (the paper's modified Parquet baseline).
	Constrained bool
}

// DefaultParams returns a reasonable annealing schedule for designs with up
// to ~100 blocks.
func DefaultParams(seed int64) Params {
	return Params{
		Seed:             seed,
		Iterations:       200,
		TemperatureSteps: 60,
		InitialTemp:      1.0,
		CoolingFactor:    0.92,
		AreaWeight:       1.0,
		WireWeight:       0.4,
		Constrained:      false,
	}
}

// Result is a computed floorplan.
type Result struct {
	// Positions holds the lower-left corner of every block.
	Positions []geom.Point
	// BoundingBox is the overall outline.
	BoundingBox geom.Rect
	// AreaMM2 is the outline area.
	AreaMM2 float64
	// WireLengthMM is the weighted half-perimeter wirelength of the nets.
	WireLengthMM float64
}

// Rect returns the placed rectangle of block i.
func (r *Result) Rect(blocks []Block, i int) geom.Rect {
	return geom.Rect{X: r.Positions[i].X, Y: r.Positions[i].Y, W: blocks[i].W, H: blocks[i].H}
}

// sequencePair is the classic floorplan representation: two permutations of
// the block indices. Block a is left of b iff a precedes b in both sequences;
// a is below b iff a follows b in the first and precedes b in the second.
type sequencePair struct {
	pos, neg []int
}

func (sp *sequencePair) clone() sequencePair {
	return sequencePair{
		pos: append([]int(nil), sp.pos...),
		neg: append([]int(nil), sp.neg...),
	}
}

// Floorplan runs simulated annealing over sequence pairs starting from the
// trivial (identity) sequence pair and returns the best floorplan found. With
// p.Constrained set, only non-fixed blocks are moved, so the relative order
// (and hence relative placement) of fixed blocks is preserved.
func Floorplan(blocks []Block, nets []Net, p Params) (*Result, error) {
	if len(blocks) == 0 {
		return nil, fmt.Errorf("floorplan: no blocks")
	}
	sp := sequencePair{pos: identity(len(blocks)), neg: identity(len(blocks))}
	return anneal(blocks, nets, sp, p, nil)
}

// FloorplanWithInitial behaves like Floorplan but seeds the annealer with a
// sequence pair derived from the given initial block positions, so that the
// search starts from (and, in constrained mode, largely preserves) an
// existing placement. This is how the constrained standard-floorplanner
// baseline of the paper is fed "the core and switch positions as an input
// solution".
func FloorplanWithInitial(blocks []Block, nets []Net, initial []geom.Point, p Params) (*Result, error) {
	if len(initial) != len(blocks) {
		return nil, fmt.Errorf("floorplan: %d initial positions for %d blocks", len(initial), len(blocks))
	}
	sp := sequencePairFromPlacement(blocks, initial)
	return anneal(blocks, nets, sp, p, initial)
}

// sequencePairFromPlacement derives a sequence pair consistent with the given
// placement: blocks further left or higher come earlier in the positive
// sequence, blocks further left or lower come earlier in the negative
// sequence. For a legal (non-overlapping) placement this reproduces the
// relative ordering of the blocks.
func sequencePairFromPlacement(blocks []Block, pos []geom.Point) sequencePair {
	n := len(blocks)
	idx := identity(n)
	posSeq := append([]int(nil), idx...)
	negSeq := append([]int(nil), idx...)
	center := func(i int) (float64, float64) {
		return pos[i].X + blocks[i].W/2, pos[i].Y + blocks[i].H/2
	}
	sortBy(posSeq, func(a, b int) bool {
		xa, ya := center(a)
		xb, yb := center(b)
		if xa-ya != xb-yb {
			return xa-ya < xb-yb
		}
		return a < b
	})
	sortBy(negSeq, func(a, b int) bool {
		xa, ya := center(a)
		xb, yb := center(b)
		if xa+ya != xb+yb {
			return xa+ya < xb+yb
		}
		return a < b
	})
	return sequencePair{pos: posSeq, neg: negSeq}
}

func sortBy(ids []int, less func(a, b int) bool) {
	// Insertion sort keeps the dependency footprint small and is plenty fast
	// for the block counts in this domain.
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && less(ids[j], ids[j-1]); j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

// anneal runs the simulated-annealing loop from the given starting sequence
// pair. When initial is non-nil, Fixed blocks are additionally penalised for
// drifting away from their initial positions (see Params.DisplacementWeight).
func anneal(blocks []Block, nets []Net, sp sequencePair, p Params, initial []geom.Point) (*Result, error) {
	n := len(blocks)
	if n == 0 {
		return nil, fmt.Errorf("floorplan: no blocks")
	}
	for i, b := range blocks {
		if b.W <= 0 || b.H <= 0 {
			return nil, fmt.Errorf("floorplan: block %d (%s) has non-positive size", i, b.Name)
		}
	}
	for _, nt := range nets {
		if nt.A < 0 || nt.A >= n || nt.B < 0 || nt.B >= n {
			return nil, fmt.Errorf("floorplan: net references block out of range")
		}
	}
	rng := rand.New(rand.NewSource(p.Seed))

	cur := evaluate(blocks, nets, sp, p, initial)
	best := cur
	bestSP := sp.clone()

	movable := movableIndices(blocks, p.Constrained)
	if len(movable) == 0 {
		// Nothing to optimise: just pack and return.
		res := pack(blocks, nets, sp)
		return res, nil
	}

	temp := p.InitialTemp
	for step := 0; step < p.TemperatureSteps; step++ {
		for it := 0; it < p.Iterations; it++ {
			cand := sp.clone()
			mutate(&cand, movable, rng)
			c := evaluate(blocks, nets, cand, p, initial)
			accept := c < cur
			if !accept && temp > 0 {
				delta := (c - cur) / math.Max(cur, 1e-9)
				accept = rng.Float64() < math.Exp(-delta/temp)
			}
			if accept {
				sp, cur = cand, c
				if c < best {
					best, bestSP = c, cand.clone()
				}
			}
		}
		temp *= p.CoolingFactor
	}
	return pack(blocks, nets, bestSP), nil
}

func identity(n int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	return ids
}

func movableIndices(blocks []Block, constrained bool) []int {
	var out []int
	for i, b := range blocks {
		if !constrained || !b.Fixed {
			out = append(out, i)
		}
	}
	return out
}

// mutate applies one of the standard sequence-pair moves, restricted to
// movable blocks: swap two blocks in the positive sequence, in the negative
// sequence, or in both.
func mutate(sp *sequencePair, movable []int, rng *rand.Rand) {
	if len(movable) < 2 {
		return
	}
	a := movable[rng.Intn(len(movable))]
	b := movable[rng.Intn(len(movable))]
	if a == b {
		return
	}
	switch rng.Intn(3) {
	case 0:
		swapValues(sp.pos, a, b)
	case 1:
		swapValues(sp.neg, a, b)
	default:
		swapValues(sp.pos, a, b)
		swapValues(sp.neg, a, b)
	}
}

// swapValues swaps the positions of values a and b within the permutation.
func swapValues(perm []int, a, b int) {
	ia, ib := -1, -1
	for i, v := range perm {
		if v == a {
			ia = i
		}
		if v == b {
			ib = i
		}
	}
	if ia >= 0 && ib >= 0 {
		perm[ia], perm[ib] = perm[ib], perm[ia]
	}
}

// evaluate returns the scalar annealing cost of a sequence pair.
func evaluate(blocks []Block, nets []Net, sp sequencePair, p Params, initial []geom.Point) float64 {
	res := pack(blocks, nets, sp)
	cost := p.AreaWeight*res.AreaMM2 + p.WireWeight*res.WireLengthMM
	if p.DisplacementWeight > 0 && initial != nil {
		for i, b := range blocks {
			if b.Fixed && i < len(initial) {
				cost += p.DisplacementWeight * geom.Manhattan(res.Positions[i], initial[i])
			}
		}
	}
	return cost
}

// pack converts a sequence pair to physical positions with the longest-path
// method and computes area and wirelength.
func pack(blocks []Block, nets []Net, sp sequencePair) *Result {
	n := len(blocks)
	// rank of each block in both sequences
	rp := make([]int, n)
	rn := make([]int, n)
	for i, v := range sp.pos {
		rp[v] = i
	}
	for i, v := range sp.neg {
		rn[v] = i
	}
	x := make([]float64, n)
	y := make([]float64, n)
	// Longest path in the horizontal constraint graph: a left-of b iff
	// rp[a]<rp[b] && rn[a]<rn[b]. Process blocks in positive-sequence order.
	for _, b := range sp.pos {
		for _, a := range sp.pos {
			if a == b {
				break
			}
			if rp[a] < rp[b] && rn[a] < rn[b] { // a left of b
				if v := x[a] + blocks[a].W; v > x[b] {
					x[b] = v
				}
			}
		}
	}
	// Vertical: a below b iff rp[a]>rp[b] && rn[a]<rn[b].
	for _, b := range sp.neg {
		for _, a := range sp.neg {
			if a == b {
				break
			}
			if rp[a] > rp[b] && rn[a] < rn[b] { // a below b
				if v := y[a] + blocks[a].H; v > y[b] {
					y[b] = v
				}
			}
		}
	}
	res := &Result{Positions: make([]geom.Point, n)}
	var maxX, maxY float64
	for i := range blocks {
		res.Positions[i] = geom.Point{X: x[i], Y: y[i]}
		if v := x[i] + blocks[i].W; v > maxX {
			maxX = v
		}
		if v := y[i] + blocks[i].H; v > maxY {
			maxY = v
		}
	}
	res.BoundingBox = geom.Rect{X: 0, Y: 0, W: maxX, H: maxY}
	res.AreaMM2 = maxX * maxY
	for _, nt := range nets {
		ca := geom.Point{X: x[nt.A] + blocks[nt.A].W/2, Y: y[nt.A] + blocks[nt.A].H/2}
		cb := geom.Point{X: x[nt.B] + blocks[nt.B].W/2, Y: y[nt.B] + blocks[nt.B].H/2}
		res.WireLengthMM += nt.Weight * geom.Manhattan(ca, cb)
	}
	return res
}
