package floorplan

import (
	"math"
	"testing"

	"sunfloor3d/internal/geom"
)

func squareBlocks(n int, side float64) []Block {
	blocks := make([]Block, n)
	for i := range blocks {
		blocks[i] = Block{Name: blockName(i), W: side, H: side}
	}
	return blocks
}

func blockName(i int) string { return "b" + string(rune('0'+i%10)) + string(rune('a'+i/10)) }

func noOverlaps(t *testing.T, blocks []Block, res *Result) {
	t.Helper()
	for i := 0; i < len(blocks); i++ {
		for j := i + 1; j < len(blocks); j++ {
			ri := res.Rect(blocks, i)
			rj := res.Rect(blocks, j)
			if ri.Overlaps(rj) {
				t.Fatalf("blocks %d and %d overlap: %v vs %v", i, j, ri, rj)
			}
		}
	}
}

func TestFloorplanLegalAndTight(t *testing.T) {
	blocks := squareBlocks(9, 1)
	res, err := Floorplan(blocks, nil, DefaultParams(1))
	if err != nil {
		t.Fatalf("Floorplan: %v", err)
	}
	noOverlaps(t, blocks, res)
	// Total block area is 9; a decent floorplan of nine unit squares should
	// stay well under 2x dead space.
	if res.AreaMM2 < 9 {
		t.Fatalf("area %v below total block area", res.AreaMM2)
	}
	if res.AreaMM2 > 18 {
		t.Errorf("area %v too loose for 9 unit squares", res.AreaMM2)
	}
	if res.BoundingBox.Area() != res.AreaMM2 {
		t.Error("bounding box and area disagree")
	}
}

func TestFloorplanErrors(t *testing.T) {
	if _, err := Floorplan(nil, nil, DefaultParams(1)); err == nil {
		t.Error("empty block list should fail")
	}
	if _, err := Floorplan([]Block{{Name: "z", W: 0, H: 1}}, nil, DefaultParams(1)); err == nil {
		t.Error("zero-size block should fail")
	}
	blocks := squareBlocks(2, 1)
	if _, err := Floorplan(blocks, []Net{{A: 0, B: 7, Weight: 1}}, DefaultParams(1)); err == nil {
		t.Error("net out of range should fail")
	}
	if _, err := FloorplanWithInitial(blocks, nil, []geom.Point{{X: 0, Y: 0}}, DefaultParams(1)); err == nil {
		t.Error("initial position count mismatch should fail")
	}
}

func TestWireWeightPullsConnectedBlocksTogether(t *testing.T) {
	// 8 blocks; a heavy net between blocks 0 and 7. With wire weight the two
	// should end up closer than the farthest possible distance.
	blocks := squareBlocks(8, 1)
	nets := []Net{{A: 0, B: 7, Weight: 50}}
	p := DefaultParams(3)
	p.WireWeight = 2.0
	res, err := Floorplan(blocks, nets, p)
	if err != nil {
		t.Fatal(err)
	}
	noOverlaps(t, blocks, res)
	c0 := res.Rect(blocks, 0).Center()
	c7 := res.Rect(blocks, 7).Center()
	d := geom.Manhattan(c0, c7)
	// Spread over a ~3x3 area the maximum centre distance would approach 6;
	// connected blocks should be much closer.
	if d > 3 {
		t.Errorf("connected blocks %v apart, expected them pulled together", d)
	}
	if res.WireLengthMM <= 0 {
		t.Error("wirelength should be positive")
	}
}

func TestDeterminism(t *testing.T) {
	blocks := squareBlocks(10, 1)
	nets := []Net{{A: 0, B: 9, Weight: 5}, {A: 2, B: 3, Weight: 1}}
	a, err := Floorplan(blocks, nets, DefaultParams(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Floorplan(blocks, nets, DefaultParams(42))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Positions {
		if a.Positions[i] != b.Positions[i] {
			t.Fatalf("same seed produced different placements at block %d", i)
		}
	}
	c, err := Floorplan(blocks, nets, DefaultParams(43))
	if err != nil {
		t.Fatal(err)
	}
	_ = c // different seed may or may not differ; only determinism per seed matters
}

func TestMixedBlockSizes(t *testing.T) {
	blocks := []Block{
		{Name: "big", W: 4, H: 3},
		{Name: "tall", W: 1, H: 5},
		{Name: "small1", W: 1, H: 1},
		{Name: "small2", W: 1.5, H: 1},
		{Name: "wide", W: 5, H: 1},
	}
	res, err := Floorplan(blocks, nil, DefaultParams(7))
	if err != nil {
		t.Fatal(err)
	}
	noOverlaps(t, blocks, res)
	total := 0.0
	for _, b := range blocks {
		total += b.W * b.H
	}
	if res.AreaMM2 < total {
		t.Errorf("area %v below block area %v", res.AreaMM2, total)
	}
	if res.AreaMM2 > 3*total {
		t.Errorf("area %v very loose (blocks %v)", res.AreaMM2, total)
	}
}

func TestConstrainedModePreservesCoreOrder(t *testing.T) {
	// Four fixed cores in a 2x2 arrangement plus two movable switches. In
	// constrained mode the cores' relative left/right and above/below
	// relations must be the same after floorplanning.
	blocks := []Block{
		{Name: "c00", W: 2, H: 2, Fixed: true},
		{Name: "c10", W: 2, H: 2, Fixed: true},
		{Name: "c01", W: 2, H: 2, Fixed: true},
		{Name: "c11", W: 2, H: 2, Fixed: true},
		{Name: "sw0", W: 0.5, H: 0.5},
		{Name: "sw1", W: 0.5, H: 0.5},
	}
	initial := []geom.Point{
		{X: 0, Y: 0}, {X: 2.2, Y: 0}, {X: 0, Y: 2.2}, {X: 2.2, Y: 2.2},
		{X: 1, Y: 1}, {X: 3, Y: 3},
	}
	nets := []Net{{A: 4, B: 0, Weight: 10}, {A: 4, B: 1, Weight: 10}, {A: 5, B: 3, Weight: 10}}
	p := DefaultParams(11)
	p.Constrained = true
	res, err := FloorplanWithInitial(blocks, nets, initial, p)
	if err != nil {
		t.Fatal(err)
	}
	noOverlaps(t, blocks, res)
	// Relative order of the cores must match the input: c00 left of c10,
	// c00 below c01, c10 below c11, c01 left of c11.
	c := func(i int) geom.Point { return res.Rect(blocks, i).Center() }
	if !(c(0).X < c(1).X) {
		t.Errorf("c00 no longer left of c10: %v vs %v", c(0), c(1))
	}
	if !(c(2).X < c(3).X) {
		t.Errorf("c01 no longer left of c11: %v vs %v", c(2), c(3))
	}
	if !(c(0).Y < c(2).Y) {
		t.Errorf("c00 no longer below c01: %v vs %v", c(0), c(2))
	}
	if !(c(1).Y < c(3).Y) {
		t.Errorf("c10 no longer below c11: %v vs %v", c(1), c(3))
	}
}

func TestConstrainedAllFixed(t *testing.T) {
	blocks := []Block{
		{Name: "a", W: 1, H: 1, Fixed: true},
		{Name: "b", W: 1, H: 1, Fixed: true},
	}
	initial := []geom.Point{{X: 0, Y: 0}, {X: 1.5, Y: 0}}
	p := DefaultParams(5)
	p.Constrained = true
	res, err := FloorplanWithInitial(blocks, nil, initial, p)
	if err != nil {
		t.Fatal(err)
	}
	noOverlaps(t, blocks, res)
	// a must remain left of b.
	if !(res.Positions[0].X < res.Positions[1].X) {
		t.Errorf("fixed order changed: %v", res.Positions)
	}
}

func TestUnconstrainedBeatsOrMatchesConstrainedArea(t *testing.T) {
	// Given freedom to swap everything, the annealer should find an area at
	// least as good as the constrained run on the same input. This mirrors
	// the paper's observation that the constrained standard floorplanner is
	// handicapped.
	blocks := []Block{
		{Name: "a", W: 3, H: 1, Fixed: true},
		{Name: "b", W: 1, H: 3, Fixed: true},
		{Name: "c", W: 2, H: 2, Fixed: true},
		{Name: "d", W: 1, H: 1, Fixed: true},
		{Name: "sw", W: 0.6, H: 0.6},
	}
	initial := []geom.Point{{X: 0, Y: 0}, {X: 3.5, Y: 0}, {X: 0, Y: 1.5}, {X: 3.5, Y: 3.5}, {X: 2.5, Y: 2.5}}
	pc := DefaultParams(9)
	pc.Constrained = true
	con, err := FloorplanWithInitial(blocks, nil, initial, pc)
	if err != nil {
		t.Fatal(err)
	}
	pu := DefaultParams(9)
	unc, err := FloorplanWithInitial(blocks, nil, initial, pu)
	if err != nil {
		t.Fatal(err)
	}
	if unc.AreaMM2 > con.AreaMM2*1.2 {
		t.Errorf("unconstrained area %v much worse than constrained %v", unc.AreaMM2, con.AreaMM2)
	}
}

func TestDisplacementWeightKeepsFixedBlocksNearInitial(t *testing.T) {
	// Four fixed cores placed with deliberate whitespace plus one movable
	// switch. With a strong displacement penalty the fixed blocks should end
	// up closer to their initial positions than without it.
	blocks := []Block{
		{Name: "c0", W: 2, H: 2, Fixed: true},
		{Name: "c1", W: 2, H: 2, Fixed: true},
		{Name: "c2", W: 2, H: 2, Fixed: true},
		{Name: "c3", W: 2, H: 2, Fixed: true},
		{Name: "sw", W: 0.5, H: 0.5},
	}
	initial := []geom.Point{
		{X: 1, Y: 1}, {X: 4, Y: 1}, {X: 1, Y: 4}, {X: 4, Y: 4}, {X: 3, Y: 3},
	}
	drift := func(weight float64) float64 {
		p := DefaultParams(21)
		p.Constrained = true
		p.DisplacementWeight = weight
		res, err := FloorplanWithInitial(blocks, nil, initial, p)
		if err != nil {
			t.Fatal(err)
		}
		var d float64
		for i, b := range blocks {
			if b.Fixed {
				d += geom.Manhattan(res.Positions[i], initial[i])
			}
		}
		return d
	}
	free := drift(0)
	held := drift(50)
	if held > free+1e-9 {
		t.Errorf("displacement penalty increased drift: %v (penalised) vs %v (free)", held, free)
	}
}

func TestPackingMatchesSequencePairSemantics(t *testing.T) {
	// Two unit blocks with identity sequence pair: block 0 must be left of
	// block 1 and both at y=0.
	blocks := squareBlocks(2, 1)
	res := pack(blocks, nil, sequencePair{pos: []int{0, 1}, neg: []int{0, 1}})
	if res.Positions[0].X != 0 || res.Positions[1].X != 1 {
		t.Errorf("positions = %v", res.Positions)
	}
	if res.Positions[0].Y != 0 || res.Positions[1].Y != 0 {
		t.Errorf("positions = %v", res.Positions)
	}
	// Reversed in pos only: 0 below 1.
	res = pack(blocks, nil, sequencePair{pos: []int{1, 0}, neg: []int{0, 1}})
	if res.Positions[0].Y != 0 || res.Positions[1].Y != 1 {
		t.Errorf("below/above packing wrong: %v", res.Positions)
	}
	if math.Abs(res.AreaMM2-1*2) > 1e-9 {
		t.Errorf("area = %v, want 2", res.AreaMM2)
	}
}

func TestSequencePairFromPlacementRoundTrip(t *testing.T) {
	// A legal 2x2 grid placement must be reproduced (up to compaction) by the
	// derived sequence pair.
	blocks := squareBlocks(4, 1)
	initial := []geom.Point{{X: 0, Y: 0}, {X: 1.2, Y: 0}, {X: 0, Y: 1.2}, {X: 1.2, Y: 1.2}}
	sp := sequencePairFromPlacement(blocks, initial)
	res := pack(blocks, nil, sp)
	// Relative order preserved: block1 right of block0, block2 above block0.
	if !(res.Positions[1].X > res.Positions[0].X) {
		t.Errorf("block1 not right of block0: %v", res.Positions)
	}
	if !(res.Positions[2].Y > res.Positions[0].Y) {
		t.Errorf("block2 not above block0: %v", res.Positions)
	}
	if !(res.Positions[3].X > res.Positions[2].X && res.Positions[3].Y > res.Positions[1].Y) {
		t.Errorf("block3 not top-right: %v", res.Positions)
	}
	noOverlaps(t, blocks, &Result{Positions: res.Positions})
}
