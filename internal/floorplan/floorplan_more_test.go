package floorplan

// Additional annealer tests: validation through the seeded entry point and
// behaviour of the displacement-penalised constrained mode on rectangular
// (non-square) block mixes.

import (
	"testing"

	"sunfloor3d/internal/geom"
)

// TestFloorplanWithInitialValidation covers the validation paths of the
// seeded entry point, which shares the annealer with Floorplan but performs
// its own argument checking first.
func TestFloorplanWithInitialValidation(t *testing.T) {
	blocks := squareBlocks(3, 1)
	good := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 0}}
	if _, err := FloorplanWithInitial(blocks, nil, good[:2], DefaultParams(1)); err == nil {
		t.Error("length mismatch between blocks and initial positions should fail")
	}
	if _, err := FloorplanWithInitial(nil, nil, nil, DefaultParams(1)); err == nil {
		t.Error("empty block list should fail")
	}
	bad := squareBlocks(3, 1)
	bad[1].W = 0
	if _, err := FloorplanWithInitial(bad, nil, good, DefaultParams(1)); err == nil {
		t.Error("non-positive block size should fail")
	}
	if _, err := FloorplanWithInitial(blocks, []Net{{A: 0, B: 7, Weight: 1}}, good, DefaultParams(1)); err == nil {
		t.Error("net referencing a missing block should fail")
	}
	res, err := FloorplanWithInitial(blocks, nil, good, DefaultParams(1))
	if err != nil {
		t.Fatalf("valid seeded floorplan failed: %v", err)
	}
	noOverlaps(t, blocks, res)
}

// TestSeededRunIsDeterministic checks that the seeded entry point is as
// reproducible as the unseeded one: identical inputs give identical packings.
func TestSeededRunIsDeterministic(t *testing.T) {
	blocks := []Block{
		{Name: "wide", W: 4, H: 1},
		{Name: "tall", W: 1, H: 4, Fixed: true},
		{Name: "sq1", W: 2, H: 2},
		{Name: "sq2", W: 2, H: 2, Fixed: true},
		{Name: "tiny", W: 0.5, H: 0.5},
	}
	initial := []geom.Point{{X: 0, Y: 0}, {X: 4, Y: 0}, {X: 5, Y: 0}, {X: 0, Y: 2}, {X: 7, Y: 0}}
	p := DefaultParams(11)
	p.Constrained = true
	p.DisplacementWeight = 0.5
	a, err := FloorplanWithInitial(blocks, []Net{{A: 0, B: 4, Weight: 2}}, initial, p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FloorplanWithInitial(blocks, []Net{{A: 0, B: 4, Weight: 2}}, initial, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Positions {
		if a.Positions[i] != b.Positions[i] {
			t.Fatalf("block %d placed at %v then %v with identical inputs", i, a.Positions[i], b.Positions[i])
		}
	}
	noOverlaps(t, blocks, a)
	if a.AreaMM2 != a.BoundingBox.Area() {
		t.Errorf("area %g disagrees with bounding box %v", a.AreaMM2, a.BoundingBox)
	}
}
