package synth

import (
	"fmt"
	"time"

	"sunfloor3d/internal/sim"
)

// triageSimBand is the simulation step of the fidelity ladder. With
// Options.SimBand active, evaluation attaches only the analytic contention
// estimate to valid points; this pass cuts the estimated Pareto band over
// pts and runs the flit-level simulator on the band members alone. Points
// outside the band are marked SimTriage "skip" and keep their estimate;
// band members are marked "sim" and gain DesignPoint.Sim (a simulation
// failure invalidates the point exactly as it would on the inline path).
//
// Band membership is margin-dominance on (power, estimated latency): a
// point is skipped only when some other valid point is no worse in both
// coordinates, strictly better in one, and clear of it by at least the
// SimBand margin in one. The margin respects where the estimate can
// actually be wrong. Power is computed exactly, so its margin is the plain
// (1+SimBand) factor. Estimated latency is the exact zero-load latency
// plus the M/D/1 waiting estimate, and only the waiting part carries
// estimator error — so the latency margin inflates the dominator's wait by
// (1+SimBand) and deflates the dominated point's by 1/(1+SimBand) and asks
// whether the dominator still wins. At low load (waits near zero) that
// degenerates to the exact zero-load comparison and skips aggressively; at
// saturation (waits dominating) it demands a wide gap and keeps the point.
// Every point on the estimated Pareto front is always simulated — a skip
// needs a plain dominator, which a front point by definition lacks — and
// so is every near-tie within the margins. Widening SimBand only moves
// points from "skip" to "sim". The decision depends only on the set of
// valid points, never on evaluation order, so serial, parallel,
// checkpointed and sharded runs triage identically. Points whose SimTriage
// is already set (restored from a checkpoint) are left untouched.
func triageSimBand(pts []DesignPoint, opt Options, p *pool) error {
	if opt.SimBand == 0 {
		return nil
	}
	var valid []int
	for i := range pts {
		if pts[i].Valid && pts[i].SimTriage == "" && pts[i].Contention != nil {
			valid = append(valid, i)
		}
	}
	var band, skipped []int
	frac := opt.SimBand
	// wait is the estimated contention component of a point's latency: the
	// part the M/D/1 model guessed, and the only part the band needs to
	// hedge against.
	wait := func(i int) float64 {
		w := pts[i].Contention.AvgLatencyCycles - pts[i].Metrics.AvgLatencyCycles
		if w < 0 {
			return 0
		}
		return w
	}
	for _, i := range valid {
		pi := pts[i].Metrics.Power.TotalMW()
		li := pts[i].Contention.AvgLatencyCycles
		zi := pts[i].Metrics.AvgLatencyCycles
		wi := wait(i)
		dominated := false
		for _, j := range valid {
			if j == i {
				continue
			}
			pj := pts[j].Metrics.Power.TotalMW()
			lj := pts[j].Contention.AvgLatencyCycles
			if !(pj <= pi && lj <= li && (pj < pi || lj < li)) {
				continue
			}
			zj := pts[j].Metrics.AvgLatencyCycles
			if pj*(1+frac) <= pi ||
				zj+(1+frac)*wait(j) <= zi+wi/(1+frac) {
				dominated = true
				break
			}
		}
		if dominated {
			skipped = append(skipped, i)
		} else {
			band = append(band, i)
		}
	}

	// Skipped points still count toward progress: each one is a triage
	// decision the caller can observe, carrying SimTriage "skip".
	p.addTotal(len(skipped))
	for _, i := range skipped {
		pts[i].SimTriage = "skip"
		p.emit(pts[i])
	}

	sims := make([]DesignPoint, len(band))
	err := p.forEach(len(band),
		func(k int) DesignPoint {
			dp := pts[band[k]]
			dp.SimTriage = "sim"
			simStart := time.Now() //determlint:wallclock SimElapsed is json-excluded observability plumbing and never reaches the serialised Result
			stats, err := sim.Run(dp.Topology, *opt.Sim)
			if err != nil {
				dp.Valid = false
				dp.FailReason = fmt.Sprintf("simulation failed: %v", err)
				return dp
			}
			dp.Sim = stats
			dp.SimElapsed = time.Since(simStart) //determlint:wallclock SimElapsed is json-excluded observability plumbing and never reaches the serialised Result
			return dp
		},
		func(k int, dp DesignPoint) { sims[k] = dp })
	if err != nil {
		return err
	}
	for k, i := range band {
		pts[i] = sims[k]
	}
	return nil
}
