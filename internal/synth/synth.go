package synth

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"sunfloor3d/internal/contend"
	"sunfloor3d/internal/fault"
	"sunfloor3d/internal/graph"
	"sunfloor3d/internal/model"
	"sunfloor3d/internal/partition"
	"sunfloor3d/internal/place"
	"sunfloor3d/internal/route"
	"sunfloor3d/internal/sim"
	"sunfloor3d/internal/topology"
)

// DesignPoint is one explored topology with its evaluation.
type DesignPoint struct {
	// Topology is the synthesized NoC (nil for invalid points).
	Topology *topology.Topology
	// Metrics is the evaluation of Topology.
	Metrics topology.Metrics
	// FreqMHz is the NoC operating frequency of this point.
	FreqMHz float64
	// SwitchCount is the number of switches requested by the sweep (the
	// actual topology may contain more if indirect switches were inserted).
	SwitchCount int
	// Phase is 1 or 2 depending on which connectivity method produced it.
	Phase int
	// Theta is the SPG scaling factor used (0 when the plain PG sufficed).
	Theta float64
	// Valid reports whether the point meets all constraints.
	Valid bool
	// Pruned reports that the design-space explorer proved the point cannot
	// beat an already-explored point and skipped building it: the point is a
	// stub (Valid false, Phase 0, no Topology) whose FailReason names the
	// pruning decision. Pruning is exact — a pruned run's Pareto front and
	// best point are byte-identical to the exhaustive run's.
	Pruned bool
	// FailReason explains why an invalid point was rejected (or, for Pruned
	// and shard-skipped stubs, why it was not built).
	FailReason string
	// Route reports what the path-computation step did for this point
	// (deterministic given the topology, so identical between serial,
	// parallel, cached and uncached runs).
	Route route.Result
	// Sim holds the flit-level traffic simulation of the point (nil unless
	// Options.Sim requested simulation and the point is valid).
	Sim *sim.Stats
	// Contention holds the analytic M/D/1 contention estimate of the point
	// (nil unless Options.Contend is set and the point is valid).
	Contention *contend.Estimate
	// SimTriage records the fidelity-ladder decision for the point when
	// Options.SimBand is active: "sim" for points inside the estimated
	// Pareto band (fully simulated), "skip" for points outside it (analytic
	// estimate only). Empty without SimBand.
	SimTriage string
	// Survivability holds the fault-replay report of the point (nil unless
	// Options.Fault requested the fault model and the point is valid).
	Survivability *fault.Survivability
	// SimElapsed is the wall-clock time spent simulating the point (zero
	// when simulation was not requested or the point was invalid). It is
	// part of Elapsed.
	SimElapsed time.Duration
	// Elapsed is the wall-clock time spent building, routing and evaluating
	// this point.
	Elapsed time.Duration
}

// Cost returns the scalar objective of the point under the given weights.
func (d DesignPoint) Cost(powerWeight, latencyWeight float64) float64 {
	return powerWeight*d.Metrics.Power.TotalMW() + latencyWeight*d.Metrics.AvgLatencyCycles
}

// Result is the outcome of a synthesis run.
type Result struct {
	// Points holds every explored design point (valid and invalid), ordered
	// by frequency then switch count.
	Points []DesignPoint
	// Best is the valid point with the lowest objective, or nil when no valid
	// point exists.
	Best *DesignPoint
	// Cache reports the partition-cache activity of the run.
	Cache CacheStats
}

// ValidPoints returns only the valid design points.
func (r *Result) ValidPoints() []DesignPoint {
	var out []DesignPoint
	for _, p := range r.Points {
		if p.Valid {
			out = append(out, p)
		}
	}
	return out
}

// ParetoFront returns the valid points that are not dominated in
// (power, latency) by any other valid point, sorted by power.
func (r *Result) ParetoFront() []DesignPoint {
	valid := r.ValidPoints()
	power := make([]float64, len(valid))
	latency := make([]float64, len(valid))
	for i, p := range valid {
		power[i] = p.Metrics.Power.TotalMW()
		latency[i] = p.Metrics.AvgLatencyCycles
	}
	idx := ParetoIndices(power, latency)
	front := make([]DesignPoint, len(idx))
	for i, j := range idx {
		front[i] = valid[j]
	}
	return front
}

// ParetoIndices returns the indices of the points that are not dominated in
// (power, latency) by any other point, sorted by ascending power, keeping one
// representative (the lowest index) per distinct (power, latency) pair. The
// inputs are parallel slices. The scan is the standard sort-based O(n log n)
// Pareto sweep: after ordering by (power, latency, index), a point is on the
// front exactly when its latency strictly improves on everything before it.
func ParetoIndices(power, latency []float64) []int {
	n := len(power)
	if n == 0 {
		return nil
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		i, j := order[a], order[b]
		if power[i] != power[j] {
			return power[i] < power[j]
		}
		if latency[i] != latency[j] {
			return latency[i] < latency[j]
		}
		return i < j
	})
	var front []int
	bestLatency := math.Inf(1)
	for _, i := range order {
		if latency[i] < bestLatency {
			front = append(front, i)
			bestLatency = latency[i]
		}
	}
	return front
}

// Synthesize runs the full SunFloor 3D flow on the design and returns all
// explored design points plus the best one. It is SynthesizeContext with a
// background context.
func Synthesize(g *model.CommGraph, opt Options) (*Result, error) {
	return SynthesizeContext(context.Background(), g, opt)
}

// SynthesizeContext runs the full SunFloor 3D flow on the design under the
// given context. The frequency x switch-count sweep is decomposed into
// independent design-point evaluations executed on a bounded worker pool
// (Options.Parallelism wide); the ordering of Result.Points is deterministic
// and identical between serial and parallel runs. Cancelling the context
// stops the sweep promptly — points not yet started are abandoned — and
// returns the context's error.
func SynthesizeContext(ctx context.Context, g *model.CommGraph, opt Options) (*Result, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if g.NumCores() == 0 {
		return nil, fmt.Errorf("synth: design has no cores")
	}
	if g.NumFlows() == 0 {
		return nil, fmt.Errorf("synth: design has no communication flows")
	}

	p := newPool(ctx, opt)
	// The deferred close deregisters the run from its (possibly shared)
	// scheduler only after every stage has joined its workers, so a cancelled
	// run drains all in-flight evaluations before SynthesizeContext returns
	// and never leaks a goroutine or an evaluation slot.
	defer p.close()
	cache := newPartitionCache(g, opt.Partition, !opt.DisablePartitionCache)
	if opt.Space != nil {
		return exploreSpace(ctx, g, opt, cache, p)
	}
	perFreq := make([][]DesignPoint, len(opt.FrequenciesMHz))
	errs := make([]error, len(opt.FrequenciesMHz))
	if p.serial {
		// Serial reference path: one frequency after the other.
		for fi, freq := range opt.FrequenciesMHz {
			perFreq[fi], errs[fi] = synthesizeAtFrequency(g, opt, freq, cache, p)
			if errs[fi] != nil {
				break
			}
		}
	} else {
		// Each frequency sweep progresses independently; the pool bounds the
		// number of points in flight across all of them.
		var wg sync.WaitGroup
		for fi, freq := range opt.FrequenciesMHz {
			wg.Add(1)
			go func(fi int, freq float64) {
				defer wg.Done()
				perFreq[fi], errs[fi] = synthesizeAtFrequency(g, opt, freq, cache, p)
			}(fi, freq)
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	res := &Result{}
	for _, pts := range perFreq {
		res.Points = append(res.Points, pts...)
	}
	// Fidelity ladder: with SimBand active, evaluation above attached only
	// the analytic estimate; cut the band over the whole sweep and simulate
	// just the points inside it. (Explorer runs triage per cell instead, in
	// exploreSpace, so checkpointed cells are final.)
	if err := triageSimBand(res.Points, opt, p); err != nil {
		return nil, err
	}
	res.Best = pickBest(res.Points, opt)
	if opt.LPOnBest && !opt.RunLPPlacement {
		refineBest(res, opt, place.OptimizeSwitchPositions)
	}
	res.Cache = cache.stats()
	return res, nil
}

// refineBest applies the switch-placement refinement to the winning design
// point. The refined topology is re-evaluated and re-checked against every
// constraint, and it replaces the best point only when it is still valid and
// does not worsen the objective; otherwise the unrefined point — which was
// already the minimum over all valid points — is kept, so Best never silently
// ships a refinement that broke a constraint or lost to another point.
func refineBest(res *Result, opt Options, refine func(*topology.Topology) error) {
	best := res.Best
	if best == nil || best.Topology == nil {
		return
	}
	refined := best.Topology.Clone()
	if err := refine(refined); err != nil {
		return
	}
	m := refined.Evaluate()
	if reason := validateTopology(refined, opt, m, best.FreqMHz); reason != "" {
		return
	}
	cost := opt.PowerWeight*m.Power.TotalMW() + opt.LatencyWeight*m.AvgLatencyCycles
	if cost > best.Cost(opt.PowerWeight, opt.LatencyWeight) {
		return
	}
	if opt.Sim != nil && (opt.SimBand == 0 || best.SimTriage == "sim") {
		// The refinement moved the switches, which changes link pipeline
		// depths; the attached simulation must describe the refined geometry.
		// Points the fidelity ladder triaged out stay unsimulated.
		simStart := time.Now() //determlint:wallclock SimElapsed is json-excluded observability plumbing and never reaches the serialised Result
		stats, err := sim.Run(refined, *opt.Sim)
		if err != nil {
			return
		}
		best.Sim = stats
		best.SimElapsed = time.Since(simStart) //determlint:wallclock SimElapsed is json-excluded observability plumbing and never reaches the serialised Result
	}
	if opt.Sparing != nil || opt.Fault != nil {
		// The refinement moved the switches, which changes the latency
		// baseline the survivability report inflates against; recompute it
		// for the refined geometry.
		rep, spareTSVs, err := faultReport(refined, opt, routeConfig(opt, best.FreqMHz, best.Phase == 2))
		if err != nil {
			return
		}
		best.Survivability = rep
		m.SpareTSVMacros = spareTSVs
	}
	if opt.Contend {
		// The estimate depends on the switch positions through the zero-load
		// latencies; recompute it for the accepted refined geometry.
		flits := 0
		if opt.Sim != nil {
			flits = opt.Sim.PacketFlits
		}
		best.Contention = contend.EstimatePoint(refined, flits)
	}
	best.Topology = refined
	best.Metrics = m
}

// pickBest returns a pointer to the best valid point in pts (the slice
// element itself, so later refinement updates the stored point too).
func pickBest(pts []DesignPoint, opt Options) *DesignPoint {
	bestIdx := -1
	bestCost := math.MaxFloat64
	for i, p := range pts {
		if !p.Valid {
			continue
		}
		c := p.Cost(opt.PowerWeight, opt.LatencyWeight)
		if c < bestCost {
			bestCost = c
			bestIdx = i
		}
	}
	if bestIdx < 0 {
		return nil
	}
	return &pts[bestIdx]
}

// timed runs one design-point build and stamps its wall-clock duration.
//
//determlint:wallclock Elapsed is json-excluded observability plumbing and never reaches the serialised Result
func timed(build func() DesignPoint) DesignPoint {
	start := time.Now()
	dp := build()
	dp.Elapsed = time.Since(start)
	return dp
}

// synthesizeAtFrequency explores all switch counts for one operating
// frequency, choosing Phase 1 / Phase 2 per the configured policy.
func synthesizeAtFrequency(g *model.CommGraph, opt Options, freq float64, cache *partitionCache, p *pool) ([]DesignPoint, error) {
	switch opt.Phase {
	case Phase2Only:
		return phase2Sweep(g, opt, freq, cache, p)
	case Phase1Only:
		return phase1Sweep(g, opt, freq, false, cache, p)
	default:
		// Auto: Phase 1 with Phase 2 as fallback for unmet switch counts.
		return phase1Sweep(g, opt, freq, true, cache, p)
	}
}

// phase1Sweep implements Algorithm 1. The initial sweep over switch counts
// and every theta retry round fan out onto the worker pool; the rounds
// themselves stay sequential because each one only re-attempts the counts the
// previous round left unmet. When fallbackPhase2 is set, switch counts that
// remain unmet after the theta sweep are retried with the layer-by-layer
// method.
func phase1Sweep(g *model.CommGraph, opt Options, freq float64, fallbackPhase2 bool, cache *partitionCache, p *pool) ([]DesignPoint, error) {
	// The explorer restricts the swept switch counts to an explicit list;
	// the classic sweep covers 1..NumCores. countOf maps a sweep slot to its
	// switch count, slotOf inverts it for the retry rounds (which track
	// counts, not slots).
	counts := opt.explCounts
	n := g.NumCores()
	if counts != nil {
		n = len(counts)
	}
	countOf := func(slot int) int {
		if counts == nil {
			return slot + 1
		}
		return counts[slot]
	}
	slotOf := func(count int) int {
		if counts == nil {
			return count - 1
		}
		for s, c := range counts {
			if c == count {
				return s
			}
		}
		return -1 // unreachable: retries only hold swept counts
	}
	pg := cache.pg(0)
	points := make([]DesignPoint, n)
	err := p.forEach(n,
		func(i int) DesignPoint {
			return timed(func() DesignPoint { return buildPhase1Point(g, opt, freq, cache, pg, countOf(i), 0) })
		},
		func(i int, dp DesignPoint) { points[i] = dp })
	if err != nil {
		return nil, err
	}
	var unmet []int
	for i := range points {
		// Pruned stubs are proven unable to reach the front or the best
		// point, so they are never retried by theta rescaling or the Phase-2
		// fallback either.
		if !points[i].Valid && !points[i].Pruned {
			unmet = append(unmet, countOf(i))
		}
	}

	// Theta scaling loop (steps 11-19 of Algorithm 1).
	if len(unmet) > 0 && g.NumLayers() > 1 {
		for _, theta := range opt.Partition.ThetaSweep() {
			if len(unmet) == 0 {
				break
			}
			spg := cache.pg(theta)
			retried := make([]DesignPoint, len(unmet))
			err := p.forEach(len(unmet),
				func(j int) DesignPoint {
					return timed(func() DesignPoint { return buildPhase1Point(g, opt, freq, cache, spg, unmet[j], theta) })
				},
				func(j int, dp DesignPoint) { retried[j] = dp })
			if err != nil {
				return nil, err
			}
			var still []int
			for j, dp := range retried {
				if dp.Valid {
					points[slotOf(unmet[j])] = dp
				} else {
					still = append(still, unmet[j])
				}
			}
			unmet = still
		}
	}

	// Optional Phase-2 fallback for counts that even the SPG could not fix.
	if fallbackPhase2 && len(unmet) > 0 && g.NumLayers() > 1 {
		p2, err := phase2Sweep(g, opt, freq, cache, p)
		if err != nil {
			return nil, err
		}
		for _, i := range unmet {
			// Find a valid Phase-2 point with a comparable total switch count.
			for _, dp := range p2 {
				if dp.Valid && dp.SwitchCount == i {
					points[slotOf(i)] = dp
					break
				}
			}
		}
	}
	return points, nil
}

// buildPhase1Point builds and evaluates one Phase-1 design point for the
// given switch count, fetching the core partition of pg (the PG for theta 0,
// the theta-scaled SPG otherwise) from the sweep-wide cache.
func buildPhase1Point(g *model.CommGraph, opt Options, freq float64, cache *partitionCache, pg *graph.Graph, switches int, theta float64) DesignPoint {
	// Branch and bound (explorer only): the bound is build-independent — a
	// function of the frequency and switch count alone — so a count pruned
	// here is pruned identically on the initial sweep, every theta retry and
	// the Phase-2 fallback, and phase1Sweep never retries it.
	if opt.explPrune != nil {
		if reason := opt.explPrune(switches); reason != "" {
			return DesignPoint{FreqMHz: freq, SwitchCount: switches, Pruned: true, FailReason: reason}
		}
	}
	dp := DesignPoint{FreqMHz: freq, SwitchCount: switches, Phase: 1, Theta: theta}
	assign := cache.coreAssignment(pg, theta, switches)
	blocks := graph.Blocks(assign, switches)

	top := topology.New(g, opt.Lib, freq)
	maxSwSize := opt.Lib.MaxSwitchSize(freq)
	for _, block := range blocks {
		var layer int
		if opt.SwitchLayer == LayerMajority {
			layer = partition.SwitchLayerMajority(g, block)
		} else {
			layer = partition.SwitchLayerFromBlock(g, block)
		}
		sw := top.AddSwitch(layer)
		for _, c := range block {
			top.AttachCore(c, sw)
		}
		// Pruning: a switch that already needs more core ports than the
		// frequency allows can never close timing.
		if len(block) > maxSwSize {
			dp.FailReason = fmt.Sprintf("switch with %d cores exceeds max switch size %d at %.0f MHz",
				len(block), maxSwSize, freq)
		}
	}
	if dp.FailReason != "" {
		dp.Topology = top
		return dp
	}
	top.EstimateSwitchPositions()

	// Pruning 3: check the inter-layer links needed just by the core
	// attachments before spending time on path computation.
	if opt.MaxILL > 0 && top.MaxInterLayerLinks() > opt.MaxILL {
		dp.Topology = top
		dp.FailReason = fmt.Sprintf("core attachments alone need %d inter-layer links (max %d)",
			top.MaxInterLayerLinks(), opt.MaxILL)
		return dp
	}
	return finishPoint(top, opt, freq, dp)
}

// phase2Sweep implements Algorithm 2: layer-by-layer core-to-switch
// connectivity with adjacent-layer-only vertical links. Every sweep step
// (number of extra switches per layer) is an independent design point
// evaluated on the worker pool.
func phase2Sweep(g *model.CommGraph, opt Options, freq float64, cache *partitionCache, p *pool) ([]DesignPoint, error) {
	lpgs, minPerLayer, maxExtra := phase2Plan(opt, freq, cache)
	points := make([]DesignPoint, maxExtra+1)
	err := p.forEach(maxExtra+1,
		func(i int) DesignPoint {
			return timed(func() DesignPoint { return buildPhase2Point(g, opt, freq, cache, lpgs, minPerLayer, i) })
		},
		func(i int, dp DesignPoint) { points[i] = dp })
	if err != nil {
		return nil, err
	}
	return points, nil
}

// phase2Plan computes the Phase-2 sweep prologue (steps 2-4 of Algorithm 2):
// the per-layer graphs, the minimum switches per layer, and the number of
// extra-switch steps to sweep. It is shared by phase2Sweep and by the
// explorer, which needs the sweep's point count (maxExtra+1) to shape the
// stubs of pruned and shard-skipped Phase-2 cells without building anything.
func phase2Plan(opt Options, freq float64, cache *partitionCache) (lpgs []partition.LPG, minPerLayer []int, maxExtra int) {
	lpgs = cache.layerGraphs()
	maxSwSize := opt.Lib.MaxSwitchSize(freq)

	minPerLayer = make([]int, len(lpgs))
	for j, l := range lpgs {
		n := len(l.Vertices)
		if n == 0 {
			minPerLayer[j] = 0
			continue
		}
		minPerLayer[j] = (n + maxSwSize - 1) / maxSwSize
		if extra := n - minPerLayer[j]; extra > maxExtra {
			maxExtra = extra
		}
	}
	if opt.MaxSwitchesPerLayer > 0 && maxExtra > opt.MaxSwitchesPerLayer {
		maxExtra = opt.MaxSwitchesPerLayer
	}
	return lpgs, minPerLayer, maxExtra
}

// buildPhase2Point builds and evaluates the Phase-2 design point with `extra`
// switches per layer beyond each layer's minimum.
func buildPhase2Point(g *model.CommGraph, opt Options, freq float64, cache *partitionCache, lpgs []partition.LPG, minPerLayer []int, extra int) DesignPoint {
	dp := DesignPoint{FreqMHz: freq, Phase: 2}
	top := topology.New(g, opt.Lib, freq)
	totalSwitches := 0
	for j, l := range lpgs {
		if len(l.Vertices) == 0 {
			continue
		}
		np := minPerLayer[j] + extra
		if np > len(l.Vertices) {
			np = len(l.Vertices)
		}
		if np < 1 {
			np = 1
		}
		assignment := cache.lpgAssignment(j, l, np)
		// Create one switch per block on this layer.
		swOf := make(map[int]int, np)
		for b := 0; b < np; b++ {
			swOf[b] = top.AddSwitch(l.Layer)
		}
		totalSwitches += np
		//determlint:ordered AttachCore writes CoreAttach[core] exactly once per distinct core; keyed writes commute, so attachment state is order-independent
		for core, block := range assignment {
			top.AttachCore(core, swOf[block])
		}
	}
	dp.SwitchCount = totalSwitches
	top.EstimateSwitchPositions()
	return finishPoint2(top, opt, freq, dp)
}

// finishPoint routes, optionally LP-places, evaluates and validates a Phase-1
// design point.
func finishPoint(top *topology.Topology, opt Options, freq float64, dp DesignPoint) DesignPoint {
	cfg := routeConfig(opt, freq, false)
	return runAndEvaluate(top, opt, cfg, dp)
}

// finishPoint2 does the same for a Phase-2 point (adjacent layers only).
func finishPoint2(top *topology.Topology, opt Options, freq float64, dp DesignPoint) DesignPoint {
	cfg := routeConfig(opt, freq, true)
	return runAndEvaluate(top, opt, cfg, dp)
}

func routeConfig(opt Options, freq float64, adjacentOnly bool) route.Config {
	cfg := route.DefaultConfig()
	cfg.MaxILL = opt.MaxILL
	cfg.SoftILLMargin = opt.SoftILLMargin
	cfg.MaxSwitchSize = opt.Lib.MaxSwitchSize(freq)
	cfg.AdjacentLayersOnly = adjacentOnly
	cfg.PowerWeight = opt.PowerWeight
	cfg.LatencyWeight = opt.LatencyWeight
	cfg.FullRebuild = opt.FullRebuildRouter
	return cfg
}

func runAndEvaluate(top *topology.Topology, opt Options, cfg route.Config, dp DesignPoint) DesignPoint {
	res, err := route.ComputePaths(top, cfg)
	dp.Topology = top
	if err != nil {
		dp.FailReason = err.Error()
		return dp
	}
	dp.Route = res
	if !res.Success() {
		dp.FailReason = fmt.Sprintf("%d flows could not be routed", len(res.Failed))
		return dp
	}
	if opt.RunLPPlacement {
		if err := place.OptimizeSwitchPositions(top); err != nil {
			dp.FailReason = fmt.Sprintf("LP placement failed: %v", err)
			return dp
		}
	}
	dp.Metrics = top.Evaluate()
	if reason := validateTopology(top, opt, dp.Metrics, dp.FreqMHz); reason != "" {
		dp.FailReason = reason
		return dp
	}
	dp.Valid = true
	if opt.Contend {
		flits := 0
		if opt.Sim != nil {
			flits = opt.Sim.PacketFlits
		}
		dp.Contention = contend.EstimatePoint(top, flits)
	}
	// With SimBand active, simulation is deferred to the triage pass
	// (triageSimBand), which simulates only the estimated Pareto band.
	if opt.Sim != nil && opt.SimBand == 0 {
		simStart := time.Now() //determlint:wallclock SimElapsed is json-excluded observability plumbing and never reaches the serialised Result
		stats, err := sim.Run(top, *opt.Sim)
		if err != nil {
			dp.Valid = false
			dp.FailReason = fmt.Sprintf("simulation failed: %v", err)
			return dp
		}
		dp.Sim = stats
		dp.SimElapsed = time.Since(simStart) //determlint:wallclock SimElapsed is json-excluded observability plumbing and never reaches the serialised Result
	}
	if opt.Sparing != nil || opt.Fault != nil {
		rep, spareTSVs, err := faultReport(top, opt, cfg)
		if err != nil {
			dp.Valid = false
			dp.FailReason = fmt.Sprintf("fault model: %v", err)
			return dp
		}
		dp.Survivability = rep
		dp.Metrics.SpareTSVMacros = spareTSVs
	}
	return dp
}

// faultReport provisions the spare plan (when sparing is configured) and
// replays the fault model (when the fault model is configured) against a
// valid, routed design point. It returns the survivability report (nil
// without a fault model) and the number of spare TSV macros the sparing pass
// added (0 without sparing). Both passes are deterministic, so the report is
// byte-identical between serial, parallel, cached and uncached runs.
func faultReport(top *topology.Topology, opt Options, cfg route.Config) (*fault.Survivability, int, error) {
	var sp *fault.SparingPlan
	if opt.Sparing != nil {
		var err error
		sp, err = fault.BuildSparing(top, *opt.Sparing)
		if err != nil {
			return nil, 0, err
		}
	}
	spareTSVs := 0
	if sp != nil {
		spareTSVs = sp.SpareTSVs
	}
	if opt.Fault == nil {
		return nil, spareTSVs, nil
	}
	rep, err := fault.Replay(top, cfg, *opt.Fault, sp, opt.Sim)
	if err != nil {
		return nil, 0, err
	}
	return rep, spareTSVs, nil
}

// validateTopology checks an evaluated topology against the run's
// constraints, returning a failure reason or "" when every constraint holds.
func validateTopology(top *topology.Topology, opt Options, m topology.Metrics, freq float64) string {
	if opt.MaxILL > 0 && m.MaxILL > opt.MaxILL {
		return fmt.Sprintf("uses %d inter-layer links (max %d)", m.MaxILL, opt.MaxILL)
	}
	maxSw := opt.Lib.MaxSwitchSize(freq)
	in, out := top.SwitchPorts()
	for i := range in {
		if in[i] > maxSw || out[i] > maxSw {
			return fmt.Sprintf("switch %d has %dx%d ports (max %d at %.0f MHz)",
				i, in[i], out[i], maxSw, freq)
		}
	}
	if opt.RequireLatencyMet && m.LatencyViolations > 0 {
		return fmt.Sprintf("%d flows violate their latency constraint", m.LatencyViolations)
	}
	if opt.explTSVBudget > 0 && m.TSVMacros > opt.explTSVBudget {
		return fmt.Sprintf("needs %d TSV macros (budget %d)", m.TSVMacros, opt.explTSVBudget)
	}
	return ""
}
