package synth

import (
	"errors"
	"strings"
	"testing"

	"sunfloor3d/internal/topology"
)

// TestExplorationDoneErrorFailsRun asserts that a Done hook returning an
// error aborts the exploration with that error — the contract the facade's
// fail-fast checkpoint writer depends on.
func TestExplorationDoneErrorFailsRun(t *testing.T) {
	g := smallDesign(t)
	opt := DefaultOptions()
	opt.Space = &Space{Axes: []Axis{
		{Name: AxisLinkWidthBits, Values: []float64{16, 32}},
	}}
	sinkErr := errors.New("checkpoint sink failed")
	var calls int
	opt.SetExplorationHooks(ExplorationHooks{
		Done: func(cell int, pts []DesignPoint) error {
			calls++
			return sinkErr
		},
	})
	_, err := Synthesize(g, opt)
	if !errors.Is(err, sinkErr) {
		t.Fatalf("Synthesize error = %v, want %v", err, sinkErr)
	}
	if calls == 0 {
		t.Fatal("Done hook was never called")
	}
}

func TestSpaceCellEnumeration(t *testing.T) {
	sp := Space{Axes: []Axis{
		{Name: AxisLinkWidthBits, Values: []float64{16, 32}},
		{Name: AxisFreqMHz, Values: []float64{400, 600}},
		{Name: AxisVCs, Values: []float64{1, 2}},
	}}
	opt := DefaultOptions()
	cells := sp.cells(opt)
	if len(cells) != 8 {
		t.Fatalf("NumCells = %d, want 8", len(cells))
	}
	// Frequency outermost, then VCs, then link width — regardless of the
	// order the axes were declared in. Without layer_count/tsv_budget axes
	// the (freq, fold, budget) group degenerates to one group per frequency.
	want := []cellSpec{
		{index: 0, freqIdx: 0, freq: 400, group: 0, vcs: 1, lw: 16, probe: true},
		{index: 1, freqIdx: 0, freq: 400, group: 0, vcs: 1, lw: 32},
		{index: 2, freqIdx: 0, freq: 400, group: 0, vcs: 2, lw: 16},
		{index: 3, freqIdx: 0, freq: 400, group: 0, vcs: 2, lw: 32},
		{index: 4, freqIdx: 1, freq: 600, group: 1, vcs: 1, lw: 16, probe: true},
		{index: 5, freqIdx: 1, freq: 600, group: 1, vcs: 1, lw: 32},
		{index: 6, freqIdx: 1, freq: 600, group: 1, vcs: 2, lw: 16},
		{index: 7, freqIdx: 1, freq: 600, group: 1, vcs: 2, lw: 32},
	}
	for i, c := range cells {
		if c != want[i] {
			t.Errorf("cell %d = %+v, want %+v", i, c, want[i])
		}
	}
	if n := sp.NumCells(opt); n != len(cells) {
		t.Errorf("NumCells = %d, want %d", n, len(cells))
	}
}

func TestSpaceCellsDefaultFrequencies(t *testing.T) {
	// Without a frequency axis, the cells come from Options.FrequenciesMHz.
	sp := Space{Axes: []Axis{{Name: AxisSwitchCount, Values: []float64{2, 4}}}}
	opt := DefaultOptions()
	opt.FrequenciesMHz = []float64{250, 500, 750}
	cells := sp.cells(opt)
	if len(cells) != 3 {
		t.Fatalf("NumCells = %d, want 3", len(cells))
	}
	for i, c := range cells {
		if c.freq != opt.FrequenciesMHz[i] || !c.probe {
			t.Errorf("cell %d = %+v, want probe at %g MHz", i, c, opt.FrequenciesMHz[i])
		}
	}
}

// TestBoundsSoundOnRealPoints is the soundness check behind branch-and-bound
// pruning: for every valid point of a classic exhaustive run, the analytic
// power and latency floors must not exceed the point's actual metrics.
// If this ever fails, Rule-B pruning could discard a non-dominated point.
func TestBoundsSoundOnRealPoints(t *testing.T) {
	g := smallDesign(t)
	opt := DefaultOptions()
	opt.FrequenciesMHz = []float64{250, 400, 600, 800}
	opt.LPOnBest = false
	res, err := Synthesize(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	var totalBW float64
	for _, f := range g.Flows {
		totalBW += f.BandwidthMBps
	}
	const eps = 1e-9
	checked := 0
	for _, p := range res.Points {
		if !p.Valid {
			continue
		}
		checked++
		pf := opt.Lib.PowerFloorMW(g.NumCores(), p.SwitchCount, p.FreqMHz, totalBW)
		if pf > p.Metrics.Power.TotalMW()+eps {
			t.Errorf("power floor %.6g mW exceeds actual %.6g mW at f=%g sw=%d",
				pf, p.Metrics.Power.TotalMW(), p.FreqMHz, p.SwitchCount)
		}
		lf := topology.LatencyFloorCycles(g, opt.Lib, p.FreqMHz)
		if lf > p.Metrics.AvgLatencyCycles+eps {
			t.Errorf("latency floor %.6g cycles exceeds actual %.6g at f=%g sw=%d",
				lf, p.Metrics.AvgLatencyCycles, p.FreqMHz, p.SwitchCount)
		}
	}
	if checked == 0 {
		t.Fatal("no valid points to check bounds against")
	}
}

// TestExplorerPrunedStubsCarryReasons checks the stub bookkeeping: every
// pruned point names its pruning rule and stays out of the valid set.
func TestExplorerPrunedStubsCarryReasons(t *testing.T) {
	g := smallDesign(t)
	opt := DefaultOptions()
	opt.LPOnBest = false
	opt.Space = &Space{Axes: []Axis{
		{Name: AxisFreqMHz, Values: []float64{400, 600}},
		{Name: AxisLinkWidthBits, Values: []float64{16, 32, 64}},
	}}
	res, err := Synthesize(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	var ruleA, ruleB int
	for _, p := range res.Points {
		if !p.Pruned {
			continue
		}
		if p.Valid {
			t.Errorf("pruned point at f=%g sw=%d marked valid", p.FreqMHz, p.SwitchCount)
		}
		if p.Topology != nil || p.Phase != 0 {
			t.Errorf("pruned stub at f=%g sw=%d carries evaluation state", p.FreqMHz, p.SwitchCount)
		}
		switch {
		case strings.Contains(p.FailReason, "duplicate of cell"):
			ruleA++
		case strings.Contains(p.FailReason, "power floor"):
			ruleB++
		default:
			t.Errorf("pruned stub has unrecognised reason %q", p.FailReason)
		}
	}
	if ruleA == 0 {
		t.Error("no duplicate-cell (Rule A) stubs on a space with a link-width axis")
	}
	// Rule B may or may not fire on this design; its exactness is covered by
	// the brute-force comparison tests at the facade level.
	_ = ruleB
}
