package synth

import (
	"context"
	"runtime"
	"sync"
)

// Event reports the completion of one design-point evaluation during a
// synthesis run. Events are delivered to Options.Progress in completion
// order, serialised within the run (never concurrently), from the goroutine
// that finished the point.
type Event struct {
	// Done is the number of design points evaluated so far.
	Done int
	// Total is the number of design points scheduled so far. It can grow
	// while the run is in progress: the theta rescaling loop and the Phase-2
	// fallback of Algorithm 1 schedule additional points only when the
	// initial sweep leaves switch counts unmet.
	Total int
	// Point is the design point that just finished (valid or not).
	Point DesignPoint
}

// pool is one synthesis run's view of design-point execution: it tracks
// progress accounting, forwards completion events, and draws evaluation
// slots from a fair-share Scheduler — the process-wide one from
// Options.Scheduler when the run belongs to a multiplexing caller such as
// sunfloor-server, or a private one sized from Options.Parallelism
// otherwise. All stages of the run (all frequencies, theta retries and
// Phase-2 fallbacks) share the same slot budget.
type pool struct {
	ctx     context.Context
	client  *schedClient // nil on the serial reference path
	serial  bool
	onEvent func(Event)

	mu          sync.Mutex
	done, total int
}

// resolveParallelism maps Options.Parallelism to a worker count: 0 or 1 is
// serial, n > 1 uses at most n workers, negative uses one per available CPU.
func resolveParallelism(n int) int {
	if n < 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n < 1 {
		n = 1
	}
	return n
}

// newPool sizes a pool from the options. With a shared scheduler the run
// registers as a client (weight Options.Weight, per-run limit
// Options.Parallelism when positive); without one, a private single-client
// scheduler reproduces the standalone bounded-worker behaviour, and
// Parallelism 0 or 1 keeps the fully serial reference path.
func newPool(ctx context.Context, opt Options) *pool {
	p := &pool{ctx: ctx, onEvent: opt.Progress}
	if opt.Scheduler != nil {
		limit := 0
		if opt.Parallelism > 0 {
			limit = opt.Parallelism
		}
		p.client = opt.Scheduler.register(opt.Weight, limit)
		return p
	}
	n := resolveParallelism(opt.Parallelism)
	if n == 1 {
		p.serial = true
		return p
	}
	p.client = NewScheduler(n).register(1, 0)
	return p
}

// close deregisters the run from its scheduler. It must be called after
// every forEach returned, which guarantees all slots are back.
func (p *pool) close() {
	if p.client != nil {
		p.client.close()
	}
}

// addTotal grows the scheduled-point count without running an evaluation.
// The explorer uses it to account for pruned, restored and shard-skipped
// points, which are then surfaced through emit like evaluated ones so
// progress consumers see every point and every pruning decision.
func (p *pool) addTotal(n int) {
	p.mu.Lock()
	p.total += n
	p.mu.Unlock()
}

// emit records one finished point and forwards it to the progress callback.
func (p *pool) emit(dp DesignPoint) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done++
	if p.onEvent != nil {
		p.onEvent(Event{Done: p.done, Total: p.total, Point: dp})
	}
}

// forEach evaluates fn(i) for every i in [0, n) and stores each result with
// sink(i, point). Results land at their own index, so the caller observes the
// same ordering whether the evaluations ran serially or on a contended
// shared scheduler. When the context is cancelled, no further evaluations
// start, the evaluations already in flight are drained to completion, and
// the context error is returned — forEach never leaves a worker goroutine
// behind. sink must be safe for concurrent calls on distinct indices
// (writing to distinct elements of a pre-allocated slice is).
func (p *pool) forEach(n int, fn func(i int) DesignPoint, sink func(i int, dp DesignPoint)) error {
	p.mu.Lock()
	p.total += n
	p.mu.Unlock()

	if p.serial {
		for i := 0; i < n; i++ {
			if err := p.ctx.Err(); err != nil {
				return err
			}
			dp := fn(i)
			sink(i, dp)
			p.emit(dp)
		}
		return nil
	}

	var wg sync.WaitGroup
	var err error
	for i := 0; i < n; i++ {
		// acquire re-checks cancellation itself, but the explicit check first
		// avoids queueing on a contended scheduler after the run is dead.
		if err = p.ctx.Err(); err != nil {
			break
		}
		if err = p.client.acquire(p.ctx); err != nil {
			break
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer p.client.release()
			dp := fn(i)
			sink(i, dp)
			p.emit(dp)
		}(i)
	}
	wg.Wait()
	return err
}
