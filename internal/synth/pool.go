package synth

import (
	"context"
	"runtime"
	"sync"
)

// Event reports the completion of one design-point evaluation during a
// synthesis run. Events are delivered to Options.Progress in completion
// order, serialised within the run (never concurrently), from the goroutine
// that finished the point.
type Event struct {
	// Done is the number of design points evaluated so far.
	Done int
	// Total is the number of design points scheduled so far. It can grow
	// while the run is in progress: the theta rescaling loop and the Phase-2
	// fallback of Algorithm 1 schedule additional points only when the
	// initial sweep leaves switch counts unmet.
	Total int
	// Point is the design point that just finished (valid or not).
	Point DesignPoint
}

// pool evaluates design points on a bounded number of workers shared by every
// stage of a synthesis run (all frequencies, theta retries and Phase-2
// fallbacks draw from the same budget), tracks progress accounting, and
// aborts scheduling when the run's context is cancelled.
type pool struct {
	ctx     context.Context
	sem     chan struct{} // one slot per concurrent evaluation
	serial  bool
	onEvent func(Event)

	mu          sync.Mutex
	done, total int
}

// newPool sizes a pool from the options: Parallelism 0 or 1 evaluates points
// serially, n > 1 uses at most n workers, and a negative value uses one
// worker per available CPU.
func newPool(ctx context.Context, opt Options) *pool {
	n := opt.Parallelism
	if n < 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n < 1 {
		n = 1
	}
	return &pool{
		ctx:     ctx,
		sem:     make(chan struct{}, n),
		serial:  n == 1,
		onEvent: opt.Progress,
	}
}

// emit records one finished point and forwards it to the progress callback.
func (p *pool) emit(dp DesignPoint) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done++
	if p.onEvent != nil {
		p.onEvent(Event{Done: p.done, Total: p.total, Point: dp})
	}
}

// forEach evaluates fn(i) for every i in [0, n) and stores each result with
// sink(i, point). Results land at their own index, so the caller observes the
// same ordering whether the pool is serial or parallel. When the context is
// cancelled, no further evaluations start and the context error is returned;
// evaluations already in flight finish first. sink must be safe for
// concurrent calls on distinct indices (writing to distinct elements of a
// pre-allocated slice is).
func (p *pool) forEach(n int, fn func(i int) DesignPoint, sink func(i int, dp DesignPoint)) error {
	p.mu.Lock()
	p.total += n
	p.mu.Unlock()

	if p.serial {
		for i := 0; i < n; i++ {
			if err := p.ctx.Err(); err != nil {
				return err
			}
			dp := fn(i)
			sink(i, dp)
			p.emit(dp)
		}
		return nil
	}

	var wg sync.WaitGroup
	var err error
	for i := 0; i < n; i++ {
		// Check cancellation before contending for a slot: with both channels
		// ready, select picks randomly and could start one more evaluation
		// after the context was already cancelled.
		if err = p.ctx.Err(); err != nil {
			break
		}
		select {
		case <-p.ctx.Done():
			err = p.ctx.Err()
		case p.sem <- struct{}{}:
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer func() { <-p.sem }()
				dp := fn(i)
				sink(i, dp)
				p.emit(dp)
			}(i)
		}
		if err != nil {
			break
		}
	}
	wg.Wait()
	return err
}
