package synth

import (
	"fmt"
	"math"
)

// Axis names understood by the explorer. Every axis of a Space must use one
// of these.
const (
	// AxisFreqMHz sweeps the NoC operating frequency. When present it
	// replaces Options.FrequenciesMHz as the frequency dimension.
	AxisFreqMHz = "freq_mhz"
	// AxisSwitchCount restricts the Phase-1 switch-count sweep to the listed
	// counts instead of the full 1..NumCores range. Incompatible with
	// Phase2Only, whose enumeration is extras-per-layer rather than a switch
	// count.
	AxisSwitchCount = "switch_count"
	// AxisVCs sweeps the number of simulator virtual channels. Requires
	// Options.Sim.
	AxisVCs = "vcs"
	// AxisLinkWidthBits sweeps the link width of the component library
	// (which feeds the TSV macro area model and the simulator's flit width).
	AxisLinkWidthBits = "link_width_bits"
	// AxisLayerCount sweeps the number of stacked layers the design is
	// folded onto: each value L re-assigns every core to layer (original
	// layer mod L) before synthesis, so one exploration compares 3-D
	// stacking depths (L = 1 is the flattened 2-D baseline). Planar core
	// positions are kept as-is.
	AxisLayerCount = "layer_count"
	// AxisTSVBudget sweeps a hard cap on the TSV macro count: a design
	// point needing more TSV macros than the budget is invalid. Distinct
	// budgets genuinely re-evaluate (validity differs), unlike the
	// vcs/link-width duplicates.
	AxisTSVBudget = "tsv_budget"
)

// Axis is one dimension of an exploration Space: a named parameter and the
// ordered list of values to sweep. Values are declared as float64 for
// uniformity; integer axes (switch counts, VCs, link widths) must hold
// integral values.
type Axis struct {
	// Name is one of the Axis* constants.
	Name string
	// Values lists the axis values in sweep order.
	Values []float64
}

// Space is an N-dimensional design space for the explorer: the cross product
// of its axes. Setting Options.Space switches SynthesizeContext from the
// classic frequency x switch-count sweep to the explorer.
//
// The cross product is enumerated in a deterministic order — frequency
// outermost, then layer count, then TSV budget, then VC count, then link
// width, each in declared value order, with the switch-count sweep innermost
// — so Result.Points is byte-identical across runs, parallelism levels,
// shards and resumes.
//
// Unless NoPrune is set, the explorer prunes provably dominated regions
// before partitioning and routing: (vcs, link width) cells beyond the first
// combination of each frequency are whole-cell duplicates of that
// frequency's probe cell in every result-affecting metric (power, latency
// and validity do not depend on VC count or link width; only the
// area-in-JSON differs through the TSV macro model, which never enters the
// objective or the front), and switch counts whose analytic power lower
// bound is dominated by an already-explored point at the latency floor are
// skipped via branch and bound. Pruned points appear in Result.Points as
// stubs with Pruned set and a FailReason naming the decision, so progress
// consumers see every pruning decision. Pruning is exact: the Pareto front
// and the best point of a pruned run are byte-identical to a NoPrune run of
// the same space.
type Space struct {
	// Axes lists the dimensions. Order matters only among values of one
	// axis; the nesting order of the enumeration is fixed (see above).
	Axes []Axis
	// NoPrune disables duplicate-cell and branch-and-bound pruning and
	// evaluates every point exhaustively (the brute-force reference mode).
	NoPrune bool
}

// axis returns the named axis, or nil when the space does not sweep it.
func (s *Space) axis(name string) *Axis {
	for i := range s.Axes {
		if s.Axes[i].Name == name {
			return &s.Axes[i]
		}
	}
	return nil
}

// intValues returns the named axis's values as ints (nil when absent).
// Validate has already checked integrality.
func (s *Space) intValues(name string) []int {
	a := s.axis(name)
	if a == nil {
		return nil
	}
	out := make([]int, len(a.Values))
	for i, v := range a.Values {
		out[i] = int(v)
	}
	return out
}

// validate checks the space against the options it will explore with.
func (s *Space) validate(o Options) error {
	if len(s.Axes) == 0 {
		return fmt.Errorf("synth: space has no axes")
	}
	seen := map[string]bool{}
	for _, a := range s.Axes {
		switch a.Name {
		case AxisFreqMHz, AxisSwitchCount, AxisVCs, AxisLinkWidthBits, AxisLayerCount, AxisTSVBudget:
		default:
			return fmt.Errorf("synth: unknown axis %q (valid: %s, %s, %s, %s, %s, %s)",
				a.Name, AxisFreqMHz, AxisSwitchCount, AxisVCs, AxisLinkWidthBits, AxisLayerCount, AxisTSVBudget)
		}
		if seen[a.Name] {
			return fmt.Errorf("synth: duplicate axis %q", a.Name)
		}
		seen[a.Name] = true
		if len(a.Values) == 0 {
			return fmt.Errorf("synth: axis %q has no values", a.Name)
		}
		vals := map[float64]bool{}
		for _, v := range a.Values {
			if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
				return fmt.Errorf("synth: axis %q has non-positive value %g", a.Name, v)
			}
			if a.Name != AxisFreqMHz && v != math.Trunc(v) {
				return fmt.Errorf("synth: axis %q requires integral values, got %g", a.Name, v)
			}
			if vals[v] {
				return fmt.Errorf("synth: axis %q lists value %g twice", a.Name, v)
			}
			vals[v] = true
		}
	}
	if s.axis(AxisSwitchCount) != nil && o.Phase == Phase2Only {
		return fmt.Errorf("synth: axis %q is incompatible with Phase2Only (Phase 2 sweeps extra switches per layer, not a switch count)", AxisSwitchCount)
	}
	if a := s.axis(AxisVCs); a != nil {
		if o.Sim == nil {
			return fmt.Errorf("synth: axis %q requires simulation (Options.Sim)", AxisVCs)
		}
		for _, v := range a.Values {
			cfg := *o.Sim
			cfg.VCs = int(v)
			if err := cfg.Validate(); err != nil {
				return fmt.Errorf("synth: axis %q value %g: %w", AxisVCs, v, err)
			}
		}
	}
	if a := s.axis(AxisLinkWidthBits); a != nil {
		for _, v := range a.Values {
			lib := o.Lib
			lib.LinkWidthBits = int(v)
			if err := lib.Validate(); err != nil {
				return fmt.Errorf("synth: axis %q value %g: %w", AxisLinkWidthBits, v, err)
			}
		}
	}
	return nil
}

// cellSpec identifies one cell of the exploration: a fixed (frequency, layer
// count, TSV budget, VC count, link width) combination whose interior is the
// switch-count sweep.
type cellSpec struct {
	// index is the cell's position in the deterministic enumeration.
	index int
	// freqIdx and freq identify the frequency.
	freqIdx int
	freq    float64
	// lcIdx and lc identify the layer-count fold (lc 0 when the space has no
	// layer_count axis: the design's own layering). lcIdx always indexes the
	// explorer's graph-variant table, including the no-axis case.
	lcIdx int
	lc    int
	// tsv is the TSV macro budget (0 when the space has no tsv_budget axis).
	tsv int
	// group numbers the (frequency, layer count, TSV budget) combination the
	// cell belongs to. Cells of one group differ only in (vcs, lw), which
	// changes no result-affecting metric, so the group is the unit of
	// duplicate-cell pruning.
	group int
	// vcs is the simulator VC count (0 when the space has no vcs axis).
	vcs int
	// lw is the link width in bits (0 when the space has no link-width axis).
	lw int
	// probe marks the first (vcs, lw) combination of its group: the cell
	// that is evaluated for real and that duplicate cells are pruned against.
	probe bool
}

// cells enumerates the space's cells in deterministic order: frequency
// outermost, then layer count, then TSV budget, then VC count, then link
// width.
func (s *Space) cells(opt Options) []cellSpec {
	freqs := opt.FrequenciesMHz
	if a := s.axis(AxisFreqMHz); a != nil {
		freqs = a.Values
	}
	lcVals := []int{0}
	if lv := s.intValues(AxisLayerCount); lv != nil {
		lcVals = lv
	}
	tsvVals := []int{0}
	if tv := s.intValues(AxisTSVBudget); tv != nil {
		tsvVals = tv
	}
	vcsVals := []int{0}
	if vv := s.intValues(AxisVCs); vv != nil {
		vcsVals = vv
	}
	lwVals := []int{0}
	if lv := s.intValues(AxisLinkWidthBits); lv != nil {
		lwVals = lv
	}
	var out []cellSpec
	group := 0
	for fi, f := range freqs {
		for lci, lc := range lcVals {
			for _, tsv := range tsvVals {
				for vi, vcs := range vcsVals {
					for li, lw := range lwVals {
						out = append(out, cellSpec{
							index:   len(out),
							freqIdx: fi,
							freq:    f,
							lcIdx:   lci,
							lc:      lc,
							tsv:     tsv,
							group:   group,
							vcs:     vcs,
							lw:      lw,
							probe:   vi == 0 && li == 0,
						})
					}
				}
				group++
			}
		}
	}
	return out
}

// NumCells returns the number of (frequency, layer count, TSV budget, vcs,
// link width) cells the space enumerates with the given options. Cell indices — the unit of
// checkpointing and sharding — run from 0 to NumCells-1 in deterministic
// order.
func (s *Space) NumCells(opt Options) int { return len(s.cells(opt)) }

// ExplorationHooks let a caller own, restore and persist exploration cells,
// which is how the facade implements checkpoint/resume and sharding. All
// hooks receive the cell index of the deterministic enumeration. A nil hook
// means: own every cell, never restore, discard nothing.
type ExplorationHooks struct {
	// Own reports whether this process should evaluate the cell. Unowned
	// cells that Restore cannot supply are filled with skipped stubs, which
	// is what makes shard results disjoint and exactly mergeable.
	Own func(cell int) bool
	// Restore returns the previously persisted points of a cell, if any.
	// Restored cells are not re-evaluated and not re-passed to Done.
	Restore func(cell int) ([]DesignPoint, bool)
	// Done receives the points of every cell this run evaluated, in
	// completion order, exactly once per cell and never concurrently. A
	// non-nil error fails the exploration immediately: a hook that cannot
	// persist a cell must stop the run rather than let it continue against
	// silently stale state.
	Done func(cell int, points []DesignPoint) error
}

// SetExplorationHooks installs the checkpoint/shard hooks on the options.
// The hooks are execution plumbing: they must not change what any evaluated
// cell contains (Restore must return exactly what Done persisted), and they
// are excluded from the cache fingerprint like Progress and Parallelism.
func (o *Options) SetExplorationHooks(h ExplorationHooks) { o.explore = h }
