package synth

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"sunfloor3d/internal/geom"
	"sunfloor3d/internal/topology"
)

// stripTimings zeroes the non-deterministic per-point durations so results
// can be compared structurally.
func stripTimings(res *Result) {
	for i := range res.Points {
		res.Points[i].Elapsed = 0
	}
}

// TestPartitionCacheEquivalence checks the core contract of the sweep-wide
// partition cache: cached, uncached, serial and parallel runs all return
// identical design points (the partitioner is deterministic, so sharing a
// computed partition across frequencies must not change anything).
func TestPartitionCacheEquivalence(t *testing.T) {
	g := smallDesign(t)
	base := DefaultOptions()
	base.FrequenciesMHz = []float64{400, 600, 800}

	cached := base
	cachedRes, err := Synthesize(g, cached)
	if err != nil {
		t.Fatal(err)
	}
	uncached := base
	uncached.DisablePartitionCache = true
	uncachedRes, err := Synthesize(g, uncached)
	if err != nil {
		t.Fatal(err)
	}
	parallel := base
	parallel.Parallelism = 8
	parallelRes, err := Synthesize(g, parallel)
	if err != nil {
		t.Fatal(err)
	}

	if cachedRes.Cache.Hits == 0 {
		t.Error("multi-frequency sweep produced no cache hits")
	}
	if uncachedRes.Cache.Hits != 0 {
		t.Errorf("disabled cache reported %d hits", uncachedRes.Cache.Hits)
	}

	stripTimings(cachedRes)
	stripTimings(uncachedRes)
	stripTimings(parallelRes)
	for name, other := range map[string]*Result{"uncached": uncachedRes, "parallel": parallelRes} {
		if len(other.Points) != len(cachedRes.Points) {
			t.Fatalf("%s run explored %d points, cached %d", name, len(other.Points), len(cachedRes.Points))
		}
		for i := range cachedRes.Points {
			a, b := cachedRes.Points[i], other.Points[i]
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("%s run diverges at point %d:\ncached: %+v\nother:  %+v", name, i, a, b)
			}
		}
		bestA, bestB := cachedRes.Best, other.Best
		if (bestA == nil) != (bestB == nil) {
			t.Fatalf("%s run best-point presence differs", name)
		}
		if bestA != nil && !reflect.DeepEqual(bestA.Metrics, bestB.Metrics) {
			t.Fatalf("%s run best metrics differ", name)
		}
	}
}

// TestFullRebuildRouterEquivalentSweep checks that the reference full-rebuild
// router and the incremental router agree on the sweep outcome (same validity
// pattern and best objective) on the small design, where arc costs have no
// exact ties.
func TestFullRebuildRouterEquivalentSweep(t *testing.T) {
	g := smallDesign(t)
	opt := DefaultOptions()
	fast, err := Synthesize(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	ref := opt
	ref.FullRebuildRouter = true
	slow, err := Synthesize(g, ref)
	if err != nil {
		t.Fatal(err)
	}
	if len(fast.Points) != len(slow.Points) {
		t.Fatalf("point counts differ: %d vs %d", len(fast.Points), len(slow.Points))
	}
	for i := range fast.Points {
		if fast.Points[i].Valid != slow.Points[i].Valid {
			t.Errorf("point %d validity differs: incremental %v, rebuild %v",
				i, fast.Points[i].Valid, slow.Points[i].Valid)
		}
	}
	if fast.Best == nil || slow.Best == nil {
		t.Fatal("missing best point")
	}
	fc := fast.Best.Cost(opt.PowerWeight, opt.LatencyWeight)
	sc := slow.Best.Cost(opt.PowerWeight, opt.LatencyWeight)
	if diff := fc - sc; diff > 1e-6*sc || diff < -1e-6*sc {
		t.Errorf("best objective differs: incremental %v, rebuild %v", fc, sc)
	}
}

// TestRefineBestRejectsWorseningRefinement checks the LPOnBest fix: a
// refinement that worsens the objective must not overwrite the best point.
func TestRefineBestRejectsWorseningRefinement(t *testing.T) {
	g := smallDesign(t)
	opt := DefaultOptions()
	opt.LPOnBest = false
	res, err := Synthesize(g, opt)
	if err != nil || res.Best == nil {
		t.Fatalf("synthesis failed: %v", err)
	}
	wantMetrics := res.Best.Metrics
	wantTop := res.Best.Topology

	scramble := func(top *topology.Topology) error {
		for i := range top.Switches {
			top.Switches[i].Pos = geom.Point{X: top.Switches[i].Pos.X + 500, Y: 500}
		}
		return nil
	}
	refineBest(res, opt, scramble)
	if res.Best.Topology != wantTop {
		t.Error("worsening refinement replaced the best topology")
	}
	if !reflect.DeepEqual(res.Best.Metrics, wantMetrics) {
		t.Errorf("worsening refinement overwrote metrics:\ngot  %+v\nwant %+v", res.Best.Metrics, wantMetrics)
	}
}

// TestRefineBestIgnoresFailedRefinement checks that a refiner error leaves
// the best point untouched.
func TestRefineBestIgnoresFailedRefinement(t *testing.T) {
	g := smallDesign(t)
	opt := DefaultOptions()
	opt.LPOnBest = false
	res, err := Synthesize(g, opt)
	if err != nil || res.Best == nil {
		t.Fatalf("synthesis failed: %v", err)
	}
	wantMetrics := res.Best.Metrics
	refineBest(res, opt, func(*topology.Topology) error { return fmt.Errorf("no solution") })
	if !reflect.DeepEqual(res.Best.Metrics, wantMetrics) {
		t.Error("failed refinement changed the best point")
	}
}

// TestRefineBestKeepsBestMinimal checks that after the production LPOnBest
// refinement the best point is still valid and still the minimum-cost valid
// point — the invariant the old code could break.
func TestRefineBestKeepsBestMinimal(t *testing.T) {
	g := smallDesign(t)
	opt := DefaultOptions()
	opt.LPOnBest = true
	res, err := Synthesize(g, opt)
	if err != nil || res.Best == nil {
		t.Fatalf("synthesis failed: %v", err)
	}
	if !res.Best.Valid {
		t.Fatal("refined best point is not valid")
	}
	if reason := validateTopology(res.Best.Topology, opt, res.Best.Metrics, res.Best.FreqMHz); reason != "" {
		t.Fatalf("refined best point violates constraints: %s", reason)
	}
	bestCost := res.Best.Cost(opt.PowerWeight, opt.LatencyWeight)
	for _, p := range res.ValidPoints() {
		if c := p.Cost(opt.PowerWeight, opt.LatencyWeight); c < bestCost-1e-9 {
			t.Errorf("refined best (%v) beaten by a point with cost %v", bestCost, c)
		}
	}

	noLP := opt
	noLP.LPOnBest = false
	plain, err := Synthesize(g, noLP)
	if err != nil || plain.Best == nil {
		t.Fatalf("unrefined synthesis failed: %v", err)
	}
	if bestCost > plain.Best.Cost(opt.PowerWeight, opt.LatencyWeight)+1e-9 {
		t.Errorf("LPOnBest worsened the shipped best: %v > %v",
			bestCost, plain.Best.Cost(opt.PowerWeight, opt.LatencyWeight))
	}
}

// bruteForcePareto is the quadratic reference: non-dominated points, deduped
// to the lowest index per (power, latency) pair, sorted like ParetoIndices.
func bruteForcePareto(power, latency []float64) []int {
	seen := make(map[[2]float64]bool)
	var front []int
	idx := make([]int, len(power))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		i, j := idx[a], idx[b]
		if power[i] != power[j] {
			return power[i] < power[j]
		}
		if latency[i] != latency[j] {
			return latency[i] < latency[j]
		}
		return i < j
	})
	for _, i := range idx {
		dominated := false
		for j := range power {
			if i == j {
				continue
			}
			if power[j] <= power[i] && latency[j] <= latency[i] &&
				(power[j] < power[i] || latency[j] < latency[i]) {
				dominated = true
				break
			}
		}
		key := [2]float64{power[i], latency[i]}
		if !dominated && !seen[key] {
			seen[key] = true
			front = append(front, i)
		}
	}
	return front
}

func TestParetoIndicesDeduplicates(t *testing.T) {
	power := []float64{1, 1, 2, 3, 2}
	latency := []float64{5, 5, 4, 6, 4}
	got := ParetoIndices(power, latency)
	want := []int{0, 2}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ParetoIndices = %v, want %v (duplicates kept?)", got, want)
	}
	if out := ParetoIndices(nil, nil); out != nil {
		t.Errorf("empty input returned %v", out)
	}
}

func TestParetoIndicesMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(40)
		power := make([]float64, n)
		latency := make([]float64, n)
		for i := range power {
			// Coarse grid so exact duplicates and ties actually occur.
			power[i] = float64(rng.Intn(8))
			latency[i] = float64(rng.Intn(8))
		}
		got := ParetoIndices(power, latency)
		want := bruteForcePareto(power, latency)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: ParetoIndices = %v, want %v\npower   %v\nlatency %v",
				trial, got, want, power, latency)
		}
		for i := 1; i < len(got); i++ {
			if power[got[i-1]] >= power[got[i]] {
				t.Fatalf("trial %d: front power not strictly increasing: %v", trial, got)
			}
			if latency[got[i-1]] <= latency[got[i]] {
				t.Fatalf("trial %d: front latency not strictly decreasing: %v", trial, got)
			}
		}
	}
}
