// Package synth implements the core contribution of the paper: the
// SunFloor 3D topology-synthesis engine. For a given application (cores with
// 3-D layer assignment and floorplan positions, plus the communication
// specification) it sweeps NoC architectural parameters (operating frequency
// and switch count), establishes core-to-switch connectivity either with
// Phase 1 (min-cut partitioning of the whole-design PG, with the SPG theta
// scaling loop when the inter-layer link constraint is violated — Algorithm 1)
// or Phase 2 (layer-by-layer partitioning of per-layer LPGs — Algorithm 2),
// computes deadlock-free paths for all flows under the max_ill and
// max_switch_size constraints, places the switches, evaluates power, latency
// and area, and returns the set of valid design points together with the best
// one for the chosen objective. Running the engine on a single-layer design
// degenerates to the 2-D flow of [16], which is how the 2-D baselines of the
// paper's comparison are produced.
package synth

import (
	"fmt"
	"math"

	"sunfloor3d/internal/fault"
	"sunfloor3d/internal/noclib"
	"sunfloor3d/internal/partition"
	"sunfloor3d/internal/sim"
)

// Phase selects which core-to-switch connectivity method the engine may use.
type Phase int

const (
	// PhaseAuto runs Phase 1 and falls back to Phase 2 for switch counts
	// where Phase 1 cannot meet the inter-layer link constraint (the two-phase
	// strategy described in Section IV).
	PhaseAuto Phase = iota
	// Phase1Only restricts the engine to Phase 1 (cores may connect to
	// switches in any layer).
	Phase1Only
	// Phase2Only restricts the engine to Phase 2 (cores connect only to
	// switches in their own layer; links only between adjacent layers).
	Phase2Only
)

// String implements fmt.Stringer.
func (p Phase) String() string {
	switch p {
	case PhaseAuto:
		return "auto"
	case Phase1Only:
		return "phase1"
	case Phase2Only:
		return "phase2"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// SwitchLayerRule selects how the layer of a Phase-1 switch is derived from
// its member cores.
type SwitchLayerRule int

const (
	// LayerAverage assigns the switch to the rounded average layer of its
	// cores (Algorithm 1, step 7).
	LayerAverage SwitchLayerRule = iota
	// LayerMajority assigns the switch to the layer holding most of its cores.
	LayerMajority
)

// Options configures a synthesis run.
type Options struct {
	// Lib is the NoC component library (power/delay/area models).
	Lib noclib.Library
	// FrequenciesMHz lists the NoC operating frequencies to sweep. The best
	// design point over all frequencies is reported.
	FrequenciesMHz []float64
	// MaxILL is the maximum number of NoC links allowed across any two
	// adjacent layers (0 = unconstrained).
	MaxILL int
	// SoftILLMargin is the distance below MaxILL at which the soft threshold
	// of Algorithm 3 starts penalising new vertical links.
	SoftILLMargin int
	// Phase selects the connectivity method (see Phase).
	Phase Phase
	// Partition holds the PG/SPG/LPG construction parameters.
	Partition partition.Params
	// SwitchLayer selects the Phase-1 switch layer assignment rule.
	SwitchLayer SwitchLayerRule
	// PowerWeight and LatencyWeight define the objective used to pick the
	// best design point: PowerWeight*TotalPowerMW + LatencyWeight*AvgLatency.
	PowerWeight, LatencyWeight float64
	// RunLPPlacement runs the switch-position LP on every explored design
	// point. When false (the default used by the sweeps) only the centroid
	// estimate is used during exploration and the LP is run on the best
	// point, which is much faster and yields the same ranking in practice.
	RunLPPlacement bool
	// LPOnBest runs the LP placement on the winning design point even when
	// RunLPPlacement is false.
	LPOnBest bool
	// MaxSwitchesPerLayer caps the Phase-2 sweep (0 = up to one switch per
	// core, the full sweep of Algorithm 2).
	MaxSwitchesPerLayer int
	// RequireLatencyMet rejects design points that violate any flow latency
	// constraint.
	RequireLatencyMet bool
	// Parallelism bounds how many design points are evaluated concurrently.
	// 0 or 1 evaluates serially, n > 1 uses at most n workers, and a negative
	// value uses one worker per available CPU. Serial and parallel runs
	// produce identical Result.Points ordering and identical Best. When
	// Scheduler is set, a positive Parallelism additionally caps this run's
	// share of the shared slots; 0 or negative leaves the run bounded only by
	// the scheduler capacity.
	Parallelism int
	// Scheduler, when non-nil, makes the run draw its evaluation slots from
	// the given shared, process-wide fair-share scheduler instead of a
	// private worker pool, so many concurrent Synthesize calls multiplex a
	// fixed CPU budget instead of oversubscribing it. Scheduling never
	// affects results: a run through a contended shared scheduler is
	// byte-identical to a serial run.
	Scheduler *Scheduler
	// Weight is the fair-share weight of the run on the shared scheduler
	// (<= 0 selects 1). A run with weight 2 is granted twice the slots of a
	// weight-1 run when both are backlogged. Ignored without Scheduler.
	Weight int
	// Progress, when non-nil, receives an Event after every evaluated design
	// point. Callbacks are serialised; a slow callback stalls the sweep.
	Progress func(Event)
	// DisablePartitionCache turns off the sweep-wide partition cache, so
	// every frequency recomputes its PG/SPG/LPG partitions from scratch. The
	// partitioner is deterministic, so cached and uncached runs return
	// byte-identical results; the switch exists for benchmarking and debug.
	DisablePartitionCache bool
	// FullRebuildRouter makes the path-computation step rebuild its full
	// O(S^2) arc-cost graph for every flow and deadlock retry instead of
	// maintaining it incrementally. Reference implementation for equivalence
	// tests and before/after benchmarks only.
	FullRebuildRouter bool
	// Sim, when non-nil, runs the flit-level traffic simulator on every valid
	// design point after evaluation and attaches the resulting statistics to
	// DesignPoint.Sim. Simulation runs on the same worker pool as the rest of
	// the point's evaluation and is deterministic for a fixed config, so it
	// does not perturb the ordering or identity of the returned points.
	Sim *sim.Config
	// Sparing, when non-nil, provisions spare TSVs (vertical links) and spare
	// wires (planar links) on every valid design point so the fabricated link
	// set reaches the configured target yield on the configured process. The
	// spare counts are reported in Metrics.SpareTSVMacros and consumed by the
	// fault replay (faults on spared links are absorbed without re-routing).
	Sparing *fault.SparingConfig
	// Fault, when non-nil, replays deterministic fault plans against every
	// valid design point — spares absorb what they can, stranded flows are
	// re-routed over the surviving fabricated links, and the result is
	// attached to DesignPoint.Survivability. With Sim also set, every
	// non-absorbed plan is additionally cross-validated in the flit simulator
	// (fault injection on the unrepaired topology, clean run on the repaired
	// one).
	Fault *fault.ModelConfig
	// Contend attaches the analytic M/D/1 contention estimate of
	// internal/contend to every valid design point (DesignPoint.Contention).
	// The estimate is computed from the committed routes in microseconds and
	// is byte-deterministic, so it never perturbs ordering or best-point
	// identity; it only adds data.
	Contend bool
	// SimBand, when positive, turns full simulation into a triage step (the
	// fidelity ladder): instead of simulating every valid point, only the
	// points within the given fractional band of the estimated-contention
	// Pareto front are simulated; the rest keep their analytic estimate and
	// are marked SimTriage "skip". Requires Sim and Contend. A point p is
	// skipped when some other valid point q dominates it outright (no worse
	// in power or estimated latency, strictly better in one) and clears a
	// SimBand margin in one coordinate: the exact power coordinate by a
	// plain (1+SimBand) factor, or the latency coordinate with only the
	// estimated waiting component — the part that can actually be wrong —
	// hedged by (1+SimBand) each way. The band thus keeps the whole
	// estimated front plus every near-tie, and widening it absorbs more
	// estimator error.
	SimBand float64
	// Space, when non-nil, replaces the classic frequency x switch-count
	// sweep with the N-dimensional design-space explorer: the cross product
	// of the space's axes is enumerated in a deterministic order, provably
	// dominated regions are pruned before partitioning and routing (unless
	// Space.NoPrune), and every point — evaluated or pruned — appears in
	// Result.Points. A space with a freq_mhz axis overrides FrequenciesMHz.
	// Explorer runs never apply the LPOnBest refinement (re-run the winning
	// cell through a classic sweep for refined switch positions).
	Space *Space

	// explore holds the checkpoint/shard hooks installed by
	// SetExplorationHooks. Like Progress, the hooks are execution plumbing
	// with no influence on what evaluated cells contain, so they are
	// excluded from the cache fingerprint.
	explore ExplorationHooks
	// explCounts restricts the Phase-1 switch-count sweep to the listed
	// counts (nil = the classic 1..NumCores). Set by the explorer on the
	// per-cell option copies it hands to synthesizeAtFrequency.
	explCounts []int
	// explPrune, when non-nil, is consulted before building any Phase-1
	// point: a non-empty return is the prune reason and the point becomes a
	// stub without being partitioned, routed or evaluated. Set by the
	// explorer (branch-and-bound rule) on per-cell option copies.
	explPrune func(switches int) string
	// explTSVBudget, when positive, invalidates design points that need more
	// TSV macros than the budget. Set by the explorer from the tsv_budget
	// axis on per-cell option copies; the axis values are covered by the
	// cache fingerprint through the Space section of memo.Key.
	explTSVBudget int
}

// DefaultOptions returns the options used throughout the paper's experiments:
// 400 MHz through 1 GHz sweep left to the caller (single 400 MHz here),
// max_ill of 25, power-dominated objective, LP placement on the best point.
func DefaultOptions() Options {
	return Options{
		Lib:               noclib.DefaultLibrary(),
		FrequenciesMHz:    []float64{400},
		MaxILL:            25,
		SoftILLMargin:     2,
		Phase:             PhaseAuto,
		Partition:         partition.DefaultParams(),
		SwitchLayer:       LayerAverage,
		PowerWeight:       1.0,
		LatencyWeight:     0.5,
		RunLPPlacement:    false,
		LPOnBest:          true,
		RequireLatencyMet: false,
	}
}

// Validate checks the option values.
func (o Options) Validate() error {
	if err := o.Lib.Validate(); err != nil {
		return err
	}
	if len(o.FrequenciesMHz) == 0 {
		return fmt.Errorf("synth: no frequencies to sweep")
	}
	for _, f := range o.FrequenciesMHz {
		if f <= 0 {
			return fmt.Errorf("synth: non-positive frequency %g", f)
		}
	}
	if o.MaxILL < 0 {
		return fmt.Errorf("synth: negative MaxILL")
	}
	if err := o.Partition.Validate(); err != nil {
		return err
	}
	if o.PowerWeight < 0 || o.LatencyWeight < 0 {
		return fmt.Errorf("synth: negative objective weight")
	}
	if o.PowerWeight == 0 && o.LatencyWeight == 0 {
		return fmt.Errorf("synth: objective weights are both zero")
	}
	if o.Sim != nil {
		if err := o.Sim.Validate(); err != nil {
			return err
		}
	}
	if math.IsNaN(o.SimBand) || math.IsInf(o.SimBand, 0) || o.SimBand < 0 {
		return fmt.Errorf("synth: SimBand must be a finite non-negative fraction, got %g", o.SimBand)
	}
	if o.SimBand > 0 {
		if o.Sim == nil {
			return fmt.Errorf("synth: SimBand requires Sim (there is no simulation to triage)")
		}
		if !o.Contend {
			return fmt.Errorf("synth: SimBand requires Contend (the band is cut on the contention estimate)")
		}
	}
	if o.Sparing != nil {
		if err := o.Sparing.Validate(); err != nil {
			return err
		}
	}
	if o.Fault != nil {
		if err := o.Fault.Validate(); err != nil {
			return err
		}
	}
	if o.Space != nil {
		if err := o.Space.validate(o); err != nil {
			return err
		}
	}
	return nil
}
