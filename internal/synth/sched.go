package synth

import (
	"context"
	"runtime"
	"sync"
)

// Scheduler is a process-wide, fair-share admission controller for
// design-point evaluations. Before PR 6 every Synthesize call created its own
// worker pool, so N concurrent requests on a shared Engine (or a server)
// oversubscribed the CPU N-fold. A Scheduler owns a fixed number of
// evaluation slots; every synthesis run registers as a client and acquires a
// slot per design point in flight.
//
// When demand exceeds capacity, slots are granted by stride scheduling: each
// run carries a virtual pass value that advances by stride = K/weight per
// granted slot, and the backlogged run with the smallest pass is served
// next. Backlogged runs therefore share the machine proportionally to their
// weights — a weight-2 request receives twice the slots of a weight-1
// request — instead of first-come-first-served starving latecomers, and a
// newly arriving run joins at the current virtual time rather than claiming
// the service it "missed" while absent.
//
// Scheduling never affects results: design points land at pre-assigned
// indices and the engine's ordering guarantees are independent of execution
// interleaving, so a run through a contended shared scheduler is
// byte-identical to a serial run.
//
// A Scheduler is safe for concurrent use and is typically created once per
// process (sunfloor-server creates one sized to the CPU count and passes it
// to every request's options).
type Scheduler struct {
	capacity int

	mu         sync.Mutex
	inUse      int
	clients    map[*schedClient]struct{}
	seq        uint64
	globalPass uint64 // pass of the most recently granted client
}

// strideUnit is the pass advance of a weight-1 grant. Strides are
// strideUnit/weight, so integer division keeps distinct weights ordered as
// long as weights stay far below the unit.
const strideUnit = 1 << 20

// SchedStats is a snapshot of scheduler occupancy.
type SchedStats struct {
	// Capacity is the total number of evaluation slots.
	Capacity int `json:"capacity"`
	// Clients is the number of registered (active) synthesis runs.
	Clients int `json:"clients"`
	// Running is the number of slots currently held.
	Running int `json:"running"`
	// Waiting is the number of evaluations blocked on a slot.
	Waiting int `json:"waiting"`
}

// NewScheduler returns a scheduler with the given number of evaluation
// slots. A non-positive capacity selects one slot per available CPU.
func NewScheduler(capacity int) *Scheduler {
	if capacity <= 0 {
		capacity = runtime.GOMAXPROCS(0)
	}
	return &Scheduler{
		capacity: capacity,
		clients:  make(map[*schedClient]struct{}),
	}
}

// Capacity returns the total number of evaluation slots.
func (s *Scheduler) Capacity() int { return s.capacity }

// Stats returns a snapshot of the scheduler occupancy.
func (s *Scheduler) Stats() SchedStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := SchedStats{Capacity: s.capacity, Clients: len(s.clients), Running: s.inUse}
	//determlint:ordered integer counting over a set: addition of ints commutes, and SchedStats is observability plumbing, not part of any Result
	for c := range s.clients {
		for _, w := range c.waiters {
			if !w.granted && !w.abandoned {
				st.Waiting++
			}
		}
	}
	return st
}

// register adds a run with the given fair-share weight (<= 0 selects 1) and
// per-run concurrency limit (0 = bounded only by scheduler capacity). The
// run joins at the current virtual time.
func (s *Scheduler) register(weight, limit int) *schedClient {
	if weight <= 0 {
		weight = 1
	}
	c := &schedClient{s: s, weight: weight, limit: limit}
	s.mu.Lock()
	s.seq++
	c.seq = s.seq
	c.pass = s.globalPass
	s.clients[c] = struct{}{}
	s.mu.Unlock()
	return c
}

// schedClient is one registered synthesis run drawing slots from the shared
// scheduler.
type schedClient struct {
	s      *Scheduler
	weight int
	limit  int
	seq    uint64

	// Guarded by s.mu.
	running int
	pass    uint64
	waiters []*schedWaiter // FIFO within the run
}

// schedWaiter is one evaluation blocked on a slot.
type schedWaiter struct {
	ready     chan struct{} // closed when the slot is granted
	granted   bool
	abandoned bool
}

// acquire blocks until the scheduler grants this run a slot or ctx is done.
// On success the caller owns one slot and must release it.
func (c *schedClient) acquire(ctx context.Context) error {
	s := c.s
	w := &schedWaiter{ready: make(chan struct{})}
	s.mu.Lock()
	// A run that went idle keeps its old (small) pass; pulling it up to the
	// current virtual time stops it from claiming a catch-up burst that
	// would starve the runs that stayed busy.
	if c.pass < s.globalPass {
		c.pass = s.globalPass
	}
	c.waiters = append(c.waiters, w)
	s.dispatchLocked()
	s.mu.Unlock()

	select {
	case <-w.ready:
		return nil
	case <-ctx.Done():
	}
	// Cancelled: the grant may have raced the cancellation. Settle under the
	// lock — if the slot arrived anyway, hand it back before reporting the
	// cancellation so no slot is ever leaked.
	s.mu.Lock()
	if w.granted {
		c.running--
		s.inUse--
		s.dispatchLocked()
		s.mu.Unlock()
		return ctx.Err()
	}
	w.abandoned = true
	s.mu.Unlock()
	return ctx.Err()
}

// release returns a slot to the scheduler.
func (c *schedClient) release() {
	s := c.s
	s.mu.Lock()
	c.running--
	s.inUse--
	s.dispatchLocked()
	s.mu.Unlock()
}

// close deregisters the run. The caller must have released every slot and
// have no acquire in flight (SynthesizeContext guarantees both by joining
// all workers before returning).
func (c *schedClient) close() {
	s := c.s
	s.mu.Lock()
	delete(s.clients, c)
	s.dispatchLocked()
	s.mu.Unlock()
}

// dispatchLocked hands free slots to waiting runs: among the runs with a
// live waiter that are under their per-run limit it grants the one with the
// smallest pass, breaking ties by registration order, then advances that
// run's pass by its stride. Callers must hold s.mu.
func (s *Scheduler) dispatchLocked() {
	for s.inUse < s.capacity {
		var best *schedClient
		//determlint:ordered the minimum under the total order (pass, seq) is unique — seq never repeats — so the granted run is independent of iteration order
		for c := range s.clients {
			if c.limit > 0 && c.running >= c.limit {
				continue
			}
			if !c.hasWaiterLocked() {
				continue
			}
			if best == nil || c.pass < best.pass || (c.pass == best.pass && c.seq < best.seq) {
				best = c
			}
		}
		if best == nil {
			return
		}
		w := best.popWaiterLocked()
		w.granted = true
		best.running++
		s.inUse++
		s.globalPass = best.pass
		best.pass += strideUnit / uint64(best.weight)
		close(w.ready)
	}
}

// hasWaiterLocked reports whether the run has a live (non-abandoned) waiter,
// compacting abandoned ones off the queue head as it looks.
func (c *schedClient) hasWaiterLocked() bool {
	for len(c.waiters) > 0 && c.waiters[0].abandoned {
		c.waiters = c.waiters[1:]
	}
	return len(c.waiters) > 0
}

// popWaiterLocked removes and returns the first live waiter. Only called
// after hasWaiterLocked returned true under the same lock.
func (c *schedClient) popWaiterLocked() *schedWaiter {
	w := c.waiters[0]
	c.waiters = c.waiters[1:]
	return w
}
