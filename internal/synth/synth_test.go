package synth

import (
	"testing"

	"sunfloor3d/internal/bench"
	"sunfloor3d/internal/model"
)

// smallDesign builds an 8-core, 2-layer design that synthesizes quickly.
func smallDesign(t *testing.T) *model.CommGraph {
	t.Helper()
	var cores []model.Core
	for l := 0; l < 2; l++ {
		for i := 0; i < 4; i++ {
			cores = append(cores, model.Core{
				Name:  "c" + string(rune('0'+l)) + string(rune('0'+i)),
				Width: 1.5, Height: 1.5, X: float64(i) * 1.8, Y: float64(l) * 0.1, Layer: l,
			})
		}
	}
	flows := []model.Flow{
		{Src: 0, Dst: 4, BandwidthMBps: 800, LatencyCycles: 4},
		{Src: 1, Dst: 5, BandwidthMBps: 700, LatencyCycles: 4},
		{Src: 2, Dst: 6, BandwidthMBps: 750, LatencyCycles: 4},
		{Src: 3, Dst: 7, BandwidthMBps: 650, LatencyCycles: 4},
		{Src: 0, Dst: 1, BandwidthMBps: 100, LatencyCycles: 8},
		{Src: 1, Dst: 2, BandwidthMBps: 120, LatencyCycles: 8},
		{Src: 4, Dst: 5, BandwidthMBps: 90, LatencyCycles: 8},
		{Src: 6, Dst: 7, BandwidthMBps: 110, LatencyCycles: 8},
	}
	g, err := model.NewCommGraph(cores, flows)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestOptionsValidate(t *testing.T) {
	if err := DefaultOptions().Validate(); err != nil {
		t.Fatalf("default options invalid: %v", err)
	}
	bad := DefaultOptions()
	bad.FrequenciesMHz = nil
	if err := bad.Validate(); err == nil {
		t.Error("missing frequencies should fail")
	}
	bad = DefaultOptions()
	bad.FrequenciesMHz = []float64{-5}
	if err := bad.Validate(); err == nil {
		t.Error("negative frequency should fail")
	}
	bad = DefaultOptions()
	bad.MaxILL = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative MaxILL should fail")
	}
	bad = DefaultOptions()
	bad.PowerWeight, bad.LatencyWeight = 0, 0
	if err := bad.Validate(); err == nil {
		t.Error("zero objective should fail")
	}
	bad = DefaultOptions()
	bad.PowerWeight = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative weight should fail")
	}
}

func TestSynthesizeSmallDesign(t *testing.T) {
	g := smallDesign(t)
	opt := DefaultOptions()
	res, err := Synthesize(g, opt)
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	if res.Best == nil {
		t.Fatal("no valid design point found")
	}
	if len(res.Points) == 0 {
		t.Fatal("no design points explored")
	}
	valid := res.ValidPoints()
	if len(valid) == 0 {
		t.Fatal("no valid points")
	}
	// Every valid point must be structurally sound and meet the constraints.
	for _, p := range valid {
		if err := p.Topology.Validate(); err != nil {
			t.Errorf("point (sw=%d): invalid topology: %v", p.SwitchCount, err)
		}
		if opt.MaxILL > 0 && p.Metrics.MaxILL > opt.MaxILL {
			t.Errorf("point (sw=%d): maxILL %d exceeds %d", p.SwitchCount, p.Metrics.MaxILL, opt.MaxILL)
		}
		if p.Metrics.Power.TotalMW() <= 0 {
			t.Errorf("point (sw=%d): non-positive power", p.SwitchCount)
		}
		if p.Metrics.AvgLatencyCycles < 1 {
			t.Errorf("point (sw=%d): latency %v below 1 cycle", p.SwitchCount, p.Metrics.AvgLatencyCycles)
		}
	}
	// The best point's cost must indeed be minimal among valid points.
	bestCost := res.Best.Cost(opt.PowerWeight, opt.LatencyWeight)
	for _, p := range valid {
		if c := p.Cost(opt.PowerWeight, opt.LatencyWeight); c < bestCost-1e-6 {
			t.Errorf("best point cost %v beaten by sw=%d with %v", bestCost, p.SwitchCount, c)
		}
	}
}

func TestSynthesizeErrors(t *testing.T) {
	g := smallDesign(t)
	opt := DefaultOptions()
	opt.FrequenciesMHz = nil
	if _, err := Synthesize(g, opt); err == nil {
		t.Error("invalid options should fail")
	}
	empty, err := model.NewCommGraph(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Synthesize(empty, DefaultOptions()); err == nil {
		t.Error("empty design should fail")
	}
	noFlows, err := model.NewCommGraph([]model.Core{{Name: "x", Width: 1, Height: 1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Synthesize(noFlows, DefaultOptions()); err == nil {
		t.Error("design without flows should fail")
	}
}

func TestPhase2UsesFewerInterLayerLinks(t *testing.T) {
	g := smallDesign(t)

	opt1 := DefaultOptions()
	opt1.Phase = Phase1Only
	res1, err := Synthesize(g, opt1)
	if err != nil || res1.Best == nil {
		t.Fatalf("phase 1 synthesis failed: %v", err)
	}

	opt2 := DefaultOptions()
	opt2.Phase = Phase2Only
	res2, err := Synthesize(g, opt2)
	if err != nil || res2.Best == nil {
		t.Fatalf("phase 2 synthesis failed: %v", err)
	}

	// Phase 2 restricts cores to same-layer switches, so its inter-layer link
	// usage must not exceed Phase 1's for the best points (Fig. 14 vs 13).
	if res2.Best.Metrics.MaxILL > res1.Best.Metrics.MaxILL {
		t.Errorf("phase 2 uses more inter-layer links (%d) than phase 1 (%d)",
			res2.Best.Metrics.MaxILL, res1.Best.Metrics.MaxILL)
	}
	// In Phase 2 every core must attach to a switch on its own layer.
	top := res2.Best.Topology
	for c, sw := range top.CoreAttach {
		if top.Switches[sw].Layer != g.Cores[c].Layer {
			t.Errorf("phase 2: core %d (layer %d) attached to switch on layer %d",
				c, g.Cores[c].Layer, top.Switches[sw].Layer)
		}
	}
	// Phase 1 should be at least as power-efficient as Phase 2 (Fig. 17).
	if res1.Best.Metrics.Power.TotalMW() > res2.Best.Metrics.Power.TotalMW()*1.15 {
		t.Errorf("phase 1 power (%v mW) much worse than phase 2 (%v mW)",
			res1.Best.Metrics.Power.TotalMW(), res2.Best.Metrics.Power.TotalMW())
	}
}

func TestTighterMaxILLNeverReducesPower(t *testing.T) {
	// The trend of Fig. 21: loosening the inter-layer link budget can only
	// help (or leave unchanged) the best achievable power.
	g := smallDesign(t)
	var prevPower float64
	first := true
	for _, maxILL := range []int{2, 4, 8, 0} { // 0 = unconstrained
		opt := DefaultOptions()
		opt.MaxILL = maxILL
		res, err := Synthesize(g, opt)
		if err != nil {
			t.Fatalf("maxILL=%d: %v", maxILL, err)
		}
		if res.Best == nil {
			// Very tight budgets may admit no design at all; skip.
			continue
		}
		p := res.Best.Metrics.Power.TotalMW()
		if !first && p > prevPower*1.10 {
			t.Errorf("power increased from %v to %v when loosening maxILL to %d",
				prevPower, p, maxILL)
		}
		prevPower = p
		first = false
	}
	if first {
		t.Fatal("no maxILL setting produced a valid design")
	}
}

func TestFrequencySweepPrefersLowestFeasible(t *testing.T) {
	g := smallDesign(t)
	opt := DefaultOptions()
	opt.FrequenciesMHz = []float64{400, 800}
	res, err := Synthesize(g, opt)
	if err != nil || res.Best == nil {
		t.Fatalf("synthesis failed: %v", err)
	}
	// Dynamic power scales with frequency, so with a power-dominated
	// objective the best point should come from the lowest frequency.
	if res.Best.FreqMHz != 400 {
		t.Errorf("best point at %v MHz, expected 400 MHz", res.Best.FreqMHz)
	}
}

func TestParetoFront(t *testing.T) {
	g := smallDesign(t)
	res, err := Synthesize(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	front := res.ParetoFront()
	if len(front) == 0 {
		t.Fatal("empty Pareto front")
	}
	// The front must be sorted by power and latency must be non-increasing.
	for i := 1; i < len(front); i++ {
		if front[i-1].Metrics.Power.TotalMW() > front[i].Metrics.Power.TotalMW() {
			t.Error("Pareto front not sorted by power")
		}
		if front[i].Metrics.AvgLatencyCycles > front[i-1].Metrics.AvgLatencyCycles+1e-9 {
			t.Error("Pareto front contains a dominated point")
		}
	}
	// No front point may be dominated by any valid point.
	for _, fp := range front {
		for _, p := range res.ValidPoints() {
			if p.Metrics.Power.TotalMW() < fp.Metrics.Power.TotalMW()-1e-9 &&
				p.Metrics.AvgLatencyCycles < fp.Metrics.AvgLatencyCycles-1e-9 {
				t.Error("Pareto front point is dominated")
			}
		}
	}
}

func TestSynthesize2DFlattened(t *testing.T) {
	g := smallDesign(t)
	flat := g.Flatten2D()
	opt := DefaultOptions()
	res, err := Synthesize(flat, opt)
	if err != nil || res.Best == nil {
		t.Fatalf("2-D synthesis failed: %v", err)
	}
	if res.Best.Metrics.MaxILL != 0 {
		t.Errorf("2-D design reports %d inter-layer links", res.Best.Metrics.MaxILL)
	}
	if res.Best.Metrics.TSVMacros != 0 {
		t.Errorf("2-D design reports %d TSV macros", res.Best.Metrics.TSVMacros)
	}
}

func TestSynthesizeD26MediaEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end benchmark synthesis skipped in -short mode")
	}
	b := bench.D26Media(1)
	opt := DefaultOptions()
	res3d, err := Synthesize(b.Graph3D, opt)
	if err != nil {
		t.Fatalf("3-D synthesis: %v", err)
	}
	if res3d.Best == nil {
		t.Fatal("no valid 3-D design point for D_26_media")
	}
	res2d, err := Synthesize(b.Graph2D, opt)
	if err != nil {
		t.Fatalf("2-D synthesis: %v", err)
	}
	if res2d.Best == nil {
		t.Fatal("no valid 2-D design point for D_26_media")
	}
	// Headline claim of the paper (Section VIII-A): the 3-D implementation
	// consumes less total NoC power than the 2-D one, because long horizontal
	// wires are replaced by short vertical ones.
	p3, p2 := res3d.Best.Metrics.Power.TotalMW(), res2d.Best.Metrics.Power.TotalMW()
	if p3 >= p2 {
		t.Errorf("3-D power (%.2f mW) not below 2-D power (%.2f mW)", p3, p2)
	}
	// Wire length check behind Fig. 12: total wire length shrinks in 3-D.
	if res3d.Best.Metrics.TotalWireLengthMM >= res2d.Best.Metrics.TotalWireLengthMM {
		t.Errorf("3-D total wire length (%.2f mm) not below 2-D (%.2f mm)",
			res3d.Best.Metrics.TotalWireLengthMM, res2d.Best.Metrics.TotalWireLengthMM)
	}
	// The 3-D design must respect the default max_ill of 25.
	if res3d.Best.Metrics.MaxILL > opt.MaxILL {
		t.Errorf("3-D best point uses %d inter-layer links (max %d)",
			res3d.Best.Metrics.MaxILL, opt.MaxILL)
	}
}

func TestDesignPointCost(t *testing.T) {
	dp := DesignPoint{}
	dp.Metrics.Power.SwitchMW = 10
	dp.Metrics.AvgLatencyCycles = 3
	if c := dp.Cost(1, 0); c != 10 {
		t.Errorf("power-only cost = %v", c)
	}
	if c := dp.Cost(0, 2); c != 6 {
		t.Errorf("latency-only cost = %v", c)
	}
	if c := dp.Cost(1, 1); c != 13 {
		t.Errorf("blended cost = %v", c)
	}
}

func TestPhaseString(t *testing.T) {
	for _, p := range []Phase{PhaseAuto, Phase1Only, Phase2Only, Phase(9)} {
		if p.String() == "" {
			t.Errorf("empty string for phase %d", int(p))
		}
	}
}
