package synth

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"
)

// waitFor polls cond until it holds or the deadline expires.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSchedulerCapacityBound: no more slots are ever held than the capacity.
func TestSchedulerCapacityBound(t *testing.T) {
	s := NewScheduler(3)
	c := s.register(1, 0)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if err := c.acquire(ctx); err != nil {
			t.Fatal(err)
		}
	}
	extra := make(chan error, 1)
	go func() { extra <- c.acquire(ctx) }()
	waitFor(t, "fourth acquire to queue", func() bool { return s.Stats().Waiting == 1 })
	if got := s.Stats().Running; got != 3 {
		t.Fatalf("running = %d, want 3", got)
	}
	c.release()
	if err := <-extra; err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Running; got != 3 {
		t.Fatalf("running after handoff = %d, want 3", got)
	}
	for i := 0; i < 3; i++ {
		c.release()
	}
	c.close()
	if st := s.Stats(); st.Running != 0 || st.Clients != 0 || st.Waiting != 0 {
		t.Fatalf("scheduler not drained: %+v", st)
	}
}

// TestSchedulerPerRunLimit: a run's private Parallelism cap holds even when
// the shared scheduler has free capacity.
func TestSchedulerPerRunLimit(t *testing.T) {
	s := NewScheduler(4)
	c := s.register(1, 1)
	ctx := context.Background()
	if err := c.acquire(ctx); err != nil {
		t.Fatal(err)
	}
	second := make(chan error, 1)
	go func() { second <- c.acquire(ctx) }()
	waitFor(t, "second acquire to queue", func() bool { return s.Stats().Waiting == 1 })
	if got := s.Stats().Running; got != 1 {
		t.Fatalf("running = %d, want 1 (per-run limit)", got)
	}
	c.release()
	if err := <-second; err != nil {
		t.Fatal(err)
	}
	c.release()
	c.close()
}

// TestSchedulerFairShare backs up two equal-weight runs behind a capacity-1
// scheduler and checks that grants alternate instead of draining the older
// run first; then repeats with a 2:1 weight ratio and checks the grant mix.
func TestSchedulerFairShare(t *testing.T) {
	run := func(t *testing.T, weightA, weightB, grantsEach int) (gotA, gotB int, order []string) {
		s := NewScheduler(1)
		a := s.register(weightA, 0)
		b := s.register(weightB, 0)
		ctx := context.Background()

		type grant struct {
			name    string
			release chan struct{}
		}
		grants := make(chan grant, 2*grantsEach)
		var wg sync.WaitGroup
		spawn := func(c *schedClient, name string, n int) {
			for i := 0; i < n; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					if err := c.acquire(ctx); err != nil {
						t.Error(err)
						return
					}
					rel := make(chan struct{})
					grants <- grant{name, rel}
					<-rel
					c.release()
				}()
			}
		}
		spawn(a, "a", grantsEach)
		spawn(b, "b", grantsEach)
		// Exactly one waiter is granted immediately (capacity 1); wait until
		// every other worker is queued so the stride order is fully formed.
		waitFor(t, "all workers queued", func() bool { return s.Stats().Waiting == 2*grantsEach-1 })

		counts := map[string]int{}
		for i := 0; i < 2*grantsEach; i++ {
			g := <-grants
			counts[g.name]++
			order = append(order, g.name)
			close(g.release)
		}
		wg.Wait()
		a.close()
		b.close()
		return counts["a"], counts["b"], order
	}

	t.Run("equal weights alternate", func(t *testing.T) {
		_, _, order := run(t, 1, 1, 8)
		// Ignore the racy first grant; afterwards no run may be served three
		// times in a row while the other is backlogged.
		for i := 3; i < len(order); i++ {
			if order[i] == order[i-1] && order[i] == order[i-2] {
				t.Fatalf("run %q served 3 consecutive slots under contention: %v", order[i], order)
			}
		}
	})

	t.Run("weight 2 gets double share", func(t *testing.T) {
		// With weights 2:1, after 9 contended grants the weight-2 run must
		// have received roughly twice the slots of the weight-1 run.
		_, _, order := run(t, 2, 1, 12)
		nA := 0
		for _, g := range order[:9] {
			if g == "a" {
				nA++
			}
		}
		if nA < 5 || nA > 7 {
			t.Fatalf("weight-2 run got %d of the first 9 grants, want ~6: %v", nA, order)
		}
	})
}

// TestSchedulerWaiterCancel: a waiter that gives up returns the context
// error, leaks no slot, and later grants proceed.
func TestSchedulerWaiterCancel(t *testing.T) {
	s := NewScheduler(1)
	c := s.register(1, 0)
	if err := c.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() { errCh <- c.acquire(ctx) }()
	waitFor(t, "waiter to queue", func() bool { return s.Stats().Waiting == 1 })
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled acquire returned %v", err)
	}
	c.release()
	if st := s.Stats(); st.Running != 0 || st.Waiting != 0 {
		t.Fatalf("slot leaked after waiter cancel: %+v", st)
	}
	// The scheduler still works.
	if err := c.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	c.release()
	c.close()
}

// TestSynthesizeSharedScheduler: concurrent runs multiplexed over one shared
// scheduler finish, stay within its capacity, and leave it empty.
func TestSynthesizeSharedScheduler(t *testing.T) {
	g := smallDesign(t)
	s := NewScheduler(2)

	ref, err := Synthesize(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	const runs = 4
	results := make([]*Result, runs)
	errs := make([]error, runs)
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			opt := DefaultOptions()
			opt.Scheduler = s
			opt.Weight = 1 + i%2
			opt.Parallelism = -1
			results[i], errs[i] = SynthesizeContext(context.Background(), g, opt)
		}(i)
	}
	wg.Wait()
	for i := 0; i < runs; i++ {
		if errs[i] != nil {
			t.Fatalf("run %d: %v", i, errs[i])
		}
		if len(results[i].Points) != len(ref.Points) {
			t.Fatalf("run %d explored %d points, reference %d", i, len(results[i].Points), len(ref.Points))
		}
		for j := range ref.Points {
			if results[i].Points[j].FailReason != ref.Points[j].FailReason ||
				results[i].Points[j].Valid != ref.Points[j].Valid ||
				results[i].Points[j].Metrics.Power.TotalMW() != ref.Points[j].Metrics.Power.TotalMW() {
				t.Fatalf("run %d point %d diverged from serial reference", i, j)
			}
		}
	}
	if st := s.Stats(); st.Clients != 0 || st.Running != 0 || st.Waiting != 0 {
		t.Fatalf("scheduler not empty after runs: %+v", st)
	}
}

// TestSynthesizeCancelDrainsWorkers cancels a parallel sweep mid-flight and
// asserts (goleak-style) that SynthesizeContext returns only after every
// worker goroutine has drained: the goroutine count settles back to the
// baseline and the shared scheduler holds no slots or clients.
func TestSynthesizeCancelDrainsWorkers(t *testing.T) {
	g := smallDesign(t)
	s := NewScheduler(4)
	baseline := runtime.NumGoroutine()

	for round := 0; round < 3; round++ {
		ctx, cancel := context.WithCancel(context.Background())
		opt := DefaultOptions()
		opt.FrequenciesMHz = []float64{400, 500, 600, 700, 800}
		opt.Scheduler = s
		opt.Parallelism = -1
		started := make(chan struct{})
		var once sync.Once
		// The callback parks the sweep until the cancellation arrives, so the
		// cancel is guaranteed to land while workers are in flight.
		opt.Progress = func(Event) {
			once.Do(func() { close(started) })
			<-ctx.Done()
		}
		done := make(chan error, 1)
		go func() {
			_, err := SynthesizeContext(ctx, g, opt)
			done <- err
		}()
		<-started // at least one point evaluated: workers are in flight
		cancel()
		if err := <-done; !errors.Is(err, context.Canceled) {
			t.Fatalf("round %d: cancelled run returned %v", round, err)
		}
		if st := s.Stats(); st.Clients != 0 || st.Running != 0 || st.Waiting != 0 {
			t.Fatalf("round %d: scheduler still occupied after cancel: %+v", round, st)
		}
	}

	// Goroutine accounting: everything spawned by the cancelled runs must be
	// gone. Allow a settling window for the final workers to exit.
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked after cancelled runs: baseline %d, now %d\n%s",
				baseline, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSchedulerDefaultCapacity: non-positive capacity sizes to the CPU count.
func TestSchedulerDefaultCapacity(t *testing.T) {
	if got := NewScheduler(0).Capacity(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("default capacity = %d, want GOMAXPROCS", got)
	}
	if got := NewScheduler(7).Capacity(); got != 7 {
		t.Fatalf("capacity = %d, want 7", got)
	}
}
