package synth

import (
	"testing"

	"sunfloor3d/internal/model"
)

// These tests cover the less common option combinations: the majority-based
// switch layer rule, LP placement inside the sweep, the latency-requirement
// filter and the Phase-2 layer cap.

func optionsDesign(t *testing.T) *model.CommGraph {
	t.Helper()
	var cores []model.Core
	for l := 0; l < 2; l++ {
		for i := 0; i < 5; i++ {
			cores = append(cores, model.Core{
				Name:  "q" + string(rune('0'+l)) + string(rune('0'+i)),
				Width: 1.2, Height: 1.2, X: float64(i) * 1.5, Y: float64(l) * 0.2, Layer: l,
			})
		}
	}
	flows := []model.Flow{
		{Src: 0, Dst: 5, BandwidthMBps: 900, LatencyCycles: 2},
		{Src: 1, Dst: 6, BandwidthMBps: 850, LatencyCycles: 2},
		{Src: 2, Dst: 7, BandwidthMBps: 800, LatencyCycles: 3},
		{Src: 3, Dst: 8, BandwidthMBps: 750, LatencyCycles: 3},
		{Src: 4, Dst: 9, BandwidthMBps: 700, LatencyCycles: 3},
		{Src: 0, Dst: 1, BandwidthMBps: 150, LatencyCycles: 6},
		{Src: 5, Dst: 6, BandwidthMBps: 140, LatencyCycles: 6},
		{Src: 2, Dst: 3, BandwidthMBps: 130, LatencyCycles: 6},
		{Src: 7, Dst: 8, BandwidthMBps: 120, LatencyCycles: 6},
	}
	g, err := model.NewCommGraph(cores, flows)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestLayerMajorityRule(t *testing.T) {
	g := optionsDesign(t)
	opt := DefaultOptions()
	opt.SwitchLayer = LayerMajority
	res, err := Synthesize(g, opt)
	if err != nil || res.Best == nil {
		t.Fatalf("synthesis with majority rule failed: %v", err)
	}
	for _, s := range res.Best.Topology.Switches {
		if s.Layer < 0 || s.Layer >= g.NumLayers() {
			t.Errorf("switch %d assigned to non-existent layer %d", s.ID, s.Layer)
		}
	}
}

func TestRunLPPlacementInSweep(t *testing.T) {
	g := optionsDesign(t)
	withLP := DefaultOptions()
	withLP.RunLPPlacement = true
	resLP, err := Synthesize(g, withLP)
	if err != nil || resLP.Best == nil {
		t.Fatalf("synthesis with in-sweep LP failed: %v", err)
	}
	without := DefaultOptions()
	without.RunLPPlacement = false
	without.LPOnBest = true
	resEst, err := Synthesize(g, without)
	if err != nil || resEst.Best == nil {
		t.Fatalf("synthesis without in-sweep LP failed: %v", err)
	}
	// Both paths must produce valid topologies with comparable best power:
	// the LP can only improve link placement, so it should not be much worse.
	lp := resLP.Best.Metrics.Power.TotalMW()
	est := resEst.Best.Metrics.Power.TotalMW()
	if lp > est*1.25 {
		t.Errorf("in-sweep LP best power (%v) much worse than estimate-based (%v)", lp, est)
	}
}

func TestRequireLatencyMet(t *testing.T) {
	g := optionsDesign(t)
	opt := DefaultOptions()
	opt.RequireLatencyMet = true
	res, err := Synthesize(g, opt)
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	for _, p := range res.ValidPoints() {
		if p.Metrics.LatencyViolations > 0 {
			t.Errorf("point with %d latency violations marked valid", p.Metrics.LatencyViolations)
		}
	}
}

func TestMaxSwitchesPerLayerCapsPhase2Sweep(t *testing.T) {
	g := optionsDesign(t)
	opt := DefaultOptions()
	opt.Phase = Phase2Only
	opt.MaxSwitchesPerLayer = 1
	res, err := Synthesize(g, opt)
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	// The sweep explores at most minimum + 1 extra switch per layer, i.e. the
	// number of distinct Phase-2 switch counts is at most 2.
	counts := map[int]bool{}
	for _, p := range res.Points {
		if p.Phase == 2 {
			counts[p.SwitchCount] = true
		}
	}
	if len(counts) > 2 {
		t.Errorf("phase-2 sweep explored %d switch-count settings despite the cap", len(counts))
	}
}

func TestPhase2CoresAlwaysLocal(t *testing.T) {
	g := optionsDesign(t)
	opt := DefaultOptions()
	opt.Phase = Phase2Only
	res, err := Synthesize(g, opt)
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	for _, p := range res.ValidPoints() {
		top := p.Topology
		for c, sw := range top.CoreAttach {
			if top.Switches[sw].Layer != g.Cores[c].Layer {
				t.Fatalf("phase 2 attached core %d (layer %d) to a switch on layer %d",
					c, g.Cores[c].Layer, top.Switches[sw].Layer)
			}
		}
		// Phase-2 links must only connect adjacent layers.
		for _, l := range top.SwitchLinks() {
			d := top.Switches[l.From].Layer - top.Switches[l.To].Layer
			if d < -1 || d > 1 {
				t.Fatalf("phase 2 created a link spanning %d layers", d)
			}
		}
	}
}
