package synth

import (
	"sync"

	"sunfloor3d/internal/graph"
	"sunfloor3d/internal/model"
	"sunfloor3d/internal/partition"
)

// partitionCache shares the min-cut partitioning work of Algorithms 1 and 2
// across the whole frequency sweep. The PG, the SPGs of the theta sweep, the
// per-layer LPGs and every (graph, k) partition depend only on the
// communication graph and the partitioning parameters — never on the
// operating frequency — so each is computed exactly once per run and shared
// read-only between all frequencies and pool workers. Synchronisation is a
// per-entry sync.Once: distinct keys compute in parallel, concurrent requests
// for the same key block until the first computation lands. The partitioner
// is deterministic, so a cached result is exactly what a fresh computation
// would return and serial, parallel, cached and uncached runs all produce
// byte-identical results.
type partitionCache struct {
	g       *model.CommGraph
	par     partition.Params
	enabled bool

	mu           sync.Mutex
	graphs       map[float64]*graphEntry // theta (0 = plain PG) -> PG or SPG
	assigns      map[assignKey]*assignEntry
	lpgs         lpgEntry
	lpgRequested bool
	lpgAssigns   map[assignKey]*lpgAssignEntry
	hits         int
	misses       int
}

// assignKey identifies one partitioning request: the scaling factor of the
// graph it runs on (theta 0 = plain PG; for LPGs the layer index) and the
// number of blocks.
type assignKey struct {
	theta float64
	k     int
}

type graphEntry struct {
	once sync.Once
	g    *graph.Graph
}

type assignEntry struct {
	once   sync.Once
	assign []int
}

type lpgEntry struct {
	once sync.Once
	lpgs []partition.LPG
}

type lpgAssignEntry struct {
	once   sync.Once
	assign map[int]int
}

// CacheStats reports the partition-cache activity of one synthesis run.
type CacheStats struct {
	// Hits is the number of lookups answered from the cache.
	Hits int
	// Misses is the number of lookups that had to compute their entry (with
	// the cache disabled, every lookup is a miss).
	Misses int
}

func newPartitionCache(g *model.CommGraph, par partition.Params, enabled bool) *partitionCache {
	return &partitionCache{
		g:          g,
		par:        par,
		enabled:    enabled,
		graphs:     make(map[float64]*graphEntry),
		assigns:    make(map[assignKey]*assignEntry),
		lpgAssigns: make(map[assignKey]*lpgAssignEntry),
	}
}

// stats returns a snapshot of the hit/miss counters.
func (c *partitionCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses}
}

func (c *partitionCache) count(hit bool) {
	c.mu.Lock()
	if hit {
		c.hits++
	} else {
		c.misses++
	}
	c.mu.Unlock()
}

// pg returns the partitioning graph for the given theta: the plain PG of
// Definition 3 when theta is 0, the scaled SPG of Definition 4 otherwise.
// Exactly one hit or miss is counted per call (hits + misses equals the
// number of caller lookups): the SPG's internal dependency on the PG goes
// through the uncounted inner accessor.
func (c *partitionCache) pg(theta float64) *graph.Graph {
	g, hit := c.pgInner(theta)
	c.count(hit)
	return g
}

func (c *partitionCache) pgInner(theta float64) (*graph.Graph, bool) {
	build := func() *graph.Graph {
		if theta == 0 {
			return partition.BuildPG(c.g, c.par.Alpha)
		}
		base, _ := c.pgInner(0)
		return partition.BuildSPGFrom(base, c.g, theta, c.par.ThetaMax)
	}
	if !c.enabled {
		return build(), false
	}
	c.mu.Lock()
	e, ok := c.graphs[theta]
	if !ok {
		e = &graphEntry{}
		c.graphs[theta] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.g = build() })
	return e.g, ok
}

// coreAssignment returns the k-way partition of the given whole-design PG
// (theta 0) or SPG (theta > 0). pg must be the graph c.pg(theta) returns; it
// is passed in so that the disabled-cache path partitions a graph the sweep
// built once per frequency (the pre-cache behaviour) instead of rebuilding it
// per design point. The returned slice is shared: callers must not mutate it.
func (c *partitionCache) coreAssignment(pg *graph.Graph, theta float64, k int) []int {
	if !c.enabled {
		c.count(false)
		return partition.PartitionCores(pg, k)
	}
	key := assignKey{theta: theta, k: k}
	c.mu.Lock()
	e, ok := c.assigns[key]
	if !ok {
		e = &assignEntry{}
		c.assigns[key] = e
	}
	c.mu.Unlock()
	c.count(ok)
	e.once.Do(func() { e.assign = partition.PartitionCores(pg, k) })
	return e.assign
}

// layerGraphs returns the per-layer LPGs of Definition 5. The first caller
// counts the (single) miss; every other call is a hit, so the stats are
// deterministic regardless of which goroutine wins the once.
func (c *partitionCache) layerGraphs() []partition.LPG {
	if !c.enabled {
		c.count(false)
		return partition.BuildLPGs(c.g, c.par)
	}
	c.mu.Lock()
	first := !c.lpgRequested
	c.lpgRequested = true
	c.mu.Unlock()
	c.count(!first)
	c.lpgs.once.Do(func() { c.lpgs.lpgs = partition.BuildLPGs(c.g, c.par) })
	return c.lpgs.lpgs
}

// lpgAssignment returns the np-way partition of one layer's LPG as a core ->
// block map. The returned map is shared: callers must not mutate it.
func (c *partitionCache) lpgAssignment(layerIdx int, l partition.LPG, np int) map[int]int {
	if !c.enabled {
		c.count(false)
		return partition.PartitionLPG(l, np)
	}
	key := assignKey{theta: float64(layerIdx), k: np}
	c.mu.Lock()
	e, ok := c.lpgAssigns[key]
	if !ok {
		e = &lpgAssignEntry{}
		c.lpgAssigns[key] = e
	}
	c.mu.Unlock()
	c.count(ok)
	e.once.Do(func() { e.assign = partition.PartitionLPG(l, np) })
	return e.assign
}
