package synth

import (
	"context"
	"fmt"
	"math"
	"sync"

	"sunfloor3d/internal/model"
	"sunfloor3d/internal/topology"
)

// exploreSpace runs the N-dimensional design-space explorer: the cross
// product of Options.Space's axes, enumerated as (frequency, layer count,
// TSV budget, vcs, link width) cells whose interior is the switch-count
// sweep of the classic engine. Cells are the unit of pruning, checkpointing
// and sharding. A layer_count axis folds the design onto each requested
// stacking depth (core layer mod L, planar positions kept), with one
// partition cache per fold; a tsv_budget axis re-evaluates validity under
// each TSV macro cap.
//
// Unless Space.NoPrune is set, two exact pruning rules apply:
//
//   - Duplicate cells. VC count and link width influence no
//     result-affecting metric: validity, power and latency are computed
//     before (and independently of) simulation, the simulator parameterises
//     VCs/flit width but reports its statistics outside the serialised
//     result, and the link width only reaches the JSON through the TSV-macro
//     area term, which never enters the objective or the Pareto front. So
//     within one frequency only the first (vcs, lw) combination — the probe
//     cell — is evaluated; every other cell would reproduce the probe's
//     points at higher indices, where neither ParetoIndices (lowest-index
//     representative per (power, latency)) nor pickBest (strict improvement
//     only) can ever select them. Those cells become stubs.
//
//   - Branch and bound over switch counts. Cell 0 — the first probe, which
//     holds the lowest-indexed points of the whole space and is therefore
//     evaluated by every shard — supplies witness points. A switch count k
//     at frequency f is pruned when some valid witness sits at or below both
//     the analytic latency floor LatencyFloorCycles(f) and the analytic
//     power floor PowerFloorMW(f, k). Both floors hold for every topology
//     the engine can build at (f, k) regardless of partitioning, theta
//     retries or the Phase-2 fallback, so the skipped point is dominated (or
//     exactly duplicated) by an earlier-indexed witness and can reach
//     neither the front nor the best point. The power floor is monotone in
//     k, so pruning typically removes whole switch-count suffixes.
//
// The explorer never applies the LPOnBest refinement: refinement mutates the
// winning point's metrics after the sweep, which would break the byte-exact
// equivalence between computed, restored and sharded cells that
// checkpointing relies on. Callers wanting refined switch positions re-run
// the winning cell through the classic engine.
func exploreSpace(ctx context.Context, g *model.CommGraph, opt Options, cache *partitionCache, p *pool) (*Result, error) {
	sp := opt.Space
	cells := sp.cells(opt)
	counts := sp.intValues(AxisSwitchCount)
	for _, c := range counts {
		if c > g.NumCores() {
			return nil, fmt.Errorf("synth: axis %s value %d exceeds the design's %d cores",
				AxisSwitchCount, c, g.NumCores())
		}
	}
	prune := !sp.NoPrune
	hooks := opt.explore
	owns := func(ci int) bool { return hooks.Own == nil || hooks.Own(ci) }

	// One graph variant per layer_count value (the design itself without the
	// axis), each with its own partition cache: partitions are a function of
	// the layered graph, so folds can never share entries. The variants are
	// built upfront in axis order, which keeps the table deterministic.
	variants := []graphVariant{{g: g, cache: cache}}
	if lcVals := sp.intValues(AxisLayerCount); lcVals != nil {
		variants = make([]graphVariant, len(lcVals))
		for i, lc := range lcVals {
			fg := foldLayers(g, lc)
			variants[i] = graphVariant{g: fg, cache: newPartitionCache(fg, opt.Partition, !opt.DisablePartitionCache)}
		}
	}

	perCell := make([][]DesignPoint, len(cells))

	// emitAll surfaces points that did not run through forEach (restored,
	// pruned-stub and skipped-stub cells) to the progress stream.
	emitAll := func(pts []DesignPoint) {
		p.addTotal(len(pts))
		for _, dp := range pts {
			p.emit(dp)
		}
	}
	// finish records a computed cell and hands it to the checkpoint hook.
	// Done calls are serialised across the concurrently-finishing cells, and
	// a Done error aborts the exploration: continuing would leave the caller
	// with a checkpoint that silently lags the computation.
	var doneMu sync.Mutex
	finish := func(ci int, pts []DesignPoint) error {
		perCell[ci] = pts
		if hooks.Done != nil {
			doneMu.Lock()
			defer doneMu.Unlock()
			return hooks.Done(ci, pts)
		}
		return nil
	}
	restore := func(ci int) bool {
		if hooks.Restore == nil {
			return false
		}
		pts, ok := hooks.Restore(ci)
		if !ok {
			return false
		}
		perCell[ci] = pts
		emitAll(pts)
		return true
	}
	compute := func(ci int, pruneFn func(int) string) error {
		v := variants[cells[ci].lcIdx]
		co := cellOptions(opt, cells[ci], counts, pruneFn)
		pts, err := synthesizeAtFrequency(v.g, co, cells[ci].freq, v.cache, p)
		if err != nil {
			return err
		}
		// Fidelity ladder: triage the cell before it is recorded, so
		// checkpointed cells hold their final (triaged) points and restored
		// or shard-merged cells are never re-triaged. The band is cut per
		// cell; any point on the whole sweep's estimated front is also on
		// its own cell's front, so per-cell triage only widens the band.
		if err := triageSimBand(pts, co, p); err != nil {
			return err
		}
		return finish(ci, pts)
	}
	// cellShape returns the point skeleton of a cell — one entry per point
	// the full sweep would produce, in order — without building anything.
	cellShape := func(ci int) []DesignPoint {
		if opt.Phase == Phase2Only {
			_, _, maxExtra := phase2Plan(opt, cells[ci].freq, variants[cells[ci].lcIdx].cache)
			return make([]DesignPoint, maxExtra+1)
		}
		pts := make([]DesignPoint, g.NumCores())
		if counts != nil {
			pts = make([]DesignPoint, len(counts))
		}
		for i := range pts {
			if counts != nil {
				pts[i].SwitchCount = counts[i]
			} else {
				pts[i].SwitchCount = i + 1
			}
		}
		return pts
	}
	stubCell := func(ci int, pruned bool, reason string) {
		pts := cellShape(ci)
		for i := range pts {
			pts[i].FreqMHz = cells[ci].freq
			pts[i].Pruned = pruned
			pts[i].FailReason = reason
		}
		perCell[ci] = pts
		emitAll(pts)
	}

	// Cell 0 is the witness source of the branch-and-bound rule, so with
	// pruning enabled every run (every shard) materialises it, owned or not.
	if prune {
		if !restore(0) {
			if err := compute(0, nil); err != nil {
				return nil, err
			}
		}
	}

	// Branch-and-bound floors, from the cell-0 witnesses. minPAt returns the
	// lowest witness power at or below the latency floor of the given
	// frequency (+Inf when no witness qualifies, disabling the rule there).
	var totalBW float64
	var witnesses []DesignPoint
	if prune {
		for _, f := range g.Flows {
			totalBW += f.BandwidthMBps
		}
		for _, w := range perCell[0] {
			if w.Valid {
				witnesses = append(witnesses, w)
			}
		}
	}
	// witnessLatency is the latency coordinate a witness must clear against
	// the floor. With contention enabled it is the estimated latency, which
	// upper-bounds the zero-load latency: a witness at or below the floor in
	// estimated coordinates then dominates every pruned point in both the
	// exact (power, zero-load) and the estimated (power, contention) Pareto
	// space, so pruning stays exact for the fidelity ladder's triage band
	// too. (The latency floor itself is planar, hence identical across
	// layer-count folds, and the power floor never depends on the fold or
	// the TSV budget, so one witness set serves every variant.)
	witnessLatency := func(w DesignPoint) float64 {
		if opt.Contend && w.Contention != nil {
			return w.Contention.AvgLatencyCycles
		}
		return w.Metrics.AvgLatencyCycles
	}
	minPAt := func(freq float64) float64 {
		latFloor := topology.LatencyFloorCycles(g, opt.Lib, freq)
		minP := math.Inf(1)
		for _, w := range witnesses {
			if witnessLatency(w) <= latFloor && w.Metrics.Power.TotalMW() < minP {
				minP = w.Metrics.Power.TotalMW()
			}
		}
		return minP
	}
	pruneFor := func(ci int) func(int) string {
		freq := cells[ci].freq
		minP := minPAt(freq)
		if math.IsInf(minP, 1) {
			return nil
		}
		latFloor := topology.LatencyFloorCycles(g, opt.Lib, freq)
		return func(k int) string {
			plb := opt.Lib.PowerFloorMW(g.NumCores(), k, freq, totalBW)
			if plb >= minP {
				return fmt.Sprintf("pruned: power floor %.4g mW at %d switches cannot beat %.4g mW at the %.4g-cycle latency floor (cell 0)",
					plb, k, minP, latFloor)
			}
			return ""
		}
	}

	// run materialises one cell: restore beats everything (a merged
	// checkpoint may hold cells this shard does not own), unowned cells
	// become skipped stubs, duplicate cells become pruned stubs, and what
	// remains is evaluated for real (probes of later frequencies with the
	// branch-and-bound rule active).
	run := func(ci int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if perCell[ci] != nil { // cell 0, already materialised above
			return nil
		}
		if restore(ci) {
			return nil
		}
		if !owns(ci) {
			stubCell(ci, false, fmt.Sprintf("skipped: cell %d is owned by another shard", ci))
			return nil
		}
		if prune && !cells[ci].probe {
			stubCell(ci, true, fmt.Sprintf("pruned: duplicate of cell %d (vcs/link width change no result-affecting metric)", probeCellIndex(cells, ci)))
			return nil
		}
		var pruneFn func(int) string
		if prune && ci > 0 {
			pruneFn = pruneFor(ci)
		}
		return compute(ci, pruneFn)
	}

	errs := make([]error, len(cells))
	if p.serial {
		for ci := range cells {
			if err := run(ci); err != nil {
				return nil, err
			}
		}
	} else {
		var wg sync.WaitGroup
		for ci := range cells {
			wg.Add(1)
			go func(ci int) {
				defer wg.Done()
				errs[ci] = run(ci)
			}(ci)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}

	res := &Result{}
	for _, pts := range perCell {
		res.Points = append(res.Points, pts...)
	}
	res.Best = pickBest(res.Points, opt)
	// With a layer_count axis the work ran on the per-fold caches; sum their
	// activity (in the deterministic variant order) so the report covers the
	// whole run.
	for _, v := range variants {
		st := v.cache.stats()
		res.Cache.Hits += st.Hits
		res.Cache.Misses += st.Misses
	}
	return res, nil
}

// graphVariant is one layer-count fold of the design with its own partition
// cache.
type graphVariant struct {
	g     *model.CommGraph
	cache *partitionCache
}

// foldLayers returns a copy of the design with every core re-assigned to
// layer (original layer mod lc), keeping planar positions. lc at or above
// the design's layer count is the identity fold.
func foldLayers(g *model.CommGraph, lc int) *model.CommGraph {
	c := g.Clone()
	for i := range c.Cores {
		c.Cores[i].Layer %= lc
	}
	return c
}

// probeCellIndex returns the index of the probe cell sharing cell ci's
// (frequency, layer count, TSV budget) group.
func probeCellIndex(cells []cellSpec, ci int) int {
	for j := ci; j >= 0; j-- {
		if cells[j].group == cells[ci].group && cells[j].probe {
			return j
		}
	}
	return 0
}

// cellOptions derives the classic single-frequency options of one cell: the
// cell's frequency, its VC/link-width overrides, and the explorer's
// switch-count restriction and branch-and-bound hook.
func cellOptions(opt Options, c cellSpec, counts []int, pruneFn func(int) string) Options {
	co := opt
	co.Space = nil
	co.explore = ExplorationHooks{}
	co.FrequenciesMHz = []float64{c.freq}
	if c.vcs > 0 {
		scfg := *opt.Sim
		scfg.VCs = c.vcs
		co.Sim = &scfg
	}
	if c.lw > 0 {
		co.Lib.LinkWidthBits = c.lw
	}
	if c.tsv > 0 {
		co.explTSVBudget = c.tsv
	}
	co.explCounts = counts
	co.explPrune = pruneFn
	return co
}
