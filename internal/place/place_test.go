package place

import (
	"testing"

	"sunfloor3d/internal/geom"
	"sunfloor3d/internal/model"
	"sunfloor3d/internal/noclib"
	"sunfloor3d/internal/route"
	"sunfloor3d/internal/topology"
)

// lineDesign builds cores in a row on one layer with a chain of flows.
func lineDesign(t *testing.T, n int) *model.CommGraph {
	t.Helper()
	cores := make([]model.Core, n)
	for i := range cores {
		cores[i] = model.Core{
			Name: "c" + string(rune('a'+i)), Width: 2, Height: 2,
			X: float64(i) * 2.5, Y: 0, Layer: 0,
		}
	}
	var flows []model.Flow
	for i := 0; i+1 < n; i++ {
		flows = append(flows, model.Flow{Src: i, Dst: i + 1, BandwidthMBps: 100})
	}
	g, err := model.NewCommGraph(cores, flows)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// stackedDesign builds two layers with heavy vertical traffic.
func stackedDesign(t *testing.T) *model.CommGraph {
	t.Helper()
	cores := []model.Core{
		{Name: "p0", Width: 2, Height: 2, X: 0, Y: 0, Layer: 0},
		{Name: "p1", Width: 2, Height: 2, X: 3, Y: 0, Layer: 0},
		{Name: "m0", Width: 2, Height: 2, X: 0, Y: 0, Layer: 2, IsMemory: true},
		{Name: "m1", Width: 2, Height: 2, X: 3, Y: 0, Layer: 2, IsMemory: true},
	}
	flows := []model.Flow{
		{Src: 0, Dst: 2, BandwidthMBps: 500},
		{Src: 1, Dst: 3, BandwidthMBps: 500},
		{Src: 0, Dst: 1, BandwidthMBps: 50},
	}
	g, err := model.NewCommGraph(cores, flows)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestOptimizeSwitchPositionsSingleSwitch(t *testing.T) {
	g := lineDesign(t, 3)
	top := topology.New(g, noclib.DefaultLibrary(), 400)
	s := top.AddSwitch(0)
	for c := 0; c < 3; c++ {
		top.AttachCore(c, s)
	}
	for f := range g.Flows {
		top.SetRoute(f, []int{s})
	}
	if err := OptimizeSwitchPositions(top); err != nil {
		t.Fatalf("OptimizeSwitchPositions: %v", err)
	}
	// The optimal Manhattan position is a weighted median of the core
	// centres: the middle core dominates (it appears in both flows), so the
	// switch lands at its centre x in [1 , 6], y = 1.
	p := top.Switches[0].Pos
	if p.X < 1 || p.X > 6 {
		t.Errorf("switch x = %v out of expected range", p.X)
	}
	if !geom.AlmostEqual(p.Y, 1, 1e-6) {
		t.Errorf("switch y = %v, want 1", p.Y)
	}
}

func TestOptimizeSwitchPositionsReducesCost(t *testing.T) {
	g := lineDesign(t, 6)
	top := topology.New(g, noclib.DefaultLibrary(), 400)
	s0 := top.AddSwitch(0)
	s1 := top.AddSwitch(0)
	for c := 0; c < 3; c++ {
		top.AttachCore(c, s0)
	}
	for c := 3; c < 6; c++ {
		top.AttachCore(c, s1)
	}
	res, err := route.ComputePaths(top, route.DefaultConfig())
	if err != nil || !res.Success() {
		t.Fatalf("routing failed: %v %v", err, res)
	}
	// Start from a deliberately bad estimate.
	top.Switches[s0].Pos = geom.Point{X: 100, Y: 100}
	top.Switches[s1].Pos = geom.Point{X: 200, Y: 200}
	before := top.Evaluate().Power.LinkMW()
	if err := OptimizeSwitchPositions(top); err != nil {
		t.Fatalf("OptimizeSwitchPositions: %v", err)
	}
	after := top.Evaluate().Power.LinkMW()
	if after >= before {
		t.Errorf("LP placement did not reduce link power: %v -> %v", before, after)
	}
	// And it should be at least as good as the centroid estimate.
	est := top.Clone()
	est.EstimateSwitchPositions()
	centroid := est.Evaluate().Power.LinkMW()
	if after > centroid*1.05 {
		t.Errorf("LP placement (%v) clearly worse than centroid estimate (%v)", after, centroid)
	}
}

func TestOptimizeSwitchPositionsErrors(t *testing.T) {
	g := lineDesign(t, 2)
	top := topology.New(g, noclib.DefaultLibrary(), 400)
	if err := OptimizeSwitchPositions(top); err == nil {
		t.Error("expected error with no switches")
	}
}

func routedTopology(t *testing.T, g *model.CommGraph, switchesPerLayer int) *topology.Topology {
	t.Helper()
	top := topology.New(g, noclib.DefaultLibrary(), 400)
	layers := g.NumLayers()
	for l := 0; l < layers; l++ {
		for s := 0; s < switchesPerLayer; s++ {
			top.AddSwitch(l)
		}
	}
	for l := 0; l < layers; l++ {
		cores := g.CoresInLayer(l)
		for i, c := range cores {
			top.AttachCore(c, l*switchesPerLayer+i%switchesPerLayer)
		}
	}
	top.EstimateSwitchPositions()
	res, err := route.ComputePaths(top, route.DefaultConfig())
	if err != nil || !res.Success() {
		t.Fatalf("routing failed: %v %+v", err, res)
	}
	if err := OptimizeSwitchPositions(top); err != nil {
		t.Fatalf("OptimizeSwitchPositions: %v", err)
	}
	return top
}

func TestInsertNoCNoOverlaps(t *testing.T) {
	g := lineDesign(t, 5)
	top := routedTopology(t, g, 2)
	fp, err := InsertNoC(top)
	if err != nil {
		t.Fatalf("InsertNoC: %v", err)
	}
	if fp.HasOverlaps() {
		t.Fatal("floorplan has overlaps")
	}
	// All cores and switches present.
	var cores, switches int
	for _, c := range fp.Components() {
		switch c.Kind {
		case KindCore:
			cores++
		case KindSwitch:
			switches++
		}
	}
	if cores != g.NumCores() {
		t.Errorf("floorplan has %d cores, want %d", cores, g.NumCores())
	}
	if switches != top.NumSwitches() {
		t.Errorf("floorplan has %d switches, want %d", switches, top.NumSwitches())
	}
	if fp.ChipAreaMM2() <= 0 {
		t.Error("chip area must be positive")
	}
	if fp.TotalComponentAreaMM2() <= 0 {
		t.Error("component area must be positive")
	}
	// Chip area is at least the core area of the densest layer.
	if fp.ChipAreaMM2() < 4*float64(g.NumCores()) {
		t.Errorf("chip area %v too small for %d 2x2 cores", fp.ChipAreaMM2(), g.NumCores())
	}
}

func TestInsertNoCPlacesTSVMacrosOnIntermediateLayers(t *testing.T) {
	g := stackedDesign(t) // layers 0 and 2, nothing on layer 1
	top := topology.New(g, noclib.DefaultLibrary(), 400)
	s0 := top.AddSwitch(0)
	s2 := top.AddSwitch(2)
	top.AttachCore(0, s0)
	top.AttachCore(1, s0)
	top.AttachCore(2, s2)
	top.AttachCore(3, s2)
	top.EstimateSwitchPositions()
	res, err := route.ComputePaths(top, route.DefaultConfig())
	if err != nil || !res.Success() {
		t.Fatalf("routing failed: %v %v", err, res)
	}
	if err := OptimizeSwitchPositions(top); err != nil {
		t.Fatal(err)
	}
	fp, err := InsertNoC(top)
	if err != nil {
		t.Fatalf("InsertNoC: %v", err)
	}
	// The s0<->s2 link spans layers 0-2, so an explicit TSV macro must sit on
	// layer 1.
	macros := 0
	for _, c := range fp.Layers[1] {
		if c.Kind == KindTSVMacro {
			macros++
		}
	}
	if macros == 0 {
		t.Error("no TSV macro on the intermediate layer")
	}
	if fp.HasOverlaps() {
		t.Error("floorplan has overlaps")
	}
}

func TestInsertNoCDenseFloorplanDisplacesBlocks(t *testing.T) {
	// Cores packed with zero gaps force the insertion routine to displace
	// blocks to make room for switches.
	cores := make([]model.Core, 9)
	for i := range cores {
		cores[i] = model.Core{
			Name: "t" + string(rune('a'+i)), Width: 2, Height: 2,
			X: float64(i%3) * 2, Y: float64(i/3) * 2, Layer: 0,
		}
	}
	var flows []model.Flow
	for i := 1; i < 9; i++ {
		flows = append(flows, model.Flow{Src: 0, Dst: i, BandwidthMBps: 100})
	}
	g, err := model.NewCommGraph(cores, flows)
	if err != nil {
		t.Fatal(err)
	}
	top := routedTopology(t, g, 2)
	fp, err := InsertNoC(top)
	if err != nil {
		t.Fatalf("InsertNoC: %v", err)
	}
	if fp.HasOverlaps() {
		t.Fatal("floorplan has overlaps after displacement")
	}
	if fp.MovedCount() == 0 {
		t.Error("expected some components to be moved in a fully packed floorplan")
	}
}

func TestApplyFloorplan(t *testing.T) {
	g := lineDesign(t, 4)
	top := routedTopology(t, g, 2)
	fp, err := InsertNoC(top)
	if err != nil {
		t.Fatal(err)
	}
	applied := ApplyFloorplan(top, fp)
	if applied == top || applied.Design == top.Design {
		t.Fatal("ApplyFloorplan must not alias the input")
	}
	// Evaluation on the applied topology must work and keep the same number
	// of switches and routes.
	m := applied.Evaluate()
	if m.NumSwitches != top.NumSwitches() {
		t.Errorf("switch count changed: %d vs %d", m.NumSwitches, top.NumSwitches())
	}
	if err := applied.Validate(); err != nil {
		t.Errorf("applied topology invalid: %v", err)
	}
	// The original design's core positions are untouched.
	for i := range g.Cores {
		if g.Cores[i].X != float64(i)*2.5 {
			t.Errorf("original core %d moved", i)
		}
	}
}

func TestComponentKindString(t *testing.T) {
	for _, k := range []ComponentKind{KindCore, KindSwitch, KindNI, KindTSVMacro, ComponentKind(9)} {
		if k.String() == "" {
			t.Errorf("empty string for kind %d", int(k))
		}
	}
}

func TestFloorplanHelpers(t *testing.T) {
	fp := &Floorplan{Layers: [][]Component{
		{
			{Name: "a", Kind: KindCore, Rect: geom.Rect{X: 0, Y: 0, W: 2, H: 2}},
			{Name: "b", Kind: KindSwitch, Rect: geom.Rect{X: 3, Y: 0, W: 1, H: 1}, Moved: true},
		},
		{},
	}}
	if bb := fp.LayerBoundingBox(0); !geom.AlmostEqual(bb.Area(), 8, 1e-9) {
		t.Errorf("layer 0 bounding box area = %v, want 8", bb.Area())
	}
	if bb := fp.LayerBoundingBox(5); bb != (geom.Rect{}) {
		t.Error("out-of-range layer should give zero rect")
	}
	if fp.ChipAreaMM2() != 8 {
		t.Errorf("chip area = %v", fp.ChipAreaMM2())
	}
	if fp.TotalComponentAreaMM2() != 5 {
		t.Errorf("component area = %v", fp.TotalComponentAreaMM2())
	}
	if fp.MovedCount() != 1 {
		t.Errorf("moved count = %d", fp.MovedCount())
	}
	if fp.HasOverlaps() {
		t.Error("no overlaps expected")
	}
}
