// Package place implements the physical side of the synthesis flow described
// in Section VII of the paper: computing optimal switch positions with a
// linear program that minimises bandwidth-weighted Manhattan wire lengths,
// inserting the NoC components (switches, NIs, TSV macros) into the existing
// core floorplan with a custom overlap-removal routine, and reporting the
// resulting per-layer and chip areas.
package place

import (
	"fmt"
	"sort"

	"sunfloor3d/internal/geom"
	"sunfloor3d/internal/lp"
	"sunfloor3d/internal/topology"
)

// OptimizeSwitchPositions solves the LP of Eq. 2-5 to place every switch at
// the position minimising the total bandwidth-weighted Manhattan distance to
// the cores and switches it connects to, and writes the optimal coordinates
// back into the topology. The x and y dimensions are independent in the
// objective and constraints, so they are solved as two separate (smaller)
// LPs.
func OptimizeSwitchPositions(t *topology.Topology) error {
	if t.NumSwitches() == 0 {
		return fmt.Errorf("place: topology has no switches")
	}
	xs, err := solveAxis(t, true)
	if err != nil {
		return fmt.Errorf("place: x axis LP: %w", err)
	}
	ys, err := solveAxis(t, false)
	if err != nil {
		return fmt.Errorf("place: y axis LP: %w", err)
	}
	for i := range t.Switches {
		t.Switches[i].Pos = geom.Point{X: xs[i], Y: ys[i]}
	}
	return nil
}

// solveAxis builds and solves the one-dimensional positioning LP for either
// the x axis (xAxis true) or the y axis.
func solveAxis(t *topology.Topology, xAxis bool) ([]float64, error) {
	prob := lp.NewProblem()
	pos := make([]int, t.NumSwitches())
	for i := range t.Switches {
		pos[i] = prob.AddVariable(fmt.Sprintf("s%d", i), 0)
	}

	coreCoord := func(c int) float64 {
		ctr := t.Design.Cores[c].Center()
		if xAxis {
			return ctr.X
		}
		return ctr.Y
	}

	// Core-to-switch terms: weight is the total bandwidth exchanged between
	// the core and its switch (both directions), Eq. 2 and the first sum of
	// Eq. 4.
	coreBW := make(map[int]float64)
	for _, f := range t.Design.Flows {
		coreBW[f.Src] += f.BandwidthMBps
		coreBW[f.Dst] += f.BandwidthMBps
	}
	for c, sw := range t.CoreAttach {
		if sw < 0 {
			continue
		}
		w := coreBW[c]
		if w <= 0 {
			w = 1 // still pull unconnected cores' switches somewhere sensible
		}
		prob.AddAbsDifferenceObjective(
			fmt.Sprintf("dc%d", c),
			[]lp.Term{{Var: pos[sw], Coeff: 1}},
			-coreCoord(c), w)
	}

	// Switch-to-switch terms: weight is the aggregated link bandwidth, Eq. 3
	// and the second sum of Eq. 4. Sum both directions so each pair appears
	// once. The pairs must enter the problem in a fixed order: the LP's
	// auxiliary variables and constraint rows are created per term, simplex
	// pivoting (and with it the choice among degenerate optima) depends on
	// that order, and SwitchLinks() is sorted — iterating the aggregation map
	// here instead made repeated placements of the same topology return
	// different (all optimal) switch positions.
	pair := make(map[[2]int]float64)
	var pairKeys [][2]int
	for _, l := range t.SwitchLinks() {
		a, b := l.From, l.To
		if a > b {
			a, b = b, a
		}
		k := [2]int{a, b}
		if _, ok := pair[k]; !ok {
			pairKeys = append(pairKeys, k)
		}
		pair[k] += l.BandwidthMBps
	}
	sort.Slice(pairKeys, func(i, j int) bool {
		if pairKeys[i][0] != pairKeys[j][0] {
			return pairKeys[i][0] < pairKeys[j][0]
		}
		return pairKeys[i][1] < pairKeys[j][1]
	})
	for _, k := range pairKeys {
		prob.AddAbsDifferenceObjective(
			fmt.Sprintf("ds%d_%d", k[0], k[1]),
			[]lp.Term{{Var: pos[k[0]], Coeff: 1}, {Var: pos[k[1]], Coeff: -1}},
			0, pair[k])
	}

	sol, err := prob.Solve()
	if err != nil {
		return nil, err
	}
	out := make([]float64, t.NumSwitches())
	for i := range out {
		out[i] = sol.Value(pos[i])
	}
	return out, nil
}
