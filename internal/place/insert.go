package place

import (
	"fmt"
	"math"
	"sort"

	"sunfloor3d/internal/geom"
	"sunfloor3d/internal/topology"
)

// ComponentKind identifies the type of a placed block.
type ComponentKind int

const (
	// KindCore is an IP core from the input floorplan.
	KindCore ComponentKind = iota
	// KindSwitch is a NoC switch.
	KindSwitch
	// KindNI is a network interface attached to a core.
	KindNI
	// KindTSVMacro is an area reservation for the TSVs of a vertical link in
	// an intermediate layer.
	KindTSVMacro
)

// String implements fmt.Stringer.
func (k ComponentKind) String() string {
	switch k {
	case KindCore:
		return "core"
	case KindSwitch:
		return "switch"
	case KindNI:
		return "ni"
	case KindTSVMacro:
		return "tsv"
	default:
		return fmt.Sprintf("ComponentKind(%d)", int(k))
	}
}

// Component is one placed block of the final floorplan.
type Component struct {
	Name  string
	Kind  ComponentKind
	Layer int
	Rect  geom.Rect
	// Ref is the switch ID (KindSwitch), core index (KindCore, KindNI) or -1.
	Ref int
	// Moved reports whether the block was displaced from its input/ideal
	// position during overlap removal.
	Moved bool
}

// Floorplan is the result of inserting the NoC components into the core
// floorplan, organised per layer.
type Floorplan struct {
	Layers [][]Component
}

// LayerBoundingBox returns the bounding box of all components on the layer.
func (fp *Floorplan) LayerBoundingBox(layer int) geom.Rect {
	if layer < 0 || layer >= len(fp.Layers) {
		return geom.Rect{}
	}
	rects := make([]geom.Rect, 0, len(fp.Layers[layer]))
	for _, c := range fp.Layers[layer] {
		rects = append(rects, c.Rect)
	}
	return geom.BoundingBox(rects)
}

// ChipAreaMM2 returns the stacked chip area: since all dies share the same
// outline, it is the largest per-layer bounding box area.
func (fp *Floorplan) ChipAreaMM2() float64 {
	var m float64
	for l := range fp.Layers {
		if a := fp.LayerBoundingBox(l).Area(); a > m {
			m = a
		}
	}
	return m
}

// TotalComponentAreaMM2 returns the sum of all component areas over all
// layers (no dead space).
func (fp *Floorplan) TotalComponentAreaMM2() float64 {
	var t float64
	for _, layer := range fp.Layers {
		for _, c := range layer {
			t += c.Rect.Area()
		}
	}
	return t
}

// HasOverlaps reports whether any two components on the same layer overlap.
func (fp *Floorplan) HasOverlaps() bool {
	for _, layer := range fp.Layers {
		for i := 0; i < len(layer); i++ {
			for j := i + 1; j < len(layer); j++ {
				if layer[i].Rect.Overlaps(layer[j].Rect) {
					return true
				}
			}
		}
	}
	return false
}

// MovedCount returns how many components were displaced during insertion.
func (fp *Floorplan) MovedCount() int {
	n := 0
	for _, layer := range fp.Layers {
		for _, c := range layer {
			if c.Moved {
				n++
			}
		}
	}
	return n
}

// Components returns all components of all layers in a single slice.
func (fp *Floorplan) Components() []Component {
	var out []Component
	for _, layer := range fp.Layers {
		out = append(out, layer...)
	}
	return out
}

// InsertNoC builds a floorplan for the topology using the custom insertion
// routine of Section VII: every switch (and TSV macro) is placed at its ideal
// position; if it overlaps already placed blocks, free space nearby is
// searched, and failing that the blocking components are displaced in x or y
// by the size of the new component, iteratively, until no overlap remains.
// NIs are merged into their cores' outlines (they are tiny), so only switches
// and explicit TSV macros are inserted as blocks.
func InsertNoC(t *topology.Topology) (*Floorplan, error) {
	layers := t.Design.NumLayers()
	for _, s := range t.Switches {
		if s.Layer+1 > layers {
			layers = s.Layer + 1
		}
	}
	fp := &Floorplan{Layers: make([][]Component, layers)}

	// Seed each layer with its cores at their input positions.
	for i, c := range t.Design.Cores {
		fp.Layers[c.Layer] = append(fp.Layers[c.Layer], Component{
			Name: c.Name, Kind: KindCore, Layer: c.Layer, Rect: c.Rect(), Ref: i,
		})
	}

	inPorts, outPorts := t.SwitchPorts()

	// Insert switches one at a time, largest first so the hardest blocks go
	// in while there is still freedom.
	order := make([]int, len(t.Switches))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		sa := t.Lib.SwitchAreaMM2(inPorts[order[a]], outPorts[order[a]])
		sb := t.Lib.SwitchAreaMM2(inPorts[order[b]], outPorts[order[b]])
		return sa > sb
	})
	for _, si := range order {
		sw := t.Switches[si]
		area := t.Lib.SwitchAreaMM2(inPorts[si], outPorts[si])
		side := math.Sqrt(area)
		ideal := geom.NewRectCentered(sw.Pos, side, side)
		placed, moved := placeComponent(fp.Layers[sw.Layer], ideal)
		fp.Layers[sw.Layer] = append(fp.Layers[sw.Layer], Component{
			Name: fmt.Sprintf("sw%d", si), Kind: KindSwitch, Layer: sw.Layer,
			Rect: placed, Ref: si, Moved: moved,
		})
		// Update the switch position to the placed centre so evaluation uses
		// post-placement wire lengths.
		t.Switches[si].Pos = placed.Center()
	}

	// Insert TSV macros for every intermediate layer crossed by a vertical
	// link (switch-to-switch or core-to-switch); the macro near the endpoints
	// is embedded in the switch or NI, so only strictly intermediate layers
	// get explicit blocks.
	macroArea := t.Lib.TSVMacroAreaMM2()
	macroSide := math.Sqrt(macroArea)
	addMacros := func(aLayer, bLayer int, aPos, bPos geom.Point, tag string) {
		lo, hi := aLayer, bLayer
		loPos, hiPos := aPos, bPos
		if lo > hi {
			lo, hi = hi, lo
			loPos, hiPos = hiPos, loPos
		}
		span := hi - lo
		for l := lo + 1; l < hi; l++ {
			// Interpolate the macro position along the link.
			f := float64(l-lo) / float64(span)
			p := geom.Point{
				X: loPos.X + f*(hiPos.X-loPos.X),
				Y: loPos.Y + f*(hiPos.Y-loPos.Y),
			}
			ideal := geom.NewRectCentered(p, macroSide, macroSide)
			placed, moved := placeComponent(fp.Layers[l], ideal)
			fp.Layers[l] = append(fp.Layers[l], Component{
				Name: fmt.Sprintf("tsv_%s_L%d", tag, l), Kind: KindTSVMacro,
				Layer: l, Rect: placed, Ref: -1, Moved: moved,
			})
		}
	}
	for _, l := range t.SwitchLinks() {
		a, b := t.Switches[l.From], t.Switches[l.To]
		addMacros(a.Layer, b.Layer, a.Pos, b.Pos, fmt.Sprintf("s%ds%d", l.From, l.To))
	}
	for c, sw := range t.CoreAttach {
		if sw < 0 {
			continue
		}
		core := t.Design.Cores[c]
		addMacros(core.Layer, t.Switches[sw].Layer, core.Center(), t.Switches[sw].Pos,
			fmt.Sprintf("c%ds%d", c, sw))
	}

	if fp.HasOverlaps() {
		return fp, fmt.Errorf("place: overlap removal failed")
	}
	return fp, nil
}

// placeComponent finds a legal (overlap-free) rectangle for a new component
// whose ideal position is ideal, possibly displacing existing components.
// It returns the placed rectangle and whether it differs from the ideal one.
// existing is modified in place when blocks are displaced.
func placeComponent(existing []Component, ideal geom.Rect) (geom.Rect, bool) {
	if !overlapsAny(existing, ideal) {
		return ideal, false
	}
	// Search free space near the ideal location on a spiral of candidate
	// offsets (step half the component size, out to an 8-step radius).
	step := math.Max(ideal.W, ideal.H) / 2
	if step <= 0 {
		step = 0.1
	}
	for radius := 1; radius <= 8; radius++ {
		r := float64(radius) * step
		candidates := []geom.Rect{
			ideal.Translate(r, 0), ideal.Translate(-r, 0),
			ideal.Translate(0, r), ideal.Translate(0, -r),
			ideal.Translate(r, r), ideal.Translate(-r, r),
			ideal.Translate(r, -r), ideal.Translate(-r, -r),
		}
		for _, c := range candidates {
			if c.X < 0 || c.Y < 0 {
				continue
			}
			if !overlapsAny(existing, c) {
				return c, true
			}
		}
	}
	// No free space: displace the blocking components. Choose the direction
	// (x or y) needing the smaller total displacement.
	displaceBlocks(existing, ideal)
	return ideal, true
}

func overlapsAny(existing []Component, r geom.Rect) bool {
	for _, c := range existing {
		if c.Rect.Overlaps(r) {
			return true
		}
	}
	return false
}

// displaceBlocks pushes components out of the way of r, in the +x or +y
// direction (whichever moves less material), iteratively displacing blocks
// that the moved ones would overlap, exactly as described in Section VII.
// It is implemented as a single legalisation sweep: blocks are processed in
// increasing coordinate order along the push direction and each one is
// shifted just far enough to clear r and every block processed before it,
// which both terminates and produces minimal monotone displacements.
func displaceBlocks(existing []Component, r geom.Rect) {
	// Estimate the cost of clearing r by pushing right vs pushing up.
	var costX, costY float64
	for _, c := range existing {
		if c.Rect.Overlaps(r) {
			costX += r.MaxX() - c.Rect.X
			costY += r.MaxY() - c.Rect.Y
		}
	}
	pushX := costX <= costY

	order := make([]int, len(existing))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if pushX {
			return existing[order[a]].Rect.X < existing[order[b]].Rect.X
		}
		return existing[order[a]].Rect.Y < existing[order[b]].Rect.Y
	})

	obstacles := []geom.Rect{r}
	for _, i := range order {
		rect := existing[i].Rect
		// Shift until the block clears every obstacle placed so far. Each
		// pass moves the block strictly forward, so at most len(obstacles)
		// passes are needed.
		for pass := 0; pass <= len(obstacles); pass++ {
			conflict := false
			for _, o := range obstacles {
				if rect.Overlaps(o) {
					if pushX {
						rect = rect.Translate(o.MaxX()-rect.X, 0)
					} else {
						rect = rect.Translate(0, o.MaxY()-rect.Y)
					}
					conflict = true
				}
			}
			if !conflict {
				break
			}
		}
		if rect != existing[i].Rect {
			existing[i].Rect = rect
			existing[i].Moved = true
		}
		obstacles = append(obstacles, rect)
	}
}
