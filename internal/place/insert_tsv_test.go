package place

// Table-driven tests for TSV macro placement: every vertical link must
// reserve one macro per strictly intermediate layer, sized to the library's
// TSV macro area, placed near the link it serves, and the final floorplan
// must stay overlap free. Also covers the insertion edge cases: switches
// above the core layers, unattached cores, zero-size components and the
// negative-coordinate placement guard.

import (
	"math"
	"testing"

	"sunfloor3d/internal/geom"
	"sunfloor3d/internal/model"
	"sunfloor3d/internal/noclib"
	"sunfloor3d/internal/topology"
)

// tsvCase builds a two-switch topology with one routed flow whose endpoints
// sit on the given switch layers.
type tsvCase struct {
	name               string
	srcLayer, dstLayer int
	// coreSpan additionally lifts the destination core this many layers above
	// its switch, adding core-to-switch macro crossings.
	coreSpan int
	// wantMacros is the expected number of explicit TSV macro blocks.
	wantMacros int
}

func buildTSVTopology(t *testing.T, tc tsvCase) *topology.Topology {
	t.Helper()
	nLayers := tc.srcLayer + 1
	for _, l := range []int{tc.dstLayer + 1, tc.dstLayer + tc.coreSpan + 1} {
		if l > nLayers {
			nLayers = l
		}
	}
	cores := []model.Core{
		{Name: "src", Width: 2, Height: 2, X: 0, Y: 0, Layer: tc.srcLayer},
		{Name: "dst", Width: 2, Height: 2, X: 6, Y: 6, Layer: tc.dstLayer + tc.coreSpan},
	}
	flows := []model.Flow{{Src: 0, Dst: 1, BandwidthMBps: 400}}
	g, err := model.NewCommGraph(cores, flows)
	if err != nil {
		t.Fatal(err)
	}
	top := topology.New(g, noclib.DefaultLibrary(), 400)
	s0 := top.AddSwitch(tc.srcLayer)
	s1 := top.AddSwitch(tc.dstLayer)
	top.AttachCore(0, s0)
	top.AttachCore(1, s1)
	top.Switches[s0].Pos = geom.Point{X: 1, Y: 1}
	top.Switches[s1].Pos = geom.Point{X: 7, Y: 7}
	top.SetRoute(0, []int{s0, s1})
	return top
}

func TestTSVMacroPlacementBounds(t *testing.T) {
	cases := []tsvCase{
		// Adjacent layers: no intermediate layer, no explicit macro.
		{name: "adjacent_up", srcLayer: 0, dstLayer: 1, wantMacros: 0},
		// One intermediate layer on the switch link.
		{name: "span2_up", srcLayer: 0, dstLayer: 2, wantMacros: 1},
		// Downward link: same crossing counted from the other end.
		{name: "span2_down", srcLayer: 2, dstLayer: 0, wantMacros: 1},
		// Two intermediate layers.
		{name: "span3_up", srcLayer: 0, dstLayer: 3, wantMacros: 2},
		// Core two layers above its switch adds a core-to-switch crossing.
		{name: "core_span2", srcLayer: 0, dstLayer: 0, coreSpan: 2, wantMacros: 1},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			top := buildTSVTopology(t, tc)
			fp, err := InsertNoC(top)
			if err != nil {
				t.Fatalf("InsertNoC: %v", err)
			}
			if fp.HasOverlaps() {
				t.Fatal("floorplan has overlaps")
			}
			macroArea := top.Lib.TSVMacroAreaMM2()
			var macros []Component
			for _, c := range fp.Components() {
				if c.Kind == KindTSVMacro {
					macros = append(macros, c)
				}
			}
			if len(macros) != tc.wantMacros {
				t.Fatalf("placed %d TSV macros, want %d", len(macros), tc.wantMacros)
			}
			lo, hi := tc.srcLayer, tc.dstLayer
			if lo > hi {
				lo, hi = hi, lo
			}
			// The link endpoints (switches and the lifted core) bound the
			// region a macro may legally serve; the spiral search may move a
			// macro by at most 8 steps of half its side.
			slack := 8 * math.Sqrt(macroArea) / 2
			region := geom.Rect{X: -slack, Y: -slack, W: 9 + 2*slack, H: 9 + 2*slack}
			for _, m := range macros {
				if m.Layer <= lo && tc.coreSpan == 0 || m.Layer >= hi && tc.coreSpan == 0 {
					t.Errorf("macro %s on endpoint layer %d (link %d-%d)", m.Name, m.Layer, lo, hi)
				}
				if !geom.AlmostEqual(m.Rect.Area(), macroArea, 1e-9) {
					t.Errorf("macro %s area %g, want %g", m.Name, m.Rect.Area(), macroArea)
				}
				if !region.Contains(m.Rect.Center()) {
					t.Errorf("macro %s at %v strays outside the link region %v", m.Name, m.Rect, region)
				}
			}
		})
	}
}

// TestInsertNoCUnattachedCoreAndTallSwitch covers the insertion tolerances:
// a switch above every core layer extends the layer count, and a core left
// unattached (mid-synthesis state) is skipped rather than crashing.
func TestInsertNoCUnattachedCoreAndTallSwitch(t *testing.T) {
	cores := []model.Core{
		{Name: "a", Width: 2, Height: 2, X: 0, Y: 0, Layer: 0},
		{Name: "b", Width: 2, Height: 2, X: 4, Y: 0, Layer: 0},
	}
	flows := []model.Flow{{Src: 0, Dst: 1, BandwidthMBps: 100}}
	g, err := model.NewCommGraph(cores, flows)
	if err != nil {
		t.Fatal(err)
	}
	top := topology.New(g, noclib.DefaultLibrary(), 400)
	s0 := top.AddSwitch(0)
	s1 := top.AddSwitch(2) // above every core layer
	top.AttachCore(0, s0)  // core 1 stays unattached (-1)
	top.Switches[s0].Pos = geom.Point{X: 1, Y: 1}
	top.Switches[s1].Pos = geom.Point{X: 5, Y: 1}
	top.SetRoute(0, []int{s0, s1})
	fp, err := InsertNoC(top)
	if err != nil {
		t.Fatalf("InsertNoC: %v", err)
	}
	if got := len(fp.Layers); got != 3 {
		t.Fatalf("floorplan has %d layers, want 3 (switch on layer 2)", got)
	}
	if fp.HasOverlaps() {
		t.Fatal("floorplan has overlaps")
	}
	// The 0->2 switch link must reserve one macro on layer 1.
	macros := 0
	for _, c := range fp.Layers[1] {
		if c.Kind == KindTSVMacro {
			macros++
		}
	}
	if macros != 1 {
		t.Fatalf("layer 1 holds %d TSV macros, want 1", macros)
	}
}

// TestHasOverlapsDetectsCollisions checks the overlap detector on hand-built
// floorplans (InsertNoC only ever returns overlap-free ones).
func TestHasOverlapsDetectsCollisions(t *testing.T) {
	overlapping := &Floorplan{Layers: [][]Component{{
		{Name: "a", Rect: geom.Rect{X: 0, Y: 0, W: 2, H: 2}},
		{Name: "b", Rect: geom.Rect{X: 1, Y: 1, W: 2, H: 2}},
	}}}
	if !overlapping.HasOverlaps() {
		t.Error("overlapping components not detected")
	}
	disjoint := &Floorplan{Layers: [][]Component{{
		{Name: "a", Rect: geom.Rect{X: 0, Y: 0, W: 2, H: 2}},
		{Name: "b", Rect: geom.Rect{X: 2, Y: 0, W: 2, H: 2}},
	}}}
	if disjoint.HasOverlaps() {
		t.Error("edge-touching components flagged as overlapping")
	}
}

// TestPlaceComponentEdgeCases drives the placement helper directly: a
// zero-size ideal must not loop on a zero step, and candidates with negative
// coordinates are skipped rather than placed off-chip.
func TestPlaceComponentEdgeCases(t *testing.T) {
	blocker := []Component{{Name: "blk", Rect: geom.Rect{X: -1, Y: -1, W: 3, H: 3}}}
	// Zero-size ideal inside the blocker: the fallback step must kick in.
	placed, moved := placeComponent(blocker, geom.Rect{X: 0, Y: 0, W: 0, H: 0})
	if !moved {
		t.Error("zero-size component inside a blocker reported as unmoved")
	}
	if placed.X < 0 || placed.Y < 0 {
		t.Errorf("component placed at negative coordinates %v", placed)
	}
	// An ideal at the origin: the left/down spiral candidates are negative
	// and must be skipped; the survivor is up or right.
	placed, moved = placeComponent(blocker, geom.Rect{X: 0, Y: 0, W: 1, H: 1})
	if !moved {
		t.Error("blocked component reported as unmoved")
	}
	if placed.X < 0 || placed.Y < 0 {
		t.Errorf("spiral chose a negative-coordinate candidate %v", placed)
	}
	if overlapsAny(blocker, placed) {
		t.Errorf("placed rectangle %v still overlaps the blocker", placed)
	}
}

// TestOptimizeSwitchPositionsSkipsDetachedAndIdleCores covers the LP builder
// tolerances: unattached cores contribute no term, and an attached core with
// no traffic still pulls its switch with a unit weight.
func TestOptimizeSwitchPositionsSkipsDetachedAndIdleCores(t *testing.T) {
	cores := []model.Core{
		{Name: "a", Width: 2, Height: 2, X: 0, Y: 0, Layer: 0},
		{Name: "b", Width: 2, Height: 2, X: 8, Y: 8, Layer: 0},
		{Name: "idle", Width: 2, Height: 2, X: 4, Y: 0, Layer: 0},
	}
	flows := []model.Flow{{Src: 0, Dst: 1, BandwidthMBps: 500}}
	g, err := model.NewCommGraph(cores, flows)
	if err != nil {
		t.Fatal(err)
	}
	top := topology.New(g, noclib.DefaultLibrary(), 400)
	s0 := top.AddSwitch(0)
	s1 := top.AddSwitch(0)
	top.AttachCore(0, s0)
	top.AttachCore(2, s1) // the idle core; core 1 stays unattached
	top.SetRoute(0, []int{s0, s1})
	if err := OptimizeSwitchPositions(top); err != nil {
		t.Fatalf("OptimizeSwitchPositions: %v", err)
	}
	// Both switches must land inside the occupied region.
	for i, s := range top.Switches {
		if s.Pos.X < 0 || s.Pos.X > 10 || s.Pos.Y < 0 || s.Pos.Y > 10 {
			t.Errorf("switch %d placed at %v, outside the core region", i, s.Pos)
		}
	}
}
