package place

import (
	"sunfloor3d/internal/topology"
)

// ApplyFloorplan returns a copy of the topology whose design reflects the
// post-insertion floorplan: core positions are taken from the placed core
// blocks and switch positions from the placed switch blocks. Evaluating the
// returned topology therefore measures wire lengths on the final floorplan,
// which is what Figs. 19 and 20 of the paper compare across floorplanning
// methods. The input topology and its design are not modified.
func ApplyFloorplan(t *topology.Topology, fp *Floorplan) *topology.Topology {
	out := t.Clone()
	design := t.Design.Clone()
	out.Design = design
	for _, c := range fp.Components() {
		switch c.Kind {
		case KindCore:
			if c.Ref >= 0 && c.Ref < design.NumCores() {
				design.Cores[c.Ref].X = c.Rect.X
				design.Cores[c.Ref].Y = c.Rect.Y
			}
		case KindSwitch:
			if c.Ref >= 0 && c.Ref < out.NumSwitches() {
				out.Switches[c.Ref].Pos = c.Rect.Center()
			}
		}
	}
	return out
}
