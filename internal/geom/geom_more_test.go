package geom

// Table-driven tests for the 3-D distance model and the rectangle clamping
// math the placement and evaluation steps depend on.

import (
	"math"
	"testing"
	"testing/quick"
)

func TestManhattan3DTable(t *testing.T) {
	tests := []struct {
		name  string
		a, b  Point3D
		pitch float64
		want  float64
	}{
		{"same_point", Point3D{1, 2, 0}, Point3D{1, 2, 0}, 0.05, 0},
		{"planar_only", Point3D{0, 0, 1}, Point3D{3, 4, 1}, 0.05, 7},
		{"vertical_only", Point3D{2, 2, 0}, Point3D{2, 2, 3}, 0.05, 0.15},
		{"mixed", Point3D{0, 0, 0}, Point3D{1, 1, 2}, 0.5, 3},
		{"downward", Point3D{0, 0, 4}, Point3D{0, 0, 1}, 1.0, 3},
		{"zero_pitch", Point3D{0, 0, 0}, Point3D{1, 0, 5}, 0, 1},
	}
	for _, tc := range tests {
		if got := Manhattan3D(tc.a, tc.b, tc.pitch); !AlmostEqual(got, tc.want, 1e-12) {
			t.Errorf("%s: Manhattan3D(%v, %v, %g) = %g, want %g",
				tc.name, tc.a, tc.b, tc.pitch, got, tc.want)
		}
	}
}

func TestManhattan3DSymmetryAndPlanarReduction(t *testing.T) {
	f := func(ax, ay, bx, by int16, al, bl uint8, pitch uint8) bool {
		a := Point3D{X: float64(ax), Y: float64(ay), Layer: int(al % 8)}
		b := Point3D{X: float64(bx), Y: float64(by), Layer: int(bl % 8)}
		p := float64(pitch) / 16
		if Manhattan3D(a, b, p) != Manhattan3D(b, a, p) {
			return false
		}
		// Vertical distance only ever adds on top of the planar distance.
		return Manhattan3D(a, b, p) >= Manhattan(a.Planar(), b.Planar())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClampAndDistanceTable(t *testing.T) {
	r := Rect{X: 1, Y: 2, W: 4, H: 2} // spans [1,5] x [2,4]
	tests := []struct {
		name     string
		p        Point
		clamp    Point
		distance float64
	}{
		{"inside", Point{3, 3}, Point{3, 3}, 0},
		{"on_corner", Point{1, 2}, Point{1, 2}, 0},
		{"left_of", Point{0, 3}, Point{1, 3}, 1},
		{"above_right", Point{7, 6}, Point{5, 4}, 4},
		{"below", Point{3, -1}, Point{3, 2}, 3},
		{"far_diagonal", Point{-2, 10}, Point{1, 4}, 9},
	}
	for _, tc := range tests {
		if got := r.ClampPoint(tc.p); got != tc.clamp {
			t.Errorf("%s: ClampPoint(%v) = %v, want %v", tc.name, tc.p, got, tc.clamp)
		}
		if got := r.DistanceToPoint(tc.p); !AlmostEqual(got, tc.distance, 1e-12) {
			t.Errorf("%s: DistanceToPoint(%v) = %g, want %g", tc.name, tc.p, got, tc.distance)
		}
	}
}

func TestOverlapAreaTable(t *testing.T) {
	base := Rect{X: 0, Y: 0, W: 4, H: 4}
	tests := []struct {
		name string
		s    Rect
		want float64
	}{
		{"identical", Rect{0, 0, 4, 4}, 16},
		{"quarter", Rect{2, 2, 4, 4}, 4},
		{"edge_touch", Rect{4, 0, 2, 2}, 0},
		{"disjoint", Rect{9, 9, 1, 1}, 0},
		{"contained", Rect{1, 1, 2, 2}, 4},
		{"sliver", Rect{3.5, 0, 4, 4}, 2},
	}
	for _, tc := range tests {
		if got := base.OverlapArea(tc.s); !AlmostEqual(got, tc.want, 1e-12) {
			t.Errorf("%s: OverlapArea = %g, want %g", tc.name, got, tc.want)
		}
		if got := tc.s.OverlapArea(base); !AlmostEqual(got, tc.want, 1e-12) {
			t.Errorf("%s: OverlapArea not symmetric: %g, want %g", tc.name, got, tc.want)
		}
		if (tc.want > 0) != base.Overlaps(tc.s) {
			t.Errorf("%s: Overlaps = %v inconsistent with area %g", tc.name, base.Overlaps(tc.s), tc.want)
		}
	}
}

func TestBoundingBoxProperties(t *testing.T) {
	f := func(coords [6]int8) bool {
		rects := []Rect{
			{float64(coords[0]), float64(coords[1]), 1 + math.Abs(float64(coords[2])), 2},
			{float64(coords[3]), float64(coords[4]), 3, 1 + math.Abs(float64(coords[5]))},
		}
		bb := BoundingBox(rects)
		for _, r := range rects {
			if r.X < bb.X || r.Y < bb.Y || r.MaxX() > bb.MaxX()+1e-9 || r.MaxY() > bb.MaxY()+1e-9 {
				return false
			}
		}
		return bb.Area() >= rects[0].Area() && bb.Area() >= rects[1].Area()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if bb := BoundingBox(nil); bb != (Rect{}) {
		t.Errorf("BoundingBox(nil) = %v, want zero rect", bb)
	}
}
