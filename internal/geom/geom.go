// Package geom provides 2-D and 3-D geometric primitives used throughout the
// SunFloor 3D flow: points, rectangles, Manhattan distances, overlap tests and
// bounding boxes. All dimensions are in millimetres unless stated otherwise.
package geom

import (
	"fmt"
	"math"
)

// Point is a 2-D point within a single die layer.
type Point struct {
	X, Y float64
}

// Point3D is a point in the 3-D stack: a planar position plus a layer index
// (layer 0 is the bottom die).
type Point3D struct {
	X, Y  float64
	Layer int
}

// Planar returns the planar projection of the 3-D point.
func (p Point3D) Planar() Point { return Point{X: p.X, Y: p.Y} }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.3f, %.3f)", p.X, p.Y) }

// String implements fmt.Stringer.
func (p Point3D) String() string {
	return fmt.Sprintf("(%.3f, %.3f, L%d)", p.X, p.Y, p.Layer)
}

// Add returns the component-wise sum of two points.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns the component-wise difference of two points.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Manhattan returns the Manhattan (L1) distance between two planar points.
func Manhattan(a, b Point) float64 {
	return math.Abs(a.X-b.X) + math.Abs(a.Y-b.Y)
}

// Euclidean returns the Euclidean (L2) distance between two planar points.
func Euclidean(a, b Point) float64 {
	dx, dy := a.X-b.X, a.Y-b.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Manhattan3D returns the planar Manhattan distance between two 3-D points
// plus a per-layer vertical distance for each crossed layer. verticalPitch is
// the effective length charged per crossed layer (the die thickness plus
// bonding interface); the paper's TSV model treats vertical hops as much
// shorter and cheaper than planar wires.
func Manhattan3D(a, b Point3D, verticalPitch float64) float64 {
	layers := math.Abs(float64(a.Layer - b.Layer))
	return Manhattan(a.Planar(), b.Planar()) + layers*verticalPitch
}

// Rect is an axis-aligned rectangle identified by its lower-left corner and
// its width and height.
type Rect struct {
	X, Y, W, H float64
}

// NewRectCentered returns a rectangle of size w x h centred on c.
func NewRectCentered(c Point, w, h float64) Rect {
	return Rect{X: c.X - w/2, Y: c.Y - h/2, W: w, H: h}
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%.3f,%.3f %.3fx%.3f]", r.X, r.Y, r.W, r.H)
}

// Center returns the centre point of the rectangle.
func (r Rect) Center() Point { return Point{X: r.X + r.W/2, Y: r.Y + r.H/2} }

// Area returns the rectangle area.
func (r Rect) Area() float64 { return r.W * r.H }

// MaxX returns the x coordinate of the right edge.
func (r Rect) MaxX() float64 { return r.X + r.W }

// MaxY returns the y coordinate of the top edge.
func (r Rect) MaxY() float64 { return r.Y + r.H }

// Contains reports whether the point lies inside or on the boundary of r.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.X && p.X <= r.MaxX() && p.Y >= r.Y && p.Y <= r.MaxY()
}

// Overlaps reports whether the two rectangles share a region of positive area.
// Rectangles that merely touch along an edge do not overlap.
func (r Rect) Overlaps(s Rect) bool {
	return r.X < s.MaxX() && s.X < r.MaxX() && r.Y < s.MaxY() && s.Y < r.MaxY()
}

// OverlapArea returns the area shared between the two rectangles (zero if they
// do not overlap).
func (r Rect) OverlapArea(s Rect) float64 {
	w := math.Min(r.MaxX(), s.MaxX()) - math.Max(r.X, s.X)
	h := math.Min(r.MaxY(), s.MaxY()) - math.Max(r.Y, s.Y)
	if w <= 0 || h <= 0 {
		return 0
	}
	return w * h
}

// Translate returns a copy of r moved by (dx, dy).
func (r Rect) Translate(dx, dy float64) Rect {
	return Rect{X: r.X + dx, Y: r.Y + dy, W: r.W, H: r.H}
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	x := math.Min(r.X, s.X)
	y := math.Min(r.Y, s.Y)
	mx := math.Max(r.MaxX(), s.MaxX())
	my := math.Max(r.MaxY(), s.MaxY())
	return Rect{X: x, Y: y, W: mx - x, H: my - y}
}

// BoundingBox returns the smallest rectangle containing all the given
// rectangles. It returns the zero Rect when the slice is empty.
func BoundingBox(rects []Rect) Rect {
	if len(rects) == 0 {
		return Rect{}
	}
	bb := rects[0]
	for _, r := range rects[1:] {
		bb = bb.Union(r)
	}
	return bb
}

// TotalArea returns the sum of the areas of the rectangles (overlap counted
// twice).
func TotalArea(rects []Rect) float64 {
	var a float64
	for _, r := range rects {
		a += r.Area()
	}
	return a
}

// ClampPoint returns the closest point to p that lies inside r.
func (r Rect) ClampPoint(p Point) Point {
	x := math.Max(r.X, math.Min(p.X, r.MaxX()))
	y := math.Max(r.Y, math.Min(p.Y, r.MaxY()))
	return Point{X: x, Y: y}
}

// DistanceToPoint returns the Manhattan distance from p to the closest point
// of r (zero if p is inside r).
func (r Rect) DistanceToPoint(p Point) float64 {
	return Manhattan(p, r.ClampPoint(p))
}

// AlmostEqual reports whether a and b differ by less than eps.
func AlmostEqual(a, b, eps float64) bool { return math.Abs(a-b) < eps }
