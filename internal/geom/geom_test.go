package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestManhattan(t *testing.T) {
	tests := []struct {
		a, b Point
		want float64
	}{
		{Point{0, 0}, Point{0, 0}, 0},
		{Point{0, 0}, Point{3, 4}, 7},
		{Point{-1, -1}, Point{1, 1}, 4},
		{Point{2.5, 0}, Point{0, 2.5}, 5},
	}
	for _, tc := range tests {
		if got := Manhattan(tc.a, tc.b); !AlmostEqual(got, tc.want, 1e-12) {
			t.Errorf("Manhattan(%v,%v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestManhattanSymmetry(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		a, b := Point{ax, ay}, Point{bx, by}
		return Manhattan(a, b) == Manhattan(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestManhattanTriangleInequality(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy int16) bool {
		a := Point{float64(ax), float64(ay)}
		b := Point{float64(bx), float64(by)}
		c := Point{float64(cx), float64(cy)}
		return Manhattan(a, c) <= Manhattan(a, b)+Manhattan(b, c)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEuclideanVsManhattan(t *testing.T) {
	f := func(ax, ay, bx, by int16) bool {
		a := Point{float64(ax), float64(ay)}
		b := Point{float64(bx), float64(by)}
		return Euclidean(a, b) <= Manhattan(a, b)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestManhattan3D(t *testing.T) {
	a := Point3D{X: 0, Y: 0, Layer: 0}
	b := Point3D{X: 1, Y: 1, Layer: 2}
	if got := Manhattan3D(a, b, 0.05); !AlmostEqual(got, 2.1, 1e-12) {
		t.Errorf("Manhattan3D = %v, want 2.1", got)
	}
	if got := Manhattan3D(a, a, 0.05); got != 0 {
		t.Errorf("Manhattan3D(a,a) = %v, want 0", got)
	}
}

func TestPointArithmetic(t *testing.T) {
	p := Point{1, 2}
	q := Point{3, 5}
	if got := p.Add(q); got != (Point{4, 7}) {
		t.Errorf("Add = %v", got)
	}
	if got := q.Sub(p); got != (Point{2, 3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != (Point{2, 4}) {
		t.Errorf("Scale = %v", got)
	}
}

func TestRectBasics(t *testing.T) {
	r := Rect{X: 1, Y: 2, W: 3, H: 4}
	if r.Area() != 12 {
		t.Errorf("Area = %v, want 12", r.Area())
	}
	if r.MaxX() != 4 || r.MaxY() != 6 {
		t.Errorf("MaxX/MaxY = %v/%v", r.MaxX(), r.MaxY())
	}
	if c := r.Center(); c != (Point{2.5, 4}) {
		t.Errorf("Center = %v", c)
	}
	if !r.Contains(Point{2, 3}) || r.Contains(Point{0, 0}) {
		t.Error("Contains misbehaves")
	}
}

func TestNewRectCentered(t *testing.T) {
	r := NewRectCentered(Point{5, 5}, 2, 4)
	if r.X != 4 || r.Y != 3 || r.W != 2 || r.H != 4 {
		t.Errorf("NewRectCentered = %v", r)
	}
	if c := r.Center(); !AlmostEqual(c.X, 5, 1e-12) || !AlmostEqual(c.Y, 5, 1e-12) {
		t.Errorf("center drifted: %v", c)
	}
}

func TestRectOverlaps(t *testing.T) {
	a := Rect{0, 0, 2, 2}
	tests := []struct {
		b    Rect
		want bool
	}{
		{Rect{1, 1, 2, 2}, true},
		{Rect{2, 0, 2, 2}, false}, // touching edge is not overlap
		{Rect{3, 3, 1, 1}, false},
		{Rect{0.5, 0.5, 1, 1}, true}, // fully inside
		{Rect{-1, -1, 4, 4}, true},   // fully contains
	}
	for _, tc := range tests {
		if got := a.Overlaps(tc.b); got != tc.want {
			t.Errorf("Overlaps(%v,%v) = %v, want %v", a, tc.b, got, tc.want)
		}
		if got := tc.b.Overlaps(a); got != tc.want {
			t.Errorf("Overlaps symmetric (%v,%v) = %v, want %v", tc.b, a, got, tc.want)
		}
	}
}

func TestOverlapArea(t *testing.T) {
	a := Rect{0, 0, 2, 2}
	b := Rect{1, 1, 2, 2}
	if got := a.OverlapArea(b); !AlmostEqual(got, 1, 1e-12) {
		t.Errorf("OverlapArea = %v, want 1", got)
	}
	c := Rect{5, 5, 1, 1}
	if got := a.OverlapArea(c); got != 0 {
		t.Errorf("OverlapArea disjoint = %v, want 0", got)
	}
}

func TestOverlapAreaConsistentWithOverlaps(t *testing.T) {
	f := func(ax, ay, bx, by int8, aw, ah, bw, bh uint8) bool {
		a := Rect{float64(ax), float64(ay), float64(aw%16) + 1, float64(ah%16) + 1}
		b := Rect{float64(bx), float64(by), float64(bw%16) + 1, float64(bh%16) + 1}
		return a.Overlaps(b) == (a.OverlapArea(b) > 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnionAndBoundingBox(t *testing.T) {
	a := Rect{0, 0, 1, 1}
	b := Rect{2, 3, 1, 1}
	u := a.Union(b)
	if u.X != 0 || u.Y != 0 || !AlmostEqual(u.W, 3, 1e-12) || !AlmostEqual(u.H, 4, 1e-12) {
		t.Errorf("Union = %v", u)
	}
	bb := BoundingBox([]Rect{a, b, {1, 1, 1, 1}})
	if bb != u {
		t.Errorf("BoundingBox = %v, want %v", bb, u)
	}
	if z := BoundingBox(nil); z != (Rect{}) {
		t.Errorf("BoundingBox(nil) = %v", z)
	}
}

func TestUnionContainsBoth(t *testing.T) {
	f := func(ax, ay, bx, by int8, aw, ah, bw, bh uint8) bool {
		a := Rect{float64(ax), float64(ay), float64(aw%16) + 1, float64(ah%16) + 1}
		b := Rect{float64(bx), float64(by), float64(bw%16) + 1, float64(bh%16) + 1}
		u := a.Union(b)
		return u.Contains(Point{a.X, a.Y}) && u.Contains(Point{a.MaxX(), a.MaxY()}) &&
			u.Contains(Point{b.X, b.Y}) && u.Contains(Point{b.MaxX(), b.MaxY()})
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTotalArea(t *testing.T) {
	rects := []Rect{{0, 0, 1, 1}, {0, 0, 2, 3}}
	if got := TotalArea(rects); !AlmostEqual(got, 7, 1e-12) {
		t.Errorf("TotalArea = %v, want 7", got)
	}
}

func TestTranslate(t *testing.T) {
	r := Rect{1, 1, 2, 2}
	moved := r.Translate(3, -1)
	if moved.X != 4 || moved.Y != 0 || moved.W != 2 || moved.H != 2 {
		t.Errorf("Translate = %v", moved)
	}
	if !AlmostEqual(moved.Area(), r.Area(), 1e-12) {
		t.Error("Translate changed area")
	}
}

func TestClampAndDistance(t *testing.T) {
	r := Rect{0, 0, 2, 2}
	if p := r.ClampPoint(Point{5, 1}); p != (Point{2, 1}) {
		t.Errorf("ClampPoint = %v", p)
	}
	if d := r.DistanceToPoint(Point{5, 1}); !AlmostEqual(d, 3, 1e-12) {
		t.Errorf("DistanceToPoint = %v, want 3", d)
	}
	if d := r.DistanceToPoint(Point{1, 1}); d != 0 {
		t.Errorf("DistanceToPoint inside = %v, want 0", d)
	}
}

func TestStringFormats(t *testing.T) {
	if s := (Point{1, 2}).String(); s == "" {
		t.Error("Point.String empty")
	}
	if s := (Point3D{1, 2, 1}).String(); s == "" {
		t.Error("Point3D.String empty")
	}
	if s := (Rect{0, 0, 1, 1}).String(); s == "" {
		t.Error("Rect.String empty")
	}
}

func TestAlmostEqual(t *testing.T) {
	if !AlmostEqual(1.0, 1.0+1e-13, 1e-9) {
		t.Error("AlmostEqual should hold for tiny differences")
	}
	if AlmostEqual(1.0, 1.1, 1e-9) {
		t.Error("AlmostEqual should fail for large differences")
	}
	if !AlmostEqual(math.Pi, math.Pi, 0.1) {
		t.Error("identical values must be almost equal")
	}
}
