// Package graph provides the generic graph machinery used by the SunFloor 3D
// flow: weighted directed graphs, shortest paths (Dijkstra), reachability,
// cycle detection (for deadlock-freedom checks on channel dependency graphs)
// and balanced k-way min-cut partitioning (recursive bisection with
// Fiduccia–Mattheyses refinement), which implements the "min-cut partitions"
// steps of Algorithms 1 and 2 of the paper.
package graph

import (
	"fmt"
	"sort"
)

// Edge is a weighted directed edge.
type Edge struct {
	From, To int
	Weight   float64
}

// Graph is a weighted directed graph over vertices 0..N-1. Parallel edges are
// merged by summing their weights.
type Graph struct {
	n   int
	adj []map[int]float64 // adj[u][v] = weight of edge u->v
}

// New returns an empty graph with n vertices.
func New(n int) *Graph {
	if n < 0 {
		n = 0
	}
	g := &Graph{n: n, adj: make([]map[int]float64, n)}
	for i := range g.adj {
		g.adj[i] = make(map[int]float64)
	}
	return g
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return g.n }

// Grow appends k isolated vertices to the graph and returns the index of the
// first new vertex. Existing vertices and edges are untouched, so callers can
// extend a graph in place instead of rebuilding it (the channel dependency
// graph of the router gains one vertex per newly opened link this way).
func (g *Graph) Grow(k int) int {
	first := g.n
	for i := 0; i < k; i++ {
		g.adj = append(g.adj, make(map[int]float64))
	}
	if k > 0 {
		g.n += k
	}
	return first
}

// NumEdges returns the number of directed edges with non-zero weight.
func (g *Graph) NumEdges() int {
	c := 0
	for _, m := range g.adj {
		c += len(m)
	}
	return c
}

// AddEdge adds weight w to the directed edge u->v (creating it if needed).
// It panics if a vertex is out of range: edges are only ever added by this
// package's callers from validated indices, so an out-of-range index is a
// programming error.
func (g *Graph) AddEdge(u, v int, w float64) {
	g.check(u)
	g.check(v)
	if u == v {
		return // ignore self loops; they never affect cuts or paths
	}
	g.adj[u][v] += w
}

// SetEdge sets the weight of the directed edge u->v, overwriting any existing
// weight. A weight of zero removes the edge.
func (g *Graph) SetEdge(u, v int, w float64) {
	g.check(u)
	g.check(v)
	if u == v {
		return
	}
	if w == 0 {
		delete(g.adj[u], v)
		return
	}
	g.adj[u][v] = w
}

// HasEdge reports whether the directed edge u->v exists.
func (g *Graph) HasEdge(u, v int) bool {
	g.check(u)
	g.check(v)
	_, ok := g.adj[u][v]
	return ok
}

// Weight returns the weight of edge u->v (0 if absent).
func (g *Graph) Weight(u, v int) float64 {
	g.check(u)
	g.check(v)
	return g.adj[u][v]
}

// RemoveEdge deletes the directed edge u->v if present.
func (g *Graph) RemoveEdge(u, v int) {
	g.check(u)
	g.check(v)
	delete(g.adj[u], v)
}

// Successors returns the targets of all out-edges of u in ascending order.
func (g *Graph) Successors(u int) []int {
	g.check(u)
	out := make([]int, 0, len(g.adj[u]))
	for v := range g.adj[u] {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// Edges returns all edges sorted by (From, To) for deterministic iteration.
func (g *Graph) Edges() []Edge {
	var es []Edge
	for u, m := range g.adj {
		//determlint:ordered every (From, To) pair is appended exactly once and the final sort key (From, To) is total, so the returned order is independent of map order
		for v, w := range m {
			es = append(es, Edge{From: u, To: v, Weight: w})
		}
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].From != es[j].From {
			return es[i].From < es[j].From
		}
		return es[i].To < es[j].To
	})
	return es
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	for u, m := range g.adj {
		for v, w := range m {
			c.adj[u][v] = w
		}
	}
	return c
}

// Undirected returns a new graph where every edge u->v is mirrored as v->u
// with the weights of both directions summed. Partitioning operates on the
// undirected view of the communication graph.
func (g *Graph) Undirected() *Graph {
	u := New(g.n)
	for a, m := range g.adj {
		//determlint:ordered cell (x, y) receives exactly the weights of directed edges (x, y) and (y, x), always in ascending outer-index order; map order only permutes writes to distinct cells, which commute
		for b, w := range m {
			u.adj[a][b] += w //determlint:ordered see loop waiver: per-cell operand order is fixed by the outer slice index
			u.adj[b][a] += w //determlint:ordered see loop waiver: per-cell operand order is fixed by the outer slice index
		}
	}
	return u
}

// TotalWeight returns the sum of all edge weights, folded in (From, To)
// order. Float addition is not associative, so summing in map iteration
// order would drift by ULPs between runs.
func (g *Graph) TotalWeight() float64 {
	var t float64
	for _, e := range g.Edges() {
		t += e.Weight
	}
	return t
}

// HasCycle reports whether the directed graph contains a cycle. It is used on
// channel dependency graphs to verify that a set of routes is deadlock free.
func (g *Graph) HasCycle() bool {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make([]int, g.n)
	var visit func(u int) bool
	visit = func(u int) bool {
		color[u] = grey
		//determlint:ordered cycle existence is a property of the edge set; the boolean result is identical for every visit order
		for v := range g.adj[u] {
			switch color[v] {
			case grey:
				return true
			case white:
				if visit(v) {
					return true
				}
			}
		}
		color[u] = black
		return false
	}
	for u := 0; u < g.n; u++ {
		if color[u] == white && visit(u) {
			return true
		}
	}
	return false
}

// ConnectedComponents returns the weakly connected components of the graph as
// a slice of vertex slices, each sorted ascending, ordered by smallest member.
func (g *Graph) ConnectedComponents() [][]int {
	und := g.Undirected()
	seen := make([]bool, g.n)
	var comps [][]int
	for s := 0; s < g.n; s++ {
		if seen[s] {
			continue
		}
		var comp []int
		stack := []int{s}
		seen[s] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, u)
			//determlint:ordered membership in a connected component is order-independent; each component is sorted below and components are emitted at their smallest vertex
			for v := range und.adj[u] {
				if !seen[v] {
					seen[v] = true
					stack = append(stack, v)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

// CutWeight returns the total weight of edges crossing between different
// blocks of the given assignment (undirected sense: both directions counted
// once each as they appear in the directed graph).
func (g *Graph) CutWeight(block []int) float64 {
	if len(block) != g.n {
		panic(fmt.Sprintf("graph: CutWeight assignment length %d != %d vertices", len(block), g.n))
	}
	var cut float64
	for _, e := range g.Edges() {
		if block[e.From] != block[e.To] {
			cut += e.Weight
		}
	}
	return cut
}

func (g *Graph) check(v int) {
	if v < 0 || v >= g.n {
		panic(fmt.Sprintf("graph: vertex %d out of range [0,%d)", v, g.n))
	}
}
