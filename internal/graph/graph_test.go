package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddAndQueryEdges(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 2)
	g.AddEdge(0, 1, 3) // merged
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 2, 9) // self loop ignored

	if g.NumVertices() != 4 {
		t.Errorf("NumVertices = %d", g.NumVertices())
	}
	if g.NumEdges() != 2 {
		t.Errorf("NumEdges = %d, want 2", g.NumEdges())
	}
	if w := g.Weight(0, 1); w != 5 {
		t.Errorf("Weight(0,1) = %v, want 5", w)
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Error("HasEdge misbehaves")
	}
	g.SetEdge(0, 1, 7)
	if w := g.Weight(0, 1); w != 7 {
		t.Errorf("SetEdge: Weight = %v, want 7", w)
	}
	g.SetEdge(0, 1, 0)
	if g.HasEdge(0, 1) {
		t.Error("SetEdge(0) should remove the edge")
	}
	g.AddEdge(0, 3, 1)
	g.RemoveEdge(0, 3)
	if g.HasEdge(0, 3) {
		t.Error("RemoveEdge failed")
	}
}

func TestGrow(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1, 3)
	if first := g.Grow(2); first != 2 {
		t.Errorf("Grow(2) returned first index %d, want 2", first)
	}
	if g.NumVertices() != 4 {
		t.Fatalf("NumVertices = %d, want 4", g.NumVertices())
	}
	if !g.HasEdge(0, 1) || g.Weight(0, 1) != 3 {
		t.Error("existing edge lost after Grow")
	}
	g.AddEdge(3, 0, 1)
	if !g.HasEdge(3, 0) {
		t.Error("cannot add edge to grown vertex")
	}
	if g.HasCycle() {
		t.Error("spurious cycle after Grow")
	}
	if first := g.Grow(0); first != 4 || g.NumVertices() != 4 {
		t.Errorf("Grow(0) = %d with %d vertices, want 4 and 4", first, g.NumVertices())
	}
}

func TestSuccessorsAndEdges(t *testing.T) {
	g := New(4)
	g.AddEdge(2, 0, 1)
	g.AddEdge(2, 3, 1)
	g.AddEdge(2, 1, 1)
	s := g.Successors(2)
	if len(s) != 3 || s[0] != 0 || s[1] != 1 || s[2] != 3 {
		t.Errorf("Successors = %v", s)
	}
	es := g.Edges()
	if len(es) != 3 || es[0].From != 2 || es[0].To != 0 {
		t.Errorf("Edges = %v", es)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on out-of-range vertex")
		}
	}()
	g := New(2)
	g.AddEdge(0, 5, 1)
}

func TestCloneAndUndirected(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 2)
	g.AddEdge(1, 0, 3)
	g.AddEdge(1, 2, 1)

	c := g.Clone()
	c.AddEdge(2, 0, 9)
	if g.HasEdge(2, 0) {
		t.Error("Clone is not independent")
	}

	u := g.Undirected()
	if w := u.Weight(0, 1); w != 5 {
		t.Errorf("Undirected weight(0,1) = %v, want 5", w)
	}
	if w := u.Weight(1, 0); w != 5 {
		t.Errorf("Undirected weight(1,0) = %v, want 5", w)
	}
	if w := u.Weight(2, 1); w != 1 {
		t.Errorf("Undirected weight(2,1) = %v, want 1", w)
	}
}

func TestTotalWeight(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 2)
	g.AddEdge(1, 2, 3.5)
	if tw := g.TotalWeight(); tw != 5.5 {
		t.Errorf("TotalWeight = %v", tw)
	}
}

func TestHasCycle(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)
	if g.HasCycle() {
		t.Error("chain should not have a cycle")
	}
	g.AddEdge(3, 1, 1)
	if !g.HasCycle() {
		t.Error("cycle not detected")
	}
	// A diamond (two paths to the same node) is not a cycle.
	d := New(4)
	d.AddEdge(0, 1, 1)
	d.AddEdge(0, 2, 1)
	d.AddEdge(1, 3, 1)
	d.AddEdge(2, 3, 1)
	if d.HasCycle() {
		t.Error("diamond wrongly flagged as cycle")
	}
}

func TestConnectedComponents(t *testing.T) {
	g := New(6)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 1, 1)
	g.AddEdge(3, 4, 1)
	comps := g.ConnectedComponents()
	if len(comps) != 3 {
		t.Fatalf("components = %v", comps)
	}
	if len(comps[0]) != 3 || len(comps[1]) != 2 || len(comps[2]) != 1 {
		t.Errorf("component sizes wrong: %v", comps)
	}
	if comps[2][0] != 5 {
		t.Errorf("isolated vertex component = %v", comps[2])
	}
}

func TestShortestPath(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(0, 2, 5)
	g.AddEdge(2, 3, 1)
	g.AddEdge(0, 4, 10)

	path, cost := g.ShortestPath(0, 3)
	if cost != 3 {
		t.Errorf("cost = %v, want 3", cost)
	}
	want := []int{0, 1, 2, 3}
	if len(path) != len(want) {
		t.Fatalf("path = %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
	if c := g.ShortestPathCost(0, 3); c != 3 {
		t.Errorf("ShortestPathCost = %v", c)
	}
	// Unreachable destination.
	if p, c := g.ShortestPath(3, 0); p != nil || c != Infinity {
		t.Errorf("unreachable: path=%v cost=%v", p, c)
	}
	// Self path.
	if p, c := g.ShortestPath(2, 2); c != 0 || len(p) != 1 || p[0] != 2 {
		t.Errorf("self path = %v cost %v", p, c)
	}
	// Infinity-weight edges are ignored.
	gi := New(2)
	gi.AddEdge(0, 1, Infinity)
	if _, c := gi.ShortestPath(0, 1); c != Infinity {
		t.Errorf("Infinity edge should be unusable, cost = %v", c)
	}
}

func TestShortestPathsFrom(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 2)
	g.AddEdge(1, 2, 2)
	d := g.ShortestPathsFrom(0)
	if d[0] != 0 || d[1] != 2 || d[2] != 4 || d[3] != Infinity {
		t.Errorf("dist = %v", d)
	}
}

func TestHopDistance(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1, 100)
	g.AddEdge(1, 2, 100)
	g.AddEdge(0, 2, 1)
	if h := g.HopDistance(0, 2); h != 1 {
		t.Errorf("HopDistance = %d, want 1 (weights must be ignored)", h)
	}
	if h := g.HopDistance(0, 4); h != -1 {
		t.Errorf("HopDistance unreachable = %d, want -1", h)
	}
	if h := g.HopDistance(3, 3); h != 0 {
		t.Errorf("HopDistance self = %d, want 0", h)
	}
}

func TestShortestPathOptimalityProperty(t *testing.T) {
	// Dijkstra cost from 0 to every node must satisfy the relaxation
	// condition d[v] <= d[u] + w(u,v) for every edge.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		g := New(n)
		for i := 0; i < 3*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			g.AddEdge(u, v, 1+rng.Float64()*10)
		}
		d := g.ShortestPathsFrom(0)
		for _, e := range g.Edges() {
			if d[e.From] < Infinity && d[e.To] > d[e.From]+e.Weight+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCutWeight(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 5)
	g.AddEdge(2, 3, 7)
	g.AddEdge(1, 2, 3)
	assign := []int{0, 0, 1, 1}
	if cut := g.CutWeight(assign); cut != 3 {
		t.Errorf("CutWeight = %v, want 3", cut)
	}
	assign2 := []int{0, 1, 0, 1}
	if cut := g.CutWeight(assign2); cut != 15 {
		t.Errorf("CutWeight = %v, want 15", cut)
	}
}

func TestPartitionKBalance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 5, 12, 26, 40} {
		g := New(n)
		for i := 0; i < 4*n; i++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n), 1+rng.Float64()*100)
		}
		for k := 1; k <= n; k++ {
			assign := PartitionK(g, k)
			sizes := BlockSizes(assign, k)
			lo, hi := n/k, (n+k-1)/k
			total := 0
			for b, s := range sizes {
				total += s
				if s < lo || s > hi {
					t.Fatalf("n=%d k=%d block %d has size %d, want in [%d,%d] (sizes=%v)",
						n, k, b, s, lo, hi, sizes)
				}
			}
			if total != n {
				t.Fatalf("n=%d k=%d sizes sum to %d", n, k, total)
			}
		}
	}
}

func TestPartitionKSeparatesObviousClusters(t *testing.T) {
	// Two cliques of 4 vertices connected by a single light edge must be
	// separated by a 2-way partition.
	g := New(8)
	heavy := 100.0
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			g.AddEdge(i, j, heavy)
			g.AddEdge(i+4, j+4, heavy)
		}
	}
	g.AddEdge(0, 4, 1)
	assign := PartitionK(g, 2)
	for i := 1; i < 4; i++ {
		if assign[i] != assign[0] {
			t.Fatalf("clique A split: %v", assign)
		}
		if assign[i+4] != assign[4] {
			t.Fatalf("clique B split: %v", assign)
		}
	}
	if assign[0] == assign[4] {
		t.Fatalf("cliques not separated: %v", assign)
	}
	if cut := g.CutWeight(assign); cut != 1 {
		t.Errorf("cut = %v, want 1", cut)
	}
}

func TestPartitionKExtremes(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1, 1)
	one := PartitionK(g, 1)
	for _, b := range one {
		if b != 0 {
			t.Errorf("k=1 assignment = %v", one)
		}
	}
	all := PartitionK(g, 5)
	seen := map[int]bool{}
	for _, b := range all {
		if seen[b] {
			t.Errorf("k=n should give singleton blocks: %v", all)
		}
		seen[b] = true
	}
	// Empty graph.
	e := New(0)
	if got := PartitionK(e, 1); len(got) != 0 {
		t.Errorf("empty partition = %v", got)
	}
}

func TestPartitionKPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for k=0")
		}
	}()
	PartitionK(New(3), 0)
}

func TestPartitionDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := New(20)
	for i := 0; i < 80; i++ {
		g.AddEdge(rng.Intn(20), rng.Intn(20), 1+rng.Float64()*50)
	}
	a := PartitionK(g, 4)
	b := PartitionK(g, 4)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("PartitionK not deterministic at vertex %d", i)
		}
	}
}

func TestBlocksGrouping(t *testing.T) {
	assign := []int{0, 1, 0, 2, 1}
	blocks := Blocks(assign, 3)
	if len(blocks[0]) != 2 || len(blocks[1]) != 2 || len(blocks[2]) != 1 {
		t.Errorf("Blocks = %v", blocks)
	}
	if blocks[2][0] != 3 {
		t.Errorf("Blocks[2] = %v", blocks[2])
	}
}

func TestPartitionCutNotWorseThanNaive(t *testing.T) {
	// The refined partition should never have a larger cut than a naive
	// "first half / second half by index" split for a clustered graph.
	rng := rand.New(rand.NewSource(3))
	g := New(16)
	// Two communities: even vertices and odd vertices, heavily intra-connected.
	for i := 0; i < 16; i += 2 {
		for j := i + 2; j < 16; j += 2 {
			g.AddEdge(i, j, 10+rng.Float64())
			g.AddEdge(i+1, j+1, 10+rng.Float64())
		}
	}
	g.AddEdge(0, 1, 0.5)
	assign := PartitionK(g, 2)
	naive := make([]int, 16)
	for i := 8; i < 16; i++ {
		naive[i] = 1
	}
	if g.CutWeight(assign) > g.CutWeight(naive) {
		t.Errorf("refined cut %v worse than naive %v", g.CutWeight(assign), g.CutWeight(naive))
	}
}
