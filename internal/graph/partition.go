package graph

import (
	"fmt"
	"sort"
)

// This file implements balanced k-way min-cut partitioning, the work-horse of
// the core-to-switch assignment steps of Algorithms 1 and 2 of the paper
// ("Perform i min-cut partitions of PG" / "Obtain NP min-cut partitions of
// LPG"). Blocks are kept "about equal" in size: every block holds either
// floor(n/k) or ceil(n/k) vertices, matching the paper's balance requirement.
//
// The algorithm is recursive bisection. Each bisection starts from a
// BFS-based seeding that keeps strongly connected clusters together and is
// then refined with Kernighan–Lin style pairwise swaps until no swap improves
// the (undirected) cut weight. The instance sizes in this domain are tiny
// (tens of cores), so the O(n^2) swap refinement is both simple and fast.

// PartitionK partitions the vertices of g into k balanced blocks minimising
// the weight of edges cut between blocks (heuristically). It returns a slice
// assign with assign[v] in [0,k) for every vertex v. The directed graph is
// treated as undirected for cut purposes.
//
// PartitionK panics if k is not in [1, NumVertices()] — callers sweep k over
// exactly that range.
func PartitionK(g *Graph, k int) []int {
	n := g.NumVertices()
	if k < 1 || (k > n && n > 0) {
		panic(fmt.Sprintf("graph: PartitionK with k=%d for %d vertices", k, n))
	}
	assign := make([]int, n)
	if k <= 1 || n == 0 {
		return assign
	}
	und := g.Undirected()
	// Sorted neighbour lists, computed once: every weight summation below
	// iterates neighbours in this fixed order so the float accumulation —
	// and with it the whole partition — is bit-deterministic across runs,
	// without re-sorting inside the refinement loops.
	nbrs := make([][]int, n)
	for v := 0; v < n; v++ {
		nbrs[v] = und.Successors(v)
	}
	verts := make([]int, n)
	for i := range verts {
		verts[i] = i
	}
	partitionRec(und, nbrs, verts, k, 0, assign)
	return assign
}

// partitionRec assigns block identifiers [base, base+k) to the given vertices.
func partitionRec(und *Graph, nbrs [][]int, verts []int, k, base int, assign []int) {
	if k == 1 {
		for _, v := range verts {
			assign[v] = base
		}
		return
	}
	kA := (k + 1) / 2
	kB := k - kA
	// Split the vertex count proportionally to the number of blocks on each
	// side so that the leaves end up with floor(n/k) or ceil(n/k) vertices.
	sizeA := balancedSplit(len(verts), k, kA)
	sideA, sideB := bisect(und, nbrs, verts, sizeA)
	partitionRec(und, nbrs, sideA, kA, base, assign)
	partitionRec(und, nbrs, sideB, kB, base+kA, assign)
}

// balancedSplit returns how many of n vertices go to the side that will hold
// kA of the k blocks, such that every final block has floor(n/k) or
// ceil(n/k) vertices.
func balancedSplit(n, k, kA int) int {
	q, r := n/k, n%k
	// The first r blocks (by block index) get an extra vertex. Side A holds
	// blocks [0, kA), so it receives min(r, kA) of the larger blocks.
	extra := r
	if extra > kA {
		extra = kA
	}
	return q*kA + extra
}

// bisect splits verts into two groups of sizes sizeA and len(verts)-sizeA
// minimising the cut between them (heuristically).
func bisect(und *Graph, nbrs [][]int, verts []int, sizeA int) (a, b []int) {
	n := len(verts)
	if sizeA <= 0 {
		return nil, append([]int(nil), verts...)
	}
	if sizeA >= n {
		return append([]int(nil), verts...), nil
	}
	inSet := make(map[int]bool, n)
	for _, v := range verts {
		inSet[v] = true
	}

	// Seed side A with a BFS from the vertex with the heaviest incident
	// weight inside this sub-problem. Growing a connected cluster keeps
	// highly-communicating cores together, which is exactly what the paper
	// wants from the min-cut partitioner.
	order := bfsOrder(und, nbrs, verts, inSet)
	side := make(map[int]int, n) // vertex -> 0 (A) or 1 (B)
	for i, v := range order {
		if i < sizeA {
			side[v] = 0
		} else {
			side[v] = 1
		}
	}

	// Kernighan–Lin style pairwise swap refinement: repeatedly perform the
	// swap with the best positive gain until no swap improves the cut.
	for pass := 0; pass < 2*n+4; pass++ {
		bestGain := 0.0
		bestA, bestB := -1, -1
		for _, va := range order {
			if side[va] != 0 {
				continue
			}
			for _, vb := range order {
				if side[vb] != 1 {
					continue
				}
				g := swapGain(und, nbrs, inSet, side, va, vb)
				if g > bestGain+1e-12 {
					bestGain, bestA, bestB = g, va, vb
				}
			}
		}
		if bestA < 0 {
			break
		}
		side[bestA], side[bestB] = 1, 0
	}

	for _, v := range order {
		if side[v] == 0 {
			a = append(a, v)
		} else {
			b = append(b, v)
		}
	}
	sort.Ints(a)
	sort.Ints(b)
	return a, b
}

// bfsOrder returns the vertices of the sub-problem in BFS order starting from
// the vertex with the largest incident weight, visiting neighbours in order
// of decreasing connecting weight. Vertices unreachable from the seed are
// appended by the same criterion.
func bfsOrder(und *Graph, nbrs [][]int, verts []int, inSet map[int]bool) []int {
	// Incident weight inside the sub-problem. Neighbours are summed in the
	// precomputed sorted order: map iteration order would change the float
	// accumulation order between runs, and the resulting ULP-level
	// differences can flip the sort below — the partitioner must be
	// bit-deterministic because the engine's cached and uncached sweeps both
	// rely on recomputing identical partitions.
	weight := make(map[int]float64, len(verts))
	for _, v := range verts {
		var w float64
		for _, u := range nbrs[v] {
			if inSet[u] {
				w += und.adj[v][u]
			}
		}
		weight[v] = w
	}
	remaining := append([]int(nil), verts...)
	sort.Slice(remaining, func(i, j int) bool {
		if weight[remaining[i]] != weight[remaining[j]] {
			return weight[remaining[i]] > weight[remaining[j]]
		}
		return remaining[i] < remaining[j]
	})

	visited := make(map[int]bool, len(verts))
	var order []int
	for _, seed := range remaining {
		if visited[seed] {
			continue
		}
		queue := []int{seed}
		visited[seed] = true
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			order = append(order, u)
			// Visit neighbours by decreasing edge weight for determinism and
			// cluster quality.
			var next []int
			for _, v := range nbrs[u] {
				if inSet[v] && !visited[v] {
					next = append(next, v)
				}
			}
			sort.Slice(next, func(i, j int) bool {
				wi, wj := und.adj[u][next[i]], und.adj[u][next[j]]
				if wi != wj {
					return wi > wj
				}
				return next[i] < next[j]
			})
			for _, v := range next {
				visited[v] = true
				queue = append(queue, v)
			}
		}
	}
	return order
}

// swapGain returns the reduction in cut weight obtained by swapping va (in
// side 0) with vb (in side 1). Positive is better.
func swapGain(und *Graph, nbrs [][]int, inSet map[int]bool, side map[int]int, va, vb int) float64 {
	// Sum in the precomputed sorted neighbour order for bit-deterministic
	// gains (see the matching comment in bfsOrder).
	ext := func(v, own int) (external, internal float64) {
		for _, u := range nbrs[v] {
			if !inSet[u] || u == va || u == vb {
				continue
			}
			w := und.adj[v][u]
			if side[u] == own {
				internal += w
			} else {
				external += w
			}
		}
		return
	}
	extA, intA := ext(va, 0)
	extB, intB := ext(vb, 1)
	// Gain from moving each vertex to the other side, corrected by twice the
	// weight between them (classic KL formula).
	return (extA - intA) + (extB - intB) - 2*und.adj[va][vb]
}

// BlockSizes returns the number of vertices in each block of an assignment
// produced by PartitionK (blocks are assumed to be labelled 0..k-1).
func BlockSizes(assign []int, k int) []int {
	sizes := make([]int, k)
	for _, b := range assign {
		if b >= 0 && b < k {
			sizes[b]++
		}
	}
	return sizes
}

// Blocks groups vertex indices by block identifier.
func Blocks(assign []int, k int) [][]int {
	blocks := make([][]int, k)
	for v, b := range assign {
		if b >= 0 && b < k {
			blocks[b] = append(blocks[b], v)
		}
	}
	return blocks
}
