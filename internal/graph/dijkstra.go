package graph

import (
	"container/heap"
	"math"
)

// Infinity is the cost returned for unreachable vertices and the value used
// by callers to mark forbidden arcs (the paper's INF hard threshold in
// Algorithm 3).
const Infinity = math.MaxFloat64

// pqItem is an entry of the Dijkstra priority queue.
type pqItem struct {
	vertex int
	dist   float64
}

type priorityQueue []pqItem

func (pq priorityQueue) Len() int            { return len(pq) }
func (pq priorityQueue) Less(i, j int) bool  { return pq[i].dist < pq[j].dist }
func (pq priorityQueue) Swap(i, j int)       { pq[i], pq[j] = pq[j], pq[i] }
func (pq *priorityQueue) Push(x interface{}) { *pq = append(*pq, x.(pqItem)) }
func (pq *priorityQueue) Pop() interface{} {
	old := *pq
	n := len(old)
	it := old[n-1]
	*pq = old[:n-1]
	return it
}

// ShortestPath returns the minimum-cost path from src to dst over the
// directed graph, treating edge weights as costs, together with the total
// cost. It returns (nil, Infinity) when dst is unreachable. Edges with weight
// >= Infinity are skipped.
func (g *Graph) ShortestPath(src, dst int) ([]int, float64) {
	dist, prev := g.dijkstra(src, dst)
	if dist[dst] >= Infinity {
		return nil, Infinity
	}
	// Reconstruct.
	var rev []int
	for v := dst; v != -1; v = prev[v] {
		rev = append(rev, v)
	}
	path := make([]int, len(rev))
	for i, v := range rev {
		path[len(rev)-1-i] = v
	}
	return path, dist[dst]
}

// ShortestPathCost behaves like ShortestPath but computes only the cost.
func (g *Graph) ShortestPathCost(src, dst int) float64 {
	dist, _ := g.dijkstra(src, dst)
	return dist[dst]
}

// ShortestPathsFrom returns the cost of the shortest path from src to every
// vertex (Infinity for unreachable ones).
func (g *Graph) ShortestPathsFrom(src int) []float64 {
	dist, _ := g.dijkstra(src, -1)
	return dist
}

// dijkstra runs Dijkstra's algorithm from src, optionally terminating early
// when target (>= 0) is settled.
func (g *Graph) dijkstra(src, target int) (dist []float64, prev []int) {
	g.check(src)
	dist = make([]float64, g.n)
	prev = make([]int, g.n)
	for i := range dist {
		dist[i] = Infinity
		prev[i] = -1
	}
	dist[src] = 0
	pq := &priorityQueue{{vertex: src, dist: 0}}
	settled := make([]bool, g.n)
	for pq.Len() > 0 {
		it := heap.Pop(pq).(pqItem)
		u := it.vertex
		if settled[u] {
			continue
		}
		settled[u] = true
		if u == target {
			return dist, prev
		}
		// Relax neighbours in ascending vertex order: with map iteration the
		// predecessor recorded for an equal-cost tie — and therefore the
		// reconstructed path — would depend on the run's map seed.
		for _, v := range g.Successors(u) {
			w := g.adj[u][v]
			if w >= Infinity || settled[v] {
				continue
			}
			if nd := dist[u] + w; nd < dist[v] {
				dist[v] = nd
				prev[v] = u
				heap.Push(pq, pqItem{vertex: v, dist: nd})
			}
		}
	}
	return dist, prev
}

// HopDistance returns the minimum number of edges on a path from src to dst,
// ignoring weights, or -1 when unreachable. It is used for zero-load latency
// estimates on topology graphs.
func (g *Graph) HopDistance(src, dst int) int {
	g.check(src)
	g.check(dst)
	if src == dst {
		return 0
	}
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		//determlint:ordered BFS level numbers are unique minima; the returned hop count is identical for every intra-level visit order
		for v := range g.adj[u] {
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				if v == dst {
					return dist[v]
				}
				queue = append(queue, v)
			}
		}
	}
	return -1
}
