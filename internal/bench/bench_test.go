package bench

import (
	"testing"
)

func TestAllBenchmarksWellFormed(t *testing.T) {
	specs := map[string]struct {
		cores  int
		layers int
	}{
		"D_26_media": {26, 3},
		"D_36_4":     {36, 2},
		"D_36_6":     {36, 2},
		"D_36_8":     {36, 2},
		"D_35_bot":   {35, 2},
		"D_65_pipe":  {65, 3},
		"D_38_tvopd": {38, 2},
	}
	all := All(1)
	if len(all) != len(specs) {
		t.Fatalf("All returned %d benchmarks, want %d", len(all), len(specs))
	}
	for _, b := range all {
		want, ok := specs[b.Name]
		if !ok {
			t.Errorf("unexpected benchmark %q", b.Name)
			continue
		}
		if b.Graph3D.NumCores() != want.cores {
			t.Errorf("%s: %d cores, want %d", b.Name, b.Graph3D.NumCores(), want.cores)
		}
		if b.Graph3D.NumLayers() != want.layers {
			t.Errorf("%s: %d layers, want %d", b.Name, b.Graph3D.NumLayers(), want.layers)
		}
		if b.Layers != want.layers {
			t.Errorf("%s: Layers field %d, want %d", b.Name, b.Layers, want.layers)
		}
		if b.Graph2D.NumLayers() != 1 {
			t.Errorf("%s: 2-D version has %d layers", b.Name, b.Graph2D.NumLayers())
		}
		if b.Graph2D.NumCores() != b.Graph3D.NumCores() {
			t.Errorf("%s: 2-D and 3-D core counts differ", b.Name)
		}
		if b.Graph2D.NumFlows() != b.Graph3D.NumFlows() {
			t.Errorf("%s: 2-D and 3-D flow counts differ", b.Name)
		}
		if b.Graph3D.NumFlows() == 0 {
			t.Errorf("%s: no flows", b.Name)
		}
		if err := b.Graph3D.Validate(); err != nil {
			t.Errorf("%s: 3-D graph invalid: %v", b.Name, err)
		}
		if err := b.Graph2D.Validate(); err != nil {
			t.Errorf("%s: 2-D graph invalid: %v", b.Name, err)
		}
	}
}

func TestLayersBalanced(t *testing.T) {
	for _, b := range All(2) {
		hist := b.Graph3D.LayerHistogram()
		n := b.Graph3D.NumCores()
		quota := (n + b.Layers - 1) / b.Layers
		for l, c := range hist {
			if c == 0 {
				t.Errorf("%s: layer %d is empty", b.Name, l)
			}
			if c > quota {
				t.Errorf("%s: layer %d holds %d cores, quota %d", b.Name, l, c, quota)
			}
		}
	}
}

func TestFloorplansAreLegal(t *testing.T) {
	for _, b := range All(3) {
		checkNoOverlap(t, b.Name+"/3D", b)
		checkNoOverlap2D(t, b.Name+"/2D", b)
	}
}

func checkNoOverlap(t *testing.T, name string, b Benchmark) {
	t.Helper()
	g := b.Graph3D
	for l := 0; l < g.NumLayers(); l++ {
		idx := g.CoresInLayer(l)
		for i := 0; i < len(idx); i++ {
			for j := i + 1; j < len(idx); j++ {
				ri := g.Cores[idx[i]].Rect()
				rj := g.Cores[idx[j]].Rect()
				if ri.Overlaps(rj) {
					t.Errorf("%s: cores %s and %s overlap on layer %d",
						name, g.Cores[idx[i]].Name, g.Cores[idx[j]].Name, l)
				}
			}
		}
	}
}

func checkNoOverlap2D(t *testing.T, name string, b Benchmark) {
	t.Helper()
	g := b.Graph2D
	for i := 0; i < g.NumCores(); i++ {
		for j := i + 1; j < g.NumCores(); j++ {
			if g.Cores[i].Rect().Overlaps(g.Cores[j].Rect()) {
				t.Errorf("%s: cores %s and %s overlap", name, g.Cores[i].Name, g.Cores[j].Name)
			}
		}
	}
}

func TestD36VariantsHaveSameTotalBandwidth(t *testing.T) {
	b4 := D36(4, 7)
	b6 := D36(6, 7)
	b8 := D36(8, 7)
	t4 := b4.Graph3D.TotalBandwidth()
	t6 := b6.Graph3D.TotalBandwidth()
	t8 := b8.Graph3D.TotalBandwidth()
	// The generators draw per-flow jitter, so allow 10% tolerance.
	for _, pair := range [][2]float64{{t4, t6}, {t6, t8}, {t4, t8}} {
		ratio := pair[0] / pair[1]
		if ratio < 0.9 || ratio > 1.1 {
			t.Errorf("total bandwidths differ too much: %v vs %v", pair[0], pair[1])
		}
	}
	// Flow counts grow with the fan-out.
	if !(b4.Graph3D.NumFlows() < b6.Graph3D.NumFlows() && b6.Graph3D.NumFlows() < b8.Graph3D.NumFlows()) {
		t.Error("flow counts should grow with flows per processor")
	}
}

func TestD35BotStructure(t *testing.T) {
	b := D35Bot(5)
	g := b.Graph3D
	// All 16 processors must reach all 3 shared memories.
	sharedIdx := make([]int, 0, 3)
	for i, c := range g.Cores {
		if len(c.Name) >= 6 && c.Name[:6] == "shared" {
			sharedIdx = append(sharedIdx, i)
		}
	}
	if len(sharedIdx) != 3 {
		t.Fatalf("found %d shared memories", len(sharedIdx))
	}
	for p := 0; p < 16; p++ {
		for _, s := range sharedIdx {
			if g.FlowsBetween(p, s) <= 0 {
				t.Errorf("proc%d has no flow to %s", p, g.Cores[s].Name)
			}
		}
	}
}

func TestPipelineBenchmarksAreSparse(t *testing.T) {
	for _, b := range []Benchmark{D65Pipe(3), D38TVOPD(3)} {
		g := b.Graph3D
		// Pipelined designs have roughly one outgoing flow per core.
		if g.NumFlows() > 2*g.NumCores() {
			t.Errorf("%s: %d flows for %d cores, too dense for a pipeline",
				b.Name, g.NumFlows(), g.NumCores())
		}
	}
}

func TestDeterminismPerSeed(t *testing.T) {
	a := D26Media(11)
	b := D26Media(11)
	if a.Graph3D.TotalBandwidth() != b.Graph3D.TotalBandwidth() {
		t.Error("same seed produced different bandwidths")
	}
	for i := range a.Graph3D.Cores {
		if a.Graph3D.Cores[i] != b.Graph3D.Cores[i] {
			t.Fatalf("same seed produced different core %d", i)
		}
	}
	c := D26Media(12)
	if a.Graph3D.TotalBandwidth() == c.Graph3D.TotalBandwidth() {
		t.Log("different seeds produced identical bandwidth (unlikely but not fatal)")
	}
}

func TestByName(t *testing.T) {
	b, err := ByName("D_36_6", 1)
	if err != nil {
		t.Fatalf("ByName: %v", err)
	}
	if b.Name != "D_36_6" {
		t.Errorf("got %q", b.Name)
	}
	if _, err := ByName("nope", 1); err == nil {
		t.Error("expected error for unknown name")
	}
}

func TestStackingPutsHeavyPartnersOnDifferentLayers(t *testing.T) {
	// In the 3-D versions, the heaviest flows should frequently cross layers
	// (highly communicating cores stacked above each other), which is the
	// input assumption the paper states for its benchmarks.
	b := D36(4, 9)
	g := b.Graph3D
	inter := 0
	for _, f := range g.Flows {
		if g.Cores[f.Src].Layer != g.Cores[f.Dst].Layer {
			inter++
		}
	}
	if inter == 0 {
		t.Error("no inter-layer flows at all; layer assignment looks degenerate")
	}
}
