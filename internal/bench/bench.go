// Package bench generates the SoC benchmarks used in the paper's evaluation:
//
//   - D_26_media — a 26-core multimedia and wireless SoC on three layers
//     (ARM, DSPs, memories, DMA, peripherals) with irregular core sizes;
//   - D_36_4, D_36_6, D_36_8 — distributed benchmarks with 18 processors and
//     18 memories where each processor talks to 4, 6 or 8 memories, with the
//     same total bandwidth in all three;
//   - D_35_bot — a bottleneck benchmark with 16 processors, 16 private
//     memories and 3 shared memories all processors access;
//   - D_65_pipe and D_38_tvopd — pipelined benchmarks in which each core
//     communicates with one or a few neighbours.
//
// The original benchmarks are not publicly distributed, so these generators
// reproduce the published structure (core counts, communication patterns,
// bandwidth distribution, layer counts) rather than the exact numbers; the
// relative behaviour of the synthesis flow on them is what matters for the
// paper's experiments. Every generator is deterministic for a given seed.
//
// For each benchmark both a 3-D version (cores assigned to layers, highly
// communicating cores stacked, per-layer floorplans) and the corresponding
// 2-D version (same cores and flows on a single die with its own floorplan)
// are produced, which is exactly the comparison of Table I.
package bench

import (
	"fmt"
	"math/rand"

	"sunfloor3d/internal/floorplan"
	"sunfloor3d/internal/graph"
	"sunfloor3d/internal/model"
)

// Benchmark is one generated SoC benchmark.
type Benchmark struct {
	// Name is the paper's benchmark identifier (e.g. "D_36_4").
	Name string
	// Graph3D is the 3-D version: cores carry layer assignments and
	// per-layer floorplan positions.
	Graph3D *model.CommGraph
	// Graph2D is the 2-D version: the same cores and flows on a single layer
	// with a fresh single-die floorplan.
	Graph2D *model.CommGraph
	// Layers is the number of 3-D layers used by Graph3D.
	Layers int
}

// All returns every benchmark of the paper's evaluation, generated with the
// given seed.
func All(seed int64) []Benchmark {
	return []Benchmark{
		D26Media(seed),
		D36(4, seed),
		D36(6, seed),
		D36(8, seed),
		D35Bot(seed),
		D65Pipe(seed),
		D38TVOPD(seed),
	}
}

// ByName returns the named benchmark, or an error listing the valid names.
func ByName(name string, seed int64) (Benchmark, error) {
	for _, b := range All(seed) {
		if b.Name == name {
			return b, nil
		}
	}
	names := make([]string, 0)
	for _, b := range All(seed) {
		names = append(names, b.Name)
	}
	return Benchmark{}, fmt.Errorf("bench: unknown benchmark %q (valid: %v)", name, names)
}

// ByNameMust is like ByName but panics on an unknown name. It is intended for
// experiment code whose benchmark names are compile-time constants.
func ByNameMust(name string, seed int64) Benchmark {
	b, err := ByName(name, seed)
	if err != nil {
		panic(err)
	}
	return b
}

// core under construction, before layering and floorplanning.
type protoCore struct {
	name   string
	w, h   float64
	memory bool
}

// protoFlow is a flow by core index.
type protoFlow struct {
	src, dst int
	bw       float64
	lat      float64
	typ      model.MessageType
}

// D26Media builds the 26-core multimedia/wireless SoC case study on 3 layers.
func D26Media(seed int64) Benchmark {
	rng := rand.New(rand.NewSource(seed ^ 0x26))
	var cores []protoCore
	add := func(name string, w, h float64, mem bool) int {
		cores = append(cores, protoCore{name: name, w: w, h: h, memory: mem})
		return len(cores) - 1
	}

	arm := add("arm", 2.2, 2.0, false)
	dsp1 := add("dsp1", 1.8, 1.6, false)
	dsp2 := add("dsp2", 1.8, 1.6, false)
	vitdec := add("viterbi", 1.2, 1.0, false)
	fft := add("fft", 1.4, 1.2, false)
	dma := add("dma", 0.9, 0.8, false)
	vidEnc := add("vid_enc", 2.0, 1.8, false)
	vidDec := add("vid_dec", 2.0, 1.6, false)
	audio := add("audio", 1.0, 0.9, false)
	disp := add("display", 1.3, 1.1, false)
	cam := add("camera", 1.1, 1.0, false)
	rf := add("rf_if", 1.0, 1.2, false)
	usb := add("usb", 0.8, 0.7, false)
	uart := add("uart", 0.6, 0.5, false)
	spi := add("spi", 0.6, 0.5, false)
	gpio := add("gpio", 0.5, 0.5, false)

	var mems []int
	memSizes := [][2]float64{{1.6, 1.4}, {1.6, 1.4}, {1.4, 1.2}, {1.4, 1.2}, {1.2, 1.0},
		{1.2, 1.0}, {1.0, 1.0}, {1.0, 1.0}, {1.8, 1.6}, {1.0, 0.8}}
	for i, sz := range memSizes {
		mems = append(mems, add(fmt.Sprintf("mem%d", i), sz[0], sz[1], true))
	}
	// 16 logic + 10 memories = 26 cores.

	jitter := func(base float64) float64 { return base * (0.85 + 0.3*rng.Float64()) }
	var flows []protoFlow
	flow := func(s, d int, bw, lat float64) {
		flows = append(flows, protoFlow{src: s, dst: d, bw: jitter(bw), lat: lat, typ: model.Request})
		flows = append(flows, protoFlow{src: d, dst: s, bw: jitter(bw * 0.4), lat: lat, typ: model.Response})
	}
	// Base-band pipeline: rf -> fft -> viterbi -> dsp1 -> mem.
	flow(rf, fft, 800, 6)
	flow(fft, vitdec, 760, 6)
	flow(vitdec, dsp1, 700, 6)
	flow(dsp1, mems[0], 900, 4)
	flow(dsp2, mems[1], 850, 4)
	flow(dsp1, mems[2], 400, 6)
	flow(dsp2, mems[3], 380, 6)
	// Multimedia pipeline: camera -> video encoder -> memory -> display.
	flow(cam, vidEnc, 1200, 5)
	flow(vidEnc, mems[4], 1100, 5)
	flow(mems[4], vidDec, 600, 6)
	flow(vidDec, disp, 1000, 5)
	flow(vidDec, mems[5], 500, 6)
	flow(audio, mems[6], 200, 8)
	// ARM subsystem: instruction/data memories, DMA, peripherals.
	flow(arm, mems[8], 1000, 3)
	flow(arm, mems[7], 650, 4)
	flow(arm, dma, 300, 6)
	flow(dma, mems[9], 550, 6)
	flow(dma, mems[4], 450, 6)
	flow(arm, usb, 120, 10)
	flow(arm, uart, 40, 12)
	flow(arm, spi, 60, 12)
	flow(arm, gpio, 30, 12)
	flow(arm, dsp1, 250, 6)
	flow(arm, dsp2, 240, 6)
	flow(arm, vidEnc, 220, 8)
	flow(arm, disp, 180, 8)

	return assemble("D_26_media", cores, flows, 3, seed)
}

// D36 builds the distributed benchmark with 18 processors and 18 memories in
// which each processor communicates with flowsPerProc memories. The total
// bandwidth is the same regardless of flowsPerProc.
func D36(flowsPerProc int, seed int64) Benchmark {
	if flowsPerProc < 1 {
		flowsPerProc = 1
	}
	rng := rand.New(rand.NewSource(seed ^ int64(0x3600+flowsPerProc)))
	const nProc, nMem = 18, 18
	var cores []protoCore
	for i := 0; i < nProc; i++ {
		cores = append(cores, protoCore{name: fmt.Sprintf("proc%d", i), w: 1.5, h: 1.4})
	}
	for i := 0; i < nMem; i++ {
		cores = append(cores, protoCore{name: fmt.Sprintf("mem%d", i), w: 1.2, h: 1.2, memory: true})
	}
	// Total outgoing bandwidth per processor is fixed; it is split across its
	// flows so the three variants move the same total traffic.
	const totalPerProc = 1200.0
	per := totalPerProc / float64(flowsPerProc)
	var flows []protoFlow
	for p := 0; p < nProc; p++ {
		for k := 0; k < flowsPerProc; k++ {
			// Spread targets: the k-th flow of processor p goes to memory
			// (p + k*7) mod 18, giving a distributed, non-local pattern.
			m := nProc + (p+k*7)%nMem
			bw := per * (0.8 + 0.4*rng.Float64())
			flows = append(flows, protoFlow{src: p, dst: m, bw: bw, lat: 6, typ: model.Request})
			flows = append(flows, protoFlow{src: m, dst: p, bw: bw * 0.5, lat: 6, typ: model.Response})
		}
	}
	return assemble(fmt.Sprintf("D_36_%d", flowsPerProc), cores, flows, 2, seed)
}

// D35Bot builds the bottleneck benchmark: 16 processors each with a private
// memory plus 3 shared memories accessed by every processor.
func D35Bot(seed int64) Benchmark {
	rng := rand.New(rand.NewSource(seed ^ 0x35))
	const nProc = 16
	var cores []protoCore
	for i := 0; i < nProc; i++ {
		cores = append(cores, protoCore{name: fmt.Sprintf("proc%d", i), w: 1.5, h: 1.4})
	}
	for i := 0; i < nProc; i++ {
		cores = append(cores, protoCore{name: fmt.Sprintf("priv%d", i), w: 1.1, h: 1.1, memory: true})
	}
	for i := 0; i < 3; i++ {
		cores = append(cores, protoCore{name: fmt.Sprintf("shared%d", i), w: 1.6, h: 1.5, memory: true})
	}
	var flows []protoFlow
	for p := 0; p < nProc; p++ {
		priv := nProc + p
		bw := 900 * (0.85 + 0.3*rng.Float64())
		flows = append(flows, protoFlow{src: p, dst: priv, bw: bw, lat: 4, typ: model.Request})
		flows = append(flows, protoFlow{src: priv, dst: p, bw: bw * 0.5, lat: 4, typ: model.Response})
		for s := 0; s < 3; s++ {
			shared := 2*nProc + s
			sbw := 150 * (0.8 + 0.4*rng.Float64())
			flows = append(flows, protoFlow{src: p, dst: shared, bw: sbw, lat: 8, typ: model.Request})
			flows = append(flows, protoFlow{src: shared, dst: p, bw: sbw * 0.6, lat: 8, typ: model.Response})
		}
	}
	return assemble("D_35_bot", cores, flows, 2, seed)
}

// D65Pipe builds the 65-core pipelined benchmark: a long processing pipeline
// where each core sends to the next one.
func D65Pipe(seed int64) Benchmark {
	rng := rand.New(rand.NewSource(seed ^ 0x65))
	const n = 65
	var cores []protoCore
	for i := 0; i < n; i++ {
		w := 1.0 + 0.4*rng.Float64()
		cores = append(cores, protoCore{name: fmt.Sprintf("stage%d", i), w: w, h: w * (0.8 + 0.3*rng.Float64())})
	}
	var flows []protoFlow
	for i := 0; i+1 < n; i++ {
		bw := 600 * (0.85 + 0.3*rng.Float64())
		flows = append(flows, protoFlow{src: i, dst: i + 1, bw: bw, lat: 6, typ: model.Request})
	}
	// A few feedback paths, as pipelines typically have.
	for i := 8; i < n; i += 16 {
		flows = append(flows, protoFlow{src: i, dst: i - 8, bw: 120, lat: 10, typ: model.Response})
	}
	return assemble("D_65_pipe", cores, flows, 3, seed)
}

// D38TVOPD builds the 38-core pipelined benchmark modelled on the TVOPD-style
// object-plane-decoder designs: mostly chained traffic with a few fan-outs.
func D38TVOPD(seed int64) Benchmark {
	rng := rand.New(rand.NewSource(seed ^ 0x38))
	const n = 38
	var cores []protoCore
	for i := 0; i < n; i++ {
		w := 0.9 + 0.5*rng.Float64()
		cores = append(cores, protoCore{name: fmt.Sprintf("pe%d", i), w: w, h: w * (0.8 + 0.4*rng.Float64())})
	}
	var flows []protoFlow
	// Two parallel decoding pipelines of 19 stages each.
	for p := 0; p < 2; p++ {
		base := p * 19
		for i := 0; i+1 < 19; i++ {
			bw := 500 * (0.85 + 0.3*rng.Float64())
			flows = append(flows, protoFlow{src: base + i, dst: base + i + 1, bw: bw, lat: 6, typ: model.Request})
		}
	}
	// Cross links between the pipelines at a few points.
	for _, i := range []int{4, 9, 14} {
		flows = append(flows, protoFlow{src: i, dst: 19 + i, bw: 200, lat: 8, typ: model.Request})
		flows = append(flows, protoFlow{src: 19 + i, dst: i, bw: 150, lat: 8, typ: model.Response})
	}
	return assemble("D_38_tvopd", cores, flows, 2, seed)
}

// assemble turns proto cores and flows into the 3-D and 2-D communication
// graphs: it assigns cores to layers (stacking highly communicating cores),
// floorplans every layer and the 2-D die, and validates the result.
func assemble(name string, protos []protoCore, flows []protoFlow, layers int, seed int64) Benchmark {
	assignment := assignLayers(protos, flows, layers)

	mkCores := func(layerOf func(int) int) []model.Core {
		cores := make([]model.Core, len(protos))
		for i, p := range protos {
			cores[i] = model.Core{
				Name: p.name, Width: p.w, Height: p.h,
				Layer: layerOf(i), IsMemory: p.memory,
			}
		}
		return cores
	}
	mkFlows := func() []model.Flow {
		out := make([]model.Flow, len(flows))
		for i, f := range flows {
			out[i] = model.Flow{Src: f.src, Dst: f.dst, BandwidthMBps: f.bw,
				LatencyCycles: f.lat, Type: f.typ}
		}
		return out
	}

	cores3d := mkCores(func(i int) int { return assignment[i] })
	floorplanLayers(cores3d, flows, layers, seed)
	g3d, err := model.NewCommGraph(cores3d, mkFlows())
	if err != nil {
		panic(fmt.Sprintf("bench: %s 3-D graph invalid: %v", name, err))
	}

	cores2d := mkCores(func(int) int { return 0 })
	floorplanLayers(cores2d, flows, 1, seed+1)
	g2d, err := model.NewCommGraph(cores2d, mkFlows())
	if err != nil {
		panic(fmt.Sprintf("bench: %s 2-D graph invalid: %v", name, err))
	}

	return Benchmark{Name: name, Graph3D: g3d, Graph2D: g2d, Layers: layers}
}

// assignLayers distributes cores over the layers the way the paper's
// benchmarks are "manually mapped": a balanced min-cut partition of the
// bandwidth-weighted communication graph, so that tightly coupled clusters
// (a pipeline segment, a processor with its memories) share a layer and only
// the unavoidable traffic crosses layer boundaries. Each layer then holds
// roughly 1/layers of the cores, which is what shrinks the per-die footprint
// and with it the wire lengths — the main source of the 3-D power savings the
// paper reports.
func assignLayers(protos []protoCore, flows []protoFlow, layers int) []int {
	n := len(protos)
	assign := make([]int, n)
	if layers <= 1 || n == 0 {
		return assign
	}
	cg := graph.New(n)
	for _, f := range flows {
		cg.AddEdge(f.src, f.dst, f.bw)
	}
	copy(assign, graph.PartitionK(cg, layers))
	// Keep layer 0 the most populated so the bottom die never ends up empty
	// for tiny designs (purely cosmetic: PartitionK already balances counts).
	sizes := graph.BlockSizes(assign, layers)
	maxLayer := 0
	for l, s := range sizes {
		if s > sizes[maxLayer] {
			maxLayer = l
		}
	}
	if maxLayer != 0 {
		for i, a := range assign {
			switch a {
			case maxLayer:
				assign[i] = 0
			case 0:
				assign[i] = maxLayer
			}
		}
	}
	return assign
}

// floorplanLayers computes initial core positions for every layer with the SA
// floorplanner, minimising area and intra-layer wirelength (the same
// objectives the paper uses when generating the input floorplans with
// Parquet).
func floorplanLayers(cores []model.Core, flows []protoFlow, layers int, seed int64) {
	for l := 0; l < layers; l++ {
		var idx []int
		for i := range cores {
			if cores[i].Layer == l {
				idx = append(idx, i)
			}
		}
		if len(idx) == 0 {
			continue
		}
		pos := make(map[int]int, len(idx)) // core index -> block index
		blocks := make([]floorplan.Block, len(idx))
		for bi, ci := range idx {
			pos[ci] = bi
			blocks[bi] = floorplan.Block{Name: cores[ci].Name, W: cores[ci].Width, H: cores[ci].Height}
		}
		var nets []floorplan.Net
		for _, f := range flows {
			a, aok := pos[f.src]
			b, bok := pos[f.dst]
			if aok && bok {
				nets = append(nets, floorplan.Net{A: a, B: b, Weight: f.bw / 1000})
			}
		}
		params := floorplan.DefaultParams(seed + int64(l)*101)
		// The generator only needs a reasonable, legal initial placement, not
		// a fully converged one; a lighter schedule keeps benchmark
		// construction fast even for the 65-core designs.
		params.Iterations = 100
		params.TemperatureSteps = 35
		res, err := floorplan.Floorplan(blocks, nets, params)
		if err != nil {
			panic(fmt.Sprintf("bench: floorplanning layer %d failed: %v", l, err))
		}
		for bi, ci := range idx {
			cores[ci].X = res.Positions[bi].X
			cores[ci].Y = res.Positions[bi].Y
		}
	}
}
