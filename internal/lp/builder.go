package lp

// Builder helpers on top of the raw simplex solver. The switch-position LP of
// Section VII minimises sums of bandwidth-weighted Manhattan distances, i.e.
// sums of |x_i - x_j| terms. Each absolute value is linearised in the
// standard way with an auxiliary non-negative variable d and the two
// constraints d >= x_i - x_j and d >= x_j - x_i, after which d appears in the
// objective with the term's weight. Free (sign-unrestricted) variables are
// expressed as the difference of two non-negative variables.

// FreeVar represents a variable that can take any sign, implemented as the
// difference pos - neg of two non-negative structural variables.
type FreeVar struct {
	pos, neg int
}

// AddFreeVariable adds a sign-unrestricted variable with zero objective
// coefficient.
func (p *Problem) AddFreeVariable(name string) FreeVar {
	return FreeVar{
		pos: p.AddVariable(name+"+", 0),
		neg: p.AddVariable(name+"-", 0),
	}
}

// FreeValue returns the value of the free variable in the solution.
func (s *Solution) FreeValue(v FreeVar) float64 {
	return s.Value(v.pos) - s.Value(v.neg)
}

// Term is a linear term coeff * var, where the variable may be a plain
// non-negative variable index or a free variable.
type Term struct {
	Var   int
	Free  *FreeVar
	Coeff float64
}

// addTerms accumulates the terms into the coefficient map.
func addTerms(coeffs map[int]float64, terms []Term) {
	for _, t := range terms {
		if t.Free != nil {
			coeffs[t.Free.pos] += t.Coeff
			coeffs[t.Free.neg] -= t.Coeff
		} else {
			coeffs[t.Var] += t.Coeff
		}
	}
}

// AddLinearConstraint adds the constraint sum(terms) op rhs, where terms may
// mix plain and free variables.
func (p *Problem) AddLinearConstraint(terms []Term, op ConstraintOp, rhs float64) {
	coeffs := make(map[int]float64)
	addTerms(coeffs, terms)
	p.AddConstraint(coeffs, op, rhs)
}

// AddAbsDifferenceObjective adds weight * |expr| to the objective, where expr
// is the linear expression described by terms (plus the constant). It returns
// the index of the auxiliary variable holding |expr| at the optimum (for
// positive weight).
func (p *Problem) AddAbsDifferenceObjective(name string, terms []Term, constant, weight float64) int {
	d := p.AddVariable(name, weight)
	// d >= expr  ->  d - expr >= -constant
	coeffs := make(map[int]float64)
	addTerms(coeffs, terms)
	neg := make(map[int]float64, len(coeffs)+1)
	for i, c := range coeffs {
		neg[i] = -c
	}
	neg[d] += 1
	p.AddConstraint(neg, GE, constant)
	// d >= -expr  ->  d + expr >= constant... careful with signs:
	// expr + constant can be negative; we need d >= expr + constant and
	// d >= -(expr + constant).
	pos := make(map[int]float64, len(coeffs)+1)
	for i, c := range coeffs {
		pos[i] = c
	}
	pos[d] += 1
	p.AddConstraint(pos, GE, -constant)
	return d
}
