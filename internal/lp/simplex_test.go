package lp

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) < eps }

func TestSimpleMaximizationAsMinimization(t *testing.T) {
	// maximise 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18, x,y >= 0
	// (classic example; optimum x=2, y=6, objective 36). We minimise the
	// negation.
	p := NewProblem()
	x := p.AddVariable("x", -3)
	y := p.AddVariable("y", -5)
	p.AddConstraint(map[int]float64{x: 1}, LE, 4)
	p.AddConstraint(map[int]float64{y: 2}, LE, 12)
	p.AddConstraint(map[int]float64{x: 3, y: 2}, LE, 18)
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !almost(sol.Objective, -36, 1e-6) {
		t.Errorf("objective = %v, want -36", sol.Objective)
	}
	if !almost(sol.Value(x), 2, 1e-6) || !almost(sol.Value(y), 6, 1e-6) {
		t.Errorf("x=%v y=%v, want 2,6", sol.Value(x), sol.Value(y))
	}
}

func TestMinimizationWithGEConstraints(t *testing.T) {
	// minimise 2x + 3y s.t. x + y >= 10, x >= 2, y >= 3
	// optimum: y at its lower bound? 2x+3y with x+y>=10: put as much on x:
	// x=7, y=3 -> 14+9=23.
	p := NewProblem()
	x := p.AddVariable("x", 2)
	y := p.AddVariable("y", 3)
	p.AddConstraint(map[int]float64{x: 1, y: 1}, GE, 10)
	p.AddConstraint(map[int]float64{x: 1}, GE, 2)
	p.AddConstraint(map[int]float64{y: 1}, GE, 3)
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !almost(sol.Objective, 23, 1e-6) {
		t.Errorf("objective = %v, want 23", sol.Objective)
	}
	if !almost(sol.Value(x), 7, 1e-6) || !almost(sol.Value(y), 3, 1e-6) {
		t.Errorf("x=%v y=%v, want 7,3", sol.Value(x), sol.Value(y))
	}
}

func TestEqualityConstraints(t *testing.T) {
	// minimise x + 2y s.t. x + y = 5, x - y = 1 -> x=3, y=2, obj=7.
	p := NewProblem()
	x := p.AddVariable("x", 1)
	y := p.AddVariable("y", 2)
	p.AddConstraint(map[int]float64{x: 1, y: 1}, EQ, 5)
	p.AddConstraint(map[int]float64{x: 1, y: -1}, EQ, 1)
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !almost(sol.Value(x), 3, 1e-6) || !almost(sol.Value(y), 2, 1e-6) {
		t.Errorf("x=%v y=%v, want 3,2", sol.Value(x), sol.Value(y))
	}
	if !almost(sol.Objective, 7, 1e-6) {
		t.Errorf("objective = %v, want 7", sol.Objective)
	}
}

func TestNegativeRHS(t *testing.T) {
	// minimise x s.t. -x <= -4  (i.e. x >= 4)
	p := NewProblem()
	x := p.AddVariable("x", 1)
	p.AddConstraint(map[int]float64{x: -1}, LE, -4)
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !almost(sol.Value(x), 4, 1e-6) {
		t.Errorf("x = %v, want 4", sol.Value(x))
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable("x", 1)
	p.AddConstraint(map[int]float64{x: 1}, LE, 2)
	p.AddConstraint(map[int]float64{x: 1}, GE, 5)
	if _, err := p.Solve(); err != ErrInfeasible {
		t.Errorf("expected ErrInfeasible, got %v", err)
	}
}

func TestUnbounded(t *testing.T) {
	// minimise -x with only x >= 0: unbounded below.
	p := NewProblem()
	x := p.AddVariable("x", -1)
	p.AddConstraint(map[int]float64{x: 1}, GE, 0)
	if _, err := p.Solve(); err != ErrUnbounded {
		t.Errorf("expected ErrUnbounded, got %v", err)
	}
}

func TestEmptyProblem(t *testing.T) {
	p := NewProblem()
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Objective != 0 {
		t.Errorf("objective = %v", sol.Objective)
	}
}

func TestDegenerateRedundantConstraints(t *testing.T) {
	// Redundant equalities should not break phase 1 / basis cleanup.
	p := NewProblem()
	x := p.AddVariable("x", 1)
	y := p.AddVariable("y", 1)
	p.AddConstraint(map[int]float64{x: 1, y: 1}, EQ, 4)
	p.AddConstraint(map[int]float64{x: 2, y: 2}, EQ, 8) // same constraint doubled
	p.AddConstraint(map[int]float64{x: 1}, GE, 1)
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !almost(sol.Objective, 4, 1e-6) {
		t.Errorf("objective = %v, want 4", sol.Objective)
	}
	if !almost(sol.Value(x)+sol.Value(y), 4, 1e-6) {
		t.Errorf("x+y = %v, want 4", sol.Value(x)+sol.Value(y))
	}
}

func TestVariableNamesAndCounts(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable("pos_x", 1)
	if p.VariableName(x) != "pos_x" {
		t.Errorf("VariableName = %q", p.VariableName(x))
	}
	if p.VariableName(99) == "" {
		t.Error("out-of-range name should still return something")
	}
	if p.NumVariables() != 1 || p.NumConstraints() != 0 {
		t.Error("counts wrong")
	}
	p.AddConstraint(map[int]float64{x: 1}, LE, 3)
	if p.NumConstraints() != 1 {
		t.Error("constraint count wrong")
	}
	p.SetObjectiveCoeff(x, 0)
	p.SetObjectiveCoeff(x, 2)
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !almost(sol.Value(x), 0, 1e-6) {
		t.Errorf("x = %v, want 0", sol.Value(x))
	}
}

func TestAddConstraintPanicsOnBadVariable(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	p := NewProblem()
	p.AddConstraint(map[int]float64{3: 1}, LE, 1)
}

func TestFreeVariable(t *testing.T) {
	// minimise |z - (-3)| over free z: optimum z = -3.
	p := NewProblem()
	z := p.AddFreeVariable("z")
	p.AddAbsDifferenceObjective("d", []Term{{Free: &z, Coeff: 1}}, 3, 1)
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !almost(sol.FreeValue(z), -3, 1e-6) {
		t.Errorf("z = %v, want -3", sol.FreeValue(z))
	}
	if !almost(sol.Objective, 0, 1e-6) {
		t.Errorf("objective = %v, want 0", sol.Objective)
	}
}

func TestWeightedMedianViaAbsTerms(t *testing.T) {
	// minimise sum_i w_i |x - a_i| : the optimum is a weighted median of a_i.
	// Points 0 (w=1), 10 (w=1), 4 (w=5): optimum x = 4.
	p := NewProblem()
	x := p.AddVariable("x", 0)
	points := []struct{ a, w float64 }{{0, 1}, {10, 1}, {4, 5}}
	for i, pt := range points {
		p.AddAbsDifferenceObjective(
			"d"+p.VariableName(i), []Term{{Var: x, Coeff: 1}}, -pt.a, pt.w)
	}
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !almost(sol.Value(x), 4, 1e-6) {
		t.Errorf("x = %v, want 4", sol.Value(x))
	}
	// objective = 1*4 + 1*6 + 5*0 = 10
	if !almost(sol.Objective, 10, 1e-6) {
		t.Errorf("objective = %v, want 10", sol.Objective)
	}
}

func TestAbsBetweenTwoVariables(t *testing.T) {
	// minimise |x - y| + 0.01 x s.t. x >= 5, y <= 3  ->  x=5, y=3, obj 2.05
	p := NewProblem()
	x := p.AddVariable("x", 0)
	y := p.AddVariable("y", 0)
	p.SetObjectiveCoeff(x, 0.01)
	p.AddConstraint(map[int]float64{x: 1}, GE, 5)
	p.AddConstraint(map[int]float64{y: 1}, LE, 3)
	p.AddAbsDifferenceObjective("dxy", []Term{{Var: x, Coeff: 1}, {Var: y, Coeff: -1}}, 0, 1)
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !almost(sol.Value(x), 5, 1e-6) || !almost(sol.Value(y), 3, 1e-6) {
		t.Errorf("x=%v y=%v", sol.Value(x), sol.Value(y))
	}
	if !almost(sol.Objective, 2.05, 1e-6) {
		t.Errorf("objective = %v, want 2.05", sol.Objective)
	}
}

func TestAddLinearConstraintWithFreeVars(t *testing.T) {
	// minimise x subject to x - z >= 0, z = -2 (via two inequalities), so
	// optimum x = 0 (x >= z = -2 but x >= 0 binds).
	p := NewProblem()
	x := p.AddVariable("x", 1)
	z := p.AddFreeVariable("z")
	p.AddLinearConstraint([]Term{{Var: x, Coeff: 1}, {Free: &z, Coeff: -1}}, GE, 0)
	p.AddLinearConstraint([]Term{{Free: &z, Coeff: 1}}, LE, -2)
	p.AddLinearConstraint([]Term{{Free: &z, Coeff: 1}}, GE, -2)
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !almost(sol.FreeValue(z), -2, 1e-6) {
		t.Errorf("z = %v, want -2", sol.FreeValue(z))
	}
	if !almost(sol.Value(x), 0, 1e-6) {
		t.Errorf("x = %v, want 0", sol.Value(x))
	}
}

// Property: for random weighted-median instances the LP optimum matches the
// analytic weighted median cost.
func TestWeightedMedianProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 || len(raw) > 8 {
			return true
		}
		type pt struct{ a, w float64 }
		pts := make([]pt, len(raw))
		for i, r := range raw {
			pts[i] = pt{a: float64(r % 50), w: float64(r%7) + 1}
		}
		p := NewProblem()
		x := p.AddVariable("x", 0)
		for _, q := range pts {
			p.AddAbsDifferenceObjective("d", []Term{{Var: x, Coeff: 1}}, -q.a, q.w)
		}
		sol, err := p.Solve()
		if err != nil {
			return false
		}
		// Brute force over candidate positions (optimum is at one of the a_i).
		best := math.MaxFloat64
		for _, cand := range pts {
			cost := 0.0
			for _, q := range pts {
				cost += q.w * math.Abs(cand.a-q.a)
			}
			if cost < best {
				best = cost
			}
		}
		return almost(sol.Objective, best, 1e-5)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
