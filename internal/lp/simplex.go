// Package lp provides a small dense linear-programming solver used by the
// switch-position computation of Section VII of the paper. It implements the
// two-phase primal simplex method on problems in the general form
//
//	minimise   c^T x
//	subject to A x (<=|=|>=) b,   x >= 0
//
// together with a Problem builder that supports free variables and
// absolute-value objective terms (|x - y| is linearised with an auxiliary
// variable and two constraints), which is exactly what the Manhattan-distance
// objective of Eq. 2-5 needs. The paper uses lp_solve; any exact LP solver
// yields the same optimum, and the instances (tens of switches) are tiny.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// ConstraintOp is the relational operator of a constraint row.
type ConstraintOp int

const (
	// LE is "less than or equal".
	LE ConstraintOp = iota
	// GE is "greater than or equal".
	GE
	// EQ is "equal".
	EQ
)

// Errors returned by Solve.
var (
	// ErrInfeasible is returned when no point satisfies all constraints.
	ErrInfeasible = errors.New("lp: problem is infeasible")
	// ErrUnbounded is returned when the objective can decrease without bound.
	ErrUnbounded = errors.New("lp: problem is unbounded")
)

const eps = 1e-9

// constraint is a single row a^T x (op) b.
type constraint struct {
	coeffs map[int]float64
	op     ConstraintOp
	rhs    float64
}

// Problem is an LP under construction. All structural variables are
// non-negative; use AddFreeVariable for variables that may take any sign.
type Problem struct {
	nvars       int
	objective   map[int]float64
	constraints []constraint
	names       []string
}

// NewProblem returns an empty minimisation problem.
func NewProblem() *Problem {
	return &Problem{objective: make(map[int]float64)}
}

// AddVariable adds a non-negative variable with the given objective
// coefficient and returns its index.
func (p *Problem) AddVariable(name string, objCoeff float64) int {
	idx := p.nvars
	p.nvars++
	p.names = append(p.names, name)
	if objCoeff != 0 {
		p.objective[idx] = objCoeff
	}
	return idx
}

// NumVariables returns the number of variables added so far.
func (p *Problem) NumVariables() int { return p.nvars }

// NumConstraints returns the number of constraints added so far.
func (p *Problem) NumConstraints() int { return len(p.constraints) }

// VariableName returns the name given to variable i.
func (p *Problem) VariableName(i int) string {
	if i < 0 || i >= len(p.names) {
		return fmt.Sprintf("x%d", i)
	}
	return p.names[i]
}

// SetObjectiveCoeff sets (overwrites) the objective coefficient of variable i.
func (p *Problem) SetObjectiveCoeff(i int, c float64) {
	p.checkVar(i)
	if c == 0 {
		delete(p.objective, i)
		return
	}
	p.objective[i] = c
}

// AddConstraint adds the constraint sum(coeffs[i]*x_i) op rhs.
func (p *Problem) AddConstraint(coeffs map[int]float64, op ConstraintOp, rhs float64) {
	cp := make(map[int]float64, len(coeffs))
	//determlint:ordered write-only copy into a fresh map keyed by the same indices; the checkVar panic fires only on caller bugs, never in a valid Result path
	for i, c := range coeffs {
		p.checkVar(i)
		if c != 0 {
			cp[i] = c
		}
	}
	p.constraints = append(p.constraints, constraint{coeffs: cp, op: op, rhs: rhs})
}

func (p *Problem) checkVar(i int) {
	if i < 0 || i >= p.nvars {
		panic(fmt.Sprintf("lp: variable %d out of range [0,%d)", i, p.nvars))
	}
}

// Solution holds the optimum of a solved problem.
type Solution struct {
	// Objective is the optimal objective value.
	Objective float64
	// Values holds the optimal value of every variable (including auxiliary
	// ones created by the builder helpers).
	Values []float64
}

// Value returns the optimal value of variable i.
func (s *Solution) Value(i int) float64 {
	if i < 0 || i >= len(s.Values) {
		return 0
	}
	return s.Values[i]
}

// Solve runs the two-phase simplex method and returns the optimum.
func (p *Problem) Solve() (*Solution, error) {
	n := p.nvars
	m := len(p.constraints)
	if n == 0 {
		return &Solution{Objective: 0}, nil
	}

	// Convert to standard form: every constraint becomes an equality with a
	// slack (LE), surplus (GE) or nothing (EQ); rows with negative rhs are
	// negated first so that b >= 0.
	type row struct {
		a  []float64
		b  float64
		op ConstraintOp
	}
	rows := make([]row, m)
	for i, c := range p.constraints {
		a := make([]float64, n)
		for j, v := range c.coeffs {
			a[j] = v
		}
		b := c.rhs
		op := c.op
		if b < 0 {
			for j := range a {
				a[j] = -a[j]
			}
			b = -b
			switch op {
			case LE:
				op = GE
			case GE:
				op = LE
			}
		}
		rows[i] = row{a: a, b: b, op: op}
	}

	// Count slack/surplus and artificial variables.
	numSlack := 0
	for _, r := range rows {
		if r.op != EQ {
			numSlack++
		}
	}
	total := n + numSlack + m // artificial variable for every row (unused ones cost nothing)

	// Build the phase-1 tableau: rows are constraints, columns are
	// [structural | slack/surplus | artificial | rhs].
	tab := make([][]float64, m+1)
	for i := range tab {
		tab[i] = make([]float64, total+1)
	}
	basis := make([]int, m)
	slackCol := n
	for i, r := range rows {
		copy(tab[i], r.a)
		switch r.op {
		case LE:
			tab[i][slackCol] = 1
			slackCol++
		case GE:
			tab[i][slackCol] = -1
			slackCol++
		}
		artCol := n + numSlack + i
		tab[i][artCol] = 1
		basis[i] = artCol
		tab[i][total] = r.b
	}
	// For LE rows with a positive slack we could start from the slack basis,
	// but starting from the artificial basis everywhere keeps the code
	// simple; phase 1 drives all artificials out regardless.

	// Phase 1 objective: minimise the sum of artificial variables.
	obj := tab[m]
	for i := 0; i < m; i++ {
		art := n + numSlack + i
		obj[art] = 1
	}
	// Price out the basic (artificial) variables.
	for i := 0; i < m; i++ {
		for j := 0; j <= total; j++ {
			obj[j] -= tab[i][j]
		}
	}
	if err := simplexIterate(tab, basis, total); err != nil {
		return nil, err
	}
	if phase1 := -tab[m][total]; phase1 > 1e-6 {
		return nil, ErrInfeasible
	}
	// Drive any artificial variables that remain basic at level zero out of
	// the basis (or accept them at zero if their row is all-zero).
	for i := 0; i < m; i++ {
		if basis[i] < n+numSlack {
			continue
		}
		pivoted := false
		for j := 0; j < n+numSlack; j++ {
			if math.Abs(tab[i][j]) > eps {
				pivot(tab, basis, i, j, total)
				pivoted = true
				break
			}
		}
		_ = pivoted // a fully zero row is redundant; the artificial stays at 0
	}

	// Phase 2: replace the objective row with the real objective, forbid the
	// artificial columns, and price out the current basis.
	for j := 0; j <= total; j++ {
		obj[j] = 0
	}
	for j, c := range p.objective {
		obj[j] = c
	}
	for i := 0; i < m; i++ {
		bj := basis[i]
		if math.Abs(obj[bj]) > eps {
			coef := obj[bj]
			for j := 0; j <= total; j++ {
				obj[j] -= coef * tab[i][j]
			}
		}
	}
	if err := simplexIteratePhase2(tab, basis, total, n+numSlack); err != nil {
		return nil, err
	}

	sol := &Solution{Values: make([]float64, n)}
	for i := 0; i < m; i++ {
		if basis[i] < n {
			sol.Values[basis[i]] = tab[i][total]
		}
	}
	// Accumulate in ascending variable order: map iteration order would vary
	// the float summation order and with it the last bits of the reported
	// objective between otherwise identical runs.
	var objVal float64
	for j := 0; j < n; j++ {
		if c, ok := p.objective[j]; ok {
			objVal += c * sol.Values[j]
		}
	}
	sol.Objective = objVal
	return sol, nil
}

// simplexIterate runs simplex pivots over all columns (phase 1).
func simplexIterate(tab [][]float64, basis []int, total int) error {
	return runSimplex(tab, basis, total, total)
}

// simplexIteratePhase2 runs simplex pivots restricted to the first allowedCols
// columns (the artificial columns are excluded in phase 2).
func simplexIteratePhase2(tab [][]float64, basis []int, total, allowedCols int) error {
	return runSimplex(tab, basis, total, allowedCols)
}

func runSimplex(tab [][]float64, basis []int, total, allowedCols int) error {
	m := len(tab) - 1
	obj := tab[m]
	maxIter := 200 * (m + total + 1)
	for iter := 0; iter < maxIter; iter++ {
		// Bland's rule (smallest index with negative reduced cost) to avoid
		// cycling.
		col := -1
		for j := 0; j < allowedCols; j++ {
			if obj[j] < -eps {
				col = j
				break
			}
		}
		if col < 0 {
			return nil // optimal
		}
		// Ratio test.
		row := -1
		best := math.MaxFloat64
		for i := 0; i < m; i++ {
			if tab[i][col] > eps {
				ratio := tab[i][total] / tab[i][col]
				if ratio < best-eps || (math.Abs(ratio-best) <= eps && (row < 0 || basis[i] < basis[row])) {
					best = ratio
					row = i
				}
			}
		}
		if row < 0 {
			return ErrUnbounded
		}
		pivot(tab, basis, row, col, total)
	}
	return errors.New("lp: simplex iteration limit exceeded")
}

// pivot performs a Gauss-Jordan pivot on (row, col).
func pivot(tab [][]float64, basis []int, row, col, total int) {
	p := tab[row][col]
	for j := 0; j <= total; j++ {
		tab[row][j] /= p
	}
	for i := range tab {
		if i == row {
			continue
		}
		f := tab[i][col]
		if math.Abs(f) < eps {
			continue
		}
		for j := 0; j <= total; j++ {
			tab[i][j] -= f * tab[row][j]
		}
	}
	basis[row] = col
}
