package sunfloor3d_test

// Acceptance property of the synthesis-as-a-service subsystem: every cached
// request path answers with bytes identical to a direct Synthesize of the
// same design and options. Two paths exist — the on-disk content-addressed
// memo store (shared by `sunfloor3d -cache-dir` and the daemon) and the
// sunfloor-server HTTP surface — and both are checked here over generated
// workloads of every traffic shape, cold (computed) and warm (cache hit).

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sunfloor3d"
	"sunfloor3d/internal/memo"
	"sunfloor3d/internal/server"
)

// cachePropertySpecs spans the four traffic shapes with distinct option
// sets; gen and body describe the same request to the library and to the
// HTTP API respectively.
var cachePropertySpecs = []struct {
	gen  string
	opts []sunfloor3d.Option
	body string
}{
	{
		gen:  "shape=pipeline,cores=10,layers=2,seed=4",
		body: `{"gen":"shape=pipeline,cores=10,layers=2,seed=4"}`,
	},
	{
		gen:  "shape=hotspot,cores=14,layers=3,seed=9",
		opts: []sunfloor3d.Option{sunfloor3d.WithRequireLatencyMet(true)},
		body: `{"gen":"shape=hotspot,cores=14,layers=3,seed=9","options":{"require_latency_met":true}}`,
	},
	{
		gen:  "shape=multiapp,cores=12,layers=2,seed=2,apps=2",
		opts: []sunfloor3d.Option{sunfloor3d.WithFrequenciesMHz(400, 800)},
		body: `{"gen":"shape=multiapp,cores=12,layers=2,seed=2,apps=2","options":{"frequencies_mhz":[400,800]}}`,
	},
	{
		gen:  "shape=layered,cores=12,layers=3,seed=7",
		body: `{"gen":"shape=layered,cores=12,layers=3,seed=7"}`,
	},
}

func TestCachedRequestPathMatchesDirect(t *testing.T) {
	srv, err := server.New(server.Config{CacheDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	cache, err := memo.New(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	for _, tc := range cachePropertySpecs {
		tc := tc
		t.Run(tc.gen, func(t *testing.T) {
			spec, err := sunfloor3d.ParseGenSpec(tc.gen)
			if err != nil {
				t.Fatal(err)
			}
			bench, err := sunfloor3d.GenerateBenchmark(spec)
			if err != nil {
				t.Fatal(err)
			}
			design := bench.Graph3D

			res, err := sunfloor3d.Synthesize(ctx, design, tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			direct, err := res.MarshalStable()
			if err != nil {
				t.Fatal(err)
			}

			// Path 1: the content-addressed memo store. The cold request
			// computes through the cache; the warm request is answered from
			// it. Both must reproduce the direct bytes.
			key, err := sunfloor3d.Fingerprint(design, tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			cold, prov, err := cache.GetOrCompute(ctx, key, func() ([]byte, error) {
				r, err := sunfloor3d.Synthesize(ctx, design, tc.opts...)
				if err != nil {
					return nil, err
				}
				return r.MarshalStable()
			})
			if err != nil {
				t.Fatal(err)
			}
			if prov != memo.Computed {
				t.Errorf("cold memo provenance = %q, want %q", prov, memo.Computed)
			}
			if !bytes.Equal(cold, direct) {
				t.Error("memo compute path differs from direct Synthesize")
			}
			warm, prov, ok := cache.Lookup(key)
			if !ok || prov == memo.Computed {
				t.Fatalf("warm memo lookup: ok=%v provenance=%q", ok, prov)
			}
			if !bytes.Equal(warm, direct) {
				t.Error("memo cache hit differs from direct Synthesize")
			}

			// The cached bytes restore to a result whose metrics survive.
			restored, err := sunfloor3d.ReadResult(bytes.NewReader(warm))
			if err != nil {
				t.Fatal(err)
			}
			if b, d := restored.Best(), res.Best(); (b == nil) != (d == nil) {
				t.Error("restored result disagrees on best-point existence")
			} else if b != nil && b.Metrics.Power.TotalMW() != d.Metrics.Power.TotalMW() {
				t.Error("restored best-point metrics differ from the computed run")
			}

			// Path 2: the HTTP daemon, cold then warm.
			post := func() ([]byte, string) {
				resp, err := http.Post(ts.URL+"/v1/synthesize?wait=1",
					"application/json", strings.NewReader(tc.body))
				if err != nil {
					t.Fatal(err)
				}
				defer resp.Body.Close()
				b, _ := io.ReadAll(resp.Body)
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("status %d: %s", resp.StatusCode, b)
				}
				return b, resp.Header.Get("X-Sunfloor-Cache")
			}
			coldBody, coldProv := post()
			if coldProv != string(memo.Computed) {
				t.Errorf("cold server provenance = %q, want %q", coldProv, memo.Computed)
			}
			if !bytes.Equal(coldBody, direct) {
				t.Error("cold server response differs from direct Synthesize")
			}
			warmBody, warmProv := post()
			if warmProv == string(memo.Computed) || warmProv == "" {
				t.Errorf("warm server provenance = %q, want a cache tier", warmProv)
			}
			if !bytes.Equal(warmBody, direct) {
				t.Error("warm server response differs from direct Synthesize")
			}
		})
	}
}
