// Simcheck example: synthesize a benchmark SoC, then cross-validate the
// analytic models of the synthesis flow against the flit-level traffic
// simulator. Three checks run on the best design point:
//
//  1. zero-contention simulated latency must equal the analytic zero-load
//     latency (Metrics.AvgLatencyCycles) exactly;
//  2. the CDG-based static deadlock-freedom argument must agree with the
//     simulator's runtime watchdog under every injection profile; and
//  3. achieved throughput under sustainable load must track the offered load.
//
// The example also shows how to simulate one synthesized topology under
// several traffic scenarios without re-running synthesis.
package main

import (
	"context"
	"fmt"
	"log"

	"sunfloor3d"
)

func main() {
	bm, err := sunfloor3d.BenchmarkByName("D_26_media", 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("design:", bm.Graph3D.Summary())

	// Synthesize with simulation enabled: every valid design point carries
	// SimStats for the default (uniform) profile.
	simCfg := sunfloor3d.DefaultSimConfig()
	res, err := sunfloor3d.Synthesize(context.Background(), bm.Graph3D,
		sunfloor3d.WithParallelism(-1),
		sunfloor3d.WithSimulation(simCfg),
	)
	if err != nil {
		log.Fatal(err)
	}
	best := res.Best()
	if best == nil {
		log.Fatal("no valid topology found")
	}
	fmt.Printf("best: %d switches at %.0f MHz, %.2f mW\n",
		best.Metrics.NumSwitches, best.FreqMHz, best.Metrics.Power.TotalMW())
	simulated := 0
	for _, p := range res.Points {
		if p.Sim != nil {
			simulated++
		}
	}
	fmt.Printf("simulated %d of %d design points during the sweep\n\n", simulated, len(res.Points))

	top := best.Topology()

	// Check 1: the zero-contention simulation reproduces the analytic
	// zero-load latency model exactly, flow for flow.
	lats, err := top.ZeroLoadLatencies()
	if err != nil {
		log.Fatal(err)
	}
	var sum float64
	for _, l := range lats {
		sum += l
	}
	avg := sum / float64(len(lats))
	fmt.Printf("zero-load cross-check: simulated avg %.4f cycles, analytic avg %.4f cycles\n",
		avg, best.Metrics.AvgLatencyCycles)
	if diff := avg - best.Metrics.AvgLatencyCycles; diff > 1e-9 || diff < -1e-9 {
		log.Fatalf("simulator and analytic model disagree by %g cycles", diff)
	}

	// Check 2: no injection profile may deadlock a CDG-acyclic design, and
	// check 3: under sustainable load the network delivers what is offered.
	for _, profile := range []sunfloor3d.SimProfile{
		sunfloor3d.SimUniform, sunfloor3d.SimBursty, sunfloor3d.SimHotspot,
	} {
		cfg := sunfloor3d.DefaultSimConfig()
		cfg.Profile = profile
		cfg.Seed = 7
		stats, err := top.Simulate(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if stats.Deadlock || stats.Livelock {
			log.Fatalf("%s traffic deadlocked a statically deadlock-free topology", profile)
		}
		fmt.Printf("%-8s: %5d packets injected, %5d delivered (%.1f%%), avg latency %6.2f cycles, max %4.0f\n",
			profile, stats.PacketsInjected, stats.PacketsDelivered,
			100*stats.DeliveredFraction(), stats.AvgLatencyCycles, stats.MaxLatencyCycles)
	}

	// Busiest links of the uniform run, from the per-link utilization stats.
	stats, err := top.Simulate(simCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nbusiest links (uniform profile):")
	shown := 0
	for _, l := range stats.Links {
		if l.Kind != "internal" || l.Utilization < 0.10 {
			continue
		}
		fmt.Printf("  switch %2d -> %2d: %.1f%% busy\n", l.From, l.To, 100*l.Utilization)
		if shown++; shown >= 8 {
			break
		}
	}
	if shown == 0 {
		fmt.Println("  (no internal link above 10% utilization)")
	}
}
