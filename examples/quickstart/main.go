// Quickstart example: build a small 2-layer SoC description in code, run the
// SunFloor 3D synthesis flow on it through the public API and print the
// resulting topology and its power/latency metrics. This is the smallest
// end-to-end use of the package: Design -> Synthesize -> Result.
package main

import (
	"context"
	"fmt"
	"log"

	"sunfloor3d"
)

func main() {
	// Describe the cores: a CPU and a DSP on the bottom die, their memories
	// stacked directly above them on the top die. Positions are the input
	// floorplan (in mm); layer 0 is the bottom die.
	cores := []sunfloor3d.Core{
		{Name: "cpu", Width: 2.0, Height: 2.0, X: 0.0, Y: 0.0, Layer: 0},
		{Name: "dsp", Width: 1.8, Height: 1.6, X: 2.5, Y: 0.0, Layer: 0},
		{Name: "dma", Width: 0.9, Height: 0.8, X: 4.6, Y: 0.0, Layer: 0},
		{Name: "mem_cpu", Width: 1.6, Height: 1.6, X: 0.0, Y: 0.0, Layer: 1, IsMemory: true},
		{Name: "mem_dsp", Width: 1.4, Height: 1.4, X: 2.5, Y: 0.0, Layer: 1, IsMemory: true},
		{Name: "mem_sh", Width: 1.8, Height: 1.6, X: 4.4, Y: 0.0, Layer: 1, IsMemory: true},
	}
	// Describe the traffic flows: bandwidth in MB/s, latency constraints in
	// NoC cycles (0 = unconstrained).
	flows := []sunfloor3d.Flow{
		{Src: 0, Dst: 3, BandwidthMBps: 1200, LatencyCycles: 3, Type: sunfloor3d.Request},
		{Src: 3, Dst: 0, BandwidthMBps: 600, LatencyCycles: 3, Type: sunfloor3d.Response},
		{Src: 1, Dst: 4, BandwidthMBps: 1000, LatencyCycles: 3, Type: sunfloor3d.Request},
		{Src: 4, Dst: 1, BandwidthMBps: 500, LatencyCycles: 3, Type: sunfloor3d.Response},
		{Src: 0, Dst: 5, BandwidthMBps: 300, LatencyCycles: 6, Type: sunfloor3d.Request},
		{Src: 1, Dst: 5, BandwidthMBps: 280, LatencyCycles: 6, Type: sunfloor3d.Request},
		{Src: 2, Dst: 5, BandwidthMBps: 400, LatencyCycles: 8, Type: sunfloor3d.Request},
		{Src: 2, Dst: 3, BandwidthMBps: 150, LatencyCycles: 8, Type: sunfloor3d.Request},
	}
	design, err := sunfloor3d.NewDesign(cores, flows)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("design:", design.Summary())

	// Synthesize: sweep switch counts at 400 MHz and 600 MHz with at most 10
	// links crossing the layer boundary, evaluating design points on all
	// CPUs. Serial and parallel runs return bit-identical results.
	res, err := sunfloor3d.Synthesize(context.Background(), design,
		sunfloor3d.WithFrequenciesMHz(400, 600),
		sunfloor3d.WithMaxILL(10),
		sunfloor3d.WithParallelism(-1),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("explored %d design points (%d valid)\n", len(res.Points), len(res.ValidPoints()))
	best := res.Best()
	if best == nil {
		log.Fatal("no valid topology found")
	}
	fmt.Printf("best: %d switches at %.0f MHz -> %.2f mW, %.2f cycles average latency, %d inter-layer links\n\n",
		best.Metrics.NumSwitches, best.FreqMHz,
		best.Metrics.Power.TotalMW(), best.Metrics.AvgLatencyCycles, best.Metrics.MaxILL)
	fmt.Println(best.Topology().Describe())

	// Insert the NoC components into the floorplan and report the chip area.
	fp, err := best.Topology().Floorplan()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chip area after NoC insertion: %.3f mm2 (components moved: %d)\n",
		fp.ChipAreaMM2(), fp.MovedCount())

	// The Pareto front gives the designer the power/latency trade-off curve.
	fmt.Println("\npower/latency trade-off points:")
	for _, p := range res.ParetoFront() {
		fmt.Printf("  %2d switches @ %.0f MHz: %7.2f mW  %5.2f cycles\n",
			p.Metrics.NumSwitches, p.FreqMHz, p.Metrics.Power.TotalMW(), p.Metrics.AvgLatencyCycles)
	}
}
