// TSV constraint study (Section VIII-E of the paper): shows how the number of
// TSVs a process can support maps to the max_ill constraint (via the yield
// model of Fig. 1) and how tightening max_ill affects the power and latency
// of the synthesized NoC for the distributed benchmark D_36_4 (Figs. 21-22).
package main

import (
	"context"
	"fmt"
	"log"

	"sunfloor3d"
)

func main() {
	lib := sunfloor3d.DefaultLibrary()

	fmt.Println("Yield model (Fig. 1) and the inter-layer link budget it implies")
	fmt.Println("process          target_yield   max_TSVs   max inter-layer links")
	for _, p := range sunfloor3d.StandardProcesses() {
		for _, target := range []float64{0.95, 0.90, 0.85} {
			tsvs := p.MaxTSVsForYield(target)
			fmt.Printf("%-16s %12.2f %10d %12d\n", p.Name, target, tsvs, lib.MaxInterLayerLinks(tsvs))
		}
	}

	b, err := sunfloor3d.BenchmarkByName("D_36_4", 1)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	fmt.Println("\nImpact of max_ill on the synthesized NoC for", b.Name, "(Figs. 21-22)")
	fmt.Println("max_ill   feasible   power_mW   avg_latency_cycles   switches")
	for _, ill := range []int{6, 8, 10, 12, 14, 16, 18, 20, 24, 28} {
		res, err := sunfloor3d.Synthesize(ctx, b.Graph3D,
			sunfloor3d.WithMaxILL(ill),
			sunfloor3d.WithParallelism(-1),
		)
		if err != nil {
			log.Fatal(err)
		}
		best := res.Best()
		if best == nil {
			fmt.Printf("%7d   %8s\n", ill, "no")
			continue
		}
		m := best.Metrics
		fmt.Printf("%7d   %8s   %8.2f   %18.2f   %8d\n",
			ill, "yes", m.Power.TotalMW(), m.AvgLatencyCycles, m.NumSwitches)
	}
}
