// Custom topology vs. standard mesh (Fig. 23 of the paper): synthesize the
// application-specific topology for several benchmarks and compare its power
// and latency against a power-optimised mapping of the same design onto a
// regular mesh with unused links removed.
package main

import (
	"fmt"
	"log"

	"sunfloor3d/internal/bench"
	"sunfloor3d/internal/mesh"
	"sunfloor3d/internal/synth"
)

func main() {
	names := []string{"D_36_4", "D_35_bot", "D_38_tvopd"}
	fmt.Println("benchmark     custom_mW   mesh_mW   power_saving   custom_lat   mesh_lat   pruned_mesh_links")
	var savings float64
	for _, name := range names {
		b := bench.ByNameMust(name, 1)

		res, err := synth.Synthesize(b.Graph3D, synth.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		if res.Best == nil {
			log.Fatalf("%s: no valid custom topology", name)
		}
		m, err := mesh.Build(b.Graph3D, mesh.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		meshMetrics := m.Topology.Evaluate()
		custom := res.Best.Metrics
		saving := 1 - custom.Power.TotalMW()/meshMetrics.Power.TotalMW()
		savings += saving
		fmt.Printf("%-12s %10.2f %9.2f %13.0f%% %12.2f %10.2f %19d\n",
			name, custom.Power.TotalMW(), meshMetrics.Power.TotalMW(), saving*100,
			custom.AvgLatencyCycles, meshMetrics.AvgLatencyCycles, m.RemovedLinks)
	}
	fmt.Printf("\naverage power saving of custom topologies over the optimized mesh: %.0f%%\n",
		savings/float64(len(names))*100)
}
