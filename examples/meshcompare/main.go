// Custom topology vs. standard mesh (Fig. 23 of the paper): synthesize the
// application-specific topology for several benchmarks and compare its power
// and latency against a power-optimised mapping of the same design onto a
// regular mesh with unused links removed.
package main

import (
	"context"
	"fmt"
	"log"

	"sunfloor3d"
)

func main() {
	names := []string{"D_36_4", "D_35_bot", "D_38_tvopd"}
	ctx := context.Background()
	fmt.Println("benchmark     custom_mW   mesh_mW   power_saving   custom_lat   mesh_lat   pruned_mesh_links")
	var savings float64
	for _, name := range names {
		b, err := sunfloor3d.BenchmarkByName(name, 1)
		if err != nil {
			log.Fatal(err)
		}

		res, err := sunfloor3d.Synthesize(ctx, b.Graph3D, sunfloor3d.WithParallelism(-1))
		if err != nil {
			log.Fatal(err)
		}
		best := res.Best()
		if best == nil {
			log.Fatalf("%s: no valid custom topology", name)
		}
		m, err := sunfloor3d.BuildMeshBaseline(b.Graph3D)
		if err != nil {
			log.Fatal(err)
		}
		custom := best.Metrics
		saving := 1 - custom.Power.TotalMW()/m.Metrics.Power.TotalMW()
		savings += saving
		fmt.Printf("%-12s %10.2f %9.2f %13.0f%% %12.2f %10.2f %19d\n",
			name, custom.Power.TotalMW(), m.Metrics.Power.TotalMW(), saving*100,
			custom.AvgLatencyCycles, m.Metrics.AvgLatencyCycles, m.RemovedLinks)
	}
	fmt.Printf("\naverage power saving of custom topologies over the optimized mesh: %.0f%%\n",
		savings/float64(len(names))*100)
}
