// Multimedia SoC case study (Section VIII-A of the paper): synthesize NoC
// topologies for the 26-core multimedia and wireless benchmark D_26_media in
// both its 3-D (three layers) and 2-D incarnations, print the power-vs-switch
// -count sweeps behind Figs. 10 and 11, the wire-length distributions of
// Fig. 12 and the best Phase-1 and Phase-2 topologies of Figs. 13 and 14.
package main

import (
	"context"
	"fmt"
	"log"

	"sunfloor3d"
)

func main() {
	b, err := sunfloor3d.BenchmarkByName("D_26_media", 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("3-D design:", b.Graph3D.Summary())
	fmt.Println("2-D design:", b.Graph2D.Summary())

	ctx := context.Background()
	opts := []sunfloor3d.Option{
		sunfloor3d.WithMaxILL(25),
		sunfloor3d.WithParallelism(-1),
	}

	res3d, err := sunfloor3d.Synthesize(ctx, b.Graph3D, opts...)
	if err != nil {
		log.Fatal(err)
	}
	res2d, err := sunfloor3d.Synthesize(ctx, b.Graph2D, opts...)
	if err != nil {
		log.Fatal(err)
	}
	b3, b2 := res3d.Best(), res2d.Best()
	if b3 == nil || b2 == nil {
		log.Fatal("synthesis produced no valid design point")
	}

	fmt.Println("\nNoC power vs. switch count (valid points):")
	fmt.Println("  switches   2-D total mW   3-D total mW")
	p2 := map[int]float64{}
	for _, p := range res2d.ValidPoints() {
		p2[p.SwitchCount] = p.Metrics.Power.TotalMW()
	}
	for _, p := range res3d.ValidPoints() {
		if v, ok := p2[p.SwitchCount]; ok {
			fmt.Printf("  %8d   %12.2f   %12.2f\n", p.SwitchCount, v, p.Metrics.Power.TotalMW())
		}
	}

	fmt.Printf("\nbest 2-D point: %d switches, %.2f mW, %.2f cycles\n",
		b2.Metrics.NumSwitches, b2.Metrics.Power.TotalMW(), b2.Metrics.AvgLatencyCycles)
	fmt.Printf("best 3-D point: %d switches, %.2f mW, %.2f cycles, %d inter-layer links\n",
		b3.Metrics.NumSwitches, b3.Metrics.Power.TotalMW(), b3.Metrics.AvgLatencyCycles, b3.Metrics.MaxILL)
	fmt.Printf("3-D power saving vs. 2-D: %.0f%%\n",
		(1-b3.Metrics.Power.TotalMW()/b2.Metrics.Power.TotalMW())*100)

	fmt.Println("\nwire length distribution (0.5 mm bins):")
	h2 := b2.Topology().WireLengthHistogram(0.5)
	h3 := b3.Topology().WireLengthHistogram(0.5)
	n := len(h2)
	if len(h3) > n {
		n = len(h3)
	}
	for i := 0; i < n; i++ {
		get := func(h []int) int {
			if i < len(h) {
				return h[i]
			}
			return 0
		}
		fmt.Printf("  %4.1f-%4.1f mm: 2-D %3d links, 3-D %3d links\n",
			float64(i)*0.5, float64(i+1)*0.5, get(h2), get(h3))
	}

	// Phase 2 (layer-by-layer) topology for comparison with Fig. 14.
	resP2, err := sunfloor3d.Synthesize(ctx, b.Graph3D,
		append(opts, sunfloor3d.WithPhase(sunfloor3d.Phase2Only))...)
	if err != nil {
		log.Fatal(err)
	}
	if bp2 := resP2.Best(); bp2 != nil {
		fmt.Printf("\nPhase-2 (layer-by-layer) best point: %.2f mW with %d inter-layer links (Phase 1 used %d)\n",
			bp2.Metrics.Power.TotalMW(), bp2.Metrics.MaxILL, b3.Metrics.MaxILL)
	}

	fmt.Println("\nbest 3-D topology (Fig. 13 analogue):")
	fmt.Println(b3.Topology().Describe())
}
