package sunfloor3d

import (
	"io"
	"os"

	"sunfloor3d/internal/model"
)

// Design is the input of a synthesis run: the cores of the system on chip
// with their sizes, positions and 3-D layer assignment, plus the
// communication flows between them (Definitions 1 and 2 of the paper).
type Design = model.CommGraph

// Core is one hardware block of the SoC (processor, memory, DMA,
// accelerator, peripheral).
type Core = model.Core

// Flow is a directed communication flow between two cores.
type Flow = model.Flow

// MessageType distinguishes request from response traffic; the two classes
// are routed on disjoint turn sets to avoid message-dependent deadlock.
type MessageType = model.MessageType

// Message classes of a Flow.
const (
	Request  = model.Request
	Response = model.Response
)

// NewDesign builds a design from cores and flows and validates it.
func NewDesign(cores []Core, flows []Flow) (*Design, error) {
	return model.NewCommGraph(cores, flows)
}

// LoadDesign reads a design from a core specification and a communication
// specification (the text formats written by WriteDesign and cmd/specgen).
func LoadDesign(coreSpec, commSpec io.Reader) (*Design, error) {
	return model.LoadDesign(coreSpec, commSpec)
}

// LoadDesignFiles reads a design from core and communication specification
// files.
func LoadDesignFiles(corePath, commPath string) (*Design, error) {
	cf, err := os.Open(corePath)
	if err != nil {
		return nil, err
	}
	defer cf.Close()
	mf, err := os.Open(commPath)
	if err != nil {
		return nil, err
	}
	defer mf.Close()
	return model.LoadDesign(cf, mf)
}

// WriteDesign writes the design as a core specification and a communication
// specification in the formats LoadDesign reads.
func WriteDesign(coreSpec, commSpec io.Writer, d *Design) error {
	if err := model.WriteCoreSpec(coreSpec, d.Cores); err != nil {
		return err
	}
	return model.WriteCommSpec(commSpec, d)
}
