package sunfloor3d

// Failure-path tests of the checkpoint writer: an append that cannot be
// persisted must fail the exploration immediately rather than let the run
// finish against a silently stale checkpoint.

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sunfloor3d/internal/synth"
)

// failingWriter fails every write with a fixed error.
type failingWriter struct{ err error }

func (w failingWriter) Write(p []byte) (int, error) { return 0, w.err }

func TestCheckpointAppendSurfacesWriteError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	ck, err := openCheckpoint(path, "fp-test")
	if err != nil {
		t.Fatal(err)
	}
	defer ck.close()

	// A healthy writer persists the cell and reports no error.
	if err := ck.append(0, []synth.DesignPoint{{SwitchCount: 2, Valid: true}}); err != nil {
		t.Fatalf("append to healthy writer: %v", err)
	}

	// A failing writer surfaces the error to the caller on the spot.
	sinkErr := errors.New("sink full")
	ck.w = failingWriter{err: sinkErr}
	err = ck.append(1, []synth.DesignPoint{{SwitchCount: 3}})
	if !errors.Is(err, sinkErr) {
		t.Fatalf("append error = %v, want wrapped %v", err, sinkErr)
	}
	if !strings.Contains(err.Error(), "cell 1") {
		t.Errorf("append error %q does not name the failed cell", err)
	}

	// The healthy write made it to disk; the failed one did not.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(strings.TrimRight(string(data), "\n"), "\n") + 1
	if lines != 1 {
		t.Errorf("checkpoint holds %d lines, want exactly the one healthy append", lines)
	}
	if !strings.Contains(string(data), `"cell":0`) {
		t.Errorf("checkpoint %q does not hold cell 0", data)
	}
}
