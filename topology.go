package sunfloor3d

import (
	"fmt"
	"io"
	"strings"

	"sunfloor3d/internal/place"
	"sunfloor3d/internal/topology"
)

// Topology is a synthesized NoC: the switches with their layer assignment
// and positions, the core-to-switch attachments, and the routed paths of
// every flow.
type Topology struct {
	t *topology.Topology
}

// NumSwitches returns the number of switches in the topology.
func (t *Topology) NumSwitches() int { return t.t.NumSwitches() }

// Describe renders the topology as human-readable text: one block per
// switch with its attached cores and links.
func (t *Topology) Describe() string { return t.t.Describe() }

// WriteDOT writes the topology in Graphviz DOT format.
func (t *Topology) WriteDOT(w io.Writer) error { return t.t.WriteDOT(w) }

// WireLengthHistogram buckets the link lengths into bins of the given width
// (in mm) and returns the counts.
func (t *Topology) WireLengthHistogram(binMM float64) []int {
	return t.t.WireLengthHistogram(binMM)
}

// Evaluate recomputes the power, latency and area metrics of the topology.
func (t *Topology) Evaluate() Metrics { return metricsFromInternal(t.t.Evaluate()) }

// Floorplan inserts the NoC components (switches, NIs, TSV macros) into the
// input core floorplan and returns the combined floorplan. The topology
// itself is not modified.
func (t *Topology) Floorplan() (*Floorplan, error) {
	fp, err := place.InsertNoC(t.t.Clone())
	if err != nil {
		return nil, err
	}
	return &Floorplan{fp: fp}, nil
}

// Floorplan is the result of inserting the NoC components into the input
// core floorplan, organised per layer.
type Floorplan struct {
	fp *place.Floorplan
}

// ChipAreaMM2 returns the area of the largest layer bounding box.
func (f *Floorplan) ChipAreaMM2() float64 { return f.fp.ChipAreaMM2() }

// MovedCount returns how many components were displaced from their input or
// ideal positions during overlap removal.
func (f *Floorplan) MovedCount() int { return f.fp.MovedCount() }

// Text renders the floorplan as human-readable text: one line per component,
// grouped by layer, followed by the chip area.
func (f *Floorplan) Text() string {
	var b strings.Builder
	for l, layer := range f.fp.Layers {
		fmt.Fprintf(&b, "layer %d (bbox %.3f mm2)\n", l, f.fp.LayerBoundingBox(l).Area())
		for _, c := range layer {
			fmt.Fprintf(&b, "  %-12s %-6s %v\n", c.Name, c.Kind, c.Rect)
		}
	}
	fmt.Fprintf(&b, "chip_area_mm2 %.3f\n", f.fp.ChipAreaMM2())
	return b.String()
}
