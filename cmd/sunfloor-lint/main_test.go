package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestCleanTree asserts the shipped tree lints clean: the determlint suite
// over every package in the module reports nothing. The vet half is skipped
// here (the CI test job runs `go vet` already; running it from a test would
// recompile the world twice).
func TestCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-vet=false", "sunfloor3d/..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("sunfloor-lint exited %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("expected no findings, got:\n%s", stdout.String())
	}
}

// TestDescribeAnalyzers asserts -analyzers lists the full suite.
func TestDescribeAnalyzers(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-analyzers"}, &stdout, &stderr); code != 0 {
		t.Fatalf("sunfloor-lint -analyzers exited %d: %s", code, stderr.String())
	}
	for _, name := range []string{"maprange:", "floataccum:", "wallclock:", "fingerprintcover:"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-analyzers output missing %q:\n%s", name, stdout.String())
		}
	}
}
