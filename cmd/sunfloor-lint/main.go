// Command sunfloor-lint is the multichecker enforcing this repo's
// determinism contract at compile time. It runs the internal/determlint
// analyzer suite — maprange, floataccum, wallclock, fingerprintcover — over
// the requested packages and, by default, the standard `go vet` suite
// alongside, so one invocation covers both the generic and the
// repo-specific bug classes:
//
//	go run ./cmd/sunfloor-lint ./...
//
// The exit status is 0 when the tree is clean, 1 when any analyzer or vet
// reports a finding, and 2 on operational errors (unparseable packages,
// missing go tool). Findings are printed one per line, sorted by position:
//
//	internal/graph/partition.go:118:2: range over map ... [maprange]
//
// See the package documentation of internal/determlint for the contract,
// the analyzers and the //determlint waiver syntax.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sort"
	"strings"

	"sunfloor3d/internal/determlint"
	"sunfloor3d/internal/determlint/analysis"
	"sunfloor3d/internal/determlint/analysis/load"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sunfloor-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	vet := fs.Bool("vet", true, "also run the standard `go vet` suite on the packages")
	describe := fs.Bool("analyzers", false, "describe the analyzer suite and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: sunfloor-lint [flags] [packages]\n\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *describe {
		for _, a := range determlint.Suite() {
			fmt.Fprintf(stdout, "%s: %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	failed := false
	if *vet {
		cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
		cmd.Stdout = stdout
		cmd.Stderr = stderr
		if err := cmd.Run(); err != nil {
			if _, ok := err.(*exec.ExitError); !ok {
				fmt.Fprintf(stderr, "sunfloor-lint: running go vet: %v\n", err)
				return 2
			}
			failed = true
		}
	}

	loader := load.New(".", "")
	pkgs, err := loader.Packages(patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "sunfloor-lint: %v\n", err)
		return 2
	}

	type finding struct {
		pos       string
		file      string
		line, col int
		msg       string
		name      string
	}
	var findings []finding
	for _, pkg := range pkgs {
		for _, a := range determlint.Suite() {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			name := a.Name
			pass.Report = func(d analysis.Diagnostic) {
				p := pkg.Fset.Position(d.Pos)
				findings = append(findings, finding{
					pos: p.String(), file: p.Filename, line: p.Line, col: p.Column,
					msg: d.Message, name: name,
				})
			}
			if _, err := a.Run(pass); err != nil {
				fmt.Fprintf(stderr, "sunfloor-lint: %s on %s: %v\n", a.Name, pkg.Path, err)
				return 2
			}
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.file != b.file {
			return a.file < b.file
		}
		if a.line != b.line {
			return a.line < b.line
		}
		if a.col != b.col {
			return a.col < b.col
		}
		return a.name < b.name
	})
	for _, f := range findings {
		fmt.Fprintf(stdout, "%s: %s [%s]\n", relPos(f.pos), f.msg, f.name)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "sunfloor-lint: %d finding(s)\n", len(findings))
		failed = true
	}
	if failed {
		return 1
	}
	return 0
}

// relPos trims the working directory prefix so findings print repo-relative.
func relPos(pos string) string {
	wd, err := os.Getwd()
	if err != nil {
		return pos
	}
	return strings.TrimPrefix(pos, wd+string(os.PathSeparator))
}
