// Command sunfloor-bench regenerates every table and figure of the paper's
// evaluation section on the synthetic benchmark suite and prints them as text
// tables. Use -experiment to run a single one and -quick for a reduced sweep.
package main

import (
	"flag"
	"fmt"
	"os"

	"sunfloor3d/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sunfloor-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp    = flag.String("experiment", "all", "which experiment to run: fig1, fig10, fig11, fig12, fig13-16, fig17, table1, fig18, fig19-20, fig21-22, fig23 or all")
		seed   = flag.Int64("seed", 1, "benchmark generator seed")
		freq   = flag.Float64("freq", 400, "NoC operating frequency in MHz")
		maxILL = flag.Int("max-ill", 25, "inter-layer link constraint")
		quick  = flag.Bool("quick", false, "reduced sweeps (faster, fewer points)")
		jobs   = flag.Int("jobs", 1, "parallel design-point evaluations per synthesis run (1 = serial, -1 = one per CPU)")
	)
	flag.Parse()

	cfg := experiments.DefaultConfig()
	cfg.Seed = *seed
	cfg.FreqMHz = *freq
	cfg.MaxILL = *maxILL
	cfg.Quick = *quick
	cfg.Jobs = *jobs

	want := func(name string) bool { return *exp == "all" || *exp == name }
	ran := false

	if want("fig1") {
		fmt.Println(experiments.FormatFig01(experiments.Fig01Yield()))
		ran = true
	}
	if want("fig10") {
		s, err := experiments.Fig10Power2D(cfg)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatPowerSweep("Fig. 10: NoC power vs. switch count, 2-D", s))
		ran = true
	}
	if want("fig11") {
		s, err := experiments.Fig11Power3D(cfg)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatPowerSweep("Fig. 11: NoC power vs. switch count, 3-D", s))
		ran = true
	}
	if want("fig12") {
		d, err := experiments.Fig12WireLengths(cfg)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatFig12(d))
		ran = true
	}
	if want("fig13-16") {
		cs, err := experiments.Fig13to16CaseStudy(cfg)
		if err != nil {
			return err
		}
		fmt.Println("Fig. 16: initial core placement (D_26_media)")
		fmt.Println(cs.InitialPlacement)
		fmt.Printf("Fig. 13: most power-efficient Phase-1 topology (%.2f mW, %d inter-layer links)\n",
			cs.Phase1Power, cs.Phase1MaxILL)
		fmt.Println(cs.Phase1Topology)
		fmt.Printf("Fig. 14: most power-efficient Phase-2 (layer-by-layer) topology (%.2f mW, %d inter-layer links)\n",
			cs.Phase2Power, cs.Phase2MaxILL)
		fmt.Println(cs.Phase2Topology)
		ran = true
	}
	if want("fig17") {
		rows, err := experiments.Fig17Phase1VsPhase2(cfg)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatFig17(rows))
		ran = true
	}
	if want("table1") {
		rows, err := experiments.Table1(cfg)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatTable1(rows))
		ran = true
	}
	if want("fig18") {
		pts, err := experiments.Fig18FloorplanArea(cfg)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatFig18(pts))
		ran = true
	}
	if want("fig19-20") {
		rows, err := experiments.Fig19Fig20FloorplanComparison(cfg)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatFig19Fig20(rows))
		ran = true
	}
	if want("fig21-22") {
		pts, err := experiments.Fig21Fig22MaxILLSweep(cfg)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatFig21Fig22(pts))
		ran = true
	}
	if want("fig23") {
		rows, err := experiments.Fig23MeshComparison(cfg)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatFig23(rows))
		ran = true
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q (valid: fig1, fig10, fig11, fig12, fig13-16, fig17, table1, fig18, fig19-20, fig21-22, fig23, all)", *exp)
	}
	return nil
}
